//! [`Miner`] adapters: every baseline behind the unified session API.
//!
//! Each adapter runs its algorithm under a [`MineControl`], reports
//! observer events, and post-processes the raw output into the same
//! interesting-rule-group answer FARMER gives, so the CLI and benches
//! can dispatch any engine through one `Box<dyn Miner>`.
//!
//! The closed-set miners (CHARM, CLOSET+) and Apriori share one
//! reduction: the closed itemsets of the dataset at *itemset* support
//! `>= min_sup` are a superset of the rule-group upper bounds at *rule*
//! support `>= min_sup` (rule support never exceeds itemset support),
//! and each rule group's antecedent support set appears as exactly one
//! closed set. Applying FARMER's interestingness filter
//! ([`irg_filter`]) to those candidates therefore reproduces FARMER's
//! output exactly; tests pin the agreement.
//!
//! A control-triggered stop ends the run with **no** groups — the
//! subsumption and dominance checks are global, so a truncated
//! column-enumeration answer would not be a prefix of anything useful.
//! The returned [`MineStats`] still carries the stop cause and node
//! count.

use crate::Budgeted;
use farmer_core::measures::{self, chi_square, Contingency};
use farmer_core::session::{MineControl, MineObserver, PruneReason, StopCause};
use farmer_core::{
    minelb, ExtraConstraint, MineResult, MineStats, Miner, MiningParams, RuleGroup, SchedStats,
};
use farmer_dataset::Dataset;
use rowset::{IdList, RowSet};
use std::collections::HashMap;
use std::time::Instant;

/// Attributes an early stop observed through `Budgeted::BudgetExhausted`
/// to the control condition that caused it (the `Budgeted` enum predates
/// [`StopCause`] and only records *that* the run stopped).
fn stop_cause(ctl: &MineControl) -> StopCause {
    if ctl.is_cancelled() {
        StopCause::Cancelled
    } else if ctl.deadline.is_some_and(|d| Instant::now() >= d) {
        StopCause::Deadline
    } else {
        StopCause::Budget
    }
}

/// FARMER's step-7 interestingness filter over candidate rule groups
/// given as `(upper bound, antecedent support set)` pairs.
///
/// Candidates are ordered by generality (fewer items first, ties by
/// itemset order); a candidate survives iff it meets the support,
/// confidence, χ² and extra-measure thresholds and no strictly more
/// general survivor has confidence `>=` its own. Mirrors the filter in
/// `farmer_core::miner` and `column_e` so all engines answer the same
/// question.
fn irg_filter<O: MineObserver + ?Sized>(
    data: &Dataset,
    params: &MiningParams,
    candidates: Vec<(IdList, RowSet)>,
    obs: &mut O,
    stats: &mut MineStats,
) -> Vec<RuleGroup> {
    let n = data.n_rows();
    let m = data.class_count(params.target_class);
    let class_rows = data.class_rows(params.target_class);
    let mut cands: Vec<(IdList, RowSet, usize)> = candidates
        .into_iter()
        .map(|(upper, rows)| {
            let sup_p = rows.intersection_len(&class_rows);
            (upper, rows, sup_p)
        })
        .collect();
    cands.sort_by(|a, b| a.0.len().cmp(&b.0.len()).then(a.0.cmp(&b.0)));

    let mut groups: Vec<RuleGroup> = Vec::new();
    for (upper, rows, sup_p) in cands {
        if upper.is_empty() || sup_p < params.min_sup {
            continue;
        }
        let sup_n = rows.len() - sup_p;
        let conf = sup_p as f64 / (sup_p + sup_n) as f64;
        if conf < params.min_conf {
            continue;
        }
        let t = Contingency::new(sup_p + sup_n, sup_p, n, m);
        if params.min_chi > 0.0 && chi_square(t) < params.min_chi {
            continue;
        }
        let extras_ok = params.extra.iter().all(|c| match *c {
            ExtraConstraint::MinLift(v) => measures::lift(t) >= v,
            ExtraConstraint::MinConviction(v) => measures::conviction(t) >= v,
            ExtraConstraint::MinEntropyGain(v) => measures::entropy_gain(t) >= v,
            ExtraConstraint::MinGiniGain(v) => measures::gini_gain(t) >= v,
            ExtraConstraint::MinCorrelation(v) => measures::correlation(t) >= v,
        });
        if !extras_ok {
            continue;
        }
        let dominated = groups.iter().any(|g| {
            g.upper.len() < upper.len() && g.upper.is_subset(&upper) && g.confidence() >= conf
        });
        if dominated {
            stats.rejected_not_interesting += 1;
            obs.pruned(PruneReason::NotInteresting);
            continue;
        }
        let lower = if params.lower_bounds {
            minelb::mine_lower_bounds(&upper, &rows, data)
        } else {
            Vec::new()
        };
        obs.group_emitted(sup_p, sup_n);
        groups.push(RuleGroup {
            upper,
            lower,
            support_set: rows,
            sup: sup_p,
            neg_sup: sup_n,
            class: params.target_class,
            n_rows: n,
            n_class: m,
        });
    }
    groups
}

/// Builds the [`MineResult`] for a run the control stopped early: empty
/// group list, stop cause attributed via [`stop_cause`].
fn halted(data: &Dataset, params: &MiningParams, ctl: &MineControl, nodes: u64) -> MineResult {
    MineResult {
        groups: Vec::new(),
        stats: MineStats {
            nodes_visited: nodes,
            budget_exhausted: true,
            stop: stop_cause(ctl),
            ..MineStats::default()
        },
        sched: SchedStats::default(),
        n_rows: data.n_rows(),
        n_class: data.class_count(params.target_class),
    }
}

/// Builds the [`MineResult`] for a completed run from closed-set
/// candidates.
fn completed<O: MineObserver + ?Sized>(
    data: &Dataset,
    params: &MiningParams,
    candidates: Vec<(IdList, RowSet)>,
    nodes: u64,
    obs: &mut O,
) -> MineResult {
    let mut stats = MineStats {
        nodes_visited: nodes,
        ..MineStats::default()
    };
    let groups = irg_filter(data, params, candidates, obs, &mut stats);
    MineResult {
        groups,
        stats,
        sched: SchedStats::default(),
        n_rows: data.n_rows(),
        n_class: data.class_count(params.target_class),
    }
}

/// CHARM behind the [`Miner`] interface: closed sets by column
/// enumeration with diffset-free tidsets, then the FARMER filter.
#[derive(Clone, Debug)]
pub struct CharmMiner {
    /// Thresholds and target class for the interestingness filter.
    pub params: MiningParams,
}

impl Miner for CharmMiner {
    fn name(&self) -> &'static str {
        "charm"
    }

    fn mine_with(
        &self,
        data: &Dataset,
        ctl: &MineControl,
        obs: &mut dyn MineObserver,
    ) -> MineResult {
        match crate::charm::charm_with(data, self.params.min_sup, ctl, &mut *obs) {
            Budgeted::Done(r) => {
                let cands = r.closed.into_iter().map(|c| (c.items, c.rows)).collect();
                completed(data, &self.params, cands, r.stats.pairs_examined, obs)
            }
            Budgeted::BudgetExhausted { nodes } => halted(data, &self.params, ctl, nodes),
        }
    }
}

/// CLOSET+ behind the [`Miner`] interface: closed sets over conditional
/// FP-trees, then the FARMER filter. CLOSET+ reports supports but not
/// tidsets, so each closed set's rows are recomputed from the dataset.
#[derive(Clone, Debug)]
pub struct ClosetMiner {
    /// Thresholds and target class for the interestingness filter.
    pub params: MiningParams,
}

impl Miner for ClosetMiner {
    fn name(&self) -> &'static str {
        "closet"
    }

    fn mine_with(
        &self,
        data: &Dataset,
        ctl: &MineControl,
        obs: &mut dyn MineObserver,
    ) -> MineResult {
        match crate::closet::closet_with(data, self.params.min_sup, ctl, &mut *obs) {
            Budgeted::Done(r) => {
                let cands = r
                    .closed
                    .into_iter()
                    .map(|c| {
                        let rows = data.rows_supporting(&c.items);
                        (c.items, rows)
                    })
                    .collect();
                completed(data, &self.params, cands, r.stats.trees_built, obs)
            }
            Budgeted::BudgetExhausted { nodes } => halted(data, &self.params, ctl, nodes),
        }
    }
}

/// Apriori behind the [`Miner`] interface: levelwise frequent itemsets,
/// deduplicated to closed sets by closure of each support set, then the
/// FARMER filter.
#[derive(Clone, Debug)]
pub struct AprioriMiner {
    /// Thresholds and target class for the interestingness filter.
    pub params: MiningParams,
}

impl Miner for AprioriMiner {
    fn name(&self) -> &'static str {
        "apriori"
    }

    fn mine_with(
        &self,
        data: &Dataset,
        ctl: &MineControl,
        obs: &mut dyn MineObserver,
    ) -> MineResult {
        match crate::apriori::apriori_with(data, self.params.min_sup, ctl, &mut *obs) {
            Budgeted::Done(frequent) => {
                let nodes = frequent.len() as u64;
                let mut by_rows: HashMap<Vec<usize>, (IdList, RowSet)> = HashMap::new();
                for f in frequent {
                    let rows = data.rows_supporting(&f.items);
                    by_rows.entry(rows.to_vec()).or_insert_with(|| {
                        let upper = data.items_common_to(&rows);
                        (upper, rows)
                    });
                }
                let cands = by_rows.into_values().collect();
                completed(data, &self.params, cands, nodes, obs)
            }
            Budgeted::BudgetExhausted { nodes } => halted(data, &self.params, ctl, nodes),
        }
    }
}

/// ColumnE behind the [`Miner`] interface. ColumnE applies the FARMER
/// filter itself, so this adapter only repackages the result. Its
/// groups carry the *representative* itemset in `lower`, not MineLB
/// lower bounds.
#[derive(Clone, Debug)]
pub struct ColumnEMiner {
    /// Full mining parameters (ColumnE honors all of them directly).
    pub params: MiningParams,
}

impl Miner for ColumnEMiner {
    fn name(&self) -> &'static str {
        "column-e"
    }

    fn mine_with(
        &self,
        data: &Dataset,
        ctl: &MineControl,
        obs: &mut dyn MineObserver,
    ) -> MineResult {
        match crate::column_e::column_e_with(data, &self.params, ctl, &mut *obs) {
            Budgeted::Done(r) => MineResult {
                groups: r.groups,
                stats: MineStats {
                    nodes_visited: r.stats.nodes_visited,
                    pruned_tight_support: r.stats.pruned_support,
                    ..MineStats::default()
                },
                sched: SchedStats::default(),
                n_rows: data.n_rows(),
                n_class: data.class_count(self.params.target_class),
            },
            Budgeted::BudgetExhausted { nodes } => halted(data, &self.params, ctl, nodes),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use farmer_core::{CountingObserver, Farmer, NoOpObserver};
    use farmer_dataset::paper_example;

    fn canon(groups: &[RuleGroup]) -> Vec<(Vec<u32>, Vec<usize>, usize, usize)> {
        let mut v: Vec<_> = groups
            .iter()
            .map(|g| {
                (
                    g.upper.as_slice().to_vec(),
                    g.support_set.to_vec(),
                    g.sup,
                    g.neg_sup,
                )
            })
            .collect();
        v.sort();
        v
    }

    fn all_miners(params: &MiningParams) -> Vec<Box<dyn Miner>> {
        vec![
            Box::new(CharmMiner {
                params: params.clone(),
            }),
            Box::new(ClosetMiner {
                params: params.clone(),
            }),
            Box::new(AprioriMiner {
                params: params.clone(),
            }),
            Box::new(ColumnEMiner {
                params: params.clone(),
            }),
        ]
    }

    #[test]
    fn adapters_agree_with_farmer_on_paper_example() {
        let d = paper_example();
        for class in [0u32, 1] {
            for (min_sup, min_conf) in [(1, 0.0), (2, 0.0), (1, 0.7), (2, 0.6)] {
                let params = MiningParams::new(class)
                    .min_sup(min_sup)
                    .min_conf(min_conf)
                    .lower_bounds(false);
                let want = canon(&Farmer::new(params.clone()).mine(&d).groups);
                for miner in all_miners(&params) {
                    let got = miner.mine_unobserved(&d);
                    assert_eq!(
                        canon(&got.groups),
                        want,
                        "{} class={class} min_sup={min_sup} min_conf={min_conf}",
                        miner.name()
                    );
                    assert!(got.stats.stop.is_complete(), "{}", miner.name());
                }
            }
        }
    }

    #[test]
    fn adapters_honor_cancellation() {
        let d = paper_example();
        let params = MiningParams::new(0).min_sup(1).lower_bounds(false);
        let ctl = MineControl::new();
        ctl.cancel();
        for miner in all_miners(&params) {
            let r = miner.mine_with(&d, &ctl, &mut NoOpObserver);
            assert!(r.stats.budget_exhausted, "{}", miner.name());
            assert_eq!(r.stats.stop, StopCause::Cancelled, "{}", miner.name());
            assert!(r.groups.is_empty(), "{}", miner.name());
        }
    }

    #[test]
    fn adapters_honor_tiny_budget() {
        let d = paper_example();
        let params = MiningParams::new(0).min_sup(1).lower_bounds(false);
        let ctl = MineControl::new().with_node_budget(Some(2));
        for miner in all_miners(&params) {
            let r = miner.mine_with(&d, &ctl, &mut NoOpObserver);
            assert!(r.stats.budget_exhausted, "{}", miner.name());
            assert_eq!(r.stats.stop, StopCause::Budget, "{}", miner.name());
        }
    }

    #[test]
    fn adapter_observer_counts_match_emitted_groups() {
        let d = paper_example();
        let params = MiningParams::new(0).min_sup(1).lower_bounds(false);
        for miner in all_miners(&params) {
            let mut obs = CountingObserver::default();
            let r = miner.mine_with(&d, &MineControl::new(), &mut obs);
            assert_eq!(obs.emitted as usize, r.groups.len(), "{}", miner.name());
            assert!(obs.nodes > 0, "{}", miner.name());
        }
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_budget_shims_match_control_runs() {
        let d = paper_example();
        let ctl = MineControl::new().with_node_budget(Some(7));
        let via_shim = crate::charm::charm_budgeted(&d, 1, Some(7));
        let via_ctl = crate::charm::charm_with(&d, 1, &ctl, &mut NoOpObserver);
        assert_eq!(via_shim.is_done(), via_ctl.is_done());
        let via_shim = crate::closet::closet_budgeted(&d, 1, Some(3));
        let via_ctl = crate::closet::closet_with(
            &d,
            1,
            &ctl.clone().with_node_budget(Some(3)),
            &mut NoOpObserver,
        );
        assert_eq!(via_shim.is_done(), via_ctl.is_done());
    }
}

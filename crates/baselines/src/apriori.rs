//! Apriori — levelwise frequent-itemset mining (Agrawal & Srikant,
//! VLDB 1994).
//!
//! Candidates of size `k+1` are joined from frequent `k`-itemsets sharing
//! a `k-1` prefix and pruned by the downward-closure property before
//! support counting. Support counting here uses per-item row bitsets
//! (the dataset is tiny row-wise), which is kinder to the microarray
//! shape than transaction scans yet leaves the algorithm exactly as
//! levelwise as the original — the candidate explosion on long patterns
//! is untouched, which is what the comparison needs to show.

use crate::Budgeted;
use farmer_core::session::{MineControl, MineObserver, NoOpObserver};
use farmer_dataset::Dataset;
use rowset::{IdList, RowSet};

/// A frequent itemset with its support count.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FrequentItemset {
    /// The items.
    pub items: IdList,
    /// `|R(items)|`.
    pub support: usize,
}

/// Mines all frequent itemsets with `|R(X)| >= min_sup`.
///
/// `node_budget` bounds the number of candidates *counted* across all
/// levels; `None` means unlimited. Budget exhaustion aborts the whole
/// run (a partial levelwise answer is not useful).
pub fn apriori(
    data: &Dataset,
    min_sup: usize,
    node_budget: Option<u64>,
) -> Budgeted<Vec<FrequentItemset>> {
    let ctl = MineControl::new().with_node_budget(node_budget);
    apriori_with(data, min_sup, &ctl, &mut NoOpObserver)
}

/// [`apriori`] under a [`MineControl`]: one control tick per candidate
/// counted. Any control-triggered stop reports
/// [`Budgeted::BudgetExhausted`] (a partial levelwise answer is not
/// useful).
pub fn apriori_with<O: MineObserver + ?Sized>(
    data: &Dataset,
    min_sup: usize,
    ctl: &MineControl,
    obs: &mut O,
) -> Budgeted<Vec<FrequentItemset>> {
    let min_sup = min_sup.max(1);
    let mut st = ctl.state();

    // L1
    let mut frequent: Vec<FrequentItemset> = Vec::new();
    let mut level: Vec<(Vec<u32>, RowSet)> = Vec::new();
    for i in 0..data.n_items() as u32 {
        obs.node_entered(1);
        if st.tick().is_some() {
            return Budgeted::BudgetExhausted { nodes: st.ticks() };
        }
        let rows = data.item_rows(i);
        if rows.len() >= min_sup {
            level.push((vec![i], rows.clone()));
        }
    }

    while !level.is_empty() {
        for (items, rows) in &level {
            frequent.push(FrequentItemset {
                items: IdList::from_sorted(items.clone()),
                support: rows.len(),
            });
        }
        // join step: pairs sharing the first k-1 items (level is sorted
        // lexicographically by construction)
        let mut next: Vec<(Vec<u32>, RowSet)> = Vec::new();
        let k = level[0].0.len();
        let mut start = 0;
        while start < level.len() {
            // block of equal (k-1)-prefixes
            let prefix = &level[start].0[..k - 1];
            let mut end = start + 1;
            while end < level.len() && &level[end].0[..k - 1] == prefix {
                end += 1;
            }
            for a in start..end {
                for b in a + 1..end {
                    let mut cand = level[a].0.clone();
                    cand.push(level[b].0[k - 1]);
                    // prune step: all k-subsets must be frequent; with the
                    // join above only subsets dropping one of the first
                    // k-1 items still need checking
                    if !all_subsets_frequent(&cand, &level) {
                        continue;
                    }
                    obs.node_entered(cand.len());
                    if st.tick().is_some() {
                        return Budgeted::BudgetExhausted { nodes: st.ticks() };
                    }
                    let rows = level[a].1.intersection(&level[b].1);
                    if rows.len() >= min_sup {
                        next.push((cand, rows));
                    }
                }
            }
            start = end;
        }
        next.sort_by(|a, b| a.0.cmp(&b.0));
        level = next;
    }
    Budgeted::Done(frequent)
}

/// Downward-closure check: every `k`-subset of the `k+1` candidate must
/// be in the current frequent level. The level is sorted, so binary
/// search works.
fn all_subsets_frequent(cand: &[u32], level: &[(Vec<u32>, RowSet)]) -> bool {
    let mut sub = Vec::with_capacity(cand.len() - 1);
    // skipping either of the two last items reproduces the join's parents
    for skip in 0..cand.len().saturating_sub(2) {
        sub.clear();
        sub.extend(
            cand.iter()
                .enumerate()
                .filter(|&(j, _)| j != skip)
                .map(|(_, &i)| i),
        );
        if level
            .binary_search_by(|probe| probe.0.as_slice().cmp(sub.as_slice()))
            .is_err()
        {
            return false;
        }
    }
    true
}

/// Counts frequent itemsets per size; convenient for cross-checks.
pub fn count_by_size(sets: &[FrequentItemset]) -> Vec<usize> {
    let max = sets.iter().map(|s| s.items.len()).max().unwrap_or(0);
    let mut counts = vec![0usize; max + 1];
    for s in sets {
        counts[s.items.len()] += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use farmer_dataset::{paper_example, DatasetBuilder};
    use std::collections::HashSet;

    fn naive_frequent(data: &Dataset, min_sup: usize) -> HashSet<(Vec<u32>, usize)> {
        // enumerate all itemsets over items that appear somewhere
        let items: Vec<u32> = (0..data.n_items() as u32).collect();
        let mut out = HashSet::new();
        let n_masks: u64 = 1 << items.len().min(20);
        for mask in 1..n_masks {
            let set: Vec<u32> = items
                .iter()
                .enumerate()
                .filter(|&(j, _)| mask & (1 << j) != 0)
                .map(|(_, &i)| i)
                .collect();
            let sup = data
                .rows_supporting(&IdList::from_sorted(set.clone()))
                .len();
            if sup >= min_sup {
                out.insert((set, sup));
            }
        }
        out
    }

    #[test]
    fn matches_naive_on_small_dense_data() {
        let mut b = DatasetBuilder::new(1);
        b.add_row([0, 1, 2, 3], 0);
        b.add_row([0, 1, 2], 0);
        b.add_row([1, 2, 3], 0);
        b.add_row([0, 3], 0);
        let d = b.build();
        for min_sup in 1..=3 {
            let got: HashSet<(Vec<u32>, usize)> = apriori(&d, min_sup, None)
                .expect_done("no budget")
                .into_iter()
                .map(|f| (f.items.as_slice().to_vec(), f.support))
                .collect();
            assert_eq!(got, naive_frequent(&d, min_sup), "min_sup={min_sup}");
        }
    }

    #[test]
    fn paper_example_level1_counts() {
        let d = paper_example();
        let sets = apriori(&d, 2, None).expect_done("no budget");
        // singletons with support >= 2: a(4) b(2) c(2) d(2) e(3) f(2) h(3)
        // l(3) o(2) p(2) q(2) r(2) s(2) t(2)
        let singles = sets.iter().filter(|s| s.items.len() == 1).count();
        assert_eq!(singles, 14);
        // {a,e,h} occurs in rows 2,3,4
        let a = d.item_by_name("a").unwrap();
        let e = d.item_by_name("e").unwrap();
        let h = d.item_by_name("h").unwrap();
        let aeh = IdList::from_iter([a, e, h]);
        let found = sets.iter().find(|s| s.items == aeh).expect("aeh frequent");
        assert_eq!(found.support, 3);
    }

    #[test]
    fn budget_cuts_off() {
        let d = paper_example();
        let r = apriori(&d, 1, Some(5));
        assert!(!r.is_done());
        match r {
            Budgeted::BudgetExhausted { nodes } => assert_eq!(nodes, 6),
            Budgeted::Done(_) => unreachable!(),
        }
    }

    #[test]
    fn count_by_size_works() {
        let d = paper_example();
        let sets = apriori(&d, 3, None).expect_done("no budget");
        let counts = count_by_size(&sets);
        assert_eq!(counts.iter().sum::<usize>(), sets.len());
        assert!(counts[1] >= 1);
    }

    #[test]
    fn min_sup_monotone() {
        let d = paper_example();
        let a = apriori(&d, 1, None).expect_done("x").len();
        let b = apriori(&d, 2, None).expect_done("x").len();
        let c = apriori(&d, 3, None).expect_done("x").len();
        assert!(a >= b && b >= c);
    }
}

//! CHARM — closed-itemset mining over the IT-tree (Zaki & Hsiao,
//! SDM 2002).
//!
//! CHARM explores itemset–tidset ("IT") pairs depth-first, combining
//! sibling pairs and exploiting four tidset relationships to jump
//! straight to closed sets:
//!
//! 1. `t(Xi) = t(Xj)` — `Xj` can never appear without `Xi`; fold `Xj`'s
//!    items into `Xi` and drop `Xj`;
//! 2. `t(Xi) ⊂ t(Xj)` — fold `Xj`'s items into `Xi`, keep `Xj`;
//! 3. `t(Xi) ⊃ t(Xj)` — a genuine child `Xi ∪ Xj` with tidset
//!    `t(Xi) ∩ t(Xj)`;
//! 4. incomparable — likewise a genuine child.
//!
//! A generated set is emitted unless an already-found closed set with
//! the same tidset subsumes it. Like the original, items are processed
//! in ascending support order, which maximizes the effect of properties
//! 1 and 2.

use farmer_core::session::{ControlState, MineControl, MineObserver, NoOpObserver};
use farmer_dataset::Dataset;
use rowset::{IdList, RowSet};
use std::collections::HashMap;

/// A closed itemset found by CHARM.
#[derive(Clone, Debug, PartialEq)]
pub struct ClosedSet {
    /// The itemset (closed under the dataset's Galois connection).
    pub items: IdList,
    /// The tidset `R(items)`.
    pub rows: RowSet,
}

impl ClosedSet {
    /// `|R(items)|`.
    pub fn support(&self) -> usize {
        self.rows.len()
    }
}

/// Search counters for a CHARM run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CharmStats {
    /// IT-pairs examined (tidset intersections performed).
    pub pairs_examined: u64,
    /// Candidates dropped by the subsumption check.
    pub subsumed: u64,
}

/// Result of [`charm`].
#[derive(Clone, Debug)]
pub struct CharmResult {
    /// All closed itemsets with support ≥ the threshold.
    pub closed: Vec<ClosedSet>,
    /// Search counters.
    pub stats: CharmStats,
}

/// One itemset–tidset pair of the IT-tree.
#[derive(Clone)]
struct ItPair {
    items: IdList,
    rows: RowSet,
}

/// CHARM over **diffsets** (dCHARM, Zaki's dense-data variant): each
/// IT-node stores the *difference* from its parent's tidset instead of
/// the tidset itself.
///
/// With `d(PX) = t(P) \ t(PX)` the four CHARM properties translate to
/// diffset comparisons (`t(Xi) ⊆ t(Xj) ⟺ d(Xj) ⊆ d(Xi)`), supports
/// update as `sup(PXY) = sup(PX) − |d(PY) \ d(PX)|`, and on dense data
/// the stored sets shrink dramatically as the tree deepens. Output is
/// identical to [`charm`]; the search-time representation is the only
/// difference (support sets are reconstructed once at the end).
pub fn charm_diffsets(data: &Dataset, min_sup: usize) -> CharmResult {
    let min_sup = min_sup.max(1);
    let n = data.n_rows();
    let full = RowSet::full(n);
    let mut ctx = DCharmCtx {
        min_sup,
        candidates: Vec::new(),
        stats: CharmStats::default(),
    };
    // root level: diffsets relative to the full row set
    let mut roots: Vec<DPair> = (0..data.n_items() as u32)
        .filter(|&i| data.item_rows(i).len() >= min_sup)
        .map(|i| DPair {
            items: IdList::from_iter([i]),
            diff: full.difference(data.item_rows(i)),
            sup: data.item_rows(i).len(),
        })
        .collect();
    roots.sort_by_key(|p| (p.sup, p.items.as_slice().to_vec()));
    ctx.extend(roots);

    // assemble: reconstruct support sets and keep the largest itemset
    // per support set (the closure)
    let mut by_rows: HashMap<Vec<usize>, (IdList, RowSet)> = HashMap::new();
    let mut subsumed = 0u64;
    for (items, _) in ctx.candidates {
        let rows = data.rows_supporting(&items);
        let key = rows_key(&rows);
        match by_rows.get_mut(&key) {
            Some((existing, _)) => {
                if items.is_subset(existing) {
                    subsumed += 1;
                } else {
                    *existing = existing.union(&items);
                }
            }
            None => {
                by_rows.insert(key, (items, rows));
            }
        }
    }
    CharmResult {
        closed: by_rows
            .into_values()
            .map(|(items, rows)| ClosedSet { items, rows })
            .collect(),
        stats: CharmStats {
            subsumed: ctx.stats.subsumed + subsumed,
            ..ctx.stats
        },
    }
}

/// One itemset–diffset pair (relative to the parent node's tidset).
#[derive(Clone)]
struct DPair {
    items: IdList,
    diff: RowSet,
    sup: usize,
}

struct DCharmCtx {
    min_sup: usize,
    /// (itemset, support) candidates pending closure assembly.
    candidates: Vec<(IdList, usize)>,
    stats: CharmStats,
}

impl DCharmCtx {
    fn extend(&mut self, mut siblings: Vec<DPair>) {
        let mut idx = 0;
        while idx < siblings.len() {
            let mut items = siblings[idx].items.clone();
            let diff_i = siblings[idx].diff.clone();
            let sup_i = siblings[idx].sup;
            let mut children: Vec<DPair> = Vec::new();

            let mut j = idx + 1;
            while j < siblings.len() {
                self.stats.pairs_examined += 1;
                let diff_j = &siblings[j].diff;
                // d(child) relative to t(Xi): d_j \ d_i
                let d_child = diff_j.difference(&diff_i);
                let sup_child = sup_i - d_child.len();
                if sup_child < self.min_sup {
                    j += 1;
                    continue;
                }
                let eq_i = d_child.is_empty(); // d_j ⊆ d_i ⟺ t(Xi) ⊆ t(Xj)
                let eq_j = diff_i.is_subset(diff_j); // d_i ⊆ d_j ⟺ t(Xj) ⊆ t(Xi)
                if eq_i && eq_j {
                    items = items.union(&siblings[j].items);
                    siblings.remove(j);
                    continue;
                } else if eq_i {
                    items = items.union(&siblings[j].items);
                } else {
                    children.push(DPair {
                        items: items.union(&siblings[j].items),
                        diff: d_child,
                        sup: sup_child,
                    });
                }
                j += 1;
            }

            if !children.is_empty() {
                for c in &mut children {
                    c.items = c.items.union(&items);
                }
                children.sort_by_key(|p| (p.sup, p.items.as_slice().to_vec()));
                self.extend(children);
            }
            self.candidates.push((items, sup_i));
            idx += 1;
        }
    }
}

/// Mines all closed itemsets of `data` with `|R(X)| >= min_sup`.
///
/// ```
/// use farmer_baselines::charm::charm;
/// let data = farmer_dataset::paper_example();
/// let result = charm(&data, 2);
/// // every output is closed: I(R(X)) == X
/// for c in &result.closed {
///     assert_eq!(data.items_common_to(&c.rows), c.items);
/// }
/// ```
pub fn charm(data: &Dataset, min_sup: usize) -> CharmResult {
    charm_with(data, min_sup, &MineControl::new(), &mut NoOpObserver)
        .expect_done("uncontrolled charm run")
}

/// [`charm`] with an optional budget on examined IT-pairs, for sweeps
/// that must not hang on hopeless settings.
#[deprecated(
    since = "0.2.0",
    note = "use charm_with with a MineControl carrying the budget"
)]
pub fn charm_budgeted(
    data: &Dataset,
    min_sup: usize,
    pair_budget: Option<u64>,
) -> crate::Budgeted<CharmResult> {
    let ctl = MineControl::new().with_node_budget(pair_budget);
    charm_with(data, min_sup, &ctl, &mut NoOpObserver)
}

/// [`charm`] under a [`MineControl`]: one control tick per examined
/// IT-pair, so budgets, deadlines, and cooperative cancellation all land
/// within milliseconds. Any control-triggered stop reports
/// [`Budgeted::BudgetExhausted`](crate::Budgeted) (a truncated CHARM run
/// has no useful partial answer — subsumption checks are global).
pub fn charm_with<O: MineObserver + ?Sized>(
    data: &Dataset,
    min_sup: usize,
    ctl: &MineControl,
    obs: &mut O,
) -> crate::Budgeted<CharmResult> {
    let min_sup = min_sup.max(1);
    let mut ctx = CharmCtx {
        min_sup,
        st: ctl.state(),
        obs,
        closed_by_rows: HashMap::new(),
        stats: CharmStats::default(),
    };

    // frequent single items, ascending support (CHARM's preferred order)
    let mut roots: Vec<ItPair> = (0..data.n_items() as u32)
        .filter(|&i| data.item_rows(i).len() >= min_sup)
        .map(|i| ItPair {
            items: IdList::from_iter([i]),
            rows: data.item_rows(i).clone(),
        })
        .collect();
    roots.sort_by_key(|p| (p.rows.len(), p.items.as_slice().to_vec()));
    if ctx.extend(roots).is_err() {
        return crate::Budgeted::BudgetExhausted {
            nodes: ctx.stats.pairs_examined,
        };
    }

    let closed = ctx
        .closed_by_rows
        .into_iter()
        .map(|(rows, items)| ClosedSet {
            items,
            rows: rows_from_key(&rows, data.n_rows()),
        })
        .collect();
    crate::Budgeted::Done(CharmResult {
        closed,
        stats: ctx.stats,
    })
}

fn rows_key(rows: &RowSet) -> Vec<usize> {
    rows.to_vec()
}

fn rows_from_key(key: &[usize], n: usize) -> RowSet {
    RowSet::from_ids(n, key.iter().copied())
}

struct CharmCtx<'a, O: MineObserver + ?Sized> {
    min_sup: usize,
    st: ControlState<'a>,
    obs: &'a mut O,
    /// tidset → largest itemset seen with that tidset. Because every
    /// itemset sharing a tidset is a subset of the tidset's closure, the
    /// largest survivor is the closed set.
    closed_by_rows: HashMap<Vec<usize>, IdList>,
    stats: CharmStats,
}

impl<O: MineObserver + ?Sized> CharmCtx<'_, O> {
    fn extend(&mut self, mut siblings: Vec<ItPair>) -> Result<(), ()> {
        let mut idx = 0;
        while idx < siblings.len() {
            // `items` may grow via properties 1 & 2 while scanning
            let mut items = siblings[idx].items.clone();
            let rows_i = siblings[idx].rows.clone();
            let mut children: Vec<ItPair> = Vec::new();

            let mut j = idx + 1;
            while j < siblings.len() {
                self.stats.pairs_examined += 1;
                self.obs.node_entered(items.len());
                if self.st.tick().is_some() {
                    return Err(());
                }
                let rows_j = &siblings[j].rows;
                let inter = rows_i.intersection(rows_j);
                if inter.len() < self.min_sup {
                    j += 1;
                    continue;
                }
                let eq_i = inter.len() == rows_i.len(); // t(Xi) ⊆ t(Xj)
                let eq_j = inter.len() == rows_j.len(); // t(Xj) ⊆ t(Xi)
                if eq_i && eq_j {
                    // property 1: identical tidsets — absorb Xj entirely
                    items = items.union(&siblings[j].items);
                    siblings.remove(j);
                    continue; // do not advance j
                } else if eq_i {
                    // property 2: t(Xi) ⊂ t(Xj) — absorb Xj's items
                    items = items.union(&siblings[j].items);
                } else {
                    // properties 3 & 4: a genuine child
                    children.push(ItPair {
                        items: items.union(&siblings[j].items),
                        rows: inter,
                    });
                }
                j += 1;
            }

            if !children.is_empty() {
                // children collected before late property-1/2 absorptions
                // may miss items folded into `items` afterwards; re-unite
                for c in &mut children {
                    c.items = c.items.union(&items);
                }
                children.sort_by_key(|p| (p.rows.len(), p.items.as_slice().to_vec()));
                self.extend(children)?;
            }
            self.insert_closed(items, &rows_i);
            idx += 1;
        }
        Ok(())
    }

    fn insert_closed(&mut self, items: IdList, rows: &RowSet) {
        let key = rows_key(rows);
        match self.closed_by_rows.get_mut(&key) {
            Some(existing) => {
                // same tidset: the larger itemset is the better closure
                // candidate (the true closure is their union)
                if items.is_subset(existing) {
                    self.stats.subsumed += 1;
                } else {
                    *existing = existing.union(&items);
                }
            }
            None => {
                self.closed_by_rows.insert(key, items);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use farmer_core::carpenter::carpenter;
    use farmer_dataset::{paper_example, DatasetBuilder};
    use farmer_support::rng::{Rng, SeedableRng, StdRng};
    use std::collections::HashSet;

    fn canon_charm(r: &CharmResult) -> HashSet<(Vec<u32>, Vec<usize>)> {
        r.closed
            .iter()
            .map(|c| (c.items.as_slice().to_vec(), c.rows.to_vec()))
            .collect()
    }

    fn canon_carp(data: &Dataset, min_sup: usize) -> HashSet<(Vec<u32>, Vec<usize>)> {
        carpenter(data, min_sup)
            .patterns
            .iter()
            .map(|p| (p.items.as_slice().to_vec(), p.rows.to_vec()))
            .collect()
    }

    use farmer_dataset::Dataset;

    #[test]
    fn agrees_with_carpenter_on_paper_example() {
        let d = paper_example();
        for min_sup in 1..=4 {
            assert_eq!(
                canon_charm(&charm(&d, min_sup)),
                canon_carp(&d, min_sup),
                "min_sup={min_sup}"
            );
        }
    }

    #[test]
    fn agrees_with_carpenter_on_random_data() {
        let mut rng = StdRng::seed_from_u64(11);
        for trial in 0..15 {
            let mut b = DatasetBuilder::new(1);
            let n_rows = rng.gen_range(3..=9);
            let n_items = rng.gen_range(3..=12);
            for _ in 0..n_rows {
                let items: Vec<u32> = (0..n_items as u32).filter(|_| rng.gen_bool(0.5)).collect();
                b.add_row(items, 0);
            }
            let d = b.build();
            let min_sup = rng.gen_range(1..=3);
            assert_eq!(
                canon_charm(&charm(&d, min_sup)),
                canon_carp(&d, min_sup),
                "trial={trial} min_sup={min_sup}"
            );
        }
    }

    #[test]
    fn diffsets_agree_with_tidsets() {
        let d = paper_example();
        for min_sup in 1..=4 {
            assert_eq!(
                canon_charm(&charm_diffsets(&d, min_sup)),
                canon_charm(&charm(&d, min_sup)),
                "min_sup={min_sup}"
            );
        }
    }

    #[test]
    fn diffsets_agree_on_random_data() {
        let mut rng = StdRng::seed_from_u64(13);
        for trial in 0..15 {
            let mut b = DatasetBuilder::new(1);
            let n_rows = rng.gen_range(3..=9);
            let n_items = rng.gen_range(3..=12);
            for _ in 0..n_rows {
                let items: Vec<u32> = (0..n_items as u32).filter(|_| rng.gen_bool(0.6)).collect();
                b.add_row(items, 0);
            }
            let d = b.build();
            let min_sup = rng.gen_range(1..=3);
            assert_eq!(
                canon_charm(&charm_diffsets(&d, min_sup)),
                canon_charm(&charm(&d, min_sup)),
                "trial={trial} min_sup={min_sup}"
            );
        }
    }

    #[test]
    fn outputs_are_closed() {
        let d = paper_example();
        for c in charm(&d, 1).closed {
            assert_eq!(
                d.items_common_to(&c.rows),
                c.items,
                "not closed: {:?}",
                c.items
            );
            assert_eq!(d.rows_supporting(&c.items), c.rows);
        }
    }

    #[test]
    fn property_one_absorbs_duplicates() {
        // items 0 and 1 always co-occur: they must land in one closed set
        let mut b = DatasetBuilder::new(1);
        b.add_row([0, 1, 2], 0);
        b.add_row([0, 1], 0);
        b.add_row([2], 0);
        let d = b.build();
        let r = charm(&d, 1);
        let zero_one: Vec<&ClosedSet> = r
            .closed
            .iter()
            .filter(|c| c.items.contains(0) || c.items.contains(1))
            .collect();
        for c in zero_one {
            assert!(c.items.contains(0) && c.items.contains(1));
        }
        assert!(r.stats.pairs_examined > 0);
    }
}

//! CLOSET+-style closed-itemset mining over FP-trees (Wang, Han, Pei,
//! KDD 2003).
//!
//! The miner recurses over conditional FP-trees in ascending item
//! frequency order, applying the CLOSET+ staples:
//!
//! * **item merging** — items occurring in *every* transaction of the
//!   conditional base belong to the closure of the current prefix and
//!   are hoisted instead of recursed on;
//! * **single-path shortcut** — a chain-shaped conditional tree yields
//!   its closed sets by direct combination of count-change points;
//! * **subsumption checking** — a candidate `(X, sup)` is closed iff no
//!   already-found closed set with the same support strictly contains
//!   it; candidates are indexed by support for the check.
//!
//! The output is exactly the closed frequent itemsets; tests pin it to
//! CHARM and CARPENTER.

use crate::fptree::FpTree;
use farmer_core::session::{ControlState, MineControl, MineObserver, NoOpObserver};
use farmer_dataset::{Dataset, ItemId};
use rowset::IdList;
use std::collections::HashMap;

/// A closed itemset with its support count.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClosedSet {
    /// The itemset.
    pub items: IdList,
    /// `|R(items)|`.
    pub support: usize,
}

/// Search counters for a CLOSET+ run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ClosetStats {
    /// Conditional FP-trees built.
    pub trees_built: u64,
    /// Candidates dropped by subsumption.
    pub subsumed: u64,
    /// Single-path shortcuts taken.
    pub single_paths: u64,
}

/// Result of [`closet`].
#[derive(Clone, Debug)]
pub struct ClosetResult {
    /// All closed itemsets with support ≥ the threshold.
    pub closed: Vec<ClosedSet>,
    /// Search counters.
    pub stats: ClosetStats,
}

/// Mines all closed itemsets of `data` with `|R(X)| >= min_sup`.
pub fn closet(data: &Dataset, min_sup: usize) -> ClosetResult {
    closet_with(data, min_sup, &MineControl::new(), &mut NoOpObserver)
        .expect_done("uncontrolled closet run")
}

/// [`closet`] with an optional budget on conditional FP-trees built, for
/// sweeps that must not hang on hopeless settings.
#[deprecated(
    since = "0.2.0",
    note = "use closet_with with a MineControl carrying the budget"
)]
pub fn closet_budgeted(
    data: &Dataset,
    min_sup: usize,
    tree_budget: Option<u64>,
) -> crate::Budgeted<ClosetResult> {
    let ctl = MineControl::new().with_node_budget(tree_budget);
    closet_with(data, min_sup, &ctl, &mut NoOpObserver)
}

/// [`closet`] under a [`MineControl`]: one control tick per conditional
/// FP-tree built. Any control-triggered stop reports
/// [`Budgeted::BudgetExhausted`](crate::Budgeted) — a truncated CLOSET+
/// run has no useful partial answer (subsumption checks are global).
pub fn closet_with<O: MineObserver + ?Sized>(
    data: &Dataset,
    min_sup: usize,
    ctl: &MineControl,
    obs: &mut O,
) -> crate::Budgeted<ClosetResult> {
    let min_sup = min_sup.max(1);
    let transactions: Vec<(Vec<ItemId>, usize)> = (0..data.n_rows() as u32)
        .map(|r| (data.row(r).iter().collect(), 1))
        .collect();
    let mut ctx = ClosetCtx {
        min_sup,
        st: ctl.state(),
        obs,
        by_support: HashMap::new(),
        stats: ClosetStats::default(),
    };
    let tree = FpTree::build(&transactions, min_sup);
    ctx.stats.trees_built += 1;
    if ctx.mine(&tree, &[]).is_err() {
        return crate::Budgeted::BudgetExhausted {
            nodes: ctx.stats.trees_built,
        };
    }
    let closed = ctx
        .by_support
        .into_iter()
        .flat_map(|(support, sets)| {
            sets.into_iter()
                .map(move |items| ClosedSet { items, support })
        })
        .collect();
    crate::Budgeted::Done(ClosetResult {
        closed,
        stats: ctx.stats,
    })
}

struct ClosetCtx<'a, O: MineObserver + ?Sized> {
    min_sup: usize,
    st: ControlState<'a>,
    obs: &'a mut O,
    /// support → closed itemsets at that support (the subsumption index).
    by_support: HashMap<usize, Vec<IdList>>,
    stats: ClosetStats,
}

impl<O: MineObserver + ?Sized> ClosetCtx<'_, O> {
    fn mine(&mut self, tree: &FpTree, prefix: &[ItemId]) -> Result<(), ()> {
        // single-path shortcut: closed sets are the prefix plus each
        // maximal run of equal counts along the chain
        if let Some(path) = tree.single_path() {
            self.stats.single_paths += 1;
            let mut acc: Vec<ItemId> = prefix.to_vec();
            let mut k = 0;
            while k < path.len() {
                let count = path[k].1;
                while k < path.len() && path[k].1 == count {
                    acc.push(path[k].0);
                    k += 1;
                }
                // a count change point closes the itemset accumulated so far
                if count >= self.min_sup {
                    self.emit(IdList::from_iter(acc.iter().copied()), count);
                }
            }
            return Ok(());
        }

        for item in tree.items_ascending() {
            let support = tree.item_count(item);
            if support < self.min_sup {
                continue;
            }
            let base = tree.conditional_patterns(item);
            // item merging: items present in every transaction of the base
            // (with full weight) join the closure immediately
            let mut counts: HashMap<ItemId, usize> = HashMap::new();
            for (path, w) in &base {
                for &i in path {
                    *counts.entry(i).or_insert(0) += w;
                }
            }
            let merged: Vec<ItemId> = counts
                .iter()
                .filter(|&(_, &c)| c == support)
                .map(|(&i, _)| i)
                .collect();

            let mut new_prefix: Vec<ItemId> = prefix.to_vec();
            new_prefix.push(item);
            new_prefix.extend(&merged);

            // recurse on the remaining conditional items
            let sub_base: Vec<(Vec<ItemId>, usize)> = base
                .iter()
                .map(|(path, w)| {
                    (
                        path.iter()
                            .copied()
                            .filter(|i| !merged.contains(i))
                            .collect(),
                        *w,
                    )
                })
                .collect();
            let sub = FpTree::build(&sub_base, self.min_sup);
            self.stats.trees_built += 1;
            self.obs.node_entered(prefix.len() + 1);
            if self.st.tick().is_some() {
                return Err(());
            }
            if sub.is_empty() {
                self.emit(IdList::from_iter(new_prefix.iter().copied()), support);
            } else {
                self.mine(&sub, &new_prefix)?;
                // the prefix itself is closed unless some conditional item
                // kept its full support (then a superset subsumes it);
                // emit() performs that check
                self.emit(IdList::from_iter(new_prefix.iter().copied()), support);
            }
        }
        Ok(())
    }

    /// Inserts a candidate unless an existing closed set with the same
    /// support contains it; removes existing sets the candidate contains
    /// (they were premature emissions of non-closed sets).
    fn emit(&mut self, items: IdList, support: usize) {
        let bucket = self.by_support.entry(support).or_default();
        for existing in bucket.iter() {
            if items.is_subset(existing) {
                self.stats.subsumed += 1;
                return;
            }
        }
        bucket.retain(|existing| !existing.is_subset(&items));
        bucket.push(items);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::charm::charm;
    use farmer_dataset::{paper_example, DatasetBuilder};
    use farmer_support::rng::{Rng, SeedableRng, StdRng};
    use std::collections::HashSet;

    fn canon(r: &ClosetResult) -> HashSet<(Vec<u32>, usize)> {
        r.closed
            .iter()
            .map(|c| (c.items.as_slice().to_vec(), c.support))
            .collect()
    }

    fn canon_charm(data: &Dataset, min_sup: usize) -> HashSet<(Vec<u32>, usize)> {
        charm(data, min_sup)
            .closed
            .iter()
            .map(|c| (c.items.as_slice().to_vec(), c.support()))
            .collect()
    }

    use farmer_dataset::Dataset;

    #[test]
    fn agrees_with_charm_on_paper_example() {
        let d = paper_example();
        for min_sup in 1..=4 {
            assert_eq!(
                canon(&closet(&d, min_sup)),
                canon_charm(&d, min_sup),
                "min_sup={min_sup}"
            );
        }
    }

    #[test]
    fn agrees_with_charm_on_random_data() {
        let mut rng = StdRng::seed_from_u64(23);
        for trial in 0..15 {
            let mut b = DatasetBuilder::new(1);
            let n_rows = rng.gen_range(3..=9);
            let n_items = rng.gen_range(3..=12);
            for _ in 0..n_rows {
                let items: Vec<u32> = (0..n_items as u32).filter(|_| rng.gen_bool(0.5)).collect();
                b.add_row(items, 0);
            }
            let d = b.build();
            let min_sup = rng.gen_range(1..=3);
            assert_eq!(
                canon(&closet(&d, min_sup)),
                canon_charm(&d, min_sup),
                "trial={trial} min_sup={min_sup}"
            );
        }
    }

    #[test]
    fn outputs_are_closed_and_supported() {
        let d = paper_example();
        for c in closet(&d, 2).closed {
            let support = d.rows_supporting(&c.items);
            assert_eq!(support.len(), c.support);
            assert_eq!(
                d.items_common_to(&support),
                c.items,
                "not closed: {:?}",
                c.items
            );
        }
    }

    #[test]
    fn single_path_shortcut_fires() {
        let mut b = DatasetBuilder::new(1);
        b.add_row([0, 1, 2], 0);
        b.add_row([0, 1], 0);
        b.add_row([0], 0);
        let d = b.build();
        let r = closet(&d, 1);
        assert!(r.stats.single_paths > 0);
        let got = canon(&r);
        assert!(got.contains(&(vec![0], 3)));
        assert!(got.contains(&(vec![0, 1], 2)));
        assert!(got.contains(&(vec![0, 1, 2], 1)));
        assert_eq!(got.len(), 3);
    }
}

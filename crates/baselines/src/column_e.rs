//! ColumnE — column-enumeration interesting-rule mining, after Bayardo &
//! Agrawal's "Mining the most interesting rules" (KDD 1999).
//!
//! This is the paper's closest competitor: the same *problem* as FARMER
//! (rules `A → C` under minimum support/confidence with an
//! interestingness filter) attacked through the conventional
//! *column* enumeration. The miner walks the set-enumeration tree over
//! items in ascending id order, maintaining tidsets, pruning subtrees by
//! the anti-monotone rule-support bound, grouping discovered rules by
//! antecedent support set (the rule groups), and finally applying the
//! identical interesting-group filter FARMER uses, so that both miners
//! answer exactly the same question and only the enumeration direction
//! differs.
//!
//! On microarray-shaped data the itemset lattice under any useful
//! support threshold is astronomically large — the paper reports runs
//! exceeding a day — so the walk takes a node budget and reports
//! exhaustion instead of hanging (see [`Budgeted`]).

use crate::Budgeted;
use farmer_core::measures::{self, chi_square, Contingency};
use farmer_core::session::{ControlState, MineControl, MineObserver, NoOpObserver, PruneReason};
use farmer_core::{ExtraConstraint, MiningParams, RuleGroup};
use farmer_dataset::Dataset;
use rowset::{IdList, RowSet};
use std::collections::HashMap;

/// Search counters for a ColumnE run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ColumnEStats {
    /// Itemset nodes visited.
    pub nodes_visited: u64,
    /// Subtrees cut by the support bound.
    pub pruned_support: u64,
    /// Distinct rule groups (antecedent support sets) encountered.
    pub groups_found: u64,
}

/// Result of [`column_e`].
#[derive(Clone, Debug)]
pub struct ColumnEResult {
    /// The interesting rule groups — same semantics as FARMER's output.
    ///
    /// ColumnE proper reports one *representative* rule per group (the
    /// first itemset that reached the group's support set); the
    /// representative is stored in `RuleGroup::lower` as a single entry,
    /// while `upper` holds the closure for comparability with FARMER.
    pub groups: Vec<RuleGroup>,
    /// Search counters.
    pub stats: ColumnEStats,
}

/// Mines interesting rule groups by column enumeration.
///
/// `node_budget` bounds visited itemset nodes (`None` = unlimited).
pub fn column_e(
    data: &Dataset,
    params: &MiningParams,
    node_budget: Option<u64>,
) -> Budgeted<ColumnEResult> {
    let ctl = MineControl::new().with_node_budget(node_budget);
    column_e_with(data, params, &ctl, &mut NoOpObserver)
}

/// [`column_e`] under a [`MineControl`]. The control's budget takes
/// precedence over [`MiningParams::node_budget`]; any control-triggered
/// stop reports [`Budgeted::BudgetExhausted`] because the subsumption
/// filter needs the full group set to be meaningful.
pub fn column_e_with<O: MineObserver + ?Sized>(
    data: &Dataset,
    params: &MiningParams,
    ctl: &MineControl,
    obs: &mut O,
) -> Budgeted<ColumnEResult> {
    let n = data.n_rows();
    let m = data.class_count(params.target_class);
    let class_rows = data.class_rows(params.target_class);

    // frequent single items under the rule-support bound |R({i}) ∩ C|
    let frequent: Vec<u32> = (0..data.n_items() as u32)
        .filter(|&i| data.item_rows(i).intersection_len(&class_rows) >= params.min_sup)
        .collect();

    let mut ctx = WalkCtx {
        data,
        class_rows: &class_rows,
        min_sup: params.min_sup,
        st: ctl.state_with_budget(ctl.node_budget.or(params.node_budget)),
        obs,
        frequent: &frequent,
        stats: ColumnEStats::default(),
        by_rows: HashMap::new(),
    };
    let full = RowSet::full(n);
    if ctx.walk(&[], &full, 0).is_err() {
        return Budgeted::BudgetExhausted {
            nodes: ctx.stats.nodes_visited,
        };
    }
    let obs = ctx.obs;

    // assemble rule groups and apply the FARMER interestingness filter
    let mut found: Vec<(IdList, IdList, RowSet, usize)> = ctx
        .by_rows
        .into_iter()
        .map(|(key, rep)| {
            let rows = RowSet::from_ids(n, key.iter().copied());
            let upper = data.items_common_to(&rows);
            let sup_p = rows.intersection_len(&class_rows);
            (upper, rep, rows, sup_p)
        })
        .collect();
    let stats = ColumnEStats {
        groups_found: found.len() as u64,
        ..ctx.stats
    };
    // generality order, as in FARMER's step 7 / the naive oracle
    found.sort_by(|a, b| a.0.len().cmp(&b.0.len()).then(a.0.cmp(&b.0)));

    let mut groups: Vec<RuleGroup> = Vec::new();
    for (upper, rep, rows, sup_p) in found {
        if sup_p < params.min_sup {
            continue;
        }
        let sup_n = rows.len() - sup_p;
        let conf = sup_p as f64 / (sup_p + sup_n) as f64;
        if conf < params.min_conf {
            continue;
        }
        if params.min_chi > 0.0
            && chi_square(Contingency::new(sup_p + sup_n, sup_p, n, m)) < params.min_chi
        {
            continue;
        }
        let t = Contingency::new(sup_p + sup_n, sup_p, n, m);
        let extras_ok = params.extra.iter().all(|c| match *c {
            ExtraConstraint::MinLift(v) => measures::lift(t) >= v,
            ExtraConstraint::MinConviction(v) => measures::conviction(t) >= v,
            ExtraConstraint::MinEntropyGain(v) => measures::entropy_gain(t) >= v,
            ExtraConstraint::MinGiniGain(v) => measures::gini_gain(t) >= v,
            ExtraConstraint::MinCorrelation(v) => measures::correlation(t) >= v,
        });
        if !extras_ok {
            continue;
        }
        let dominated = groups.iter().any(|g| {
            g.upper.len() < upper.len() && g.upper.is_subset(&upper) && g.confidence() >= conf
        });
        if dominated {
            obs.pruned(PruneReason::NotInteresting);
            continue;
        }
        obs.group_emitted(sup_p, sup_n);
        groups.push(RuleGroup {
            upper,
            lower: vec![rep],
            support_set: rows,
            sup: sup_p,
            neg_sup: sup_n,
            class: params.target_class,
            n_rows: n,
            n_class: m,
        });
    }
    Budgeted::Done(ColumnEResult { groups, stats })
}

struct WalkCtx<'a, O: MineObserver + ?Sized> {
    data: &'a Dataset,
    class_rows: &'a RowSet,
    min_sup: usize,
    st: ControlState<'a>,
    obs: &'a mut O,
    frequent: &'a [u32],
    stats: ColumnEStats,
    /// antecedent support set → first (representative) itemset reaching it
    by_rows: HashMap<Vec<usize>, IdList>,
}

impl<O: MineObserver + ?Sized> WalkCtx<'_, O> {
    /// Depth-first set enumeration: extend `itemset` (with tidset `rows`)
    /// by every frequent item ≥ `next`.
    fn walk(&mut self, itemset: &[u32], rows: &RowSet, next: usize) -> Result<(), ()> {
        for (k, &i) in self.frequent.iter().enumerate().skip(next) {
            self.stats.nodes_visited += 1;
            self.obs.node_entered(itemset.len() + 1);
            if self.st.tick().is_some() {
                return Err(());
            }
            let child_rows = rows.intersection(self.data.item_rows(i));
            // anti-monotone bound: rule support can only shrink
            if child_rows.intersection_len(self.class_rows) < self.min_sup {
                self.stats.pruned_support += 1;
                self.obs.pruned(PruneReason::TightSupport);
                continue;
            }
            let mut child_items: Vec<u32> = itemset.to_vec();
            child_items.push(i);
            self.by_rows
                .entry(child_rows.to_vec())
                .or_insert_with(|| IdList::from_sorted(child_items.clone()));
            self.walk(&child_items, &child_rows, k + 1)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use farmer_core::Farmer;
    use farmer_dataset::{paper_example, DatasetBuilder};
    use farmer_support::rng::{Rng, SeedableRng, StdRng};

    fn canon(groups: &[RuleGroup]) -> Vec<(Vec<u32>, Vec<usize>, usize, usize)> {
        let mut v: Vec<_> = groups
            .iter()
            .map(|g| {
                (
                    g.upper.as_slice().to_vec(),
                    g.support_set.to_vec(),
                    g.sup,
                    g.neg_sup,
                )
            })
            .collect();
        v.sort();
        v
    }

    #[test]
    fn agrees_with_farmer_on_paper_example() {
        let d = paper_example();
        for class in [0u32, 1] {
            for (min_sup, min_conf) in [(1, 0.0), (2, 0.0), (1, 0.7), (2, 0.6)] {
                let params = MiningParams::new(class)
                    .min_sup(min_sup)
                    .min_conf(min_conf)
                    .lower_bounds(false);
                let farmer = Farmer::new(params.clone()).mine(&d);
                let cole = column_e(&d, &params, None).expect_done("small data");
                assert_eq!(
                    canon(&cole.groups),
                    canon(&farmer.groups),
                    "class={class} min_sup={min_sup} min_conf={min_conf}"
                );
            }
        }
    }

    #[test]
    fn agrees_with_farmer_on_random_data() {
        let mut rng = StdRng::seed_from_u64(31);
        for trial in 0..10 {
            let mut b = DatasetBuilder::new(2);
            for _ in 0..rng.gen_range(4..=8) {
                let items: Vec<u32> = (0..10u32).filter(|_| rng.gen_bool(0.5)).collect();
                b.add_row(items, u32::from(rng.gen_bool(0.5)));
            }
            let d = b.build();
            let params = MiningParams::new(0)
                .min_sup(rng.gen_range(1..=2))
                .min_conf([0.0, 0.5][trial % 2])
                .lower_bounds(false);
            let farmer = Farmer::new(params.clone()).mine(&d);
            let cole = column_e(&d, &params, None).expect_done("small data");
            assert_eq!(canon(&cole.groups), canon(&farmer.groups), "trial={trial}");
        }
    }

    #[test]
    fn representative_is_group_member() {
        let d = paper_example();
        let params = MiningParams::new(0).min_sup(1);
        let r = column_e(&d, &params, None).expect_done("small data");
        for g in &r.groups {
            let rep = &g.lower[0];
            assert!(rep.is_subset(&g.upper), "{rep:?} vs {:?}", g.upper);
            assert_eq!(d.rows_supporting(rep).to_vec(), g.support_set.to_vec());
        }
    }

    #[test]
    fn budget_exhaustion_reported() {
        let d = paper_example();
        let params = MiningParams::new(0).min_sup(1);
        let r = column_e(&d, &params, Some(10));
        assert!(!r.is_done());
    }

    #[test]
    fn chi_threshold_applied() {
        let d = paper_example();
        let params = MiningParams::new(0).min_sup(1).min_chi(1.0);
        let with_chi = column_e(&d, &params, None).expect_done("small data");
        let farmer = Farmer::new(params).mine(&d);
        assert_eq!(canon(&with_chi.groups), canon(&farmer.groups));
    }
}

//! FP-tree: the prefix-tree transaction summary underlying FP-growth and
//! CLOSET+.

use farmer_dataset::ItemId;
use std::collections::HashMap;

/// One FP-tree node: an item, its count along this prefix path, and tree
/// links. Node 0 is the root (item is meaningless there).
#[derive(Clone, Debug)]
struct Node {
    item: ItemId,
    count: usize,
    parent: usize,
    children: HashMap<ItemId, usize>,
    /// Next node carrying the same item (header chain).
    next_same_item: Option<usize>,
}

/// A frequency-ordered prefix tree over (weighted) transactions.
///
/// Items inside each inserted transaction are reordered by descending
/// global frequency so shared prefixes collapse; a header table chains
/// all nodes of each item for bottom-up traversal. Conditional pattern
/// bases (the projections FP-growth and CLOSET+ recurse on) come from
/// [`conditional_patterns`](Self::conditional_patterns).
pub struct FpTree {
    nodes: Vec<Node>,
    /// item → (chain head, total count), for items present in the tree.
    header: HashMap<ItemId, (usize, usize)>,
    /// Descending-frequency order rank used to sort transactions.
    rank: HashMap<ItemId, usize>,
}

impl FpTree {
    /// Builds a tree from weighted transactions, keeping only items with
    /// total weighted count ≥ `min_count`.
    ///
    /// Each transaction is `(items, weight)`; duplicate items within one
    /// transaction are an error upstream and are debug-asserted here.
    pub fn build(transactions: &[(Vec<ItemId>, usize)], min_count: usize) -> Self {
        let mut freq: HashMap<ItemId, usize> = HashMap::new();
        for (items, w) in transactions {
            for &i in items {
                *freq.entry(i).or_insert(0) += w;
            }
        }
        freq.retain(|_, c| *c >= min_count);
        // rank: frequency desc, item id asc for determinism
        let mut order: Vec<(ItemId, usize)> = freq.iter().map(|(&i, &c)| (i, c)).collect();
        order.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let rank: HashMap<ItemId, usize> = order
            .iter()
            .enumerate()
            .map(|(r, &(i, _))| (i, r))
            .collect();

        let mut tree = FpTree {
            nodes: vec![Node {
                item: u32::MAX,
                count: 0,
                parent: 0,
                children: HashMap::new(),
                next_same_item: None,
            }],
            header: HashMap::new(),
            rank,
        };
        let mut sorted = Vec::new();
        for (items, w) in transactions {
            debug_assert_eq!(
                items.len(),
                items.iter().collect::<std::collections::HashSet<_>>().len(),
                "duplicate items in transaction"
            );
            sorted.clear();
            sorted.extend(items.iter().copied().filter(|i| tree.rank.contains_key(i)));
            sorted.sort_by_key(|i| tree.rank[i]);
            tree.insert(&sorted, *w);
        }
        tree
    }

    fn insert(&mut self, items: &[ItemId], weight: usize) {
        let mut cur = 0usize;
        for &item in items {
            let next = match self.nodes[cur].children.get(&item) {
                Some(&n) => n,
                None => {
                    let n = self.nodes.len();
                    self.nodes.push(Node {
                        item,
                        count: 0,
                        parent: cur,
                        children: HashMap::new(),
                        next_same_item: None,
                    });
                    self.nodes[cur].children.insert(item, n);
                    // push onto the header chain
                    let entry = self.header.entry(item).or_insert((n, 0));
                    if entry.0 != n {
                        self.nodes[n].next_same_item = Some(entry.0);
                        entry.0 = n;
                    }
                    n
                }
            };
            self.nodes[next].count += weight;
            let entry = self.header.get_mut(&item).expect("header entry exists");
            entry.1 += weight;
            cur = next;
        }
    }

    /// Items present in the tree, ordered by ascending global frequency
    /// (the order CLOSET+ and FP-growth iterate in).
    pub fn items_ascending(&self) -> Vec<ItemId> {
        let mut items: Vec<(ItemId, usize)> =
            self.header.iter().map(|(&i, &(_, c))| (i, c)).collect();
        items.sort_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)));
        items.into_iter().map(|(i, _)| i).collect()
    }

    /// Total count of `item` in the tree (0 if absent).
    pub fn item_count(&self, item: ItemId) -> usize {
        self.header.get(&item).map_or(0, |&(_, c)| c)
    }

    /// `true` iff the tree holds no items.
    pub fn is_empty(&self) -> bool {
        self.header.is_empty()
    }

    /// The conditional pattern base of `item`: for every node carrying
    /// `item`, the path of items from its parent up to the root, weighted
    /// by the node's count.
    pub fn conditional_patterns(&self, item: ItemId) -> Vec<(Vec<ItemId>, usize)> {
        let mut out = Vec::new();
        let mut cursor = self.header.get(&item).map(|&(head, _)| head);
        while let Some(n) = cursor {
            let node = &self.nodes[n];
            let mut path = Vec::new();
            let mut p = node.parent;
            while p != 0 {
                path.push(self.nodes[p].item);
                p = self.nodes[p].parent;
            }
            path.reverse();
            if node.count > 0 {
                out.push((path, node.count));
            }
            cursor = node.next_same_item;
        }
        out
    }

    /// If the whole tree is one chain from the root, returns the path as
    /// `(item, count)` pairs top-down; CLOSET+ handles such trees by
    /// direct combination instead of recursion.
    pub fn single_path(&self) -> Option<Vec<(ItemId, usize)>> {
        let mut out = Vec::new();
        let mut cur = 0usize;
        loop {
            match self.nodes[cur].children.len() {
                0 => return Some(out),
                1 => {
                    let &n = self.nodes[cur].children.values().next().expect("one child");
                    out.push((self.nodes[n].item, self.nodes[n].count));
                    cur = n;
                }
                _ => return None,
            }
        }
    }

    /// Number of nodes, root included (a size diagnostic).
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tx(v: &[&[u32]]) -> Vec<(Vec<u32>, usize)> {
        v.iter().map(|s| (s.to_vec(), 1)).collect()
    }

    #[test]
    fn build_collapses_shared_prefixes() {
        // classic FP-growth example shape
        let t = tx(&[&[0, 1, 2], &[0, 1], &[0, 2], &[3]]);
        let tree = FpTree::build(&t, 1);
        assert_eq!(tree.item_count(0), 3);
        assert_eq!(tree.item_count(3), 1);
        // 0 is the most frequent: all three transactions share the 0-node
        // root child, so nodes = root + 0 + 1 + 2 + 2' + 3
        assert_eq!(tree.n_nodes(), 6);
    }

    #[test]
    fn min_count_filters_items() {
        let t = tx(&[&[0, 1], &[0], &[0]]);
        let tree = FpTree::build(&t, 2);
        assert_eq!(tree.item_count(0), 3);
        assert_eq!(tree.item_count(1), 0);
        assert_eq!(tree.items_ascending(), vec![0]);
    }

    #[test]
    fn conditional_patterns_walk_to_root() {
        let t = tx(&[&[0, 1, 2], &[0, 2], &[1, 2]]);
        let tree = FpTree::build(&t, 1);
        // item 2 is everywhere; its pattern base are the prefixes
        let mut base = tree.conditional_patterns(2);
        base.sort();
        // frequency order: 2(3) first, then 0(2), 1(2) -> paths exclude 2
        // transactions sorted: [2,0,1], [2,0], [2,1] -> 2 is the prefix!
        // so conditional base of 0: paths [2] (count 2); of 1: [2,0] and [2]
        let base0 = tree.conditional_patterns(0);
        assert_eq!(base0, vec![(vec![2], 2)]);
        let mut base1 = tree.conditional_patterns(1);
        base1.sort();
        assert_eq!(base1, vec![(vec![2], 1), (vec![2, 0], 1)]);
        // item 2 sits directly under the root
        assert_eq!(tree.conditional_patterns(2), vec![(vec![], 3)]);
        let _ = base;
    }

    #[test]
    fn single_path_detection() {
        let chain = FpTree::build(&tx(&[&[0, 1, 2], &[0, 1], &[0]]), 1);
        let path = chain.single_path().expect("is a chain");
        assert_eq!(path, vec![(0, 3), (1, 2), (2, 1)]);
        let branchy = FpTree::build(&tx(&[&[0], &[1]]), 1);
        assert!(branchy.single_path().is_none());
    }

    #[test]
    fn weighted_transactions() {
        let t = vec![(vec![0, 1], 3), (vec![0], 2)];
        let tree = FpTree::build(&t, 1);
        assert_eq!(tree.item_count(0), 5);
        assert_eq!(tree.item_count(1), 3);
    }

    #[test]
    fn empty_tree() {
        let tree = FpTree::build(&[], 1);
        assert!(tree.is_empty());
        assert!(tree.items_ascending().is_empty());
        assert_eq!(tree.single_path(), Some(vec![]));
    }
}

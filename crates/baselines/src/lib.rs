//! Column-enumeration baselines for the FARMER evaluation.
//!
//! The paper (§4.1) compares FARMER against the strongest available
//! column-enumeration miners of its day; this crate reimplements each of
//! them from scratch so the comparison can be regenerated:
//!
//! * [`apriori`] — the classic levelwise frequent-itemset miner
//!   (Agrawal & Srikant, VLDB'94); the yardstick everything else beats;
//! * [`charm`] — CHARM (Zaki & Hsiao, SDM'02): vertical tidset-based
//!   closed-itemset mining over an IT-tree with the four subsumption
//!   properties;
//! * [`closet`] — a CLOSET+-style closed-itemset miner (Wang, Han, Pei,
//!   KDD'03) over a genuine FP-tree with conditional projections and
//!   item merging;
//! * [`column_e`] — "ColumnE", the column-enumeration interesting-rule
//!   miner in the spirit of Bayardo & Agrawal (KDD'99) that the paper
//!   uses as its closest competitor: it walks the itemset lattice,
//!   groups rules by antecedent support set, and applies the same
//!   IRG filter as FARMER.
//!
//! All miners are exact; the closed-set miners must agree with each
//! other and with CARPENTER (enforced by tests). The column enumerators
//! are *intentionally* exponential in pattern length on microarray-shaped
//! data — that inefficiency is the paper's headline result — so
//! [`column_e`] and [`apriori`] accept a node budget and report when they
//! exceed it instead of hanging the benchmark harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adapters;
pub mod apriori;
pub mod charm;
pub mod closet;
pub mod column_e;
mod fptree;

pub use adapters::{AprioriMiner, CharmMiner, ClosetMiner, ColumnEMiner};
pub use fptree::FpTree;

/// A mining run that may exhaust its node budget.
///
/// The budget makes deliberately-slow baselines usable inside benchmark
/// sweeps: a run that would take hours (the paper reports "more than one
/// day" for ColumnE at low support) returns `BudgetExhausted` after a
/// deterministic amount of work instead.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Budgeted<T> {
    /// The run finished within budget.
    Done(T),
    /// The run was cut off after visiting `nodes` search nodes.
    BudgetExhausted {
        /// Nodes visited before the cutoff.
        nodes: u64,
    },
}

impl<T> Budgeted<T> {
    /// Unwraps a finished run; panics on `BudgetExhausted`.
    pub fn expect_done(self, msg: &str) -> T {
        match self {
            Budgeted::Done(t) => t,
            Budgeted::BudgetExhausted { nodes } => {
                panic!("{msg}: budget exhausted after {nodes} nodes")
            }
        }
    }

    /// `true` iff the run finished.
    pub fn is_done(&self) -> bool {
        matches!(self, Budgeted::Done(_))
    }
}

//! Property-based agreement tests: every miner in the workspace answers
//! the same questions identically.

use farmer_baselines::apriori::apriori;
use farmer_baselines::charm::charm;
use farmer_baselines::closet::closet;
use farmer_baselines::column_e::column_e;
use farmer_core::carpenter::carpenter;
use farmer_core::{Farmer, MiningParams};
use farmer_dataset::{Dataset, DatasetBuilder};
use farmer_support::check::prelude::*;
use std::collections::HashSet;

fn arb_dataset() -> impl Strategy<Value = Dataset> {
    (3usize..8, 3usize..10).prop_flat_map(|(n_rows, n_items)| {
        collection::vec(
            (
                collection::btree_set(0..n_items as u32, 1..n_items),
                0u32..2,
            ),
            n_rows,
        )
        .prop_map(|rows| {
            let mut b = DatasetBuilder::new(2);
            for (items, label) in rows {
                b.add_row(items, label);
            }
            b.build()
        })
    })
}

check! {
    #![config(cases = 64)]

    /// CHARM = CLOSET+ = CARPENTER, closed set for closed set.
    #[test]
    fn closed_miners_agree(d in arb_dataset(), min_sup in 1usize..4) {
        let carp: HashSet<(Vec<u32>, usize)> = carpenter(&d, min_sup)
            .patterns
            .into_iter()
            .map(|p| {
                let s = p.support();
                (p.items.as_slice().to_vec(), s)
            })
            .collect();
        let ch: HashSet<(Vec<u32>, usize)> = charm(&d, min_sup)
            .closed
            .into_iter()
            .map(|c| {
                let s = c.support();
                (c.items.as_slice().to_vec(), s)
            })
            .collect();
        let cl: HashSet<(Vec<u32>, usize)> = closet(&d, min_sup)
            .closed
            .into_iter()
            .map(|c| (c.items.as_slice().to_vec(), c.support))
            .collect();
        prop_assert_eq!(&carp, &ch);
        prop_assert_eq!(&ch, &cl);
    }

    /// Apriori's frequent itemsets contain every closed set, and the
    /// closure of every frequent itemset is a mined closed set with the
    /// same support.
    #[test]
    fn apriori_consistent_with_closed(d in arb_dataset(), min_sup in 1usize..4) {
        let frequent = apriori(&d, min_sup, None).expect_done("small data");
        let closed: HashSet<Vec<u32>> = charm(&d, min_sup)
            .closed
            .into_iter()
            .map(|c| c.items.as_slice().to_vec())
            .collect();
        // every closed set is frequent
        let freq_set: HashSet<(Vec<u32>, usize)> = frequent
            .iter()
            .map(|f| (f.items.as_slice().to_vec(), f.support))
            .collect();
        for c in &closed {
            let items = rowset::IdList::from_sorted(c.clone());
            let sup = d.rows_supporting(&items).len();
            prop_assert!(freq_set.contains(&(c.clone(), sup)), "closed {:?} missing", c);
        }
        // every frequent itemset's closure is closed with equal support
        for f in &frequent {
            let rows = d.rows_supporting(&f.items);
            let closure = d.items_common_to(&rows);
            prop_assert!(closed.contains(closure.as_slice()), "closure of {:?}", f.items);
        }
    }

    /// ColumnE and FARMER mine identical interesting rule groups.
    #[test]
    fn column_e_agrees_with_farmer(
        d in arb_dataset(),
        class in 0u32..2,
        min_sup in 1usize..3,
        conf_pct in select(vec![0usize, 60]),
    ) {
        let params = MiningParams::new(class)
            .min_sup(min_sup)
            .min_conf(conf_pct as f64 / 100.0)
            .lower_bounds(false);
        let farmer = Farmer::new(params.clone()).mine(&d);
        let cole = column_e(&d, &params, None).expect_done("small data");
        let canon = |gs: &[farmer_core::RuleGroup]| -> HashSet<(Vec<u32>, usize, usize)> {
            gs.iter()
                .map(|g| (g.upper.as_slice().to_vec(), g.sup, g.neg_sup))
                .collect()
        };
        prop_assert_eq!(canon(&farmer.groups), canon(&cole.groups));
    }

    /// Every FARMER upper bound is a CHARM closed set.
    #[test]
    fn farmer_uppers_are_closed(d in arb_dataset(), min_sup in 1usize..3) {
        let farmer = Farmer::new(MiningParams::new(0).min_sup(min_sup).lower_bounds(false)).mine(&d);
        let closed: HashSet<Vec<u32>> = charm(&d, 1)
            .closed
            .into_iter()
            .map(|c| c.items.as_slice().to_vec())
            .collect();
        for g in &farmer.groups {
            prop_assert!(closed.contains(g.upper.as_slice()), "{:?}", g.upper);
        }
    }
}

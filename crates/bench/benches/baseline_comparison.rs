//! FARMER versus the column-enumeration baselines at one matched
//! setting per dataset analog (the head-to-head the whole paper is
//! about), plus the scalability replication bench.

use farmer_baselines::charm::charm;
use farmer_baselines::closet::closet;
use farmer_baselines::column_e::column_e;
use farmer_bench::workloads::WorkloadCache;
use farmer_core::{Farmer, MiningParams};
use farmer_dataset::replicate::replicate_rows;
use farmer_dataset::synth::PaperDataset;
use farmer_support::bench::{BenchmarkId, Criterion};
use farmer_support::{criterion_group, criterion_main};
use std::time::Duration;

/// CT analog at minsup 5: every algorithm finishes quickly enough for
/// Criterion statistics, and the ranking already shows.
fn head_to_head(c: &mut Criterion) {
    let cache = WorkloadCache::new(0.05);
    let d = cache.efficiency(PaperDataset::ColonTumor);
    let minsup = 5usize;
    let params = MiningParams::new(1).min_sup(minsup);
    let mut group = c.benchmark_group("head_to_head_CT");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    group.bench_function("FARMER", |b| {
        b.iter(|| Farmer::new(params.clone()).mine(&d))
    });
    group.bench_function("ColumnE", |b| b.iter(|| column_e(&d, &params, None)));
    group.bench_function("CHARM", |b| b.iter(|| charm(&d, minsup)));
    group.bench_function("CLOSET+", |b| b.iter(|| closet(&d, minsup)));
    group.finish();
}

/// Row replication ×k (the §4.1 scalability note) for the row-enumeration
/// side.
fn replication_scalability(c: &mut Criterion) {
    let cache = WorkloadCache::new(0.05);
    let base = cache.efficiency(PaperDataset::ColonTumor);
    let mut group = c.benchmark_group("replication");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for k in [1usize, 2, 4] {
        let d = replicate_rows(&base, k);
        let params = MiningParams::new(1).min_sup(5 * k);
        group.bench_with_input(BenchmarkId::new("FARMER", k), &k, |b, _| {
            b.iter(|| Farmer::new(params.clone()).mine(&d));
        });
    }
    group.finish();
}

criterion_group!(benches, head_to_head, replication_scalability);
criterion_main!(benches);

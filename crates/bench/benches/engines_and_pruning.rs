//! Ablation benches: the two conditional-table engines and each pruning
//! strategy toggled off (DESIGN.md A1/A2).

use farmer_bench::workloads::WorkloadCache;
use farmer_core::{Engine, Farmer, MiningParams, PruningConfig};
use farmer_dataset::synth::PaperDataset;
use farmer_support::bench::Criterion;
use farmer_support::{criterion_group, criterion_main};
use std::time::Duration;

fn engines(c: &mut Criterion) {
    let cache = WorkloadCache::new(0.05);
    let d = cache.efficiency(PaperDataset::ColonTumor);
    let params = MiningParams::new(1)
        .min_sup(4)
        .min_conf(0.8)
        .lower_bounds(false);
    let mut group = c.benchmark_group("engines_CT");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    group.bench_function("bitset", |b| {
        b.iter(|| {
            Farmer::new(params.clone())
                .with_engine(Engine::Bitset)
                .mine(&d)
        })
    });
    group.bench_function("pointer_list", |b| {
        b.iter(|| {
            Farmer::new(params.clone())
                .with_engine(Engine::PointerList)
                .mine(&d)
        })
    });
    group.finish();
}

fn pruning_ablation(c: &mut Criterion) {
    let cache = WorkloadCache::new(0.05);
    let d = cache.efficiency(PaperDataset::ColonTumor);
    let params = MiningParams::new(1)
        .min_sup(4)
        .min_conf(0.8)
        .lower_bounds(false);
    let mut group = c.benchmark_group("pruning_CT");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    let configs: Vec<(&str, PruningConfig)> = vec![
        ("all", PruningConfig::all()),
        (
            "no_compression",
            PruningConfig {
                strategy1_compression: false,
                ..PruningConfig::all()
            },
        ),
        (
            "no_duplicate",
            PruningConfig {
                strategy2_duplicate: false,
                ..PruningConfig::all()
            },
        ),
        (
            "no_bounds",
            PruningConfig {
                strategy3_loose: false,
                strategy3_tight: false,
                ..PruningConfig::all()
            },
        ),
    ];
    for (name, cfg) in configs {
        group.bench_function(name, |b| {
            b.iter(|| Farmer::new(params.clone()).with_pruning(cfg).mine(&d))
        });
    }
    group.finish();
}

fn lower_bounds(c: &mut Criterion) {
    let cache = WorkloadCache::new(0.05);
    let d = cache.efficiency(PaperDataset::ColonTumor);
    let mut group = c.benchmark_group("minelb_CT");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for (name, on) in [("with_lower_bounds", true), ("upper_bounds_only", false)] {
        let params = MiningParams::new(1).min_sup(4).lower_bounds(on);
        group.bench_function(name, |b| b.iter(|| Farmer::new(params.clone()).mine(&d)));
    }
    group.finish();
}

criterion_group!(benches, engines, pruning_ablation, lower_bounds);
criterion_main!(benches);

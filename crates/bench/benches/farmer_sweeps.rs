//! Criterion counterparts of Figures 10 and 11: FARMER runtime as the
//! support / confidence / χ² thresholds sweep, on the CT and ALL
//! analogs (the two datasets small enough for statistically tight
//! Criterion runs).

use farmer_bench::workloads::WorkloadCache;
use farmer_core::{Farmer, MiningParams};
use farmer_dataset::synth::PaperDataset;
use farmer_support::bench::{BenchmarkId, Criterion};
use farmer_support::{criterion_group, criterion_main};
use std::time::Duration;

fn fig10_minsup(c: &mut Criterion) {
    let cache = WorkloadCache::new(0.05);
    let mut group = c.benchmark_group("fig10_minsup");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for p in [PaperDataset::ColonTumor, PaperDataset::Leukemia] {
        let d = cache.efficiency(p);
        for minsup in [7usize, 5, 4] {
            group.bench_with_input(BenchmarkId::new(p.code(), minsup), &minsup, |b, &minsup| {
                let params = MiningParams::new(1).min_sup(minsup);
                b.iter(|| Farmer::new(params.clone()).mine(&d));
            });
        }
    }
    group.finish();
}

fn fig11_minconf(c: &mut Criterion) {
    let cache = WorkloadCache::new(0.05);
    let d = cache.efficiency(PaperDataset::ColonTumor);
    let mut group = c.benchmark_group("fig11_minconf");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for conf_pct in [0usize, 70, 90] {
        group.bench_with_input(BenchmarkId::new("CT", conf_pct), &conf_pct, |b, &pct| {
            let params = MiningParams::new(1).min_sup(3).min_conf(pct as f64 / 100.0);
            b.iter(|| Farmer::new(params.clone()).mine(&d));
        });
    }
    group.finish();
}

fn fig11_minchi(c: &mut Criterion) {
    let cache = WorkloadCache::new(0.05);
    let d = cache.efficiency(PaperDataset::ColonTumor);
    let mut group = c.benchmark_group("fig11_minchi");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for chi in [0u32, 10] {
        group.bench_with_input(BenchmarkId::new("CT_conf80", chi), &chi, |b, &chi| {
            let params = MiningParams::new(1)
                .min_sup(3)
                .min_conf(0.8)
                .min_chi(chi as f64);
            b.iter(|| Farmer::new(params.clone()).mine(&d));
        });
    }
    group.finish();
}

criterion_group!(benches, fig10_minsup, fig11_minconf, fig11_minchi);
criterion_main!(benches);

//! Serving-layer benchmarks: the inverted rule-group index against the
//! naive linear scan it replaces, on artifacts round-tripped through
//! the `.fgi` format exactly as `farmer serve` loads them.

use farmer_classify::{irg_rule, RuleListClassifier, IRG_FINGERPRINT_THETA};
use farmer_core::{canonical_sort, Farmer, MiningParams, RuleGroup};
use farmer_dataset::discretize::Discretizer;
use farmer_dataset::synth::SynthConfig;
use farmer_serve::RuleGroupIndex;
use farmer_store::{read_artifact, Artifact, ArtifactMeta, ArtifactWriter};
use farmer_support::bench::{BenchmarkId, Criterion};
use farmer_support::rng::{Rng, SeedableRng, StdRng};
use farmer_support::{criterion_group, criterion_main};
use rowset::IdList;
use std::io::Cursor;
use std::time::Duration;

/// Mines both classes of a synthetic microarray matrix and round-trips
/// the groups through `.fgi` bytes, so the benchmarked index is built
/// from exactly what production hands it: a loaded artifact.
fn mined_artifact(n_rows: usize, n_genes: usize, min_sup: usize) -> Artifact {
    let m = SynthConfig {
        n_rows,
        n_genes,
        n_class1: n_rows / 2,
        n_signature: n_genes / 5,
        ..Default::default()
    }
    .generate();
    let d = Discretizer::EqualDepth { buckets: 4 }.discretize(&m);
    let mut groups: Vec<RuleGroup> = Vec::new();
    for class in 0..2 {
        groups.extend(
            Farmer::new(MiningParams::new(class).min_sup(min_sup))
                .mine(&d)
                .groups,
        );
    }
    canonical_sort(&mut groups);
    let meta = ArtifactMeta::from_dataset(&d);
    let mut buf = Cursor::new(Vec::new());
    let mut w = ArtifactWriter::new(&mut buf, &meta).expect("write header");
    for g in &groups {
        w.write_group(g).expect("write group");
    }
    w.finish().expect("finish artifact");
    read_artifact(&buf.into_inner()).expect("read artifact back")
}

/// Random query samples drawn from the artifact's item universe.
fn samples(meta: &ArtifactMeta, n: usize, len: usize, seed: u64) -> Vec<IdList> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            IdList::from_iter(
                (0..len)
                    .map(|_| rng.gen_range(0..meta.n_items() as u32))
                    .collect::<std::collections::BTreeSet<_>>(),
            )
        })
        .collect()
}

fn match_and_classify(c: &mut Criterion) {
    let mut group = c.benchmark_group("serving");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for (name, rows, genes, min_sup) in [("small", 20, 60, 3), ("wide", 30, 200, 5)] {
        let artifact = mined_artifact(rows, genes, min_sup);
        let offline = RuleListClassifier::from_ranked(
            artifact
                .groups
                .iter()
                .map(|g| irg_rule(g, IRG_FINGERPRINT_THETA))
                .collect(),
            artifact.meta.majority_class(),
        );
        let queries = samples(&artifact.meta, 64, 12, 7);
        let idx = RuleGroupIndex::from_artifact(artifact);

        group.bench_with_input(
            BenchmarkId::new("index_match", name),
            &(&idx, &queries),
            |b, (idx, queries)| {
                b.iter(|| queries.iter().map(|s| idx.matches(s).len()).sum::<usize>());
            },
        );
        group.bench_with_input(
            BenchmarkId::new("linear_match", name),
            &(&idx, &queries),
            |b, (idx, queries)| {
                b.iter(|| {
                    queries
                        .iter()
                        .map(|s| idx.rules().iter().filter(|r| r.matches(s)).count())
                        .sum::<usize>()
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("index_classify", name),
            &(&idx, &queries),
            |b, (idx, queries)| {
                b.iter(|| {
                    queries
                        .iter()
                        .map(|s| idx.classify(s).class as u64)
                        .sum::<u64>()
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("offline_classify", name),
            &(&offline, &queries),
            |b, (offline, queries)| {
                b.iter(|| {
                    queries
                        .iter()
                        .map(|s| offline.predict(s) as u64)
                        .sum::<u64>()
                });
            },
        );
    }
    group.finish();
}

fn index_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("serving_build");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    let artifact = mined_artifact(30, 200, 5);
    let meta = artifact.meta.clone();
    let groups = artifact.groups.clone();
    group.bench_function("index_build_wide", |b| {
        b.iter(|| {
            RuleGroupIndex::from_artifact(Artifact {
                meta: meta.clone(),
                groups: groups.clone(),
            })
            .groups()
            .len()
        });
    });
    group.finish();
}

criterion_group!(benches, match_and_classify, index_build);
criterion_main!(benches);

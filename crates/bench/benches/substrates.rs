//! Micro-benchmarks of the substrates: RowSet/IdList set algebra, the
//! discretizers, and classifier training (Table 2's inner loop).

use farmer_classify::pipeline::DiscretizedSplit;
use farmer_classify::{IrgClassifier, SvmClassifier, SvmConfig};
use farmer_dataset::discretize::Discretizer;
use farmer_dataset::synth::SynthConfig;
use farmer_support::bench::{BenchmarkId, Criterion};
use farmer_support::rng::{Rng, SeedableRng, StdRng};
use farmer_support::{criterion_group, criterion_main};
use rowset::{IdList, RowSet};
use std::time::Duration;

fn rowset_ops(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let cap = 1024usize;
    let a = RowSet::from_ids(cap, (0..cap).filter(|_| rng.gen_bool(0.3)));
    let b = RowSet::from_ids(cap, (0..cap).filter(|_| rng.gen_bool(0.3)));
    let mut group = c.benchmark_group("rowset");
    group.measurement_time(Duration::from_secs(2));
    group.bench_function("intersection", |bch| bch.iter(|| a.intersection(&b)));
    group.bench_function("intersection_len", |bch| {
        bch.iter(|| a.intersection_len(&b))
    });
    group.bench_function("is_subset", |bch| bch.iter(|| a.is_subset(&b)));
    group.bench_function("iter_collect", |bch| bch.iter(|| a.to_vec()));
    group.finish();
}

fn idlist_ops(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let a = IdList::from_iter((0..20_000u32).filter(|_| rng.gen_bool(0.2)));
    let b = IdList::from_iter((0..20_000u32).filter(|_| rng.gen_bool(0.2)));
    let mut group = c.benchmark_group("idlist");
    group.measurement_time(Duration::from_secs(2));
    group.bench_function("intersection", |bch| bch.iter(|| a.intersection(&b)));
    group.bench_function("is_subset", |bch| bch.iter(|| a.is_subset(&b)));
    group.finish();
}

fn discretizers(c: &mut Criterion) {
    let m = SynthConfig {
        n_rows: 97,
        n_genes: 1000,
        n_class1: 46,
        n_signature: 200,
        ..Default::default()
    }
    .generate();
    let mut group = c.benchmark_group("discretize");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for (name, d) in [
        ("equal_depth_10", Discretizer::EqualDepth { buckets: 10 }),
        ("equal_width_10", Discretizer::EqualWidth { buckets: 10 }),
        ("entropy_mdl", Discretizer::EntropyMdl),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &d, |b, d| {
            b.iter(|| d.discretize(&m));
        });
    }
    group.finish();
}

fn classifiers(c: &mut Criterion) {
    let m = SynthConfig {
        n_rows: 62,
        n_genes: 400,
        n_class1: 40,
        n_signature: 120,
        shift: 2.0,
        clusters_per_class: 3,
        cluster_spread: 1.8,
        cluster_noise: 0.35,
        ..Default::default()
    }
    .generate();
    let (tr, te) = m.stratified_split(47, 1);
    let mut group = c.benchmark_group("classify");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    group.bench_function("irg_train", |b| {
        let split = DiscretizedSplit::fit(&tr, &te, &Discretizer::EntropyMdl);
        b.iter(|| IrgClassifier::train(&split.train, 0.7, 0.8));
    });
    group.bench_function("svm_train", |b| {
        b.iter(|| SvmClassifier::train(&tr, &SvmConfig::default()));
    });
    group.finish();
}

criterion_group!(benches, rowset_ops, idlist_ops, discretizers, classifiers);
criterion_main!(benches);

//! Ablations A1/A2 of DESIGN.md: the contribution of each pruning
//! strategy and of the `ORD` row ordering, plus the two conditional-table
//! engines.
//!
//! All configurations return identical IRGs (asserted); only the work
//! differs.

use crate::Opts;
use farmer_bench::report::Table;
use farmer_bench::trajectory::TrajectoryObserver;
use farmer_bench::workloads::WorkloadCache;
use farmer_bench::{fmt_ms, time};
use farmer_core::{Engine, Farmer, MineControl, MiningParams, PruningConfig};
use farmer_dataset::synth::PaperDataset;

pub fn run(opts: &Opts, cache: &WorkloadCache) {
    let p = PaperDataset::ColonTumor;
    let d = cache.efficiency(p);
    let params = MiningParams::new(1)
        .min_sup(4)
        .min_conf(0.8)
        .lower_bounds(false);
    println!(
        "== Ablation: pruning strategies on the {} analog (minsup 4, minconf 0.8) ==\n",
        p.code()
    );

    let configs: Vec<(&str, PruningConfig)> = vec![
        ("all strategies", PruningConfig::all()),
        (
            "no strategy 1 (compression)",
            PruningConfig {
                strategy1_compression: false,
                ..PruningConfig::all()
            },
        ),
        (
            "no strategy 2 (duplicate)",
            PruningConfig {
                strategy2_duplicate: false,
                ..PruningConfig::all()
            },
        ),
        (
            "no loose bounds",
            PruningConfig {
                strategy3_loose: false,
                ..PruningConfig::all()
            },
        ),
        (
            "no tight bounds",
            PruningConfig {
                strategy3_tight: false,
                ..PruningConfig::all()
            },
        ),
        (
            "no strategy 3 at all",
            PruningConfig {
                strategy3_loose: false,
                strategy3_tight: false,
                ..PruningConfig::all()
            },
        ),
    ];

    let mut t = Table::new(&["configuration", "runtime", "nodes", "#IRGs"]);
    let mut reference: Option<usize> = None;
    for (name, cfg) in configs {
        let (res, dt) = time(|| Farmer::new(params.clone()).with_pruning(cfg).mine(&d));
        match reference {
            None => reference = Some(res.len()),
            Some(n) => assert_eq!(n, res.len(), "pruning changed the result set!"),
        }
        t.row_owned(vec![
            name.to_string(),
            fmt_ms(dt),
            res.stats.nodes_visited.to_string(),
            res.len().to_string(),
        ]);
    }
    println!("{}", t.render());

    println!("== Ablation: conditional-table engines (same search, different layout) ==\n");
    let mut t = Table::new(&["engine", "runtime", "nodes", "#IRGs"]);
    for (name, engine) in [
        ("bitset", Engine::Bitset),
        ("pointer-list (paper §3.3)", Engine::PointerList),
    ] {
        let (res, dt) = time(|| Farmer::new(params.clone()).with_engine(engine).mine(&d));
        assert_eq!(Some(res.len()), reference, "engines disagree!");
        t.row_owned(vec![
            name.to_string(),
            fmt_ms(dt),
            res.stats.nodes_visited.to_string(),
            res.len().to_string(),
        ]);
    }
    println!("{}", t.render());

    // When in the search does each strategy earn its keep? Sample the
    // running prune counters on a heartbeat cadence and print the curve.
    println!("== Prune-counter trajectory (all strategies, heartbeat every 512 nodes) ==\n");
    let ctl = MineControl::new().with_heartbeat_every(512);
    let mut obs = TrajectoryObserver::default();
    let res = Farmer::new(params).mine_session(&d, &ctl, &mut obs);
    let samples = obs.finish(&res.stats);
    // one column per prune reason, driven by the exhaustive list
    let headers: Vec<&str> = ["nodes", "groups"]
        .into_iter()
        .chain(farmer_core::PruneReason::ALL.iter().map(|r| r.stats_key()))
        .collect();
    let mut t = Table::new(&headers);
    for s in &samples {
        let mut row = vec![s.nodes.to_string(), s.groups.to_string()];
        row.extend(
            farmer_core::PruneReason::ALL
                .iter()
                .map(|&r| s.pruned_count(r).to_string()),
        );
        t.row_owned(row);
    }
    println!("{}", t.render());
    let _ = opts;
}

//! Extension experiment A3: COBBLER's dynamic row/column switching on
//! two table shapes — the microarray shape (wide, short) where rows are
//! the cheap side, and a replicated tall-and-wide table (the SSDBM'04
//! motivation) where neither pure direction wins everywhere.

use crate::Opts;
use farmer_bench::report::Table;
use farmer_bench::workloads::WorkloadCache;
use farmer_bench::{fmt_ms, time};
use farmer_core::cobbler::{cobbler, SwitchPolicy};
use farmer_dataset::replicate::replicate_rows;
use farmer_dataset::synth::PaperDataset;
use farmer_dataset::Dataset;

pub fn run(opts: &Opts, cache: &WorkloadCache) {
    println!("== Extension A3: COBBLER row/column switching (closed patterns) ==\n");
    let ct = cache.efficiency(PaperDataset::ColonTumor);
    let tall = replicate_rows(&ct, if opts.quick { 2 } else { 6 });
    let shapes: [(&str, &Dataset, usize); 2] = [
        ("wide-short (CT, 62 rows)", &ct, 5),
        ("tall-and-wide (CT x6, 372 rows)", &tall, 30),
    ];
    for (name, d, min_sup) in shapes {
        println!("-- {} at min_sup {} --", name, min_sup);
        let mut t = Table::new(&["policy", "runtime", "closed", "col nodes", "switches"]);
        let mut reference: Option<usize> = None;
        for (label, policy) in [
            ("auto", SwitchPolicy::Auto),
            ("columns only", SwitchPolicy::ColumnsOnly),
            ("rows only", SwitchPolicy::RowsOnly),
        ] {
            let (res, dt) = time(|| cobbler(d, min_sup, policy));
            match reference {
                None => reference = Some(res.patterns.len()),
                Some(n) => assert_eq!(n, res.patterns.len(), "policies disagree!"),
            }
            t.row_owned(vec![
                label.to_string(),
                fmt_ms(dt),
                res.patterns.len().to_string(),
                res.stats.column_nodes.to_string(),
                res.stats.switches.to_string(),
            ]);
        }
        println!("{}", t.render());
    }
}

//! Figure 10 — runtime vs minimum support for FARMER, ColumnE, CHARM
//! (and CLOSET+, which the paper measured but dropped as dominated),
//! plus the 10(f) IRG counts.

use crate::Opts;
use farmer_baselines::charm::charm_with;
use farmer_baselines::closet::closet_with;
use farmer_baselines::column_e::column_e;
use farmer_baselines::Budgeted;
use farmer_bench::report::Table;
use farmer_bench::workloads::{fig10_minsup_grid, WorkloadCache};
use farmer_bench::{fmt_ms, time};
use farmer_core::{Farmer, MineControl, MiningParams, NoOpObserver};
use farmer_dataset::synth::PaperDataset;

pub fn run(opts: &Opts, cache: &WorkloadCache) {
    println!("== Figure 10: runtime (ms) vs minimum support (minconf = minchi = 0) ==");
    println!(
        "'>budget' marks a column-enumeration run cut off at {} nodes\n",
        opts.budget
    );

    let mut counts = Table::new(&["dataset", "minsup", "#IRGs"]);
    for (panel, p) in PaperDataset::all().into_iter().enumerate() {
        let d = cache.efficiency(p);
        let mut grid = fig10_minsup_grid(p);
        if opts.quick {
            grid.truncate(2);
        }
        println!(
            "-- Figure 10({}): {} analog ({} rows x {} items) --",
            char::from(b'a' + panel as u8),
            p.code(),
            d.n_rows(),
            d.n_items()
        );
        let mut t = Table::new(&["minsup", "FARMER", "ColumnE", "CHARM", "CLOSET+"]);
        // once an algorithm exceeds its budget, lower supports only get
        // worse: stop re-running it (the paper likewise omits hopeless
        // points)
        let mut cole_dead = false;
        let mut charm_dead = false;
        let mut closet_dead = false;
        for minsup in grid {
            let params = MiningParams::new(opts.target_class)
                .min_sup(minsup)
                .min_conf(0.0);
            let (res, t_farmer) = time(|| Farmer::new(params.clone()).mine(&d));
            counts.row_owned(vec![
                p.code().to_string(),
                minsup.to_string(),
                res.len().to_string(),
            ]);

            let cole_cell = if cole_dead {
                "-".to_string()
            } else {
                let (r, dt) = time(|| column_e(&d, &params, Some(opts.budget)));
                match r {
                    Budgeted::Done(_) => fmt_ms(dt),
                    Budgeted::BudgetExhausted { .. } => {
                        cole_dead = true;
                        format!(">{}", fmt_ms(dt))
                    }
                }
            };
            let charm_cell = if charm_dead {
                "-".to_string()
            } else {
                let ctl = MineControl::new().with_node_budget(Some(opts.budget));
                let (r, dt) = time(|| charm_with(&d, minsup, &ctl, &mut NoOpObserver));
                match r {
                    Budgeted::Done(_) => fmt_ms(dt),
                    Budgeted::BudgetExhausted { .. } => {
                        charm_dead = true;
                        format!(">{}", fmt_ms(dt))
                    }
                }
            };
            let closet_cell = if closet_dead {
                "-".to_string()
            } else {
                let ctl = MineControl::new().with_node_budget(Some(opts.budget / 100));
                let (r, dt) = time(|| closet_with(&d, minsup, &ctl, &mut NoOpObserver));
                match r {
                    Budgeted::Done(_) => fmt_ms(dt),
                    Budgeted::BudgetExhausted { .. } => {
                        closet_dead = true;
                        format!(">{}", fmt_ms(dt))
                    }
                }
            };
            t.row_owned(vec![
                minsup.to_string(),
                fmt_ms(t_farmer),
                cole_cell,
                charm_cell,
                closet_cell,
            ]);
        }
        println!("{}", t.render());
    }
    println!("-- Figure 10(f): number of IRGs vs minsup (minchi = 0) --");
    println!("{}", counts.render());
}

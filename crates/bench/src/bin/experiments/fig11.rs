//! Figure 11 — runtime vs minimum confidence at a low fixed support,
//! with and without the χ² constraint (minchi = 10), plus the 11(f)
//! IRG counts.
//!
//! The paper could not run CHARM (out of memory) or ColumnE (> 1 day)
//! at these settings at all; the analog keeps one budgeted ColumnE
//! column to document the same failure mode.

use crate::Opts;
use farmer_baselines::column_e::column_e;
use farmer_baselines::Budgeted;
use farmer_bench::report::Table;
use farmer_bench::workloads::{fig11_minconf_grid, fig11_minsup, WorkloadCache};
use farmer_bench::{fmt_ms, time};
use farmer_core::{Farmer, MiningParams};
use farmer_dataset::synth::PaperDataset;

pub fn run(opts: &Opts, cache: &WorkloadCache) {
    println!("== Figure 11: runtime (ms) vs minimum confidence (low fixed minsup) ==\n");
    let mut counts = Table::new(&["dataset", "minconf", "#IRGs (minchi=0)"]);
    for (panel, p) in PaperDataset::all().into_iter().enumerate() {
        let d = cache.efficiency(p);
        let minsup = fig11_minsup(p);
        let mut grid = fig11_minconf_grid();
        if opts.quick {
            grid = vec![0.0, 0.9];
        }
        println!(
            "-- Figure 11({}): {} analog (minsup = {minsup}) --",
            char::from(b'a' + panel as u8),
            p.code(),
        );
        let mut t = Table::new(&["minconf", "FARMER", "FARMER minchi=10", "ColumnE"]);
        let mut cole_dead = false;
        for conf in grid {
            let params = MiningParams::new(opts.target_class)
                .min_sup(minsup)
                .min_conf(conf);
            let (res, t_plain) = time(|| Farmer::new(params.clone()).mine(&d));
            let (_, t_chi) = time(|| Farmer::new(params.clone().min_chi(10.0)).mine(&d));
            counts.row_owned(vec![
                p.code().to_string(),
                format!("{:.0}%", conf * 100.0),
                res.len().to_string(),
            ]);
            let cole_cell = if cole_dead {
                "-".to_string()
            } else {
                let (r, dt) = time(|| column_e(&d, &params, Some(opts.budget)));
                match r {
                    Budgeted::Done(_) => fmt_ms(dt),
                    Budgeted::BudgetExhausted { .. } => {
                        cole_dead = true;
                        format!(">{}", fmt_ms(dt))
                    }
                }
            };
            t.row_owned(vec![
                format!("{:.0}%", conf * 100.0),
                fmt_ms(t_plain),
                fmt_ms(t_chi),
                cole_cell,
            ]);
        }
        println!("{}", t.render());
    }
    println!("-- Figure 11(f): number of IRGs vs minconf (minchi = 0) --");
    println!("{}", counts.render());
}

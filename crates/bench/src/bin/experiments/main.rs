//! `experiments` — regenerates every table and figure of the FARMER
//! paper's evaluation (§4) on the synthetic dataset analogs.
//!
//! ```text
//! experiments <subcommand> [--col-scale S] [--budget N] [--seed N] [--quick]
//!
//! subcommands:
//!   table1     dataset characteristics (Table 1)
//!   fig10      runtime & #IRGs vs minimum support (Figure 10 a–f)
//!   fig11      runtime & #IRGs vs minimum confidence, minchi ∈ {0, 10}
//!              (Figure 11 a–f)
//!   table2     classification accuracy: IRG vs CBA vs SVM (Table 2)
//!   scale      row-replication scalability (§4.1 note)
//!   ablation   pruning-strategy and engine ablations (DESIGN.md A1/A2)
//!   cobbler    COBBLER row/column switching extension (DESIGN.md A3)
//!   all        everything above, in order
//! ```
//!
//! Output is plain text on stdout, one section per paper artefact, in
//! the same row/series structure as the original so the shapes can be
//! compared directly (absolute numbers differ by hardware and by the
//! documented dataset substitution; see DESIGN.md §3).

mod ablation;
mod cobbler_exp;
mod fig10;
mod fig11;
mod scale;
mod table1;
mod table2;

use farmer_bench::workloads::{WorkloadCache, DEFAULT_COL_SCALE};
use std::process::ExitCode;

/// Parsed command line.
pub struct Opts {
    /// Fraction of the paper's column counts to synthesize.
    pub col_scale: f64,
    /// Node budget for the column-enumeration baselines.
    pub budget: u64,
    /// Seed for split randomization (Table 2).
    pub seed: u64,
    /// Mining consequent for the efficiency experiments (the paper notes
    /// "using the other consequent consistently yields qualitatively
    /// similar results"; default 1 = Table 1's class 1).
    pub target_class: u32,
    /// Shrink grids for a fast smoke run.
    pub quick: bool,
}

impl Default for Opts {
    fn default() -> Self {
        Opts {
            col_scale: DEFAULT_COL_SCALE,
            budget: 50_000_000,
            seed: 1,
            target_class: 1,
            quick: false,
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("usage: experiments <table1|fig10|fig11|table2|scale|ablation|all> [options]");
        return ExitCode::FAILURE;
    };

    let mut opts = Opts::default();
    let mut it = args[1..].iter();
    while let Some(a) = it.next() {
        let mut val = |name: &str| -> String {
            it.next()
                .unwrap_or_else(|| panic!("{name} needs a value"))
                .clone()
        };
        match a.as_str() {
            "--col-scale" => opts.col_scale = val("--col-scale").parse().expect("numeric scale"),
            "--budget" => opts.budget = val("--budget").parse().expect("numeric budget"),
            "--seed" => opts.seed = val("--seed").parse().expect("numeric seed"),
            "--target-class" => {
                opts.target_class = val("--target-class").parse().expect("numeric class")
            }
            "--quick" => opts.quick = true,
            other => {
                eprintln!("unknown option: {other}");
                return ExitCode::FAILURE;
            }
        }
    }

    let cache = WorkloadCache::new(opts.col_scale);
    match cmd.as_str() {
        "table1" => table1::run(&opts),
        "fig10" => fig10::run(&opts, &cache),
        "fig11" => fig11::run(&opts, &cache),
        "table2" => table2::run(&opts),
        "scale" => scale::run(&opts, &cache),
        "ablation" => ablation::run(&opts, &cache),
        "cobbler" => cobbler_exp::run(&opts, &cache),
        "all" => {
            table1::run(&opts);
            fig10::run(&opts, &cache);
            fig11::run(&opts, &cache);
            table2::run(&opts);
            scale::run(&opts, &cache);
            ablation::run(&opts, &cache);
            cobbler_exp::run(&opts, &cache);
        }
        other => {
            eprintln!("unknown subcommand: {other}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

//! §4.1 scalability note — replicating the rows 2–10× and watching how
//! FARMER's row enumeration degrades versus the closed-set baselines.
//!
//! Support thresholds scale with the replication factor so every run
//! mines the same patterns over proportionally more rows.

use crate::Opts;
use farmer_baselines::charm::charm_with;
use farmer_baselines::closet::closet_with;
use farmer_baselines::Budgeted;
use farmer_bench::report::Table;
use farmer_bench::workloads::WorkloadCache;
use farmer_bench::{fmt_ms, time};
use farmer_core::{Farmer, MineControl, MiningParams, NoOpObserver};
use farmer_dataset::replicate::replicate_rows;
use farmer_dataset::synth::PaperDataset;

pub fn run(opts: &Opts, cache: &WorkloadCache) {
    println!("== Scalability: row replication x1..x10 (PC analog, minsup scaled with rows) ==\n");
    let base = cache.efficiency(PaperDataset::ProstateCancer);
    let base_minsup = 8usize;
    let factors: &[usize] = if opts.quick {
        &[1, 2]
    } else {
        &[1, 2, 4, 6, 8, 10]
    };

    let mut t = Table::new(&["factor", "rows", "FARMER", "#IRGs", "CHARM", "CLOSET+"]);
    for &k in factors {
        let d = replicate_rows(&base, k);
        let minsup = base_minsup * k;
        let params = MiningParams::new(opts.target_class)
            .min_sup(minsup)
            .min_conf(0.0);
        let (res, t_farmer) = time(|| Farmer::new(params).mine(&d));
        let ctl = MineControl::new().with_node_budget(Some(opts.budget));
        let (ch, t_charm) = time(|| charm_with(&d, minsup, &ctl, &mut NoOpObserver));
        let charm_cell = match ch {
            Budgeted::Done(_) => fmt_ms(t_charm),
            Budgeted::BudgetExhausted { .. } => format!(">{}", fmt_ms(t_charm)),
        };
        let ctl = MineControl::new().with_node_budget(Some(opts.budget / 200));
        let (cl, t_closet) = time(|| closet_with(&d, minsup, &ctl, &mut NoOpObserver));
        let closet_cell = match cl {
            Budgeted::Done(_) => fmt_ms(t_closet),
            Budgeted::BudgetExhausted { .. } => format!(">{}", fmt_ms(t_closet)),
        };
        t.row_owned(vec![
            format!("x{k}"),
            d.n_rows().to_string(),
            fmt_ms(t_farmer),
            res.len().to_string(),
            charm_cell,
            closet_cell,
        ]);
    }
    println!("{}", t.render());
}

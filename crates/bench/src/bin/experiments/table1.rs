//! Table 1 — dataset characteristics of the five analogs.

use crate::Opts;
use farmer_bench::report::Table;
use farmer_bench::workloads::{efficiency_dataset, matrix_for};
use farmer_dataset::synth::PaperDataset;

pub fn run(opts: &Opts) {
    println!(
        "== Table 1: microarray dataset analogs (col-scale {}) ==",
        opts.col_scale
    );
    println!(
        "paper columns are the original dimensions; analog columns are what this run synthesizes\n"
    );
    let mut t = Table::new(&[
        "dataset",
        "paper rows",
        "paper cols",
        "paper class1",
        "analog cols",
        "items (10-bucket)",
        "avg row len",
        "class 1",
        "class 0",
    ]);
    for p in PaperDataset::all() {
        let (rows, cols, c1) = p.table1_shape();
        let m = matrix_for(p, opts.col_scale);
        let d = efficiency_dataset(p, opts.col_scale);
        let (c1_name, c0_name) = p.class_names();
        t.row_owned(vec![
            p.code().to_string(),
            rows.to_string(),
            cols.to_string(),
            c1.to_string(),
            m.n_genes().to_string(),
            d.n_items().to_string(),
            format!("{:.0}", d.avg_row_len()),
            format!("{} ({})", d.class_count(1), c1_name),
            format!("{} ({})", d.class_count(0), c0_name),
        ]);
    }
    println!("{}", t.render());
}

//! Table 2 — classification accuracy of the IRG classifier vs CBA vs a
//! linear SVM, on entropy-discretized train/test splits with the paper's
//! split sizes.

use crate::Opts;
use farmer_bench::report::Table;
use farmer_bench::workloads::matrix_for;
use farmer_classify::eval::accuracy;
use farmer_classify::pipeline::DiscretizedSplit;
use farmer_classify::{CbaClassifier, IrgClassifier, SvmClassifier, SvmConfig, TopKCommittee};
use farmer_dataset::discretize::Discretizer;
use farmer_dataset::synth::PaperDataset;

struct Row {
    code: &'static str,
    n_train: usize,
    n_test: usize,
    irg: f64,
    cba: f64,
    svm: f64,
    committee: f64,
}

pub fn run(opts: &Opts) {
    println!(
        "== Table 2: classification accuracy (entropy-MDL discretization, paper split sizes) =="
    );
    println!("CBA params: minsup = 0.7 x |class|, minconf = 0.8 (same for the IRG classifier)\n");

    // the five datasets are independent: evaluate them on worker threads
    let mut rows: Vec<Row> = farmer_support::thread::scope(|scope| {
        let handles: Vec<_> = PaperDataset::all()
            .into_iter()
            .map(|p| scope.spawn(move || evaluate(p, opts)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });
    rows.sort_by_key(|r| PaperDataset::all().iter().position(|p| p.code() == r.code));

    let mut t = Table::new(&[
        "dataset",
        "#training",
        "#test",
        "IRG classifier",
        "CBA",
        "SVM",
        "TopK committee (ext)",
    ]);
    let (mut s_irg, mut s_cba, mut s_svm, mut s_com) = (0.0, 0.0, 0.0, 0.0);
    for r in &rows {
        s_irg += r.irg;
        s_cba += r.cba;
        s_svm += r.svm;
        s_com += r.committee;
        t.row_owned(vec![
            r.code.to_string(),
            r.n_train.to_string(),
            r.n_test.to_string(),
            format!("{:.2}%", r.irg * 100.0),
            format!("{:.2}%", r.cba * 100.0),
            format!("{:.2}%", r.svm * 100.0),
            format!("{:.2}%", r.committee * 100.0),
        ]);
    }
    let n = rows.len() as f64;
    t.row_owned(vec![
        "Average".to_string(),
        String::new(),
        String::new(),
        format!("{:.2}%", s_irg / n * 100.0),
        format!("{:.2}%", s_cba / n * 100.0),
        format!("{:.2}%", s_svm / n * 100.0),
        format!("{:.2}%", s_com / n * 100.0),
    ]);
    println!("{}", t.render());
}

fn evaluate(p: PaperDataset, opts: &Opts) -> Row {
    let m = matrix_for(p, opts.col_scale);
    let (n_train, n_test) = p.table2_split();
    let (train_m, test_m) = m.stratified_split(n_train, opts.seed);
    // cohort/batch mismatch between train and test, as in the clinical
    // originals (strongest for BC — see PaperDataset::table2_batch_shift)
    let test_m = test_m.shifted_per_gene(p.table2_batch_shift(), opts.seed ^ 0xBA7C);

    // rule-based classifiers: entropy-MDL items learned on train only
    let split = DiscretizedSplit::fit(&train_m, &test_m, &Discretizer::EntropyMdl);
    let irg = IrgClassifier::train(&split.train, 0.7, 0.8);
    let cba = CbaClassifier::train(&split.train, 0.7, 0.8);
    let irg_acc = accuracy(split.test.labels(), &irg.predict_dataset(&split.test));
    let cba_acc = accuracy(split.test.labels(), &cba.predict_dataset(&split.test));

    // SVM: continuous values
    let svm = SvmClassifier::train(&train_m, &SvmConfig::default());
    let svm_acc = svm.score(&test_m);

    // extension beyond the paper: the top-k committee (RCBT-style)
    let committee = TopKCommittee::train(&split.train, 3, (n_train / 10).max(4));
    let com_acc = accuracy(split.test.labels(), &committee.predict_dataset(&split.test));

    Row {
        code: p.code(),
        n_train,
        n_test,
        irg: irg_acc,
        cba: cba_acc,
        svm: svm_acc,
        committee: com_acc,
    }
}

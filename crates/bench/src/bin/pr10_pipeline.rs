//! PR-10 streaming-pipeline guard: incremental remine speed against a
//! cold full mine, plus the ingest→visible latency of a live pipeline.
//!
//! Usage:
//!
//! ```text
//! pr10_pipeline [--out BENCH_PR10.json]   measure and write the report
//! pr10_pipeline --check BENCH_PR10.json   enforce the speedup bound
//! ```
//!
//! The workload is the leukemia-analog efficiency dataset (72 rows,
//! ~3.5k items) mined at `min_sup = 4` for every class. For each delta
//! size of at most 5% of the rows, the last rows are held out, an
//! [`IncrementalMiner`] bootstraps on the rest, and one `apply_rows` +
//! `groups()` (the publishable result) is timed against a cold full
//! mine of the merged dataset — what a daemon without the
//! delta-restricted frontier would pay per arrival. The incremental
//! path must be at least [`SPEEDUP_BOUND`]× faster at every delta
//! size, and its output is asserted byte-identical to the cold mine.
//! The lag measurement runs a real [`Pipeline`] (journal, debounce,
//! publish, in-process reload) and times an ingest until the served
//! epoch advances; it is machine-dependent and only guarded against
//! collapse. `FARMER_BENCH_SAMPLES` controls repetitions (default 3,
//! best run wins).

use farmer_bench::workloads::{efficiency_dataset, DEFAULT_COL_SCALE};
use farmer_core::{canonical_sort, dump_groups, Farmer, MiningParams, RuleGroup};
use farmer_dataset::synth::PaperDataset;
use farmer_dataset::{ClassLabel, Dataset};
use farmer_pipeline::{IncrementalMiner, Notify, Pipeline, PipelineConfig};
use farmer_serve::ArtifactHandle;
use farmer_support::json::{Json, ObjBuilder};
use rowset::IdList;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Paper-grid support threshold for the leukemia analog (Figure 10).
const MIN_SUP: usize = 4;

/// cold_full_ms / incremental_ms must clear this at every delta size
/// of at most 5% of the rows. The frontier restriction skips almost
/// the whole enumeration for small deltas; measured well above 2.
const SPEEDUP_BOUND: f64 = 2.0;

/// Row-arrival batch sizes to measure: 1..3 of 72 rows (1.4%–4.2%).
const DELTA_SIZES: [usize; 3] = [1, 2, 3];

/// Collapse guard for the ingest→visible lag: the measured pipeline
/// runs with a 25 ms debounce, so anything near this bound means the
/// daemon is wedged, not slow.
const MAX_VISIBLE_MS: f64 = 30_000.0;

fn host_cores() -> usize {
    std::thread::available_parallelism().map_or(1, usize::from)
}

fn samples() -> usize {
    std::env::var("FARMER_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3)
}

/// Cold reference: full mine of every class, canonical order.
fn cold_mine(d: &Dataset) -> Vec<RuleGroup> {
    let mut groups = Vec::new();
    for class in 0..d.n_classes() as u32 {
        groups.extend(
            Farmer::new(MiningParams::new(class).min_sup(MIN_SUP))
                .mine(d)
                .groups,
        );
    }
    canonical_sort(&mut groups);
    groups
}

/// Rows `base_rows..` of `full` as an ingest delta.
fn tail_delta(full: &Dataset, base_rows: usize) -> Vec<(IdList, ClassLabel)> {
    (base_rows..full.n_rows())
        .map(|r| (full.row(r as u32).clone(), full.label(r as u32)))
        .collect()
}

/// One delta-size measurement: best-of-`n` cold and incremental times
/// plus the byte-identity check. The bootstrap — harvest plus the
/// initial publish every daemon performs, which warms the per-group
/// lower-bound memo — is timed separately: it is paid once per daemon
/// start, not per arrival.
fn measure_delta(full: &Dataset, k: usize, n: usize) -> (f64, f64, f64) {
    let base_rows = full.n_rows() - k;
    let (base, _) = full.split_at(base_rows);
    let delta = tail_delta(full, base_rows);
    let params = MiningParams::new(0).min_sup(MIN_SUP);

    let mut cold_ms = f64::INFINITY;
    let mut cold_dump = String::new();
    for _ in 0..n {
        let t0 = Instant::now();
        let groups = cold_mine(full);
        cold_ms = cold_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        cold_dump = dump_groups(&groups);
    }

    let mut bootstrap_ms = f64::INFINITY;
    let mut inc_ms = f64::INFINITY;
    for _ in 0..n {
        let t0 = Instant::now();
        let mut miner =
            IncrementalMiner::new(base.clone(), params.clone(), farmer_core::Engine::Bitset, 0);
        let _ = miner.groups();
        bootstrap_ms = bootstrap_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        let t1 = Instant::now();
        miner.apply_rows(&delta).expect("apply delta");
        let groups = miner.groups();
        inc_ms = inc_ms.min(t1.elapsed().as_secs_f64() * 1e3);
        assert_eq!(
            dump_groups(&groups),
            cold_dump,
            "incremental output diverged from the cold mine at delta {k}"
        );
    }
    (cold_ms, bootstrap_ms, inc_ms)
}

/// Times one ingest through a live pipeline until the served index
/// hot-swaps: journal append → poll+debounce → remine → publish →
/// in-process reload → epoch bump.
fn measure_visible_lag(full: &Dataset) -> f64 {
    let dir = std::env::temp_dir();
    let journal = dir.join(format!("pr10-{}.fgd", std::process::id()));
    let artifact = dir.join(format!("pr10-{}.fgi", std::process::id()));
    let _ = std::fs::remove_file(&journal);
    let _ = std::fs::remove_file(&artifact);

    let mut cfg = PipelineConfig::new(&journal, &artifact);
    cfg.params = MiningParams::new(0).min_sup(MIN_SUP);
    cfg.debounce_ms = 25;
    let pipeline = Pipeline::start(full.clone(), cfg).expect("start pipeline");
    let handle = pipeline.handle();
    let deadline = Instant::now() + Duration::from_secs(60);
    while handle.generation() < 1 {
        assert!(Instant::now() < deadline, "initial publish never landed");
        std::thread::sleep(Duration::from_millis(5));
    }
    let server = Arc::new(ArtifactHandle::load(&artifact, 0.8, 1).expect("load artifact"));
    handle.set_notify(Notify::InProcess(Arc::clone(&server)));

    let row: Vec<u32> = full.row(0).iter().collect();
    let epoch0 = server.epoch();
    let t0 = Instant::now();
    use farmer_serve::IngestHook;
    handle.ingest(&[(row, full.label(0))]).expect("ingest row");
    while server.epoch() == epoch0 {
        assert!(
            Instant::now() < deadline,
            "ingested row never became visible"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    let lag = t0.elapsed().as_secs_f64() * 1e3;
    drop(pipeline);
    let _ = std::fs::remove_file(&journal);
    let _ = std::fs::remove_file(&artifact);
    lag
}

fn run(out_path: &str) {
    let n = samples();
    let full = efficiency_dataset(PaperDataset::Leukemia, DEFAULT_COL_SCALE);
    eprintln!(
        "leukemia-analog min_sup={MIN_SUP}: {} rows x {} items",
        full.n_rows(),
        full.n_items()
    );

    let mut deltas = Vec::new();
    for k in DELTA_SIZES {
        let (cold_ms, bootstrap_ms, inc_ms) = measure_delta(&full, k, n);
        let pct = 100.0 * k as f64 / full.n_rows() as f64;
        let speedup = cold_ms / inc_ms;
        eprintln!(
            "delta {k} rows ({pct:.1}%): cold {cold_ms:.1} ms, incremental {inc_ms:.1} ms \
             ({speedup:.1}x, bootstrap {bootstrap_ms:.1} ms)"
        );
        deltas.push(
            ObjBuilder::new()
                .field("delta_rows", k)
                .field("delta_pct", pct)
                .field("cold_full_ms", cold_ms)
                .field("bootstrap_ms", bootstrap_ms)
                .field("incremental_ms", inc_ms)
                .field("speedup", speedup)
                .build(),
        );
    }

    let mut visible_ms = f64::INFINITY;
    for _ in 0..n {
        visible_ms = visible_ms.min(measure_visible_lag(&full));
    }
    eprintln!("ingest→visible: {visible_ms:.1} ms (25 ms debounce included)");

    let report = ObjBuilder::new()
        .field("schema", "farmer-pipeline-guard-v1")
        .field("pr", 10usize)
        .field("samples", n)
        .field("host_cores", host_cores())
        .field("workload", "leukemia_analog_minsup4")
        .field("n_rows", full.n_rows())
        .field("n_items", full.n_items())
        .field("deltas", Json::Arr(deltas))
        .field("debounce_ms", 25usize)
        .field("ingest_visible_ms", visible_ms)
        .build();
    std::fs::write(out_path, format!("{}\n", report.pretty())).expect("write report");
    eprintln!("wrote {out_path}");
}

/// Enforces the speedup bound and the lag collapse guard on an
/// existing report; panics on violations.
fn check(path: &str) {
    let text = std::fs::read_to_string(path).expect("read report");
    let j = Json::parse(&text).expect("report must parse as JSON");
    assert_eq!(
        j["schema"].as_str(),
        Some("farmer-pipeline-guard-v1"),
        "bad schema tag"
    );
    assert_eq!(j["pr"].as_u64(), Some(10));
    let Json::Arr(deltas) = &j["deltas"] else {
        panic!("deltas missing");
    };
    assert!(!deltas.is_empty(), "no delta measurements");
    for d in deltas {
        let k = d["delta_rows"].as_u64().expect("delta_rows");
        let pct = d["delta_pct"].as_f64().expect("delta_pct");
        assert!(pct <= 5.0, "delta {k} is over the 5% envelope ({pct:.1}%)");
        let cold = d["cold_full_ms"].as_f64().expect("cold_full_ms");
        let inc = d["incremental_ms"].as_f64().expect("incremental_ms");
        assert!(inc > 0.0 && cold > 0.0, "bogus timings at delta {k}");
        let speedup = cold / inc;
        assert!(
            speedup >= SPEEDUP_BOUND,
            "delta {k}: incremental only {speedup:.2}x faster than cold \
             ({cold:.1} / {inc:.1} ms) — below the {SPEEDUP_BOUND:.1}x bound"
        );
        let recorded = d["speedup"].as_f64().expect("speedup");
        assert!(
            (recorded - speedup).abs() < 0.01,
            "recorded speedup {recorded:.2} disagrees with timings"
        );
    }
    let lag = j["ingest_visible_ms"].as_f64().expect("ingest_visible_ms");
    assert!(
        lag.is_finite() && lag > 0.0 && lag <= MAX_VISIBLE_MS,
        "ingest→visible lag {lag:.0} ms is collapse territory (bound {MAX_VISIBLE_MS:.0})"
    );
    eprintln!(
        "{path}: OK — {} delta sizes all ≥{SPEEDUP_BOUND:.1}x over cold, \
         ingest→visible {lag:.1} ms",
        deltas.len()
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--check") => check(args.get(1).expect("--check <path>")),
        Some("--out") => run(args.get(1).expect("--out <path>")),
        None => run("BENCH_PR10.json"),
        Some(other) => panic!("unknown argument {other}"),
    }
}

//! PR-3 perf trajectory: node throughput of the FARMER miner on fixed
//! workloads, against the pre-change baseline recorded in this file.
//!
//! Usage:
//!
//! ```text
//! pr3_trajectory [--out BENCH_PR3.json]   measure and write the report
//! pr3_trajectory --check BENCH_PR3.json   schema-check an existing report
//! ```
//!
//! The baseline numbers were measured immediately before the PR-3
//! hot-path rewrite (fused rowset kernels, scratch arenas, work-stealing
//! scheduling) on the same machine layout the `current` numbers come
//! from, so `speedup` is apples-to-apples. `FARMER_BENCH_SAMPLES`
//! controls repetitions (default 3; the best run wins, standard practice
//! for throughput numbers).

use farmer_bench::workloads::{efficiency_dataset, skewed_synth, SKEWED_SYNTH_PARAMS};
use farmer_core::{Engine, Farmer, MiningParams};
use farmer_dataset::synth::PaperDataset;
use farmer_dataset::Dataset;
use farmer_support::json::{Json, ObjBuilder};
use std::time::Instant;

/// Node throughput (nodes/s) of each case, measured on the machine that
/// produced the committed `BENCH_PR3.json`, at the commit immediately
/// before the PR-3 rewrite. `(workload, engine, threads, nodes_per_sec)`.
const BASELINE: &[(&str, &str, usize, f64)] = &[
    ("skewed_synth", "bitset", 1, 2_944_000.0),
    ("skewed_synth", "bitset", 4, 1_064_000.0),
    ("skewed_synth", "pointer", 1, 1_341_000.0),
    ("colon_analog", "bitset", 1, 715_000.0),
    ("colon_analog", "bitset", 4, 998_000.0),
    ("leukemia_analog", "bitset", 4, 312_000.0),
];

struct Case {
    workload: &'static str,
    engine: Engine,
    threads: usize,
    data: Dataset,
    class: u32,
    min_sup: usize,
}

fn engine_name(e: Engine) -> &'static str {
    match e {
        Engine::Bitset => "bitset",
        Engine::PointerList => "pointer",
    }
}

fn cases() -> Vec<Case> {
    let skew = skewed_synth();
    let (class, min_sup) = SKEWED_SYNTH_PARAMS;
    let colon = efficiency_dataset(PaperDataset::ColonTumor, 0.05);
    let leuk = efficiency_dataset(PaperDataset::Leukemia, 0.05);
    vec![
        Case {
            workload: "skewed_synth",
            engine: Engine::Bitset,
            threads: 1,
            data: skew.clone(),
            class,
            min_sup,
        },
        Case {
            workload: "skewed_synth",
            engine: Engine::Bitset,
            threads: 4,
            data: skew.clone(),
            class,
            min_sup,
        },
        Case {
            workload: "skewed_synth",
            engine: Engine::PointerList,
            threads: 1,
            data: skew,
            class,
            min_sup,
        },
        Case {
            workload: "colon_analog",
            engine: Engine::Bitset,
            threads: 1,
            data: colon.clone(),
            class: 1,
            min_sup: 2,
        },
        Case {
            workload: "colon_analog",
            engine: Engine::Bitset,
            threads: 4,
            data: colon,
            class: 1,
            min_sup: 2,
        },
        Case {
            workload: "leukemia_analog",
            engine: Engine::Bitset,
            threads: 4,
            data: leuk,
            class: 1,
            min_sup: 3,
        },
    ]
}

/// Best-of-`samples` run: `(nodes_visited, best nodes/s)`.
fn measure(c: &Case, samples: usize) -> (u64, f64) {
    let params = MiningParams::new(c.class)
        .min_sup(c.min_sup)
        .lower_bounds(false);
    let miner = Farmer::new(params)
        .with_engine(c.engine)
        .with_parallelism(c.threads);
    let mut nodes = 0;
    let mut best = 0.0f64;
    for _ in 0..samples {
        let t0 = Instant::now();
        let r = miner.mine(&c.data);
        let secs = t0.elapsed().as_secs_f64();
        nodes = r.stats.nodes_visited;
        best = best.max(nodes as f64 / secs);
    }
    (nodes, best)
}

fn baseline_for(workload: &str, engine: &str, threads: usize) -> Option<f64> {
    BASELINE
        .iter()
        .find(|(w, e, t, _)| *w == workload && *e == engine && *t == threads)
        .map(|&(_, _, _, tput)| tput)
}

fn run(out_path: &str) {
    let samples: usize = std::env::var("FARMER_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    let mut rows = Vec::new();
    for c in cases() {
        let (nodes, tput) = measure(&c, samples);
        let engine = engine_name(c.engine);
        let base = baseline_for(c.workload, engine, c.threads);
        let speedup = base.map(|b| tput / b);
        eprintln!(
            "{:>16} {:>7} t={} {:>9} nodes  {:>12.0} nodes/s  speedup {}",
            c.workload,
            engine,
            c.threads,
            nodes,
            tput,
            speedup.map_or("n/a".into(), |s| format!("{s:.2}x")),
        );
        let mut row = ObjBuilder::new()
            .field("workload", c.workload)
            .field("engine", engine)
            .field("threads", c.threads)
            .field("nodes", nodes)
            .field("nodes_per_sec", tput);
        if let Some(b) = base {
            row = row
                .field("baseline_nodes_per_sec", b)
                .field("speedup", tput / b);
        }
        rows.push(row.build());
    }
    let report = ObjBuilder::new()
        .field("schema", "farmer-perf-trajectory-v1")
        .field("pr", 3usize)
        .field("samples", samples)
        .field("cases", Json::Arr(rows))
        .build();
    std::fs::write(out_path, format!("{}\n", report.pretty())).expect("write report");
    eprintln!("wrote {out_path}");
}

/// Validates an existing report's shape; exits non-zero on violations.
fn check(path: &str) {
    let text = std::fs::read_to_string(path).expect("read report");
    let j = Json::parse(&text).expect("report must parse as JSON");
    assert_eq!(
        j["schema"].as_str(),
        Some("farmer-perf-trajectory-v1"),
        "bad schema tag"
    );
    assert_eq!(j["pr"].as_u64(), Some(3));
    let cases = match &j["cases"] {
        Json::Arr(c) => c,
        other => panic!("cases must be an array, got {other:?}"),
    };
    assert!(!cases.is_empty(), "no cases");
    for c in cases {
        for key in ["workload", "engine"] {
            assert!(c[key].as_str().is_some(), "case missing {key}");
        }
        for key in ["threads", "nodes"] {
            assert!(c[key].as_u64().is_some(), "case missing {key}");
        }
        assert!(c["nodes_per_sec"].as_f64().is_some());
        if let Some(s) = c["speedup"].as_f64() {
            eprintln!(
                "{} {} t={}: speedup {s:.2}x",
                c["workload"].as_str().unwrap_or("?"),
                c["engine"].as_str().unwrap_or("?"),
                c["threads"].as_u64().unwrap_or(0),
            );
        }
    }
    eprintln!("{path}: schema OK ({} cases)", cases.len());
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--check") => check(args.get(1).expect("--check <path>")),
        Some("--out") => run(args.get(1).expect("--out <path>")),
        None => run("BENCH_PR3.json"),
        Some(other) => panic!("unknown argument {other}"),
    }
}

//! PR-4 tracing-overhead report: node throughput of the miner with the
//! tracing subsystem compiled in but **disabled**, against the
//! pre-instrumentation baseline recorded in this file — the claim under
//! test is that statically-dispatched no-op tracing costs nothing.
//!
//! Usage:
//!
//! ```text
//! pr4_overhead [--out BENCH_PR4.json]      measure and write the report
//! pr4_overhead --check BENCH_PR4.json      schema-check + overhead bound
//! pr4_overhead --check-trace <trace.json>  validate a Chrome trace file
//! ```
//!
//! The baseline numbers were measured immediately before the tracing
//! subsystem landed, on the same machine the committed `BENCH_PR4.json`
//! comes from. Only the single-thread case carries the hard <2% bound:
//! this machine schedules all parallel workers onto one core, so the
//! oversubscribed `threads = 4` case is recorded informationally.
//! `FARMER_BENCH_SAMPLES` controls repetitions (default 12; the best
//! run wins — the right statistic for an is-it-free question, since
//! every slowdown source is one-sided).

use farmer_bench::workloads::{skewed_synth, SKEWED_SYNTH_PARAMS};
use farmer_core::trace::{self, RingTracer};
use farmer_core::{Engine, Farmer, MineControl, MiningParams, NoOpObserver};
use farmer_dataset::Dataset;
use farmer_support::json::{Json, ObjBuilder};
use std::time::Instant;

/// Max tolerated throughput loss (percent) on bounded cases.
const OVERHEAD_BOUND_PCT: f64 = 2.0;

/// Node throughput (nodes/s) measured at the commit immediately before
/// the tracing subsystem, on the machine that produced the committed
/// `BENCH_PR4.json`: `(workload, engine, threads, nodes_per_sec,
/// bounded)`.
const BASELINE: &[(&str, &str, usize, f64, bool)] = &[
    ("skewed_synth", "bitset", 1, 5_245_067.0, true),
    ("skewed_synth", "bitset", 4, 1_896_862.0, false),
];

struct Case {
    workload: &'static str,
    engine: Engine,
    threads: usize,
    data: Dataset,
    class: u32,
    min_sup: usize,
}

fn cases() -> Vec<Case> {
    let skew = skewed_synth();
    let (class, min_sup) = SKEWED_SYNTH_PARAMS;
    vec![
        Case {
            workload: "skewed_synth",
            engine: Engine::Bitset,
            threads: 1,
            data: skew.clone(),
            class,
            min_sup,
        },
        Case {
            workload: "skewed_synth",
            engine: Engine::Bitset,
            threads: 4,
            data: skew,
            class,
            min_sup,
        },
    ]
}

fn engine_name(e: Engine) -> &'static str {
    match e {
        Engine::Bitset => "bitset",
        Engine::PointerList => "pointer",
    }
}

/// Best-of-`samples` throughput: `(nodes_visited, best nodes/s)`.
/// With `traced`, the run goes through `mine_session_traced` with a
/// live [`RingTracer`] (the *enabled* path); without, through the
/// plain `mine` entry point, where the no-op tracer monomorphizes the
/// instrumentation away.
fn measure(c: &Case, samples: usize, traced: bool) -> (u64, f64) {
    let params = MiningParams::new(c.class)
        .min_sup(c.min_sup)
        .lower_bounds(false);
    let miner = Farmer::new(params)
        .with_engine(c.engine)
        .with_parallelism(c.threads);
    let mut nodes = 0;
    let mut best = 0.0f64;
    for _ in 0..samples {
        let tracer: Option<RingTracer> = traced.then(|| trace::mining_tracer(c.threads));
        let t0 = Instant::now();
        let r = match &tracer {
            Some(t) => {
                miner.mine_session_traced(&c.data, &MineControl::new(), &mut NoOpObserver, t)
            }
            None => miner.mine(&c.data),
        };
        let secs = t0.elapsed().as_secs_f64();
        nodes = r.stats.nodes_visited;
        best = best.max(nodes as f64 / secs);
    }
    (nodes, best)
}

fn baseline_for(workload: &str, engine: &str, threads: usize) -> Option<(f64, bool)> {
    BASELINE
        .iter()
        .find(|(w, e, t, ..)| *w == workload && *e == engine && *t == threads)
        .map(|&(.., tput, bounded)| (tput, bounded))
}

fn run(out_path: &str) {
    let samples: usize = std::env::var("FARMER_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(12);
    let mut rows = Vec::new();
    for c in cases() {
        let (nodes, tput) = measure(&c, samples, false);
        let (_, traced_tput) = measure(&c, samples.div_ceil(2), true);
        let engine = engine_name(c.engine);
        let (base, bounded) =
            baseline_for(c.workload, engine, c.threads).expect("case without baseline");
        let overhead_pct = (1.0 - tput / base) * 100.0;
        let traced_overhead_pct = (1.0 - traced_tput / tput) * 100.0;
        eprintln!(
            "{:>13} {} t={} {:>9} nodes  {:>12.0} nodes/s  disabled-tracing overhead \
             {overhead_pct:+.2}%{}  (enabled: {traced_overhead_pct:+.2}%)",
            c.workload,
            engine,
            c.threads,
            nodes,
            tput,
            if bounded { "" } else { " [informational]" },
        );
        rows.push(
            ObjBuilder::new()
                .field("workload", c.workload)
                .field("engine", engine)
                .field("threads", c.threads)
                .field("nodes", nodes)
                .field("nodes_per_sec", tput)
                .field("baseline_nodes_per_sec", base)
                .field("overhead_pct", overhead_pct)
                .field("bounded", Json::Bool(bounded))
                .field("traced_nodes_per_sec", traced_tput)
                .field("traced_overhead_pct", traced_overhead_pct)
                .build(),
        );
    }
    let report = ObjBuilder::new()
        .field("schema", "farmer-trace-overhead-v1")
        .field("pr", 4usize)
        .field("samples", samples)
        .field("overhead_bound_pct", OVERHEAD_BOUND_PCT)
        .field("cases", Json::Arr(rows))
        .build();
    std::fs::write(out_path, format!("{}\n", report.pretty())).expect("write report");
    eprintln!("wrote {out_path}");
}

/// Validates an existing report's shape and enforces the overhead bound
/// on bounded cases; panics (non-zero exit) on violations.
fn check(path: &str) {
    let text = std::fs::read_to_string(path).expect("read report");
    let j = Json::parse(&text).expect("report must parse as JSON");
    assert_eq!(
        j["schema"].as_str(),
        Some("farmer-trace-overhead-v1"),
        "bad schema tag"
    );
    assert_eq!(j["pr"].as_u64(), Some(4));
    let bound = j["overhead_bound_pct"].as_f64().expect("bound missing");
    let cases = match &j["cases"] {
        Json::Arr(c) => c,
        other => panic!("cases must be an array, got {other:?}"),
    };
    assert!(!cases.is_empty(), "no cases");
    let mut bounded_cases = 0;
    for c in cases {
        for key in ["workload", "engine"] {
            assert!(c[key].as_str().is_some(), "case missing {key}");
        }
        for key in ["threads", "nodes"] {
            assert!(c[key].as_u64().is_some(), "case missing {key}");
        }
        for key in [
            "nodes_per_sec",
            "baseline_nodes_per_sec",
            "overhead_pct",
            "traced_nodes_per_sec",
            "traced_overhead_pct",
        ] {
            assert!(c[key].as_f64().is_some(), "case missing {key}");
        }
        let overhead = c["overhead_pct"].as_f64().unwrap();
        let tag = format!(
            "{} {} t={}",
            c["workload"].as_str().unwrap_or("?"),
            c["engine"].as_str().unwrap_or("?"),
            c["threads"].as_u64().unwrap_or(0),
        );
        if c["bounded"].as_bool() == Some(true) {
            bounded_cases += 1;
            assert!(
                overhead < bound,
                "{tag}: disabled-tracing overhead {overhead:.2}% exceeds the {bound}% bound"
            );
            eprintln!("{tag}: overhead {overhead:+.2}% (< {bound}% bound)");
        } else {
            eprintln!("{tag}: overhead {overhead:+.2}% (informational)");
        }
    }
    assert!(bounded_cases > 0, "no case carries the overhead bound");
    eprintln!("{path}: schema OK ({} cases)", cases.len());
}

/// Validates that `path` holds loadable Chrome trace-event JSON: a
/// `traceEvents` array whose entries carry `ph`/`pid`/`tid`, with
/// balanced `B`/`E` pairs and at least one named thread per lane.
fn check_trace(path: &str) {
    let text = std::fs::read_to_string(path).expect("read trace");
    let j = Json::parse(&text).expect("trace must parse as JSON");
    let events = match &j["traceEvents"] {
        Json::Arr(e) => e,
        other => panic!("traceEvents must be an array, got {other:?}"),
    };
    assert!(!events.is_empty(), "empty trace");
    let mut depth = 0i64;
    let mut names = 0usize;
    for e in events {
        assert!(e["ph"].as_str().is_some(), "event without ph: {e:?}");
        assert!(e["pid"].as_u64().is_some(), "event without pid: {e:?}");
        assert!(e["tid"].as_u64().is_some(), "event without tid: {e:?}");
        match e["ph"].as_str().unwrap() {
            "B" => depth += 1,
            "E" => depth -= 1,
            "M" => names += 1,
            _ => {}
        }
    }
    assert_eq!(depth, 0, "unbalanced B/E events");
    assert!(names > 0, "no thread_name metadata");
    eprintln!(
        "{path}: Chrome trace OK ({} events, {names} named tracks)",
        events.len()
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--check") => check(args.get(1).expect("--check <path>")),
        Some("--check-trace") => check_trace(args.get(1).expect("--check-trace <path>")),
        Some("--out") => run(args.get(1).expect("--out <path>")),
        None => run("BENCH_PR4.json"),
        Some(other) => panic!("unknown argument {other}"),
    }
}

//! PR-6 scheduler guard: parallel scaling of the deque scheduler plus
//! shared-memo effectiveness on the hub-skewed workload whose depth-1
//! imbalance the scheduler was built for.
//!
//! Usage:
//!
//! ```text
//! pr6_scheduler [--out BENCH_PR6.json]   measure and write the report
//! pr6_scheduler --check BENCH_PR6.json   enforce the scaling bound
//! ```
//!
//! The report records the host's core count alongside the numbers, and
//! `--check` scales its demands to the machine that *measured* the
//! report: on a ≥ 4-core host the 4-thread run must clear 1.5× the
//! 1-thread throughput (the whole point of work stealing + adaptive
//! splitting), while on smaller hosts — where 4 workers time-slice one
//! core — it only has to avoid regressing below a no-worse-than bound.
//! The memo hit rate must be strictly positive either way: the skewed
//! workload revisits closed sets constantly, so a zero hit rate means
//! the table is disconnected, not that there was nothing to memoize.
//! `FARMER_BENCH_SAMPLES` controls repetitions (default 3, best run
//! wins).

use farmer_bench::workloads::{skewed_synth, SKEWED_SYNTH_PARAMS};
use farmer_core::{Farmer, MiningParams};
use farmer_support::json::{Json, ObjBuilder};
use std::time::Instant;

/// Memo size for the measured 4-thread run: big enough that drops are
/// rare on this workload, small enough to stay cache-resident.
const MEMO_CAPACITY: usize = 65_536;

/// Scaling demanded of t=4 vs t=1 when the recording host had ≥ 4
/// cores. 1.5× is deliberately below the 4× ideal: the skewed
/// workload's serial fraction (root scan + merge) and the shared budget
/// pool cap realizable speedup well under linear.
const SCALE_BOUND_MULTICORE: f64 = 1.5;

/// Floor when the recording host had < 4 cores. Four workers
/// time-slicing one core legitimately lose real throughput (4× the
/// scratch-arena cache footprint, context switches mid-subtree), so
/// this is a livelock guard, not a fairness bound: a starving loop that
/// spun instead of backing off measures well under 0.1×. Generous
/// headroom on purpose: single-core throughput ratios are noisy and a
/// guard that flakes gets deleted.
const SCALE_BOUND_UNDERSIZED: f64 = 0.25;

struct Measured {
    threads: usize,
    memo_capacity: usize,
    nodes: u64,
    nodes_per_sec: f64,
    memo_probes: u64,
    memo_hits: u64,
    steals: u64,
}

fn host_cores() -> usize {
    std::thread::available_parallelism().map_or(1, usize::from)
}

/// Best-of-`samples` skewed_synth mine at the given parallelism.
fn measure(threads: usize, memo_capacity: usize, samples: usize) -> Measured {
    let data = skewed_synth();
    let (class, min_sup) = SKEWED_SYNTH_PARAMS;
    let params = MiningParams::new(class)
        .min_sup(min_sup)
        .lower_bounds(false);
    let miner = Farmer::new(params)
        .with_parallelism(threads)
        .with_memo_capacity(memo_capacity);
    let mut out = Measured {
        threads,
        memo_capacity,
        nodes: 0,
        nodes_per_sec: 0.0,
        memo_probes: 0,
        memo_hits: 0,
        steals: 0,
    };
    for _ in 0..samples {
        let t0 = Instant::now();
        let r = miner.mine(&data);
        let secs = t0.elapsed().as_secs_f64();
        out.nodes = r.stats.nodes_visited;
        out.nodes_per_sec = out.nodes_per_sec.max(out.nodes as f64 / secs);
        out.memo_probes = r.sched.memo.probes;
        out.memo_hits = r.sched.memo.hits;
        out.steals = r.sched.steals;
    }
    out
}

fn row(m: &Measured) -> Json {
    let hit_rate = if m.memo_probes > 0 {
        m.memo_hits as f64 / m.memo_probes as f64
    } else {
        0.0
    };
    ObjBuilder::new()
        .field("threads", m.threads)
        .field("memo_capacity", m.memo_capacity)
        .field("nodes", m.nodes)
        .field("nodes_per_sec", m.nodes_per_sec)
        .field("memo_probes", m.memo_probes)
        .field("memo_hits", m.memo_hits)
        .field("memo_hit_rate", hit_rate)
        .field("steals", m.steals)
        .build()
}

fn run(out_path: &str) {
    let samples: usize = std::env::var("FARMER_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    let t1 = measure(1, 0, samples);
    let t4 = measure(4, MEMO_CAPACITY, samples);
    for m in [&t1, &t4] {
        eprintln!(
            "skewed_synth t={} memo={:>5}: {:>9} nodes  {:>12.0} nodes/s  \
             {} / {} memo hits, {} steals",
            m.threads,
            m.memo_capacity,
            m.nodes,
            m.nodes_per_sec,
            m.memo_hits,
            m.memo_probes,
            m.steals,
        );
    }
    eprintln!(
        "t4/t1 scaling: {:.2}x on {} host cores",
        t4.nodes_per_sec / t1.nodes_per_sec,
        host_cores()
    );
    let report = ObjBuilder::new()
        .field("schema", "farmer-scheduler-guard-v1")
        .field("pr", 6usize)
        .field("samples", samples)
        .field("host_cores", host_cores())
        .field("workload", "skewed_synth")
        .field("cases", Json::Arr(vec![row(&t1), row(&t4)]))
        .build();
    std::fs::write(out_path, format!("{}\n", report.pretty())).expect("write report");
    eprintln!("wrote {out_path}");
}

/// Enforces the scaling and memo-effectiveness bounds on an existing
/// report; exits non-zero (panics) on violations.
fn check(path: &str) {
    let text = std::fs::read_to_string(path).expect("read report");
    let j = Json::parse(&text).expect("report must parse as JSON");
    assert_eq!(
        j["schema"].as_str(),
        Some("farmer-scheduler-guard-v1"),
        "bad schema tag"
    );
    assert_eq!(j["pr"].as_u64(), Some(6));
    let recorded_cores = j["host_cores"].as_u64().expect("host_cores missing");
    let cases = match &j["cases"] {
        Json::Arr(c) => c,
        other => panic!("cases must be an array, got {other:?}"),
    };
    let find = |threads: u64| -> &Json {
        cases
            .iter()
            .find(|c| c["threads"].as_u64() == Some(threads))
            .unwrap_or_else(|| panic!("no t={threads} case in report"))
    };
    let t1 = find(1);
    let t4 = find(4);
    let t1_nps = t1["nodes_per_sec"].as_f64().expect("t1 nodes_per_sec");
    let t4_nps = t4["nodes_per_sec"].as_f64().expect("t4 nodes_per_sec");
    assert_eq!(
        t1["nodes"].as_u64(),
        // every parallel worker tallies the shared root once, so t=4
        // visits exactly 3 more nodes than t=1 — anything else means
        // the schedulers explored different trees
        t4["nodes"].as_u64().map(|n| n - 3),
        "t=1 and t=4 explored different trees"
    );
    let bound = if recorded_cores >= 4 {
        SCALE_BOUND_MULTICORE
    } else {
        SCALE_BOUND_UNDERSIZED
    };
    let scaling = t4_nps / t1_nps;
    assert!(
        scaling >= bound,
        "t=4 scaling {scaling:.2}x below the {bound:.2}x bound \
         (recorded on a {recorded_cores}-core host)"
    );
    let hit_rate = t4["memo_hit_rate"].as_f64().expect("memo_hit_rate");
    let probes = t4["memo_probes"].as_u64().expect("memo_probes");
    assert!(probes > 0, "memo never probed — table disconnected");
    assert!(
        hit_rate > 0.0,
        "memo hit rate is zero over {probes} probes — table disconnected"
    );
    eprintln!(
        "{path}: OK — {scaling:.2}x scaling (bound {bound:.2}x on {recorded_cores} cores), \
         memo hit rate {:.1}%",
        hit_rate * 100.0
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--check") => check(args.get(1).expect("--check <path>")),
        Some("--out") => run(args.get(1).expect("--out <path>")),
        None => run("BENCH_PR6.json"),
        Some(other) => panic!("unknown argument {other}"),
    }
}

//! PR-7 serving guard: `.fgi` v2 compaction against v1, plus sustained
//! throughput and tail latency of the sharded `/v1` HTTP server.
//!
//! Usage:
//!
//! ```text
//! pr7_serving [--out BENCH_PR7.json]   measure and write the report
//! pr7_serving --check BENCH_PR7.json   enforce the compaction bound
//! ```
//!
//! The artifact workload is the leukemia-analog efficiency dataset
//! (72 rows, ~3.5k items) mined at `min_sup = 4` for every class — the
//! same setting Figure 10 sweeps — saved in both formats. The v2
//! run/verbatim rowset blocks and delta-coded varints must keep the
//! file at least [`SIZE_RATIO_BOUND`]× smaller than v1; that bound is
//! deterministic, so `--check` enforces it on any host. Serving numbers
//! (req/s and client-observed p99 over loopback) are recorded for
//! trend-watching and only guarded against collapse: they depend on
//! the measuring machine. `FARMER_BENCH_SAMPLES` controls repetitions
//! (default 3, best run wins).

use farmer_bench::workloads::{efficiency_dataset, DEFAULT_COL_SCALE};
use farmer_core::{canonical_sort, Farmer, MiningParams, RuleGroup};
use farmer_dataset::synth::PaperDataset;
use farmer_dataset::Dataset;
use farmer_serve::{http_get, ArtifactHandle, ServeConfig, ShardedIndex};
use farmer_store::{save_artifact_versioned, Artifact, ArtifactMeta};
use farmer_support::json::{Json, ObjBuilder};
use std::sync::Arc;
use std::time::Instant;

/// Paper-grid support threshold for the leukemia analog (Figure 10's
/// densest point — the most groups, so the strongest compaction test).
const MIN_SUP: usize = 4;

/// v1_bytes / v2_bytes must clear this. Measured ~5.2× on the
/// workload; the run/verbatim hybrid would have to regress badly to
/// fall below 5.
const SIZE_RATIO_BOUND: f64 = 5.0;

/// Collapse guard for recorded throughput: loopback serving of a
/// mined index does thousands of req/s on any real core; under this
/// means the admission path or worker pool is wedged, not slow.
const MIN_REQS_PER_SEC: f64 = 50.0;

/// Client threads × requests per thread for one hammer sample.
const CLIENTS: usize = 4;
const REQS_PER_CLIENT: usize = 250;

fn host_cores() -> usize {
    std::thread::available_parallelism().map_or(1, usize::from)
}

/// Mines every class of the efficiency workload at [`MIN_SUP`].
fn mine_workload() -> (Dataset, ArtifactMeta, Vec<RuleGroup>) {
    let d = efficiency_dataset(PaperDataset::Leukemia, DEFAULT_COL_SCALE);
    let mut groups = Vec::new();
    for class in 0..d.n_classes() as u32 {
        groups.extend(
            Farmer::new(MiningParams::new(class).min_sup(MIN_SUP))
                .mine(&d)
                .groups,
        );
    }
    canonical_sort(&mut groups);
    let meta = ArtifactMeta::from_dataset(&d);
    (d, meta, groups)
}

/// Saves in `version` format and times the best-of-`samples` load.
fn save_and_load(
    meta: &ArtifactMeta,
    groups: &[RuleGroup],
    version: u32,
    samples: usize,
) -> (u64, f64) {
    let path = std::env::temp_dir().join(format!("pr7_serving_v{version}.fgi"));
    save_artifact_versioned(&path, meta, groups, version).expect("save artifact");
    let bytes = std::fs::metadata(&path).expect("stat artifact").len();
    let mut best = f64::INFINITY;
    for _ in 0..samples {
        let t0 = Instant::now();
        let art = Artifact::load(&path).expect("load artifact");
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
        assert_eq!(art.groups.len(), groups.len());
    }
    let _ = std::fs::remove_file(&path);
    (bytes, best)
}

/// One hammer sample: `CLIENTS` threads issue `REQS_PER_CLIENT`
/// classify GETs each; returns (req/s, client-observed p99 ms).
fn hammer(addr: &str, queries: &[String]) -> (f64, f64) {
    let t0 = Instant::now();
    let mut latencies: Vec<u64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                scope.spawn(move || {
                    let mut lat = Vec::with_capacity(REQS_PER_CLIENT);
                    for i in 0..REQS_PER_CLIENT {
                        let q = &queries[(c + i) % queries.len()];
                        let t = Instant::now();
                        let resp = http_get(addr, q).expect("classify GET");
                        assert_eq!(resp.status, 200, "{q}: {}", resp.body);
                        lat.push(t.elapsed().as_nanos() as u64);
                    }
                    lat
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });
    let wall = t0.elapsed().as_secs_f64();
    latencies.sort_unstable();
    let p99 = latencies[(latencies.len() * 99) / 100 - 1] as f64 / 1e6;
    ((CLIENTS * REQS_PER_CLIENT) as f64 / wall, p99)
}

fn run(out_path: &str) {
    let samples: usize = std::env::var("FARMER_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    let (d, meta, groups) = mine_workload();
    eprintln!(
        "leukemia-analog min_sup={MIN_SUP}: {} groups over {} rows x {} items",
        groups.len(),
        d.n_rows(),
        d.n_items()
    );
    let (v1_bytes, v1_load_ms) = save_and_load(&meta, &groups, 1, samples);
    let (v2_bytes, v2_load_ms) = save_and_load(&meta, &groups, 2, samples);
    let ratio = v1_bytes as f64 / v2_bytes as f64;
    eprintln!(
        "artifact: v1 {v1_bytes} B ({v1_load_ms:.2} ms load), \
         v2 {v2_bytes} B ({v2_load_ms:.2} ms load), {ratio:.2}x smaller"
    );

    // Serve the mined artifact in-process and hammer /v1/classify with
    // real row contents (answers exercise postings, not the 404 path).
    let index = ShardedIndex::from_artifact(Artifact {
        meta: meta.clone(),
        groups: groups.clone(),
    });
    let n_shards = index.n_shards();
    let handle = Arc::new(ArtifactHandle::from_index(index));
    let config = ServeConfig {
        workers: CLIENTS,
        ..ServeConfig::default()
    };
    let server = farmer_serve::start(Arc::clone(&handle), &config).expect("start server");
    let addr = server.addr().to_string();
    let queries: Vec<String> = (0..d.n_rows().min(16))
        .map(|r| {
            let items: Vec<&str> = d
                .row(r as u32)
                .iter()
                .take(12)
                .map(|i| d.item_name(i))
                .collect();
            format!("/v1/classify?items={}", items.join(","))
        })
        .collect();
    let mut reqs_per_sec = 0.0f64;
    let mut p99_ms = f64::INFINITY;
    for _ in 0..samples {
        let (rps, p99) = hammer(&addr, &queries);
        if rps > reqs_per_sec {
            reqs_per_sec = rps;
            p99_ms = p99;
        }
    }
    let shed = server.requests_shed();
    server.shutdown();
    eprintln!(
        "serving: {reqs_per_sec:.0} req/s, p99 {p99_ms:.3} ms \
         ({CLIENTS} clients, {n_shards} shards, {shed} shed)"
    );

    let report = ObjBuilder::new()
        .field("schema", "farmer-serving-guard-v1")
        .field("pr", 7usize)
        .field("samples", samples)
        .field("host_cores", host_cores())
        .field("workload", "leukemia_analog_minsup4")
        .field("n_groups", groups.len())
        .field("v1_bytes", v1_bytes)
        .field("v2_bytes", v2_bytes)
        .field("size_ratio", ratio)
        .field("v1_load_ms", v1_load_ms)
        .field("v2_load_ms", v2_load_ms)
        .field("n_shards", n_shards)
        .field("reqs_per_sec", reqs_per_sec)
        .field("p99_ms", p99_ms)
        .field("shed", shed)
        .build();
    std::fs::write(out_path, format!("{}\n", report.pretty())).expect("write report");
    eprintln!("wrote {out_path}");
}

/// Enforces the compaction bound (deterministic) and the serving
/// collapse guards on an existing report; panics on violations.
fn check(path: &str) {
    let text = std::fs::read_to_string(path).expect("read report");
    let j = Json::parse(&text).expect("report must parse as JSON");
    assert_eq!(
        j["schema"].as_str(),
        Some("farmer-serving-guard-v1"),
        "bad schema tag"
    );
    assert_eq!(j["pr"].as_u64(), Some(7));
    let v1 = j["v1_bytes"].as_u64().expect("v1_bytes missing");
    let v2 = j["v2_bytes"].as_u64().expect("v2_bytes missing");
    assert!(v2 > 0, "v2 artifact is empty");
    let ratio = v1 as f64 / v2 as f64;
    assert!(
        ratio >= SIZE_RATIO_BOUND,
        "v2 only {ratio:.2}x smaller than v1 ({v1} / {v2} B) — \
         below the {SIZE_RATIO_BOUND:.1}x bound"
    );
    let recorded_ratio = j["size_ratio"].as_f64().expect("size_ratio missing");
    assert!(
        (recorded_ratio - ratio).abs() < 0.01,
        "recorded size_ratio {recorded_ratio:.2} disagrees with byte counts"
    );
    let rps = j["reqs_per_sec"].as_f64().expect("reqs_per_sec missing");
    assert!(
        rps >= MIN_REQS_PER_SEC,
        "{rps:.0} req/s is collapse territory (bound {MIN_REQS_PER_SEC})"
    );
    let p99 = j["p99_ms"].as_f64().expect("p99_ms missing");
    assert!(p99.is_finite() && p99 > 0.0, "bogus p99 {p99}");
    assert_eq!(j["shed"].as_u64(), Some(0), "hammer saw shed requests");
    eprintln!(
        "{path}: OK — v2 {ratio:.2}x smaller than v1 (bound {SIZE_RATIO_BOUND:.1}x), \
         {rps:.0} req/s, p99 {p99:.3} ms"
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--check") => check(args.get(1).expect("--check <path>")),
        Some("--out") => run(args.get(1).expect("--out <path>")),
        None => run("BENCH_PR7.json"),
        Some(other) => panic!("unknown argument {other}"),
    }
}

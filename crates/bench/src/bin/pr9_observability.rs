//! PR-9 observability guard: the serving hot path must not pay for
//! instrumentation it isn't using.
//!
//! Usage:
//!
//! ```text
//! pr9_observability [--out BENCH_PR9.json] [--baseline BENCH_PR7.json]
//! pr9_observability --check BENCH_PR9.json
//! ```
//!
//! Re-runs the PR 7 loopback hammer (same leukemia-analog artifact,
//! same `CLIENTS × REQS_PER_CLIENT` classify GETs) in two modes:
//!
//! * **disabled** — default config: no access log, default slow
//!   threshold. This is the production path; its req/s is recorded as
//!   a ratio against the committed PR 7 baseline and `--check` pins
//!   that ratio at [`RATIO_BOUND`] (within 3%) on recording-grade
//!   (3+-sample) reports — 1-sample smoke runs record it only.
//! * **enabled** — access log to a file and `slow_ms = 0` (every
//!   request through the slow ring). The overhead ratio is recorded
//!   for trend-watching and only guarded against collapse — fsync-free
//!   JSON lines are cheap, but they are not free.
//!
//! Like every serving guard, absolute numbers depend on the measuring
//! machine; the *ratios* in the committed report are what `--check`
//! enforces. `FARMER_BENCH_SAMPLES` controls repetitions (default 3,
//! best run wins).

use farmer_bench::workloads::{efficiency_dataset, DEFAULT_COL_SCALE};
use farmer_core::{canonical_sort, Farmer, MiningParams, RuleGroup};
use farmer_dataset::synth::PaperDataset;
use farmer_dataset::Dataset;
use farmer_serve::{http_get, ArtifactHandle, ServeConfig, ShardedIndex};
use farmer_store::{Artifact, ArtifactMeta};
use farmer_support::json::{Json, ObjBuilder};
use std::sync::Arc;
use std::time::Instant;

/// Same paper-grid point as the PR 7 guard.
const MIN_SUP: usize = 4;

/// Disabled-observability req/s over the committed PR 7 baseline must
/// stay within 3%: the RED counters and the request-id are always-on,
/// and this bound is what "zero-cost when disabled" means in numbers.
const RATIO_BOUND: f64 = 0.97;

/// Collapse guard, as in the PR 7 guard.
const MIN_REQS_PER_SEC: f64 = 50.0;

/// Fully-instrumented serving slower than 5× the uninstrumented run
/// means the log lock or the slow ring is serializing the pool.
const MIN_OVERHEAD_RATIO: f64 = 0.2;

/// Client threads × requests per thread, identical to the PR 7 hammer.
const CLIENTS: usize = 4;
const REQS_PER_CLIENT: usize = 250;

fn host_cores() -> usize {
    std::thread::available_parallelism().map_or(1, usize::from)
}

/// Mines every class of the efficiency workload at [`MIN_SUP`].
fn mine_workload() -> (Dataset, ArtifactMeta, Vec<RuleGroup>) {
    let d = efficiency_dataset(PaperDataset::Leukemia, DEFAULT_COL_SCALE);
    let mut groups = Vec::new();
    for class in 0..d.n_classes() as u32 {
        groups.extend(
            Farmer::new(MiningParams::new(class).min_sup(MIN_SUP))
                .mine(&d)
                .groups,
        );
    }
    canonical_sort(&mut groups);
    let meta = ArtifactMeta::from_dataset(&d);
    (d, meta, groups)
}

/// One hammer sample: returns (req/s, client-observed p99 ms).
fn hammer(addr: &str, queries: &[String]) -> (f64, f64) {
    let t0 = Instant::now();
    let mut latencies: Vec<u64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                scope.spawn(move || {
                    let mut lat = Vec::with_capacity(REQS_PER_CLIENT);
                    for i in 0..REQS_PER_CLIENT {
                        let q = &queries[(c + i) % queries.len()];
                        let t = Instant::now();
                        let resp = http_get(addr, q).expect("classify GET");
                        assert_eq!(resp.status, 200, "{q}: {}", resp.body);
                        lat.push(t.elapsed().as_nanos() as u64);
                    }
                    lat
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });
    let wall = t0.elapsed().as_secs_f64();
    latencies.sort_unstable();
    let p99 = latencies[(latencies.len() * 99) / 100 - 1] as f64 / 1e6;
    ((CLIENTS * REQS_PER_CLIENT) as f64 / wall, p99)
}

/// Best-of-`samples` hammer against a server built with `config`;
/// returns (req/s, p99 ms, requests shed).
fn measure(
    meta: &ArtifactMeta,
    groups: &[RuleGroup],
    queries: &[String],
    config: &ServeConfig,
    samples: usize,
) -> (f64, f64, u64) {
    let index = ShardedIndex::from_artifact(Artifact {
        meta: meta.clone(),
        groups: groups.to_vec(),
    });
    let handle = Arc::new(ArtifactHandle::from_index(index));
    let server = farmer_serve::start(Arc::clone(&handle), config).expect("start server");
    let addr = server.addr().to_string();
    // One unrecorded warmup pass: the first hammer against a fresh
    // server pays cold caches and connection setup, which at
    // FARMER_BENCH_SAMPLES=1 would be the whole measurement.
    let _ = hammer(&addr, queries);
    let mut reqs_per_sec = 0.0f64;
    let mut p99_ms = f64::INFINITY;
    for _ in 0..samples {
        let (rps, p99) = hammer(&addr, queries);
        if rps > reqs_per_sec {
            reqs_per_sec = rps;
            p99_ms = p99;
        }
    }
    let shed = server.requests_shed();
    server.shutdown();
    (reqs_per_sec, p99_ms, shed)
}

fn run(out_path: &str, baseline_path: &str) {
    let samples: usize = std::env::var("FARMER_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    let baseline = Json::parse(
        &std::fs::read_to_string(baseline_path)
            .unwrap_or_else(|e| panic!("{baseline_path}: {e} (run pr7_serving first)")),
    )
    .expect("baseline must parse");
    let baseline_rps = baseline["reqs_per_sec"]
        .as_f64()
        .expect("baseline reqs_per_sec missing");

    let (d, meta, groups) = mine_workload();
    let queries: Vec<String> = (0..d.n_rows().min(16))
        .map(|r| {
            let items: Vec<&str> = d
                .row(r as u32)
                .iter()
                .take(12)
                .map(|i| d.item_name(i))
                .collect();
            format!("/v1/classify?items={}", items.join(","))
        })
        .collect();

    // Production path: observability present but disabled.
    let disabled_cfg = ServeConfig {
        workers: CLIENTS,
        ..ServeConfig::default()
    };
    let (rps, p99_ms, shed) = measure(&meta, &groups, &queries, &disabled_cfg, samples);
    let ratio = rps / baseline_rps;
    eprintln!(
        "disabled: {rps:.0} req/s, p99 {p99_ms:.3} ms, {shed} shed \
         ({:.1}% of the PR 7 baseline {baseline_rps:.0})",
        ratio * 100.0
    );

    // Worst case: every request logged and captured in the slow ring.
    let log_path = std::env::temp_dir().join(format!("pr9_access_{}.jsonl", std::process::id()));
    let enabled_cfg = ServeConfig {
        workers: CLIENTS,
        log_out: Some(log_path.to_str().unwrap().to_string()),
        slow_ms: 0,
        ..ServeConfig::default()
    };
    let (logged_rps, logged_p99_ms, logged_shed) =
        measure(&meta, &groups, &queries, &enabled_cfg, samples);
    let log_lines = std::fs::read_to_string(&log_path)
        .map(|t| t.lines().count())
        .unwrap_or(0);
    let _ = std::fs::remove_file(&log_path);
    let overhead_ratio = logged_rps / rps;
    eprintln!(
        "enabled:  {logged_rps:.0} req/s, p99 {logged_p99_ms:.3} ms, {logged_shed} shed, \
         {log_lines} log lines ({:.1}% of disabled)",
        overhead_ratio * 100.0
    );

    let report = ObjBuilder::new()
        .field("schema", "farmer-observability-guard-v1")
        .field("pr", 9usize)
        .field("samples", samples)
        .field("host_cores", host_cores())
        .field("workload", "leukemia_analog_minsup4")
        .field("n_groups", groups.len())
        .field("baseline_reqs_per_sec", baseline_rps)
        .field("reqs_per_sec", rps)
        .field("ratio_vs_pr7", ratio)
        .field("p99_ms", p99_ms)
        .field("shed", shed)
        .field("logged_reqs_per_sec", logged_rps)
        .field("logged_p99_ms", logged_p99_ms)
        .field("overhead_ratio", overhead_ratio)
        .field("log_lines", log_lines)
        .build();
    std::fs::write(out_path, format!("{}\n", report.pretty())).expect("write report");
    eprintln!("wrote {out_path}");
}

/// Enforces the recorded ratios; panics on violations.
fn check(path: &str) {
    let text = std::fs::read_to_string(path).expect("read report");
    let j = Json::parse(&text).expect("report must parse as JSON");
    assert_eq!(
        j["schema"].as_str(),
        Some("farmer-observability-guard-v1"),
        "bad schema tag"
    );
    assert_eq!(j["pr"].as_u64(), Some(9));
    let samples = j["samples"].as_u64().expect("samples missing");
    let ratio = j["ratio_vs_pr7"].as_f64().expect("ratio_vs_pr7 missing");
    // The cross-run ratio against the committed PR 7 report is only
    // meaningful on recording-grade runs (best-of-3+); a 1-sample
    // smoke report inherits whatever load the host is under today.
    // The committed BENCH_PR9.json is always recording-grade, so the
    // bound stays pinned where it matters.
    if samples >= 3 {
        assert!(
            ratio >= RATIO_BOUND,
            "disabled-observability serving at {:.1}% of the PR 7 baseline — \
             below the {:.0}% bound; the always-on path regressed",
            ratio * 100.0,
            RATIO_BOUND * 100.0
        );
    } else {
        eprintln!(
            "note: {samples}-sample smoke report — ratio_vs_pr7 \
             ({:.1}%) recorded, bound enforced at 3+ samples",
            ratio * 100.0
        );
    }
    let rps = j["reqs_per_sec"].as_f64().expect("reqs_per_sec missing");
    assert!(
        rps >= MIN_REQS_PER_SEC,
        "{rps:.0} req/s is collapse territory (bound {MIN_REQS_PER_SEC})"
    );
    let overhead = j["overhead_ratio"]
        .as_f64()
        .expect("overhead_ratio missing");
    assert!(
        overhead >= MIN_OVERHEAD_RATIO,
        "fully-instrumented serving at {:.1}% of disabled — the log lock \
         or slow ring is serializing the pool",
        overhead * 100.0
    );
    // Warmup pass included: every hammer (recorded or not) logs.
    let expected_lines = (samples + 1) * (CLIENTS * REQS_PER_CLIENT) as u64;
    assert_eq!(
        j["log_lines"].as_u64(),
        Some(expected_lines),
        "access log must carry one line per hammered request"
    );
    assert_eq!(j["shed"].as_u64(), Some(0), "hammer saw shed requests");
    eprintln!(
        "{path}: OK — disabled at {:.1}% of PR 7 (bound {:.0}%), \
         instrumented at {:.1}% of disabled, {expected_lines} log lines",
        ratio * 100.0,
        RATIO_BOUND * 100.0,
        overhead * 100.0
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out = "BENCH_PR9.json".to_string();
    let mut baseline = "BENCH_PR7.json".to_string();
    let mut check_path: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--check" => check_path = Some(it.next().expect("--check <path>").clone()),
            "--out" => out = it.next().expect("--out <path>").clone(),
            "--baseline" => baseline = it.next().expect("--baseline <path>").clone(),
            other => panic!("unknown argument {other}"),
        }
    }
    match check_path {
        Some(p) => check(&p),
        None => run(&out, &baseline),
    }
}

//! Shared infrastructure for the FARMER evaluation harness.
//!
//! Every table and figure of the paper's §4 has a regenerator in the
//! `experiments` binary of this crate, backed by the helpers here:
//! deterministic workload construction (synthetic analogs of the five
//! clinical datasets, discretized the way the paper does), wall-clock
//! timing, and plain-text table rendering. Criterion micro-benchmarks
//! live under `benches/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod report;
pub mod trajectory;
pub mod workloads;

use std::time::{Duration, Instant};

/// Times a closure, returning its result and the elapsed wall time.
pub fn time<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Milliseconds as a compact human string (`"12.3"`, `"4510"`).
pub fn fmt_ms(d: Duration) -> String {
    let ms = d.as_secs_f64() * 1e3;
    if ms < 100.0 {
        format!("{ms:.2}")
    } else {
        format!("{ms:.0}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_measures() {
        let (v, d) = time(|| 21 * 2);
        assert_eq!(v, 42);
        assert!(d < Duration::from_secs(1));
    }

    #[test]
    fn fmt_ms_ranges() {
        assert_eq!(fmt_ms(Duration::from_micros(1500)), "1.50");
        assert_eq!(fmt_ms(Duration::from_millis(4510)), "4510");
    }
}

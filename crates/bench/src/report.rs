//! Plain-text table rendering for experiment output.

use std::fmt::Write as _;

/// A simple aligned-column table builder for experiment reports.
///
/// ```
/// use farmer_bench::report::Table;
/// let mut t = Table::new(&["minsup", "FARMER", "CHARM"]);
/// t.row(&["7", "1.2", "450"]);
/// let s = t.render();
/// assert!(s.contains("minsup"));
/// ```
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row; must match the header width.
    pub fn row(&mut self, cells: &[&str]) {
        assert_eq!(cells.len(), self.header.len(), "column count mismatch");
        self.rows
            .push(cells.iter().map(|s| s.to_string()).collect());
    }

    /// Appends one row of owned strings.
    pub fn row_owned(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "column count mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows so far.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` iff the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with space-aligned columns and a dash rule under the
    /// header.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize], out: &mut String| {
            for (i, (cell, w)) in cells.iter().zip(widths).enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:<w$}");
            }
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        fmt_row(&self.header, &widths, &mut out);
        let rule: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&"-".repeat(rule));
        out.push('\n');
        for row in &self.rows {
            fmt_row(row, &widths, &mut out);
        }
        out
    }

    /// Renders as a GitHub-flavored Markdown table.
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "| {} |", self.header.join(" | "));
        let _ = writeln!(out, "|{}", "---|".repeat(self.header.len()));
        for row in &self.rows {
            let _ = writeln!(out, "| {} |", row.join(" | "));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(&["a", "long-header"]);
        t.row(&["xxxxxx", "1"]);
        t.row_owned(vec!["y".into(), "22".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("a       long-header"));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn renders_markdown() {
        let mut t = Table::new(&["x", "y"]);
        t.row(&["1", "2"]);
        let md = t.render_markdown();
        assert_eq!(md, "| x | y |\n|---|---|\n| 1 | 2 |\n");
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn width_mismatch_panics() {
        Table::new(&["a"]).row(&["1", "2"]);
    }
}

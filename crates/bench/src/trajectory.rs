//! Heartbeat-sampled prune-counter trajectories.
//!
//! A [`TrajectoryObserver`] rides along one mining session and, at every
//! heartbeat, snapshots how many nodes each pruning strategy has killed
//! so far. The resulting curve shows *when* in the search each strategy
//! earns its keep — information the end-of-run totals in `MineStats`
//! cannot give.

use farmer_core::{CountingObserver, Heartbeat, MineObserver, MineStats, PruneReason};
use farmer_support::json::{Json, ObjBuilder};

/// One snapshot of the running counters, taken at a heartbeat.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TrajectoryPoint {
    /// Enumeration nodes visited so far.
    pub nodes: u64,
    /// Groups emitted so far.
    pub groups: u64,
    /// Strategy-2 duplicate prunes so far.
    pub pruned_duplicate: u64,
    /// Strategy-3 loose-bound prunes so far.
    pub pruned_loose: u64,
    /// Strategy-3 tight support prunes so far.
    pub pruned_tight_support: u64,
    /// Strategy-3 tight confidence prunes so far.
    pub pruned_tight_confidence: u64,
    /// χ²-bound prunes so far.
    pub pruned_chi: u64,
    /// Interestingness rejections so far.
    pub rejected_not_interesting: u64,
}

impl TrajectoryPoint {
    fn from_counts(c: &CountingObserver, hb: &Heartbeat) -> Self {
        TrajectoryPoint {
            nodes: hb.nodes_visited,
            groups: hb.groups_found as u64,
            pruned_duplicate: c.pruned_duplicate,
            pruned_loose: c.pruned_loose,
            pruned_tight_support: c.pruned_tight_support,
            pruned_tight_confidence: c.pruned_tight_confidence,
            pruned_chi: c.pruned_chi,
            rejected_not_interesting: c.rejected_not_interesting,
        }
    }

    /// Serializes into a flat JSON object.
    pub fn to_json(&self) -> Json {
        ObjBuilder::new()
            .field("nodes", self.nodes)
            .field("groups", self.groups)
            .field("duplicate", self.pruned_duplicate)
            .field("loose_bound", self.pruned_loose)
            .field("tight_support", self.pruned_tight_support)
            .field("tight_confidence", self.pruned_tight_confidence)
            .field("chi_bound", self.pruned_chi)
            .field("not_interesting", self.rejected_not_interesting)
            .build()
    }
}

/// A [`MineObserver`] that samples the prune counters on every
/// heartbeat. Set the cadence with
/// [`MineControl::with_heartbeat_every`](farmer_core::MineControl::with_heartbeat_every);
/// no heartbeats means no samples.
#[derive(Debug, Default)]
pub struct TrajectoryObserver {
    counts: CountingObserver,
    /// The sampled trajectory, in heartbeat order.
    pub samples: Vec<TrajectoryPoint>,
}

impl TrajectoryObserver {
    /// Takes one final sample from the end-of-run stats so the last
    /// partial heartbeat interval is never lost, then returns the
    /// completed trajectory.
    pub fn finish(mut self, stats: &MineStats) -> Vec<TrajectoryPoint> {
        let last = TrajectoryPoint {
            nodes: stats.nodes_visited,
            groups: self.counts.emitted,
            pruned_duplicate: self.counts.pruned_duplicate,
            pruned_loose: self.counts.pruned_loose,
            pruned_tight_support: self.counts.pruned_tight_support,
            pruned_tight_confidence: self.counts.pruned_tight_confidence,
            pruned_chi: self.counts.pruned_chi,
            rejected_not_interesting: self.counts.rejected_not_interesting,
        };
        if self.samples.last() != Some(&last) {
            self.samples.push(last);
        }
        self.samples
    }
}

impl MineObserver for TrajectoryObserver {
    fn node_entered(&mut self, depth: usize) {
        self.counts.node_entered(depth);
    }

    fn pruned(&mut self, reason: PruneReason) {
        self.counts.pruned(reason);
    }

    fn group_emitted(&mut self, sup: usize, neg_sup: usize) {
        self.counts.group_emitted(sup, neg_sup);
    }

    fn heartbeat(&mut self, hb: &Heartbeat) {
        self.counts.heartbeat(hb);
        self.samples
            .push(TrajectoryPoint::from_counts(&self.counts, hb));
    }

    fn worker_finished(&mut self, worker: usize, tally: &MineStats) {
        self.counts.worker_finished(worker, tally);
    }
}

/// Serializes a whole trajectory as a JSON array of sample objects.
pub fn trajectory_json(samples: &[TrajectoryPoint]) -> Json {
    Json::Arr(samples.iter().map(TrajectoryPoint::to_json).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use farmer_core::{Farmer, MineControl, MiningParams};
    use farmer_dataset::discretize::Discretizer;
    use farmer_dataset::synth::SynthConfig;

    fn workload() -> farmer_dataset::Dataset {
        let m = SynthConfig {
            n_rows: 24,
            n_genes: 120,
            n_class1: 12,
            n_signature: 40,
            clusters_per_class: 2,
            cluster_spread: 1.8,
            cluster_noise: 0.35,
            ..Default::default()
        }
        .generate();
        Discretizer::EqualDepth { buckets: 6 }.discretize(&m)
    }

    #[test]
    fn trajectory_is_monotone_and_ends_at_stats() {
        let d = workload();
        let params = MiningParams::new(1).min_sup(2).min_conf(0.6);
        let ctl = MineControl::new().with_heartbeat_every(32);
        let mut obs = TrajectoryObserver::default();
        let r = Farmer::new(params).mine_session(&d, &ctl, &mut obs);
        let samples = obs.finish(&r.stats);
        assert!(samples.len() > 2, "{}", samples.len());
        for w in samples.windows(2) {
            assert!(w[0].nodes < w[1].nodes);
            assert!(w[0].pruned_tight_support <= w[1].pruned_tight_support);
            assert!(w[0].groups <= w[1].groups);
        }
        let last = samples.last().unwrap();
        assert_eq!(last.nodes, r.stats.nodes_visited);
        assert_eq!(last.pruned_tight_support, r.stats.pruned_tight_support);
        assert_eq!(last.groups as usize, r.len());
    }

    #[test]
    fn trajectory_serializes() {
        let d = workload();
        let ctl = MineControl::new().with_heartbeat_every(64);
        let mut obs = TrajectoryObserver::default();
        let r = Farmer::new(MiningParams::new(1).min_sup(2)).mine_session(&d, &ctl, &mut obs);
        let samples = obs.finish(&r.stats);
        let s = trajectory_json(&samples).pretty();
        let parsed = farmer_support::json::Json::parse(&s).unwrap();
        assert_eq!(
            parsed[samples.len() - 1]["nodes"].as_u64(),
            Some(r.stats.nodes_visited)
        );
    }
}

//! Heartbeat-sampled prune-counter trajectories.
//!
//! A [`TrajectoryObserver`] rides along one mining session and, at every
//! heartbeat, snapshots how many nodes each pruning strategy has killed
//! so far. The resulting curve shows *when* in the search each strategy
//! earns its keep — information the end-of-run totals in `MineStats`
//! cannot give.

use farmer_core::{CountingObserver, Heartbeat, MineObserver, MineStats, PruneReason};
use farmer_support::json::{Json, ObjBuilder};

/// One snapshot of the running counters, taken at a heartbeat.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TrajectoryPoint {
    /// Enumeration nodes visited so far.
    pub nodes: u64,
    /// Groups emitted so far.
    pub groups: u64,
    /// Wall time since the run started, in milliseconds.
    pub elapsed_ms: u64,
    /// Running tally per [`PruneReason`] variant, indexed by
    /// [`PruneReason::index`] — sized by the exhaustive list, so a new
    /// variant is sampled (and serialized) without touching this file.
    pub pruned: [u64; PruneReason::ALL.len()],
}

impl TrajectoryPoint {
    fn from_counts(c: &CountingObserver, hb: &Heartbeat) -> Self {
        let mut pruned = [0u64; PruneReason::ALL.len()];
        for r in PruneReason::ALL {
            pruned[r.index()] = c.pruned_count(r);
        }
        TrajectoryPoint {
            nodes: hb.nodes_visited,
            groups: hb.groups_found as u64,
            elapsed_ms: hb.elapsed.as_millis() as u64,
            pruned,
        }
    }

    /// The running tally for one prune reason.
    pub fn pruned_count(&self, reason: PruneReason) -> u64 {
        self.pruned[reason.index()]
    }

    /// Serializes into a flat JSON object, one key per prune reason
    /// (the same keys the CLI's `--stats-json` `pruned` block uses).
    pub fn to_json(&self) -> Json {
        let mut b = ObjBuilder::new()
            .field("nodes", self.nodes)
            .field("groups", self.groups)
            .field("elapsed_ms", self.elapsed_ms);
        for r in PruneReason::ALL {
            b = b.field(r.stats_key(), self.pruned_count(r));
        }
        b.build()
    }
}

/// A [`MineObserver`] that samples the prune counters on every
/// heartbeat. Set the cadence with
/// [`MineControl::with_heartbeat_every`](farmer_core::MineControl::with_heartbeat_every);
/// no heartbeats means no samples.
#[derive(Debug, Default)]
pub struct TrajectoryObserver {
    counts: CountingObserver,
    /// The sampled trajectory, in heartbeat order.
    pub samples: Vec<TrajectoryPoint>,
}

impl TrajectoryObserver {
    /// Takes one final sample from the end-of-run stats so the last
    /// partial heartbeat interval is never lost, then returns the
    /// completed trajectory.
    pub fn finish(mut self, stats: &MineStats) -> Vec<TrajectoryPoint> {
        let mut pruned = [0u64; PruneReason::ALL.len()];
        for r in PruneReason::ALL {
            pruned[r.index()] = stats.pruned_count(r);
        }
        let last = TrajectoryPoint {
            nodes: stats.nodes_visited,
            groups: self.counts.emitted,
            // stats carry no clock; reuse the last beat's timestamp so
            // the dedup below still recognizes an already-final sample
            elapsed_ms: self.samples.last().map_or(0, |p| p.elapsed_ms),
            pruned,
        };
        if self.samples.last() != Some(&last) {
            self.samples.push(last);
        }
        self.samples
    }
}

impl MineObserver for TrajectoryObserver {
    fn node_entered(&mut self, depth: usize) {
        self.counts.node_entered(depth);
    }

    fn pruned(&mut self, reason: PruneReason) {
        self.counts.pruned(reason);
    }

    fn group_emitted(&mut self, sup: usize, neg_sup: usize) {
        self.counts.group_emitted(sup, neg_sup);
    }

    fn heartbeat(&mut self, hb: &Heartbeat) {
        self.counts.heartbeat(hb);
        self.samples
            .push(TrajectoryPoint::from_counts(&self.counts, hb));
    }

    fn worker_finished(&mut self, worker: usize, tally: &MineStats) {
        self.counts.worker_finished(worker, tally);
    }
}

/// Serializes a whole trajectory as a JSON array of sample objects.
pub fn trajectory_json(samples: &[TrajectoryPoint]) -> Json {
    Json::Arr(samples.iter().map(TrajectoryPoint::to_json).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use farmer_core::{Farmer, MineControl, MiningParams};
    use farmer_dataset::discretize::Discretizer;
    use farmer_dataset::synth::SynthConfig;

    fn workload() -> farmer_dataset::Dataset {
        let m = SynthConfig {
            n_rows: 24,
            n_genes: 120,
            n_class1: 12,
            n_signature: 40,
            clusters_per_class: 2,
            cluster_spread: 1.8,
            cluster_noise: 0.35,
            ..Default::default()
        }
        .generate();
        Discretizer::EqualDepth { buckets: 6 }.discretize(&m)
    }

    #[test]
    fn trajectory_is_monotone_and_ends_at_stats() {
        let d = workload();
        let params = MiningParams::new(1).min_sup(2).min_conf(0.6);
        let ctl = MineControl::new().with_heartbeat_every(32);
        let mut obs = TrajectoryObserver::default();
        let r = Farmer::new(params).mine_session(&d, &ctl, &mut obs);
        let samples = obs.finish(&r.stats);
        assert!(samples.len() > 2, "{}", samples.len());
        for w in samples.windows(2) {
            assert!(w[0].nodes < w[1].nodes);
            assert!(w[0].elapsed_ms <= w[1].elapsed_ms);
            for r in PruneReason::ALL {
                assert!(w[0].pruned_count(r) <= w[1].pruned_count(r), "{r:?}");
            }
            assert!(w[0].groups <= w[1].groups);
        }
        let last = samples.last().unwrap();
        assert_eq!(last.nodes, r.stats.nodes_visited);
        for reason in PruneReason::ALL {
            assert_eq!(
                last.pruned_count(reason),
                r.stats.pruned_count(reason),
                "{reason:?}"
            );
        }
        assert_eq!(last.groups as usize, r.len());
    }

    #[test]
    fn trajectory_serializes() {
        let d = workload();
        let ctl = MineControl::new().with_heartbeat_every(64);
        let mut obs = TrajectoryObserver::default();
        let r = Farmer::new(MiningParams::new(1).min_sup(2)).mine_session(&d, &ctl, &mut obs);
        let samples = obs.finish(&r.stats);
        let s = trajectory_json(&samples).pretty();
        let parsed = farmer_support::json::Json::parse(&s).unwrap();
        assert_eq!(
            parsed[samples.len() - 1]["nodes"].as_u64(),
            Some(r.stats.nodes_visited)
        );
        // one serialized key per prune reason, same names as --stats-json
        for r in PruneReason::ALL {
            assert!(
                parsed[0][r.stats_key()].as_u64().is_some(),
                "{} missing",
                r.stats_key()
            );
        }
    }

    /// The trajectory observer and a [`RingTracer`] ride the same
    /// session: heartbeat sampling keeps working under instrumented
    /// mining, and both views agree on the node count.
    #[test]
    fn trajectory_composes_with_tracing() {
        use farmer_core::trace;

        let d = workload();
        let ctl = MineControl::new().with_heartbeat_every(64);
        let tracer = trace::mining_tracer(1);
        let mut obs = TrajectoryObserver::default();
        let r = Farmer::new(MiningParams::new(1).min_sup(2))
            .mine_session_traced(&d, &ctl, &mut obs, &tracer);
        let samples = obs.finish(&r.stats);
        let report = tracer.drain();
        assert!(samples.len() > 1);
        assert_eq!(samples.last().unwrap().nodes, r.stats.nodes_visited);
        assert_eq!(
            report.hists[trace::HIST_NODE_VISIT.0 as usize].count(),
            r.stats.nodes_visited,
            "sequential traced run times every visited node"
        );
    }
}

//! Deterministic workload construction for the evaluation.
//!
//! The paper's five clinical datasets are replaced by synthetic analogs
//! (see `farmer-dataset`'s `synth` module and DESIGN.md §3); this module
//! fixes the exact recipes used by every experiment so each figure is
//! regenerated from identical inputs:
//!
//! * **efficiency experiments** (Figures 10/11, scalability): equal-depth
//!   discretization with 10 buckets, target class 1 — the paper's §4.1
//!   setup;
//! * **classification experiments** (Table 2): entropy/MDL
//!   discretization learned on the training half only — the §4.2 setup.
//!
//! Column counts are scaled by `col_scale` (default [`DEFAULT_COL_SCALE`])
//! so the deliberately-slow column-enumeration baselines finish; scale
//! 1.0 reproduces the paper's full dimensions.

use farmer_dataset::discretize::Discretizer;
use farmer_dataset::synth::PaperDataset;
use farmer_dataset::{Dataset, DatasetBuilder, ExpressionMatrix};
use farmer_support::rng::{Rng, SeedableRng, SliceRandom, StdRng};
use farmer_support::thread::Mutex;
use std::collections::HashMap;

/// Default fraction of the paper's column count used by the harness.
///
/// 0.05 keeps every baseline sweep under laptop-minutes while preserving
/// hundreds-to-thousands of columns (still far above the row count, the
/// regime the paper targets).
pub const DEFAULT_COL_SCALE: f64 = 0.05;

/// The equal-depth bucket count of §4.1.
pub const EFFICIENCY_BUCKETS: usize = 10;

/// Builds the raw expression matrix analog of one paper dataset.
pub fn matrix_for(p: PaperDataset, col_scale: f64) -> ExpressionMatrix {
    p.synth_config(col_scale).generate()
}

/// Builds the §4.1 efficiency workload: equal-depth, 10 buckets.
pub fn efficiency_dataset(p: PaperDataset, col_scale: f64) -> Dataset {
    let m = matrix_for(p, col_scale);
    Discretizer::EqualDepth {
        buckets: EFFICIENCY_BUCKETS,
    }
    .discretize(&m)
}

/// Mining parameters used with [`skewed_synth`] by the PR-3 trajectory
/// benchmark and the allocation-guard test: `(target_class, min_sup)`.
pub const SKEWED_SYNTH_PARAMS: (u32, usize) = (1, 2);

/// A deliberately *skewed* synthetic workload: a handful of "hub" rows
/// share most of a dense item pool, so their depth-1 subtrees are orders
/// of magnitude heavier than the rest. The hubs sit at row indices
/// `0, 4, 8, …` — under a static `i % threads` split with 4 workers they
/// all land on worker 0, which is exactly the imbalance the work-stealing
/// scheduler exists to fix. Fully deterministic (fixed seed).
pub fn skewed_synth() -> Dataset {
    const N_POS: usize = 38;
    const N_NEG: usize = 38;
    const HUB_POOL: u32 = 50;
    const SPARSE_POOL: u32 = 56;
    let mut rng = StdRng::seed_from_u64(0xFA12_3E57);
    let mut b = DatasetBuilder::new(2);
    let hub_items: Vec<u32> = (0..HUB_POOL).collect();
    for r in 0..N_POS {
        if r % 4 == 0 {
            // hub: a large random subset of the shared dense pool
            let mut items = hub_items.clone();
            items.shuffle(&mut rng);
            items.truncate(44);
            items.extend((0..12).map(|_| HUB_POOL + rng.gen_range(0..SPARSE_POOL)));
            b.add_row(items, 1);
        } else {
            let items: Vec<u32> = (0..18)
                .map(|_| HUB_POOL + rng.gen_range(0..SPARSE_POOL))
                .collect();
            b.add_row(items, 1);
        }
    }
    for _ in 0..N_NEG {
        // negatives touch a sliver of the hub pool so hub subtrees keep
        // non-trivial confidence structure, plus sparse filler
        let mut items: Vec<u32> = (0..6).map(|_| rng.gen_range(0..HUB_POOL)).collect();
        items.extend((0..14).map(|_| HUB_POOL + rng.gen_range(0..SPARSE_POOL)));
        b.add_row(items, 0);
    }
    b.build()
}

/// Per-dataset minimum-support grids for Figure 10, chosen like the
/// paper chose theirs: descending until FARMER needs on the order of
/// seconds (the baselines hit their budgets much earlier).
pub fn fig10_minsup_grid(p: PaperDataset) -> Vec<usize> {
    match p {
        // grids calibrated per analog so the whole sweep stays in
        // laptop-minutes while the column-enumeration blowup is visible
        PaperDataset::BreastCancer => vec![9, 8, 7, 6, 5],
        PaperDataset::LungCancer => vec![9, 8, 7, 6, 5],
        PaperDataset::ColonTumor => vec![7, 6, 5, 4, 3],
        PaperDataset::ProstateCancer => vec![10, 9, 8, 7, 6],
        PaperDataset::Leukemia => vec![8, 7, 6, 5, 4],
    }
}

/// The Figure 11 confidence grid (the paper sweeps 0–99%).
pub fn fig11_minconf_grid() -> Vec<f64> {
    vec![0.0, 0.5, 0.7, 0.8, 0.85, 0.9, 0.99]
}

/// Fixed `minsup` for Figure 11 ("we set minsup = 1" in the paper;
/// the analogs use a small value per dataset to keep the unpruned
/// baseline points finite).
pub fn fig11_minsup(p: PaperDataset) -> usize {
    match p {
        PaperDataset::BreastCancer => 5,
        PaperDataset::LungCancer => 6,
        PaperDataset::ColonTumor => 3,
        PaperDataset::ProstateCancer => 7,
        PaperDataset::Leukemia => 4,
    }
}

/// A process-wide cache of efficiency datasets so sweeps and benches do
/// not re-synthesize (synthesis + discretization dominate setup).
pub struct WorkloadCache {
    col_scale: f64,
    cache: Mutex<HashMap<PaperDataset, Dataset>>,
}

impl WorkloadCache {
    /// Creates a cache at the given column scale.
    pub fn new(col_scale: f64) -> Self {
        WorkloadCache {
            col_scale,
            cache: Mutex::new(HashMap::new()),
        }
    }

    /// The configured column scale.
    pub fn col_scale(&self) -> f64 {
        self.col_scale
    }

    /// The efficiency dataset of `p`, built on first use.
    pub fn efficiency(&self, p: PaperDataset) -> Dataset {
        if let Some(d) = self.cache.lock().get(&p) {
            return d.clone();
        }
        let d = efficiency_dataset(p, self.col_scale);
        self.cache.lock().insert(p, d.clone());
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn efficiency_dataset_shape() {
        let d = efficiency_dataset(PaperDataset::ColonTumor, 0.02);
        let (rows, _, _) = PaperDataset::ColonTumor.table1_shape();
        assert_eq!(d.n_rows(), rows);
        // 10 buckets per surviving gene
        assert!(d.n_items() >= 64);
        assert_eq!(d.n_classes(), 2);
    }

    #[test]
    fn grids_are_sane() {
        for p in PaperDataset::all() {
            let grid = fig10_minsup_grid(p);
            assert!(grid.windows(2).all(|w| w[0] > w[1]), "descending grid");
            assert!(fig11_minsup(p) >= 1);
        }
        let conf = fig11_minconf_grid();
        assert!(conf.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn cache_returns_identical_datasets() {
        let cache = WorkloadCache::new(0.01);
        let a = cache.efficiency(PaperDataset::Leukemia);
        let b = cache.efficiency(PaperDataset::Leukemia);
        assert_eq!(a.n_items(), b.n_items());
        assert_eq!(a.labels(), b.labels());
        assert_eq!(cache.col_scale(), 0.01);
    }
}

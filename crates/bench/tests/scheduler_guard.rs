//! Live perf guard for the PR-6 deque scheduler + shared memo table
//! (ignored by default — throughput assertions only mean something in
//! release on a quiet machine):
//!
//! ```text
//! cargo test --release -p farmer-bench --test scheduler_guard -- --ignored
//! ```
//!
//! The committed `BENCH_PR6.json` pins the recorded numbers (checked by
//! `pr6_scheduler --check` in `scripts/verify.sh`); this test re-derives
//! the same bounds from a fresh measurement on the current host.

use farmer_bench::workloads::{skewed_synth, SKEWED_SYNTH_PARAMS};
use farmer_core::{Farmer, MiningParams};
use std::time::Instant;

fn nodes_per_sec(threads: usize, memo_capacity: usize) -> (f64, f64) {
    let data = skewed_synth();
    let (class, min_sup) = SKEWED_SYNTH_PARAMS;
    let params = MiningParams::new(class)
        .min_sup(min_sup)
        .lower_bounds(false);
    let miner = Farmer::new(params)
        .with_parallelism(threads)
        .with_memo_capacity(memo_capacity);
    let mut best = 0.0f64;
    let mut hit_rate = 0.0;
    for _ in 0..3 {
        let t0 = Instant::now();
        let r = miner.mine(&data);
        let secs = t0.elapsed().as_secs_f64();
        best = best.max(r.stats.nodes_visited as f64 / secs);
        if r.sched.memo.probes > 0 {
            hit_rate = r.sched.memo.hits as f64 / r.sched.memo.probes as f64;
        }
    }
    (best, hit_rate)
}

#[test]
#[ignore = "perf guard; run with --release -- --ignored on a quiet host"]
fn four_thread_scaling_and_memo_hit_rate() {
    let (t1, _) = nodes_per_sec(1, 0);
    let (t4, hit_rate) = nodes_per_sec(4, 65_536);
    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    // same bounds as pr6_scheduler --check: real scaling demanded only
    // when there are real cores; otherwise it's a livelock guard
    let bound = if cores >= 4 { 1.5 } else { 0.25 };
    let scaling = t4 / t1;
    assert!(
        scaling >= bound,
        "t=4 scaling {scaling:.2}x below {bound:.2}x on {cores} cores \
         ({t1:.0} -> {t4:.0} nodes/s)"
    );
    assert!(
        hit_rate > 0.0,
        "memo hit rate is zero — shared table disconnected from the back scan"
    );
}

//! Guards for the PR-7 serving report.
//!
//! `committed_report_holds_the_compaction_bound` runs in tier-1: it
//! re-derives the v2-vs-v1 size bound from the committed
//! `BENCH_PR7.json` (pure file reading, deterministic on any host).
//! The ignored test re-measures the ratio live — the artifact encoding
//! is deterministic, so it must clear the same bound wherever it runs:
//!
//! ```text
//! cargo test --release -p farmer-bench --test serving_guard -- --ignored
//! ```

use farmer_bench::workloads::{efficiency_dataset, DEFAULT_COL_SCALE};
use farmer_core::{canonical_sort, Farmer, MiningParams};
use farmer_dataset::synth::PaperDataset;
use farmer_store::{save_artifact_versioned, ArtifactMeta};
use farmer_support::json::Json;

/// Same bound `pr7_serving --check` enforces.
const SIZE_RATIO_BOUND: f64 = 5.0;

#[test]
fn committed_report_holds_the_compaction_bound() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_PR7.json");
    let text = std::fs::read_to_string(path).expect("committed BENCH_PR7.json must exist");
    let j = Json::parse(&text).expect("BENCH_PR7.json must parse");
    assert_eq!(j["schema"].as_str(), Some("farmer-serving-guard-v1"));
    assert_eq!(j["pr"].as_u64(), Some(7));
    let v1 = j["v1_bytes"].as_u64().expect("v1_bytes") as f64;
    let v2 = j["v2_bytes"].as_u64().expect("v2_bytes") as f64;
    assert!(v2 > 0.0);
    let ratio = v1 / v2;
    assert!(
        ratio >= SIZE_RATIO_BOUND,
        "committed report has v2 only {ratio:.2}x smaller than v1"
    );
    assert!(j["reqs_per_sec"].as_f64().expect("reqs_per_sec") > 0.0);
    assert!(j["p99_ms"].as_f64().expect("p99_ms") > 0.0);
}

#[test]
#[ignore = "mines the full efficiency workload; run with --release -- --ignored"]
fn live_v2_artifact_is_5x_smaller_than_v1() {
    let d = efficiency_dataset(PaperDataset::Leukemia, DEFAULT_COL_SCALE);
    let mut groups = Vec::new();
    for class in 0..d.n_classes() as u32 {
        groups.extend(
            Farmer::new(MiningParams::new(class).min_sup(4))
                .mine(&d)
                .groups,
        );
    }
    canonical_sort(&mut groups);
    let meta = ArtifactMeta::from_dataset(&d);
    let size_of = |version: u32| {
        let path = std::env::temp_dir().join(format!("serving_guard_v{version}.fgi"));
        save_artifact_versioned(&path, &meta, &groups, version).unwrap();
        let bytes = std::fs::metadata(&path).unwrap().len();
        let _ = std::fs::remove_file(&path);
        bytes as f64
    };
    let (v1, v2) = (size_of(1), size_of(2));
    let ratio = v1 / v2;
    assert!(
        ratio >= SIZE_RATIO_BOUND,
        "v2 only {ratio:.2}x smaller than v1 ({v1} / {v2} B)"
    );
}

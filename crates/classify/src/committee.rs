//! A top-k rule-group committee classifier, after RCBT (Cong, Tan,
//! Tung, Xu; SIGMOD 2005) — the FARMER authors' follow-up that replaced
//! the single CBA-style rule list with committees built from the top-k
//! covering rule groups of every training sample.
//!
//! Simplified construction kept here:
//!
//! * for each class, mine the top-k covering groups of every training
//!   row of that class ([`farmer_core::topk::mine_top_k`]) and pool them
//!   (deduplicated);
//! * a test sample collects every pooled group that *fires* on it
//!   (fractional fingerprint containment, as in the IRG classifier);
//! * each class's score is the sum of its firing groups' normalized
//!   discriminative weights `conf − prior(class)`, and the best score
//!   wins (falling back to the majority class when nothing fires).
//!
//! The committee degrades more gracefully than a first-match rule list:
//! a sample losing its best group to measurement noise is still scored
//! by the remaining committee members.

use farmer_core::topk::{mine_top_k_session, TopKGroup};
use farmer_core::{MineControl, NoOpObserver};
use farmer_dataset::{ClassLabel, Dataset};
use rowset::IdList;

/// Fingerprint containment threshold used when matching test samples.
pub const COMMITTEE_THETA: f64 = 0.8;

/// Node budget per class for the top-k mining step (same rationale as
/// the rule-list classifiers' budget: bounded training cost with
/// graceful degradation).
const TRAIN_NODE_BUDGET: u64 = 2_000_000;

/// One committee member: a rule group voting for a class.
#[derive(Clone, Debug)]
struct Member {
    fingerprint: IdList,
    class: ClassLabel,
    /// `conf − prior`: how much better than chance this group predicts
    /// its class.
    weight: f64,
}

/// The trained committee.
///
/// ```
/// use farmer_classify::TopKCommittee;
/// let data = farmer_dataset::paper_example();
/// let committee = TopKCommittee::train(&data, 2, 1);
/// let prediction = committee.predict(data.row(0));
/// assert!(prediction < 2);
/// ```
#[derive(Clone, Debug)]
pub struct TopKCommittee {
    members: Vec<Member>,
    majority: ClassLabel,
    theta: f64,
}

impl TopKCommittee {
    /// Trains a committee from `train`: the top-`k` groups covering each
    /// row, per class, with rule support ≥ `min_sup` (absolute).
    pub fn train(train: &Dataset, k: usize, min_sup: usize) -> Self {
        let n = train.n_rows() as f64;
        let mut members: Vec<Member> = Vec::new();
        let mut seen: std::collections::HashSet<(ClassLabel, IdList)> =
            std::collections::HashSet::new();
        for class in 0..train.n_classes() as ClassLabel {
            let class_n = train.class_count(class);
            if class_n == 0 {
                continue;
            }
            let prior = class_n as f64 / n;
            let ctl = MineControl::new().with_node_budget(Some(TRAIN_NODE_BUDGET));
            let result = mine_top_k_session(train, class, k, min_sup, &ctl, &mut NoOpObserver);
            for (row, groups) in result.per_row.iter().enumerate() {
                if train.label(row as u32) != class {
                    continue; // committees are built from same-class covers
                }
                for g in groups {
                    if seen.insert((class, g.upper.clone())) {
                        members.push(Member {
                            fingerprint: g.upper.clone(),
                            class,
                            weight: (g.confidence() - prior).max(0.0),
                        });
                    }
                }
            }
        }
        let majority = majority_class(train);
        TopKCommittee {
            members,
            majority,
            theta: COMMITTEE_THETA,
        }
    }

    /// Overrides the fingerprint threshold (default
    /// [`COMMITTEE_THETA`]).
    pub fn with_theta(mut self, theta: f64) -> Self {
        assert!(theta > 0.0 && theta <= 1.0, "theta must be in (0, 1]");
        self.theta = theta;
        self
    }

    /// Number of committee members.
    pub fn n_members(&self) -> usize {
        self.members.len()
    }

    /// Per-class scores for a sample (empty-score classes included).
    pub fn scores(&self, items: &IdList) -> Vec<f64> {
        let n_classes = self
            .members
            .iter()
            .map(|m| m.class as usize + 1)
            .max()
            .unwrap_or(1)
            .max(self.majority as usize + 1);
        let mut scores = vec![0.0; n_classes];
        for m in &self.members {
            if m.fingerprint.is_empty() {
                continue;
            }
            let hit = m.fingerprint.intersection_len(items) as f64
                >= self.theta * m.fingerprint.len() as f64;
            if hit {
                scores[m.class as usize] += m.weight;
            }
        }
        scores
    }

    /// Predicted class: highest committee score, majority class when no
    /// member fires (ties to the smaller label).
    pub fn predict(&self, items: &IdList) -> ClassLabel {
        let scores = self.scores(items);
        let best = scores.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        if best <= 0.0 {
            return self.majority;
        }
        scores
            .iter()
            .position(|&s| s == best)
            .map(|c| c as ClassLabel)
            .unwrap_or(self.majority)
    }

    /// Predicts every row of `data`.
    pub fn predict_dataset(&self, data: &Dataset) -> Vec<ClassLabel> {
        (0..data.n_rows() as u32)
            .map(|r| self.predict(data.row(r)))
            .collect()
    }
}

fn majority_class(d: &Dataset) -> ClassLabel {
    let mut counts = vec![0usize; d.n_classes()];
    for &l in d.labels() {
        counts[l as usize] += 1;
    }
    counts
        .iter()
        .enumerate()
        .max_by_key(|&(i, &c)| (c, std::cmp::Reverse(i)))
        .map(|(i, _)| i as ClassLabel)
        .unwrap_or(0)
}

/// Re-exported for tests and tooling: the raw per-row top-k groups.
pub type PerRowGroups = Vec<Vec<TopKGroup>>;

#[cfg(test)]
mod tests {
    use super::*;
    use farmer_dataset::DatasetBuilder;

    fn il(v: &[u32]) -> IdList {
        IdList::from_iter(v.iter().copied())
    }

    fn separable() -> Dataset {
        let mut b = DatasetBuilder::new(2);
        b.add_row([0, 2], 0);
        b.add_row([0, 3], 0);
        b.add_row([0, 2, 3], 0);
        b.add_row([1, 2], 1);
        b.add_row([1, 3], 1);
        b.add_row([1, 2, 3], 1);
        b.build()
    }

    #[test]
    fn learns_separable_data() {
        let d = separable();
        let c = TopKCommittee::train(&d, 2, 2);
        assert!(c.n_members() > 0);
        let preds = c.predict_dataset(&d);
        assert_eq!(preds, d.labels());
    }

    #[test]
    fn unseen_samples_use_markers() {
        let d = separable();
        let c = TopKCommittee::train(&d, 2, 2).with_theta(1.0);
        assert_eq!(c.predict(&il(&[0])), 0);
        assert_eq!(c.predict(&il(&[1, 9])), 1);
    }

    #[test]
    fn no_fire_falls_to_majority() {
        let mut b = DatasetBuilder::new(2);
        b.add_row([0], 0);
        b.add_row([1], 1);
        b.add_row([2], 1);
        let d = b.build();
        let c = TopKCommittee::train(&d, 1, 1);
        assert_eq!(c.predict(&il(&[9])), 1, "majority is class 1");
    }

    #[test]
    fn scores_are_per_class() {
        let d = separable();
        let c = TopKCommittee::train(&d, 2, 2);
        let s = c.scores(&il(&[0, 2]));
        assert_eq!(s.len(), 2);
        assert!(s[0] > s[1], "{s:?}");
    }

    #[test]
    fn committee_robust_to_one_lost_item() {
        // fingerprints of length >= 2 with theta 0.5 tolerate one miss
        let d = separable();
        let c = TopKCommittee::train(&d, 3, 2).with_theta(0.5);
        // {0,2} sample missing item 2 still carries marker 0
        assert_eq!(c.predict(&il(&[0])), 0);
    }

    #[test]
    #[should_panic(expected = "theta must be in (0, 1]")]
    fn bad_theta_panics() {
        let d = separable();
        let _ = TopKCommittee::train(&d, 1, 1).with_theta(1.5);
    }
}

//! Stratified k-fold cross-validation over expression matrices.

use crate::eval::accuracy;
use crate::pipeline::DiscretizedSplit;
use farmer_dataset::discretize::Discretizer;
use farmer_dataset::{ClassLabel, ExpressionMatrix};
use farmer_support::rng::{SeedableRng, SliceRandom, StdRng};

/// Per-fold and aggregate accuracy of one cross-validated evaluation.
#[derive(Clone, Debug, PartialEq)]
pub struct CvResult {
    /// Accuracy of each fold, in fold order.
    pub fold_accuracies: Vec<f64>,
}

impl CvResult {
    /// Mean accuracy across folds.
    pub fn mean(&self) -> f64 {
        if self.fold_accuracies.is_empty() {
            return 0.0;
        }
        self.fold_accuracies.iter().sum::<f64>() / self.fold_accuracies.len() as f64
    }

    /// Population standard deviation across folds.
    pub fn std_dev(&self) -> f64 {
        let m = self.mean();
        if self.fold_accuracies.is_empty() {
            return 0.0;
        }
        let var = self
            .fold_accuracies
            .iter()
            .map(|a| (a - m) * (a - m))
            .sum::<f64>()
            / self.fold_accuracies.len() as f64;
        var.sqrt()
    }
}

/// Class-stratified fold assignment: returns `fold_of[row]` in
/// `0..folds`, deterministic in `seed`, with each class's rows spread as
/// evenly as possible across folds.
pub fn stratified_folds(labels: &[ClassLabel], folds: usize, seed: u64) -> Vec<usize> {
    assert!(folds >= 2, "need at least two folds");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut fold_of = vec![0usize; labels.len()];
    let classes: std::collections::BTreeSet<ClassLabel> = labels.iter().copied().collect();
    for c in classes {
        let mut rows: Vec<usize> = (0..labels.len()).filter(|&r| labels[r] == c).collect();
        rows.shuffle(&mut rng);
        for (i, r) in rows.into_iter().enumerate() {
            fold_of[r] = i % folds;
        }
    }
    fold_of
}

/// Runs stratified k-fold cross-validation of a discretized-data
/// classifier.
///
/// For every fold: the remaining folds form the training cohort, the
/// discretizer is fitted on them alone ([`DiscretizedSplit`]), `train`
/// builds a model from the training [`farmer_dataset::Dataset`], and the
/// model's predictions on the held-out fold are scored.
///
/// ```
/// use farmer_classify::cv::cross_validate;
/// use farmer_classify::IrgClassifier;
/// use farmer_dataset::discretize::Discretizer;
/// use farmer_dataset::synth::SynthConfig;
/// let matrix = SynthConfig {
///     n_rows: 24, n_genes: 40, n_class1: 12, n_signature: 10, shift: 3.0,
///     ..Default::default()
/// }
/// .generate();
/// let result = cross_validate(
///     &matrix,
///     &Discretizer::EntropyMdl,
///     3,
///     1,
///     |train| IrgClassifier::train(train, 0.7, 0.8),
///     |model, test| model.predict_dataset(test),
/// );
/// assert_eq!(result.fold_accuracies.len(), 3);
/// assert!(result.mean() >= 0.0 && result.mean() <= 1.0);
/// ```
pub fn cross_validate<M>(
    matrix: &ExpressionMatrix,
    discretizer: &Discretizer,
    folds: usize,
    seed: u64,
    train: impl Fn(&farmer_dataset::Dataset) -> M,
    predict: impl Fn(&M, &farmer_dataset::Dataset) -> Vec<ClassLabel>,
) -> CvResult {
    let fold_of = stratified_folds(matrix.labels(), folds, seed);
    let mut fold_accuracies = Vec::with_capacity(folds);
    for fold in 0..folds {
        let train_rows: Vec<usize> = (0..matrix.n_rows())
            .filter(|&r| fold_of[r] != fold)
            .collect();
        let test_rows: Vec<usize> = (0..matrix.n_rows())
            .filter(|&r| fold_of[r] == fold)
            .collect();
        if test_rows.is_empty() || train_rows.is_empty() {
            continue;
        }
        let train_m = matrix.subset(&train_rows);
        let test_m = matrix.subset(&test_rows);
        let split = DiscretizedSplit::fit(&train_m, &test_m, discretizer);
        let model = train(&split.train);
        let preds = predict(&model, &split.test);
        fold_accuracies.push(accuracy(split.test.labels(), &preds));
    }
    CvResult { fold_accuracies }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IrgClassifier;
    use farmer_dataset::synth::SynthConfig;

    #[test]
    fn folds_are_stratified_and_deterministic() {
        let labels: Vec<ClassLabel> = (0..20).map(|i| u32::from(i < 12)).collect();
        let f1 = stratified_folds(&labels, 4, 7);
        let f2 = stratified_folds(&labels, 4, 7);
        assert_eq!(f1, f2);
        assert_ne!(f1, stratified_folds(&labels, 4, 8));
        // every fold gets 3 of the 12 class-1 rows and 2 of the 8 class-0
        for fold in 0..4 {
            let c1 = (0..20).filter(|&r| f1[r] == fold && labels[r] == 1).count();
            let c0 = (0..20).filter(|&r| f1[r] == fold && labels[r] == 0).count();
            assert_eq!(c1, 3, "fold {fold}");
            assert_eq!(c0, 2, "fold {fold}");
        }
    }

    #[test]
    fn cv_on_separable_data_scores_high() {
        let m = SynthConfig {
            n_rows: 40,
            n_genes: 60,
            n_class1: 20,
            n_signature: 20,
            shift: 2.5,
            clusters_per_class: 2,
            cluster_spread: 1.5,
            cluster_noise: 0.4,
            ..Default::default()
        }
        .generate();
        let result = cross_validate(
            &m,
            &Discretizer::EntropyMdl,
            4,
            1,
            |train| IrgClassifier::train(train, 0.7, 0.8),
            |model, test| model.predict_dataset(test),
        );
        assert_eq!(result.fold_accuracies.len(), 4);
        assert!(result.mean() > 0.8, "mean {}", result.mean());
        assert!(result.std_dev() < 0.5);
    }

    #[test]
    fn cv_result_stats() {
        let r = CvResult {
            fold_accuracies: vec![0.5, 1.0],
        };
        assert!((r.mean() - 0.75).abs() < 1e-12);
        assert!((r.std_dev() - 0.25).abs() < 1e-12);
        assert_eq!(
            CvResult {
                fold_accuracies: vec![]
            }
            .mean(),
            0.0
        );
    }

    #[test]
    #[should_panic(expected = "at least two folds")]
    fn one_fold_panics() {
        stratified_folds(&[0, 1], 1, 0);
    }
}

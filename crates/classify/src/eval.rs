//! Accuracy and confusion-matrix utilities.

use farmer_dataset::ClassLabel;

/// A per-class confusion matrix for a finished evaluation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Confusion {
    /// `counts[actual][predicted]`.
    pub counts: Vec<Vec<usize>>,
}

impl Confusion {
    /// Builds from parallel actual/predicted label slices.
    pub fn new(actual: &[ClassLabel], predicted: &[ClassLabel], n_classes: usize) -> Self {
        assert_eq!(actual.len(), predicted.len(), "label length mismatch");
        let mut counts = vec![vec![0usize; n_classes]; n_classes];
        for (&a, &p) in actual.iter().zip(predicted) {
            counts[a as usize][p as usize] += 1;
        }
        Confusion { counts }
    }

    /// Total predictions.
    pub fn total(&self) -> usize {
        self.counts.iter().flatten().sum()
    }

    /// Correct predictions (trace).
    pub fn correct(&self) -> usize {
        self.counts.iter().enumerate().map(|(i, row)| row[i]).sum()
    }

    /// Fraction of correct predictions; 0 on an empty evaluation.
    pub fn accuracy(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            self.correct() as f64 / t as f64
        }
    }

    /// Recall (sensitivity) of class `c`; 0 when the class is absent.
    pub fn recall(&self, c: ClassLabel) -> f64 {
        let row = &self.counts[c as usize];
        let denom: usize = row.iter().sum();
        if denom == 0 {
            0.0
        } else {
            row[c as usize] as f64 / denom as f64
        }
    }

    /// Precision of class `c`; 0 when the class is never predicted.
    pub fn precision(&self, c: ClassLabel) -> f64 {
        let denom: usize = self.counts.iter().map(|row| row[c as usize]).sum();
        if denom == 0 {
            0.0
        } else {
            self.counts[c as usize][c as usize] as f64 / denom as f64
        }
    }
}

/// Plain accuracy over parallel label slices.
pub fn accuracy(actual: &[ClassLabel], predicted: &[ClassLabel]) -> f64 {
    assert_eq!(actual.len(), predicted.len(), "label length mismatch");
    if actual.is_empty() {
        return 0.0;
    }
    let correct = actual.iter().zip(predicted).filter(|(a, p)| a == p).count();
    correct as f64 / actual.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_basic() {
        assert!((accuracy(&[0, 1, 1, 0], &[0, 1, 0, 0]) - 0.75).abs() < 1e-12);
        assert_eq!(accuracy(&[], &[]), 0.0);
    }

    #[test]
    fn confusion_counts() {
        let c = Confusion::new(&[0, 0, 1, 1, 1], &[0, 1, 1, 1, 0], 2);
        assert_eq!(c.counts, vec![vec![1, 1], vec![1, 2]]);
        assert_eq!(c.total(), 5);
        assert_eq!(c.correct(), 3);
        assert!((c.accuracy() - 0.6).abs() < 1e-12);
        assert!((c.recall(1) - 2.0 / 3.0).abs() < 1e-12);
        assert!((c.precision(0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn degenerate_classes() {
        let c = Confusion::new(&[0, 0], &[0, 0], 3);
        assert_eq!(c.recall(2), 0.0);
        assert_eq!(c.precision(2), 0.0);
        assert_eq!(c.accuracy(), 1.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        accuracy(&[0], &[0, 1]);
    }
}

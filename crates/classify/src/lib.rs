//! Classifiers over mined rule groups, reproducing §4.2 of the FARMER
//! paper (Table 2).
//!
//! Three classifiers are compared on microarray data:
//!
//! * [`IrgClassifier`] — the paper's contribution: a CBA-style coverage
//!   classifier built from *interesting rule groups*, matching test rows
//!   through the groups' lower bounds;
//! * [`CbaClassifier`] — CBA (Liu, Hsu, Ma; KDD 1998): ranked class
//!   association rules with database-coverage selection and a default
//!   class. As in the paper, the candidate rules are obtained from the
//!   rule-group bounds FARMER mines (plain CBA never finishes on this
//!   column count);
//! * [`SvmClassifier`] — a linear SVM trained on the continuous
//!   expression values by Pegasos-style SGD (standing in for SVM-light).
//!
//! [`pipeline`] holds the train/test plumbing: discretization cuts are
//! learned on the training matrix only and applied to both splits, so no
//! information leaks; [`eval`] provides accuracy/confusion utilities.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod committee;
pub mod cv;
pub mod eval;
pub mod pipeline;
mod rules;
mod svm;

pub use committee::TopKCommittee;
pub use rules::{
    irg_rule, rank_rules, rule_cmp, CbaClassifier, IrgClassifier, RuleListClassifier, ScoredRule,
    IRG_FINGERPRINT_THETA,
};
pub use svm::{SvmClassifier, SvmConfig};

//! Leak-free train/test plumbing.
//!
//! Discretization cut points are statistics of the data; computing them
//! on the full matrix before splitting would leak test information into
//! training (especially for the entropy method, which looks at class
//! labels). [`DiscretizedSplit::fit`] therefore learns the cuts on the
//! training matrix alone and applies them to both halves, interning the
//! two halves against one shared item universe.

use farmer_dataset::discretize::Discretizer;
use farmer_dataset::{Dataset, DatasetBuilder, ExpressionMatrix};

/// A train/test pair discretized with cuts learned on train only, over a
/// shared item universe.
#[derive(Debug)]
pub struct DiscretizedSplit {
    /// Discretized training rows.
    pub train: Dataset,
    /// Discretized test rows, over the same item ids as `train`.
    pub test: Dataset,
    /// The per-gene cut points that were learned.
    pub cuts: Vec<Vec<f64>>,
}

impl DiscretizedSplit {
    /// Learns `discretizer` on `train` and applies it to both matrices.
    ///
    /// Panics if the matrices disagree on gene count or class count.
    pub fn fit(
        train: &ExpressionMatrix,
        test: &ExpressionMatrix,
        discretizer: &Discretizer,
    ) -> Self {
        assert_eq!(train.n_genes(), test.n_genes(), "gene count mismatch");
        assert_eq!(train.n_classes(), test.n_classes(), "class count mismatch");
        let cuts = discretizer.cuts(train);
        let drop_unsplit = discretizer.drops_unsplit();

        // one builder for both halves keeps item ids aligned
        let mut b = DatasetBuilder::new(train.n_classes());
        let add_rows = |m: &ExpressionMatrix, b: &mut DatasetBuilder| {
            for r in 0..m.n_rows() {
                let mut names: Vec<String> = Vec::new();
                for (g, c) in cuts.iter().enumerate() {
                    if drop_unsplit && c.is_empty() {
                        continue;
                    }
                    let k = c.partition_point(|&cut| cut <= m.value(r, g));
                    names.push(format!("{}@{k}", m.gene_name(g)));
                }
                let refs: Vec<&str> = names.iter().map(String::as_str).collect();
                b.add_row_named(&refs, m.label(r));
            }
        };
        add_rows(train, &mut b);
        add_rows(test, &mut b);
        let combined = b.build();
        let n_train = train.n_rows();
        let (train_d, test_d) = combined.split_at(n_train);
        DiscretizedSplit {
            train: train_d,
            test: test_d,
            cuts,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use farmer_dataset::synth::SynthConfig;

    fn matrices() -> (ExpressionMatrix, ExpressionMatrix) {
        let m = SynthConfig {
            n_rows: 40,
            n_genes: 25,
            n_class1: 20,
            n_signature: 8,
            shift: 2.5,
            ..Default::default()
        }
        .generate();
        m.stratified_split(30, 5)
    }

    #[test]
    fn shared_item_universe() {
        let (tr, te) = matrices();
        let split = DiscretizedSplit::fit(&tr, &te, &Discretizer::EqualDepth { buckets: 4 });
        assert_eq!(split.train.n_items(), split.test.n_items());
        assert_eq!(split.train.n_rows(), 30);
        assert_eq!(split.test.n_rows(), 10);
        assert_eq!(split.cuts.len(), 25);
    }

    #[test]
    fn cuts_learned_on_train_only() {
        let (tr, te) = matrices();
        let split = DiscretizedSplit::fit(&tr, &te, &Discretizer::EqualDepth { buckets: 4 });
        let direct = Discretizer::EqualDepth { buckets: 4 }.cuts(&tr);
        assert_eq!(split.cuts, direct);
        // and they differ from cuts learned on the test half
        let test_cuts = Discretizer::EqualDepth { buckets: 4 }.cuts(&te);
        assert_ne!(split.cuts, test_cuts);
    }

    #[test]
    fn entropy_drops_unsplit_genes_consistently() {
        let (tr, te) = matrices();
        let split = DiscretizedSplit::fit(&tr, &te, &Discretizer::EntropyMdl);
        // every item name present in test rows exists in the shared universe
        for r in 0..split.test.n_rows() as u32 {
            for i in split.test.row(r).iter() {
                assert!(!split.test.item_name(i).is_empty());
            }
        }
        // signature genes should survive; most noise genes should not
        assert!(split.train.n_items() > 0);
        assert!(split.train.n_items() < 2 * 25);
    }

    #[test]
    fn labels_preserved() {
        let (tr, te) = matrices();
        let split = DiscretizedSplit::fit(&tr, &te, &Discretizer::EqualDepth { buckets: 3 });
        assert_eq!(split.train.labels(), tr.labels());
        assert_eq!(split.test.labels(), te.labels());
    }
}

//! Rule-list classifiers: the shared CBA-style machinery, plus the CBA
//! and IRG classifier front-ends.

use crate::eval::accuracy;
use farmer_core::{Farmer, MineControl, MiningParams, NoOpObserver, RuleGroup};
use farmer_dataset::{ClassLabel, Dataset};
use rowset::{IdList, RowSet};

/// One ranked classification rule.
///
/// Two matching modes, combinable:
///
/// * **exact** — the rule carries alternative antecedents and matches a
///   row when any alternative is a subset of the row's items (CBA rules
///   have exactly one antecedent);
/// * **fractional** — the rule carries a fingerprint itemset and a
///   threshold `θ`, matching when the row contains at least a `θ`
///   fraction of the fingerprint. The IRG classifier uses this with the
///   group's upper bound: a rule group is a *set* of co-occurring items,
///   and requiring most (not all, not any-one) of them to be present is
///   what survives measurement noise between cohorts.
#[derive(Clone, Debug, PartialEq)]
pub struct ScoredRule {
    /// Alternative antecedents; matching any one matches the rule.
    pub antecedents: Vec<IdList>,
    /// Optional fingerprint matcher `(itemset, θ)` with `θ ∈ (0, 1]`.
    pub fractional: Option<(IdList, f64)>,
    /// Predicted class.
    pub class: ClassLabel,
    /// Rule support on the training data.
    pub sup: usize,
    /// Rule confidence on the training data.
    pub conf: f64,
}

impl ScoredRule {
    /// An exact-matching rule with one antecedent (CBA style).
    pub fn exact(antecedent: IdList, class: ClassLabel, sup: usize, conf: f64) -> Self {
        ScoredRule {
            antecedents: vec![antecedent],
            fractional: None,
            class,
            sup,
            conf,
        }
    }

    /// A fingerprint rule matching rows containing ≥ `theta` of `items`.
    pub fn fingerprint(
        items: IdList,
        theta: f64,
        class: ClassLabel,
        sup: usize,
        conf: f64,
    ) -> Self {
        assert!(theta > 0.0 && theta <= 1.0, "theta must be in (0, 1]");
        ScoredRule {
            antecedents: Vec::new(),
            fractional: Some((items, theta)),
            class,
            sup,
            conf,
        }
    }

    /// Length used for ranking ties: the shortest alternative (or the
    /// fingerprint size when only fractional).
    pub fn len(&self) -> usize {
        self.antecedents
            .iter()
            .map(IdList::len)
            .min()
            .or_else(|| self.fractional.as_ref().map(|(s, _)| s.len()))
            .unwrap_or(0)
    }

    /// `true` iff the rule has no matcher at all (never matches).
    pub fn is_empty(&self) -> bool {
        self.antecedents.is_empty() && self.fractional.is_none()
    }

    /// `true` iff some alternative antecedent is contained in `items`,
    /// or the fingerprint threshold is met.
    pub fn matches(&self, items: &IdList) -> bool {
        if self.antecedents.iter().any(|a| a.is_subset(items)) {
            return true;
        }
        match &self.fractional {
            Some((set, theta)) if !set.is_empty() => {
                set.intersection_len(items) as f64 >= theta * set.len() as f64
            }
            _ => false,
        }
    }
}

/// A trained rule-list classifier: ranked rules with database-coverage
/// selection and a default class (CBA's CB-M1 construction).
#[derive(Clone, Debug)]
pub struct RuleListClassifier {
    rules: Vec<ScoredRule>,
    default_class: ClassLabel,
}

impl RuleListClassifier {
    /// Builds the classifier from candidate rules:
    ///
    /// 1. rank by `(confidence desc, support desc, length asc)`;
    /// 2. walk the ranking, keeping each rule that correctly classifies
    ///    at least one still-uncovered training row and marking every row
    ///    it matches as covered;
    /// 3. set the default class to the majority among uncovered rows
    ///    after each kept rule, and finally truncate the list at the
    ///    prefix with the fewest total training errors.
    pub fn build_with_coverage(mut candidates: Vec<ScoredRule>, train: &Dataset) -> Self {
        candidates.retain(|r| !r.is_empty());
        rank_rules(&mut candidates);

        let n = train.n_rows();
        let mut uncovered = RowSet::full(n);
        let mut selected: Vec<ScoredRule> = Vec::new();
        // running error bookkeeping for the final truncation
        let mut errors_covered = 0usize;
        let mut best = (default_errors(train, &uncovered).1, 0usize); // (errors, prefix len)

        for rule in candidates {
            if uncovered.is_empty() {
                break;
            }
            let mut matched: Vec<usize> = Vec::new();
            let mut correct = false;
            for r in uncovered.iter() {
                if rule.matches(train.row(r as u32)) {
                    matched.push(r);
                    if train.label(r as u32) == rule.class {
                        correct = true;
                    }
                }
            }
            if !correct {
                continue;
            }
            for &r in &matched {
                uncovered.remove(r);
                if train.label(r as u32) != rule.class {
                    errors_covered += 1;
                }
            }
            selected.push(rule);
            let (_, def_err) = default_errors(train, &uncovered);
            let total = errors_covered + def_err;
            if total < best.0 {
                best = (total, selected.len());
            }
        }

        // truncate at the best prefix and recompute its default class
        selected.truncate(best.1);
        let mut uncovered = RowSet::full(n);
        for rule in &selected {
            for r in uncovered.clone().iter() {
                if rule.matches(train.row(r as u32)) {
                    uncovered.remove(r);
                }
            }
        }
        let (default_class, _) = default_errors(train, &uncovered);
        RuleListClassifier {
            rules: selected,
            default_class,
        }
    }

    /// Builds a classifier from candidate rules *without* database
    /// coverage: the full candidate list in [`rank_rules`] order, with
    /// an explicit fallback class. This is the rule list a consumer
    /// that has the rules but not the training rows (the serving layer
    /// loading a stored artifact) can reconstruct exactly.
    pub fn from_ranked(mut rules: Vec<ScoredRule>, default_class: ClassLabel) -> Self {
        rules.retain(|r| !r.is_empty());
        rank_rules(&mut rules);
        RuleListClassifier {
            rules,
            default_class,
        }
    }

    /// Predicts the class of a row given its items: the first matching
    /// rule wins; the default class covers the rest.
    pub fn predict(&self, items: &IdList) -> ClassLabel {
        self.rules
            .iter()
            .find(|r| r.matches(items))
            .map_or(self.default_class, |r| r.class)
    }

    /// Predicts every row of `data`.
    pub fn predict_dataset(&self, data: &Dataset) -> Vec<ClassLabel> {
        (0..data.n_rows() as u32)
            .map(|r| self.predict(data.row(r)))
            .collect()
    }

    /// Accuracy on a labeled dataset.
    pub fn score(&self, data: &Dataset) -> f64 {
        accuracy(data.labels(), &self.predict_dataset(data))
    }

    /// The selected rules, in rank order.
    pub fn rules(&self) -> &[ScoredRule] {
        &self.rules
    }

    /// The fallback class for unmatched rows.
    pub fn default_class(&self) -> ClassLabel {
        self.default_class
    }
}

/// Majority class among `rows` (ties to the smaller label; the global
/// majority when `rows` is empty) and the number of errors the majority
/// default makes on them.
fn default_errors(train: &Dataset, rows: &RowSet) -> (ClassLabel, usize) {
    let mut counts = vec![0usize; train.n_classes()];
    if rows.is_empty() {
        for &l in train.labels() {
            counts[l as usize] += 1;
        }
        let cls = argmax(&counts);
        return (cls, 0);
    }
    for r in rows.iter() {
        counts[train.label(r as u32) as usize] += 1;
    }
    let cls = argmax(&counts);
    (cls, rows.len() - counts[cls as usize])
}

fn argmax(counts: &[usize]) -> ClassLabel {
    counts
        .iter()
        .enumerate()
        .max_by_key(|&(i, &c)| (c, std::cmp::Reverse(i)))
        .map(|(i, _)| i as ClassLabel)
        .unwrap_or(0)
}

/// Node budget per class used when mining candidate rules.
///
/// Entropy-discretized microarray data can have large families of
/// near-identical rows, the worst case for row enumeration at CBA's very
/// high `0.7 · |class|` support threshold; the budget caps training cost
/// with a documented graceful degradation (the groups found first are
/// the ones the ranking prefers anyway). Generous enough that the small
/// analog datasets never hit it.
const TRAIN_NODE_BUDGET: u64 = 2_000_000;

/// Shared mining step: FARMER per class with CBA's thresholds
/// (`min_sup = ceil(sup_frac · |class|)`, confidence `min_conf`).
fn mine_groups_per_class(train: &Dataset, sup_frac: f64, min_conf: f64) -> Vec<RuleGroup> {
    let mut groups = Vec::new();
    for c in 0..train.n_classes() as ClassLabel {
        let class_n = train.class_count(c);
        if class_n == 0 {
            continue;
        }
        let min_sup = ((class_n as f64 * sup_frac).ceil() as usize).max(1);
        let params = MiningParams::new(c)
            .min_sup(min_sup)
            .min_conf(min_conf)
            .lower_bounds(true);
        let ctl = MineControl::new().with_node_budget(Some(TRAIN_NODE_BUDGET));
        groups.extend(
            Farmer::new(params)
                .mine_session(train, &ctl, &mut NoOpObserver)
                .groups,
        );
    }
    groups
}

/// The CBA classifier (Liu, Hsu, Ma; KDD 1998), with its candidate rules
/// obtained from FARMER's rule-group bounds: every lower bound of every
/// mined group competes as an independent rule, exactly the most-general
/// members CBA's ranking would prefer anyway.
pub struct CbaClassifier;

impl CbaClassifier {
    /// Trains with the paper's §4.2 parameters by default:
    /// `sup_frac = 0.7`, `min_conf = 0.8`.
    pub fn train(train: &Dataset, sup_frac: f64, min_conf: f64) -> RuleListClassifier {
        let groups = mine_groups_per_class(train, sup_frac, min_conf);
        let mut candidates = Vec::new();
        for g in &groups {
            let conf = g.confidence();
            for low in &g.lower {
                candidates.push(ScoredRule::exact(low.clone(), g.class, g.sup, conf));
            }
        }
        RuleListClassifier::build_with_coverage(candidates, train)
    }
}

/// Sorts rules into the canonical classification order: confidence
/// descending, support descending, antecedent length ascending, then a
/// deterministic structural tie-break (exact antecedents, fingerprint
/// itemset, class). Total — two distinct rules never compare equal — so
/// every consumer that ranks the same rule set walks it in the same
/// order, regardless of the order mining produced them in.
pub fn rank_rules(rules: &mut [ScoredRule]) {
    rules.sort_by(rule_cmp);
}

/// The comparator behind [`rank_rules`], exposed so consumers that
/// rank rules *indirectly* (the serving index argsorts group ids by
/// their derived rules) use the identical order.
pub fn rule_cmp(a: &ScoredRule, b: &ScoredRule) -> std::cmp::Ordering {
    b.conf
        .partial_cmp(&a.conf)
        .expect("confidences are finite")
        .then(b.sup.cmp(&a.sup))
        .then(a.len().cmp(&b.len()))
        .then_with(|| a.antecedents.cmp(&b.antecedents))
        .then_with(|| {
            let fa = a.fractional.as_ref().map(|(s, t)| (s, t.to_bits()));
            let fb = b.fractional.as_ref().map(|(s, t)| (s, t.to_bits()));
            fa.cmp(&fb)
        })
        .then(a.class.cmp(&b.class))
}

/// Fingerprint containment threshold of the IRG classifier: a test row
/// is covered by a rule group when it carries at least this fraction of
/// the group's upper bound.
pub const IRG_FINGERPRINT_THETA: f64 = 0.8;

/// The classification rule derived from one mined rule group: a
/// fingerprint matcher over the group's upper bound with threshold
/// `theta`, scored by the group's support and confidence. This is the
/// single definition of "how a rule group classifies a sample" — the
/// offline [`IrgClassifier`] and the serving index in `crates/serve`
/// both build on it, which is what keeps their predictions comparable.
pub fn irg_rule(g: &RuleGroup, theta: f64) -> ScoredRule {
    ScoredRule::fingerprint(g.upper.clone(), theta, g.class, g.sup, g.confidence())
}

/// The IRG classifier of §4.2 (the paper leaves its construction
/// unspecified; DESIGN.md records this design): one rule per interesting
/// rule group, matching test rows by *fractional containment of the
/// group's upper bound* (≥ [`IRG_FINGERPRINT_THETA`]). Treating the
/// group as a fingerprint rather than as its individual member rules is
/// exactly what the rule-group abstraction buys: CBA's single exact
/// antecedent breaks as soon as one measurement lands in a neighboring
/// bin, while most of a fingerprint survives.
pub struct IrgClassifier;

impl IrgClassifier {
    /// Trains with the same thresholds as [`CbaClassifier::train`].
    pub fn train(train: &Dataset, sup_frac: f64, min_conf: f64) -> RuleListClassifier {
        let groups = mine_groups_per_class(train, sup_frac, min_conf);
        let candidates = groups
            .iter()
            .map(|g| irg_rule(g, IRG_FINGERPRINT_THETA))
            .collect();
        RuleListClassifier::build_with_coverage(candidates, train)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use farmer_dataset::DatasetBuilder;

    fn il(v: &[u32]) -> IdList {
        IdList::from_iter(v.iter().copied())
    }

    fn rule(ants: &[&[u32]], class: ClassLabel, sup: usize, conf: f64) -> ScoredRule {
        ScoredRule {
            antecedents: ants.iter().map(|a| il(a)).collect(),
            fractional: None,
            class,
            sup,
            conf,
        }
    }

    /// Simple separable data: item 0 -> class 0, item 1 -> class 1.
    fn separable() -> Dataset {
        let mut b = DatasetBuilder::new(2);
        b.add_row([0, 2], 0);
        b.add_row([0, 3], 0);
        b.add_row([1, 2], 1);
        b.add_row([1, 3], 1);
        b.build()
    }

    #[test]
    fn scored_rule_matching() {
        let r = rule(&[&[0, 1], &[2]], 0, 3, 0.9);
        assert!(r.matches(&il(&[0, 1, 5])));
        assert!(r.matches(&il(&[2])));
        assert!(!r.matches(&il(&[0, 5])));
        assert_eq!(r.len(), 1);
        assert!(!r.is_empty());
    }

    #[test]
    fn coverage_selects_and_predicts() {
        let d = separable();
        let candidates = vec![
            rule(&[&[0]], 0, 2, 1.0),
            rule(&[&[1]], 1, 2, 1.0),
            rule(&[&[2]], 0, 1, 0.5), // junk rule: should be unnecessary
        ];
        let clf = RuleListClassifier::build_with_coverage(candidates, &d);
        assert_eq!(clf.score(&d), 1.0);
        assert_eq!(clf.predict(&il(&[0, 9])), 0);
        assert_eq!(clf.predict(&il(&[1])), 1);
        // unmatched rows fall to the default class
        let _ = clf.predict(&il(&[7]));
        // the junk rule must not survive error-based truncation
        assert!(clf.rules().len() <= 2);
    }

    #[test]
    fn ranking_prefers_confidence_then_support() {
        let d = separable();
        let candidates = vec![
            rule(&[&[2]], 1, 1, 0.5),
            rule(&[&[0]], 0, 2, 1.0),
            rule(&[&[1]], 1, 2, 1.0),
        ];
        let clf = RuleListClassifier::build_with_coverage(candidates, &d);
        assert!(clf.rules()[0].conf >= clf.rules().last().unwrap().conf);
    }

    #[test]
    fn default_class_majority() {
        let mut b = DatasetBuilder::new(2);
        b.add_row([0], 1);
        b.add_row([1], 1);
        b.add_row([2], 0);
        let d = b.build();
        let clf = RuleListClassifier::build_with_coverage(vec![], &d);
        assert_eq!(clf.default_class(), 1);
        assert_eq!(clf.predict(&il(&[5])), 1);
    }

    #[test]
    fn fingerprint_matching() {
        let r = ScoredRule::fingerprint(il(&[0, 1, 2, 3, 4]), 0.8, 1, 5, 1.0);
        assert!(r.matches(&il(&[0, 1, 2, 3, 4]))); // 5/5
        assert!(r.matches(&il(&[0, 1, 2, 3, 9]))); // 4/5 = 0.8
        assert!(!r.matches(&il(&[0, 1, 2, 8, 9]))); // 3/5 < 0.8
        assert_eq!(r.len(), 5);
        assert!(!r.is_empty());
    }

    #[test]
    #[should_panic(expected = "theta must be in (0, 1]")]
    fn fingerprint_rejects_bad_theta() {
        ScoredRule::fingerprint(il(&[0]), 0.0, 0, 1, 1.0);
    }

    #[test]
    fn irg_and_cba_learn_separable_data() {
        let d = separable();
        let irg = IrgClassifier::train(&d, 0.7, 0.8);
        assert_eq!(irg.score(&d), 1.0);
        let cba = CbaClassifier::train(&d, 0.7, 0.8);
        assert_eq!(cba.score(&d), 1.0);
    }

    #[test]
    fn generalizes_to_unseen_rows() {
        let d = separable();
        let irg = IrgClassifier::train(&d, 0.7, 0.8);
        // a new combination containing the class-0 marker
        assert_eq!(irg.predict(&il(&[0])), 0);
        assert_eq!(irg.predict(&il(&[1, 2, 3])), 1);
    }

    #[test]
    fn empty_candidates_fall_back_to_default() {
        let d = separable();
        let clf = RuleListClassifier::build_with_coverage(vec![], &d);
        assert!(clf.rules().is_empty());
        let acc = clf.score(&d);
        assert!((acc - 0.5).abs() < 1e-12);
    }
}

//! Linear SVM trained by Pegasos-style stochastic gradient descent
//! (Shalev-Shwartz, Singer, Srebro; ICML 2007).
//!
//! Stands in for SVM-light in the Table 2 comparison: a two-class
//! max-margin linear separator over the *continuous* expression values.
//! Features are z-score standardized with training statistics; a bias
//! term is learned as an extra constant feature. Training is
//! deterministic in the configured seed.

use farmer_dataset::{ClassLabel, ExpressionMatrix};
use farmer_support::rng::{Rng, SeedableRng, StdRng};

/// Hyperparameters for [`SvmClassifier::train`].
#[derive(Clone, Debug, PartialEq)]
pub struct SvmConfig {
    /// Regularization strength λ of the Pegasos objective.
    pub lambda: f64,
    /// Number of passes over the training set.
    pub epochs: usize,
    /// RNG seed for the sampling order.
    pub seed: u64,
}

impl Default for SvmConfig {
    fn default() -> Self {
        SvmConfig {
            lambda: 1e-3,
            epochs: 40,
            seed: 0x5E7,
        }
    }
}

/// A trained linear SVM for two-class expression matrices.
#[derive(Clone, Debug)]
pub struct SvmClassifier {
    /// Weights per gene, in standardized feature space.
    weights: Vec<f64>,
    bias: f64,
    /// Per-gene training mean.
    mean: Vec<f64>,
    /// Per-gene training standard deviation (1.0 where degenerate).
    sd: Vec<f64>,
    /// Class encoded as +1 (all others are −1).
    positive_class: ClassLabel,
    /// Label predicted on the negative side.
    negative_class: ClassLabel,
}

impl SvmClassifier {
    /// Trains on `train`, treating class 1 as the positive side when
    /// present (any two-label matrix works; with more than two classes
    /// the majority label becomes the negative side and this becomes a
    /// one-vs-rest separator for class 1).
    pub fn train(train: &ExpressionMatrix, config: &SvmConfig) -> Self {
        assert!(train.n_rows() > 0, "empty training set");
        let d = train.n_genes();
        let n = train.n_rows();

        // standardization statistics
        let mut mean = vec![0.0; d];
        for r in 0..n {
            for (g, m) in mean.iter_mut().enumerate() {
                *m += train.value(r, g);
            }
        }
        for m in &mut mean {
            *m /= n as f64;
        }
        let mut sd = vec![0.0; d];
        for r in 0..n {
            for (g, s) in sd.iter_mut().enumerate() {
                let dv = train.value(r, g) - mean[g];
                *s += dv * dv;
            }
        }
        for s in &mut sd {
            *s = (*s / n as f64).sqrt();
            if *s < 1e-12 {
                *s = 1.0;
            }
        }

        let positive_class: ClassLabel = 1;
        let negative_class: ClassLabel = 0;
        let y = |r: usize| -> f64 {
            if train.label(r) == positive_class {
                1.0
            } else {
                -1.0
            }
        };

        let mut w = vec![0.0f64; d];
        let mut b = 0.0f64;
        let mut rng = StdRng::seed_from_u64(config.seed);
        let lambda = config.lambda;
        let total = (config.epochs * n).max(1);
        for t in 1..=total {
            let r = rng.gen_range(0..n);
            let eta = 1.0 / (lambda * t as f64);
            // margin of the sampled example
            let mut score = b;
            for g in 0..d {
                score += w[g] * (train.value(r, g) - mean[g]) / sd[g];
            }
            let yr = y(r);
            // the bias is regularized like any other weight; without the
            // decay the enormous early learning rates (η = 1/λt) leave a
            // permanent bias offset
            let decay = 1.0 - eta * lambda;
            for wg in &mut w {
                *wg *= decay;
            }
            b *= decay;
            if yr * score < 1.0 {
                for (g, wg) in w.iter_mut().enumerate() {
                    *wg += eta * yr * (train.value(r, g) - mean[g]) / sd[g];
                }
                b += eta * yr;
            }
        }

        SvmClassifier {
            weights: w,
            bias: b,
            mean,
            sd,
            positive_class,
            negative_class,
        }
    }

    /// Signed decision value for one sample's raw expression values.
    pub fn decision(&self, values: &[f64]) -> f64 {
        assert_eq!(values.len(), self.weights.len(), "feature count mismatch");
        let mut s = self.bias;
        for (g, &v) in values.iter().enumerate() {
            s += self.weights[g] * (v - self.mean[g]) / self.sd[g];
        }
        s
    }

    /// Predicted label for one sample.
    pub fn predict(&self, values: &[f64]) -> ClassLabel {
        if self.decision(values) >= 0.0 {
            self.positive_class
        } else {
            self.negative_class
        }
    }

    /// Predicts every sample of `matrix`.
    pub fn predict_matrix(&self, matrix: &ExpressionMatrix) -> Vec<ClassLabel> {
        (0..matrix.n_rows())
            .map(|r| self.predict(matrix.row(r)))
            .collect()
    }

    /// Accuracy on a labeled matrix.
    pub fn score(&self, matrix: &ExpressionMatrix) -> f64 {
        crate::eval::accuracy(matrix.labels(), &self.predict_matrix(matrix))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use farmer_dataset::synth::SynthConfig;

    fn separable_matrix() -> ExpressionMatrix {
        SynthConfig {
            n_rows: 60,
            n_genes: 20,
            n_class1: 30,
            n_signature: 8,
            shift: 3.0,
            ..Default::default()
        }
        .generate()
    }

    #[test]
    fn learns_separable_data() {
        let m = separable_matrix();
        let svm = SvmClassifier::train(&m, &SvmConfig::default());
        assert!(svm.score(&m) >= 0.95, "train accuracy {}", svm.score(&m));
    }

    #[test]
    fn generalizes_across_split() {
        let m = separable_matrix();
        let (tr, te) = m.stratified_split(40, 3);
        let svm = SvmClassifier::train(&tr, &SvmConfig::default());
        assert!(svm.score(&te) >= 0.8, "test accuracy {}", svm.score(&te));
    }

    #[test]
    fn deterministic_in_seed() {
        let m = separable_matrix();
        let a = SvmClassifier::train(&m, &SvmConfig::default());
        let b = SvmClassifier::train(&m, &SvmConfig::default());
        assert_eq!(a.weights, b.weights);
        assert_eq!(a.bias, b.bias);
        let c = SvmClassifier::train(
            &m,
            &SvmConfig {
                seed: 9,
                ..Default::default()
            },
        );
        assert_ne!(a.weights, c.weights);
    }

    #[test]
    fn decision_sign_matches_prediction() {
        let m = separable_matrix();
        let svm = SvmClassifier::train(&m, &SvmConfig::default());
        for r in 0..m.n_rows() {
            let d = svm.decision(m.row(r));
            let p = svm.predict(m.row(r));
            assert_eq!(p == 1, d >= 0.0);
        }
    }

    #[test]
    fn constant_feature_is_harmless() {
        // one gene constant: sd guard must avoid division by zero
        let values = vec![
            1.0, 5.0, //
            1.0, 6.0, //
            1.0, -5.0, //
            1.0, -6.0,
        ];
        let m = ExpressionMatrix::new(4, 2, values, vec![1, 1, 0, 0], 2);
        let svm = SvmClassifier::train(&m, &SvmConfig::default());
        assert_eq!(svm.score(&m), 1.0);
    }

    #[test]
    #[should_panic(expected = "feature count mismatch")]
    fn wrong_width_panics() {
        let m = separable_matrix();
        let svm = SvmClassifier::train(&m, &SvmConfig::default());
        svm.decision(&[0.0]);
    }
}

//! Hand-rolled argument parsing — small enough that a dependency would
//! cost more than it saves.

use crate::{CliError, Result};
use std::collections::HashMap;
use std::path::PathBuf;

/// A parsed command line: the subcommand and its options.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `farmer synth`
    Synth(SynthArgs),
    /// `farmer discretize`
    Discretize(DiscretizeArgs),
    /// `farmer mine`
    Mine(MineArgs),
    /// `farmer topk`
    TopK(TopKArgs),
    /// `farmer closed`
    Closed(ClosedArgs),
    /// `farmer classify`
    Classify(ClassifyArgs),
    /// `farmer serve`
    Serve(ServeArgs),
    /// `farmer query`
    Query(QueryArgs),
    /// `farmer ingest`
    Ingest(IngestArgs),
    /// `farmer help` / `--help`
    Help,
}

/// Options of `farmer synth`.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthArgs {
    /// Preset code (`BC`/`LC`/`CT`/`PC`/`ALL`) or `custom`.
    pub preset: String,
    /// Column scale for presets.
    pub col_scale: f64,
    /// Rows for `custom`.
    pub rows: usize,
    /// Genes for `custom`.
    pub genes: usize,
    /// RNG seed.
    pub seed: u64,
    /// Output CSV path.
    pub out: PathBuf,
}

/// Options of `farmer discretize`.
#[derive(Debug, Clone, PartialEq)]
pub struct DiscretizeArgs {
    /// Input expression CSV.
    pub input: PathBuf,
    /// `equal-depth:<n>`, `equal-width:<n>`, or `entropy`.
    pub method: String,
    /// Output transaction file.
    pub out: PathBuf,
}

/// Options of `farmer mine`.
#[derive(Debug, Clone, PartialEq)]
pub struct MineArgs {
    /// Input transaction file.
    pub input: PathBuf,
    /// Mining engine: `farmer`, `topk`, `naive`, `charm`, `closet`,
    /// `apriori`, or `column-e`. All answer the same question.
    pub algo: String,
    /// Consequent class label.
    pub class: u32,
    /// Minimum rule support.
    pub min_sup: usize,
    /// Minimum confidence in `[0, 1]`.
    pub min_conf: f64,
    /// Minimum χ².
    pub min_chi: f64,
    /// Skip lower bounds.
    pub no_lower_bounds: bool,
    /// Groups per row for `--algo topk`.
    pub k: usize,
    /// Wall-clock limit in milliseconds; a timed-out run returns the
    /// valid partial result found so far.
    pub timeout_ms: Option<u64>,
    /// Cap on enumeration nodes (same partial-result semantics).
    pub node_budget: Option<u64>,
    /// Worker threads for `--algo farmer` (1 = sequential).
    pub threads: usize,
    /// Shared prune/memo table slots for `--algo farmer` (0 = off).
    pub memo_capacity: usize,
    /// Print heartbeat progress lines to stderr while mining.
    pub progress: bool,
    /// Print a machine-readable run report (JSON) to stdout.
    pub stats_json: bool,
    /// Optional JSON output path.
    pub json: Option<PathBuf>,
    /// Optional HTML report path.
    pub html: Option<PathBuf>,
    /// Optional Chrome trace-event JSON output path; setting it (or
    /// `metrics_out`) turns instrumented mining on for the run.
    pub trace_out: Option<PathBuf>,
    /// Optional Prometheus text-format metrics output path.
    pub metrics_out: Option<PathBuf>,
    /// Print at most this many groups (0 = all).
    pub limit: usize,
    /// Optional `.fgi` artifact output: persist the mined groups (in
    /// canonical order) for `farmer serve` / `farmer query`.
    pub save_irgs: Option<PathBuf>,
    /// `.fgi` format version for `--save-irgs` (1 or 2; default 2, the
    /// compact encoding).
    pub fgi_version: u32,
    /// Keep running after the initial mine: watch a row journal and
    /// republish the `--save-irgs` artifact on every delta.
    pub watch: bool,
    /// The `.fgd` row journal to watch (default: the artifact path
    /// with a `.fgd` extension).
    pub journal: Option<PathBuf>,
    /// Quiet window after the last journal growth before a remine
    /// starts.
    pub remine_debounce_ms: u64,
    /// `host:port` of a running server to `POST /v1/admin/reload`
    /// after each publish.
    pub notify_url: Option<String>,
    /// Bearer token for `--notify-url`.
    pub notify_token: Option<String>,
    /// Exit the watch loop after this many milliseconds without
    /// pipeline activity (absent = watch until killed).
    pub watch_idle_exit_ms: Option<u64>,
}

/// Options of `farmer serve`.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeArgs {
    /// The `.fgi` artifact to serve (positional: `farmer serve x.fgi`).
    pub artifact: PathBuf,
    /// Bind address (port 0 = ephemeral, printed on startup).
    pub addr: String,
    /// Worker-pool size.
    pub workers: usize,
    /// Exit cleanly after this many milliseconds without traffic
    /// (absent = serve until killed).
    pub idle_exit_ms: Option<u64>,
    /// Accepted-but-unanswered connection bound; connections beyond it
    /// are shed with `503` + `Retry-After`.
    pub max_inflight: usize,
    /// Bearer token enabling `POST /v1/admin/reload` and
    /// `GET /v1/admin/stats` (absent = endpoints disabled; SIGHUP
    /// reloads still work).
    pub admin_token: Option<String>,
    /// Structured access-log target: absent = disabled, `-` = stderr,
    /// anything else = a file path.
    pub log_out: Option<String>,
    /// Slow-request capture threshold in milliseconds (0 = capture
    /// every request).
    pub slow_ms: u64,
    /// Run the ingest→remine→publish pipeline in-process: enables
    /// `POST /v1/admin/ingest` and hot-swaps the artifact after each
    /// remine. Requires `--base`.
    pub watch: bool,
    /// Base transaction file the artifact was mined from (required
    /// with `--watch`; journaled rows append to it).
    pub base: Option<PathBuf>,
    /// The `.fgd` row journal (default: the artifact path with a
    /// `.fgd` extension).
    pub journal: Option<PathBuf>,
    /// Quiet window after the last journal growth before a remine
    /// starts.
    pub remine_debounce_ms: u64,
    /// Remine thresholds for `--watch` — match the flags the artifact
    /// was mined with.
    pub min_sup: usize,
    /// Minimum confidence for `--watch` remines.
    pub min_conf: f64,
    /// Minimum χ² for `--watch` remines.
    pub min_chi: f64,
    /// Restrict `--watch` remines to one class (absent = every class).
    pub class: Option<u32>,
    /// Skip lower bounds in `--watch` remines.
    pub no_lower_bounds: bool,
}

/// Options of `farmer query`.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryArgs {
    /// The `.fgi` artifact to query (positional: `farmer query x.fgi`).
    pub artifact: PathBuf,
    /// Comma-separated sample items (names or numeric ids).
    pub items: String,
    /// Restrict matches to one class label.
    pub class: Option<u32>,
    /// Print at most this many matching groups (0 = all).
    pub limit: usize,
}

/// Options of `farmer ingest`.
#[derive(Debug, Clone, PartialEq)]
pub struct IngestArgs {
    /// The `.fgd` row journal to append to (created if absent).
    pub journal: PathBuf,
    /// Base transaction file — validates row items/labels and pins
    /// the journal's dataset fingerprint.
    pub base: PathBuf,
    /// Comma-separated items of one inline row (names or numeric ids).
    pub items: Option<String>,
    /// Class label of the inline row.
    pub label: Option<u32>,
    /// A file of rows to append, one `<label> <item> <item>…` line
    /// each (same shape as a transaction file).
    pub rows: Option<PathBuf>,
}

/// Options of `farmer topk`.
#[derive(Debug, Clone, PartialEq)]
pub struct TopKArgs {
    /// Input transaction file.
    pub input: PathBuf,
    /// Consequent class label.
    pub class: u32,
    /// Groups per row.
    pub k: usize,
    /// Minimum rule support.
    pub min_sup: usize,
    /// Wall-clock limit in milliseconds.
    pub timeout_ms: Option<u64>,
}

/// Options of `farmer closed`.
#[derive(Debug, Clone, PartialEq)]
pub struct ClosedArgs {
    /// Input transaction file.
    pub input: PathBuf,
    /// `carpenter`, `charm`, or `closet`.
    pub algo: String,
    /// Minimum pattern support.
    pub min_sup: usize,
    /// Print at most this many patterns (0 = all).
    pub limit: usize,
}

/// Options of `farmer classify`.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassifyArgs {
    /// Training expression CSV.
    pub train: PathBuf,
    /// Test expression CSV.
    pub test: PathBuf,
    /// `irg`, `cba`, or `svm`.
    pub method: String,
}

/// Parses `argv` (without the program name).
pub fn parse(argv: &[String]) -> Result<Command> {
    let Some(cmd) = argv.first() else {
        return Ok(Command::Help);
    };
    if argv.iter().any(|a| a == "--help" || a == "-h") {
        return Ok(Command::Help);
    }
    // serve/query take the artifact as a positional argument
    // (`farmer serve x.fgi`); --artifact also works.
    let mut rest = &argv[1..];
    let mut positional = None;
    if matches!(cmd.as_str(), "serve" | "query") {
        if let Some(first) = rest.first().filter(|a| !a.starts_with("--")) {
            positional = Some(PathBuf::from(first));
            rest = &rest[1..];
        }
    }
    let opts = options(rest)?;
    match cmd.as_str() {
        "help" => Ok(Command::Help),
        "synth" => Ok(Command::Synth(SynthArgs {
            preset: get_or(&opts, "preset", "CT"),
            col_scale: num(&opts, "col-scale", 0.05)?,
            rows: num(&opts, "rows", 60)?,
            genes: num(&opts, "genes", 1000)?,
            seed: num(&opts, "seed", 1)?,
            out: path_required(&opts, "out")?,
        })),
        "discretize" => Ok(Command::Discretize(DiscretizeArgs {
            input: path_required(&opts, "in")?,
            method: get_or(&opts, "method", "equal-depth:10"),
            out: path_required(&opts, "out")?,
        })),
        "mine" => Ok(Command::Mine(MineArgs {
            input: path_required(&opts, "in")?,
            algo: get_or(&opts, "algo", "farmer"),
            class: num(&opts, "class", 1)?,
            min_sup: num(&opts, "min-sup", 1)?,
            min_conf: num(&opts, "min-conf", 0.0)?,
            min_chi: num(&opts, "min-chi", 0.0)?,
            no_lower_bounds: flag(&opts, "no-lower-bounds"),
            k: num(&opts, "k", 3)?,
            timeout_ms: opt_num(&opts, "timeout-ms")?,
            node_budget: opt_num(&opts, "node-budget")?,
            threads: num(&opts, "threads", 1)?,
            memo_capacity: num(&opts, "memo-capacity", 0)?,
            progress: flag(&opts, "progress"),
            stats_json: flag(&opts, "stats-json"),
            json: opts.get("json").and_then(|v| v.clone().map(PathBuf::from)),
            html: opts.get("html").and_then(|v| v.clone().map(PathBuf::from)),
            trace_out: opts
                .get("trace-out")
                .and_then(|v| v.clone().map(PathBuf::from)),
            metrics_out: opts
                .get("metrics-out")
                .and_then(|v| v.clone().map(PathBuf::from)),
            limit: num(&opts, "limit", 20)?,
            save_irgs: opts
                .get("save-irgs")
                .and_then(|v| v.clone().map(PathBuf::from)),
            fgi_version: match num(&opts, "fgi-version", 2u32)? {
                v @ (1 | 2) => v,
                other => {
                    return Err(CliError(format!(
                        "--fgi-version must be 1 or 2, not {other}"
                    )))
                }
            },
            watch: {
                let watch = flag(&opts, "watch");
                if watch && !opts.contains_key("save-irgs") {
                    return Err(CliError(
                        "--watch requires --save-irgs <path> (the artifact to republish)".into(),
                    ));
                }
                watch
            },
            journal: opts
                .get("journal")
                .and_then(|v| v.clone().map(PathBuf::from)),
            remine_debounce_ms: num(&opts, "remine-debounce-ms", 500)?,
            notify_url: opts.get("notify-url").and_then(|v| v.clone()),
            notify_token: opts.get("notify-token").and_then(|v| v.clone()),
            watch_idle_exit_ms: opt_num(&opts, "watch-idle-exit-ms")?,
        })),
        "topk" => Ok(Command::TopK(TopKArgs {
            input: path_required(&opts, "in")?,
            class: num(&opts, "class", 1)?,
            k: num(&opts, "k", 3)?,
            min_sup: num(&opts, "min-sup", 1)?,
            timeout_ms: opt_num(&opts, "timeout-ms")?,
        })),
        "closed" => Ok(Command::Closed(ClosedArgs {
            input: path_required(&opts, "in")?,
            algo: get_or(&opts, "algo", "carpenter"),
            min_sup: num(&opts, "min-sup", 2)?,
            limit: num(&opts, "limit", 20)?,
        })),
        "classify" => Ok(Command::Classify(ClassifyArgs {
            train: path_required(&opts, "train")?,
            test: path_required(&opts, "test")?,
            method: get_or(&opts, "method", "irg"),
        })),
        "serve" => Ok(Command::Serve(ServeArgs {
            artifact: artifact_path(positional, &opts)?,
            addr: get_or(&opts, "addr", "127.0.0.1:0"),
            workers: num(&opts, "workers", 4)?,
            idle_exit_ms: opt_num(&opts, "idle-exit-ms")?,
            max_inflight: num(&opts, "max-inflight", 256)?,
            admin_token: opts.get("admin-token").and_then(|v| v.clone()),
            log_out: opts.get("log-out").and_then(|v| v.clone()),
            slow_ms: num(&opts, "slow-ms", 100)?,
            watch: {
                let watch = flag(&opts, "watch");
                if watch && !opts.contains_key("base") {
                    return Err(CliError(
                        "--watch requires --base <transactions> (the dataset to remine)".into(),
                    ));
                }
                watch
            },
            base: opts.get("base").and_then(|v| v.clone().map(PathBuf::from)),
            journal: opts
                .get("journal")
                .and_then(|v| v.clone().map(PathBuf::from)),
            remine_debounce_ms: num(&opts, "remine-debounce-ms", 500)?,
            min_sup: num(&opts, "min-sup", 1)?,
            min_conf: num(&opts, "min-conf", 0.0)?,
            min_chi: num(&opts, "min-chi", 0.0)?,
            class: opt_num(&opts, "class")?,
            no_lower_bounds: flag(&opts, "no-lower-bounds"),
        })),
        "ingest" => {
            let a = IngestArgs {
                journal: path_required(&opts, "journal")?,
                base: path_required(&opts, "base")?,
                items: opts.get("items").and_then(|v| v.clone()),
                label: opt_num(&opts, "label")?,
                rows: opts.get("rows").and_then(|v| v.clone().map(PathBuf::from)),
            };
            if a.rows.is_none() && a.label.is_none() {
                return Err(CliError(
                    "ingest needs rows: --rows <file>, or --label <class> with --items".into(),
                ));
            }
            if a.items.is_some() && a.label.is_none() {
                return Err(CliError("--items needs --label <class>".into()));
            }
            Ok(Command::Ingest(a))
        }
        "query" => Ok(Command::Query(QueryArgs {
            artifact: artifact_path(positional, &opts)?,
            items: get_or(&opts, "items", ""),
            class: opt_num(&opts, "class")?,
            limit: num(&opts, "limit", 10)?,
        })),
        other => Err(CliError(format!(
            "unknown command '{other}'; try `farmer help`"
        ))),
    }
}

/// `--key value` and bare `--flag` pairs into a map.
fn options(args: &[String]) -> Result<HashMap<String, Option<String>>> {
    let mut map = HashMap::new();
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        let Some(key) = a.strip_prefix("--") else {
            return Err(CliError(format!("unexpected argument '{a}'")));
        };
        let value = match it.peek() {
            Some(v) if !v.starts_with("--") => Some(it.next().expect("peeked").clone()),
            _ => None,
        };
        map.insert(key.to_string(), value);
    }
    Ok(map)
}

fn get_or(opts: &HashMap<String, Option<String>>, key: &str, default: &str) -> String {
    opts.get(key)
        .and_then(|v| v.clone())
        .unwrap_or_else(|| default.to_string())
}

fn flag(opts: &HashMap<String, Option<String>>, key: &str) -> bool {
    opts.contains_key(key)
}

fn num<T: std::str::FromStr>(
    opts: &HashMap<String, Option<String>>,
    key: &str,
    default: T,
) -> Result<T> {
    match opts.get(key) {
        None => Ok(default),
        Some(Some(v)) => v
            .parse()
            .map_err(|_| CliError(format!("--{key}: cannot parse '{v}'"))),
        Some(None) => Err(CliError(format!("--{key} needs a value"))),
    }
}

/// Like [`num`] but with no default: absent means `None`.
fn opt_num<T: std::str::FromStr>(
    opts: &HashMap<String, Option<String>>,
    key: &str,
) -> Result<Option<T>> {
    match opts.get(key) {
        None => Ok(None),
        Some(Some(v)) => v
            .parse()
            .map(Some)
            .map_err(|_| CliError(format!("--{key}: cannot parse '{v}'"))),
        Some(None) => Err(CliError(format!("--{key} needs a value"))),
    }
}

/// The artifact path of `serve`/`query`: the positional argument when
/// given, else `--artifact <path>`.
fn artifact_path(
    positional: Option<PathBuf>,
    opts: &HashMap<String, Option<String>>,
) -> Result<PathBuf> {
    match positional {
        Some(p) => Ok(p),
        None => path_required(opts, "artifact").map_err(|_| {
            CliError("an artifact path is required (e.g. `farmer serve groups.fgi`)".into())
        }),
    }
}

fn path_required(opts: &HashMap<String, Option<String>>, key: &str) -> Result<PathBuf> {
    match opts.get(key) {
        Some(Some(v)) => Ok(PathBuf::from(v)),
        _ => Err(CliError(format!("--{key} <path> is required"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn empty_is_help() {
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert_eq!(parse(&sv(&["mine", "--help"])).unwrap(), Command::Help);
    }

    #[test]
    fn parses_mine() {
        let c = parse(&sv(&[
            "mine",
            "--in",
            "d.txt",
            "--class",
            "0",
            "--min-sup",
            "4",
            "--min-conf",
            "0.9",
            "--no-lower-bounds",
        ]))
        .unwrap();
        match c {
            Command::Mine(m) => {
                assert_eq!(m.input, PathBuf::from("d.txt"));
                assert_eq!(m.algo, "farmer");
                assert_eq!(m.class, 0);
                assert_eq!(m.min_sup, 4);
                assert!((m.min_conf - 0.9).abs() < 1e-12);
                assert!(m.no_lower_bounds);
                assert_eq!(m.timeout_ms, None);
                assert_eq!(m.node_budget, None);
                assert_eq!(m.threads, 1);
                assert_eq!(m.memo_capacity, 0);
                assert!(!m.progress);
                assert!(!m.stats_json);
                assert_eq!(m.json, None);
                assert_eq!(m.html, None);
                assert_eq!(m.trace_out, None);
                assert_eq!(m.metrics_out, None);
                assert_eq!(m.limit, 20);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_session_options() {
        let c = parse(&sv(&[
            "mine",
            "--in",
            "d.txt",
            "--algo",
            "charm",
            "--timeout-ms",
            "250",
            "--node-budget",
            "10000",
            "--threads",
            "4",
            "--memo-capacity",
            "65536",
            "--progress",
            "--stats-json",
            "--trace-out",
            "t.json",
            "--metrics-out",
            "m.prom",
        ]))
        .unwrap();
        match c {
            Command::Mine(m) => {
                assert_eq!(m.algo, "charm");
                assert_eq!(m.timeout_ms, Some(250));
                assert_eq!(m.node_budget, Some(10000));
                assert_eq!(m.threads, 4);
                assert_eq!(m.memo_capacity, 65536);
                assert!(m.progress);
                assert!(m.stats_json);
                assert_eq!(m.trace_out, Some(PathBuf::from("t.json")));
                assert_eq!(m.metrics_out, Some(PathBuf::from("m.prom")));
            }
            other => panic!("{other:?}"),
        }
        let err = parse(&sv(&["mine", "--in", "d.txt", "--timeout-ms", "soon"])).unwrap_err();
        assert!(err.to_string().contains("timeout-ms"), "{err}");
    }

    #[test]
    fn missing_required_path_errors() {
        let err = parse(&sv(&["mine", "--class", "1"])).unwrap_err();
        assert!(err.to_string().contains("--in"), "{err}");
    }

    #[test]
    fn bad_number_errors() {
        let err = parse(&sv(&["mine", "--in", "x", "--min-sup", "abc"])).unwrap_err();
        assert!(err.to_string().contains("min-sup"), "{err}");
    }

    #[test]
    fn parses_save_irgs() {
        let c = parse(&sv(&["mine", "--in", "d.txt", "--save-irgs", "g.fgi"])).unwrap();
        match c {
            Command::Mine(m) => {
                assert_eq!(m.save_irgs, Some(PathBuf::from("g.fgi")));
                assert_eq!(m.fgi_version, 2, "compact v2 is the default");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_fgi_version() {
        let c = parse(&sv(&[
            "mine",
            "--in",
            "d.txt",
            "--save-irgs",
            "g.fgi",
            "--fgi-version",
            "1",
        ]))
        .unwrap();
        match c {
            Command::Mine(m) => assert_eq!(m.fgi_version, 1),
            other => panic!("{other:?}"),
        }
        let err = parse(&sv(&["mine", "--in", "d.txt", "--fgi-version", "3"])).unwrap_err();
        assert!(err.to_string().contains("--fgi-version"), "{err}");
    }

    #[test]
    fn parses_serve_positional_and_flagged() {
        let c = parse(&sv(&["serve", "g.fgi", "--workers", "8"])).unwrap();
        match c {
            Command::Serve(s) => {
                assert_eq!(s.artifact, PathBuf::from("g.fgi"));
                assert_eq!(s.addr, "127.0.0.1:0");
                assert_eq!(s.workers, 8);
                assert_eq!(s.idle_exit_ms, None);
                assert_eq!(s.max_inflight, 256);
                assert_eq!(s.admin_token, None);
                assert_eq!(s.log_out, None);
                assert_eq!(s.slow_ms, 100);
            }
            other => panic!("{other:?}"),
        }
        let c = parse(&sv(&[
            "serve",
            "g.fgi",
            "--max-inflight",
            "32",
            "--admin-token",
            "sekrit",
            "--log-out",
            "-",
            "--slow-ms",
            "5",
        ]))
        .unwrap();
        match c {
            Command::Serve(s) => {
                assert_eq!(s.max_inflight, 32);
                assert_eq!(s.admin_token, Some("sekrit".to_string()));
                assert_eq!(s.log_out, Some("-".to_string()));
                assert_eq!(s.slow_ms, 5);
            }
            other => panic!("{other:?}"),
        }
        let c = parse(&sv(&[
            "serve",
            "--artifact",
            "g.fgi",
            "--addr",
            "0.0.0.0:8080",
            "--idle-exit-ms",
            "500",
        ]))
        .unwrap();
        match c {
            Command::Serve(s) => {
                assert_eq!(s.artifact, PathBuf::from("g.fgi"));
                assert_eq!(s.addr, "0.0.0.0:8080");
                assert_eq!(s.idle_exit_ms, Some(500));
            }
            other => panic!("{other:?}"),
        }
        let err = parse(&sv(&["serve"])).unwrap_err();
        assert!(err.to_string().contains("artifact"), "{err}");
    }

    #[test]
    fn parses_mine_watch() {
        let c = parse(&sv(&[
            "mine",
            "--in",
            "d.txt",
            "--save-irgs",
            "g.fgi",
            "--watch",
            "--journal",
            "rows.fgd",
            "--remine-debounce-ms",
            "50",
            "--notify-url",
            "127.0.0.1:8080",
            "--notify-token",
            "sekrit",
            "--watch-idle-exit-ms",
            "2000",
        ]))
        .unwrap();
        match c {
            Command::Mine(m) => {
                assert!(m.watch);
                assert_eq!(m.journal, Some(PathBuf::from("rows.fgd")));
                assert_eq!(m.remine_debounce_ms, 50);
                assert_eq!(m.notify_url, Some("127.0.0.1:8080".to_string()));
                assert_eq!(m.notify_token, Some("sekrit".to_string()));
                assert_eq!(m.watch_idle_exit_ms, Some(2000));
            }
            other => panic!("{other:?}"),
        }
        // --watch without an artifact to republish is an error.
        let err = parse(&sv(&["mine", "--in", "d.txt", "--watch"])).unwrap_err();
        assert!(err.to_string().contains("--save-irgs"), "{err}");
    }

    #[test]
    fn parses_serve_watch() {
        let c = parse(&sv(&[
            "serve",
            "g.fgi",
            "--watch",
            "--base",
            "d.txt",
            "--journal",
            "rows.fgd",
            "--remine-debounce-ms",
            "75",
            "--min-sup",
            "3",
            "--min-conf",
            "0.8",
            "--class",
            "1",
            "--no-lower-bounds",
        ]))
        .unwrap();
        match c {
            Command::Serve(s) => {
                assert!(s.watch);
                assert_eq!(s.base, Some(PathBuf::from("d.txt")));
                assert_eq!(s.journal, Some(PathBuf::from("rows.fgd")));
                assert_eq!(s.remine_debounce_ms, 75);
                assert_eq!(s.min_sup, 3);
                assert!((s.min_conf - 0.8).abs() < 1e-12);
                assert_eq!(s.class, Some(1));
                assert!(s.no_lower_bounds);
            }
            other => panic!("{other:?}"),
        }
        let plain = parse(&sv(&["serve", "g.fgi"])).unwrap();
        match plain {
            Command::Serve(s) => {
                assert!(!s.watch);
                assert_eq!(s.base, None);
                assert_eq!(s.remine_debounce_ms, 500);
            }
            other => panic!("{other:?}"),
        }
        let err = parse(&sv(&["serve", "g.fgi", "--watch"])).unwrap_err();
        assert!(err.to_string().contains("--base"), "{err}");
    }

    #[test]
    fn parses_ingest() {
        let c = parse(&sv(&[
            "ingest",
            "--journal",
            "rows.fgd",
            "--base",
            "d.txt",
            "--items",
            "g1,g2",
            "--label",
            "1",
        ]))
        .unwrap();
        match c {
            Command::Ingest(a) => {
                assert_eq!(a.journal, PathBuf::from("rows.fgd"));
                assert_eq!(a.base, PathBuf::from("d.txt"));
                assert_eq!(a.items, Some("g1,g2".to_string()));
                assert_eq!(a.label, Some(1));
                assert_eq!(a.rows, None);
            }
            other => panic!("{other:?}"),
        }
        let c = parse(&sv(&[
            "ingest",
            "--journal",
            "rows.fgd",
            "--base",
            "d.txt",
            "--rows",
            "new.txt",
        ]))
        .unwrap();
        match c {
            Command::Ingest(a) => assert_eq!(a.rows, Some(PathBuf::from("new.txt"))),
            other => panic!("{other:?}"),
        }
        // No rows at all, and items without a label, are errors.
        let err = parse(&sv(&["ingest", "--journal", "r.fgd", "--base", "d.txt"])).unwrap_err();
        assert!(err.to_string().contains("--rows"), "{err}");
        let err = parse(&sv(&[
            "ingest",
            "--journal",
            "r.fgd",
            "--base",
            "d.txt",
            "--items",
            "g1",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("--label"), "{err}");
    }

    #[test]
    fn parses_query() {
        let c = parse(&sv(&[
            "query", "g.fgi", "--items", "i0,i1", "--class", "1", "--limit", "5",
        ]))
        .unwrap();
        match c {
            Command::Query(q) => {
                assert_eq!(q.artifact, PathBuf::from("g.fgi"));
                assert_eq!(q.items, "i0,i1");
                assert_eq!(q.class, Some(1));
                assert_eq!(q.limit, 5);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unknown_command_errors() {
        let err = parse(&sv(&["explode"])).unwrap_err();
        assert!(err.to_string().contains("unknown command"), "{err}");
    }

    #[test]
    fn defaults_applied() {
        let c = parse(&sv(&["closed", "--in", "d.txt"])).unwrap();
        match c {
            Command::Closed(a) => {
                assert_eq!(a.algo, "carpenter");
                assert_eq!(a.min_sup, 2);
            }
            other => panic!("{other:?}"),
        }
    }
}

//! Command execution.

use crate::args::*;
use crate::output::{render_html, stats_json, GroupJson, MineJson};
use crate::{CliError, Result, USAGE};
use farmer_baselines::{AprioriMiner, CharmMiner, ClosetMiner, ColumnEMiner};
use farmer_classify::eval::accuracy;
use farmer_classify::pipeline::DiscretizedSplit;
use farmer_classify::{CbaClassifier, IrgClassifier, SvmClassifier, SvmConfig};
use farmer_core::naive::NaiveMiner;
use farmer_core::topk::{mine_top_k_session, TopKMiner};
use farmer_core::trace::{self, chrome_trace_json, prometheus_text, RingTracer, TraceReport};
use farmer_core::{
    Farmer, Heartbeat, MineControl, MineObserver, Miner, MiningParams, NoOpObserver,
};
use farmer_dataset::discretize::Discretizer;
use farmer_dataset::synth::{PaperDataset, SynthConfig};
use farmer_dataset::{io as dio, Dataset};
use farmer_pipeline::{Notify, Pipeline, PipelineConfig};
use farmer_serve::{ArtifactHandle, IngestHook, RuleGroupIndex, ServeConfig};
use farmer_store::{
    dataset_fingerprint, save_artifact_versioned, Artifact, ArtifactMeta, JournalWriter,
};
use rowset::IdList;
use std::io::Write;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Runs one parsed command, writing human-readable output to `out`.
pub fn execute(cmd: Command, out: &mut dyn Write) -> Result<()> {
    match cmd {
        Command::Help => writeln!(out, "{USAGE}").map_err(Into::into),
        Command::Synth(a) => synth(a, out),
        Command::Discretize(a) => discretize(a, out),
        Command::Mine(a) => mine(a, out),
        Command::TopK(a) => topk(a, out),
        Command::Closed(a) => closed(a, out),
        Command::Classify(a) => classify(a, out),
        Command::Serve(a) => serve(a, out),
        Command::Query(a) => query(a, out),
        Command::Ingest(a) => ingest(a, out),
    }
}

fn synth(a: SynthArgs, out: &mut dyn Write) -> Result<()> {
    let matrix = match a.preset.as_str() {
        "custom" => SynthConfig {
            n_rows: a.rows,
            n_genes: a.genes,
            n_class1: a.rows / 2,
            n_signature: (a.genes / 3).max(4),
            clusters_per_class: 3,
            cluster_spread: 1.8,
            cluster_noise: 0.35,
            seed: a.seed,
            ..SynthConfig::default()
        }
        .generate(),
        code => {
            let preset = PaperDataset::all()
                .into_iter()
                .find(|p| p.code() == code)
                .ok_or_else(|| {
                    CliError(format!(
                        "unknown preset '{code}' (BC, LC, CT, PC, ALL, custom)"
                    ))
                })?;
            let mut cfg = preset.synth_config(a.col_scale);
            cfg.seed = a.seed;
            cfg.generate()
        }
    };
    dio::save_matrix_csv(&matrix, &a.out)?;
    writeln!(
        out,
        "wrote {} samples x {} genes to {}",
        matrix.n_rows(),
        matrix.n_genes(),
        a.out.display()
    )?;
    Ok(())
}

fn parse_discretizer(method: &str) -> Result<Discretizer> {
    if method == "entropy" {
        return Ok(Discretizer::EntropyMdl);
    }
    if let Some(n) = method.strip_prefix("equal-depth:") {
        let buckets = n
            .parse()
            .map_err(|_| CliError(format!("bad bucket count '{n}'")))?;
        return Ok(Discretizer::EqualDepth { buckets });
    }
    if let Some(n) = method.strip_prefix("equal-width:") {
        let buckets = n
            .parse()
            .map_err(|_| CliError(format!("bad bucket count '{n}'")))?;
        return Ok(Discretizer::EqualWidth { buckets });
    }
    if method == "chi-merge" {
        return Ok(Discretizer::ChiMerge {
            threshold: 4.61,
            max_intervals: 6,
        });
    }
    if let Some(t) = method.strip_prefix("chi-merge:") {
        let threshold = t
            .parse()
            .map_err(|_| CliError(format!("bad chi threshold '{t}'")))?;
        return Ok(Discretizer::ChiMerge {
            threshold,
            max_intervals: 6,
        });
    }
    Err(CliError(format!(
        "unknown method '{method}' (entropy, equal-depth:<n>, equal-width:<n>, chi-merge[:<chi>])"
    )))
}

/// Loads an expression matrix, picking the parser from the extension
/// (`.arff` -> ARFF, anything else -> the CSV format).
fn load_matrix(path: &std::path::Path) -> Result<farmer_dataset::ExpressionMatrix> {
    let is_arff = path
        .extension()
        .is_some_and(|e| e.eq_ignore_ascii_case("arff"));
    let m = if is_arff {
        farmer_dataset::arff::load_arff(path)?
    } else {
        dio::load_matrix_csv(path)?
    };
    // missing values break the discretizers and the SVM; impute here so
    // every downstream command sees a dense matrix
    Ok(if m.has_missing() {
        m.impute_gene_means()
    } else {
        m
    })
}

fn discretize(a: DiscretizeArgs, out: &mut dyn Write) -> Result<()> {
    let matrix = load_matrix(&a.input)?;
    let data = parse_discretizer(&a.method)?.discretize(&matrix);
    dio::save_transactions(&data, &a.out)?;
    writeln!(
        out,
        "discretized {} rows into {} items ({}), wrote {}",
        data.n_rows(),
        data.n_items(),
        a.method,
        a.out.display()
    )?;
    Ok(())
}

fn load_and_check_class(path: &std::path::Path, class: u32) -> Result<Dataset> {
    let data = dio::load_transactions(path)?;
    if class as usize >= data.n_classes() {
        return Err(CliError(format!(
            "class {class} out of range (dataset has {} classes)",
            data.n_classes()
        )));
    }
    Ok(data)
}

/// Progress reporter for `--progress`: one stderr line per heartbeat,
/// without touching the primary output stream.
struct ProgressObserver {
    started: Instant,
}

impl MineObserver for ProgressObserver {
    fn heartbeat(&mut self, hb: &Heartbeat) {
        eprintln!(
            "[{:7.1}s] {} nodes, {} groups",
            self.started.elapsed().as_secs_f64(),
            hb.nodes_visited,
            hb.groups_found,
        );
        let _ = hb.elapsed;
    }
}

/// Resolves `--algo` to a boxed [`Miner`]; every choice answers the
/// same interesting-rule-group question.
fn miner_for(a: &MineArgs, params: &MiningParams, data: &Dataset) -> Result<Box<dyn Miner>> {
    Ok(match a.algo.as_str() {
        "farmer" => Box::new(
            Farmer::new(params.clone())
                .with_parallelism(a.threads)
                .with_memo_capacity(a.memo_capacity),
        ),
        "topk" => Box::new(TopKMiner {
            class: params.target_class,
            k: a.k,
            min_sup: params.min_sup,
        }),
        "naive" => {
            if data.n_rows() > 20 {
                return Err(CliError(format!(
                    "--algo naive enumerates all 2^rows row sets; {} rows is too many (max 20)",
                    data.n_rows()
                )));
            }
            Box::new(NaiveMiner {
                params: params.clone(),
            })
        }
        "charm" => Box::new(CharmMiner {
            params: params.clone(),
        }),
        "closet" => Box::new(ClosetMiner {
            params: params.clone(),
        }),
        "apriori" => Box::new(AprioriMiner {
            params: params.clone(),
        }),
        "column-e" => Box::new(ColumnEMiner {
            params: params.clone(),
        }),
        other => {
            return Err(CliError(format!(
            "unknown algorithm '{other}' (farmer, topk, naive, charm, closet, apriori, column-e)"
        )))
        }
    })
}

/// Builds the run control from the session flags.
fn control_from(timeout_ms: Option<u64>, node_budget: Option<u64>, progress: bool) -> MineControl {
    let mut ctl = MineControl::new().with_node_budget(node_budget);
    if let Some(ms) = timeout_ms {
        ctl = ctl.with_timeout(Duration::from_millis(ms));
    }
    if progress {
        ctl = ctl.with_heartbeat_every(8192);
    }
    ctl
}

/// Writes the two trace export files from a drained [`TraceReport`].
fn write_trace_exports(a: &MineArgs, report: &TraceReport) -> Result<()> {
    if let Some(path) = &a.trace_out {
        std::fs::write(path, chrome_trace_json(report).to_string())
            .map_err(|e| CliError(format!("trace write failed: {e}")))?;
    }
    if let Some(path) = &a.metrics_out {
        std::fs::write(path, prometheus_text(report))
            .map_err(|e| CliError(format!("metrics write failed: {e}")))?;
    }
    Ok(())
}

fn mine(a: MineArgs, out: &mut dyn Write) -> Result<()> {
    // either export flag turns the instrumented mining path on; without
    // them the miners run the statically-dispatched no-op tracer
    let tracer: Option<RingTracer> =
        (a.trace_out.is_some() || a.metrics_out.is_some()).then(|| trace::mining_tracer(a.threads));
    let data = {
        let _load = tracer
            .as_ref()
            .map(|t| trace::span(t, trace::LANE_MAIN, trace::SPAN_LOAD));
        load_and_check_class(&a.input, a.class)?
    };
    let params = MiningParams {
        min_sup: a.min_sup,
        min_conf: a.min_conf,
        min_chi: a.min_chi,
        lower_bounds: !a.no_lower_bounds,
        ..MiningParams::new(a.class)
    };
    params.validate().map_err(CliError)?;
    let miner = miner_for(&a, &params, &data)?;
    let ctl = control_from(a.timeout_ms, a.node_budget, a.progress);
    let started = Instant::now();
    let mut progress = ProgressObserver { started };
    let mut noop = NoOpObserver;
    let obs: &mut dyn MineObserver = if a.progress { &mut progress } else { &mut noop };
    let result = match &tracer {
        Some(t) => miner.mine_traced(&data, &ctl, obs, t),
        None => miner.mine_with(&data, &ctl, obs),
    };
    let elapsed_ms = started.elapsed().as_millis() as u64;
    let report = tracer.as_ref().map(RingTracer::drain);
    if let Some(report) = &report {
        write_trace_exports(&a, report)?;
    }
    if a.stats_json {
        // machine-readable mode: stdout is exactly one JSON document
        writeln!(
            out,
            "{}",
            stats_json(
                miner.name(),
                &result.stats,
                &result.sched,
                result.len(),
                elapsed_ms,
                report.as_ref(),
            )
            .pretty()
        )?;
    } else {
        writeln!(
            out,
            "{} interesting rule groups ({} nodes visited) on {} rows x {} items",
            result.len(),
            result.stats.nodes_visited,
            data.n_rows(),
            data.n_items()
        )?;
        if !result.stats.stop.is_complete() {
            writeln!(
                out,
                "search stopped early ({}); the groups above are a valid partial answer",
                result.stats.stop.as_str()
            )?;
        }
        let limit = if a.limit == 0 { usize::MAX } else { a.limit };
        for g in result.ranked().into_iter().take(limit) {
            writeln!(out, "  {}", g.display(&data))?;
        }
    }
    if a.json.is_some() || a.html.is_some() {
        let payload = MineJson {
            n_rows: data.n_rows(),
            n_items: data.n_items(),
            n_groups: result.len(),
            nodes_visited: result.stats.nodes_visited,
            groups: result
                .ranked()
                .into_iter()
                .map(|g| GroupJson::from_group(g, &data))
                .collect(),
        };
        if let Some(json_path) = &a.json {
            std::fs::write(json_path, payload.to_json().pretty())
                .map_err(|e| CliError(format!("json write failed: {e}")))?;
            writeln!(out, "wrote JSON to {}", json_path.display())?;
        }
        if let Some(html_path) = &a.html {
            let title = format!("FARMER report — {}", a.input.display());
            std::fs::write(html_path, render_html(&title, &payload))?;
            writeln!(out, "wrote HTML report to {}", html_path.display())?;
        }
    }
    if !a.stats_json {
        // (suppressed in --stats-json mode, where stdout is one document)
        if let Some(p) = &a.trace_out {
            writeln!(out, "wrote Chrome trace to {}", p.display())?;
        }
        if let Some(p) = &a.metrics_out {
            writeln!(out, "wrote Prometheus metrics to {}", p.display())?;
        }
    }
    if let Some(path) = &a.save_irgs {
        // canonical order makes the artifact bytes independent of
        // engine choice and worker scheduling
        let mut groups = result.groups;
        farmer_core::canonical_sort(&mut groups);
        let meta = ArtifactMeta::from_dataset(&data);
        let checksum = save_artifact_versioned(path, &meta, &groups, a.fgi_version)
            .map_err(|e| CliError(format!("saving {}: {e}", path.display())))?;
        if !a.stats_json {
            writeln!(
                out,
                "wrote {} rule groups to {} (format v{}, checksum {checksum:#018x})",
                groups.len(),
                path.display(),
                a.fgi_version
            )?;
        }
    }
    if a.watch {
        mine_watch(&a, &params, data, out)?;
    }
    Ok(())
}

/// The `mine --watch` tail: keep the just-saved artifact fresh by
/// remining journal deltas until the journal goes quiet (or forever).
fn mine_watch(
    a: &MineArgs,
    params: &MiningParams,
    data: Dataset,
    out: &mut dyn Write,
) -> Result<()> {
    let artifact = a
        .save_irgs
        .clone()
        .expect("--watch requires --save-irgs (validated at parse)");
    let journal = a
        .journal
        .clone()
        .unwrap_or_else(|| artifact.with_extension("fgd"));
    let mut cfg = PipelineConfig::new(&journal, &artifact);
    cfg.params = params.clone();
    cfg.classes = Some(vec![a.class]);
    cfg.threads = a.threads;
    cfg.debounce_ms = a.remine_debounce_ms;
    cfg.notify = match &a.notify_url {
        Some(addr) => Notify::Remote {
            addr: addr.clone(),
            token: a.notify_token.clone(),
        },
        None => Notify::None,
    };
    let pipeline = Pipeline::start(data, cfg).map_err(CliError)?;
    let hook = pipeline.handle();
    writeln!(
        out,
        "watching {} for new rows (republishing {})",
        journal.display(),
        artifact.display()
    )?;
    out.flush()?;
    match a.watch_idle_exit_ms {
        Some(ms) => {
            let idle = Duration::from_millis(ms);
            let mut last = hook.activity();
            let mut last_change = Instant::now();
            loop {
                std::thread::sleep(Duration::from_millis(25.min(ms.max(1))));
                let now = hook.activity();
                if now != last {
                    last = now;
                    last_change = Instant::now();
                } else if last_change.elapsed() >= idle {
                    break;
                }
            }
            writeln!(
                out,
                "journal idle for {ms} ms after {} publish(es); exiting watch",
                hook.generation()
            )?;
        }
        None => loop {
            std::thread::sleep(Duration::from_millis(100));
        },
    }
    Ok(())
}

/// Loads and indexes an artifact, mapping store errors to CLI errors.
fn load_index(path: &std::path::Path) -> Result<RuleGroupIndex> {
    let artifact =
        Artifact::load(path).map_err(|e| CliError(format!("{}: {e}", path.display())))?;
    Ok(RuleGroupIndex::from_artifact(artifact))
}

/// Starts the `serve --watch` pipeline: journal-fed remines that
/// republish the served artifact. Runs before the artifact is loaded
/// so the initial publish can create a missing artifact from the base.
fn start_serve_pipeline(a: &ServeArgs) -> Result<Pipeline> {
    let base_path = a
        .base
        .as_ref()
        .expect("--watch requires --base (validated at parse)");
    let base = dio::load_transactions(base_path)?;
    if let Some(c) = a.class {
        if c as usize >= base.n_classes() {
            return Err(CliError(format!(
                "class {c} out of range (dataset has {} classes)",
                base.n_classes()
            )));
        }
    }
    let params = MiningParams {
        min_sup: a.min_sup,
        min_conf: a.min_conf,
        min_chi: a.min_chi,
        lower_bounds: !a.no_lower_bounds,
        ..MiningParams::new(a.class.unwrap_or(0))
    };
    params.validate().map_err(CliError)?;
    let journal = a
        .journal
        .clone()
        .unwrap_or_else(|| a.artifact.with_extension("fgd"));
    let mut cfg = PipelineConfig::new(&journal, &a.artifact);
    cfg.params = params;
    cfg.classes = a.class.map(|c| vec![c]);
    cfg.debounce_ms = a.remine_debounce_ms;
    Pipeline::start(base, cfg).map_err(CliError)
}

fn serve(a: ServeArgs, out: &mut dyn Write) -> Result<()> {
    let mut pipeline = if a.watch {
        Some(start_serve_pipeline(&a)?)
    } else {
        None
    };
    let hook = pipeline.as_ref().map(|p| p.handle());
    let artifact_handle = Arc::new(
        ArtifactHandle::load(&a.artifact, farmer_classify::IRG_FINGERPRINT_THETA, 0)
            .map_err(CliError)?,
    );
    // Future publishes hot-swap the index we are about to serve from.
    if let Some(h) = &hook {
        h.set_notify(Notify::InProcess(Arc::clone(&artifact_handle)));
    }
    let config = ServeConfig {
        addr: a.addr.clone(),
        workers: a.workers,
        max_inflight: a.max_inflight,
        admin_token: a.admin_token.clone(),
        log_out: a.log_out.clone(),
        slow_ms: a.slow_ms,
        ingest: hook.clone().map(|h| h as Arc<dyn IngestHook>),
    };
    let handle = farmer_serve::start(Arc::clone(&artifact_handle), &config)
        .map_err(|e| CliError(format!("cannot bind {}: {e}", a.addr)))?;
    let index = artifact_handle.current();
    // scripts scrape this line for the resolved ephemeral port
    writeln!(
        out,
        "serving {} rule groups ({} items, {} classes) at http://{}",
        index.groups().len(),
        index.meta().n_items(),
        index.meta().n_classes(),
        handle.addr()
    )?;
    out.flush()?;
    drop(index);
    farmer_support::swap::notify_on_sighup();
    // SIGHUP hot-reloads the artifact from disk, exactly like the
    // authenticated POST /v1/admin/reload endpoint.
    let poll_sighup = |out: &mut dyn Write| -> Result<()> {
        if farmer_support::swap::take_sighup() {
            match artifact_handle.reload() {
                Ok(idx) => writeln!(
                    out,
                    "SIGHUP: reloaded {} ({} rule groups)",
                    a.artifact.display(),
                    idx.groups().len()
                )?,
                Err(e) => writeln!(out, "SIGHUP: reload failed, serving old artifact: {e}")?,
            }
            out.flush()?;
        }
        Ok(())
    };
    // Pipeline work (ingested rows, remines, publishes) counts as
    // traffic too — a server that is busy folding in new rows is not
    // idle, even if nobody is querying it yet.
    let pipeline_activity = || hook.as_ref().map_or(0, |h| h.activity());
    match a.idle_exit_ms {
        Some(ms) => {
            // poll the served-request and pipeline-activity counters; a
            // quiet stretch of `ms` milliseconds on both triggers a
            // graceful drain and a clean exit
            let idle = Duration::from_millis(ms);
            let mut last = (handle.requests_served(), pipeline_activity());
            let mut last_activity = Instant::now();
            loop {
                std::thread::sleep(Duration::from_millis(25.min(ms.max(1))));
                poll_sighup(out)?;
                let now = (handle.requests_served(), pipeline_activity());
                if now != last {
                    last = now;
                    last_activity = Instant::now();
                } else if last_activity.elapsed() >= idle {
                    break;
                }
            }
            handle.shutdown();
            if let Some(p) = pipeline.as_mut() {
                p.shutdown();
            }
            writeln!(
                out,
                "idle for {ms} ms after {} requests; shut down cleanly",
                last.0
            )?;
        }
        None => loop {
            std::thread::sleep(Duration::from_millis(100));
            poll_sighup(out)?;
        },
    }
    Ok(())
}

/// Resolves one row's item tokens (dictionary names or numeric ids)
/// against the base dataset into a sorted, deduped id list.
fn resolve_items<'a, I: IntoIterator<Item = &'a str>>(base: &Dataset, tokens: I) -> Result<IdList> {
    let mut ids: Vec<u32> = Vec::new();
    for t in tokens {
        let id = match base.item_by_name(t) {
            Some(id) => id,
            None => {
                let id: u32 = t.parse().map_err(|_| {
                    CliError(format!(
                        "item '{t}' is neither a dataset item name nor a numeric id"
                    ))
                })?;
                if id as usize >= base.n_items() {
                    return Err(CliError(format!(
                        "item id {id} out of range (dataset has {} items)",
                        base.n_items()
                    )));
                }
                id
            }
        };
        ids.push(id);
    }
    ids.sort_unstable();
    ids.dedup();
    Ok(IdList::from_sorted(ids))
}

fn ingest(a: IngestArgs, out: &mut dyn Write) -> Result<()> {
    let base = dio::load_transactions(&a.base)?;
    let mut rows: Vec<(IdList, u32)> = Vec::new();
    if let Some(path) = &a.rows {
        // same line shape as a transaction file: `<label>: <item> …`
        let text = std::fs::read_to_string(path)
            .map_err(|e| CliError(format!("{}: {e}", path.display())))?;
        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let (label_s, items_s) = line.split_once(':').ok_or_else(|| {
                CliError(format!(
                    "{}:{}: missing ':' separator",
                    path.display(),
                    i + 1
                ))
            })?;
            let label: u32 = label_s.trim().parse().map_err(|_| {
                CliError(format!(
                    "{}:{}: bad label '{}'",
                    path.display(),
                    i + 1,
                    label_s.trim()
                ))
            })?;
            rows.push((resolve_items(&base, items_s.split_whitespace())?, label));
        }
    }
    if let Some(label) = a.label {
        let spec = a.items.as_deref().unwrap_or("");
        let tokens = spec.split(',').map(str::trim).filter(|t| !t.is_empty());
        rows.push((resolve_items(&base, tokens)?, label));
    }
    for (k, (_, label)) in rows.iter().enumerate() {
        if *label as usize >= base.n_classes() {
            return Err(CliError(format!(
                "row {k}: label {label} out of range (dataset has {} classes)",
                base.n_classes()
            )));
        }
    }
    // Validated: journal the batch. The fingerprint ties the journal to
    // this base dataset, so a daemon watching it can trust the rows.
    let jpath = a.journal.display().to_string();
    let mut w = JournalWriter::open_append(&a.journal, dataset_fingerprint(&base))
        .map_err(|e| CliError(format!("{jpath}: {e}")))?;
    for (items, label) in &rows {
        w.append(items, *label)
            .map_err(|e| CliError(format!("{jpath}: {e}")))?;
    }
    w.sync().map_err(|e| CliError(format!("{jpath}: {e}")))?;
    writeln!(out, "appended {} row(s) to {jpath}", rows.len())?;
    Ok(())
}

fn query(a: QueryArgs, out: &mut dyn Write) -> Result<()> {
    let index = load_index(&a.artifact)?;
    let meta = index.meta();
    if let Some(c) = a.class {
        if c as usize >= meta.n_classes() {
            return Err(CliError(format!(
                "class {c} out of range (artifact has {} classes)",
                meta.n_classes()
            )));
        }
    }
    let tokens = a.items.split(',').map(str::trim).filter(|t| !t.is_empty());
    let (sample, unknown) = index.parse_sample(tokens);
    for u in &unknown {
        writeln!(out, "note: item '{u}' is not in the artifact's dictionary")?;
    }
    let p = index.classify(&sample);
    match p.group {
        Some(gi) => {
            let g = &index.groups()[gi as usize];
            writeln!(
                out,
                "classified as {} (group {gi}: sup {}, conf {:.2})",
                meta.class_names[p.class as usize],
                g.sup,
                g.confidence()
            )?;
        }
        None => writeln!(
            out,
            "classified as {} (no covering group; majority-class fallback)",
            meta.class_names[p.class as usize]
        )?,
    }
    let mut matched = index.matches(&sample);
    if let Some(c) = a.class {
        matched.retain(|&gi| index.groups()[gi as usize].class == c);
    }
    writeln!(out, "{} matching rule groups", matched.len())?;
    let limit = if a.limit == 0 { usize::MAX } else { a.limit };
    for &gi in matched.iter().take(limit) {
        let g = &index.groups()[gi as usize];
        let names: Vec<&str> = g
            .upper
            .iter()
            .map(|i| meta.item_names[i as usize].as_str())
            .collect();
        writeln!(
            out,
            "  [{}] {{{}}} sup {} conf {:.2} chi2 {:.2}",
            meta.class_names[g.class as usize],
            names.join(","),
            g.sup,
            g.confidence(),
            g.chi_square()
        )?;
    }
    Ok(())
}

fn topk(a: TopKArgs, out: &mut dyn Write) -> Result<()> {
    let data = load_and_check_class(&a.input, a.class)?;
    let ctl = control_from(a.timeout_ms, None, false);
    let result = mine_top_k_session(&data, a.class, a.k, a.min_sup, &ctl, &mut NoOpObserver);
    writeln!(
        out,
        "top-{} covering rule groups per row ({} nodes visited)",
        a.k, result.nodes_visited
    )?;
    if !result.stop.is_complete() {
        writeln!(
            out,
            "search stopped early ({}); coverage below may be incomplete",
            result.stop.as_str()
        )?;
    }
    for (r, groups) in result.per_row.iter().enumerate() {
        write!(out, "row {r} [{}]:", data.class_name(data.label(r as u32)))?;
        if groups.is_empty() {
            writeln!(out, " (no covering group)")?;
            continue;
        }
        for g in groups {
            write!(
                out,
                " ({} items, sup {}, conf {:.2})",
                g.upper.len(),
                g.sup,
                g.confidence()
            )?;
        }
        writeln!(out)?;
    }
    Ok(())
}

fn closed(a: ClosedArgs, out: &mut dyn Write) -> Result<()> {
    let data = dio::load_transactions(&a.input)?;
    let limit = if a.limit == 0 { usize::MAX } else { a.limit };
    let patterns: Vec<(rowset::IdList, usize)> = match a.algo.as_str() {
        "carpenter" => farmer_core::carpenter::carpenter(&data, a.min_sup)
            .patterns
            .into_iter()
            .map(|p| {
                let sup = p.support();
                (p.items, sup)
            })
            .collect(),
        "charm" => farmer_baselines::charm::charm(&data, a.min_sup)
            .closed
            .into_iter()
            .map(|c| {
                let sup = c.support();
                (c.items, sup)
            })
            .collect(),
        "closet" => farmer_baselines::closet::closet(&data, a.min_sup)
            .closed
            .into_iter()
            .map(|c| (c.items, c.support))
            .collect(),
        other => {
            return Err(CliError(format!(
                "unknown algorithm '{other}' (carpenter, charm, closet)"
            )))
        }
    };
    writeln!(
        out,
        "{} closed patterns with support >= {}",
        patterns.len(),
        a.min_sup
    )?;
    let mut sorted = patterns;
    sorted.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    for (items, sup) in sorted.into_iter().take(limit) {
        let names: Vec<&str> = items.iter().map(|i| data.item_name(i)).collect();
        writeln!(out, "  [{sup}] {{{}}}", names.join(","))?;
    }
    Ok(())
}

fn classify(a: ClassifyArgs, out: &mut dyn Write) -> Result<()> {
    let train_m = load_matrix(&a.train)?;
    let test_m = load_matrix(&a.test)?;
    let acc = match a.method.as_str() {
        "svm" => {
            let svm = SvmClassifier::train(&train_m, &SvmConfig::default());
            svm.score(&test_m)
        }
        "irg" | "cba" => {
            let split = DiscretizedSplit::fit(&train_m, &test_m, &Discretizer::EntropyMdl);
            let clf = if a.method == "irg" {
                IrgClassifier::train(&split.train, 0.7, 0.8)
            } else {
                CbaClassifier::train(&split.train, 0.7, 0.8)
            };
            accuracy(split.test.labels(), &clf.predict_dataset(&split.test))
        }
        other => {
            return Err(CliError(format!(
                "unknown method '{other}' (irg, cba, svm)"
            )));
        }
    };
    writeln!(
        out,
        "{} accuracy on {} test samples: {:.2}%",
        a.method,
        test_m.n_rows(),
        acc * 100.0
    )?;
    Ok(())
}

#[cfg(test)]
mod tests {
    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("farmer-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn run_ok(args: &[&str]) -> String {
        let argv: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        let mut out = Vec::new();
        crate::run(&argv, &mut out).unwrap_or_else(|e| panic!("{args:?}: {e}"));
        String::from_utf8(out).unwrap()
    }

    #[test]
    fn synth_discretize_mine_pipeline() {
        let csv = tmp("p.csv");
        let txt = tmp("p.txt");
        let json = tmp("p.json");
        let s = run_ok(&[
            "synth",
            "--preset",
            "custom",
            "--rows",
            "24",
            "--genes",
            "60",
            "--out",
            csv.to_str().unwrap(),
        ]);
        assert!(s.contains("24 samples x 60 genes"), "{s}");
        let s = run_ok(&[
            "discretize",
            "--in",
            csv.to_str().unwrap(),
            "--method",
            "equal-depth:4",
            "--out",
            txt.to_str().unwrap(),
        ]);
        assert!(s.contains("24 rows"), "{s}");
        let s = run_ok(&[
            "mine",
            "--in",
            txt.to_str().unwrap(),
            "--class",
            "1",
            "--min-sup",
            "3",
            "--min-conf",
            "0.8",
            "--json",
            json.to_str().unwrap(),
        ]);
        assert!(s.contains("interesting rule groups"), "{s}");
        let payload =
            farmer_support::json::Json::parse(&std::fs::read_to_string(&json).unwrap()).unwrap();
        assert_eq!(payload["n_rows"].as_u64(), Some(24));
    }

    #[test]
    fn closed_all_algorithms() {
        let csv = tmp("c.csv");
        let txt = tmp("c.txt");
        run_ok(&[
            "synth",
            "--preset",
            "custom",
            "--rows",
            "16",
            "--genes",
            "40",
            "--out",
            csv.to_str().unwrap(),
        ]);
        run_ok(&[
            "discretize",
            "--in",
            csv.to_str().unwrap(),
            "--method",
            "equal-width:3",
            "--out",
            txt.to_str().unwrap(),
        ]);
        let a = run_ok(&[
            "closed",
            "--in",
            txt.to_str().unwrap(),
            "--algo",
            "carpenter",
            "--min-sup",
            "4",
            "--limit",
            "0",
        ]);
        let b = run_ok(&[
            "closed",
            "--in",
            txt.to_str().unwrap(),
            "--algo",
            "charm",
            "--min-sup",
            "4",
            "--limit",
            "0",
        ]);
        let c = run_ok(&[
            "closed",
            "--in",
            txt.to_str().unwrap(),
            "--algo",
            "closet",
            "--min-sup",
            "4",
            "--limit",
            "0",
        ]);
        // same pattern count and, since output is sorted, same first line
        assert_eq!(a.lines().next(), b.lines().next());
        assert_eq!(b, c);
        assert_eq!(a, b);
    }

    #[test]
    fn discretize_methods_parse() {
        use farmer_dataset::discretize::Discretizer;
        assert_eq!(
            super::parse_discretizer("chi-merge").unwrap(),
            Discretizer::ChiMerge {
                threshold: 4.61,
                max_intervals: 6
            }
        );
        assert_eq!(
            super::parse_discretizer("chi-merge:2.7").unwrap(),
            Discretizer::ChiMerge {
                threshold: 2.7,
                max_intervals: 6
            }
        );
        assert_eq!(
            super::parse_discretizer("entropy").unwrap(),
            Discretizer::EntropyMdl
        );
        assert!(super::parse_discretizer("magic").is_err());
        assert!(super::parse_discretizer("equal-depth:x").is_err());
    }

    #[test]
    fn topk_runs() {
        let csv = tmp("t.csv");
        let txt = tmp("t.txt");
        run_ok(&[
            "synth",
            "--preset",
            "custom",
            "--rows",
            "12",
            "--genes",
            "30",
            "--out",
            csv.to_str().unwrap(),
        ]);
        run_ok(&[
            "discretize",
            "--in",
            csv.to_str().unwrap(),
            "--method",
            "equal-depth:3",
            "--out",
            txt.to_str().unwrap(),
        ]);
        let s = run_ok(&[
            "topk",
            "--in",
            txt.to_str().unwrap(),
            "--k",
            "2",
            "--min-sup",
            "2",
        ]);
        assert!(s.contains("top-2"), "{s}");
        assert!(s.contains("row 0"), "{s}");
    }

    #[test]
    fn classify_all_methods() {
        let train = tmp("tr.csv");
        let test = tmp("te.csv");
        run_ok(&[
            "synth",
            "--preset",
            "custom",
            "--rows",
            "30",
            "--genes",
            "50",
            "--seed",
            "3",
            "--out",
            train.to_str().unwrap(),
        ]);
        run_ok(&[
            "synth",
            "--preset",
            "custom",
            "--rows",
            "14",
            "--genes",
            "50",
            "--seed",
            "4",
            "--out",
            test.to_str().unwrap(),
        ]);
        for method in ["irg", "cba", "svm"] {
            let s = run_ok(&[
                "classify",
                "--train",
                train.to_str().unwrap(),
                "--test",
                test.to_str().unwrap(),
                "--method",
                method,
            ]);
            assert!(s.contains("accuracy"), "{s}");
        }
    }

    /// Builds a small transaction file once and returns its path.
    fn mining_input(stem: &str, rows: &str, genes: &str) -> std::path::PathBuf {
        let csv = tmp(&format!("{stem}.csv"));
        let txt = tmp(&format!("{stem}.txt"));
        run_ok(&[
            "synth",
            "--preset",
            "custom",
            "--rows",
            rows,
            "--genes",
            genes,
            "--out",
            csv.to_str().unwrap(),
        ]);
        run_ok(&[
            "discretize",
            "--in",
            csv.to_str().unwrap(),
            "--method",
            "equal-depth:4",
            "--out",
            txt.to_str().unwrap(),
        ]);
        txt
    }

    use farmer_support::json::Json;

    /// Recursive structural comparison against the golden document:
    /// objects must have identical keys in identical order, arrays must
    /// be element-wise shaped like the golden's first element, and
    /// scalars must agree on type (ints and floats both count as
    /// numbers). Values are free to differ — timings and counters vary
    /// run to run; the *schema* must not.
    fn assert_same_shape(actual: &Json, golden: &Json, path: &str) {
        match (actual, golden) {
            (Json::Null, Json::Null) => {}
            (Json::Bool(_), Json::Bool(_)) => {}
            (Json::Str(_), Json::Str(_)) => {}
            (Json::Int(_) | Json::Float(_), Json::Int(_) | Json::Float(_)) => {}
            (Json::Arr(a), Json::Arr(g)) => {
                if let Some(first) = g.first() {
                    assert!(!a.is_empty(), "empty array at {path}, golden is not");
                    for (i, el) in a.iter().enumerate() {
                        assert_same_shape(el, first, &format!("{path}[{i}]"));
                    }
                }
            }
            (Json::Obj(a), Json::Obj(g)) => {
                let keys = |o: &[(String, Json)]| -> Vec<String> {
                    o.iter().map(|(k, _)| k.clone()).collect()
                };
                assert_eq!(keys(a), keys(g), "object keys at {path}");
                for ((k, av), (_, gv)) in a.iter().zip(g.iter()) {
                    assert_same_shape(av, gv, &format!("{path}.{k}"));
                }
            }
            _ => panic!("shape mismatch at {path}: got {actual:?}, golden {golden:?}"),
        }
    }

    /// The full `--stats-json` schema — scheduler and trace blocks
    /// included — pinned against a checked-in golden document. Run with
    /// `FARMER_UPDATE_GOLDEN=1` to regenerate after an intentional
    /// schema change.
    #[test]
    fn stats_json_matches_golden_schema() {
        let golden_path = concat!(env!("CARGO_MANIFEST_DIR"), "/testdata/stats_schema.json");
        let txt = mining_input("sj", "20", "50");
        let trace = tmp("sj-trace.json");
        let s = run_ok(&[
            "mine",
            "--in",
            txt.to_str().unwrap(),
            "--min-sup",
            "3",
            "--stats-json",
            "--trace-out",
            trace.to_str().unwrap(),
        ]);
        let j = Json::parse(&s).unwrap_or_else(|e| panic!("{e}: {s}"));
        if std::env::var_os("FARMER_UPDATE_GOLDEN").is_some() {
            std::fs::write(golden_path, j.pretty()).unwrap();
        }
        let golden =
            Json::parse(&std::fs::read_to_string(golden_path).unwrap_or_else(|e| {
                panic!("{golden_path}: {e} (FARMER_UPDATE_GOLDEN=1 to create)")
            }))
            .unwrap();
        assert_same_shape(&j, &golden, "$");

        // value invariants on top of the shape
        assert_eq!(j["algo"].as_str(), Some("farmer"));
        assert_eq!(j["stop"].as_str(), Some("completed"));
        assert!(j["nodes_visited"].as_u64().unwrap() > 0);
        assert!(j["pruned"]["tight_support"].as_u64().is_some(), "{s}");
        assert!(j["pruned"]["confidence_floor"].as_u64().is_some(), "{s}");
        // scheduler observability: sequential run = one worker, no steals
        assert_eq!(j["scheduler"]["steals"].as_u64(), Some(0), "{s}");
        assert_eq!(
            j["scheduler"]["worker_nodes"][0].as_u64(),
            j["nodes_visited"].as_u64(),
            "{s}"
        );
        assert!(
            j["scheduler"]["peak_arena_depth"].as_u64().unwrap() >= 1,
            "{s}"
        );
        // trace block: sequential tracer = main lane + one worker lane,
        // and the session span subsumes the enumerate span
        assert_eq!(j["trace"]["lanes"].as_u64(), Some(2), "{s}");
        let span_ns = |name: &str| {
            let Json::Arr(spans) = &j["trace"]["spans"] else {
                panic!("trace.spans not an array: {s}")
            };
            spans
                .iter()
                .find(|sp| sp["name"].as_str() == Some(name))
                .unwrap_or_else(|| panic!("span '{name}' missing: {s}"))["total_ns"]
                .as_u64()
                .unwrap()
        };
        assert!(span_ns("session") >= span_ns("enumerate"), "{s}");
        assert!(
            j["trace"]["hists"][0]["count"].as_u64().unwrap() > 0,
            "node_visit histogram empty: {s}"
        );
        assert_eq!(j["trace"]["dropped_events"].as_u64(), Some(0), "{s}");
    }

    /// Without `--trace-out`/`--metrics-out`, the report still carries
    /// the `trace` key — as an explicit null, so consumers can branch on
    /// it without probing for key presence.
    #[test]
    fn stats_json_trace_is_null_when_untraced() {
        let txt = mining_input("sjn", "14", "30");
        let s = run_ok(&[
            "mine",
            "--in",
            txt.to_str().unwrap(),
            "--min-sup",
            "3",
            "--stats-json",
        ]);
        let j = Json::parse(&s).unwrap();
        assert!(matches!(j["trace"], Json::Null), "{s}");
    }

    /// `--trace-out` yields Chrome trace-event JSON (per-lane tracks
    /// with thread names) and `--metrics-out` yields Prometheus text
    /// with the expected metric families.
    #[test]
    fn trace_exports_are_valid() {
        let txt = mining_input("te", "20", "50");
        let trace = tmp("te-trace.json");
        let prom = tmp("te-metrics.prom");
        let s = run_ok(&[
            "mine",
            "--in",
            txt.to_str().unwrap(),
            "--min-sup",
            "3",
            "--threads",
            "2",
            "--trace-out",
            trace.to_str().unwrap(),
            "--metrics-out",
            prom.to_str().unwrap(),
        ]);
        assert!(s.contains("wrote Chrome trace"), "{s}");
        assert!(s.contains("wrote Prometheus metrics"), "{s}");

        let doc = Json::parse(&std::fs::read_to_string(&trace).unwrap()).unwrap();
        let Json::Arr(events) = &doc["traceEvents"] else {
            panic!("traceEvents missing: {doc:?}")
        };
        assert!(!events.is_empty());
        // one thread_name metadata record per lane: main + 2 workers
        let names: Vec<&str> = events
            .iter()
            .filter(|e| e["ph"].as_str() == Some("M"))
            .map(|e| e["args"]["name"].as_str().unwrap())
            .collect();
        assert_eq!(names, ["main", "worker-0", "worker-1"], "{doc:?}");
        // every event targets pid 1 and a known lane; B/E events balance
        let mut depth: i64 = 0;
        for e in events {
            assert_eq!(e["pid"].as_u64(), Some(1));
            assert!(e["tid"].as_u64().unwrap() < 3);
            match e["ph"].as_str().unwrap() {
                "B" => depth += 1,
                "E" => depth -= 1,
                _ => {}
            }
        }
        assert_eq!(depth, 0, "unbalanced begin/end events");
        // both workers recorded their enumerate span
        for tid in [1, 2] {
            assert!(
                events.iter().any(|e| e["ph"].as_str() == Some("B")
                    && e["tid"].as_u64() == Some(tid)
                    && e["name"].as_str() == Some("enumerate")),
                "no enumerate span on worker lane {tid}"
            );
        }

        let text = std::fs::read_to_string(&prom).unwrap();
        for family in [
            "farmer_span_seconds_total",
            "farmer_span_calls_total",
            "farmer_node_visit_ns_bucket",
            "farmer_node_visit_ns_count",
            "farmer_fused_scan_ns_count",
            "farmer_lower_bound_ns_count",
            "farmer_trace_dropped_events_total",
        ] {
            assert!(text.contains(family), "{family} missing from:\n{text}");
        }
        assert!(text.contains("le=\"+Inf\""), "{text}");
    }

    #[test]
    fn stats_json_reports_parallel_scheduler() {
        let txt = mining_input("sjp", "20", "50");
        let s = run_ok(&[
            "mine",
            "--in",
            txt.to_str().unwrap(),
            "--min-sup",
            "3",
            "--threads",
            "3",
            "--stats-json",
        ]);
        let j = farmer_support::json::Json::parse(&s).unwrap_or_else(|e| panic!("{e}: {s}"));
        let workers = match &j["scheduler"]["worker_nodes"] {
            farmer_support::json::Json::Arr(v) => v.len(),
            other => panic!("worker_nodes not an array: {other:?}"),
        };
        assert_eq!(workers, 3, "{s}");
        assert!(j["scheduler"]["steals"].as_u64().is_some(), "{s}");
    }

    #[test]
    fn node_budget_truncates_with_notice() {
        let txt = mining_input("nb", "24", "60");
        let s = run_ok(&[
            "mine",
            "--in",
            txt.to_str().unwrap(),
            "--min-sup",
            "2",
            "--node-budget",
            "5",
        ]);
        assert!(s.contains("search stopped early (budget)"), "{s}");
        // the same run as JSON reports truncation machine-readably
        let s = run_ok(&[
            "mine",
            "--in",
            txt.to_str().unwrap(),
            "--min-sup",
            "2",
            "--node-budget",
            "5",
            "--stats-json",
        ]);
        let j = farmer_support::json::Json::parse(&s).unwrap();
        assert_eq!(j["stop"].as_str(), Some("budget"));
        assert_eq!(j["truncated"].as_bool(), Some(true));
        assert_eq!(j["nodes_visited"].as_u64(), Some(6));
    }

    #[test]
    fn invalid_thresholds_error_cleanly() {
        let txt = mining_input("nv", "12", "30");
        let mut out = Vec::new();
        for bad in [
            ["--min-conf", "NaN"],
            ["--min-conf", "1.5"],
            ["--min-chi", "-2"],
        ] {
            let argv: Vec<String> = ["mine", "--in", txt.to_str().unwrap(), bad[0], bad[1]]
                .iter()
                .map(|s| s.to_string())
                .collect();
            let err = crate::run(&argv, &mut out).unwrap_err();
            let field = bad[0][2..].replace('-', "_");
            assert!(err.to_string().contains(&field), "{bad:?}: {err}");
        }
    }

    #[test]
    fn all_algos_agree_on_group_count() {
        let txt = mining_input("aa", "14", "30");
        let count = |algo: &str| {
            let s = run_ok(&[
                "mine",
                "--in",
                txt.to_str().unwrap(),
                "--algo",
                algo,
                "--min-sup",
                "2",
                "--stats-json",
            ]);
            let j = farmer_support::json::Json::parse(&s).unwrap();
            j["n_groups"].as_u64().unwrap()
        };
        let reference = count("farmer");
        assert!(reference > 0);
        for algo in ["charm", "closet", "apriori", "column-e"] {
            assert_eq!(count(algo), reference, "{algo}");
        }
    }

    /// The full artifact flow: mine with --save-irgs, query the file
    /// offline, then serve it and hit every endpoint over HTTP.
    #[test]
    fn mine_save_query_serve_pipeline() {
        let txt = mining_input("fgi", "20", "50");
        let fgi = tmp("fgi-groups.fgi");
        let s = run_ok(&[
            "mine",
            "--in",
            txt.to_str().unwrap(),
            "--min-sup",
            "3",
            "--min-conf",
            "0.7",
            "--save-irgs",
            fgi.to_str().unwrap(),
        ]);
        assert!(s.contains("rule groups to"), "{s}");
        assert!(s.contains("checksum 0x"), "{s}");

        // the artifact loads and the offline prediction matches the
        // library's own classification of the same sample
        let art = farmer_store::Artifact::load(&fgi).unwrap();
        assert!(!art.groups.is_empty());
        let first_upper: Vec<String> = art.groups[0]
            .upper
            .iter()
            .map(|i| art.meta.item_names[i as usize].clone())
            .collect();
        let items = first_upper.join(",");

        let s = run_ok(&["query", fgi.to_str().unwrap(), "--items", &items]);
        assert!(s.contains("classified as"), "{s}");
        assert!(s.contains("matching rule groups"), "{s}");
        let s = run_ok(&["query", fgi.to_str().unwrap(), "--items", "no-such-item"]);
        assert!(s.contains("not in the artifact"), "{s}");

        // serve on an ephemeral port in a thread; idle-exit gives the
        // command a clean way home once we stop sending traffic
        let fgi2 = fgi.clone();
        let (addr_tx, addr_rx) = std::sync::mpsc::channel();
        let server = std::thread::spawn(move || {
            let mut sink = AddrCapture {
                tx: addr_tx,
                buf: Vec::new(),
            };
            let argv: Vec<String> = [
                "serve",
                fgi2.to_str().unwrap(),
                "--workers",
                "2",
                "--idle-exit-ms",
                "1500",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect();
            crate::run(&argv, &mut sink).unwrap();
            String::from_utf8(sink.buf).unwrap()
        });
        let addr = addr_rx
            .recv_timeout(std::time::Duration::from_secs(10))
            .expect("serve never printed its address");

        let h = farmer_serve::http_get(&addr, "/healthz").unwrap();
        assert_eq!(h.status, 200, "{}", h.body);
        let c = farmer_serve::http_get(&addr, &format!("/classify?items={items}")).unwrap();
        assert_eq!(c.status, 200, "{}", c.body);
        let m = farmer_serve::http_get(&addr, "/metrics").unwrap();
        assert!(
            m.body.contains("farmer_serve_request_ns_count"),
            "{}",
            m.body
        );

        let summary = server.join().unwrap();
        assert!(summary.contains("shut down cleanly"), "{summary}");
    }

    #[test]
    fn ingest_appends_validated_rows_to_the_journal() {
        let txt = mining_input("ing", "12", "30");
        let fgd = tmp("ing.fgd");
        let _ = std::fs::remove_file(&fgd);
        let s = run_ok(&[
            "ingest",
            "--journal",
            fgd.to_str().unwrap(),
            "--base",
            txt.to_str().unwrap(),
            "--items",
            "2,0,2", // unordered + duplicate: normalised before journaling
            "--label",
            "0",
        ]);
        assert!(s.contains("appended 1 row(s)"), "{s}");
        let rows_file = tmp("ing-rows.txt");
        std::fs::write(&rows_file, "1: 3 4\n\n0: 0\n").unwrap();
        let s = run_ok(&[
            "ingest",
            "--journal",
            fgd.to_str().unwrap(),
            "--base",
            txt.to_str().unwrap(),
            "--rows",
            rows_file.to_str().unwrap(),
        ]);
        assert!(s.contains("appended 2 row(s)"), "{s}");
        let j = farmer_store::read_journal(&fgd).unwrap();
        assert_eq!(j.records.len(), 3);
        let ids: Vec<u32> = j.records[0].items.iter().collect();
        assert_eq!(ids, [0, 2]);
        assert_eq!(j.records[1].label, 1);

        // out-of-range labels and unknown items never reach the journal
        let mut out = Vec::new();
        for bad in [
            ["--items", "0", "--label", "9"],
            ["--items", "no-such-gene", "--label", "0"],
        ] {
            let argv: Vec<String> = [
                "ingest",
                "--journal",
                fgd.to_str().unwrap(),
                "--base",
                txt.to_str().unwrap(),
                bad[0],
                bad[1],
                bad[2],
                bad[3],
            ]
            .iter()
            .map(|s| s.to_string())
            .collect();
            crate::run(&argv, &mut out).unwrap_err();
        }
        assert_eq!(farmer_store::read_journal(&fgd).unwrap().records.len(), 3);
    }

    /// The streaming loop end to end — and the idle-exit regression:
    /// rows journaled by a *separate* `farmer ingest` run must reach
    /// the live server (remine → publish → in-process hot swap), and
    /// that pipeline activity must reset the idle clock even though no
    /// HTTP request is involved.
    #[test]
    fn serve_watch_folds_in_ingested_rows_and_stays_alive() {
        let txt = mining_input("watch", "16", "40");
        let fgi = tmp("watch.fgi");
        let fgd = tmp("watch.fgd");
        let _ = std::fs::remove_file(&fgi);
        let _ = std::fs::remove_file(&fgd);
        run_ok(&[
            "mine",
            "--in",
            txt.to_str().unwrap(),
            "--min-sup",
            "3",
            "--save-irgs",
            fgi.to_str().unwrap(),
            "--class",
            "1",
        ]);
        let base_rows = farmer_store::Artifact::load(&fgi).unwrap().meta.n_rows;

        let (addr_tx, addr_rx) = std::sync::mpsc::channel();
        let fgi2 = fgi.clone();
        let (txt2, fgd2) = (txt.clone(), fgd.clone());
        let server = std::thread::spawn(move || {
            let mut sink = AddrCapture {
                tx: addr_tx,
                buf: Vec::new(),
            };
            let argv: Vec<String> = [
                "serve",
                fgi2.to_str().unwrap(),
                "--watch",
                "--base",
                txt2.to_str().unwrap(),
                "--journal",
                fgd2.to_str().unwrap(),
                "--class",
                "1",
                "--min-sup",
                "3",
                "--remine-debounce-ms",
                "100",
                "--idle-exit-ms",
                "1500",
                "--admin-token",
                "tok",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect();
            crate::run(&argv, &mut sink).unwrap();
            String::from_utf8(sink.buf).unwrap()
        });
        let addr = addr_rx
            .recv_timeout(std::time::Duration::from_secs(20))
            .expect("serve --watch never printed its address");
        let t0 = std::time::Instant::now();
        let h = farmer_serve::http_get(&addr, "/v1/healthz").unwrap();
        assert_eq!(h.status, 200, "{}", h.body);

        // Quiet on the HTTP side from here on. Append a row through the
        // cross-process path; the daemon must pick it up by polling.
        std::thread::sleep(std::time::Duration::from_millis(700));
        run_ok(&[
            "ingest",
            "--journal",
            fgd.to_str().unwrap(),
            "--base",
            txt.to_str().unwrap(),
            "--items",
            "0,1,2",
            "--label",
            "1",
        ]);
        // The publish lands on disk well before the idle deadline.
        let deadline = t0 + std::time::Duration::from_millis(1400);
        loop {
            if let Ok(art) = farmer_store::Artifact::load(&fgi) {
                if art.meta.n_rows == base_rows + 1 {
                    break;
                }
            }
            assert!(
                std::time::Instant::now() < deadline,
                "republished artifact never appeared"
            );
            std::thread::sleep(std::time::Duration::from_millis(25));
        }

        // 1700 ms after the last request: without the pipeline-activity
        // fix the server is already gone (idle-exit at ~1500 ms); with
        // it, the remine+publish reset the clock and it still answers,
        // from the *new* artifact (epoch bumped by the hot swap).
        let elapsed = t0.elapsed();
        std::thread::sleep(std::time::Duration::from_millis(1700).saturating_sub(elapsed));
        let h = farmer_serve::http_get(&addr, "/v1/healthz")
            .expect("server exited despite pipeline activity (idle clock not reset)");
        assert_eq!(h.status, 200, "{}", h.body);
        let doc = Json::parse(&h.body).unwrap();
        assert!(
            doc["epoch"].as_u64().unwrap() >= 1,
            "publish never hot-swapped the served index: {}",
            h.body
        );

        // Pipeline stats ride along on the admin surface.
        let s = farmer_serve::http_get_auth(&addr, "/v1/admin/stats", Some("tok")).unwrap();
        assert_eq!(s.status, 200, "{}", s.body);
        let stats = Json::parse(&s.body).unwrap();
        assert!(
            stats["pipeline"]["generation"].as_u64().unwrap() >= 1,
            "{}",
            s.body
        );

        let summary = server.join().unwrap();
        assert!(summary.contains("shut down cleanly"), "{summary}");
    }

    /// `mine --watch` keeps the artifact fresh without any server: a
    /// journal append triggers a remine+republish, and the watch exits
    /// on its own idle timer.
    #[test]
    fn mine_watch_republishes_on_journal_growth() {
        let txt = mining_input("mwatch", "14", "30");
        let fgi = tmp("mwatch.fgi");
        let fgd = tmp("mwatch.fgd");
        let _ = std::fs::remove_file(&fgi);
        let _ = std::fs::remove_file(&fgd);

        let (txt2, fgi2, fgd2) = (txt.clone(), fgi.clone(), fgd.clone());
        let watcher = std::thread::spawn(move || {
            run_ok(&[
                "mine",
                "--in",
                txt2.to_str().unwrap(),
                "--min-sup",
                "3",
                "--save-irgs",
                fgi2.to_str().unwrap(),
                "--watch",
                "--journal",
                fgd2.to_str().unwrap(),
                "--remine-debounce-ms",
                "100",
                "--watch-idle-exit-ms",
                "1200",
            ])
        });
        // Wait for the initial artifact AND the journal header (proof
        // the pipeline is up), then feed the journal.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(20);
        let journal_ready = || std::fs::metadata(&fgd).is_ok_and(|m| m.len() >= 16);
        while !fgi.exists() || !journal_ready() {
            assert!(std::time::Instant::now() < deadline, "no initial artifact");
            std::thread::sleep(std::time::Duration::from_millis(25));
        }
        let base_rows = farmer_store::Artifact::load(&fgi).unwrap().meta.n_rows;
        run_ok(&[
            "ingest",
            "--journal",
            fgd.to_str().unwrap(),
            "--base",
            txt.to_str().unwrap(),
            "--items",
            "1,3",
            "--label",
            "0",
        ]);
        let summary = watcher.join().unwrap();
        assert!(summary.contains("exiting watch"), "{summary}");
        let art = farmer_store::Artifact::load(&fgi).unwrap();
        assert_eq!(
            art.meta.n_rows,
            base_rows + 1,
            "watch never folded the journaled row in"
        );
    }

    /// Captures the `serve` startup line and forwards the bound
    /// address to the test thread.
    struct AddrCapture {
        tx: std::sync::mpsc::Sender<String>,
        buf: Vec<u8>,
    }

    impl std::io::Write for AddrCapture {
        fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
            self.buf.extend_from_slice(data);
            // `write!` delivers formatted fragments piecemeal; only a
            // newline guarantees the port is complete
            if let Some(rest) = std::str::from_utf8(&self.buf)
                .ok()
                .and_then(|s| s.split_once("at http://"))
                .map(|(_, rest)| rest)
            {
                if let Some(line_end) = rest.find('\n') {
                    let _ = self.tx.send(rest[..line_end].trim().to_string());
                }
            }
            Ok(data.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn query_rejects_bad_artifact_and_class() {
        let bogus = tmp("bogus.fgi");
        std::fs::write(&bogus, b"not an artifact").unwrap();
        let mut out = Vec::new();
        let argv: Vec<String> = ["query", bogus.to_str().unwrap(), "--items", "i0"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let err = crate::run(&argv, &mut out).unwrap_err();
        assert!(err.to_string().contains("truncated"), "{err}");

        let txt = mining_input("qb", "14", "30");
        let fgi = tmp("qb.fgi");
        run_ok(&[
            "mine",
            "--in",
            txt.to_str().unwrap(),
            "--min-sup",
            "2",
            "--save-irgs",
            fgi.to_str().unwrap(),
        ]);
        let argv: Vec<String> = [
            "query",
            fgi.to_str().unwrap(),
            "--items",
            "i0",
            "--class",
            "7",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let err = crate::run(&argv, &mut out).unwrap_err();
        assert!(err.to_string().contains("out of range"), "{err}");
    }

    #[test]
    fn help_and_errors() {
        let s = run_ok(&["help"]);
        assert!(s.contains("USAGE"), "{s}");
        let mut out = Vec::new();
        let err = crate::run(&["mine".to_string()], &mut out).unwrap_err();
        assert!(err.to_string().contains("--in"), "{err}");
        let err = crate::run(
            &[
                "synth".to_string(),
                "--preset".into(),
                "XX".into(),
                "--out".into(),
                "/tmp/x".into(),
            ],
            &mut out,
        )
        .unwrap_err();
        assert!(err.to_string().contains("unknown preset"), "{err}");
    }
}

#[cfg(test)]
mod arff_tests {
    #[test]
    fn arff_end_to_end() {
        let dir = std::env::temp_dir().join("farmer-cli-arff");
        std::fs::create_dir_all(&dir).unwrap();
        let arff = dir.join("d.arff");
        std::fs::write(
            &arff,
            "@RELATION t\n@ATTRIBUTE g0 NUMERIC\n@ATTRIBUTE g1 NUMERIC\n\
             @ATTRIBUTE class {neg,pos}\n@DATA\n\
             0.1,5.0,neg\n0.2,?,neg\n4.0,1.0,pos\n4.2,0.9,pos\n",
        )
        .unwrap();
        let txt = dir.join("d.txt");
        let argv: Vec<String> = [
            "discretize",
            "--in",
            arff.to_str().unwrap(),
            "--method",
            "equal-width:2",
            "--out",
            txt.to_str().unwrap(),
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let mut out = Vec::new();
        crate::run(&argv, &mut out).unwrap();
        let s = String::from_utf8(out).unwrap();
        assert!(s.contains("4 rows"), "{s}");
    }
}

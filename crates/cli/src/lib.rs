//! Library half of the `farmer` command-line tool: argument parsing and
//! command execution, separated from `main` so the test suite can drive
//! every command without spawning processes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod commands;
pub mod output;

use std::fmt;

/// A user-facing CLI failure (bad arguments, unreadable file, …).
#[derive(Debug)]
pub struct CliError(pub String);

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

impl From<farmer_dataset::io::IoError> for CliError {
    fn from(e: farmer_dataset::io::IoError) -> Self {
        CliError(e.to_string())
    }
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError(e.to_string())
    }
}

/// Convenience alias used across the CLI.
pub type Result<T> = std::result::Result<T, CliError>;

/// Top-level dispatch: parses `argv` (without the program name) and runs
/// the selected command, writing human output to `out`.
pub fn run(argv: &[String], out: &mut dyn std::io::Write) -> Result<()> {
    let parsed = args::parse(argv)?;
    commands::execute(parsed, out)
}

/// The usage banner.
pub const USAGE: &str = "\
farmer — interesting rule group mining for wide, short datasets

USAGE: farmer <COMMAND> [OPTIONS]

COMMANDS:
  synth       generate a synthetic microarray expression matrix (CSV)
  discretize  turn an expression CSV into a transaction file
  mine        mine interesting rule groups from a transaction file
  topk        mine the top-k covering rule groups per sample
  closed      mine closed patterns (carpenter | charm | closet)
  classify    train on one transaction/CSV file, evaluate on another
  serve       serve a saved .fgi artifact over HTTP
  query       classify a sample against a saved .fgi artifact
  ingest      append labelled rows to a .fgd journal for a watch daemon
  help        show this message

MINE OPTIONS:
  --in <path>         transaction file (required)
  --algo <name>       farmer | topk | naive | charm | closet | apriori | column-e
  --class <n>         consequent class label          (default 1)
  --min-sup <n>       minimum rule support            (default 1)
  --min-conf <f>      minimum confidence in [0, 1]    (default 0)
  --min-chi <f>       minimum chi-square              (default 0)
  --k <n>             groups per row for --algo topk  (default 3)
  --no-lower-bounds   report upper bounds only
  --timeout-ms <ms>   stop after this long; prints the valid partial result
  --node-budget <n>   stop after n enumeration nodes (same partial semantics)
  --threads <n>       worker threads for --algo farmer (default 1)
  --memo-capacity <n> shared prune/memo table slots for --algo farmer
                      (default 0 = off; workers skip subtrees any worker
                      already closed)
  --progress          heartbeat progress lines on stderr
  --stats-json        machine-readable run report (JSON) instead of text
  --json/--html <p>   write the full result to a file
  --trace-out <p>     record phase spans, write a Chrome trace-event JSON
                      (load chrome://tracing or ui.perfetto.dev)
  --metrics-out <p>   write Prometheus text-format metrics for the run
  --limit <n>         print at most n groups (0 = all, default 20)
  --save-irgs <p>     persist the mined rule groups as a .fgi artifact
  --fgi-version <n>   .fgi format for --save-irgs: 2 = compact (default),
                      1 = legacy (older readers)
  --watch             stay running after the mine: watch a row journal
                      and republish the --save-irgs artifact on deltas
  --journal <p>       the .fgd journal to watch (default: artifact path
                      with a .fgd extension)
  --remine-debounce-ms <n>  quiet window before a remine (default 500)
  --notify-url <h:p>  POST /v1/admin/reload on this server per publish
  --notify-token <t>  bearer token for --notify-url
  --watch-idle-exit-ms <n>  exit the watch after n ms without activity

SERVE OPTIONS (farmer serve <artifact.fgi>):
  --addr <host:port>  bind address (default 127.0.0.1:0 = ephemeral,
                      resolved port printed on startup)
  --workers <n>       worker-pool size (default 4)
  --idle-exit-ms <n>  exit cleanly after n ms without traffic
  --max-inflight <n>  shed connections beyond n in flight with 503 +
                      Retry-After (default 256)
  --admin-token <t>   enable POST /v1/admin/reload and GET /v1/admin/stats
                      with this bearer token
  --log-out <p>       structured JSON access log: a file path, or - for
                      stderr (default: disabled, zero request-path cost)
  --slow-ms <n>       capture requests >= n ms in the /v1/admin/stats
                      slow ring with phase breakdown (default 100; 0 =
                      capture every request)
  --watch             run the ingest->remine->publish pipeline in-process:
                      enables POST /v1/admin/ingest and hot-swaps the
                      artifact after each remine (requires --base)
  --base <p>          transaction file the artifact was mined from
  --journal <p>       the .fgd row journal (default: artifact path with
                      a .fgd extension)
  --remine-debounce-ms <n>  quiet window before a remine (default 500)
  --min-sup/--min-conf/--min-chi/--class/--no-lower-bounds
                      remine thresholds; match the original mine flags
  endpoints (all under /v1/; unversioned paths are deprecated aliases):
    /v1/classify?items=a,b          GET single sample
    /v1/classify                    POST {\"samples\":[[..],..]} batch
    /v1/query?items=a,b[&class=k][&limit=n]
    /v1/healthz  /v1/metrics (Prometheus text)
    /v1/admin/reload                POST, bearer-authenticated hot swap
    /v1/admin/stats                 GET, bearer-authenticated live stats
    /v1/admin/ingest                POST {\"rows\":[{\"items\":[..],\"label\":k}]}
                                    bearer-authenticated, --watch only
  every response carries X-Request-Id; SIGHUP also hot-reloads the
  artifact from disk.

QUERY OPTIONS (farmer query <artifact.fgi>):
  --items <a,b,c>     sample items, by name or numeric id
  --class <k>         only show matching groups of one class
  --limit <n>         print at most n matching groups (default 10)

INGEST OPTIONS (farmer ingest):
  --journal <p>       the .fgd journal to append to (required; created
                      if absent)
  --base <p>          transaction file that defines items/classes
                      (required; rows are validated against it)
  --items <a,b,c>     items of one inline row (names or numeric ids)
  --label <k>         class label of the inline row
  --rows <p>          append many rows: one `<label>: <item> …` line
                      each (transaction-file shape)

`farmer topk` also honors --timeout-ms.

Run `farmer <COMMAND> --help` for the command's options.";

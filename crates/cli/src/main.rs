//! `farmer` — command-line interface to the FARMER suite.

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let stdout = std::io::stdout();
    let mut lock = stdout.lock();
    match farmer_cli::run(&argv, &mut lock) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

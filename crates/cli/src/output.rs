//! Serializable result shapes for `--json` and `--stats-json` output.

use farmer_core::trace::{trace_stats_json, TraceReport};
use farmer_core::{MineStats, PruneReason, RuleGroup, SchedStats};
use farmer_dataset::Dataset;
use farmer_support::json::{Json, ObjBuilder};

/// JSON shape of one mined rule group.
#[derive(Debug)]
pub struct GroupJson {
    /// Upper-bound antecedent, as item display names.
    pub upper: Vec<String>,
    /// Lower bounds, each as item display names.
    pub lower: Vec<Vec<String>>,
    /// Consequent class name.
    pub class: String,
    /// Rule support `|R(A ∪ C)|`.
    pub support: usize,
    /// Confidence in `[0, 1]`.
    pub confidence: f64,
    /// χ² value.
    pub chi_square: f64,
    /// Lift.
    pub lift: f64,
    /// Rows (by index) matching the antecedent.
    pub rows: Vec<usize>,
}

impl GroupJson {
    /// Converts a mined group into its JSON shape using the dataset's
    /// display names.
    pub fn from_group(g: &RuleGroup, data: &Dataset) -> Self {
        let names = |items: &rowset::IdList| -> Vec<String> {
            items
                .iter()
                .map(|i| data.item_name(i).to_string())
                .collect()
        };
        GroupJson {
            upper: names(&g.upper),
            lower: g.lower.iter().map(&names).collect(),
            class: data.class_name(g.class).to_string(),
            support: g.sup,
            confidence: g.confidence(),
            chi_square: g.chi_square(),
            lift: g.lift(),
            rows: g.support_set.to_vec(),
        }
    }

    /// Serializes into a [`Json`] value.
    pub fn to_json(&self) -> Json {
        let strings =
            |xs: &[String]| Json::Arr(xs.iter().map(|s| Json::from(s.as_str())).collect());
        ObjBuilder::new()
            .field("upper", strings(&self.upper))
            .field(
                "lower",
                Json::Arr(self.lower.iter().map(|l| strings(l)).collect()),
            )
            .field("class", self.class.as_str())
            .field("support", self.support)
            .field("confidence", self.confidence)
            .field("chi_square", self.chi_square)
            .field("lift", self.lift)
            .field(
                "rows",
                Json::Arr(self.rows.iter().map(|&r| Json::from(r)).collect()),
            )
            .build()
    }
}

/// JSON shape of a whole mining run.
#[derive(Debug)]
pub struct MineJson {
    /// Dataset dimensions `(rows, items)`.
    pub n_rows: usize,
    /// Item count.
    pub n_items: usize,
    /// Number of interesting rule groups.
    pub n_groups: usize,
    /// Search nodes visited.
    pub nodes_visited: u64,
    /// The groups, ranked.
    pub groups: Vec<GroupJson>,
}

impl MineJson {
    /// Serializes into a [`Json`] value.
    pub fn to_json(&self) -> Json {
        ObjBuilder::new()
            .field("n_rows", self.n_rows)
            .field("n_items", self.n_items)
            .field("n_groups", self.n_groups)
            .field("nodes_visited", self.nodes_visited)
            .field(
                "groups",
                Json::Arr(self.groups.iter().map(GroupJson::to_json).collect()),
            )
            .build()
    }
}

/// The `--stats-json` report: what one mining session did, in a stable
/// machine-readable shape (counters from [`MineStats`], the stop cause,
/// wall time, and a `scheduler` object from [`SchedStats`] — the latter
/// is observability, not a result: under parallel work stealing its
/// numbers vary run to run).
pub fn stats_json(
    algo: &str,
    stats: &MineStats,
    sched: &SchedStats,
    n_groups: usize,
    elapsed_ms: u64,
    trace: Option<&TraceReport>,
) -> Json {
    // one `pruned` key per PruneReason variant, by iterating the
    // exhaustive list — adding a variant extends this report for free
    let mut pruned = ObjBuilder::new();
    for r in PruneReason::ALL {
        pruned = pruned.field(r.stats_key(), stats.pruned_count(r));
    }
    ObjBuilder::new()
        .field("algo", algo)
        .field("stop", stats.stop.as_str())
        .field("truncated", Json::Bool(stats.budget_exhausted))
        .field("n_groups", n_groups)
        .field("nodes_visited", stats.nodes_visited)
        .field("elapsed_ms", elapsed_ms)
        .field("pruned", pruned.build())
        .field("rows_compressed", stats.rows_compressed)
        .field(
            "scheduler",
            ObjBuilder::new()
                .field("steals", sched.steals)
                .field(
                    "worker_nodes",
                    Json::Arr(sched.worker_nodes.iter().map(|&n| Json::from(n)).collect()),
                )
                .field("peak_arena_depth", sched.peak_arena_depth)
                .build(),
        )
        .field(
            "memo",
            ObjBuilder::new()
                .field("capacity", sched.memo.capacity)
                .field("probes", sched.memo.probes)
                .field("hits", sched.memo.hits)
                .field("misses", sched.memo.misses)
                .field("inserts", sched.memo.inserts)
                .field("collisions", sched.memo.collisions)
                .build(),
        )
        .field(
            "trace",
            match trace {
                Some(report) => trace_stats_json(report),
                None => Json::Null,
            },
        )
        .build()
}

/// Renders a self-contained HTML report of a mining run — the
/// shareable artifact a wet-lab collaborator can open without tooling.
pub fn render_html(title: &str, mine: &MineJson) -> String {
    let mut rows = String::new();
    for (i, g) in mine.groups.iter().enumerate() {
        let lows: Vec<String> = g.lower.iter().take(4).map(|l| l.join(" ")).collect();
        let more = if g.lower.len() > 4 {
            format!(" (+{} more)", g.lower.len() - 4)
        } else {
            String::new()
        };
        rows.push_str(&format!(
            "<tr><td>{}</td><td>{}</td><td class=\"num\">{}</td>\
             <td class=\"num\">{:.1}%</td><td class=\"num\">{:.2}</td>\
             <td class=\"num\">{:.2}</td><td class=\"items\">{}</td>\
             <td class=\"items\">{}{}</td></tr>\n",
            i + 1,
            esc(&g.class),
            g.support,
            g.confidence * 100.0,
            g.chi_square,
            g.lift,
            esc(&g.upper.join(" ")),
            esc(&lows.join(" | ")),
            more,
        ));
    }
    format!(
        "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\
         <title>{title}</title><style>\
         body{{font-family:system-ui,sans-serif;margin:2rem;color:#222}}\
         table{{border-collapse:collapse;width:100%}}\
         th,td{{border:1px solid #ccc;padding:4px 8px;text-align:left;vertical-align:top}}\
         th{{background:#f0f0f0}}.num{{text-align:right}}\
         .items{{font-family:monospace;font-size:0.85em;max-width:30rem;word-break:break-all}}\
         </style></head><body>\
         <h1>{title}</h1>\
         <p>{n_groups} interesting rule groups over {n_rows} samples × {n_items} items \
         ({nodes} search nodes).</p>\
         <table><thead><tr><th>#</th><th>class</th><th>support</th><th>confidence</th>\
         <th>χ²</th><th>lift</th><th>upper bound</th><th>lower bounds</th></tr></thead>\
         <tbody>\n{rows}</tbody></table></body></html>\n",
        title = esc(title),
        n_groups = mine.n_groups,
        n_rows = mine.n_rows,
        n_items = mine.n_items,
        nodes = mine.nodes_visited,
    )
}

fn esc(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;
    use farmer_core::{Farmer, MiningParams};
    use farmer_dataset::paper_example;

    #[test]
    fn html_report_renders() {
        let d = paper_example();
        let res = Farmer::new(MiningParams::new(0)).mine(&d);
        let mine = MineJson {
            n_rows: d.n_rows(),
            n_items: d.n_items(),
            n_groups: res.len(),
            nodes_visited: res.stats.nodes_visited,
            groups: res
                .groups
                .iter()
                .map(|g| GroupJson::from_group(g, &d))
                .collect(),
        };
        let html = render_html("paper <example>", &mine);
        assert!(html.starts_with("<!DOCTYPE html>"));
        assert!(html.contains("paper &lt;example&gt;"), "title escaped");
        assert!(html.contains("interesting rule groups"));
        // one table row per group
        assert_eq!(html.matches("<tr><td>").count(), mine.n_groups);
    }

    #[test]
    fn group_json_roundtrips_names() {
        let d = paper_example();
        let res = Farmer::new(MiningParams::new(0)).mine(&d);
        let g = &res.groups[0];
        let j = GroupJson::from_group(g, &d);
        assert_eq!(j.upper.len(), g.upper.len());
        assert_eq!(j.support, g.sup);
        let s = j.to_json().to_string();
        assert!(s.contains("\"confidence\""), "{s}");
        let parsed = Json::parse(&s).unwrap();
        assert_eq!(parsed["support"].as_u64(), Some(g.sup as u64));
    }
}

//! CARPENTER — closed-pattern mining by row enumeration (Pan, Cong,
//! Tung, Yang, Zaki; KDD 2003).
//!
//! FARMER's predecessor: the same depth-first traversal of row
//! combinations, but it reports *every frequent closed pattern*
//! (class-agnostic) instead of interesting rule groups, and its only
//! threshold is minimum support. Included both as lineage (§5 of the
//! FARMER paper) and because several cross-checks fall out of it: every
//! FARMER upper bound is a closed pattern, and CARPENTER must agree with
//! the column-enumeration closed-set miners (CHARM, CLOSET+) in the
//! baselines crate.

use crate::cond::{BitsetNode, CondNode};
use farmer_dataset::{Dataset, RowId};
use rowset::{IdList, RowSet};

/// A closed pattern with its support set.
#[derive(Clone, Debug, PartialEq)]
pub struct ClosedPattern {
    /// The itemset (closed: equal to `I(R(items))`).
    pub items: IdList,
    /// `R(items)` — the rows containing the pattern.
    pub rows: RowSet,
}

impl ClosedPattern {
    /// Pattern support `|R(items)|`.
    pub fn support(&self) -> usize {
        self.rows.len()
    }
}

/// Search counters for a CARPENTER run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CarpenterStats {
    /// Enumeration nodes entered.
    pub nodes_visited: u64,
    /// Nodes cut because even `|X| + |candidates|` cannot reach `min_sup`.
    pub pruned_support: u64,
    /// Nodes cut by the back-row (duplicate subtree) rule.
    pub pruned_duplicate: u64,
}

/// Result of [`carpenter`].
#[derive(Clone, Debug)]
pub struct CarpenterResult {
    /// All closed patterns with support ≥ the threshold.
    pub patterns: Vec<ClosedPattern>,
    /// Search counters.
    pub stats: CarpenterStats,
}

/// Mines all closed patterns of `data` with support ≥ `min_sup`
/// (`min_sup ≥ 1`). Class labels are ignored.
///
/// ```
/// use farmer_core::carpenter::carpenter;
/// let data = farmer_dataset::paper_example();
/// let result = carpenter(&data, 3);
/// // {a} is contained in rows r1..r4 of the paper's Figure 1
/// assert!(result
///     .patterns
///     .iter()
///     .any(|p| p.support() == 4 && p.items.len() == 1));
/// ```
pub fn carpenter(data: &Dataset, min_sup: usize) -> CarpenterResult {
    let min_sup = min_sup.max(1);
    let n = data.n_rows();
    let mut ctx = CarpCtx {
        min_sup,
        n,
        patterns: Vec::new(),
        stats: CarpenterStats::default(),
    };
    let root = BitsetNode::root(data);
    let all = RowSet::full(n);
    ctx.visit(&root, None, &RowSet::empty(n), all);
    CarpenterResult {
        patterns: ctx.patterns,
        stats: ctx.stats,
    }
}

struct CarpCtx {
    min_sup: usize,
    n: usize,
    patterns: Vec<ClosedPattern>,
    stats: CarpenterStats,
}

impl CarpCtx {
    fn visit(&mut self, node: &BitsetNode, last: Option<RowId>, counted: &RowSet, e: RowSet) {
        self.stats.nodes_visited += 1;
        let is_root = last.is_none();

        // support pruning: everything below covers at most the rows we
        // have folded in plus the remaining candidates
        if counted.len() + e.len() < self.min_sup {
            self.stats.pruned_support += 1;
            return;
        }

        // CARPENTER ignores classes; feed all candidates through the
        // positive slot of the shared scan
        let empty = RowSet::empty(self.n);
        let ins = node.inspect(&e, &empty);

        // duplicate-subtree rule (FARMER's pruning 2, CARPENTER pruning 3):
        // an uncounted row ordered before this node, present in every
        // tuple, means the subtree repeats an earlier one
        if !is_root {
            let last = last.expect("non-root") as usize;
            if ins
                .z
                .iter()
                .take_while(|&r| r < last)
                .any(|r| !counted.contains(r))
            {
                self.stats.pruned_duplicate += 1;
                return;
            }
        }

        // compression: rows in every tuple join the pattern's support.
        // Skipped at the root (which emits nothing) so a row contained in
        // every tuple of the full table still gets enumerated.
        let (next_e, counted_next) = if is_root {
            (ins.u_p.clone(), counted.clone())
        } else {
            let y = ins.z.intersection(&e);
            (ins.u_p.difference(&y), counted.union(&y))
        };

        let mut remaining = next_e.clone();
        for r in next_e.iter() {
            remaining.remove(r);
            let mut counted_child = counted_next.clone();
            counted_child.insert(r);
            self.visit(
                &node.child(r as RowId),
                Some(r as RowId),
                &counted_child,
                remaining.clone(),
            );
        }

        if !is_root && ins.z.len() >= self.min_sup {
            self.patterns.push(ClosedPattern {
                items: IdList::from_iter(node.items().iter().copied()),
                rows: ins.z,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use farmer_dataset::{paper_example, DatasetBuilder};
    use std::collections::HashSet;

    /// Closed patterns by brute force over row subsets.
    fn naive_closed(data: &Dataset, min_sup: usize) -> HashSet<(Vec<u32>, Vec<usize>)> {
        let n = data.n_rows();
        let mut out = HashSet::new();
        for mask in 1u32..(1 << n) {
            let rows = RowSet::from_ids(n, (0..n).filter(|&r| mask & (1 << r) != 0));
            let items = data.items_common_to(&rows);
            if items.is_empty() {
                continue;
            }
            let support = data.rows_supporting(&items);
            if support.len() < min_sup {
                continue;
            }
            let closed = data.items_common_to(&support);
            out.insert((closed.as_slice().to_vec(), support.to_vec()));
        }
        out
    }

    fn as_set(r: &CarpenterResult) -> HashSet<(Vec<u32>, Vec<usize>)> {
        r.patterns
            .iter()
            .map(|p| (p.items.as_slice().to_vec(), p.rows.to_vec()))
            .collect()
    }

    #[test]
    fn matches_brute_force_on_paper_example() {
        let d = paper_example();
        for min_sup in 1..=4 {
            let got = carpenter(&d, min_sup);
            assert_eq!(as_set(&got), naive_closed(&d, min_sup), "min_sup={min_sup}");
            // no duplicates emitted
            assert_eq!(got.patterns.len(), as_set(&got).len());
        }
    }

    #[test]
    fn all_patterns_are_closed() {
        let d = paper_example();
        for p in carpenter(&d, 1).patterns {
            assert_eq!(d.items_common_to(&p.rows), p.items);
            assert_eq!(d.rows_supporting(&p.items), p.rows);
            assert_eq!(p.support(), p.rows.len());
        }
    }

    #[test]
    fn support_threshold_respected() {
        let d = paper_example();
        let r = carpenter(&d, 3);
        assert!(r.patterns.iter().all(|p| p.support() >= 3));
        // item 'a' occurs in rows 0..=3: pattern {a} must be found
        let a = d.item_by_name("a").unwrap();
        assert!(r.patterns.iter().any(|p| p.items == IdList::from_iter([a])));
    }

    #[test]
    fn duplicate_rows_handled() {
        let mut b = DatasetBuilder::new(1);
        b.add_row_named(&["x", "y"], 0);
        b.add_row_named(&["x", "y"], 0);
        b.add_row_named(&["y", "z"], 0);
        let d = b.build();
        let r = carpenter(&d, 1);
        assert_eq!(as_set(&r), naive_closed(&d, 1));
    }

    #[test]
    fn single_row_dataset() {
        // regression: a row contained in every tuple of the root table
        // must not be compressed away before any pattern is emitted
        let mut b = DatasetBuilder::new(1);
        b.add_row_named(&["x", "y", "z"], 0);
        let d = b.build();
        let r = carpenter(&d, 1);
        assert_eq!(r.patterns.len(), 1);
        assert_eq!(r.patterns[0].items.len(), 3);
        assert_eq!(r.patterns[0].support(), 1);
        assert_eq!(as_set(&r), naive_closed(&d, 1));
    }

    #[test]
    fn pruning_counters_move() {
        let d = paper_example();
        let r = carpenter(&d, 4);
        assert!(r.stats.nodes_visited > 0);
        assert!(r.stats.pruned_support > 0);
    }
}

//! COBBLER — combined row and column enumeration for closed-pattern
//! mining (Pan, Tung, Cong, Xu; SSDBM 2004).
//!
//! CARPENTER's row enumeration wins when rows are few; classic column
//! enumeration wins when columns are few. COBBLER switches between the
//! two *dynamically*, per search context, using an estimate of the cost
//! of each direction — the right tool for tables that are large in both
//! dimensions.
//!
//! The column side here is a prefix-preserving closure extension (LCM
//! style): each closed set is reached from its canonical parent only, so
//! the pure-column policy is itself a correct closed-set miner. At any
//! context the search may instead hand the context's row set to
//! [`carpenter`] (row enumeration), which yields every closed set whose
//! support lies inside that row set — a superset of what the column
//! subtree would have produced, deduplicated on output.
//!
//! The switch estimate follows the paper's idea of comparing *estimated
//! deepest enumeration levels*: each direction's expected depth is
//! computed from the decay of candidate supports (columns) or row
//! densities (rows), and the direction with the cheaper
//! `depth · log(branching)` wins.

use crate::carpenter::carpenter;
use farmer_dataset::{Dataset, ItemId};
use rowset::{IdList, RowSet};
use std::collections::HashSet;

/// How COBBLER chooses the enumeration direction at each context.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SwitchPolicy {
    /// Compare the cost estimates (the algorithm proper).
    #[default]
    Auto,
    /// Never switch: pure prefix-preserving column enumeration.
    ColumnsOnly,
    /// Switch at the root: pure row enumeration (CARPENTER).
    RowsOnly,
    /// Switch whenever the context has at most this many rows.
    RowThreshold(usize),
}

/// A closed pattern with its support count.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CobblerPattern {
    /// The closed itemset.
    pub items: IdList,
    /// `|R(items)|`.
    pub support: usize,
}

/// Search counters.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CobblerStats {
    /// Column-extension nodes visited.
    pub column_nodes: u64,
    /// Contexts handed to row enumeration.
    pub switches: u64,
    /// Duplicate emissions suppressed (only possible after a switch).
    pub deduped: u64,
}

/// Result of [`cobbler`].
#[derive(Clone, Debug)]
pub struct CobblerResult {
    /// All closed patterns with support ≥ the threshold.
    pub patterns: Vec<CobblerPattern>,
    /// Search counters.
    pub stats: CobblerStats,
}

/// Mines all closed patterns of `data` with support ≥ `min_sup` using
/// the given switch policy.
///
/// ```
/// use farmer_core::cobbler::{cobbler, SwitchPolicy};
/// let data = farmer_dataset::paper_example();
/// let auto = cobbler(&data, 2, SwitchPolicy::Auto);
/// let cols = cobbler(&data, 2, SwitchPolicy::ColumnsOnly);
/// assert_eq!(auto.patterns.len(), cols.patterns.len());
/// ```
pub fn cobbler(data: &Dataset, min_sup: usize, policy: SwitchPolicy) -> CobblerResult {
    let min_sup = min_sup.max(1);
    let mut ctx = CobCtx {
        data,
        min_sup,
        policy,
        seen: HashSet::new(),
        patterns: Vec::new(),
        stats: CobblerStats::default(),
    };
    let all_rows = RowSet::full(data.n_rows());
    if data.n_rows() >= min_sup {
        let root_closure = data.items_common_to(&all_rows);
        if !root_closure.is_empty() {
            ctx.emit(root_closure.clone(), data.n_rows());
        }
        ctx.expand(&root_closure, &all_rows, 0);
    }
    CobblerResult {
        patterns: ctx.patterns,
        stats: ctx.stats,
    }
}

struct CobCtx<'a> {
    data: &'a Dataset,
    min_sup: usize,
    policy: SwitchPolicy,
    seen: HashSet<IdList>,
    patterns: Vec<CobblerPattern>,
    stats: CobblerStats,
}

impl CobCtx<'_> {
    fn emit(&mut self, items: IdList, support: usize) {
        if self.seen.insert(items.clone()) {
            self.patterns.push(CobblerPattern { items, support });
        } else {
            self.stats.deduped += 1;
        }
    }

    /// Expands the context `(Q = closure so far, rows = R(Q))` with
    /// candidate items `>= min_next`.
    fn expand(&mut self, q: &IdList, rows: &RowSet, min_next: ItemId) {
        // candidate items with enough support inside the context
        let cands: Vec<(ItemId, usize)> = (min_next..self.data.n_items() as ItemId)
            .filter(|i| !q.contains(*i))
            .filter_map(|i| {
                let sup = rows.intersection_len(self.data.item_rows(i));
                (sup >= self.min_sup).then_some((i, sup))
            })
            .collect();
        if cands.is_empty() {
            return;
        }

        if self.should_switch(rows, &cands) {
            // row enumeration covers every closed set supported inside
            // this context's rows (a superset of the column subtree)
            self.stats.switches += 1;
            let row_ids: Vec<u32> = rows.iter().map(|r| r as u32).collect();
            let sub = self.data.subset(&row_ids);
            for p in carpenter(&sub, self.min_sup).patterns {
                let support = p.rows.len();
                self.emit(p.items, support);
            }
            return;
        }

        for &(c, _) in &cands {
            self.stats.column_nodes += 1;
            let child_rows = rows.intersection(self.data.item_rows(c));
            let closure = self.data.items_common_to(&child_rows);
            // prefix-preserving check: the closure may only add items
            // >= c beyond Q; otherwise this closed set belongs to an
            // earlier subtree (LCM canonicity)
            let violates = closure.iter().any(|i| i < c && !q.contains(i));
            if violates {
                continue;
            }
            self.emit(closure.clone(), child_rows.len());
            self.expand(&closure, &child_rows, c + 1);
        }
    }

    /// Decides the direction for a context.
    fn should_switch(&self, rows: &RowSet, cands: &[(ItemId, usize)]) -> bool {
        match self.policy {
            SwitchPolicy::ColumnsOnly => false,
            SwitchPolicy::RowsOnly => true,
            SwitchPolicy::RowThreshold(t) => rows.len() <= t,
            SwitchPolicy::Auto => {
                let n_rows = rows.len();
                let n_cands = cands.len();
                if n_rows <= 1 || n_cands <= 1 {
                    return n_rows < n_cands;
                }
                // estimated deepest column level: multiply the candidate
                // support ratios (descending) until the expected support
                // drops below min_sup
                let mut ratios: Vec<f64> = cands
                    .iter()
                    .map(|&(_, s)| s as f64 / n_rows as f64)
                    .collect();
                ratios.sort_by(|a, b| b.partial_cmp(a).expect("finite"));
                let mut expected = n_rows as f64;
                let mut col_depth = 0usize;
                for r in &ratios {
                    expected *= r;
                    if expected < self.min_sup as f64 {
                        break;
                    }
                    col_depth += 1;
                }
                // estimated deepest row level: multiply the row densities
                // (descending) until no shared candidate item is expected
                let mut densities: Vec<f64> = rows
                    .iter()
                    .map(|r| {
                        let row_items = self.data.row(r as u32);
                        let shared = cands
                            .iter()
                            .filter(|&&(i, _)| row_items.contains(i))
                            .count();
                        shared as f64 / n_cands as f64
                    })
                    .collect();
                densities.sort_by(|a, b| b.partial_cmp(a).expect("finite"));
                let mut expected_items = n_cands as f64;
                let mut row_depth = 0usize;
                for d in &densities {
                    expected_items *= d;
                    if expected_items < 1.0 {
                        break;
                    }
                    row_depth += 1;
                }
                // compare log-costs: depth * log(branching)
                let col_cost = col_depth as f64 * (n_cands as f64).ln_1p();
                let row_cost = row_depth as f64 * (n_rows as f64).ln_1p();
                row_cost < col_cost
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use farmer_dataset::{paper_example, DatasetBuilder};
    use farmer_support::rng::{Rng, SeedableRng, StdRng};

    fn canon(r: &CobblerResult) -> Vec<(Vec<u32>, usize)> {
        let mut v: Vec<(Vec<u32>, usize)> = r
            .patterns
            .iter()
            .map(|p| (p.items.as_slice().to_vec(), p.support))
            .collect();
        v.sort();
        v
    }

    fn canon_carp(d: &Dataset, min_sup: usize) -> Vec<(Vec<u32>, usize)> {
        let mut v: Vec<(Vec<u32>, usize)> = carpenter(d, min_sup)
            .patterns
            .iter()
            .map(|p| (p.items.as_slice().to_vec(), p.rows.len()))
            .collect();
        v.sort();
        v
    }

    fn policies() -> [SwitchPolicy; 5] {
        [
            SwitchPolicy::Auto,
            SwitchPolicy::ColumnsOnly,
            SwitchPolicy::RowsOnly,
            SwitchPolicy::RowThreshold(3),
            SwitchPolicy::RowThreshold(1000),
        ]
    }

    #[test]
    fn all_policies_agree_with_carpenter_on_paper_example() {
        let d = paper_example();
        for min_sup in 1..=4 {
            let want = canon_carp(&d, min_sup);
            for policy in policies() {
                let got = cobbler(&d, min_sup, policy);
                assert_eq!(canon(&got), want, "min_sup={min_sup} policy={policy:?}");
            }
        }
    }

    #[test]
    fn all_policies_agree_on_random_data() {
        let mut rng = StdRng::seed_from_u64(77);
        for trial in 0..12 {
            let mut b = DatasetBuilder::new(1);
            let n_rows = rng.gen_range(3..=9);
            let n_items = rng.gen_range(4..=12);
            for _ in 0..n_rows {
                let items: Vec<u32> = (0..n_items as u32).filter(|_| rng.gen_bool(0.5)).collect();
                b.add_row(items, 0);
            }
            let d = b.build();
            let min_sup = rng.gen_range(1..=3);
            let want = canon_carp(&d, min_sup);
            for policy in policies() {
                let got = cobbler(&d, min_sup, policy);
                assert_eq!(canon(&got), want, "trial={trial} policy={policy:?}");
            }
        }
    }

    #[test]
    fn outputs_are_closed_and_unique() {
        let d = paper_example();
        let r = cobbler(&d, 1, SwitchPolicy::Auto);
        let mut seen = std::collections::HashSet::new();
        for p in &r.patterns {
            assert!(seen.insert(p.items.clone()), "duplicate {:?}", p.items);
            let support = d.rows_supporting(&p.items);
            assert_eq!(support.len(), p.support);
            assert_eq!(d.items_common_to(&support), p.items);
        }
    }

    #[test]
    fn columns_only_never_switches() {
        let d = paper_example();
        let r = cobbler(&d, 1, SwitchPolicy::ColumnsOnly);
        assert_eq!(r.stats.switches, 0);
        assert_eq!(r.stats.deduped, 0, "pure LCM never duplicates");
        assert!(r.stats.column_nodes > 0);
    }

    #[test]
    fn rows_only_switches_once() {
        let d = paper_example();
        let r = cobbler(&d, 1, SwitchPolicy::RowsOnly);
        assert_eq!(r.stats.switches, 1);
        assert_eq!(r.stats.column_nodes, 0);
    }

    #[test]
    fn wide_table_auto_switches() {
        // microarray shape: 6 rows, 40 items -> rows are the cheap side
        let mut rng = StdRng::seed_from_u64(5);
        let mut b = DatasetBuilder::new(1);
        for _ in 0..6 {
            let items: Vec<u32> = (0..40u32).filter(|_| rng.gen_bool(0.6)).collect();
            b.add_row(items, 0);
        }
        let d = b.build();
        let r = cobbler(&d, 2, SwitchPolicy::Auto);
        assert!(r.stats.switches > 0, "{:?}", r.stats);
        assert_eq!(canon(&r), canon_carp(&d, 2));
    }
}

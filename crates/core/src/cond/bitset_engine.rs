//! Bitset-backed conditional transposed tables.

use super::{CondNode, Inspect};
use farmer_dataset::{Dataset, ItemId, RowId};
use rowset::RowSet;

/// Conditional table whose tuples are the per-item row bitsets of the
/// dataset.
///
/// The node only stores *which* items survive (`I(X)`); tuple contents
/// are **borrowed** from the dataset's own column store
/// ([`Dataset::item_row_sets`]), so building a root copies nothing and a
/// single root can be shared by reference across worker threads. `child`
/// costs one pass over the current item list and no row copying. All
/// scans are word-parallel over rows via the fused
/// [`RowSet::fused_scan`] kernel, which is the sweet spot for the
/// microarray shape (hundreds of rows, tens of thousands of items).
pub struct BitsetNode<'a> {
    tuples: &'a [RowSet],
    items: Vec<ItemId>,
    n_rows: usize,
}

impl<'a> BitsetNode<'a> {
    /// Root node: all items of the (already `ORD`-reordered) dataset,
    /// borrowing its column bitsets in place.
    pub fn root(data: &'a Dataset) -> Self {
        let tuples = data.item_row_sets();
        BitsetNode {
            items: (0..tuples.len() as ItemId).collect(),
            tuples,
            n_rows: data.n_rows(),
        }
    }
}

impl CondNode for BitsetNode<'_> {
    fn items(&self) -> &[ItemId] {
        &self.items
    }

    fn n_rows(&self) -> usize {
        self.n_rows
    }

    fn clone_shell(&self) -> Self {
        BitsetNode {
            tuples: self.tuples,
            items: Vec::new(),
            n_rows: self.n_rows,
        }
    }

    fn inspect_into(&self, e_p: &RowSet, e_n: &RowSet, out: &mut Inspect) {
        // u_n doubles as the `occur` accumulator during the sweep; the
        // final u_p/u_n split happens once at the end.
        out.z.make_full();
        out.u_n.clear();
        let mut max_ep = 0usize;
        for &i in &self.items {
            let t = &self.tuples[i as usize];
            max_ep = max_ep.max(RowSet::fused_scan(&mut out.z, &mut out.u_n, t, e_p));
        }
        out.u_p.copy_from(&out.u_n);
        out.u_p.intersect_with(e_p);
        out.u_n.intersect_with(e_n);
        out.max_ep_tuple = max_ep;
    }

    fn child_into(&self, r: RowId, out: &mut Self) {
        out.items.clear();
        out.items.extend(
            self.items
                .iter()
                .copied()
                .filter(|&i| self.tuples[i as usize].contains(r as usize)),
        );
        debug_assert!(
            !out.items.is_empty(),
            "child({r}) has no tuples; r was not a candidate"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use farmer_dataset::paper_example;

    #[test]
    fn root_and_child_items() {
        let d = paper_example();
        let root = BitsetNode::root(&d);
        assert_eq!(root.items().len(), d.n_items());
        // child on row 1 (paper r2): items of r2 = {a,d,e,h,p,l,r}
        let c = root.child(1);
        let names: Vec<&str> = c.items().iter().map(|&i| d.item_name(i)).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec!["a", "d", "e", "h", "l", "p", "r"]);
        // grandchild {r2, r3}: I = {a,e,h}
        let g = c.child(2);
        let mut names: Vec<&str> = g.items().iter().map(|&i| d.item_name(i)).collect();
        names.sort_unstable();
        assert_eq!(names, vec!["a", "e", "h"]);
    }

    #[test]
    fn inspect_z_is_row_support_of_items() {
        let d = paper_example();
        let node = BitsetNode::root(&d).child(1).child(2); // I = {a,e,h}
        let e_p = RowSet::empty(5);
        let e_n = RowSet::from_ids(5, [3, 4]);
        let ins = node.inspect(&e_p, &e_n);
        // R({a,e,h}) = rows 1,2,3 (paper r2,r3,r4)
        assert_eq!(ins.z.to_vec(), vec![1, 2, 3]);
        // candidate row 3 occurs in all three tuples -> in u_n
        assert_eq!(ins.u_n.to_vec(), vec![3]);
        assert!(ins.u_p.is_empty());
        assert_eq!(ins.max_ep_tuple, 0);
    }

    #[test]
    fn inspect_counts_max_positive_tuple() {
        let d = paper_example();
        let root = BitsetNode::root(&d);
        let e_p = RowSet::from_ids(5, [0, 1, 2]);
        let e_n = RowSet::from_ids(5, [3, 4]);
        let ins = root.inspect(&e_p, &e_n);
        // tuple 'a' holds rows {0,1,2,3}: three positive candidates
        assert_eq!(ins.max_ep_tuple, 3);
        // every row has at least one item
        assert_eq!(ins.u_p.len(), 3);
        assert_eq!(ins.u_n.len(), 2);
        // no row contains every item
        assert!(ins.z.is_empty());
    }

    #[test]
    fn inspect_into_reuses_dirty_buffers() {
        let d = paper_example();
        let root = BitsetNode::root(&d);
        let e_p = RowSet::from_ids(5, [0, 1, 2]);
        let e_n = RowSet::from_ids(5, [3, 4]);
        let fresh = root.inspect(&e_p, &e_n);
        // refill a buffer left dirty by a different node's scan
        let mut buf = root.child(1).inspect(&e_p, &e_n);
        root.inspect_into(&e_p, &e_n, &mut buf);
        assert_eq!(buf.z, fresh.z);
        assert_eq!(buf.u_p, fresh.u_p);
        assert_eq!(buf.u_n, fresh.u_n);
        assert_eq!(buf.max_ep_tuple, fresh.max_ep_tuple);
    }

    #[test]
    fn root_borrows_dataset_columns() {
        let d = paper_example();
        let root = BitsetNode::root(&d);
        assert!(std::ptr::eq(
            root.tuples.as_ptr(),
            d.item_row_sets().as_ptr()
        ));
    }
}

//! Bitset-backed conditional transposed tables.

use super::{CondNode, Inspect};
use farmer_dataset::{Dataset, ItemId, RowId};
use rowset::RowSet;
use std::rc::Rc;

/// Conditional table whose tuples are the per-item row bitsets of the
/// dataset.
///
/// The node only stores *which* items survive (`I(X)`); tuple contents
/// are shared via `Rc` with every other node, so `child` costs one pass
/// over the current item list and no row copying. All scans are
/// word-parallel over rows, which is the sweet spot for the microarray
/// shape (hundreds of rows, tens of thousands of items).
pub struct BitsetNode {
    tuples: Rc<Vec<RowSet>>,
    items: Vec<ItemId>,
    n_rows: usize,
}

impl BitsetNode {
    /// Root node: all items of the (already `ORD`-reordered) dataset.
    pub fn root(data: &Dataset) -> Self {
        let tuples: Vec<RowSet> = (0..data.n_items() as ItemId)
            .map(|i| data.item_rows(i).clone())
            .collect();
        BitsetNode {
            items: (0..tuples.len() as ItemId).collect(),
            tuples: Rc::new(tuples),
            n_rows: data.n_rows(),
        }
    }
}

impl CondNode for BitsetNode {
    fn items(&self) -> &[ItemId] {
        &self.items
    }

    fn inspect(&self, e_p: &RowSet, e_n: &RowSet) -> Inspect {
        let mut z = RowSet::full(self.n_rows);
        let mut occur = RowSet::empty(self.n_rows);
        let mut max_ep = 0usize;
        for &i in &self.items {
            let t = &self.tuples[i as usize];
            z.intersect_with(t);
            occur.union_with(t);
            max_ep = max_ep.max(t.intersection_len(e_p));
        }
        Inspect {
            u_p: occur.intersection(e_p),
            u_n: occur.intersection(e_n),
            z,
            max_ep_tuple: max_ep,
        }
    }

    fn child(&self, r: RowId) -> Self {
        let items: Vec<ItemId> = self
            .items
            .iter()
            .copied()
            .filter(|&i| self.tuples[i as usize].contains(r as usize))
            .collect();
        debug_assert!(
            !items.is_empty(),
            "child({r}) has no tuples; r was not a candidate"
        );
        BitsetNode {
            tuples: Rc::clone(&self.tuples),
            items,
            n_rows: self.n_rows,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use farmer_dataset::paper_example;

    #[test]
    fn root_and_child_items() {
        let d = paper_example();
        let root = BitsetNode::root(&d);
        assert_eq!(root.items().len(), d.n_items());
        // child on row 1 (paper r2): items of r2 = {a,d,e,h,p,l,r}
        let c = root.child(1);
        let names: Vec<&str> = c.items().iter().map(|&i| d.item_name(i)).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec!["a", "d", "e", "h", "l", "p", "r"]);
        // grandchild {r2, r3}: I = {a,e,h}
        let g = c.child(2);
        let mut names: Vec<&str> = g.items().iter().map(|&i| d.item_name(i)).collect();
        names.sort_unstable();
        assert_eq!(names, vec!["a", "e", "h"]);
    }

    #[test]
    fn inspect_z_is_row_support_of_items() {
        let d = paper_example();
        let node = BitsetNode::root(&d).child(1).child(2); // I = {a,e,h}
        let e_p = RowSet::empty(5);
        let e_n = RowSet::from_ids(5, [3, 4]);
        let ins = node.inspect(&e_p, &e_n);
        // R({a,e,h}) = rows 1,2,3 (paper r2,r3,r4)
        assert_eq!(ins.z.to_vec(), vec![1, 2, 3]);
        // candidate row 3 occurs in all three tuples -> in u_n
        assert_eq!(ins.u_n.to_vec(), vec![3]);
        assert!(ins.u_p.is_empty());
        assert_eq!(ins.max_ep_tuple, 0);
    }

    #[test]
    fn inspect_counts_max_positive_tuple() {
        let d = paper_example();
        let root = BitsetNode::root(&d);
        let e_p = RowSet::from_ids(5, [0, 1, 2]);
        let e_n = RowSet::from_ids(5, [3, 4]);
        let ins = root.inspect(&e_p, &e_n);
        // tuple 'a' holds rows {0,1,2,3}: three positive candidates
        assert_eq!(ins.max_ep_tuple, 3);
        // every row has at least one item
        assert_eq!(ins.u_p.len(), 3);
        assert_eq!(ins.u_n.len(), 2);
        // no row contains every item
        assert!(ins.z.is_empty());
    }
}

//! Conditional transposed tables `TT|X` — the per-node state of the row
//! enumeration.
//!
//! A node of the enumeration tree is a row combination `X`; its
//! conditional transposed table holds the tuples (items) common to every
//! row of `X`, i.e. exactly `I(X)` (Definition 3.1). The search needs
//! three things from the table at each node, bundled in [`Inspect`]:
//!
//! * `z = R(I(X))` — every row occurring in all tuples (this gives the
//!   exact support counts and feeds pruning strategy 2);
//! * `u_p`/`u_n` — the enumeration candidates occurring in at least one
//!   tuple (candidates outside `u` lead to `I = ∅` nodes and are the
//!   "implicit pruning" of step 6);
//! * `max_ep_tuple` — the largest number of positive candidates found
//!   together in a single tuple, which yields the tight support bound
//!   `Us1` of pruning strategy 3.
//!
//! Two interchangeable engines implement this interface:
//! [`BitsetNode`] (tuples as row bitsets, word-parallel scans) and
//! [`PointerNode`] (the paper's §3.3 in-memory transposed table with
//! conditional pointer lists). They traverse identical trees and must
//! produce identical results; the test suite enforces this.

mod bitset_engine;
mod pointer_engine;

pub use bitset_engine::BitsetNode;
pub use pointer_engine::PointerNode;

use farmer_dataset::{ItemId, RowId};
use rowset::RowSet;

/// What a node scan reports about `TT|X`.
///
/// An `Inspect` doubles as a reusable buffer: the miner's scratch arena
/// keeps one per recursion depth and refills it through
/// [`CondNode::inspect_into`], so steady-state enumeration never
/// allocates for scan results. Construct fresh ones with
/// [`Inspect::new`].
#[derive(Clone, Debug)]
pub struct Inspect {
    /// Rows occurring in **every** tuple: `R(I(X))`. When the table has
    /// no tuples (only possible at the root of an itemless dataset) this
    /// is the full row set by the empty-intersection convention.
    pub z: RowSet,
    /// Positive candidates occurring in at least one tuple.
    pub u_p: RowSet,
    /// Negative candidates occurring in at least one tuple.
    pub u_n: RowSet,
    /// `MAX(|EP ∩ t|)` over tuples `t` — the tight support headroom.
    pub max_ep_tuple: usize,
    /// Pointer-engine scratch: per-row tuple-occurrence counts, resized
    /// lazily on first use so bitset scans never pay for it. Kept inside
    /// the buffer (rather than the node) so recycling an `Inspect`
    /// recycles the counts with it.
    pub(crate) counts: Vec<u32>,
}

impl Inspect {
    /// An empty scan buffer over `n_rows` rows, ready for
    /// [`CondNode::inspect_into`].
    pub fn new(n_rows: usize) -> Self {
        Inspect {
            z: RowSet::empty(n_rows),
            u_p: RowSet::empty(n_rows),
            u_n: RowSet::empty(n_rows),
            max_ep_tuple: 0,
            counts: Vec::new(),
        }
    }
}

/// A node's conditional transposed table.
///
/// `child_into` builds the table for `X ∪ {r}` from the current one
/// (Lemma 3.3). The `*_into` methods are the hot-path interface: they
/// write into caller-owned buffers (recycled by the miner's scratch
/// arena) so descending the tree performs no heap allocation. The
/// allocating [`inspect`](Self::inspect)/[`child`](Self::child) wrappers
/// remain for tests and one-shot callers.
pub trait CondNode: Sized {
    /// `I(X)`: the items whose tuples survived into this table. At the
    /// root this is the full item universe (the root never emits a rule).
    fn items(&self) -> &[ItemId];

    /// Number of rows of the underlying dataset (the capacity of every
    /// row set the node produces or consumes).
    fn n_rows(&self) -> usize;

    /// A node sharing this node's backing table but holding no items —
    /// a buffer for [`child_into`](Self::child_into).
    fn clone_shell(&self) -> Self;

    /// Scans the table, classifying the candidate rows into `out`.
    /// Every field of `out` is overwritten; its buffers are reused.
    fn inspect_into(&self, e_p: &RowSet, e_n: &RowSet, out: &mut Inspect);

    /// Writes the table for `X ∪ {r}` into `out`: keeps exactly the
    /// tuples containing `r`. `out` must share this node's backing table
    /// (i.e. originate from [`clone_shell`](Self::clone_shell) or a
    /// previous `child_into` in the same run).
    ///
    /// `r` must occur in at least one tuple (i.e. be in `u_p ∪ u_n` of
    /// the latest inspect).
    fn child_into(&self, r: RowId, out: &mut Self);

    /// Allocating convenience wrapper over
    /// [`inspect_into`](Self::inspect_into).
    fn inspect(&self, e_p: &RowSet, e_n: &RowSet) -> Inspect {
        let mut out = Inspect::new(self.n_rows());
        self.inspect_into(e_p, e_n, &mut out);
        out
    }

    /// Allocating convenience wrapper over
    /// [`child_into`](Self::child_into).
    fn child(&self, r: RowId) -> Self {
        let mut out = self.clone_shell();
        self.child_into(r, &mut out);
        out
    }
}

#[cfg(test)]
mod engine_agreement {
    use super::*;
    use farmer_dataset::{paper_example, TransposedTable};

    fn inspect_eq(a: &Inspect, b: &Inspect) {
        assert_eq!(a.z, b.z);
        assert_eq!(a.u_p, b.u_p);
        assert_eq!(a.u_n, b.u_n);
        assert_eq!(a.max_ep_tuple, b.max_ep_tuple);
    }

    #[test]
    fn engines_agree_on_paper_example() {
        let d = paper_example();
        let (tt, reordered, _) = TransposedTable::for_mining(&d, 0);
        let bit = BitsetNode::root(&reordered);
        let ptr = PointerNode::root(&tt);
        assert_eq!(bit.items(), ptr.items());

        let e_p = RowSet::from_ids(5, [0, 1, 2]);
        let e_n = RowSet::from_ids(5, [3, 4]);
        inspect_eq(&bit.inspect(&e_p, &e_n), &ptr.inspect(&e_p, &e_n));

        // descend to {r2} (paper row ids; 0-based id 1)
        let bit1 = bit.child(1);
        let ptr1 = ptr.child(1);
        assert_eq!(bit1.items(), ptr1.items());
        let e_p1 = RowSet::from_ids(5, [2]);
        inspect_eq(&bit1.inspect(&e_p1, &e_n), &ptr1.inspect(&e_p1, &e_n));

        // descend to {r2, r3}
        let bit2 = bit1.child(2);
        let ptr2 = ptr1.child(2);
        assert_eq!(bit2.items(), ptr2.items());
        let empty = RowSet::empty(5);
        inspect_eq(&bit2.inspect(&empty, &e_n), &ptr2.inspect(&empty, &e_n));
    }
}

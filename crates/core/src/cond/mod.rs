//! Conditional transposed tables `TT|X` — the per-node state of the row
//! enumeration.
//!
//! A node of the enumeration tree is a row combination `X`; its
//! conditional transposed table holds the tuples (items) common to every
//! row of `X`, i.e. exactly `I(X)` (Definition 3.1). The search needs
//! three things from the table at each node, bundled in [`Inspect`]:
//!
//! * `z = R(I(X))` — every row occurring in all tuples (this gives the
//!   exact support counts and feeds pruning strategy 2);
//! * `u_p`/`u_n` — the enumeration candidates occurring in at least one
//!   tuple (candidates outside `u` lead to `I = ∅` nodes and are the
//!   "implicit pruning" of step 6);
//! * `max_ep_tuple` — the largest number of positive candidates found
//!   together in a single tuple, which yields the tight support bound
//!   `Us1` of pruning strategy 3.
//!
//! Two interchangeable engines implement this interface:
//! [`BitsetNode`] (tuples as row bitsets, word-parallel scans) and
//! [`PointerNode`] (the paper's §3.3 in-memory transposed table with
//! conditional pointer lists). They traverse identical trees and must
//! produce identical results; the test suite enforces this.

mod bitset_engine;
mod pointer_engine;

pub use bitset_engine::BitsetNode;
pub use pointer_engine::PointerNode;

use farmer_dataset::{ItemId, RowId};
use rowset::RowSet;

/// What a node scan reports about `TT|X`.
#[derive(Clone, Debug)]
pub struct Inspect {
    /// Rows occurring in **every** tuple: `R(I(X))`. When the table has
    /// no tuples (only possible at the root of an itemless dataset) this
    /// is the full row set by the empty-intersection convention.
    pub z: RowSet,
    /// Positive candidates occurring in at least one tuple.
    pub u_p: RowSet,
    /// Negative candidates occurring in at least one tuple.
    pub u_n: RowSet,
    /// `MAX(|EP ∩ t|)` over tuples `t` — the tight support headroom.
    pub max_ep_tuple: usize,
}

/// A node's conditional transposed table.
///
/// Implementations are cheap to clone conceptually but are in fact moved
/// down the recursion; `child` builds the table for `X ∪ {r}` from the
/// current one (Lemma 3.3).
pub trait CondNode {
    /// `I(X)`: the items whose tuples survived into this table. At the
    /// root this is the full item universe (the root never emits a rule).
    fn items(&self) -> &[ItemId];

    /// Scans the table, classifying the candidate rows.
    fn inspect(&self, e_p: &RowSet, e_n: &RowSet) -> Inspect;

    /// The table for `X ∪ {r}`: keeps exactly the tuples containing `r`.
    ///
    /// `r` must occur in at least one tuple (i.e. be in `u_p ∪ u_n` of
    /// the latest [`inspect`](Self::inspect)).
    fn child(&self, r: RowId) -> Self;
}

#[cfg(test)]
mod engine_agreement {
    use super::*;
    use farmer_dataset::{paper_example, TransposedTable};

    fn inspect_eq(a: &Inspect, b: &Inspect) {
        assert_eq!(a.z, b.z);
        assert_eq!(a.u_p, b.u_p);
        assert_eq!(a.u_n, b.u_n);
        assert_eq!(a.max_ep_tuple, b.max_ep_tuple);
    }

    #[test]
    fn engines_agree_on_paper_example() {
        let d = paper_example();
        let (tt, reordered, _) = TransposedTable::for_mining(&d, 0);
        let bit = BitsetNode::root(&reordered);
        let ptr = PointerNode::root(&tt);
        assert_eq!(bit.items(), ptr.items());

        let e_p = RowSet::from_ids(5, [0, 1, 2]);
        let e_n = RowSet::from_ids(5, [3, 4]);
        inspect_eq(&bit.inspect(&e_p, &e_n), &ptr.inspect(&e_p, &e_n));

        // descend to {r2} (paper row ids; 0-based id 1)
        let bit1 = bit.child(1);
        let ptr1 = ptr.child(1);
        assert_eq!(bit1.items(), ptr1.items());
        let e_p1 = RowSet::from_ids(5, [2]);
        inspect_eq(&bit1.inspect(&e_p1, &e_n), &ptr1.inspect(&e_p1, &e_n));

        // descend to {r2, r3}
        let bit2 = bit1.child(2);
        let ptr2 = ptr1.child(2);
        assert_eq!(bit2.items(), ptr2.items());
        let empty = RowSet::empty(5);
        inspect_eq(&bit2.inspect(&empty, &e_n), &ptr2.inspect(&empty, &e_n));
    }
}

//! Conditional pointer lists — the paper's §3.3 memory layout.

use super::{CondNode, Inspect};
use farmer_dataset::{ItemId, RowId, TransposedTable};
use rowset::RowSet;

/// A `TT|X` materialized as *conditional pointer lists*: for every tuple
/// that contains all rows of `X`, the node stores the tuple's item id and
/// the position just past `X`'s deepest row in that tuple.
///
/// Tuple contents are **borrowed** from the run's [`TransposedTable`], so
/// roots copy nothing and can be shared by reference across worker
/// threads. Rows at positions `>= start` are the enumeration candidates
/// within the tuple (they are exactly the rows ordered after the deepest
/// row of `X`, because tuples are sorted by `ORD`); rows at positions
/// `< start` feed the *back scan* of pruning strategy 2. This mirrors
/// Figure 8 of the paper, with `(tuple, start)` playing the role of the
/// `<fi, Pos>` entries.
pub struct PointerNode<'a> {
    base: &'a TransposedTable,
    /// `(item, start)` per surviving tuple.
    entries: Vec<(ItemId, u32)>,
    /// Cached `I(X)` (the items of `entries`, in ascending order).
    items: Vec<ItemId>,
}

impl<'a> PointerNode<'a> {
    /// Root node over a transposed table (already in `ORD` order).
    pub fn root(tt: &'a TransposedTable) -> Self {
        let entries: Vec<(ItemId, u32)> =
            (0..tt.tuples().len() as ItemId).map(|i| (i, 0)).collect();
        PointerNode {
            base: tt,
            items: entries.iter().map(|&(i, _)| i).collect(),
            entries,
        }
    }

    #[inline]
    fn tuple(&self, item: ItemId) -> &[RowId] {
        &self.base.tuples()[item as usize].rows
    }
}

impl CondNode for PointerNode<'_> {
    fn items(&self) -> &[ItemId] {
        &self.items
    }

    fn n_rows(&self) -> usize {
        self.base.n_rows()
    }

    fn clone_shell(&self) -> Self {
        PointerNode {
            base: self.base,
            entries: Vec::new(),
            items: Vec::new(),
        }
    }

    fn inspect_into(&self, e_p: &RowSet, e_n: &RowSet, out: &mut Inspect) {
        let n = self.base.n_rows();
        let n_tuples = self.entries.len();
        // occurrence counts across tuples; a row is in every tuple iff its
        // count reaches n_tuples. The counts buffer lives in `out` and is
        // recycled across scans.
        out.counts.clear();
        out.counts.resize(n, 0);
        let mut max_ep = 0usize;
        for &(item, start) in &self.entries {
            let tuple = self.tuple(item);
            let mut ep_here = 0usize;
            // back range: rows of X and anything ordered before the deepest
            // row of X (only containment matters for these)
            for &r in &tuple[..start as usize] {
                out.counts[r as usize] += 1;
            }
            // forward range: enumeration candidates
            for &r in &tuple[start as usize..] {
                out.counts[r as usize] += 1;
                if e_p.contains(r as usize) {
                    ep_here += 1;
                }
            }
            max_ep = max_ep.max(ep_here);
        }
        out.z.clear();
        out.u_p.clear();
        out.u_n.clear();
        if n_tuples == 0 {
            out.z.make_full();
        }
        for (r, &c) in out.counts.iter().enumerate() {
            if c > 0 {
                if c as usize == n_tuples {
                    out.z.insert(r);
                }
                // e_p and e_n are disjoint (positives vs negatives), so a
                // row lands in at most one of u_p/u_n — same sets as the
                // occur ∩ e_p / occur ∩ e_n of the bitset engine.
                if e_p.contains(r) {
                    out.u_p.insert(r);
                } else if e_n.contains(r) {
                    out.u_n.insert(r);
                }
            }
        }
        out.max_ep_tuple = max_ep;
    }

    fn child_into(&self, r: RowId, out: &mut Self) {
        out.entries.clear();
        out.items.clear();
        for &(item, start) in &self.entries {
            let tuple = self.tuple(item);
            // r can only sit at or after `start` (it is ordered after X's
            // deepest row); binary-search the suffix
            if let Ok(off) = tuple[start as usize..].binary_search(&r) {
                out.entries.push((item, start + off as u32 + 1));
                out.items.push(item);
            }
        }
        debug_assert!(
            !out.entries.is_empty(),
            "child({r}) has no tuples; r was not a candidate"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use farmer_dataset::{paper_example, Dataset, TransposedTable};

    fn setup() -> (Dataset, TransposedTable) {
        let d = paper_example();
        let (tt, reordered, _) = TransposedTable::for_mining(&d, 0);
        (reordered, tt)
    }

    #[test]
    fn descend_matches_paper_figure_2() {
        let (d, tt) = setup();
        let root = PointerNode::root(&tt);
        let node = root.child(1).child(2); // X = {r2, r3}
        let mut names: Vec<&str> = node.items().iter().map(|&i| d.item_name(i)).collect();
        names.sort_unstable();
        assert_eq!(names, vec!["a", "e", "h"]);
        // start positions point past row 2 in each tuple
        for &(item, start) in &node.entries {
            let t = node.tuple(item);
            assert_eq!(t[start as usize - 1], 2, "item {item}");
        }
    }

    #[test]
    fn inspect_finds_row4_in_all_tuples() {
        let (_, tt) = setup();
        let root = PointerNode::root(&tt);
        let node = root.child(1).child(2);
        let e_p = RowSet::empty(5);
        let e_n = RowSet::from_ids(5, [3, 4]);
        let ins = node.inspect(&e_p, &e_n);
        assert_eq!(ins.z.to_vec(), vec![1, 2, 3]);
        assert_eq!(ins.u_n.to_vec(), vec![3]);
        assert_eq!(ins.max_ep_tuple, 0);
    }

    #[test]
    fn back_rows_visible_in_z() {
        // node {r3, r4} (ids 2,3): I = {a,e,h}; row 1 (r2) occurs in every
        // tuple although it is before the node's rows -> z contains it,
        // which is what pruning strategy 2 keys on (Example 5).
        let (_, tt) = setup();
        let root = PointerNode::root(&tt);
        let node = root.child(2).child(3);
        let ins = node.inspect(&RowSet::empty(5), &RowSet::from_ids(5, [4]));
        assert!(ins.z.contains(1), "back row r2 must be in z: {:?}", ins.z);
        assert_eq!(ins.z.to_vec(), vec![1, 2, 3]);
    }
}

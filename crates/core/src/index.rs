//! Queryable index over a set of mined rule groups.
//!
//! Mining produces hundreds-to-thousands of IRGs; downstream consumers
//! (classifiers, browsers, report generators) ask the same questions
//! over and over — *which groups cover this sample? which involve this
//! gene? which would fire on a new, unseen expression profile?* —
//! so the index answers them without rescanning every group.

use crate::rule::RuleGroup;
use farmer_dataset::ItemId;
use rowset::IdList;

/// An immutable inverted index over rule groups.
///
/// ```
/// use farmer_core::{Farmer, GroupIndex, MiningParams};
/// let data = farmer_dataset::paper_example();
/// let result = Farmer::new(MiningParams::new(0)).mine(&data);
/// let n_items = data.n_items();
/// let index = GroupIndex::new(result.groups, n_items);
/// // row r1 (id 0) is covered by at least the {a} group
/// assert!(index.covering_row(0).count() >= 1);
/// ```
pub struct GroupIndex {
    groups: Vec<RuleGroup>,
    /// `by_item[i]` = indices of groups whose upper bound contains item `i`.
    by_item: Vec<Vec<u32>>,
}

impl GroupIndex {
    /// Builds the index. `n_items` is the dataset's item-universe size
    /// (item ids in the groups must be below it).
    pub fn new(groups: Vec<RuleGroup>, n_items: usize) -> Self {
        let mut by_item = vec![Vec::new(); n_items];
        for (gi, g) in groups.iter().enumerate() {
            for i in g.upper.iter() {
                by_item[i as usize].push(gi as u32);
            }
        }
        GroupIndex { groups, by_item }
    }

    /// All indexed groups.
    pub fn groups(&self) -> &[RuleGroup] {
        &self.groups
    }

    /// Number of indexed groups.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// `true` iff the index is empty.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// Groups whose antecedent support set contains the (training) row.
    pub fn covering_row(&self, row: usize) -> impl Iterator<Item = &RuleGroup> {
        self.groups.iter().filter(move |g| g.matches_row(row))
    }

    /// Groups whose upper bound mentions `item`.
    pub fn mentioning_item(&self, item: ItemId) -> impl Iterator<Item = &RuleGroup> {
        self.by_item
            .get(item as usize)
            .into_iter()
            .flatten()
            .map(|&gi| &self.groups[gi as usize])
    }

    /// Groups that *fire* on an unseen sample with the given items: some
    /// lower bound (most general member) is contained in the sample.
    /// Requires the groups to carry lower bounds.
    pub fn firing_on(&self, items: &IdList) -> impl Iterator<Item = &RuleGroup> + '_ {
        // candidate groups must share at least one upper-bound item with
        // the sample; walk the shortest posting lists first
        let mut seen = vec![false; self.groups.len()];
        let mut candidates: Vec<u32> = Vec::new();
        for i in items.iter() {
            for &gi in self.by_item.get(i as usize).map_or(&[][..], |v| v) {
                if !seen[gi as usize] {
                    seen[gi as usize] = true;
                    candidates.push(gi);
                }
            }
        }
        let items = items.clone();
        candidates
            .into_iter()
            .map(move |gi| &self.groups[gi as usize])
            .filter(move |g| g.lower.iter().any(|l| l.is_subset(&items)))
    }

    /// The best group firing on a sample under
    /// `(confidence desc, support desc, shorter upper)` — the first-match
    /// rule a classifier would apply.
    pub fn best_firing_on(&self, items: &IdList) -> Option<&RuleGroup> {
        self.firing_on(items).max_by(|a, b| {
            a.confidence()
                .partial_cmp(&b.confidence())
                .expect("finite")
                .then(a.sup.cmp(&b.sup))
                .then(b.upper.len().cmp(&a.upper.len()))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Farmer, MiningParams};
    use farmer_dataset::paper_example;

    fn index() -> (farmer_dataset::Dataset, GroupIndex) {
        let d = paper_example();
        let result = Farmer::new(MiningParams::new(0)).mine(&d);
        let n_items = d.n_items();
        (d, GroupIndex::new(result.groups, n_items))
    }

    #[test]
    fn covering_row_matches_support_sets() {
        let (_, idx) = index();
        assert!(!idx.is_empty());
        for row in 0..5 {
            for g in idx.covering_row(row) {
                assert!(g.support_set.contains(row));
            }
            let direct = idx
                .groups()
                .iter()
                .filter(|g| g.support_set.contains(row))
                .count();
            assert_eq!(idx.covering_row(row).count(), direct);
        }
    }

    #[test]
    fn mentioning_item_is_exact() {
        let (d, idx) = index();
        let a = d.item_by_name("a").unwrap();
        for g in idx.mentioning_item(a) {
            assert!(g.upper.contains(a));
        }
        let direct = idx.groups().iter().filter(|g| g.upper.contains(a)).count();
        assert_eq!(idx.mentioning_item(a).count(), direct);
        // out-of-range items are simply absent
        assert_eq!(idx.mentioning_item(10_000).count(), 0);
    }

    #[test]
    fn firing_on_uses_lower_bounds() {
        let (d, idx) = index();
        // a sample with exactly the items of row r2 must fire every group
        // covering r2 (0-based row 1)
        let sample = d.row(1).clone();
        let fired: Vec<&RuleGroup> = idx.firing_on(&sample).collect();
        for g in idx.covering_row(1) {
            assert!(
                fired.iter().any(|f| f.upper == g.upper),
                "group {:?} should fire",
                g.upper
            );
        }
        // and nothing fires on an empty sample
        assert_eq!(idx.firing_on(&IdList::new()).count(), 0);
    }

    #[test]
    fn best_firing_is_max_by_rank() {
        let (d, idx) = index();
        let sample = d.row(0).clone();
        let best = idx.best_firing_on(&sample).expect("row 0 is covered");
        for g in idx.firing_on(&sample) {
            assert!(
                best.confidence() >= g.confidence(),
                "best {:?} vs {:?}",
                best.upper,
                g.upper
            );
        }
        assert!(idx.best_firing_on(&IdList::new()).is_none());
    }
}

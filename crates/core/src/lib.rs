//! FARMER: finding interesting rule groups in microarray datasets.
//!
//! A from-scratch implementation of the SIGMOD 2004 algorithm by Cong,
//! Tung, Xu, Pan and Yang. Given a dataset with *few rows and very many
//! columns* (the microarray shape) and a target class `C`, FARMER
//! enumerates **row combinations** depth-first instead of column
//! combinations, discovering each **rule group** — the equivalence class
//! of association rules `A → C` sharing one antecedent support set — at
//! the unique node whose row set generates it. Each group is reported by
//! its unique *upper bound* (most specific antecedent) and, optionally,
//! its *lower bounds* (most general antecedents, via [`minelb`]).
//!
//! Only **interesting** rule groups (IRGs) are kept: a group is
//! interesting iff every strictly more general rule group has strictly
//! lower confidence. Mining is constrained by minimum support, minimum
//! confidence, and minimum χ² value, all three of which drive search
//! pruning (strategies 1–3 of the paper, see [`PruningConfig`]).
//!
//! # Quick start
//!
//! ```
//! use farmer_core::{Farmer, MiningParams};
//! use farmer_dataset::paper_example;
//!
//! let data = paper_example();
//! let params = MiningParams::new(0 /* target class C */)
//!     .min_sup(1)
//!     .min_conf(0.0);
//! let result = Farmer::new(params).mine(&data);
//! for g in &result.groups {
//!     println!(
//!         "{} -> c0  (sup {}, conf {:.2})",
//!         g.upper.iter().map(|i| data.item_name(i)).collect::<Vec<_>>().join(""),
//!         g.sup,
//!         g.confidence(),
//!     );
//! }
//! ```
//!
//! # Crate layout
//!
//! * [`Farmer`] — the row-enumeration search;
//! * [`cond`] — the two conditional-transposed-table engines: a bitset
//!   engine and the paper's §3.3 conditional pointer lists;
//! * [`measures`] — support/confidence/χ² and the convex χ² upper bound
//!   (Lemma 3.9), plus lift/conviction/entropy-gain/gini extensions;
//! * [`minelb`] — the incremental lower-bound algorithm MineLB (§3.4);
//! * [`naive`] — a brute-force oracle used to verify the miner exactly;
//! * [`carpenter`] — the predecessor CARPENTER algorithm (closed-pattern
//!   mining by row enumeration, KDD'03), sharing the same substrate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod carpenter;
pub mod cobbler;
pub mod cond;
pub mod measures;
pub mod memo;
pub mod minelb;
pub mod naive;
pub mod session;
pub mod topk;
pub mod trace;

mod index;
mod miner;
mod params;
mod rule;

pub use index::GroupIndex;
pub use memo::{MemoStats, MemoTable};
pub use miner::{Farmer, NodeScratch};
pub use params::{Engine, ExtraConstraint, MiningParams, PruningConfig};
pub use rule::{canonical_sort, dump_groups, MineResult, MineStats, RuleGroup, SchedStats};
pub use session::{
    CountingObserver, Heartbeat, MineControl, MineObserver, Miner, NoOpObserver, PruneReason,
    SharedBudget, StopCause, StopHandle,
};
pub use trace::{NoopTracer, RingTracer, TraceReport, TraceSink};

//! Interestingness measures over `A → C` rules and their search-pruning
//! upper bounds.
//!
//! All measures are functions of the 2×2 contingency table determined by
//! `x = |R(A)|` (rows matching the antecedent), `y = |R(A ∪ C)|` (of
//! which, rows in the class), against the dataset margins `n` (total
//! rows) and `m = |R(C)|` (rows in the class):
//!
//! ```text
//!            C          ¬C        total
//!   A        y          x - y     x
//!   ¬A       m - y      n-m-x+y   n - x
//!   total    m          n - m     n
//! ```
//!
//! The paper prunes with χ² via the Morishita–Sese observation that χ² is
//! convex over the reachable `(x, y)` region, so its maximum over a
//! search subtree is attained at a vertex of that region (Lemma 3.9).
//! The footnote-3 extension measures (lift, conviction, entropy gain,
//! gini index, correlation coefficient) are provided for downstream use.

/// The 2×2 contingency counts of a rule, all as `f64`-convertible counts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Contingency {
    /// `|R(A)|` — rows containing the antecedent.
    pub x: usize,
    /// `|R(A ∪ C)|` — antecedent rows in the class; `y <= x`.
    pub y: usize,
    /// Total rows in the dataset.
    pub n: usize,
    /// Rows labeled with the class; `y <= m <= n`.
    pub m: usize,
}

impl Contingency {
    /// Builds a table, checking the count invariants.
    pub fn new(x: usize, y: usize, n: usize, m: usize) -> Self {
        assert!(y <= x, "y={y} > x={x}");
        assert!(y <= m, "y={y} > m={m}");
        assert!(x <= n, "x={x} > n={n}");
        assert!(m <= n, "m={m} > n={n}");
        assert!(
            x - y <= n - m,
            "A∪¬C count {x}-{y} exceeds ¬C margin {}",
            n - m
        );
        Contingency { x, y, n, m }
    }

    /// Rule confidence `y / x`; 0 when `x = 0`.
    pub fn confidence(&self) -> f64 {
        if self.x == 0 {
            0.0
        } else {
            self.y as f64 / self.x as f64
        }
    }

    /// The rule's support (the paper defines it as `|R(A ∪ C)|`).
    pub fn support(&self) -> usize {
        self.y
    }
}

/// Pearson's χ² statistic of the table (1 degree of freedom).
///
/// Returns 0 when any margin is degenerate (`x ∈ {0, n}` or
/// `m ∈ {0, n}`), where independence cannot be tested.
pub fn chi_square(t: Contingency) -> f64 {
    let (x, y, n, m) = (t.x as f64, t.y as f64, t.n as f64, t.m as f64);
    let denom = x * m * (n - x) * (n - m);
    if denom == 0.0 {
        return 0.0;
    }
    // chi2 = n (ad - bc)^2 / (x m (n-x) (n-m)) with
    // a = y, b = x-y, c = m-y, d = n-m-x+y
    let det = y * (n - m - x + y) - (x - y) * (m - y);
    n * det * det / denom
}

/// Upper bound on `chi_square` over every rule reachable below a search
/// node whose current rule has table `t` (Lemma 3.9).
///
/// Any rule discovered deeper has a *more general* antecedent, so its
/// point `(x', y')` lies in the parallelogram with vertices
/// `(x, y)`, `(x-y+m, m)`, `(n, m)`, `(y+n-m, y)`. χ² is convex in
/// `(x, y)` and zero at `(n, m)`, so the maximum over the region is the
/// maximum over the other three vertices.
pub fn chi_square_upper_bound(t: Contingency) -> f64 {
    let a = chi_square(Contingency::new(t.x - t.y + t.m, t.m, t.n, t.m));
    let b = chi_square(Contingency::new(t.y + t.n - t.m, t.y, t.n, t.m));
    let c = chi_square(t);
    a.max(b).max(c)
}

/// Lift: `conf(A → C) / P(C)`; 1 means independence. 0 when undefined.
pub fn lift(t: Contingency) -> f64 {
    if t.m == 0 || t.x == 0 {
        return 0.0;
    }
    t.confidence() / (t.m as f64 / t.n as f64)
}

/// Conviction: `(1 - P(C)) / (1 - conf)`; `+∞` for exact rules,
/// 1 at independence.
pub fn conviction(t: Contingency) -> f64 {
    if t.x == 0 {
        return 0.0;
    }
    let p_not_c = 1.0 - t.m as f64 / t.n as f64;
    let one_minus_conf = 1.0 - t.confidence();
    if one_minus_conf == 0.0 {
        f64::INFINITY
    } else {
        p_not_c / one_minus_conf
    }
}

fn h2(p: f64) -> f64 {
    if p <= 0.0 || p >= 1.0 {
        0.0
    } else {
        -p * p.log2() - (1.0 - p) * (1.0 - p).log2()
    }
}

/// Entropy gain of splitting the dataset on `A` with respect to the class
/// (the information-gain measure of decision trees). Non-negative.
pub fn entropy_gain(t: Contingency) -> f64 {
    let (x, y, n, m) = (t.x as f64, t.y as f64, t.n as f64, t.m as f64);
    if n == 0.0 {
        return 0.0;
    }
    let base = h2(m / n);
    let mut cond = 0.0;
    if x > 0.0 {
        cond += x / n * h2(y / x);
    }
    if n - x > 0.0 {
        cond += (n - x) / n * h2((m - y) / (n - x));
    }
    (base - cond).max(0.0)
}

/// Gini-index reduction achieved by splitting on `A`. Non-negative.
pub fn gini_gain(t: Contingency) -> f64 {
    let (x, y, n, m) = (t.x as f64, t.y as f64, t.n as f64, t.m as f64);
    if n == 0.0 {
        return 0.0;
    }
    let gini = |p: f64| 2.0 * p * (1.0 - p);
    let base = gini(m / n);
    let mut cond = 0.0;
    if x > 0.0 {
        cond += x / n * gini(y / x);
    }
    if n - x > 0.0 {
        cond += (n - x) / n * gini((m - y) / (n - x));
    }
    (base - cond).max(0.0)
}

/// Upper bound of a *convex* measure over the region reachable below a
/// search node with table `t` — the same parallelogram-vertex argument
/// as [`chi_square_upper_bound`], for any measure that Morishita–Sese
/// convexity applies to (χ², entropy gain, gini gain).
///
/// The vertex `(n, m)` is included (unlike for χ², these measures need
/// not vanish there, although for the gain measures they do).
pub fn convex_upper_bound(measure: fn(Contingency) -> f64, t: Contingency) -> f64 {
    let a = measure(Contingency::new(t.x - t.y + t.m, t.m, t.n, t.m));
    let b = measure(Contingency::new(t.y + t.n - t.m, t.y, t.n, t.m));
    let c = measure(t);
    let d = measure(Contingency::new(t.n, t.m, t.n, t.m));
    a.max(b).max(c).max(d)
}

/// The φ correlation coefficient between antecedent and class, in
/// `[-1, 1]`; `sqrt(chi²/n)` with the sign of the association.
pub fn correlation(t: Contingency) -> f64 {
    let (x, y, n, m) = (t.x as f64, t.y as f64, t.n as f64, t.m as f64);
    let denom = (x * m * (n - x) * (n - m)).sqrt();
    if denom == 0.0 {
        return 0.0;
    }
    (y * (n - m - x + y) - (x - y) * (m - y)) / denom
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(x: usize, y: usize, n: usize, m: usize) -> Contingency {
        Contingency::new(x, y, n, m)
    }

    #[test]
    fn confidence_and_support() {
        let c = t(4, 3, 10, 5);
        assert!((c.confidence() - 0.75).abs() < 1e-12);
        assert_eq!(c.support(), 3);
        assert_eq!(t(0, 0, 10, 5).confidence(), 0.0);
    }

    #[test]
    fn chi_square_known_value() {
        // classic 2x2: a=10,b=2 / c=3,d=15 -> x=12,y=10,n=30,m=13
        let v = chi_square(t(12, 10, 30, 13));
        // manual: chi2 = 30*(10*15-2*3)^2/(12*13*18*17)
        let expect = 30.0 * (150.0f64 - 6.0).powi(2) / (12.0 * 13.0 * 18.0 * 17.0);
        assert!((v - expect).abs() < 1e-9, "{v} vs {expect}");
    }

    #[test]
    fn chi_square_independence_is_zero() {
        // y/x == m/n exactly -> chi = 0
        let v = chi_square(t(10, 5, 20, 10));
        assert!(v.abs() < 1e-12);
        // degenerate margins
        assert_eq!(chi_square(t(0, 0, 10, 5)), 0.0);
        assert_eq!(chi_square(t(10, 5, 10, 5)), 0.0);
        assert_eq!(chi_square(t(5, 0, 10, 0)), 0.0);
    }

    #[test]
    fn chi_square_perfect_association() {
        // A exactly equals C: chi = n
        let v = chi_square(t(5, 5, 10, 5));
        assert!((v - 10.0).abs() < 1e-12);
    }

    #[test]
    fn chi_bound_dominates_region() {
        // brute-force the reachable parallelogram and verify the bound
        let base = t(6, 4, 20, 9);
        let bound = chi_square_upper_bound(base);
        for x2 in base.x..=base.n {
            for y2 in base.y..=base.m.min(x2) {
                if x2 - y2 < base.x - base.y || x2 - y2 > base.n - base.m {
                    continue; // outside constraint 4 of Lemma 3.9
                }
                let v = chi_square(t(x2, y2, base.n, base.m));
                assert!(v <= bound + 1e-9, "chi({x2},{y2})={v} > bound={bound}");
            }
        }
    }

    #[test]
    fn chi_bound_at_least_current() {
        for (x, y) in [(3, 2), (8, 8), (10, 1)] {
            let c = t(x, y, 20, 10);
            assert!(chi_square_upper_bound(c) >= chi_square(c) - 1e-12);
        }
    }

    #[test]
    fn convex_bound_dominates_region_for_gain_measures() {
        let base = t(6, 4, 20, 9);
        for measure in [entropy_gain as fn(Contingency) -> f64, gini_gain] {
            let bound = convex_upper_bound(measure, base);
            for x2 in base.x..=base.n {
                for y2 in base.y..=base.m.min(x2) {
                    if x2 - y2 < base.x - base.y || x2 - y2 > base.n - base.m {
                        continue;
                    }
                    let v = measure(t(x2, y2, base.n, base.m));
                    assert!(v <= bound + 1e-9, "measure({x2},{y2})={v} > {bound}");
                }
            }
        }
    }

    #[test]
    fn lift_and_conviction() {
        let c = t(4, 4, 20, 10); // perfect rule
        assert!((lift(c) - 2.0).abs() < 1e-12);
        assert_eq!(conviction(c), f64::INFINITY);
        let ind = t(10, 5, 20, 10); // independent
        assert!((lift(ind) - 1.0).abs() < 1e-12);
        assert!((conviction(ind) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn entropy_and_gini_gain() {
        // perfect split: gain equals the base entropy (1 bit for 50/50)
        let c = t(10, 10, 20, 10);
        assert!((entropy_gain(c) - 1.0).abs() < 1e-12);
        assert!((gini_gain(c) - 0.5).abs() < 1e-12);
        // independence: zero gain
        let ind = t(10, 5, 20, 10);
        assert!(entropy_gain(ind).abs() < 1e-12);
        assert!(gini_gain(ind).abs() < 1e-12);
    }

    #[test]
    fn correlation_signs() {
        assert!((correlation(t(10, 10, 20, 10)) - 1.0).abs() < 1e-12);
        assert!((correlation(t(10, 0, 20, 10)) + 1.0).abs() < 1e-12);
        assert!(correlation(t(10, 5, 20, 10)).abs() < 1e-12);
    }

    #[test]
    fn chi_matches_correlation_squared() {
        let c = t(7, 5, 25, 11);
        let phi = correlation(c);
        assert!((chi_square(c) - phi * phi * 25.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "y=3 > x=2")]
    fn invalid_table_panics() {
        t(2, 3, 10, 5);
    }
}

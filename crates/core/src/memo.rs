//! Lock-free shared prune/memo table over canonical row-set digests.
//!
//! FARMER's backward scan (paper §3.2) prunes a node exactly when its
//! closed row set was already enumerated on an earlier branch. That
//! check is *local* — it re-derives the answer from the current
//! conditional table. The [`MemoTable`] makes the same fact *shared*:
//! once any worker closes a row set, it publishes the set's FNV-1a
//! digest, and every other worker's probe of an equal row set answers
//! "already closed" without rescanning.
//!
//! ## Layout and claim protocol
//!
//! The table is a fixed-capacity open-addressed array of `AtomicU64`
//! words, one word per slot, no separate metadata:
//!
//! ```text
//!   63                    16 15            0
//!   +-----------------------+--------------+
//!   |  digest tag (48 bits) | epoch (16)   |
//!   +-----------------------+--------------+
//! ```
//!
//! Epoch `0` is the empty sentinel, so a freshly zeroed array is an
//! empty table and [`MemoTable::reset`] is O(1): bump the epoch and
//! every live word becomes logically stale. Slot index comes from the
//! digest's *low* bits (`digest & mask`), the tag from its high 48 —
//! independent halves, so the tag loses no discriminating power to the
//! index.
//!
//! Inserts claim a slot with a single CAS on the packed word (empty or
//! stale observed value → new word). A lost CAS is re-examined: if the
//! winner wrote the same tag the digest is already present and the
//! insert is a no-op. If the linear-probe window is full of live
//! non-matching entries the insert is *dropped* (collision counter),
//! trading recall for boundedness exactly like tantabus's `CacheTable`
//! — a dropped insert only costs a redundant rescan later, never
//! correctness.
//!
//! ## False positives
//!
//! Two distinct row sets collide only if they agree on the 48-bit tag
//! *and* the index bits — probability ~2⁻⁴⁸ per pair under FNV-1a
//! mixing, negligible against the ~2²⁰-node workloads this repo
//! targets, and the same trade twsearch's `PruneTable` makes. The
//! miner additionally gates memo pruning on the configurations where a
//! hit is provably equivalent to the backward scan (see
//! `miner.rs`), so a hit never changes *which* groups are emitted.

use farmer_support::hash::Fnv1a;
use std::sync::atomic::{AtomicU64, Ordering};

/// Bits of the packed word holding the digest tag.
const TAG_MASK: u64 = !0u64 << 16;
/// Bits of the packed word holding the epoch.
const EPOCH_MASK: u64 = 0xFFFF;
/// Longest linear-probe run before an insert is dropped / a probe
/// reports a miss. Short on purpose: the table is a cache, not a map.
const PROBE_WINDOW: usize = 8;

/// FNV-1a digest of a row set's canonical packed-word form.
///
/// Feeding the 64-bit words (little-end-first, as
/// `rowset::RowSet::words` defines them) through
/// [`Fnv1a::write_u64`] makes the digest a pure function of set
/// *contents*: equal row sets hash equal regardless of which branch or
/// worker derived them.
#[inline]
pub fn rowset_digest(words: &[u64]) -> u64 {
    let mut h = Fnv1a::new();
    for &w in words {
        h.write_u64(w);
    }
    h.finish()
}

/// Racy-but-monotonic counters describing one mining run's memo
/// traffic. See [`MemoTable::snapshot`].
///
/// The counts are summed across workers with relaxed atomics, so in a
/// parallel run the hit/miss split depends on thread interleaving —
/// only the invariant `hits + misses == probes` and (single-threaded)
/// exact values are stable enough to pin in tests. That is why these
/// live in the scheduler stats, not in the deterministic `MineStats`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MemoStats {
    /// Configured slot count (0 when the memo table is disabled).
    pub capacity: usize,
    /// Lookups issued against the table.
    pub probes: u64,
    /// Lookups that found their digest already published.
    pub hits: u64,
    /// Lookups that did not find their digest.
    pub misses: u64,
    /// Digests successfully published.
    pub inserts: u64,
    /// Inserts dropped because the probe window was full of live,
    /// non-matching entries.
    pub collisions: u64,
}

/// Fixed-capacity, lock-free, open-addressed digest table shared by
/// every worker of a mining run. See the module docs for the layout
/// and claim protocol.
#[derive(Debug)]
pub struct MemoTable {
    slots: Vec<AtomicU64>,
    mask: u64,
    epoch: AtomicU64,
    probes: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
    collisions: AtomicU64,
}

impl MemoTable {
    /// Builds an empty table with at least `capacity` slots (rounded up
    /// to a power of two, minimum [`PROBE_WINDOW`]).
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.next_power_of_two().max(PROBE_WINDOW);
        MemoTable {
            slots: (0..cap).map(|_| AtomicU64::new(0)).collect(),
            mask: cap as u64 - 1,
            epoch: AtomicU64::new(1),
            probes: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
            collisions: AtomicU64::new(0),
        }
    }

    /// Slot count.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    #[inline]
    fn packed(&self, digest: u64) -> u64 {
        (digest & TAG_MASK) | self.epoch.load(Ordering::Relaxed)
    }

    /// Looks `digest` up; `true` means some worker already published
    /// it (its subtree is already closed and can be skipped).
    #[inline]
    pub fn probe(&self, digest: u64) -> bool {
        self.probes.fetch_add(1, Ordering::Relaxed);
        let want = self.packed(digest);
        let epoch = want & EPOCH_MASK;
        let base = digest & self.mask;
        for i in 0..PROBE_WINDOW.min(self.slots.len()) {
            let word = self.slots[(base as usize + i) & self.mask as usize].load(Ordering::Acquire);
            if word == want {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return true;
            }
            if word & EPOCH_MASK != epoch {
                // empty or stale: an inserter would have claimed this
                // slot before probing further, so the digest is absent
                break;
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        false
    }

    /// Publishes `digest`. Claims the first empty/stale slot in the
    /// probe window with a CAS; re-examines lost races (the winner may
    /// have written the same tag); drops the insert entirely when the
    /// window holds only live foreign entries.
    pub fn insert(&self, digest: u64) {
        let want = self.packed(digest);
        let epoch = want & EPOCH_MASK;
        let base = digest & self.mask;
        for i in 0..PROBE_WINDOW.min(self.slots.len()) {
            let slot = &self.slots[(base as usize + i) & self.mask as usize];
            let mut word = slot.load(Ordering::Acquire);
            loop {
                if word == want {
                    return; // already present (possibly a racing twin)
                }
                if word & EPOCH_MASK == epoch {
                    break; // live foreign entry: try the next slot
                }
                match slot.compare_exchange_weak(word, want, Ordering::AcqRel, Ordering::Acquire) {
                    Ok(_) => {
                        self.inserts.fetch_add(1, Ordering::Relaxed);
                        return;
                    }
                    Err(seen) => word = seen, // lost the race: re-examine
                }
            }
        }
        self.collisions.fetch_add(1, Ordering::Relaxed);
    }

    /// O(1) logical clear: bumps the epoch (skipping the empty
    /// sentinel `0` on wrap) so every published word goes stale, and
    /// zeroes the counters. Not linearizable against concurrent
    /// probes/inserts — call between runs, not during one.
    pub fn reset(&self) {
        let next = match (self.epoch.load(Ordering::Relaxed) + 1) & EPOCH_MASK {
            0 => 1,
            e => e,
        };
        self.epoch.store(next, Ordering::Release);
        for c in [
            &self.probes,
            &self.hits,
            &self.misses,
            &self.inserts,
            &self.collisions,
        ] {
            c.store(0, Ordering::Relaxed);
        }
    }

    /// Copies the counters out. `hits + misses == probes` holds for
    /// any quiescent snapshot.
    pub fn snapshot(&self) -> MemoStats {
        MemoStats {
            capacity: self.capacity(),
            probes: self.probes.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            collisions: self.collisions.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use farmer_support::thread::scope;

    #[test]
    fn digest_is_content_addressed() {
        assert_eq!(rowset_digest(&[1, 0, 7]), rowset_digest(&[1, 0, 7]));
        assert_ne!(rowset_digest(&[1, 0, 7]), rowset_digest(&[1, 7, 0]));
        assert_ne!(rowset_digest(&[]), rowset_digest(&[0]));
    }

    #[test]
    fn probe_miss_then_insert_then_hit() {
        let t = MemoTable::new(64);
        let d = rowset_digest(&[0b1011, 0, 1]);
        assert!(!t.probe(d));
        t.insert(d);
        assert!(t.probe(d));
        t.insert(d); // idempotent: no second insert counted
        let s = t.snapshot();
        assert_eq!(s.capacity, 64);
        assert_eq!((s.probes, s.hits, s.misses), (2, 1, 1));
        assert_eq!((s.inserts, s.collisions), (1, 0));
    }

    #[test]
    fn capacity_rounds_up_and_has_a_floor() {
        assert_eq!(MemoTable::new(0).capacity(), PROBE_WINDOW);
        assert_eq!(MemoTable::new(100).capacity(), 128);
    }

    #[test]
    fn full_window_drops_inserts_and_counts_collisions() {
        // capacity == window, and digests sharing index bits: after the
        // window fills, further inserts drop and probes miss
        let t = MemoTable::new(PROBE_WINDOW);
        let mask = t.capacity() as u64 - 1;
        let digests: Vec<u64> = (0..)
            .map(|i: u64| (i << 16) | 3) // same index bits, distinct tags
            .filter(|d| d & mask == 3)
            .take(PROBE_WINDOW + 2)
            .collect();
        for &d in &digests[..PROBE_WINDOW] {
            t.insert(d);
            assert!(t.probe(d));
        }
        for &d in &digests[PROBE_WINDOW..] {
            t.insert(d);
            assert!(!t.probe(d), "dropped insert must not be visible");
        }
        let s = t.snapshot();
        assert_eq!(s.inserts, PROBE_WINDOW as u64);
        assert_eq!(s.collisions, 2);
        assert_eq!(s.hits + s.misses, s.probes);
    }

    #[test]
    fn reset_empties_the_table_in_o1() {
        let t = MemoTable::new(32);
        for w in 0..20u64 {
            t.insert(rowset_digest(&[w]));
        }
        t.reset();
        let fresh = t.snapshot();
        assert_eq!(
            fresh,
            MemoStats {
                capacity: 32,
                ..MemoStats::default()
            }
        );
        for w in 0..20u64 {
            assert!(!t.probe(rowset_digest(&[w])), "stale epoch must miss");
        }
    }

    #[test]
    fn epoch_wrap_skips_empty_sentinel() {
        let t = MemoTable::new(8);
        for _ in 0..=(EPOCH_MASK as usize + 4) {
            t.reset();
            assert_ne!(t.epoch.load(Ordering::Relaxed), 0);
        }
    }

    #[test]
    fn concurrent_inserts_and_probes_keep_counters_consistent() {
        let t = MemoTable::new(256);
        scope(|s| {
            for w in 0..4u64 {
                let t = &t;
                s.spawn(move || {
                    // overlapping digest ranges force racing twins
                    for i in 0..500u64 {
                        let d = rowset_digest(&[(w * 250 + i) % 700]);
                        if !t.probe(d) {
                            t.insert(d);
                        }
                    }
                });
            }
        });
        let s = t.snapshot();
        assert_eq!(s.probes, 2000);
        assert_eq!(s.hits + s.misses, s.probes);
        // every one of the 700 distinct digests is either present
        // (inserted once) or was dropped on a full window
        assert!(s.inserts <= 700);
        for v in 0..700u64 {
            let d = rowset_digest(&[v]);
            // a probe hit must be stable once quiescent
            if t.probe(d) {
                assert!(t.probe(d));
            }
        }
    }
}

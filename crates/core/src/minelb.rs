//! MineLB — finding the lower bounds of a rule group (§3.4).
//!
//! Given a rule group's upper bound `A` (a closed itemset) and its
//! support set `R(A)`, the lower bounds are the *minimal* subsets
//! `l ⊆ A` with `R(l) = R(A)`. Equivalently, `l` must distinguish `R(A)`
//! from every row outside it: for each row `r ∉ R(A)`, `l` must contain
//! an item missing from `r` — so the lower bounds are the minimal
//! transversals of the complements `A \ I(r)`.
//!
//! MineLB computes them incrementally (Lemma 3.10): starting from the
//! singletons of `A`, it folds in one "blocking" closed set
//! `A' = I(r) ∩ A` at a time, replacing the bounds swallowed by `A'`
//! (`Γ1`) with minimal extensions `l1 ∪ {i}`, `i ∈ A \ A'`. Only maximal
//! blocking sets matter (Lemma 3.11). Itemsets are handled as positional
//! bitsets over `A` for speed.

use farmer_dataset::Dataset;
use rowset::{IdList, RowSet};

/// Computes the lower bounds of the rule group with upper bound `upper`
/// and antecedent support set `support_set` (row ids in `data`'s order).
///
/// Returns minimal antecedents as item-id lists, in no particular order.
/// The upper bound itself is returned when it has no proper generalizing
/// subset (e.g. a singleton upper bound).
///
/// ```
/// use farmer_core::minelb::mine_lower_bounds;
/// let data = farmer_dataset::paper_example();
/// // the {a,e,h} group of the running example (rows r2,r3,r4)
/// let upper = rowset::IdList::from_iter(
///     ["a", "e", "h"].iter().map(|n| data.item_by_name(n).unwrap()),
/// );
/// let support = data.rows_supporting(&upper);
/// let lows = mine_lower_bounds(&upper, &support, &data);
/// // Example 2 of the paper: lower bounds are e and h
/// let mut names: Vec<&str> = lows
///     .iter()
///     .map(|l| data.item_name(l.iter().next().unwrap()))
///     .collect();
/// names.sort();
/// assert_eq!(names, vec!["e", "h"]);
/// ```
pub fn mine_lower_bounds(upper: &IdList, support_set: &RowSet, data: &Dataset) -> Vec<IdList> {
    let width = upper.len();
    let item_of: Vec<u32> = upper.iter().collect();
    let pos_of = |item: u32| item_of.binary_search(&item).ok();

    // Blocking sets: for each row outside R(A), the part of A it does
    // contain (as positions in A). Keep only maximal ones (Lemma 3.11).
    let mut blockers: Vec<RowSet> = Vec::new();
    for r in 0..data.n_rows() {
        if support_set.contains(r) {
            continue;
        }
        let mut b = RowSet::empty(width);
        for item in data.row(r as u32).iter() {
            if let Some(p) = pos_of(item) {
                b.insert(p);
            }
        }
        blockers.push(b);
    }
    retain_maximal(&mut blockers);

    // Γ: current lower bounds, as positional bitsets. Initially the
    // singletons of A.
    let mut gamma: Vec<RowSet> = (0..width).map(|p| RowSet::from_ids(width, [p])).collect();

    for a_prime in &blockers {
        let (gamma1, gamma2): (Vec<RowSet>, Vec<RowSet>) =
            gamma.into_iter().partition(|l| l.is_subset(a_prime));
        // candidate new bounds: l1 ∪ {i}, i ∈ A \ A'
        let mut candidates: Vec<RowSet> = Vec::new();
        let complement: Vec<usize> = (0..width).filter(|&p| !a_prime.contains(p)).collect();
        for l1 in &gamma1 {
            for &i in &complement {
                let mut c = l1.clone();
                c.insert(i);
                candidates.push(c);
            }
        }
        // dedupe (requires grouping equals), then order smallest-first so
        // the single acceptance pass below sees potential covers early
        candidates.sort_by_key(|c| c.to_vec());
        candidates.dedup();
        candidates.sort_by_key(RowSet::len);
        // keep candidates covering neither a surviving bound nor a smaller
        // candidate
        let mut accepted: Vec<RowSet> = Vec::new();
        'cand: for c in candidates {
            for l2 in &gamma2 {
                if l2.is_subset(&c) {
                    continue 'cand;
                }
            }
            for a in &accepted {
                if a.is_subset(&c) {
                    continue 'cand;
                }
            }
            accepted.push(c);
        }
        gamma = gamma2;
        gamma.extend(accepted);
    }

    gamma
        .into_iter()
        .map(|l| IdList::from_iter(l.iter().map(|p| item_of[p])))
        .collect()
}

/// Drops every set that is a subset of another (keeps one copy of
/// duplicates).
fn retain_maximal(sets: &mut Vec<RowSet>) {
    sets.sort_by_key(|s| std::cmp::Reverse(s.len()));
    let mut kept: Vec<RowSet> = Vec::with_capacity(sets.len());
    for s in sets.drain(..) {
        if !kept.iter().any(|k| s.is_subset(k)) {
            kept.push(s);
        }
    }
    *sets = kept;
}

#[cfg(test)]
mod tests {
    use super::*;
    use farmer_dataset::DatasetBuilder;

    /// The worked Example 7 of the paper: A = abcde, rows abcf and cdeg.
    #[test]
    fn paper_example_7() {
        let mut b = DatasetBuilder::new(1);
        b.add_row_named(&["a", "b", "c", "d", "e"], 0); // carrier of A
        b.add_row_named(&["a", "b", "c", "f"], 0);
        b.add_row_named(&["c", "d", "e", "g"], 0);
        let d = b.build();
        let upper = IdList::from_iter(
            ["a", "b", "c", "d", "e"]
                .iter()
                .map(|n| d.item_by_name(n).unwrap()),
        );
        let support = RowSet::from_ids(3, [0]);
        let mut lows = mine_lower_bounds(&upper, &support, &d);
        let mut names: Vec<String> = lows
            .drain(..)
            .map(|l| {
                l.iter()
                    .map(|i| d.item_name(i).to_string())
                    .collect::<Vec<_>>()
                    .join("")
            })
            .collect();
        names.sort();
        assert_eq!(names, vec!["ad", "ae", "bd", "be"]);
    }

    #[test]
    fn no_blockers_gives_singletons() {
        // every row contains A: lower bounds are the singletons
        let mut b = DatasetBuilder::new(1);
        b.add_row_named(&["x", "y"], 0);
        b.add_row_named(&["x", "y", "z"], 0);
        let d = b.build();
        let upper = IdList::from_iter([d.item_by_name("x").unwrap(), d.item_by_name("y").unwrap()]);
        let support = RowSet::full(2);
        let lows = mine_lower_bounds(&upper, &support, &d);
        assert_eq!(lows.len(), 2);
        assert!(lows.iter().all(|l| l.len() == 1));
    }

    #[test]
    fn singleton_upper_bound() {
        let mut b = DatasetBuilder::new(1);
        b.add_row_named(&["x"], 0);
        b.add_row_named(&["y"], 0);
        let d = b.build();
        let upper = IdList::from_iter([d.item_by_name("x").unwrap()]);
        let support = RowSet::from_ids(2, [0]);
        let lows = mine_lower_bounds(&upper, &support, &d);
        assert_eq!(lows, vec![upper]);
    }

    #[test]
    fn retain_maximal_filters_subsets() {
        let mut v = vec![
            RowSet::from_ids(4, [0]),
            RowSet::from_ids(4, [0, 1]),
            RowSet::from_ids(4, [2]),
            RowSet::from_ids(4, [0, 1]),
        ];
        retain_maximal(&mut v);
        assert_eq!(v.len(), 2);
        assert!(v.contains(&RowSet::from_ids(4, [0, 1])));
        assert!(v.contains(&RowSet::from_ids(4, [2])));
    }

    /// Brute-force definition check: every returned bound l satisfies
    /// R(l) = R(A) and no proper subset does.
    #[test]
    fn bounds_are_minimal_generators() {
        let mut b = DatasetBuilder::new(1);
        b.add_row_named(&["a", "b", "c", "d"], 0);
        b.add_row_named(&["a", "b", "c", "d"], 0);
        b.add_row_named(&["a", "b", "x"], 0);
        b.add_row_named(&["c", "d", "x"], 0);
        b.add_row_named(&["a", "c", "x"], 0);
        let d = b.build();
        let upper = IdList::from_iter(
            ["a", "b", "c", "d"]
                .iter()
                .map(|n| d.item_by_name(n).unwrap()),
        );
        let support = d.rows_supporting(&upper);
        assert_eq!(support.to_vec(), vec![0, 1]);
        let lows = mine_lower_bounds(&upper, &support, &d);
        assert!(!lows.is_empty());
        for l in &lows {
            assert_eq!(d.rows_supporting(l), support, "R(l) != R(A) for {l:?}");
            // minimality: drop any one item and the support grows
            for drop in l.iter() {
                let smaller = IdList::from_iter(l.iter().filter(|&i| i != drop));
                if smaller.is_empty() {
                    continue;
                }
                assert_ne!(d.rows_supporting(&smaller), support, "{l:?} not minimal");
            }
        }
    }
}

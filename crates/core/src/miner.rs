//! The FARMER search: depth-first row enumeration with pruning.

use crate::cond::{BitsetNode, CondNode, Inspect, PointerNode};
use crate::measures::{self, chi_square, chi_square_upper_bound, convex_upper_bound, Contingency};
use crate::memo::{self, MemoTable};
use crate::minelb::mine_lower_bounds;
use crate::params::{Engine, ExtraConstraint, MiningParams, PruningConfig};
use crate::rule::{MineResult, MineStats, RuleGroup, SchedStats};
use crate::session::{
    ControlState, Heartbeat, MineControl, MineObserver, Miner, NoOpObserver, PruneReason,
    SharedBudget,
};
use crate::trace::{self, NoopTracer, TraceSink};
use farmer_dataset::{Dataset, RowId, TransposedTable};
use farmer_support::thread::WorkDeque;
use rowset::{IdList, RowSet};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::Instant;

/// One recursion frame's worth of buffers: everything a node of the
/// enumeration needs beyond its inputs. Pooled by [`NodeScratch`].
pub(crate) struct Frame<N> {
    /// Buffer the node's children are built into ([`CondNode::child_into`]).
    pub(crate) child: N,
    /// Buffer for the node's scan results.
    pub(crate) ins: Inspect,
    /// Positive candidates passed to children (post-compression).
    pub(crate) next_e_p: RowSet,
    /// Negative candidates passed to children (post-compression).
    pub(crate) next_e_n: RowSet,
    /// `next_e_p` minus the candidates already descended into; after the
    /// positive sweep it is empty and doubles as the negative children's
    /// (empty) `e_p`.
    pub(crate) remaining_p: RowSet,
    /// `next_e_n` minus the candidates already descended into.
    pub(crate) remaining_n: RowSet,
    /// `counted` for the children; the current child's row is inserted
    /// before descending and removed after, so one buffer serves all.
    pub(crate) counted_next: RowSet,
}

/// A pool of recursion [`Frame`]s, one arena per worker.
///
/// `acquire` pops a recycled frame (or builds one — this only happens
/// the first time the search reaches a given depth, so after a warm-up
/// descent the steady state performs **zero heap allocations per node**;
/// the allocation-guard test in `crates/core/tests` enforces this).
/// `release` pushes the frame back on unwind, buffers intact, for the
/// next sibling at that depth to reuse.
pub struct NodeScratch<N> {
    pool: Vec<Frame<N>>,
    n_rows: usize,
    in_flight: usize,
    peak: usize,
}

impl<N: CondNode> NodeScratch<N> {
    /// An empty arena for a dataset of `n_rows` rows.
    pub fn new(n_rows: usize) -> Self {
        NodeScratch {
            pool: Vec::new(),
            n_rows,
            in_flight: 0,
            peak: 0,
        }
    }

    /// Deepest number of simultaneously live frames seen — the arena's
    /// steady-state footprint in frames.
    pub fn peak_depth(&self) -> usize {
        self.peak
    }

    /// Pops a frame, building a fresh one from `proto`'s shell if the
    /// pool is dry (i.e. this is the deepest the search has been).
    pub(crate) fn acquire(&mut self, proto: &N) -> Frame<N> {
        self.in_flight += 1;
        self.peak = self.peak.max(self.in_flight);
        let n = self.n_rows;
        self.pool.pop().unwrap_or_else(|| Frame {
            child: proto.clone_shell(),
            ins: Inspect::new(n),
            next_e_p: RowSet::empty(n),
            next_e_n: RowSet::empty(n),
            remaining_p: RowSet::empty(n),
            remaining_n: RowSet::empty(n),
            counted_next: RowSet::empty(n),
        })
    }

    /// Returns a frame to the pool for reuse by a sibling node.
    pub(crate) fn release(&mut self, frame: Frame<N>) {
        self.in_flight -= 1;
        self.pool.push(frame);
    }
}

/// The FARMER miner. Configure with [`MiningParams`] (thresholds) and
/// optionally [`PruningConfig`] / [`Engine`], then call
/// [`mine`](Farmer::mine).
///
/// ```
/// use farmer_core::{Farmer, MiningParams};
/// let params = MiningParams::new(0).min_sup(2).min_conf(0.8);
/// let result = Farmer::new(params).mine(&farmer_dataset::paper_example());
/// assert!(result.groups.iter().all(|g| g.sup >= 2 && g.confidence() >= 0.8));
/// ```
pub struct Farmer {
    params: MiningParams,
    pruning: PruningConfig,
    engine: Engine,
    threads: usize,
    memo_capacity: usize,
    harvest: bool,
    frontier: Option<RowSet>,
}

impl Farmer {
    /// A miner with default pruning (all strategies) and the bitset
    /// engine.
    pub fn new(params: MiningParams) -> Self {
        Farmer {
            params,
            pruning: PruningConfig::default(),
            engine: Engine::default(),
            threads: 1,
            memo_capacity: 0,
            harvest: false,
            frontier: None,
        }
    }

    /// Switches the search into *harvest mode*: every closed group
    /// passing the support/confidence/χ² thresholds is returned, with
    /// the step-7 interestingness comparison skipped entirely (not
    /// merely deferred to the parallel merge). The incremental remine
    /// engine needs this because interestingness is a *global* property
    /// — a group untouched by a delta can become interesting when a
    /// delta kills its dominator — so the pipeline caches the full
    /// threshold-passing set and re-runs the comparison itself at
    /// publish time.
    pub fn with_harvest(mut self, on: bool) -> Self {
        self.harvest = on;
        self
    }

    /// Restricts the search to the *delta frontier* `frontier`, a set of
    /// row ids in the **original** (un-reordered) id space of the
    /// dataset handed to [`mine`](Farmer::mine):
    ///
    /// * a non-root node is pruned when its closed support set `z` *and*
    ///   both candidate-occurrence sets `u_p`/`u_n` are disjoint from
    ///   the frontier — no descendant's support set can ever reach a
    ///   frontier row, because a row of any descendant's `z` is in
    ///   `z ∪ u_p ∪ u_n` at every ancestor (rows only leave the
    ///   candidate sets by being folded into `z` or ordered before the
    ///   path, and back-ordered rows trigger the strategy-2 prune);
    /// * a group is emitted only when `z` intersects the frontier.
    ///
    /// Together these make the run return exactly the threshold-passing
    /// closed groups whose support set touches a frontier row — the
    /// groups an append-only delta can have created or changed.
    pub fn with_frontier(mut self, frontier: RowSet) -> Self {
        self.frontier = Some(frontier);
        self
    }

    /// Overrides the pruning strategy switchboard (for ablations).
    pub fn with_pruning(mut self, pruning: PruningConfig) -> Self {
        self.pruning = pruning;
        self
    }

    /// Selects the conditional-table engine.
    pub fn with_engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// Mines the depth-1 subtrees of the row-enumeration tree on
    /// `threads` worker threads (1 = the sequential algorithm).
    ///
    /// The subtrees are independent: pruning strategies 1–3 depend only
    /// on a node's own path, so each worker claims root candidates from
    /// a shared work-stealing queue and searches them with the full
    /// machinery, and the interestingness comparison of step 7 — the
    /// only globally ordered step — runs as a definition-equivalent
    /// post-pass over the merged groups. Results are identical to the
    /// sequential run (enforced by tests). A node budget is drawn from
    /// one shared pool, so a budgeted run expands exactly `budget` nodes
    /// in total regardless of thread count (which nodes depends on the
    /// interleaving; see `run_parallel`).
    pub fn with_parallelism(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Enables the shared prune/memo table with (at least) `capacity`
    /// slots; `0` (the default) disables it.
    ///
    /// The table memoizes the backward scan of pruning strategy 2: once
    /// any worker closes a row set, every later node with an equal
    /// closed set — on any thread — is pruned by a single digest probe
    /// instead of a rescan. A hit is provably equivalent to the back
    /// scan it replaces (see [`memo`]), so the memo never changes which
    /// groups are emitted or any [`MineStats`] counter; it only
    /// relocates where the `pruned_duplicate` time is spent. When
    /// pruning strategies 1 or 2 are disabled the equivalence argument
    /// breaks down, so the memo silently stays off for those ablation
    /// configs.
    pub fn with_memo_capacity(mut self, capacity: usize) -> Self {
        self.memo_capacity = capacity;
        self
    }

    /// The memo table this run should use, if any: requested *and*
    /// sound. A memo hit asserts "an equal closed row set already
    /// passed the back scan", which substitutes for this node's back
    /// scan only while strategy 2 performs that scan and strategy 1
    /// guarantees at most one back-scan survivor per closed set —
    /// with compression off, both `{z₁}`-closers and deeper
    /// `{z₁,z₂}`-closers survive the scan, and memo-pruning the deeper
    /// one would drop its descendants' groups.
    fn memo_table(&self) -> Option<MemoTable> {
        (self.memo_capacity > 0
            && self.pruning.strategy1_compression
            && self.pruning.strategy2_duplicate)
            .then(|| MemoTable::new(self.memo_capacity))
    }

    /// Mines all interesting rule groups of `data` for the configured
    /// target class.
    ///
    /// Row ids in the returned groups refer to `data`'s original row
    /// order regardless of the internal `ORD` permutation.
    ///
    /// Equivalent to [`mine_session`](Self::mine_session) with an
    /// unconstrained [`MineControl`] and a [`NoOpObserver`].
    pub fn mine(&self, data: &Dataset) -> MineResult {
        self.mine_session(data, &MineControl::new(), &mut NoOpObserver)
    }

    /// Mines under a [`MineControl`] (budget / deadline / cancellation),
    /// reporting progress to a [`MineObserver`].
    ///
    /// The observer is statically dispatched: with [`NoOpObserver`] this
    /// monomorphizes to the uninstrumented search. If the control stops
    /// the run early, the returned groups are exactly the prefix of the
    /// sequential run's discovery order accepted before the halting node
    /// — every group valid, none added on the unwind — and
    /// `stats.budget_exhausted` / `stats.stop` record the truncation.
    ///
    /// ```
    /// use farmer_core::{CountingObserver, Farmer, MineControl, MiningParams, StopCause};
    /// use std::time::Duration;
    ///
    /// let data = farmer_dataset::paper_example();
    /// let ctl = MineControl::new().with_timeout(Duration::from_secs(10));
    /// let handle = ctl.stop_handle(); // could cancel from another thread
    /// let mut obs = CountingObserver::default();
    ///
    /// let result = Farmer::new(MiningParams::new(0)).mine_session(&data, &ctl, &mut obs);
    ///
    /// assert_eq!(result.stats.stop, StopCause::Completed);
    /// assert_eq!(obs.nodes, result.stats.nodes_visited);
    /// assert_eq!(obs.emitted as usize, result.len());
    /// assert!(!handle.is_stopped());
    /// ```
    pub fn mine_session<O: MineObserver + ?Sized>(
        &self,
        data: &Dataset,
        ctl: &MineControl,
        obs: &mut O,
    ) -> MineResult {
        self.mine_session_traced(data, ctl, obs, &NoopTracer)
    }

    /// [`mine_session`](Self::mine_session) while recording phase
    /// spans, steal instants, and latency histograms into `tracer`.
    ///
    /// Like the observer, the tracer is statically dispatched: with
    /// [`NoopTracer`] (what `mine_session` passes) every instrumentation
    /// site monomorphizes away and the search compiles to the exact
    /// untraced code — pinned by the alloc-guard test and the
    /// `BENCH_PR4.json` overhead bound. Sequential runs record on lane
    /// 0; parallel runs give worker `w` its own lane `w + 1` (its own
    /// track in the Chrome export).
    pub fn mine_session_traced<O, T>(
        &self,
        data: &Dataset,
        ctl: &MineControl,
        obs: &mut O,
        tracer: &T,
    ) -> MineResult
    where
        O: MineObserver + ?Sized,
        T: TraceSink + ?Sized,
    {
        let (tt, reordered, order) = {
            let _transpose = trace::span(tracer, trace::LANE_MAIN, trace::SPAN_TRANSPOSE);
            TransposedTable::for_mining(data, self.params.target_class)
        };
        // the frontier arrives in original row ids; the search runs in
        // ORD space, so map it through the permutation once
        let frontier = self.frontier.as_ref().map(|f| {
            assert_eq!(
                f.capacity(),
                data.n_rows(),
                "frontier capacity must match the dataset row count"
            );
            let mut fr = RowSet::empty(data.n_rows());
            for (new, &old) in order.iter().enumerate() {
                if f.contains(old as usize) {
                    fr.insert(new);
                }
            }
            fr
        });
        let frontier = frontier.as_ref();
        if self.threads > 1 {
            return match self.engine {
                Engine::Bitset => self.run_parallel(
                    &BitsetNode::root(&reordered),
                    &reordered,
                    &tt,
                    &order,
                    frontier,
                    ctl,
                    obs,
                    tracer,
                ),
                Engine::PointerList => self.run_parallel(
                    &PointerNode::root(&tt),
                    &reordered,
                    &tt,
                    &order,
                    frontier,
                    ctl,
                    obs,
                    tracer,
                ),
            };
        }
        match self.engine {
            Engine::Bitset => self.run(
                BitsetNode::root(&reordered),
                &reordered,
                &tt,
                &order,
                frontier,
                ctl,
                obs,
                tracer,
            ),
            Engine::PointerList => self.run(
                PointerNode::root(&tt),
                &reordered,
                &tt,
                &order,
                frontier,
                ctl,
                obs,
                tracer,
            ),
        }
    }

    /// The budget honored by a session: the control's, falling back to
    /// the deprecated params field.
    fn resolve_budget(&self, ctl: &MineControl) -> Option<u64> {
        ctl.node_budget.or(self.params.node_budget)
    }

    #[allow(clippy::too_many_arguments)]
    fn run<N, O, T>(
        &self,
        root: N,
        reordered: &Dataset,
        tt: &TransposedTable,
        order: &[RowId],
        frontier: Option<&RowSet>,
        ctl: &MineControl,
        obs: &mut O,
        tracer: &T,
    ) -> MineResult
    where
        N: CondNode,
        O: MineObserver + ?Sized,
        T: TraceSink + ?Sized,
    {
        let n = reordered.n_rows();
        let m = tt.n_target();
        let eff_min_conf = self.effective_min_conf(n, m);
        let memo = self.memo_table();
        let mut ctx = Ctx {
            params: &self.params,
            pruning: &self.pruning,
            n,
            m,
            eff_min_conf,
            pos_mask: RowSet::from_ids(n, 0..m),
            ctl: ctl.state_with_budget(self.resolve_budget(ctl)),
            heartbeat_every: ctl.heartbeat_every,
            start: Instant::now(),
            obs,
            tracer,
            lane: trace::LANE_MAIN,
            stats: MineStats::default(),
            irgs: Vec::new(),
            defer_interesting: self.harvest,
            frontier,
            memo: memo.as_ref(),
            split: None,
            current_root: 0,
        };
        let e_p = RowSet::from_ids(n, 0..m);
        let e_n = RowSet::from_ids(n, m..n);
        let mut scratch = NodeScratch::new(n);
        {
            let _enumerate = trace::span(tracer, trace::LANE_MAIN, trace::SPAN_ENUMERATE);
            ctx.visit(
                &mut scratch,
                &root,
                None,
                &RowSet::empty(n),
                &e_p,
                &e_n,
                0,
                0,
                0,
            );
        }
        let irgs = ctx.irgs;
        let stats = ctx.stats;
        let sched = SchedStats {
            steals: 0,
            worker_nodes: vec![stats.nodes_visited],
            peak_arena_depth: scratch.peak_depth(),
            memo: memo.as_ref().map(MemoTable::snapshot).unwrap_or_default(),
        };
        emit_memo_counters(tracer, &sched.memo);
        self.package(irgs, stats, sched, reordered, order, n, m, tracer)
    }

    /// Parallel search: the root is built and scanned **once** (the
    /// engines borrow the dataset's own tuple store, so the root is
    /// `Sync` and shared by reference), and the depth-1 subtrees are
    /// seeded round-robin into per-worker [`WorkDeque`]s — the owner
    /// works its own deque LIFO while dry workers steal FIFO from the
    /// others, so a worker stuck in a heavy subtree sheds its queued
    /// roots to the rest. When every deque runs dry and some subtree is
    /// still grinding, its worker notices the `hungry` count and
    /// **splits**: depth-1 nodes push their not-yet-descended children
    /// as packed `(root, child)` tasks instead of recursing, and the
    /// claimant replays the child's exact recursion state from the
    /// shared root scan — the visited-node multiset is identical to the
    /// unsplit run, so [`MineStats`] stay deterministic. Workers also
    /// share one [`MemoTable`] (when enabled), letting any worker skip
    /// subtrees another already closed. Threshold-passing groups are
    /// merged and the interestingness filter runs as a final pass
    /// (equivalent to step 7 by Lemma 3.4); for complete runs the merged
    /// output and [`MineStats`] are deterministic regardless of
    /// scheduling. The workers run uninstrumented (their `MineStats`
    /// already tally everything); after the join, `obs` receives each
    /// worker's counters via [`MineObserver::worker_finished`] in
    /// worker-index order, and the sequential merge pass fires the
    /// `group_emitted` / `pruned(NotInteresting)` events — a
    /// deterministic event sequence regardless of thread scheduling.
    ///
    /// All workers share the control's stop flag and deadline, and draw
    /// nodes from one [`SharedBudget`] pool, so a budgeted run expands
    /// exactly `budget` nodes in total whatever the thread count —
    /// matching the sequential truncation point. *Which* nodes those are
    /// depends on how the stealing interleaves, so a truncated parallel
    /// run's group set may vary between runs (each is still a valid
    /// partial result: every group real, none added on the unwind);
    /// complete runs are unaffected.
    #[allow(clippy::too_many_arguments)]
    fn run_parallel<N, O, T>(
        &self,
        root: &N,
        reordered: &Dataset,
        tt: &TransposedTable,
        order: &[RowId],
        frontier: Option<&RowSet>,
        ctl: &MineControl,
        obs: &mut O,
        tracer: &T,
    ) -> MineResult
    where
        N: CondNode + Sync,
        O: MineObserver + ?Sized,
        T: TraceSink + ?Sized,
    {
        let n = reordered.n_rows();
        let m = tt.n_target();
        let eff_min_conf = self.effective_min_conf(n, m);
        let threads = self.threads;
        let shared_budget = self.resolve_budget(ctl).map(SharedBudget::new);
        let budget = shared_budget.as_ref();
        let memo = self.memo_table();
        let memo_ref = memo.as_ref();

        // replicate the sequential root step once (no compression at the
        // root, exact candidates), then queue the depth-1 subtrees
        let e_p = RowSet::from_ids(n, 0..m);
        let e_n = RowSet::from_ids(n, m..n);
        let ins = root.inspect(&e_p, &e_n);
        let pos_mask = RowSet::from_ids(n, 0..m);
        let sup_p0 = ins.z.intersection_len(&pos_mask);
        let sup_n0 = ins.z.len() - sup_p0;
        // candidates in sequential order: positives then negatives
        let cands: Vec<usize> = ins.u_p.iter().chain(ins.u_n.iter()).collect();
        let n_pos = ins.u_p.len();

        // Per-worker deques, seeded round-robin before any worker runs
        // (so the pre-spawn pushes need no synchronization). Seeds go in
        // reversed so the owner's LIFO pops claim its roots in ascending
        // (sequential) order; split pushes later ride the same deques.
        // Capacity covers the worst seed share plus a split burst —
        // overflowing pushes are simply run inline by the splitter.
        let deque_cap = (cands.len() / threads.max(1) + 2)
            .next_power_of_two()
            .max(256);
        let deques: Vec<WorkDeque> = (0..threads).map(|_| WorkDeque::new(deque_cap)).collect();
        for (w, dq) in deques.iter().enumerate() {
            let seeds: Vec<usize> = (w..cands.len()).step_by(threads).collect();
            for &idx in seeds.iter().rev() {
                assert!(dq.push(idx as u64), "deque sized to fit its seed share");
            }
        }
        // Tasks seeded or split but not yet executed. A split increments
        // *before* pushing and the claimant decrements only *after* the
        // subtree returns, so the count can't touch zero while any task
        // is pending — that makes `in_flight == 0` a safe termination
        // signal for starving workers. `halt` covers the other exit:
        // budget/deadline/cancel stops a worker with tasks still queued.
        let in_flight = AtomicUsize::new(cands.len());
        let hungry = AtomicUsize::new(0);
        let halt = AtomicBool::new(false);

        type WorkerOut = (Vec<Pending>, MineStats, u64, usize);
        let results: Vec<WorkerOut> = farmer_support::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|w| {
                    let (ins, cands, deques) = (&ins, &cands, &deques);
                    let (in_flight, hungry, halt) = (&in_flight, &hungry, &halt);
                    scope.spawn(move || {
                        let lane = trace::worker_lane(w);
                        let _enumerate = trace::span(tracer, lane, trace::SPAN_ENUMERATE);
                        let mut noop = NoOpObserver;
                        let mut ctx = Ctx {
                            params: &self.params,
                            pruning: &self.pruning,
                            n,
                            m,
                            eff_min_conf,
                            pos_mask: RowSet::from_ids(n, 0..m),
                            ctl: ctl.state_with_shared(budget),
                            heartbeat_every: 0,
                            start: Instant::now(),
                            obs: &mut noop,
                            tracer,
                            lane,
                            stats: MineStats::default(),
                            irgs: Vec::new(),
                            defer_interesting: true,
                            frontier,
                            memo: memo_ref,
                            split: Some(SplitCtx {
                                deque: &deques[w],
                                hungry,
                                in_flight,
                            }),
                            current_root: 0,
                        };
                        ctx.stats.nodes_visited += 1; // the shared root
                        let mut scratch = NodeScratch::new(n);
                        // depth-1 task buffers
                        let mut child = root.clone_shell();
                        let mut counted = RowSet::empty(n);
                        let mut rem_p = RowSet::empty(n);
                        let mut rem_n = RowSet::empty(n);
                        // split-task replay buffers (see `Replay`)
                        let mut child2 = root.clone_shell();
                        let mut ins1 = crate::cond::Inspect::new(n);
                        let mut task_e_p = RowSet::empty(n);
                        let mut task_e_n = RowSet::empty(n);
                        let mut steals = 0u64;
                        // FIFO-steal the next victim round-robin from w
                        let try_steal = |steals: &mut u64| -> Option<u64> {
                            for off in 1..threads {
                                if let Some(t) = deques[(w + off) % threads].steal() {
                                    *steals += 1;
                                    if tracer.enabled() {
                                        tracer.instant(lane, trace::SPAN_STEAL);
                                    }
                                    return Some(t);
                                }
                            }
                            None
                        };
                        loop {
                            if ctx.stats.budget_exhausted {
                                // release anyone starving on in_flight:
                                // queued tasks will never run
                                halt.store(true, Ordering::Release);
                                break;
                            }
                            let task = match deques[w].pop().or_else(|| try_steal(&mut steals)) {
                                Some(t) => t,
                                None => {
                                    // every deque is dry: advertise the
                                    // starvation (so busy workers start
                                    // splitting) and wait for a split
                                    // task, run-out, or halt
                                    hungry.fetch_add(1, Ordering::SeqCst);
                                    let mut got = None;
                                    let mut spins = 0u32;
                                    while !halt.load(Ordering::Acquire)
                                        && in_flight.load(Ordering::SeqCst) > 0
                                    {
                                        got = try_steal(&mut steals);
                                        if got.is_some() {
                                            break;
                                        }
                                        // yield first (cheap wake-up on
                                        // real cores), then back off to
                                        // short sleeps: when workers
                                        // outnumber cores a pure yield
                                        // loop steals timeslices from
                                        // the thread doing real work
                                        spins += 1;
                                        if spins < 64 {
                                            std::thread::yield_now();
                                        } else {
                                            std::thread::sleep(std::time::Duration::from_micros(
                                                50,
                                            ));
                                        }
                                    }
                                    hungry.fetch_sub(1, Ordering::SeqCst);
                                    match got {
                                        Some(t) => t,
                                        None => break,
                                    }
                                }
                            };
                            let idx = (task & u64::from(u32::MAX)) as usize;
                            let r = cands[idx];
                            match (task >> 32) as u32 {
                                0 => {
                                    // depth-1 root task: exactly the
                                    // sequential root's descend step
                                    ctx.current_root = idx as u32;
                                    counted.clear();
                                    counted.insert(r);
                                    root.child_into(r as RowId, &mut child);
                                    if idx < n_pos {
                                        // positive subtree: candidates after r
                                        rem_p.copy_from(&ins.u_p);
                                        rem_p.clear_through(r);
                                        ctx.visit(
                                            &mut scratch,
                                            &child,
                                            Some(r as RowId),
                                            &counted,
                                            &rem_p,
                                            &ins.u_n,
                                            sup_p0,
                                            sup_n0,
                                            1,
                                        );
                                    } else {
                                        // negative subtree: no positive candidates
                                        rem_p.clear();
                                        rem_n.copy_from(&ins.u_n);
                                        rem_n.clear_through(r);
                                        ctx.visit(
                                            &mut scratch,
                                            &child,
                                            Some(r as RowId),
                                            &counted,
                                            &rem_p,
                                            &rem_n,
                                            sup_p0,
                                            sup_n0,
                                            1,
                                        );
                                    }
                                }
                                c_plus_1 => {
                                    // split task: replay the depth-1 node
                                    // (r)'s state from the shared root scan,
                                    // then run its child c's subtree. The
                                    // replay is pure arithmetic — no tick, no
                                    // node count — because the depth-1 node
                                    // was already visited by the splitter.
                                    let c = (c_plus_1 - 1) as usize;
                                    root.child_into(r as RowId, &mut child);
                                    if idx < n_pos {
                                        task_e_p.copy_from(&ins.u_p);
                                        task_e_p.clear_through(r);
                                        task_e_n.copy_from(&ins.u_n);
                                    } else {
                                        task_e_p.clear();
                                        task_e_n.copy_from(&ins.u_n);
                                        task_e_n.clear_through(r);
                                    }
                                    child.inspect_into(&task_e_p, &task_e_n, &mut ins1);
                                    let sup_p1 = ins1.z.intersection_len(&ctx.pos_mask);
                                    let sup_n1 = ins1.z.len() - sup_p1;
                                    counted.clear();
                                    counted.insert(r);
                                    if self.pruning.strategy1_compression {
                                        // mirror visit_scanned's step 5
                                        ins1.u_p.difference_into(&ins1.z, &mut rem_p);
                                        ins1.u_n.difference_into(&ins1.z, &mut rem_n);
                                        task_e_p.union_with(&task_e_n);
                                        task_e_p.intersect_with(&ins1.z);
                                        counted.union_with(&task_e_p);
                                    } else {
                                        rem_p.copy_from(&ins1.u_p);
                                        rem_n.copy_from(&ins1.u_n);
                                    }
                                    debug_assert!(!counted.contains(c));
                                    counted.insert(c);
                                    child.child_into(c as RowId, &mut child2);
                                    if c < m {
                                        // positive child: later positives
                                        // plus the full negative list
                                        rem_p.clear_through(c);
                                    } else {
                                        // negative child: positives drained,
                                        // later negatives remain
                                        rem_p.clear();
                                        rem_n.clear_through(c);
                                    }
                                    ctx.visit(
                                        &mut scratch,
                                        &child2,
                                        Some(c as RowId),
                                        &counted,
                                        &rem_p,
                                        &rem_n,
                                        sup_p1,
                                        sup_n1,
                                        2,
                                    );
                                }
                            }
                            in_flight.fetch_sub(1, Ordering::SeqCst);
                        }
                        (ctx.irgs, ctx.stats, steals, scratch.peak_depth())
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("mining worker panicked"))
                .collect()
        });

        // deterministic observer delivery: per-worker tallies in
        // worker-index order, before the merge-phase events below
        for (worker, (_, s, _, _)) in results.iter().enumerate() {
            obs.worker_finished(worker, s);
        }

        // merge: dedupe by upper bound, combine stats
        let _merge = trace::span(tracer, trace::LANE_MAIN, trace::SPAN_MERGE);
        let mut stats = MineStats::default();
        let mut sched = SchedStats::default();
        let mut by_upper: std::collections::HashMap<IdList, Pending> =
            std::collections::HashMap::new();
        for (pendings, s, steals, peak) in results {
            stats.nodes_visited += s.nodes_visited;
            stats.pruned_duplicate += s.pruned_duplicate;
            stats.pruned_loose += s.pruned_loose;
            stats.pruned_tight_support += s.pruned_tight_support;
            stats.pruned_tight_confidence += s.pruned_tight_confidence;
            stats.pruned_chi += s.pruned_chi;
            stats.pruned_floor += s.pruned_floor;
            stats.pruned_frontier += s.pruned_frontier;
            stats.rows_compressed += s.rows_compressed;
            stats.budget_exhausted |= s.budget_exhausted;
            stats.stop = stats.stop.merge(s.stop);
            sched.steals += steals;
            sched.worker_nodes.push(s.nodes_visited);
            sched.peak_arena_depth = sched.peak_arena_depth.max(peak);
            for p in pendings {
                by_upper.entry(p.upper.clone()).or_insert(p);
            }
        }
        sched.memo = memo.as_ref().map(MemoTable::snapshot).unwrap_or_default();
        emit_memo_counters(tracer, &sched.memo);

        // final interestingness pass: generality order, keep a group iff
        // no accepted more-general group has confidence >= its own
        let mut pendings: Vec<Pending> = by_upper.into_values().collect();
        pendings.sort_by(|a, b| {
            a.upper
                .len()
                .cmp(&b.upper.len())
                .then_with(|| a.upper.cmp(&b.upper))
        });
        let mut accepted: Vec<Pending> = Vec::new();
        for p in pendings {
            // harvest mode returns the full threshold-passing set; the
            // caller owns the interestingness comparison
            let dominated = !self.harvest
                && accepted.iter().any(|a| {
                    a.upper.len() < p.upper.len() && a.upper.is_subset(&p.upper) && a.conf >= p.conf
                });
            if dominated {
                stats.rejected_not_interesting += 1;
                obs.pruned(PruneReason::NotInteresting);
            } else {
                obs.group_emitted(p.sup_p, p.sup_n);
                accepted.push(p);
            }
        }
        drop(_merge);
        self.package(accepted, stats, sched, reordered, order, n, m, tracer)
    }

    /// Folds any lift/conviction extras into the confidence threshold
    /// (see [`MiningParams::effective_min_conf`]).
    fn effective_min_conf(&self, n: usize, m: usize) -> f64 {
        self.params.effective_min_conf(n, m)
    }

    /// Maps pending groups back to original row ids, attaches lower
    /// bounds, and assembles the result.
    #[allow(clippy::too_many_arguments)]
    fn package<T: TraceSink + ?Sized>(
        &self,
        irgs: Vec<Pending>,
        stats: MineStats,
        sched: SchedStats,
        reordered: &Dataset,
        order: &[RowId],
        n: usize,
        m: usize,
        tracer: &T,
    ) -> MineResult {
        let _lb_span = if self.params.lower_bounds {
            Some(trace::span(
                tracer,
                trace::LANE_MAIN,
                trace::SPAN_LOWER_BOUNDS,
            ))
        } else {
            None
        };
        let groups = irgs
            .into_iter()
            .map(|p| {
                let mut support_set = RowSet::empty(n);
                for r in p.rows.iter() {
                    support_set.insert(order[r] as usize);
                }
                let lower = if self.params.lower_bounds {
                    if tracer.enabled() {
                        let t0 = tracer.now_ns();
                        let lower = mine_lower_bounds(&p.upper, &p.rows, reordered);
                        tracer.duration_ns(
                            trace::LANE_MAIN,
                            trace::HIST_LOWER_BOUND,
                            tracer.now_ns().saturating_sub(t0),
                        );
                        lower
                    } else {
                        mine_lower_bounds(&p.upper, &p.rows, reordered)
                    }
                } else {
                    Vec::new()
                };
                RuleGroup {
                    upper: p.upper,
                    lower,
                    support_set,
                    sup: p.sup_p,
                    neg_sup: p.sup_n,
                    class: self.params.target_class,
                    n_rows: n,
                    n_class: m,
                }
            })
            .collect();
        MineResult {
            groups,
            stats,
            sched,
            n_rows: n,
            n_class: m,
        }
    }
}

/// Publishes the final memo-table counters on the main lane so traced
/// runs fold memo traffic into the Chrome/Prometheus exports. One call
/// per run (at merge time), not per node — the counters are already
/// aggregated atomics.
fn emit_memo_counters<T: TraceSink + ?Sized>(tracer: &T, memo: &memo::MemoStats) {
    if tracer.enabled() && memo.capacity > 0 {
        tracer.counter(trace::LANE_MAIN, trace::COUNTER_MEMO_HITS, memo.hits);
        tracer.counter(trace::LANE_MAIN, trace::COUNTER_MEMO_MISSES, memo.misses);
        tracer.counter(trace::LANE_MAIN, trace::COUNTER_MEMO_INSERTS, memo.inserts);
        tracer.counter(
            trace::LANE_MAIN,
            trace::COUNTER_MEMO_COLLISIONS,
            memo.collisions,
        );
    }
}

/// The scheduler hooks a parallel worker threads through its [`Ctx`]:
/// everything a depth-1 node needs to shed its children to starving
/// peers instead of recursing into them.
struct SplitCtx<'a> {
    /// The worker's own deque — split children are pushed here (the
    /// deque's owner side), where idle thieves steal them FIFO.
    deque: &'a WorkDeque,
    /// Workers currently starving. Splitting costs a replay rescan, so
    /// nodes only split while someone is actually idle.
    hungry: &'a AtomicUsize,
    /// Seeded + split tasks not yet executed; `0` tells starving
    /// workers the run is over. Incremented *before* every push.
    in_flight: &'a AtomicUsize,
}

/// A discovered IRG, in reordered row-id space (pending final mapping).
struct Pending {
    upper: IdList,
    /// `R(upper)` in reordered ids.
    rows: RowSet,
    sup_p: usize,
    sup_n: usize,
    conf: f64,
}

struct Ctx<'a, O: MineObserver + ?Sized, T: TraceSink + ?Sized> {
    params: &'a MiningParams,
    pruning: &'a PruningConfig,
    n: usize,
    m: usize,
    /// `min_conf` tightened by any lift/conviction extras.
    eff_min_conf: f64,
    pos_mask: RowSet,
    /// Budget / deadline / stop-flag checks, one tick per node.
    ctl: ControlState<'a>,
    /// Nodes between observer heartbeats (0 = off).
    heartbeat_every: u64,
    start: Instant,
    obs: &'a mut O,
    /// Statically dispatched trace sink ([`NoopTracer`] = untraced).
    tracer: &'a T,
    /// The trace lane this context records on.
    lane: usize,
    stats: MineStats,
    irgs: Vec<Pending>,
    /// Parallel mode: skip the step-7 interestingness comparison here
    /// and let the merge phase run it over all threads' groups.
    defer_interesting: bool,
    /// Delta-restricted remine: prune subtrees that cannot reach these
    /// rows and emit only groups whose support set touches them, in
    /// reordered (ORD) id space. `None` = unrestricted.
    frontier: Option<&'a RowSet>,
    /// Shared memo table, when enabled *and* sound for the pruning
    /// config (see [`Farmer::memo_table`]).
    memo: Option<&'a MemoTable>,
    /// Parallel mode: the deque/starvation hooks for adaptive
    /// splitting. `None` in sequential runs.
    split: Option<SplitCtx<'a>>,
    /// Index (into the parallel run's candidate list) of the depth-1
    /// root this context is currently under — split tasks carry it so
    /// the claimant can replay the path. Meaningless when `split` is
    /// `None`.
    current_root: u32,
}

impl<O: MineObserver + ?Sized, T: TraceSink + ?Sized> Ctx<'_, O, T> {
    /// Offers child row `child` of the current depth-1 node to starving
    /// peers. Returns `true` when the child was packed into the deque
    /// (caller skips the recursion — someone will replay it), `false`
    /// when nobody is hungry or the deque is full (caller recurses as
    /// usual). `in_flight` goes up before the push so the task count
    /// can never read zero while this task is claimable.
    #[inline]
    fn try_split(&mut self, child: usize) -> bool {
        let Some(sp) = &self.split else { return false };
        if sp.hungry.load(Ordering::Relaxed) == 0 {
            return false;
        }
        sp.in_flight.fetch_add(1, Ordering::SeqCst);
        if sp
            .deque
            .push(((child as u64 + 1) << 32) | u64::from(self.current_root))
        {
            true
        } else {
            sp.in_flight.fetch_sub(1, Ordering::SeqCst);
            false
        }
    }

    /// One node of the enumeration tree (Figure 5's `MineIRGs`).
    ///
    /// `last` is the row whose addition created this node (`None` at the
    /// root); `counted` is `X` plus every row folded away by pruning
    /// strategy 1 at ancestors; `parent_sup_p`/`parent_sup_n` are the
    /// parent rule's exact support counts (for the loose bounds).
    ///
    /// Split in two so the scratch arena only pays a frame for nodes
    /// that survive the pre-scan checks: this wrapper runs the cheap
    /// accounting and the loose bounds, then borrows a [`Frame`] from
    /// `scratch` for [`visit_scanned`](Self::visit_scanned) and returns
    /// it afterwards. In steady state (warm pool) neither half heap-
    /// allocates; only emission of a threshold-passing group does.
    #[allow(clippy::too_many_arguments)]
    fn visit<N: CondNode>(
        &mut self,
        scratch: &mut NodeScratch<N>,
        node: &N,
        last: Option<RowId>,
        counted: &RowSet,
        e_p: &RowSet,
        e_n: &RowSet,
        parent_sup_p: usize,
        parent_sup_n: usize,
        depth: usize,
    ) {
        // Traced runs time the whole (inclusive) visit; the branch is
        // resolved at compile time for `NoopTracer`, leaving the
        // untraced hot path clock-free.
        if self.tracer.enabled() {
            let t0 = self.tracer.now_ns();
            self.visit_inner(
                scratch,
                node,
                last,
                counted,
                e_p,
                e_n,
                parent_sup_p,
                parent_sup_n,
                depth,
            );
            self.tracer.duration_ns(
                self.lane,
                trace::HIST_NODE_VISIT,
                self.tracer.now_ns().saturating_sub(t0),
            );
        } else {
            self.visit_inner(
                scratch,
                node,
                last,
                counted,
                e_p,
                e_n,
                parent_sup_p,
                parent_sup_n,
                depth,
            );
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn visit_inner<N: CondNode>(
        &mut self,
        scratch: &mut NodeScratch<N>,
        node: &N,
        last: Option<RowId>,
        counted: &RowSet,
        e_p: &RowSet,
        e_n: &RowSet,
        parent_sup_p: usize,
        parent_sup_n: usize,
        depth: usize,
    ) {
        if self.stats.budget_exhausted {
            return;
        }
        self.stats.nodes_visited += 1;
        self.obs.node_entered(depth);
        if let Some(cause) = self.ctl.tick() {
            self.stats.budget_exhausted = true;
            self.stats.stop = cause;
            return;
        }
        if MineControl::heartbeat_due(self.heartbeat_every, self.stats.nodes_visited) {
            self.obs.heartbeat(&Heartbeat {
                nodes_visited: self.stats.nodes_visited,
                groups_found: self.irgs.len(),
                elapsed: self.start.elapsed(),
            });
        }
        if self.tracer.enabled() && self.stats.nodes_visited & trace::NODE_COUNTER_MASK == 0 {
            self.tracer
                .counter(self.lane, trace::COUNTER_NODES, self.stats.nodes_visited);
        }
        let is_root = last.is_none();
        // under ORD, positives are exactly the rows below the class margin
        let last_is_pos = last.is_none_or(|r| (r as usize) < self.m);

        // ---- Pruning strategy 3, loose bounds (step 2): before scanning.
        if self.pruning.strategy3_loose && !is_root {
            let us2 = if last_is_pos {
                parent_sup_p + 1 + e_p.len()
            } else {
                parent_sup_p
            };
            if us2 < self.params.min_sup {
                self.stats.pruned_loose += 1;
                self.obs.pruned(PruneReason::LooseBound);
                return;
            }
            if self.eff_min_conf > 0.0 {
                let supn_in = parent_sup_n + usize::from(!last_is_pos);
                let uc2 = us2 as f64 / (us2 + supn_in) as f64;
                if uc2 < self.eff_min_conf {
                    self.stats.pruned_loose += 1;
                    self.obs.pruned(PruneReason::LooseBound);
                    return;
                }
            }
        }

        let mut frame = scratch.acquire(node);
        self.visit_scanned(
            scratch,
            &mut frame,
            node,
            last,
            counted,
            e_p,
            e_n,
            parent_sup_p,
            depth,
        );
        scratch.release(frame);
    }

    /// The scan-onwards half of [`visit`](Self::visit): steps 3–7 of
    /// `MineIRGs`, working entirely inside the borrowed frame `f`.
    /// Early `return`s land back in the wrapper, which releases the
    /// frame to the pool.
    #[allow(clippy::too_many_arguments)]
    fn visit_scanned<N: CondNode>(
        &mut self,
        scratch: &mut NodeScratch<N>,
        f: &mut Frame<N>,
        node: &N,
        last: Option<RowId>,
        counted: &RowSet,
        e_p: &RowSet,
        e_n: &RowSet,
        parent_sup_p: usize,
        depth: usize,
    ) {
        let is_root = last.is_none();
        let last_is_pos = last.is_none_or(|r| (r as usize) < self.m);

        // ---- Scan TT|X (step 3).
        if self.tracer.enabled() {
            let t0 = self.tracer.now_ns();
            node.inspect_into(e_p, e_n, &mut f.ins);
            self.tracer.duration_ns(
                self.lane,
                trace::HIST_FUSED_SCAN,
                self.tracer.now_ns().saturating_sub(t0),
            );
        } else {
            node.inspect_into(e_p, e_n, &mut f.ins);
        }

        // ---- Delta-restricted frontier: a subtree is worth entering
        // only if some descendant's support set can contain a frontier
        // row. Every row of a descendant's `z` appears in this node's
        // `z ∪ u_p ∪ u_n` (rows leave the candidate sets only by being
        // folded into `z` by compression or by being ordered before the
        // path, and the latter triggers the strategy-2 prune below), so
        // three disjointness tests prove the whole subtree frontier-free.
        // Never at the root: the root's `u` sets are the seed candidates
        // and pruning it would end the run.
        if let Some(fr) = self.frontier {
            if !is_root
                && f.ins.z.is_disjoint(fr)
                && f.ins.u_p.is_disjoint(fr)
                && f.ins.u_n.is_disjoint(fr)
            {
                self.stats.pruned_frontier += 1;
                return;
            }
        }

        // ---- Shared memo probe: before paying for the back scan, ask
        // whether *any* worker already closed this exact row set. A hit
        // is equivalent to a back-scan prune: with strategies 1+2 on
        // (the gate for `memo` being `Some`), exactly one node per
        // closed set survives the back scan and only survivors insert,
        // so a present digest proves the survivor ran elsewhere — and
        // this node, being a different node with an equal closed set,
        // is exactly what Lemma 3.6 prunes. Counting it as
        // `pruned_duplicate` therefore keeps every `MineStats` counter
        // identical with the memo on or off, at any thread count.
        let digest = match self.memo {
            Some(_) => memo::rowset_digest(f.ins.z.words()),
            None => 0,
        };
        if let Some(table) = self.memo {
            if !is_root && table.probe(digest) {
                self.stats.pruned_duplicate += 1;
                self.obs.pruned(PruneReason::Duplicate);
                return;
            }
        }

        // ---- Pruning strategy 2 (step 1 in the paper; our back scan is
        // part of the main scan). A row ordered before this node's deepest
        // row that occurs in every tuple — and was neither enumerated nor
        // compressed — proves every group below was discovered earlier
        // (Lemma 3.6).
        if self.pruning.strategy2_duplicate && !is_root {
            let last = last.expect("non-root has a last row") as usize;
            // z rows beyond `last` are candidates (current Y) or compressed
            // rows, both excluded by Lemma 3.6; only the back range matters.
            let has_alien_back = f
                .ins
                .z
                .iter()
                .take_while(|&r| r < last)
                .any(|r| !counted.contains(r));
            if has_alien_back {
                self.stats.pruned_duplicate += 1;
                self.obs.pruned(PruneReason::Duplicate);
                return;
            }
            // back-scan survivor: this is the unique node that closes
            // `z`, so publish it for every other worker (and for later
            // branches here). Publishing before the tight bounds is
            // deliberate — equal-`z` nodes get back-scan-pruned whether
            // or not the bounds kill this node afterwards.
            if let Some(table) = self.memo {
                table.insert(digest);
            }
        }

        // Exact support counts of the rule I(X) -> C at this node:
        // z = R(I(X)) under the empty-intersection convention.
        let sup_p = f.ins.z.intersection_len(&self.pos_mask);
        let sup_n = f.ins.z.len() - sup_p;

        // ---- Pruning strategy 3, tight bounds (step 4): after scanning.
        if self.pruning.strategy3_tight && !is_root {
            let us1 = if last_is_pos {
                parent_sup_p + 1 + f.ins.max_ep_tuple
            } else {
                parent_sup_p
            };
            if us1 < self.params.min_sup {
                self.stats.pruned_tight_support += 1;
                self.obs.pruned(PruneReason::TightSupport);
                return;
            }
            if self.eff_min_conf > 0.0 {
                let uc1 = us1 as f64 / (us1 + sup_n) as f64;
                if uc1 < self.eff_min_conf {
                    self.stats.pruned_tight_confidence += 1;
                    self.obs.pruned(PruneReason::TightConfidence);
                    return;
                }
            }
            if self.params.min_chi > 0.0 {
                let t = Contingency::new(sup_p + sup_n, sup_p, self.n, self.m);
                if chi_square_upper_bound(t) < self.params.min_chi {
                    self.stats.pruned_chi += 1;
                    self.obs.pruned(PruneReason::ChiBound);
                    return;
                }
            }
            // footnote-3 extras with convexity-based bounds (lift and
            // conviction already act through eff_min_conf)
            if !self.params.extra.is_empty() {
                let t = Contingency::new(sup_p + sup_n, sup_p, self.n, self.m);
                for c in &self.params.extra {
                    let prunable = match *c {
                        ExtraConstraint::MinEntropyGain(v) => {
                            convex_upper_bound(measures::entropy_gain, t) < v
                        }
                        ExtraConstraint::MinGiniGain(v) => {
                            convex_upper_bound(measures::gini_gain, t) < v
                        }
                        ExtraConstraint::MinCorrelation(v) if v > 0.0 => {
                            // φ = ±sqrt(χ²/n) pointwise, so the χ² bound
                            // caps the reachable positive correlation
                            (chi_square_upper_bound(t) / self.n.max(1) as f64).sqrt() < v
                        }
                        _ => false,
                    };
                    if prunable {
                        self.stats.pruned_chi += 1;
                        self.obs.pruned(PruneReason::ChiBound);
                        return;
                    }
                }
            }
        }

        // ---- Pruning strategy 1 (step 5): rows in every tuple are folded
        // into the counts and removed from the candidate lists. Never at
        // the root: the root emits no rule, so a row contained in every
        // tuple of the full table (possible only in degenerate data) would
        // otherwise have its group silently skipped.
        //
        // All in frame buffers: u_p ⊆ e_p and u_n ⊆ e_n, so subtracting
        // z is the same as subtracting the folded rows y = z ∩ e, and
        // counted ∪ y_p ∪ y_n = counted ∪ (z ∩ (e_p ∪ e_n)).
        if self.pruning.strategy1_compression && !is_root {
            self.stats.rows_compressed +=
                (f.ins.z.intersection_len(e_p) + f.ins.z.intersection_len(e_n)) as u64;
            f.ins.u_p.difference_into(&f.ins.z, &mut f.next_e_p);
            f.ins.u_n.difference_into(&f.ins.z, &mut f.next_e_n);
            e_p.union_into(e_n, &mut f.counted_next);
            f.counted_next.intersect_with(&f.ins.z);
            f.counted_next.union_with(counted);
        } else {
            f.next_e_p.copy_from(&f.ins.u_p);
            f.next_e_n.copy_from(&f.ins.u_n);
            f.counted_next.copy_from(counted);
        }

        // ---- Descend (step 6): positive candidates first, then negative,
        // in ascending ORD order. `remaining` shrinks as we iterate so each
        // child sees exactly the candidates ordered after it. The child's
        // `counted` is this node's plus the child row alone, so toggling
        // the row around the recursive call avoids a per-child copy (the
        // row is a live candidate, never already in `counted_next`).
        f.remaining_p.copy_from(&f.next_e_p);
        for r in f.next_e_p.iter() {
            if self.stats.budget_exhausted {
                break;
            }
            f.remaining_p.remove(r);
            // adaptive split: while peers starve, a depth-1 node sheds
            // this child as a replayable task instead of recursing
            if depth == 1 && self.try_split(r) {
                continue;
            }
            debug_assert!(!f.counted_next.contains(r));
            f.counted_next.insert(r);
            node.child_into(r as RowId, &mut f.child);
            self.visit(
                scratch,
                &f.child,
                Some(r as RowId),
                &f.counted_next,
                &f.remaining_p,
                &f.next_e_n,
                sup_p,
                sup_n,
                depth + 1,
            );
            f.counted_next.remove(r);
        }
        // after the positive sweep `remaining_p` is drained, so it doubles
        // as the negative children's (empty) positive candidate list; when
        // the sweep was cut short the budget check below fires first.
        f.remaining_n.copy_from(&f.next_e_n);
        for r in f.next_e_n.iter() {
            if self.stats.budget_exhausted {
                break;
            }
            f.remaining_n.remove(r);
            if depth == 1 && self.try_split(r) {
                continue;
            }
            debug_assert!(!f.counted_next.contains(r));
            f.counted_next.insert(r);
            node.child_into(r as RowId, &mut f.child);
            self.visit(
                scratch,
                &f.child,
                Some(r as RowId),
                &f.counted_next,
                &f.remaining_p,
                &f.remaining_n,
                sup_p,
                sup_n,
                depth + 1,
            );
            f.counted_next.remove(r);
        }

        // ---- Emit (step 7): after the whole subtree, so that every more
        // general group has already been judged (Lemma 3.4). A halted
        // search emits nothing further — not even this node's own (valid)
        // rule — so the accepted groups stay an exact prefix of the
        // sequential run's discovery order (partial-result guarantee).
        if is_root || self.stats.budget_exhausted {
            return;
        }
        // frontier-restricted runs report only groups a delta row
        // supports — anything else was already known before the delta
        if let Some(fr) = self.frontier {
            if f.ins.z.is_disjoint(fr) {
                return;
            }
        }
        if sup_p < self.params.min_sup {
            return;
        }
        let conf = sup_p as f64 / (sup_p + sup_n) as f64;
        if conf < self.eff_min_conf {
            return;
        }
        if self.params.min_chi > 0.0 {
            let chi = chi_square(Contingency::new(sup_p + sup_n, sup_p, self.n, self.m));
            if chi < self.params.min_chi {
                return;
            }
        }
        if !self.params.extra.is_empty() {
            let t = Contingency::new(sup_p + sup_n, sup_p, self.n, self.m);
            for c in &self.params.extra {
                let ok = match *c {
                    ExtraConstraint::MinLift(v) => measures::lift(t) >= v,
                    ExtraConstraint::MinConviction(v) => measures::conviction(t) >= v,
                    ExtraConstraint::MinEntropyGain(v) => measures::entropy_gain(t) >= v,
                    ExtraConstraint::MinGiniGain(v) => measures::gini_gain(t) >= v,
                    ExtraConstraint::MinCorrelation(v) => measures::correlation(t) >= v,
                };
                if !ok {
                    return;
                }
            }
        }
        let upper = IdList::from_iter(node.items().iter().copied());
        // a more general group has a strictly larger antecedent support
        // set (proper item subset ⟹ proper row superset), so integer and
        // confidence comparisons screen out almost every candidate before
        // the subset test — this loop dominates runtime when tens of
        // thousands of IRGs accumulate
        let total = sup_p + sup_n;
        for g in &self.irgs {
            let g_total = g.sup_p + g.sup_n;
            if g_total == total && g.upper == upper {
                // duplicate discovery — only reachable with pruning
                // strategy 2 disabled
                return;
            }
            if !self.defer_interesting
                && g_total > total
                && g.conf >= conf
                && g.upper.len() < upper.len()
                && g.upper.is_subset(&upper)
            {
                self.stats.rejected_not_interesting += 1;
                self.obs.pruned(PruneReason::NotInteresting);
                return;
            }
        }
        self.obs.group_emitted(sup_p, sup_n);
        self.irgs.push(Pending {
            upper,
            rows: f.ins.z.clone(),
            sup_p,
            sup_n,
            conf,
        });
    }
}

impl Miner for Farmer {
    fn name(&self) -> &'static str {
        "farmer"
    }

    fn mine_with(
        &self,
        data: &Dataset,
        ctl: &MineControl,
        obs: &mut dyn MineObserver,
    ) -> MineResult {
        self.mine_session(data, ctl, obs)
    }

    fn mine_traced(
        &self,
        data: &Dataset,
        ctl: &MineControl,
        obs: &mut dyn MineObserver,
        tracer: &dyn TraceSink,
    ) -> MineResult {
        let _session = trace::span(tracer, trace::LANE_MAIN, trace::SPAN_SESSION);
        self.mine_session_traced(data, ctl, obs, tracer)
    }
}

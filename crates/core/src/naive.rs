//! Brute-force oracle for rule groups and IRGs.
//!
//! This module re-derives everything FARMER computes straight from the
//! definitions of §2, with no pruning and no cleverness: enumerate every
//! row subset, take closures, group by antecedent support set, and apply
//! Definition 2.2 inductively. It is exponential in the number of rows
//! and exists solely so the test suite can check the real miner *exactly*
//! (upper bounds, supports, confidences, interestingness, and lower
//! bounds) on small inputs.

use crate::measures::{self, chi_square, Contingency};
use crate::params::{ExtraConstraint, MiningParams};
use crate::rule::{MineResult, MineStats, RuleGroup, SchedStats};
use crate::session::{
    Heartbeat, MineControl, MineObserver, Miner, NoOpObserver, PruneReason, StopCause,
};
use farmer_dataset::{ClassLabel, Dataset};
use rowset::{IdList, RowSet};
use std::collections::HashMap;
use std::time::Instant;

/// A rule group as found by exhaustive enumeration: the unique upper
/// bound together with its support set and class counts.
#[derive(Clone, Debug)]
pub struct NaiveGroup {
    /// Upper bound antecedent `I(R)`.
    pub upper: IdList,
    /// Antecedent support set `R`.
    pub rows: RowSet,
    /// `|R ∩ R(C)|`.
    pub sup_p: usize,
    /// `|R \ R(C)|`.
    pub sup_n: usize,
}

impl NaiveGroup {
    /// Rule confidence.
    pub fn confidence(&self) -> f64 {
        self.sup_p as f64 / (self.sup_p + self.sup_n) as f64
    }
}

/// Enumerates **all** rule groups with consequent `class` by brute force
/// (all `2^n - 1` row subsets). Panics if the dataset has more than 20
/// rows — this is strictly a test oracle.
pub fn enumerate_rule_groups(data: &Dataset, class: ClassLabel) -> Vec<NaiveGroup> {
    let n = data.n_rows();
    assert!(n <= 20, "naive enumeration is exponential; got {n} rows");
    let class_rows = data.class_rows(class);
    let mut by_support: HashMap<Vec<usize>, NaiveGroup> = HashMap::new();
    for mask in 1u32..(1u32 << n) {
        let rows = RowSet::from_ids(n, (0..n).filter(|&r| mask & (1 << r) != 0));
        let items = data.items_common_to(&rows);
        if items.is_empty() {
            continue;
        }
        let support = data.rows_supporting(&items);
        let key = support.to_vec();
        by_support.entry(key).or_insert_with(|| {
            // the upper bound of the group is the closure I(R(items))
            let upper = data.items_common_to(&support);
            let sup_p = support.intersection_len(&class_rows);
            NaiveGroup {
                sup_n: support.len() - sup_p,
                upper,
                rows: support,
                sup_p,
            }
        });
    }
    let mut groups: Vec<NaiveGroup> = by_support.into_values().collect();
    // deterministic order: by support-set contents
    groups.sort_by_key(|g| g.rows.to_vec());
    groups
}

/// Applies the user constraints and Definition 2.2 to the full set of
/// rule groups, returning the IRGs exactly as FARMER defines them:
/// a group is interesting iff it meets all thresholds and no *accepted*
/// more-general group has confidence ≥ its own.
pub fn mine_naive(data: &Dataset, params: &MiningParams) -> Vec<RuleGroup> {
    mine_naive_session(data, params, &MineControl::new(), &mut NoOpObserver).groups
}

/// [`mine_naive`] under a [`MineControl`], reporting to a
/// [`MineObserver`]. One control tick is spent per enumerated row
/// subset; a halted run filters only the groups enumerated so far
/// (every returned group meets the thresholds, but an undiscovered
/// more-general group may dominate one of them — the same caveat as any
/// truncated run).
pub fn mine_naive_session<O: MineObserver + ?Sized>(
    data: &Dataset,
    params: &MiningParams,
    ctl: &MineControl,
    obs: &mut O,
) -> MineResult {
    let n = data.n_rows();
    assert!(n <= 20, "naive enumeration is exponential; got {n} rows");
    let m = data.class_count(params.target_class);
    let class_rows = data.class_rows(params.target_class);
    let start = Instant::now();
    let mut st = ctl.state_with_budget(ctl.node_budget.or(params.node_budget));
    let mut stop = StopCause::Completed;

    let mut by_support: HashMap<Vec<usize>, NaiveGroup> = HashMap::new();
    for mask in 1u32..(1u32 << n) {
        obs.node_entered(mask.count_ones() as usize);
        if let Some(cause) = st.tick() {
            stop = cause;
            break;
        }
        if MineControl::heartbeat_due(ctl.heartbeat_every, st.ticks()) {
            obs.heartbeat(&Heartbeat {
                nodes_visited: st.ticks(),
                groups_found: by_support.len(),
                elapsed: start.elapsed(),
            });
        }
        let rows = RowSet::from_ids(n, (0..n).filter(|&r| mask & (1 << r) != 0));
        let items = data.items_common_to(&rows);
        if items.is_empty() {
            continue;
        }
        let support = data.rows_supporting(&items);
        let key = support.to_vec();
        by_support.entry(key).or_insert_with(|| {
            let upper = data.items_common_to(&support);
            let sup_p = support.intersection_len(&class_rows);
            NaiveGroup {
                sup_n: support.len() - sup_p,
                upper,
                rows: support,
                sup_p,
            }
        });
    }
    let mut groups: Vec<NaiveGroup> = by_support.into_values().collect();
    // generality order: smaller antecedents first, so every potential
    // generalization is judged before its specializations
    groups.sort_by_key(|g| (g.upper.len(), g.upper.as_slice().to_vec()));

    let mut stats = MineStats {
        nodes_visited: st.ticks(),
        budget_exhausted: !stop.is_complete(),
        stop,
        ..Default::default()
    };
    let mut accepted: Vec<NaiveGroup> = Vec::new();
    for g in groups {
        if g.sup_p < params.min_sup {
            continue;
        }
        let conf = g.confidence();
        if conf < params.min_conf {
            continue;
        }
        if params.min_chi > 0.0 {
            let chi = chi_square(Contingency::new(g.sup_p + g.sup_n, g.sup_p, n, m));
            if chi < params.min_chi {
                continue;
            }
        }
        let t = Contingency::new(g.sup_p + g.sup_n, g.sup_p, n, m);
        let extras_ok = params.extra.iter().all(|c| match *c {
            ExtraConstraint::MinLift(v) => measures::lift(t) >= v,
            ExtraConstraint::MinConviction(v) => measures::conviction(t) >= v,
            ExtraConstraint::MinEntropyGain(v) => measures::entropy_gain(t) >= v,
            ExtraConstraint::MinGiniGain(v) => measures::gini_gain(t) >= v,
            ExtraConstraint::MinCorrelation(v) => measures::correlation(t) >= v,
        });
        if !extras_ok {
            continue;
        }
        let dominated = accepted.iter().any(|a| {
            a.upper.len() < g.upper.len() && a.upper.is_subset(&g.upper) && a.confidence() >= conf
        });
        if dominated {
            stats.rejected_not_interesting += 1;
            obs.pruned(PruneReason::NotInteresting);
        } else {
            obs.group_emitted(g.sup_p, g.sup_n);
            accepted.push(g);
        }
    }

    let groups = accepted
        .into_iter()
        .map(|g| RuleGroup {
            lower: if params.lower_bounds {
                naive_lower_bounds(&g.upper, &g.rows, data)
            } else {
                Vec::new()
            },
            support_set: g.rows.clone(),
            sup: g.sup_p,
            neg_sup: g.sup_n,
            upper: g.upper,
            class: params.target_class,
            n_rows: n,
            n_class: m,
        })
        .collect();
    MineResult {
        groups,
        stats,
        sched: SchedStats::default(),
        n_rows: n,
        n_class: m,
    }
}

/// [`Miner`]-trait adapter over [`mine_naive_session`] — the exhaustive
/// oracle behind the unified interface (tiny datasets only).
#[derive(Clone, Debug)]
pub struct NaiveMiner {
    /// Thresholds and target class.
    pub params: MiningParams,
}

impl Miner for NaiveMiner {
    fn name(&self) -> &'static str {
        "naive"
    }

    fn mine_with(
        &self,
        data: &Dataset,
        ctl: &MineControl,
        obs: &mut dyn MineObserver,
    ) -> MineResult {
        mine_naive_session(data, &self.params, ctl, obs)
    }
}

/// Brute-force lower bounds: minimal `l ⊆ upper` with
/// `R(l) = support_set`, by subset enumeration over `upper`
/// (≤ 20 items).
pub fn naive_lower_bounds(upper: &IdList, support_set: &RowSet, data: &Dataset) -> Vec<IdList> {
    let items: Vec<u32> = upper.iter().collect();
    let w = items.len();
    assert!(w <= 20, "naive lower bounds are exponential; got {w} items");
    let mut found: Vec<u32> = Vec::new(); // masks of accepted bounds
    let mut masks: Vec<u32> = (1..(1u32 << w)).collect();
    masks.sort_by_key(|m| m.count_ones());
    for mask in masks {
        // subset test, not membership: f ⊆ mask iff f & mask == f
        #[allow(clippy::manual_contains)]
        if found.iter().any(|&f| f & mask == f) {
            continue; // a smaller bound is contained in this subset
        }
        let l = IdList::from_iter((0..w).filter(|&p| mask & (1 << p) != 0).map(|p| items[p]));
        if &data.rows_supporting(&l) == support_set {
            found.push(mask);
        }
    }
    found
        .into_iter()
        .map(|mask| IdList::from_iter((0..w).filter(|&p| mask & (1 << p) != 0).map(|p| items[p])))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use farmer_dataset::paper_example;

    #[test]
    fn finds_the_aeh_group() {
        let d = paper_example();
        let groups = enumerate_rule_groups(&d, 0);
        let aeh: Vec<u32> = ["a", "e", "h"]
            .iter()
            .map(|n| d.item_by_name(n).unwrap())
            .collect();
        let aeh = IdList::from_iter(aeh);
        let g = groups
            .iter()
            .find(|g| g.upper == aeh)
            .expect("aeh group exists");
        assert_eq!(g.rows.to_vec(), vec![1, 2, 3]);
        assert_eq!(g.sup_p, 2);
        assert_eq!(g.sup_n, 1);
        assert!((g.confidence() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn groups_have_distinct_support_sets_and_closed_uppers() {
        let d = paper_example();
        let groups = enumerate_rule_groups(&d, 0);
        for (i, g) in groups.iter().enumerate() {
            // upper bound is its own closure
            assert_eq!(d.items_common_to(&g.rows), g.upper);
            assert_eq!(d.rows_supporting(&g.upper), g.rows);
            for h in &groups[i + 1..] {
                assert_ne!(g.rows, h.rows, "duplicate support set");
            }
        }
    }

    #[test]
    fn irg_rejects_dominated_groups() {
        let d = paper_example();
        let params = MiningParams::new(0)
            .min_sup(1)
            .min_conf(0.0)
            .lower_bounds(false);
        let irgs = mine_naive(&d, &params);
        // every IRG must not be dominated by a more general IRG
        for g in &irgs {
            for h in &irgs {
                if h.upper.len() < g.upper.len() && h.upper.is_subset(&g.upper) {
                    assert!(
                        h.confidence() < g.confidence(),
                        "{:?} dominated by {:?}",
                        g.upper,
                        h.upper
                    );
                }
            }
        }
        assert!(!irgs.is_empty());
    }

    #[test]
    fn naive_lower_bounds_example_7() {
        let mut b = farmer_dataset::DatasetBuilder::new(1);
        b.add_row_named(&["a", "b", "c", "d", "e"], 0);
        b.add_row_named(&["a", "b", "c", "f"], 0);
        b.add_row_named(&["c", "d", "e", "g"], 0);
        let d = b.build();
        let upper = IdList::from_iter(
            ["a", "b", "c", "d", "e"]
                .iter()
                .map(|n| d.item_by_name(n).unwrap()),
        );
        let mut names: Vec<String> = naive_lower_bounds(&upper, &RowSet::from_ids(3, [0]), &d)
            .into_iter()
            .map(|l| {
                l.iter()
                    .map(|i| d.item_name(i).to_string())
                    .collect::<Vec<_>>()
                    .join("")
            })
            .collect();
        names.sort();
        assert_eq!(names, vec!["ad", "ae", "bd", "be"]);
    }
}

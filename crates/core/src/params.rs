//! Mining parameters and pruning/engine configuration.

use farmer_dataset::ClassLabel;

/// Additional interestingness constraints — the paper's footnote 3
/// ("other constraints such as lift, conviction, entropy gain, gini and
/// correlation coefficient can be handled similarly").
///
/// Each constraint is both *checked at emission* and *used for pruning*
/// with a sound upper bound: lift and conviction are monotone
/// transformations of confidence (given the fixed class margin), so they
/// tighten the effective minimum confidence; entropy gain and gini gain
/// are convex in the contingency counts, so the Morishita–Sese
/// parallelogram-vertex bound applies; positive correlation is bounded
/// through `φ² = χ²/n`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ExtraConstraint {
    /// `lift(rule) >= v`. `v > 1` demands positive association.
    MinLift(f64),
    /// `conviction(rule) >= v` (`v > 1` demands positive association;
    /// exact rules have conviction `+∞` and always pass).
    MinConviction(f64),
    /// `entropy_gain(rule) >= v` bits.
    MinEntropyGain(f64),
    /// `gini_gain(rule) >= v`.
    MinGiniGain(f64),
    /// `correlation(rule) >= v` for `v >= 0` (the φ coefficient).
    MinCorrelation(f64),
}

/// User-facing mining constraints (§2.2 of the paper).
#[derive(Clone, Debug, PartialEq)]
pub struct MiningParams {
    /// The consequent class `C` every mined rule predicts.
    pub target_class: ClassLabel,
    /// Minimum rule support `|R(A ∪ C)|`, as an absolute row count
    /// (≥ 1; the paper's "minsup = 1" effectively disables the
    /// constraint).
    pub min_sup: usize,
    /// Minimum confidence in `[0, 1]`; 0 disables confidence pruning.
    pub min_conf: f64,
    /// Minimum χ² value; 0 disables χ² pruning.
    pub min_chi: f64,
    /// Whether to run MineLB and attach lower bounds to each group
    /// (step 3 of Figure 5 — "Optional" in the paper, but included in
    /// FARMER's reported runtimes, so it defaults to `true`).
    pub lower_bounds: bool,
    /// Footnote-3 extension constraints, all of which must hold for a
    /// group to be reported (and all of which prune the search).
    pub extra: Vec<ExtraConstraint>,
    /// Optional cap on enumeration nodes. When exhausted the search
    /// stops and returns the groups discovered so far — a *superset-free
    /// but possibly incomplete* answer: every returned group is a real
    /// rule group meeting the thresholds, but groups not yet reached are
    /// missing and a returned group may be dominated by an undiscovered
    /// more-general one. Intended for downstream consumers (e.g.
    /// classifier training) that degrade gracefully; `None` (default)
    /// never truncates.
    ///
    /// **Deprecated location:** budgets belong to the run, not the
    /// thresholds — prefer `MineControl::node_budget` (which also
    /// carries deadlines and cancellation). This field remains honored
    /// as a fallback when the control sets no budget.
    pub node_budget: Option<u64>,
}

impl MiningParams {
    /// Parameters targeting `class` with everything else disabled:
    /// `min_sup = 1`, `min_conf = 0`, `min_chi = 0`, lower bounds on.
    pub fn new(class: ClassLabel) -> Self {
        MiningParams {
            target_class: class,
            min_sup: 1,
            min_conf: 0.0,
            min_chi: 0.0,
            lower_bounds: true,
            extra: Vec::new(),
            node_budget: None,
        }
    }

    /// Sets the minimum support (absolute count, clamped to ≥ 1).
    pub fn min_sup(mut self, s: usize) -> Self {
        self.min_sup = s.max(1);
        self
    }

    /// Sets the minimum confidence (clamped into `[0, 1]`).
    pub fn min_conf(mut self, c: f64) -> Self {
        assert!(!c.is_nan(), "min_conf must not be NaN");
        self.min_conf = c.clamp(0.0, 1.0);
        self
    }

    /// Sets the minimum χ² value (clamped to ≥ 0).
    pub fn min_chi(mut self, c: f64) -> Self {
        assert!(!c.is_nan(), "min_chi must not be NaN");
        self.min_chi = c.max(0.0);
        self
    }

    /// Enables or disables lower-bound computation.
    pub fn lower_bounds(mut self, on: bool) -> Self {
        self.lower_bounds = on;
        self
    }

    /// Adds a footnote-3 extension constraint.
    pub fn constrain(mut self, c: ExtraConstraint) -> Self {
        self.extra.push(c);
        self
    }

    /// Caps the number of enumeration nodes (see
    /// [`node_budget`](Self::node_budget) for the truncation semantics).
    #[deprecated(
        since = "0.2.0",
        note = "use MineControl::with_node_budget with Farmer::mine_session; \
                the params field remains honored as a fallback"
    )]
    pub fn node_budget(mut self, budget: Option<u64>) -> Self {
        self.node_budget = budget;
        self
    }

    /// The confidence floor the search actually enforces for a dataset
    /// with `n_rows` rows of which `n_class` carry the target class:
    /// `min_conf` tightened by any [`ExtraConstraint::MinLift`] /
    /// [`ExtraConstraint::MinConviction`] extras, which are monotone
    /// transformations of confidence once the class margin
    /// `p_c = n_class / n_rows` is fixed.
    ///
    /// Exposed so out-of-tree re-filters (the streaming pipeline's
    /// assembly pass re-screens cached groups after the margins moved)
    /// apply exactly the emission test the miner would.
    pub fn effective_min_conf(&self, n_rows: usize, n_class: usize) -> f64 {
        let mut eff = self.min_conf;
        if n_rows > 0 {
            let p_c = n_class as f64 / n_rows as f64;
            for c in &self.extra {
                match *c {
                    ExtraConstraint::MinLift(l) => {
                        eff = eff.max((l * p_c).min(1.0));
                    }
                    ExtraConstraint::MinConviction(v) if v > 0.0 => {
                        eff = eff.max((1.0 - (1.0 - p_c) / v).clamp(0.0, 1.0));
                    }
                    _ => {}
                }
            }
        }
        eff
    }

    /// Checks the parameters for values the builders would reject (or
    /// that a caller constructing the struct directly could smuggle in):
    /// non-finite or out-of-range `min_conf` / `min_chi` / extra
    /// thresholds, or a zero `min_sup`. The CLI calls this on raw user
    /// input instead of letting the builder assertions panic.
    pub fn validate(&self) -> Result<(), String> {
        if self.min_sup == 0 {
            return Err("min_sup must be >= 1".into());
        }
        if !self.min_conf.is_finite() || !(0.0..=1.0).contains(&self.min_conf) {
            return Err(format!(
                "min_conf must be a finite value in [0, 1], got {}",
                self.min_conf
            ));
        }
        if !self.min_chi.is_finite() || self.min_chi < 0.0 {
            return Err(format!(
                "min_chi must be a finite value >= 0, got {}",
                self.min_chi
            ));
        }
        for c in &self.extra {
            let v = match *c {
                ExtraConstraint::MinLift(v)
                | ExtraConstraint::MinConviction(v)
                | ExtraConstraint::MinEntropyGain(v)
                | ExtraConstraint::MinGiniGain(v)
                | ExtraConstraint::MinCorrelation(v) => v,
            };
            if v.is_nan() {
                return Err(format!("extra constraint threshold is NaN: {c:?}"));
            }
        }
        Ok(())
    }
}

/// Which pruning strategies the search applies.
///
/// All strategies are *sound* — any combination yields exactly the same
/// IRGs — so this switchboard exists for the ablation experiments, not
/// for tuning results. Defaults to everything on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PruningConfig {
    /// Strategy 1: delete candidate rows occurring in every tuple of the
    /// conditional table and fold them into the support counts
    /// (Lemma 3.5).
    pub strategy1_compression: bool,
    /// Strategy 2: stop when a skipped row proves the subtree's groups
    /// were all discovered earlier (Lemma 3.6, the "back scan").
    pub strategy2_duplicate: bool,
    /// Strategy 3, loose half: support/confidence bounds computable
    /// before scanning the conditional table (`Us2`, `Uc2`).
    pub strategy3_loose: bool,
    /// Strategy 3, tight half: support/confidence/χ² bounds after the
    /// scan (`Us1`, `Uc1`, Lemma 3.9).
    pub strategy3_tight: bool,
}

impl Default for PruningConfig {
    fn default() -> Self {
        PruningConfig {
            strategy1_compression: true,
            strategy2_duplicate: true,
            strategy3_loose: true,
            strategy3_tight: true,
        }
    }
}

impl PruningConfig {
    /// Every pruning strategy disabled — the plain enumeration of
    /// Figure 3. Exponentially slower; only for tests and ablations.
    pub fn none() -> Self {
        PruningConfig {
            strategy1_compression: false,
            strategy2_duplicate: false,
            strategy3_loose: false,
            strategy3_tight: false,
        }
    }

    /// All strategies enabled (same as `Default`).
    pub fn all() -> Self {
        Self::default()
    }
}

/// Which conditional-transposed-table representation the search uses.
///
/// Both engines traverse the identical enumeration tree and produce
/// identical results; they differ only in how `TT|X` is materialized.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Engine {
    /// Tuples held as row bitsets; scans are word-parallel. Fastest for
    /// the microarray shape and the default.
    #[default]
    Bitset,
    /// The paper's §3.3 layout: an in-memory transposed table with
    /// conditional pointer (cursor) lists per node. Kept as a faithful
    /// reference implementation and cross-check.
    PointerList,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_clamps() {
        let p = MiningParams::new(1).min_sup(0).min_conf(1.5).min_chi(-2.0);
        assert_eq!(p.min_sup, 1);
        assert_eq!(p.min_conf, 1.0);
        assert_eq!(p.min_chi, 0.0);
        assert_eq!(p.target_class, 1);
        assert!(p.lower_bounds);
        assert!(!p.lower_bounds(false).lower_bounds);
    }

    #[test]
    fn validate_accepts_builder_output_and_rejects_raw_garbage() {
        assert!(MiningParams::new(0)
            .min_conf(0.8)
            .min_chi(3.84)
            .validate()
            .is_ok());
        let mut p = MiningParams::new(0);
        p.min_sup = 0;
        assert!(p.validate().is_err());
        let mut p = MiningParams::new(0);
        p.min_conf = f64::NAN;
        assert!(p.validate().is_err());
        let mut p = MiningParams::new(0);
        p.min_conf = -0.5;
        assert!(p.validate().is_err());
        let mut p = MiningParams::new(0);
        p.min_chi = f64::INFINITY;
        assert!(p.validate().is_err());
        let mut p = MiningParams::new(0);
        p.extra.push(ExtraConstraint::MinLift(f64::NAN));
        assert!(p.validate().is_err());
    }

    #[test]
    fn pruning_presets() {
        assert_eq!(PruningConfig::all(), PruningConfig::default());
        let none = PruningConfig::none();
        assert!(!none.strategy1_compression && !none.strategy2_duplicate);
        assert!(!none.strategy3_loose && !none.strategy3_tight);
    }

    #[test]
    fn engine_default() {
        assert_eq!(Engine::default(), Engine::Bitset);
    }
}

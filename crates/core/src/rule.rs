//! Mined rule groups and mining results.

use crate::measures::{self, Contingency};
use crate::session::{PruneReason, StopCause};
use farmer_dataset::{ClassLabel, Dataset, ItemId};
use rowset::{IdList, RowSet};
use std::fmt;

/// One interesting rule group `G`, identified by its unique upper bound.
///
/// Every rule `A → C` with `lower ⊆ A ⊆ upper` (for some lower bound)
/// belongs to the group and shares the same support set, support,
/// confidence, and χ² value (Lemma 2.2).
///
/// Row ids in [`support_set`](Self::support_set) refer to the *original*
/// dataset row order (the miner undoes its internal `ORD` permutation
/// before reporting).
#[derive(Clone, Debug, PartialEq)]
pub struct RuleGroup {
    /// The upper bound antecedent: `I(R(A))`, the most specific itemset.
    pub upper: IdList,
    /// The lower bounds (most general antecedents). Empty when lower
    /// bound computation was disabled.
    pub lower: Vec<IdList>,
    /// `R(A)` — all rows matching the antecedent, in original row ids.
    pub support_set: RowSet,
    /// `|R(A ∪ C)|` — the rule support.
    pub sup: usize,
    /// `|R(A ∪ ¬C)|` — antecedent rows outside the class.
    pub neg_sup: usize,
    /// The consequent class.
    pub class: ClassLabel,
    /// Total rows `n` in the mined dataset (margin for χ²).
    pub n_rows: usize,
    /// Rows labeled with the class, `m = |R(C)|` (margin for χ²).
    pub n_class: usize,
}

impl RuleGroup {
    /// `|R(A)| = sup + neg_sup`.
    pub fn antecedent_support(&self) -> usize {
        self.sup + self.neg_sup
    }

    /// Rule confidence `sup / |R(A)|`.
    pub fn confidence(&self) -> f64 {
        self.contingency().confidence()
    }

    /// The rule's χ² value.
    pub fn chi_square(&self) -> f64 {
        measures::chi_square(self.contingency())
    }

    /// Lift of the rule.
    pub fn lift(&self) -> f64 {
        measures::lift(self.contingency())
    }

    /// Conviction of the rule.
    pub fn conviction(&self) -> f64 {
        measures::conviction(self.contingency())
    }

    /// The 2×2 contingency table of the rule.
    pub fn contingency(&self) -> Contingency {
        Contingency::new(
            self.antecedent_support(),
            self.sup,
            self.n_rows,
            self.n_class,
        )
    }

    /// `true` iff `items` contains some lower bound and is contained in
    /// the upper bound — i.e. `items → class` is a member of this group
    /// (Lemma 2.2). Requires lower bounds to have been computed.
    pub fn contains_rule(&self, items: &IdList) -> bool {
        items.is_subset(&self.upper) && self.lower.iter().any(|l| l.is_subset(items))
    }

    /// `true` iff the given row (by original id) matches the antecedent.
    pub fn matches_row(&self, row: usize) -> bool {
        self.support_set.contains(row)
    }

    /// Renders the upper-bound rule using the dataset's item and class
    /// names, e.g. `"aeh -> C (sup 2, conf 0.67)"`.
    pub fn display<'a>(&'a self, data: &'a Dataset) -> RuleGroupDisplay<'a> {
        RuleGroupDisplay { group: self, data }
    }

    /// Total order used wherever groups must serialize identically
    /// across runs: `(class, upper bound)` — a unique key within one
    /// mining result, since each rule group is identified by its upper
    /// bound — with the remaining fields as tie-breakers so the order
    /// is total even across unrelated group lists.
    pub fn canonical_cmp(&self, other: &RuleGroup) -> std::cmp::Ordering {
        self.class
            .cmp(&other.class)
            .then_with(|| self.upper.cmp(&other.upper))
            .then_with(|| self.sup.cmp(&other.sup))
            .then_with(|| self.neg_sup.cmp(&other.neg_sup))
    }
}

/// Sorts `groups` into the canonical serialization order
/// ([`RuleGroup::canonical_cmp`]) and each group's lower-bound list
/// ascending. Discovery order depends on scheduling (a parallel run
/// merges per-worker results); artifacts written through this sort are
/// byte-identical for the same mined set at any thread count.
pub fn canonical_sort(groups: &mut [RuleGroup]) {
    for g in groups.iter_mut() {
        g.lower.sort_unstable();
    }
    groups.sort_by(RuleGroup::canonical_cmp);
}

/// A deterministic, line-per-group textual dump of `groups`, exactly as
/// ordered. Two group lists are equal iff their dumps are byte-identical
/// — the round-trip tests of the artifact store compare these.
pub fn dump_groups(groups: &[RuleGroup]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    for g in groups {
        write!(out, "class={} upper={}", g.class, g.upper.to_json()).unwrap();
        out.push_str(" lower=[");
        for (i, l) in g.lower.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&l.to_json());
        }
        writeln!(
            out,
            "] rows={} sup={} neg={} n_rows={} n_class={}",
            g.support_set.to_json(),
            g.sup,
            g.neg_sup,
            g.n_rows,
            g.n_class,
        )
        .unwrap();
    }
    out
}

/// Helper returned by [`RuleGroup::display`].
pub struct RuleGroupDisplay<'a> {
    group: &'a RuleGroup,
    data: &'a Dataset,
}

impl fmt::Display for RuleGroupDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let items: Vec<&str> = self
            .group
            .upper
            .iter()
            .map(|i: ItemId| self.data.item_name(i))
            .collect();
        write!(
            f,
            "{{{}}} -> {} (sup {}, conf {:.3}, chi {:.2})",
            items.join(","),
            self.data.class_name(self.group.class),
            self.group.sup,
            self.group.confidence(),
            self.group.chi_square(),
        )
    }
}

/// Counters describing what the search did; used by the efficiency
/// experiments and the pruning ablations.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MineStats {
    /// Enumeration-tree nodes entered (root included).
    pub nodes_visited: u64,
    /// Nodes cut by pruning strategy 2 (duplicate rule group).
    pub pruned_duplicate: u64,
    /// Nodes cut by the loose support/confidence bounds (before scan).
    pub pruned_loose: u64,
    /// Nodes cut by the tight support bound `Us1`.
    pub pruned_tight_support: u64,
    /// Nodes cut by the tight confidence bound `Uc1`.
    pub pruned_tight_confidence: u64,
    /// Nodes cut by the χ² upper bound.
    pub pruned_chi: u64,
    /// Candidate rows folded away by pruning strategy 1.
    pub rows_compressed: u64,
    /// Upper bounds that met all thresholds but failed the
    /// interestingness comparison of step 7.
    pub rejected_not_interesting: u64,
    /// Subtrees cut by the rising per-row confidence floor (top-k
    /// mining only; 0 for the threshold miners).
    pub pruned_floor: u64,
    /// Subtrees cut by the delta-restricted frontier (incremental
    /// remine only; 0 for unrestricted runs).
    pub pruned_frontier: u64,
    /// `true` iff the search stopped early — node budget, deadline, or
    /// cooperative cancellation — and the result is (possibly)
    /// incomplete. [`stop`](Self::stop) says which; this flag is kept
    /// for back-compatibility with the budget-only API.
    pub budget_exhausted: bool,
    /// What ended the run (`Completed` unless `budget_exhausted`).
    pub stop: StopCause,
}

impl MineStats {
    /// The counter tallying `reason`, so every [`PruneReason`] variant
    /// maps to exactly one stats field (the exhaustive `match` turns a
    /// forgotten mapping into a compile error; the parity test in
    /// `crates/core/tests/session.rs` pins the rest of the wiring).
    pub fn pruned_count(&self, reason: PruneReason) -> u64 {
        match reason {
            PruneReason::Duplicate => self.pruned_duplicate,
            PruneReason::LooseBound => self.pruned_loose,
            PruneReason::TightSupport => self.pruned_tight_support,
            PruneReason::TightConfidence => self.pruned_tight_confidence,
            PruneReason::ChiBound => self.pruned_chi,
            PruneReason::NotInteresting => self.rejected_not_interesting,
            PruneReason::ConfidenceFloor => self.pruned_floor,
        }
    }
}

/// How the run was scheduled and what its memory discipline looked like.
///
/// Unlike [`MineStats`], these numbers are **not** deterministic across
/// parallel runs: under work stealing, which worker claims which depth-1
/// subtree (and therefore the per-worker node split and steal count)
/// depends on thread timing. They are kept out of `MineStats` so the
/// determinism guarantees on the mining counters stay intact; treat them
/// as observability, not as results.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Work-queue claims beyond each worker's first — i.e. how many
    /// times a worker came back for more after its initial subtree.
    /// Always 0 for sequential runs.
    pub steals: u64,
    /// Enumeration nodes visited per worker, indexed by worker id.
    /// A single entry (the whole run) for sequential runs.
    pub worker_nodes: Vec<u64>,
    /// Deepest recursion frame held by any worker's scratch arena — the
    /// steady-state buffer footprint is `peak_arena_depth` frames per
    /// worker.
    pub peak_arena_depth: usize,
    /// Shared memo-table traffic (all zeros when the memo is disabled).
    /// The hit/miss split is timing-dependent under parallelism, which
    /// is exactly why it lives here and not in [`MineStats`].
    pub memo: crate::memo::MemoStats,
}

/// The result of one mining run.
#[derive(Clone, Debug)]
pub struct MineResult {
    /// The interesting rule groups, in discovery order.
    pub groups: Vec<RuleGroup>,
    /// Search counters.
    pub stats: MineStats,
    /// Scheduling / memory observability (nondeterministic under
    /// parallelism; see [`SchedStats`]).
    pub sched: SchedStats,
    /// Total rows of the mined dataset.
    pub n_rows: usize,
    /// Rows labeled with the target class.
    pub n_class: usize,
}

impl MineResult {
    /// Number of IRGs found.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// `true` iff no IRG was found.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// Groups sorted by `(confidence desc, support desc, |upper| asc)` —
    /// the ranking the IRG classifier consumes.
    pub fn ranked(&self) -> Vec<&RuleGroup> {
        let mut v: Vec<&RuleGroup> = self.groups.iter().collect();
        v.sort_by(|a, b| {
            b.confidence()
                .partial_cmp(&a.confidence())
                .unwrap()
                .then(b.sup.cmp(&a.sup))
                .then(a.upper.len().cmp(&b.upper.len()))
        });
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn group() -> RuleGroup {
        RuleGroup {
            upper: IdList::from_iter([0, 2, 5]),
            lower: vec![IdList::from_iter([2]), IdList::from_iter([5])],
            support_set: RowSet::from_ids(6, [1, 2, 3]),
            sup: 2,
            neg_sup: 1,
            class: 0,
            n_rows: 6,
            n_class: 3,
        }
    }

    #[test]
    fn measures_delegate() {
        let g = group();
        assert_eq!(g.antecedent_support(), 3);
        assert!((g.confidence() - 2.0 / 3.0).abs() < 1e-12);
        assert!(g.chi_square() >= 0.0);
        assert!(g.lift() > 1.0);
        assert!(g.conviction() > 1.0);
    }

    #[test]
    fn membership_via_bounds() {
        let g = group();
        // member: contains lower {2}, inside upper {0,2,5}
        assert!(g.contains_rule(&IdList::from_iter([0, 2])));
        assert!(g.contains_rule(&IdList::from_iter([5])));
        // not a member: {0} contains no lower bound
        assert!(!g.contains_rule(&IdList::from_iter([0])));
        // not a member: outside the upper bound
        assert!(!g.contains_rule(&IdList::from_iter([2, 3])));
    }

    #[test]
    fn row_matching() {
        let g = group();
        assert!(g.matches_row(2));
        assert!(!g.matches_row(0));
    }

    #[test]
    fn ranking_order() {
        let hi = RuleGroup {
            sup: 3,
            neg_sup: 0,
            ..group()
        };
        let lo = group();
        let res = MineResult {
            groups: vec![lo.clone(), hi.clone()],
            stats: MineStats::default(),
            sched: SchedStats::default(),
            n_rows: 6,
            n_class: 3,
        };
        assert_eq!(res.len(), 2);
        assert!(!res.is_empty());
        let ranked = res.ranked();
        assert_eq!(ranked[0].sup, 3);
        assert_eq!(ranked[1].sup, 2);
    }

    #[test]
    fn canonical_sort_is_scheduling_independent() {
        let a = RuleGroup {
            upper: IdList::from_iter([0, 2]),
            lower: vec![IdList::from_iter([2]), IdList::from_iter([0])],
            ..group()
        };
        let b = RuleGroup {
            upper: IdList::from_iter([1]),
            class: 1,
            ..group()
        };
        let c = RuleGroup {
            upper: IdList::from_iter([0, 5]),
            ..group()
        };
        // two "discovery orders" of the same set
        let mut run1 = vec![a.clone(), b.clone(), c.clone()];
        let mut run2 = vec![c, a, b];
        canonical_sort(&mut run1);
        canonical_sort(&mut run2);
        assert_eq!(run1, run2);
        assert_eq!(dump_groups(&run1), dump_groups(&run2));
        // class sorts first, then upper; lowers are sorted within a group
        assert_eq!(run1[0].upper, IdList::from_iter([0, 2]));
        assert_eq!(run1[0].lower[0], IdList::from_iter([0]));
        assert_eq!(run1[1].upper, IdList::from_iter([0, 5]));
        assert_eq!(run1[2].class, 1);
    }

    #[test]
    fn dump_is_line_per_group_and_field_complete() {
        let d = dump_groups(&[group()]);
        assert_eq!(d.lines().count(), 1);
        assert!(
            d.starts_with("class=0 upper=[0,2,5] lower=[[2],[5]] rows=[1,2,3] sup=2 neg=1"),
            "{d}"
        );
        assert!(d.trim_end().ends_with("n_rows=6 n_class=3"), "{d}");
        assert_eq!(dump_groups(&[]), "");
    }

    #[test]
    fn display_uses_names() {
        let data = farmer_dataset::paper_example();
        let g = RuleGroup {
            upper: IdList::from_iter([0]),
            lower: vec![],
            support_set: RowSet::from_ids(5, [0]),
            sup: 1,
            neg_sup: 0,
            class: 0,
            n_rows: 5,
            n_class: 3,
        };
        let s = format!("{}", g.display(&data));
        assert!(s.contains("-> c0"), "{s}");
        assert!(s.starts_with("{a}"), "{s}");
    }
}

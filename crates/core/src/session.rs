//! Observable, cancellable mining sessions.
//!
//! FARMER's row enumeration can run for a long time at low `minsup` on
//! real microarray data, and a production deployment needs more than a
//! post-hoc [`MineStats`]: it needs in-flight progress, deadlines, and a
//! clean cooperative stop. This module is that layer:
//!
//! * [`MineObserver`] — event hooks fired from inside the innermost
//!   search loops. The trait is *statically dispatched*: every hook has
//!   an empty default body, so a run with [`NoOpObserver`] monomorphizes
//!   to exactly the uninstrumented code and costs nothing.
//! * [`MineControl`] — the control plane of one run: an optional node
//!   budget (subsuming `MiningParams::node_budget`), an optional
//!   deadline, and a cooperative stop flag shareable across threads via
//!   [`StopHandle`]. All miners in the workspace (FARMER, top-k, the
//!   naive oracle, and the column-enumeration baselines) honor the same
//!   control, checked at enumeration-node granularity so cancellation
//!   lands within milliseconds.
//! * [`Miner`] — one object-safe interface over every miner, so the CLI
//!   and the benches dispatch through a single signature.
//!
//! # Partial-result guarantee
//!
//! Whatever triggers the stop — budget, deadline, or cancellation — the
//! search stops *emitting* as well as *descending*: the returned groups
//! are exactly the groups the sequential run had accepted up to the
//! halting node (a prefix of its discovery order), every one of them a
//! real rule group meeting all thresholds. The result is superset-free
//! but possibly incomplete, flagged by [`MineStats::budget_exhausted`]
//! and [`MineStats::stop`].

use crate::rule::{MineResult, MineStats};
use crate::trace::{self, TraceSink};
use farmer_dataset::Dataset;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a search node was cut, mirroring the [`MineStats`] counters.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PruneReason {
    /// Pruning strategy 2: the subtree's groups were discovered earlier.
    Duplicate,
    /// Loose support/confidence bounds, before scanning (`Us2`/`Uc2`).
    LooseBound,
    /// Tight support bound after the scan (`Us1`).
    TightSupport,
    /// Tight confidence bound after the scan (`Uc1`).
    TightConfidence,
    /// χ² (or convex-measure) upper bound.
    ChiBound,
    /// A threshold-passing group dominated by a more general one
    /// (step 7 of the search, or the parallel merge pass).
    NotInteresting,
    /// Top-k mining only: the rising per-row confidence floor.
    ConfidenceFloor,
}

impl PruneReason {
    /// Every variant, in declaration order. Paired with the exhaustive
    /// matches in [`index`](Self::index) / [`as_str`](Self::as_str) /
    /// [`stats_key`](Self::stats_key) (and the parity test in
    /// `crates/core/tests/session.rs`), this makes adding a variant
    /// without wiring its counter, name, and stats-json key a
    /// compile/test error.
    pub const ALL: [PruneReason; 7] = [
        PruneReason::Duplicate,
        PruneReason::LooseBound,
        PruneReason::TightSupport,
        PruneReason::TightConfidence,
        PruneReason::ChiBound,
        PruneReason::NotInteresting,
        PruneReason::ConfidenceFloor,
    ];

    /// Position of the variant in [`ALL`](Self::ALL). The `match` is
    /// exhaustive on purpose: a new variant fails to compile here until
    /// it is added to `ALL` too.
    pub fn index(self) -> usize {
        match self {
            PruneReason::Duplicate => 0,
            PruneReason::LooseBound => 1,
            PruneReason::TightSupport => 2,
            PruneReason::TightConfidence => 3,
            PruneReason::ChiBound => 4,
            PruneReason::NotInteresting => 5,
            PruneReason::ConfidenceFloor => 6,
        }
    }

    /// Stable lowercase name, for reports and logs.
    pub fn as_str(&self) -> &'static str {
        match self {
            PruneReason::Duplicate => "duplicate",
            PruneReason::LooseBound => "loose bound",
            PruneReason::TightSupport => "tight support",
            PruneReason::TightConfidence => "tight confidence",
            PruneReason::ChiBound => "chi bound",
            PruneReason::NotInteresting => "not interesting",
            PruneReason::ConfidenceFloor => "confidence floor",
        }
    }

    /// The key of this counter inside the `pruned` block of the CLI's
    /// `--stats-json` report.
    pub fn stats_key(&self) -> &'static str {
        match self {
            PruneReason::Duplicate => "duplicate",
            PruneReason::LooseBound => "loose_bound",
            PruneReason::TightSupport => "tight_support",
            PruneReason::TightConfidence => "tight_confidence",
            PruneReason::ChiBound => "chi_bound",
            PruneReason::NotInteresting => "not_interesting",
            PruneReason::ConfidenceFloor => "confidence_floor",
        }
    }
}

/// What ended a mining run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum StopCause {
    /// The search space was exhausted; the result is complete.
    #[default]
    Completed,
    /// The node budget ran out.
    Budget,
    /// The deadline passed.
    Deadline,
    /// [`StopHandle::stop`] / [`MineControl::cancel`] was called.
    Cancelled,
}

impl StopCause {
    /// `true` iff the run finished on its own (no truncation).
    pub fn is_complete(&self) -> bool {
        matches!(self, StopCause::Completed)
    }

    /// Merges two causes (parallel workers): the most drastic one wins.
    pub fn merge(self, other: StopCause) -> StopCause {
        self.max(other)
    }

    /// Stable lowercase name, for reports and JSON output.
    pub fn as_str(&self) -> &'static str {
        match self {
            StopCause::Completed => "completed",
            StopCause::Budget => "budget",
            StopCause::Deadline => "deadline",
            StopCause::Cancelled => "cancelled",
        }
    }
}

/// A periodic progress snapshot, delivered to
/// [`MineObserver::heartbeat`] every
/// [`heartbeat_every`](MineControl::heartbeat_every) nodes.
#[derive(Clone, Debug)]
pub struct Heartbeat {
    /// Enumeration nodes entered so far.
    pub nodes_visited: u64,
    /// Groups accepted so far.
    pub groups_found: usize,
    /// Wall time since the run started.
    pub elapsed: Duration,
}

/// Event hooks fired from inside the search loops.
///
/// Every method has an empty default body and the observer is a generic
/// parameter of the mining entry points, so an uninstrumented run (a
/// [`NoOpObserver`]) compiles to the exact code that existed before this
/// layer — the hooks cost nothing unless implemented.
///
/// **Parallel runs:** per-node events are not streamed from worker
/// threads (that would either race or serialize the search). Instead
/// each worker's counters arrive through [`worker_finished`] in
/// worker-index order after the join, and the merge phase — which is
/// sequential and deterministic — fires [`group_emitted`] /
/// [`pruned`]`(NotInteresting)` per merged group. The observer therefore
/// sees a deterministic event sequence regardless of scheduling.
///
/// [`worker_finished`]: MineObserver::worker_finished
/// [`group_emitted`]: MineObserver::group_emitted
/// [`pruned`]: MineObserver::pruned
pub trait MineObserver {
    /// A search node was entered, at `depth` rows below the root.
    fn node_entered(&mut self, depth: usize) {
        let _ = depth;
    }

    /// A subtree was cut, tagged by why.
    fn pruned(&mut self, reason: PruneReason) {
        let _ = reason;
    }

    /// A rule group was accepted into the result.
    fn group_emitted(&mut self, sup: usize, neg_sup: usize) {
        let _ = (sup, neg_sup);
    }

    /// Periodic progress (see [`MineControl::with_heartbeat_every`]).
    fn heartbeat(&mut self, hb: &Heartbeat) {
        let _ = hb;
    }

    /// A parallel worker's counters, delivered post-join in
    /// worker-index order (0, 1, …) — deterministic across runs.
    fn worker_finished(&mut self, worker: usize, tally: &MineStats) {
        let _ = (worker, tally);
    }
}

/// The do-nothing observer: monomorphizes the instrumented search back
/// into the uninstrumented one.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoOpObserver;

impl MineObserver for NoOpObserver {}

/// An observer that counts every event — the reference consumer, used
/// by the tests to pin observer events to the final [`MineStats`] and
/// handy as a cheap progress tally.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CountingObserver {
    /// `node_entered` events.
    pub nodes: u64,
    /// Deepest `depth` seen.
    pub max_depth: usize,
    /// `pruned(Duplicate)` events.
    pub pruned_duplicate: u64,
    /// `pruned(LooseBound)` events.
    pub pruned_loose: u64,
    /// `pruned(TightSupport)` events.
    pub pruned_tight_support: u64,
    /// `pruned(TightConfidence)` events.
    pub pruned_tight_confidence: u64,
    /// `pruned(ChiBound)` events.
    pub pruned_chi: u64,
    /// `pruned(NotInteresting)` events.
    pub rejected_not_interesting: u64,
    /// `pruned(ConfidenceFloor)` events (top-k only).
    pub pruned_floor: u64,
    /// `group_emitted` events.
    pub emitted: u64,
    /// `heartbeat` events.
    pub heartbeats: u64,
    /// `worker_finished` events.
    pub workers: u64,
}

impl CountingObserver {
    /// The tally of `pruned(reason)` events, one field per variant (the
    /// exhaustive `match` keeps the observer in lockstep with
    /// [`PruneReason`]).
    pub fn pruned_count(&self, reason: PruneReason) -> u64 {
        match reason {
            PruneReason::Duplicate => self.pruned_duplicate,
            PruneReason::LooseBound => self.pruned_loose,
            PruneReason::TightSupport => self.pruned_tight_support,
            PruneReason::TightConfidence => self.pruned_tight_confidence,
            PruneReason::ChiBound => self.pruned_chi,
            PruneReason::NotInteresting => self.rejected_not_interesting,
            PruneReason::ConfidenceFloor => self.pruned_floor,
        }
    }
}

impl MineObserver for CountingObserver {
    fn node_entered(&mut self, depth: usize) {
        self.nodes += 1;
        self.max_depth = self.max_depth.max(depth);
    }

    fn pruned(&mut self, reason: PruneReason) {
        match reason {
            PruneReason::Duplicate => self.pruned_duplicate += 1,
            PruneReason::LooseBound => self.pruned_loose += 1,
            PruneReason::TightSupport => self.pruned_tight_support += 1,
            PruneReason::TightConfidence => self.pruned_tight_confidence += 1,
            PruneReason::ChiBound => self.pruned_chi += 1,
            PruneReason::NotInteresting => self.rejected_not_interesting += 1,
            PruneReason::ConfidenceFloor => self.pruned_floor += 1,
        }
    }

    fn group_emitted(&mut self, _sup: usize, _neg_sup: usize) {
        self.emitted += 1;
    }

    fn heartbeat(&mut self, _hb: &Heartbeat) {
        self.heartbeats += 1;
    }

    fn worker_finished(&mut self, _worker: usize, tally: &MineStats) {
        self.workers += 1;
        self.nodes += tally.nodes_visited;
        self.pruned_duplicate += tally.pruned_duplicate;
        self.pruned_loose += tally.pruned_loose;
        self.pruned_tight_support += tally.pruned_tight_support;
        self.pruned_tight_confidence += tally.pruned_tight_confidence;
        self.pruned_chi += tally.pruned_chi;
        self.rejected_not_interesting += tally.rejected_not_interesting;
        self.pruned_floor += tally.pruned_floor;
    }
}

/// Deadline checks call `Instant::now()` only once per this many nodes;
/// node rates are high enough that cancellation still lands within
/// milliseconds while the uninstrumented hot path stays clock-free.
const DEADLINE_CHECK_MASK: u64 = 63;

/// The control plane of one mining run: node budget, deadline, and a
/// cooperative stop flag. `Clone` shares the stop flag (that is how
/// parallel workers — and [`StopHandle`]s — observe one cancellation).
///
/// The budget here subsumes the deprecated `MiningParams::node_budget`:
/// when both are set, the control wins; when only the params field is
/// set, it is honored for back-compatibility.
#[derive(Clone, Debug, Default)]
pub struct MineControl {
    /// Optional cap on enumeration nodes (`None` never truncates). The
    /// truncation semantics are those of the old params field: the
    /// result is superset-free but possibly incomplete.
    pub node_budget: Option<u64>,
    /// Optional wall-clock deadline.
    pub deadline: Option<Instant>,
    /// Nodes between [`MineObserver::heartbeat`] calls; 0 (the default)
    /// disables heartbeats.
    pub heartbeat_every: u64,
    stop: Arc<AtomicBool>,
}

impl MineControl {
    /// An unconstrained control: no budget, no deadline, no heartbeats.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the node budget.
    pub fn with_node_budget(mut self, budget: Option<u64>) -> Self {
        self.node_budget = budget;
        self
    }

    /// Sets an absolute deadline.
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the deadline `timeout` from now.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.deadline = Some(Instant::now() + timeout);
        self
    }

    /// Sets the heartbeat cadence (0 disables).
    pub fn with_heartbeat_every(mut self, nodes: u64) -> Self {
        self.heartbeat_every = nodes;
        self
    }

    /// The heartbeat cadence rule, shared by every miner in the
    /// workspace: a cadence of 0 means *disabled* (never due — not
    /// "every node"), otherwise a heartbeat is due every `every` nodes.
    #[inline]
    pub fn heartbeat_due(every: u64, nodes: u64) -> bool {
        every > 0 && nodes % every == 0
    }

    /// A handle that cancels this run (and every clone of this control)
    /// from another thread.
    pub fn stop_handle(&self) -> StopHandle {
        StopHandle(Arc::clone(&self.stop))
    }

    /// Requests a cooperative stop.
    pub fn cancel(&self) {
        self.stop.store(true, Ordering::Relaxed);
    }

    /// `true` iff a stop has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.stop.load(Ordering::Relaxed)
    }

    /// Per-run checking state with an explicit budget (callers resolve
    /// their own fallbacks, e.g. the deprecated params field or a
    /// per-thread split).
    pub fn state_with_budget(&self, budget: Option<u64>) -> ControlState<'_> {
        ControlState {
            budget: budget.unwrap_or(u64::MAX),
            shared: None,
            deadline: self.deadline,
            stop: &self.stop,
            ticks: 0,
        }
    }

    /// Per-run checking state using this control's own budget.
    pub fn state(&self) -> ControlState<'_> {
        self.state_with_budget(self.node_budget)
    }

    /// Per-run checking state drawing nodes from a budget pool *shared*
    /// with other workers (parallel runs). When `shared` is `None` the
    /// state is unbudgeted — deadline and stop flag still apply.
    pub fn state_with_shared<'a>(&'a self, shared: Option<&'a SharedBudget>) -> ControlState<'a> {
        ControlState {
            budget: u64::MAX,
            shared,
            deadline: self.deadline,
            stop: &self.stop,
            ticks: 0,
        }
    }
}

/// A node budget drawn concurrently by every worker of one parallel run.
///
/// Replaces the old `budget / threads` per-worker split: with a shared
/// pool, exactly `budget` nodes are expanded *globally* no matter how the
/// subtrees are balanced, so the truncation point is independent of the
/// thread count (a 1-thread budgeted run and an 8-thread one stop after
/// the same amount of total work). Which nodes make up that prefix still
/// depends on scheduling — see `Farmer::with_parallelism` for the
/// determinism contract.
#[derive(Debug)]
pub struct SharedBudget(AtomicU64);

impl SharedBudget {
    /// A pool of `budget` node tickets.
    pub fn new(budget: u64) -> Self {
        SharedBudget(AtomicU64::new(budget))
    }

    /// Draws one ticket; `false` when the pool is dry (the caller must
    /// halt). Lock-free, one `fetch_update` per enumeration node.
    #[inline]
    pub fn take(&self) -> bool {
        self.0
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| v.checked_sub(1))
            .is_ok()
    }

    /// Tickets left in the pool.
    pub fn remaining(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Cancels a run from outside: call [`stop`](StopHandle::stop) from any
/// thread and every worker sharing the originating [`MineControl`]
/// halts at its next enumeration node.
#[derive(Clone, Debug)]
pub struct StopHandle(Arc<AtomicBool>);

impl StopHandle {
    /// Requests a cooperative stop.
    pub fn stop(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// `true` iff a stop has been requested.
    pub fn is_stopped(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// Per-run control-checking state: counts nodes and answers "must this
/// run halt now?" One `tick` per enumeration node is the contract every
/// miner in the workspace follows.
#[derive(Debug)]
pub struct ControlState<'a> {
    budget: u64,
    /// When set, the budget is drawn from this shared pool instead of
    /// the local `budget` counter.
    shared: Option<&'a SharedBudget>,
    deadline: Option<Instant>,
    stop: &'a AtomicBool,
    ticks: u64,
}

impl ControlState<'_> {
    /// Counts one enumeration node; returns the cause when the run must
    /// halt. Budget and stop flag are checked every node; the deadline
    /// every [`DEADLINE_CHECK_MASK`]` + 1` nodes (clock reads are not
    /// free).
    #[inline]
    pub fn tick(&mut self) -> Option<StopCause> {
        self.ticks += 1;
        if let Some(pool) = self.shared {
            if !pool.take() {
                return Some(StopCause::Budget);
            }
        } else if self.ticks > self.budget {
            return Some(StopCause::Budget);
        }
        if self.stop.load(Ordering::Relaxed) {
            return Some(StopCause::Cancelled);
        }
        if let Some(d) = self.deadline {
            if self.ticks & DEADLINE_CHECK_MASK == 0 && Instant::now() >= d {
                return Some(StopCause::Deadline);
            }
        }
        None
    }

    /// Nodes counted so far.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }
}

/// One interface over every miner in the workspace, so the CLI and the
/// benches dispatch through a single signature instead of five ad-hoc
/// ones. Implemented by [`Farmer`](crate::Farmer),
/// [`TopKMiner`](crate::topk::TopKMiner),
/// [`NaiveMiner`](crate::naive::NaiveMiner), and the baseline adapters
/// in `farmer-baselines`.
///
/// The trait is object-safe (`Box<dyn Miner>`); the observer crosses it
/// as `&mut dyn MineObserver`, trading per-node virtual calls for
/// runtime algorithm selection. Perf-critical callers keep the fully
/// static entry points (`Farmer::mine_session` etc.).
pub trait Miner {
    /// A short stable name for reports.
    fn name(&self) -> &'static str;

    /// Mines `data` under `ctl`, reporting events to `obs`.
    fn mine_with(
        &self,
        data: &Dataset,
        ctl: &MineControl,
        obs: &mut dyn MineObserver,
    ) -> MineResult;

    /// Convenience: mines with no control and no observer.
    fn mine_unobserved(&self, data: &Dataset) -> MineResult {
        self.mine_with(data, &MineControl::new(), &mut NoOpObserver)
    }

    /// Mines while recording phase spans and latency histograms into
    /// `tracer` (lane 0). The default implementation wraps the whole
    /// run in a `session` span, which is what the four baseline
    /// adapters report; [`Farmer`](crate::Farmer) and
    /// [`TopKMiner`](crate::topk::TopKMiner) override it with their
    /// fully instrumented paths (per-phase spans, per-worker lanes,
    /// node-visit / fused-scan / lower-bound histograms).
    fn mine_traced(
        &self,
        data: &Dataset,
        ctl: &MineControl,
        obs: &mut dyn MineObserver,
        tracer: &dyn TraceSink,
    ) -> MineResult {
        let _session = trace::span(tracer, trace::LANE_MAIN, trace::SPAN_SESSION);
        self.mine_with(data, ctl, obs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn stop_cause_merge_takes_most_drastic() {
        use StopCause::*;
        assert_eq!(Completed.merge(Budget), Budget);
        assert_eq!(Deadline.merge(Budget), Deadline);
        assert_eq!(Cancelled.merge(Deadline), Cancelled);
        assert_eq!(Completed.merge(Completed), Completed);
        assert!(Completed.is_complete() && !Budget.is_complete());
        assert_eq!(Cancelled.as_str(), "cancelled");
    }

    #[test]
    fn budget_ticks_out() {
        let ctl = MineControl::new().with_node_budget(Some(3));
        let mut st = ctl.state();
        assert_eq!(st.tick(), None);
        assert_eq!(st.tick(), None);
        assert_eq!(st.tick(), None);
        assert_eq!(st.tick(), Some(StopCause::Budget));
        assert_eq!(st.ticks(), 4);
    }

    #[test]
    fn shared_budget_is_drawn_globally() {
        let ctl = MineControl::new();
        let pool = SharedBudget::new(5);
        let mut a = ctl.state_with_shared(Some(&pool));
        let mut b = ctl.state_with_shared(Some(&pool));
        // 5 tickets total, however they are interleaved
        assert_eq!(a.tick(), None);
        assert_eq!(b.tick(), None);
        assert_eq!(a.tick(), None);
        assert_eq!(a.tick(), None);
        assert_eq!(b.tick(), None);
        assert_eq!(pool.remaining(), 0);
        assert_eq!(a.tick(), Some(StopCause::Budget));
        assert_eq!(b.tick(), Some(StopCause::Budget));
        // unbudgeted shared state never ticks out
        let mut free = ctl.state_with_shared(None);
        for _ in 0..1000 {
            assert_eq!(free.tick(), None);
        }
    }

    #[test]
    fn stop_flag_is_shared_across_clones_and_threads() {
        let ctl = MineControl::new();
        let clone = ctl.clone();
        let handle = ctl.stop_handle();
        assert!(!ctl.is_cancelled());
        thread::spawn(move || handle.stop()).join().unwrap();
        assert!(ctl.is_cancelled());
        assert!(clone.is_cancelled());
        let mut st = clone.state();
        assert_eq!(st.tick(), Some(StopCause::Cancelled));
    }

    #[test]
    fn deadline_fires_on_the_check_cadence() {
        let ctl = MineControl::new().with_deadline(Instant::now() - Duration::from_millis(1));
        let mut st = ctl.state();
        let mut cause = None;
        for _ in 0..=DEADLINE_CHECK_MASK {
            cause = st.tick();
            if cause.is_some() {
                break;
            }
        }
        assert_eq!(cause, Some(StopCause::Deadline));
    }

    #[test]
    fn with_timeout_sets_a_future_deadline() {
        let ctl = MineControl::new().with_timeout(Duration::from_secs(3600));
        assert!(ctl.deadline.expect("set") > Instant::now());
        let mut st = ctl.state();
        for _ in 0..200 {
            assert_eq!(st.tick(), None);
        }
    }

    #[test]
    fn counting_observer_tallies_every_hook() {
        let mut c = CountingObserver::default();
        c.node_entered(3);
        c.node_entered(1);
        c.pruned(PruneReason::Duplicate);
        c.pruned(PruneReason::LooseBound);
        c.pruned(PruneReason::TightSupport);
        c.pruned(PruneReason::TightConfidence);
        c.pruned(PruneReason::ChiBound);
        c.pruned(PruneReason::NotInteresting);
        c.pruned(PruneReason::ConfidenceFloor);
        c.group_emitted(2, 1);
        c.heartbeat(&Heartbeat {
            nodes_visited: 2,
            groups_found: 1,
            elapsed: Duration::ZERO,
        });
        let tally = MineStats {
            nodes_visited: 10,
            ..Default::default()
        };
        c.worker_finished(0, &tally);
        assert_eq!(c.nodes, 12);
        assert_eq!(c.max_depth, 3);
        assert_eq!(c.pruned_duplicate, 1);
        assert_eq!(c.pruned_floor, 1);
        assert_eq!(c.emitted, 1);
        assert_eq!(c.heartbeats, 1);
        assert_eq!(c.workers, 1);
    }
}

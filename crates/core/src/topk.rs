//! Top-k covering rule groups per sample.
//!
//! The FARMER authors' follow-up work (RCBT, SIGMOD 2005) replaces the
//! global `minconf` threshold with a *per-row* criterion: for every row,
//! find the `k` best rule groups covering it. That removes the hardest
//! parameter to choose (a global confidence cutoff that starves some
//! samples of rules while drowning others) and is the natural input for
//! rule-based classifiers.
//!
//! This module implements that problem on top of the same
//! row-enumeration machinery as [`crate::Farmer`], with the dynamic
//! pruning the formulation invites: as the per-row top-k heaps fill up,
//! the worst `k`-th confidence across rows becomes a rising global
//! confidence floor for the remaining search. "Best" means higher
//! confidence, then higher support, then the more general (shorter)
//! upper bound.

use crate::cond::{BitsetNode, CondNode};
use crate::memo::{self, MemoStats, MemoTable};
use crate::miner::{Frame, NodeScratch};
use crate::rule::{MineResult, MineStats, RuleGroup, SchedStats};
use crate::session::{
    ControlState, Heartbeat, MineControl, MineObserver, Miner, NoOpObserver, PruneReason, StopCause,
};
use crate::trace::{self, NoopTracer, TraceSink};
use farmer_dataset::{ClassLabel, Dataset, RowId, TransposedTable};
use rowset::{IdList, RowSet};
use std::time::Instant;

/// One rule group as ranked by the top-k criterion.
#[derive(Clone, Debug, PartialEq)]
pub struct TopKGroup {
    /// Upper bound antecedent.
    pub upper: IdList,
    /// `R(upper)` in original row ids.
    pub support_set: RowSet,
    /// `|R(upper ∪ C)|`.
    pub sup: usize,
    /// `|R(upper ∪ ¬C)|`.
    pub neg_sup: usize,
}

impl TopKGroup {
    /// Rule confidence.
    pub fn confidence(&self) -> f64 {
        self.sup as f64 / (self.sup + self.neg_sup) as f64
    }

    /// The ranking key: confidence desc, support desc, shorter upper.
    fn rank_key(&self) -> (f64, usize, std::cmp::Reverse<usize>) {
        (
            self.confidence(),
            self.sup,
            std::cmp::Reverse(self.upper.len()),
        )
    }
}

/// Slot count of top-k's internal memo table. Fixed rather than
/// configurable: top-k is sequential and bounded by the per-row heaps,
/// so a small cache captures most duplicate subtrees and overflow only
/// costs redundant back scans.
const TOPK_MEMO_CAPACITY: usize = 4096;

/// Result of [`mine_top_k`]: for every row of the dataset, its best `k`
/// covering rule groups (possibly fewer when the row participates in
/// fewer groups meeting `min_sup`).
#[derive(Clone, Debug)]
pub struct TopKResult {
    /// `per_row[r]` = the top groups covering original row `r`, best
    /// first.
    pub per_row: Vec<Vec<TopKGroup>>,
    /// Enumeration nodes visited.
    pub nodes_visited: u64,
    /// Subtrees cut by the rising confidence floor.
    pub pruned_floor: u64,
    /// `true` iff the search stopped early (budget, deadline, or
    /// cancellation) — per-row lists are then best-effort (still valid
    /// groups, rankings may miss undiscovered better ones).
    pub budget_exhausted: bool,
    /// What ended the run.
    pub stop: StopCause,
    /// Traffic on the search's internal duplicate-subtree memo table
    /// (always on for top-k; capacity fixed). Purely observability —
    /// a memo hit prunes exactly where the backward scan would.
    pub memo: MemoStats,
}

/// Mines, for each row of `data`, the `k` best rule groups with
/// consequent `class` and support ≥ `min_sup` that cover the row.
///
/// Rows not containing the consequent class still receive groups (any
/// group whose antecedent they match covers them) — the classifier
/// decides what to do with them.
///
/// ```
/// use farmer_core::topk::mine_top_k;
/// let data = farmer_dataset::paper_example();
/// let result = mine_top_k(&data, 0, 2, 1);
/// // every row gets its own best-first list
/// assert_eq!(result.per_row.len(), data.n_rows());
/// for groups in &result.per_row {
///     assert!(groups.len() <= 2);
/// }
/// ```
pub fn mine_top_k(data: &Dataset, class: ClassLabel, k: usize, min_sup: usize) -> TopKResult {
    mine_top_k_session(
        data,
        class,
        k,
        min_sup,
        &MineControl::new(),
        &mut NoOpObserver,
    )
}

/// [`mine_top_k`] with an optional enumeration-node budget; see
/// [`TopKResult::budget_exhausted`] for the truncation semantics.
#[deprecated(
    since = "0.2.0",
    note = "use mine_top_k_session with a MineControl carrying the budget"
)]
pub fn mine_top_k_budgeted(
    data: &Dataset,
    class: ClassLabel,
    k: usize,
    min_sup: usize,
    node_budget: Option<u64>,
) -> TopKResult {
    let ctl = MineControl::new().with_node_budget(node_budget);
    mine_top_k_session(data, class, k, min_sup, &ctl, &mut NoOpObserver)
}

/// [`mine_top_k`] under a [`MineControl`] (budget / deadline /
/// cancellation), reporting progress to a [`MineObserver`]. Once the
/// control halts the run, no further groups are offered to the per-row
/// heaps; the lists returned are best-effort and
/// [`TopKResult::stop`] records why the run ended.
pub fn mine_top_k_session<O: MineObserver + ?Sized>(
    data: &Dataset,
    class: ClassLabel,
    k: usize,
    min_sup: usize,
    ctl: &MineControl,
    obs: &mut O,
) -> TopKResult {
    mine_top_k_session_traced(data, class, k, min_sup, ctl, obs, &NoopTracer)
}

/// [`mine_top_k_session`] while recording phase spans and latency
/// histograms into `tracer` (lane 0; the top-k search is sequential).
/// Statically dispatched like the observer: passing [`NoopTracer`]
/// compiles to the untraced search.
pub fn mine_top_k_session_traced<O, T>(
    data: &Dataset,
    class: ClassLabel,
    k: usize,
    min_sup: usize,
    ctl: &MineControl,
    obs: &mut O,
    tracer: &T,
) -> TopKResult
where
    O: MineObserver + ?Sized,
    T: TraceSink + ?Sized,
{
    assert!(k >= 1, "k must be >= 1");
    let (tt, reordered, order) = {
        let _transpose = trace::span(tracer, trace::LANE_MAIN, trace::SPAN_TRANSPOSE);
        TransposedTable::for_mining(data, class)
    };
    let n = reordered.n_rows();
    let m = tt.n_target();
    let mut ctx = TopKCtx {
        k,
        min_sup: min_sup.max(1),
        n,
        m,
        pos_mask: RowSet::from_ids(n, 0..m),
        order: &order,
        heaps: vec![Vec::new(); n],
        ctl: ctl.state(),
        heartbeat_every: ctl.heartbeat_every,
        start: Instant::now(),
        obs,
        tracer,
        stop: StopCause::Completed,
        nodes_visited: 0,
        pruned_floor: 0,
        groups_offered: 0,
        memo: MemoTable::new(TOPK_MEMO_CAPACITY),
    };
    let root = BitsetNode::root(&reordered);
    let e_p = RowSet::from_ids(n, 0..m);
    let e_n = RowSet::from_ids(n, m..n);
    let mut scratch = NodeScratch::new(n);
    {
        let _enumerate = trace::span(tracer, trace::LANE_MAIN, trace::SPAN_ENUMERATE);
        ctx.visit(
            &mut scratch,
            &root,
            None,
            &RowSet::empty(n),
            &e_p,
            &e_n,
            0,
            0,
        );
    }

    // order original-row-major, best first
    let mut per_row: Vec<Vec<TopKGroup>> = vec![Vec::new(); n];
    for (new_id, heap) in ctx.heaps.into_iter().enumerate() {
        let orig = order[new_id] as usize;
        let mut groups = heap;
        groups.sort_by(|a, b| b.rank_key().partial_cmp(&a.rank_key()).expect("finite"));
        per_row[orig] = groups;
    }
    TopKResult {
        per_row,
        nodes_visited: ctx.nodes_visited,
        pruned_floor: ctx.pruned_floor,
        budget_exhausted: !ctx.stop.is_complete(),
        stop: ctx.stop,
        memo: ctx.memo.snapshot(),
    }
}

struct TopKCtx<'a, O: MineObserver + ?Sized, T: TraceSink + ?Sized> {
    k: usize,
    min_sup: usize,
    n: usize,
    m: usize,
    pos_mask: RowSet,
    order: &'a [RowId],
    /// Per reordered row: its current best groups (≤ k, unsorted).
    heaps: Vec<Vec<TopKGroup>>,
    ctl: ControlState<'a>,
    heartbeat_every: u64,
    start: Instant,
    obs: &'a mut O,
    /// Statically dispatched trace sink ([`NoopTracer`] = untraced).
    tracer: &'a T,
    stop: StopCause,
    nodes_visited: u64,
    pruned_floor: u64,
    groups_offered: usize,
    /// Duplicate-subtree memo over closed-set digests. Top-k always
    /// compresses and always back-scans (the [`Farmer`] soundness gate
    /// holds unconditionally here), so the memo is always on.
    ///
    /// [`Farmer`]: crate::Farmer
    memo: MemoTable,
}

impl<O: MineObserver + ?Sized, T: TraceSink + ?Sized> TopKCtx<'_, O, T> {
    /// The global confidence floor: the smallest `k`-th-best confidence
    /// over all rows (0 while any row's heap is unfilled). A subtree
    /// whose confidence upper bound is below the floor cannot improve
    /// any row's top-k.
    fn floor(&self) -> f64 {
        let mut floor = f64::INFINITY;
        for heap in &self.heaps {
            if heap.len() < self.k {
                return 0.0;
            }
            let worst = heap
                .iter()
                .map(|g| g.confidence())
                .fold(f64::INFINITY, f64::min);
            floor = floor.min(worst);
        }
        floor
    }

    fn offer(&mut self, group: &TopKGroup, row: usize) {
        let heap = &mut self.heaps[row];
        if heap.len() < self.k {
            heap.push(group.clone());
            return;
        }
        // replace the worst if the newcomer ranks higher
        let (worst_idx, _) = heap
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.rank_key().partial_cmp(&b.rank_key()).expect("finite"))
            .expect("heap nonempty");
        if group.rank_key() > heap[worst_idx].rank_key() {
            heap[worst_idx] = group.clone();
        }
    }

    /// Split like `Farmer`'s visit: the wrapper runs the cheap per-node
    /// accounting, borrows a [`Frame`] from the scratch arena, and
    /// releases it when [`visit_scanned`](Self::visit_scanned) returns,
    /// so steady-state enumeration reuses pooled buffers instead of
    /// allocating per node.
    #[allow(clippy::too_many_arguments)]
    fn visit<'t>(
        &mut self,
        scratch: &mut NodeScratch<BitsetNode<'t>>,
        node: &BitsetNode<'t>,
        last: Option<RowId>,
        counted: &RowSet,
        e_p: &RowSet,
        e_n: &RowSet,
        parent_sup_p: usize,
        depth: usize,
    ) {
        // compile-time branch: NoopTracer keeps the hot path clock-free
        if self.tracer.enabled() {
            let t0 = self.tracer.now_ns();
            self.visit_inner(scratch, node, last, counted, e_p, e_n, parent_sup_p, depth);
            self.tracer.duration_ns(
                trace::LANE_MAIN,
                trace::HIST_NODE_VISIT,
                self.tracer.now_ns().saturating_sub(t0),
            );
        } else {
            self.visit_inner(scratch, node, last, counted, e_p, e_n, parent_sup_p, depth);
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn visit_inner<'t>(
        &mut self,
        scratch: &mut NodeScratch<BitsetNode<'t>>,
        node: &BitsetNode<'t>,
        last: Option<RowId>,
        counted: &RowSet,
        e_p: &RowSet,
        e_n: &RowSet,
        parent_sup_p: usize,
        depth: usize,
    ) {
        if !self.stop.is_complete() {
            return;
        }
        self.nodes_visited += 1;
        self.obs.node_entered(depth);
        if let Some(cause) = self.ctl.tick() {
            self.stop = cause;
            return;
        }
        if MineControl::heartbeat_due(self.heartbeat_every, self.nodes_visited) {
            self.obs.heartbeat(&Heartbeat {
                nodes_visited: self.nodes_visited,
                groups_found: self.groups_offered,
                elapsed: self.start.elapsed(),
            });
        }
        let mut frame = scratch.acquire(node);
        self.visit_scanned(
            scratch,
            &mut frame,
            node,
            last,
            counted,
            e_p,
            e_n,
            parent_sup_p,
            depth,
        );
        scratch.release(frame);
    }

    #[allow(clippy::too_many_arguments)]
    fn visit_scanned<'t>(
        &mut self,
        scratch: &mut NodeScratch<BitsetNode<'t>>,
        f: &mut Frame<BitsetNode<'t>>,
        node: &BitsetNode<'t>,
        last: Option<RowId>,
        counted: &RowSet,
        e_p: &RowSet,
        e_n: &RowSet,
        parent_sup_p: usize,
        depth: usize,
    ) {
        let is_root = last.is_none();
        let last_is_pos = last.is_none_or(|r| (r as usize) < self.m);

        if self.tracer.enabled() {
            let t0 = self.tracer.now_ns();
            node.inspect_into(e_p, e_n, &mut f.ins);
            self.tracer.duration_ns(
                trace::LANE_MAIN,
                trace::HIST_FUSED_SCAN,
                self.tracer.now_ns().saturating_sub(t0),
            );
        } else {
            node.inspect_into(e_p, e_n, &mut f.ins);
        }

        // duplicate-subtree pruning, as in FARMER strategy 2, fronted
        // by the closed-set memo: a digest hit proves the unique
        // back-scan survivor for this row set already ran, which is
        // exactly the condition the scan below would detect
        if !is_root {
            let digest = memo::rowset_digest(f.ins.z.words());
            if self.memo.probe(digest) {
                self.obs.pruned(PruneReason::Duplicate);
                return;
            }
            let last = last.expect("non-root") as usize;
            if f.ins
                .z
                .iter()
                .take_while(|&r| r < last)
                .any(|r| !counted.contains(r))
            {
                self.obs.pruned(PruneReason::Duplicate);
                return;
            }
            self.memo.insert(digest);
        }

        let sup_p = f.ins.z.intersection_len(&self.pos_mask);
        let sup_n = f.ins.z.len() - sup_p;

        // support bound (Us1) and the rising confidence floor
        if !is_root {
            let us1 = if last_is_pos {
                parent_sup_p + 1 + f.ins.max_ep_tuple
            } else {
                parent_sup_p
            };
            if us1 < self.min_sup {
                self.obs.pruned(PruneReason::TightSupport);
                return;
            }
            let floor = self.floor();
            if floor > 0.0 {
                let uc1 = us1 as f64 / (us1 + sup_n) as f64;
                if uc1 < floor {
                    self.pruned_floor += 1;
                    self.obs.pruned(PruneReason::ConfidenceFloor);
                    return;
                }
            }
        }

        // compression (strategy 1), in frame buffers: u ⊆ e makes
        // `u \ z` equal `u \ (z ∩ e)`, and the counted update is
        // counted ∪ (z ∩ (e_p ∪ e_n))
        if is_root {
            f.next_e_p.copy_from(&f.ins.u_p);
            f.next_e_n.copy_from(&f.ins.u_n);
            f.counted_next.copy_from(counted);
        } else {
            f.ins.u_p.difference_into(&f.ins.z, &mut f.next_e_p);
            f.ins.u_n.difference_into(&f.ins.z, &mut f.next_e_n);
            e_p.union_into(e_n, &mut f.counted_next);
            f.counted_next.intersect_with(&f.ins.z);
            f.counted_next.union_with(counted);
        }

        f.remaining_p.copy_from(&f.next_e_p);
        for r in f.next_e_p.iter() {
            if !self.stop.is_complete() {
                break;
            }
            f.remaining_p.remove(r);
            debug_assert!(!f.counted_next.contains(r));
            f.counted_next.insert(r);
            node.child_into(r as RowId, &mut f.child);
            self.visit(
                scratch,
                &f.child,
                Some(r as RowId),
                &f.counted_next,
                &f.remaining_p,
                &f.next_e_n,
                sup_p,
                depth + 1,
            );
            f.counted_next.remove(r);
        }
        // `remaining_p` is drained by the positive sweep (or the stop
        // check cuts the loop below first), so it serves as the negative
        // children's empty positive candidate list
        f.remaining_n.copy_from(&f.next_e_n);
        for r in f.next_e_n.iter() {
            if !self.stop.is_complete() {
                break;
            }
            f.remaining_n.remove(r);
            debug_assert!(!f.counted_next.contains(r));
            f.counted_next.insert(r);
            node.child_into(r as RowId, &mut f.child);
            self.visit(
                scratch,
                &f.child,
                Some(r as RowId),
                &f.counted_next,
                &f.remaining_p,
                &f.remaining_n,
                sup_p,
                depth + 1,
            );
            f.counted_next.remove(r);
        }

        // offer this node's group to every covered row; a halted search
        // offers nothing further (same no-emission-after-stop contract as
        // the IRG miner)
        if !is_root && self.stop.is_complete() && sup_p >= self.min_sup {
            let mut support_set = RowSet::empty(self.n);
            for r in f.ins.z.iter() {
                support_set.insert(self.order[r] as usize);
            }
            let group = TopKGroup {
                upper: IdList::from_iter(node.items().iter().copied()),
                support_set,
                sup: sup_p,
                neg_sup: sup_n,
            };
            self.groups_offered += 1;
            self.obs.group_emitted(sup_p, sup_n);
            for r in f.ins.z.iter() {
                self.offer(&group, r);
            }
        }
    }
}

/// [`Miner`]-trait adapter over [`mine_top_k_session`]: the distinct
/// groups appearing in any per-row top-k list, deduplicated by upper
/// bound and sorted by `(|upper|, upper)`, reported as a [`MineResult`].
#[derive(Clone, Debug)]
pub struct TopKMiner {
    /// The consequent class.
    pub class: ClassLabel,
    /// Per-row list length.
    pub k: usize,
    /// Minimum rule support.
    pub min_sup: usize,
}

impl TopKMiner {
    /// Converts a [`TopKResult`] into the [`MineResult`] shape of the
    /// `Miner` trait (shared by the plain and traced entry points).
    fn package(&self, data: &Dataset, res: TopKResult) -> MineResult {
        let n = data.n_rows();
        let m = data.class_count(self.class);
        let mut by_upper: std::collections::BTreeMap<Vec<u32>, &TopKGroup> =
            std::collections::BTreeMap::new();
        for g in res.per_row.iter().flatten() {
            by_upper.entry(g.upper.as_slice().to_vec()).or_insert(g);
        }
        let mut groups: Vec<&TopKGroup> = by_upper.into_values().collect();
        groups.sort_by(|a, b| {
            a.upper
                .len()
                .cmp(&b.upper.len())
                .then_with(|| a.upper.cmp(&b.upper))
        });
        MineResult {
            groups: groups
                .into_iter()
                .map(|g| RuleGroup {
                    upper: g.upper.clone(),
                    lower: Vec::new(),
                    support_set: g.support_set.clone(),
                    sup: g.sup,
                    neg_sup: g.neg_sup,
                    class: self.class,
                    n_rows: n,
                    n_class: m,
                })
                .collect(),
            stats: MineStats {
                nodes_visited: res.nodes_visited,
                pruned_floor: res.pruned_floor,
                budget_exhausted: res.budget_exhausted,
                stop: res.stop,
                ..Default::default()
            },
            sched: SchedStats {
                steals: 0,
                worker_nodes: vec![res.nodes_visited],
                peak_arena_depth: 0,
                memo: res.memo.clone(),
            },
            n_rows: n,
            n_class: m,
        }
    }
}

impl Miner for TopKMiner {
    fn name(&self) -> &'static str {
        "topk"
    }

    fn mine_with(
        &self,
        data: &Dataset,
        ctl: &MineControl,
        obs: &mut dyn MineObserver,
    ) -> MineResult {
        let res = mine_top_k_session(data, self.class, self.k, self.min_sup, ctl, obs);
        self.package(data, res)
    }

    fn mine_traced(
        &self,
        data: &Dataset,
        ctl: &MineControl,
        obs: &mut dyn MineObserver,
        tracer: &dyn TraceSink,
    ) -> MineResult {
        let _session = trace::span(tracer, trace::LANE_MAIN, trace::SPAN_SESSION);
        let res =
            mine_top_k_session_traced(data, self.class, self.k, self.min_sup, ctl, obs, tracer);
        self.package(data, res)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::enumerate_rule_groups;
    use farmer_dataset::{paper_example, DatasetBuilder};

    /// Oracle: per-row top-k from the exhaustive group list. Compares
    /// rank keys only (ties between equal-ranked groups are arbitrary).
    fn naive_top_k(
        data: &Dataset,
        class: ClassLabel,
        k: usize,
        min_sup: usize,
    ) -> Vec<Vec<(usize, usize)>> {
        type Entry = (f64, usize, std::cmp::Reverse<usize>, usize, usize);
        let groups = enumerate_rule_groups(data, class);
        let mut per_row: Vec<Vec<Entry>> = vec![Vec::new(); data.n_rows()];
        for g in &groups {
            if g.sup_p < min_sup {
                continue;
            }
            for r in g.rows.iter() {
                per_row[r].push((
                    g.confidence(),
                    g.sup_p,
                    std::cmp::Reverse(g.upper.len()),
                    g.sup_p,
                    g.sup_n,
                ));
            }
        }
        per_row
            .into_iter()
            .map(|mut v| {
                v.sort_by(|a, b| b.partial_cmp(a).expect("finite"));
                v.truncate(k);
                v.into_iter().map(|(_, _, _, sp, sn)| (sp, sn)).collect()
            })
            .collect()
    }

    fn got_keys(res: &TopKResult) -> Vec<Vec<(usize, usize)>> {
        res.per_row
            .iter()
            .map(|v| v.iter().map(|g| (g.sup, g.neg_sup)).collect())
            .collect()
    }

    #[test]
    fn matches_oracle_on_paper_example() {
        let d = paper_example();
        for class in [0u32, 1] {
            for k in [1usize, 2, 3] {
                for min_sup in [1usize, 2] {
                    let got = mine_top_k(&d, class, k, min_sup);
                    let want = naive_top_k(&d, class, k, min_sup);
                    // compare (sup, neg_sup) multisets row by row — rank
                    // keys are derived from them
                    let mut g = got_keys(&got);
                    let mut w = want;
                    for (a, b) in g.iter_mut().zip(w.iter_mut()) {
                        a.sort_unstable();
                        b.sort_unstable();
                    }
                    assert_eq!(g, w, "class={class} k={k} min_sup={min_sup}");
                }
            }
        }
    }

    #[test]
    fn groups_cover_their_rows() {
        let d = paper_example();
        let res = mine_top_k(&d, 0, 2, 1);
        for (r, groups) in res.per_row.iter().enumerate() {
            for g in groups {
                assert!(
                    g.support_set.contains(r),
                    "row {r} not covered by {:?}",
                    g.upper
                );
                assert_eq!(d.rows_supporting(&g.upper), g.support_set);
            }
        }
    }

    #[test]
    fn results_sorted_best_first() {
        let d = paper_example();
        let res = mine_top_k(&d, 0, 3, 1);
        for groups in &res.per_row {
            for w in groups.windows(2) {
                assert!(w[0].rank_key() >= w[1].rank_key());
            }
        }
    }

    #[test]
    fn floor_pruning_engages() {
        // bigger dataset so heaps fill and the floor rises
        let mut b = DatasetBuilder::new(2);
        for i in 0..8u32 {
            b.add_row([0, 1, i + 2], u32::from(i >= 4));
        }
        let d = b.build();
        let res = mine_top_k(&d, 0, 1, 1);
        assert!(res.nodes_visited > 0);
        // every row has at least one covering group: items 0,1 cover all
        assert!(res.per_row.iter().all(|v| !v.is_empty()));
    }

    #[test]
    fn k_larger_than_group_count() {
        let mut b = DatasetBuilder::new(2);
        b.add_row([0], 0);
        b.add_row([1], 1);
        let d = b.build();
        let res = mine_top_k(&d, 0, 10, 1);
        assert_eq!(res.per_row[0].len(), 1);
        // row 1's only group {1} has sup_p = 0 < min_sup -> no groups
        assert!(res.per_row[1].is_empty());
    }
}

//! The span & histogram taxonomy of a FARMER mining run.
//!
//! The mechanism (sinks, rings, histograms, exporters) lives in
//! [`farmer_support::trace`] and is re-exported here; this module pins
//! the *identities*: which phases exist, which latencies are
//! histogrammed, and how worker threads map to trace lanes. Keeping the
//! taxonomy next to the instrumented code means `farmer-dataset` stays
//! trace-free (callers wrap its load/discretize/transpose phases in
//! spans) and every crate in the workspace agrees on the name tables.
//!
//! # Lane convention
//!
//! Lane 0 ([`LANE_MAIN`]) is the main/sequential thread; parallel
//! worker `w` records on lane [`worker_lane`]`(w) = w + 1`. The Chrome
//! exporter turns each lane into its own named track.

pub use farmer_support::trace::{
    chrome_trace_json, prometheus_text, span, trace_stats_json, EventKind, HistId, Histogram,
    NoopTracer, RingTracer, Span, SpanId, TraceEvent, TraceReport, TraceSink,
};

/// Name table for the phase spans, indexed by `SpanId`.
pub const SPAN_NAMES: &[&str] = &[
    "session",
    "load",
    "discretize",
    "transpose",
    "enumerate",
    "merge",
    "lower_bounds",
    "steal",
    "nodes",
    "memo_hits",
    "memo_misses",
    "memo_inserts",
    "memo_collisions",
];

/// A whole mining run (the [`Miner::mine_traced`] default wraps
/// `mine_with` in this span).
///
/// [`Miner::mine_traced`]: crate::session::Miner::mine_traced
pub const SPAN_SESSION: SpanId = SpanId(0);
/// Reading the dataset from disk (emitted by the CLI).
pub const SPAN_LOAD: SpanId = SpanId(1);
/// Discretizing expression values into items (emitted by the CLI).
pub const SPAN_DISCRETIZE: SpanId = SpanId(2);
/// Building the transposed table and the `ORD` row permutation.
pub const SPAN_TRANSPOSE: SpanId = SpanId(3);
/// Row enumeration — one span per worker lane.
pub const SPAN_ENUMERATE: SpanId = SpanId(4);
/// Parallel merge: dedup by upper bound + the interestingness pass.
pub const SPAN_MERGE: SpanId = SpanId(5);
/// MineLB lower-bound attachment during result packaging.
pub const SPAN_LOWER_BOUNDS: SpanId = SpanId(6);
/// Instant marking a work-steal (a worker claimed a depth-1 subtree
/// beyond its first).
pub const SPAN_STEAL: SpanId = SpanId(7);
/// Counter track sampling `nodes_visited` per lane.
pub const COUNTER_NODES: SpanId = SpanId(8);
/// Counter: shared memo-table probe hits (one final sample per run,
/// main lane, at merge/packaging time).
pub const COUNTER_MEMO_HITS: SpanId = SpanId(9);
/// Counter: memo-table probe misses.
pub const COUNTER_MEMO_MISSES: SpanId = SpanId(10);
/// Counter: digests published to the memo table.
pub const COUNTER_MEMO_INSERTS: SpanId = SpanId(11);
/// Counter: memo inserts dropped on a full probe window.
pub const COUNTER_MEMO_COLLISIONS: SpanId = SpanId(12);

/// Name table for the latency histograms, indexed by `HistId`.
pub const HIST_NAMES: &[&str] = &["node_visit", "fused_scan", "lower_bound"];

/// Inclusive duration of one enumeration-node visit (children
/// included — leaf buckets dominate the low quantiles).
pub const HIST_NODE_VISIT: HistId = HistId(0);
/// One fused conditional-table scan (`CondNode::inspect_into`).
pub const HIST_FUSED_SCAN: HistId = HistId(1);
/// One `mine_lower_bounds` call during packaging.
pub const HIST_LOWER_BOUND: HistId = HistId(2);

/// The main/sequential thread's lane.
pub const LANE_MAIN: usize = 0;

/// The lane parallel worker `w` records on.
pub const fn worker_lane(worker: usize) -> usize {
    worker + 1
}

/// Event-ring capacity per lane (slots). Mining emits phase-granular
/// events plus one steal instant per queue claim and one counter sample
/// per 1024 nodes, so 16Ki slots (384 KiB/lane at 24 B/slot) covers
/// hours of tracing; overflow drops newest and is reported.
pub const DEFAULT_RING_CAPACITY: usize = 16 * 1024;

/// A [`RingTracer`] sized for a run with `threads` workers: the main
/// lane plus one lane per worker, default capacity, the workspace name
/// tables.
pub fn mining_tracer(threads: usize) -> RingTracer {
    RingTracer::new(
        SPAN_NAMES,
        HIST_NAMES,
        threads.max(1) + 1,
        DEFAULT_RING_CAPACITY,
    )
}

/// Emits a counter sample every this many nodes on traced runs.
pub(crate) const NODE_COUNTER_MASK: u64 = 1023;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn taxonomy_tables_are_consistent() {
        // every declared id indexes its name table
        for id in [
            SPAN_SESSION,
            SPAN_LOAD,
            SPAN_DISCRETIZE,
            SPAN_TRANSPOSE,
            SPAN_ENUMERATE,
            SPAN_MERGE,
            SPAN_LOWER_BOUNDS,
            SPAN_STEAL,
            COUNTER_NODES,
            COUNTER_MEMO_HITS,
            COUNTER_MEMO_MISSES,
            COUNTER_MEMO_INSERTS,
            COUNTER_MEMO_COLLISIONS,
        ] {
            assert!((id.0 as usize) < SPAN_NAMES.len());
        }
        for id in [HIST_NODE_VISIT, HIST_FUSED_SCAN, HIST_LOWER_BOUND] {
            assert!((id.0 as usize) < HIST_NAMES.len());
        }
        // names are unique (exporter labels collide otherwise)
        for table in [SPAN_NAMES, HIST_NAMES] {
            let mut seen = std::collections::HashSet::new();
            assert!(table.iter().all(|n| seen.insert(*n)), "duplicate name");
        }
    }

    #[test]
    fn mining_tracer_has_one_lane_per_worker_plus_main() {
        assert_eq!(mining_tracer(4).n_lanes(), 5);
        assert_eq!(mining_tracer(0).n_lanes(), 2);
        assert_eq!(worker_lane(3), 4);
        assert_eq!(LANE_MAIN, 0);
    }
}

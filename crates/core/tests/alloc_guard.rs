//! Allocation guard for the enumeration hot path.
//!
//! The miner threads a scratch arena through the search so that, once
//! the frame pool is warm, expanding a node performs **zero** heap
//! allocations (fused kernels work in place; candidate lists, counted
//! sets, and child nodes live in recycled frames). This binary installs
//! a counting global allocator and pins that contract at two levels:
//!
//! 1. a micro-probe: repeated `inspect_into` / `child_into` on warm
//!    buffers allocate exactly nothing, for both engines;
//! 2. a whole-run budget: a full mine allocates orders of magnitude
//!    fewer times than it visits nodes (setup, frame warm-up, and
//!    per-emission costs only).
//!
//! The binary is `harness = false` (see `Cargo.toml`): the libtest
//! harness spawns threads of its own that occasionally allocate while a
//! probe is mid-window, and the exact-zero assertions need the
//! process-global counter to see *only* the hot path. A plain `main`
//! keeps the whole process single-threaded and the measurement exact.

use farmer_core::cond::{BitsetNode, CondNode, Inspect, PointerNode};
use farmer_core::memo::{rowset_digest, MemoTable};
use farmer_core::{Engine, Farmer, MineControl, MiningParams, NoOpObserver, NoopTracer};
use farmer_dataset::discretize::Discretizer;
use farmer_dataset::synth::SynthConfig;
use farmer_dataset::TransposedTable;
use farmer_support::alloc::{allocation_count, CountingAlloc};
use farmer_support::thread::WorkDeque;
use rowset::RowSet;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

fn workload() -> farmer_dataset::Dataset {
    let m = SynthConfig {
        n_rows: 24,
        n_genes: 120,
        n_class1: 12,
        n_signature: 40,
        clusters_per_class: 2,
        cluster_spread: 1.8,
        cluster_noise: 0.35,
        ..Default::default()
    }
    .generate();
    Discretizer::EqualDepth { buckets: 6 }.discretize(&m)
}

fn main() {
    hot_path_is_allocation_free_once_warm();
    memo_and_deque_paths_are_allocation_free();
    disabled_tracing_stays_allocation_free();
    println!("alloc_guard OK: hot path is allocation-free once warm");
}

/// The PR-6 additions to the per-node hot path: a memo probe/insert per
/// back scan and deque push/pop/steal per scheduled task. Both work in
/// fixed atomic arrays allocated at construction, so once built they
/// must allocate exactly nothing — same bar as the fused kernels.
fn memo_and_deque_paths_are_allocation_free() {
    // ---- memo probe/insert/digest on a warm table
    let d = workload();
    let n = d.n_rows();
    let m = d.class_count(1);
    let e_p = RowSet::from_ids(n, 0..m);
    let e_n = RowSet::from_ids(n, m..n);
    let root = BitsetNode::root(&d);
    let mut ins = Inspect::new(n);
    root.inspect_into(&e_p, &e_n, &mut ins);
    let table = MemoTable::new(1024);
    let before = allocation_count();
    for salt in 0..200u64 {
        let digest = rowset_digest(ins.z.words()) ^ salt;
        if !table.probe(digest) {
            table.insert(digest);
        }
        assert!(
            table.probe(digest) || salt > 8,
            "window can drop, early slots can't"
        );
    }
    assert_eq!(
        allocation_count() - before,
        0,
        "memo digest/probe/insert must not allocate"
    );

    // ---- deque push/pop/steal on a warm ring
    let dq = WorkDeque::new(64);
    assert!(dq.push(1));
    assert_eq!(dq.pop(), Some(1));
    let before = allocation_count();
    for i in 0..200u64 {
        assert!(dq.push(i));
        assert!(dq.push(i + 1000));
        assert_eq!(dq.steal(), Some(i));
        assert_eq!(dq.pop(), Some(i + 1000));
    }
    assert_eq!(
        allocation_count() - before,
        0,
        "deque push/pop/steal must not allocate"
    );
}

fn hot_path_is_allocation_free_once_warm() {
    let d = workload();
    let n = d.n_rows();
    let m = d.class_count(1);
    let e_p = RowSet::from_ids(n, 0..m);
    let e_n = RowSet::from_ids(n, m..n);

    // ---- micro-probe, bitset engine: warm the buffers once, then
    // demand exact zero across many scan + descend steps
    let root = BitsetNode::root(&d);
    let mut ins = Inspect::new(n);
    let mut child = root.clone_shell();
    root.inspect_into(&e_p, &e_n, &mut ins);
    let probe = ins.u_p.iter().next().expect("workload has candidates");
    root.child_into(probe as u32, &mut child);
    let before = allocation_count();
    for _ in 0..200 {
        root.inspect_into(&e_p, &e_n, &mut ins);
        root.child_into(probe as u32, &mut child);
        child.inspect_into(&e_p, &e_n, &mut ins);
    }
    assert_eq!(
        allocation_count() - before,
        0,
        "warm bitset inspect_into/child_into must not allocate"
    );

    // ---- micro-probe, pointer engine
    let (tt, _reordered, _order) = TransposedTable::for_mining(&d, 1);
    let proot = PointerNode::root(&tt);
    let mut pins = Inspect::new(n);
    let mut pchild = proot.clone_shell();
    proot.inspect_into(&e_p, &e_n, &mut pins);
    let pprobe = pins.u_p.iter().next().expect("workload has candidates");
    proot.child_into(pprobe as u32, &mut pchild);
    let before = allocation_count();
    for _ in 0..200 {
        proot.inspect_into(&e_p, &e_n, &mut pins);
        proot.child_into(pprobe as u32, &mut pchild);
        pchild.inspect_into(&e_p, &e_n, &mut pins);
    }
    assert_eq!(
        allocation_count() - before,
        0,
        "warm pointer inspect_into/child_into must not allocate"
    );

    // ---- whole-run budget: allocations are sublinear in nodes visited.
    // Costs left: session setup, warming ≤ peak-depth frames, and the
    // emissions (upper-bound itemset, support-set clone, final
    // `RuleGroup`) — nothing per ordinary node, which is what the
    // `nodes / 10` term polices.
    for engine in [Engine::Bitset, Engine::PointerList] {
        let params = MiningParams::new(1).min_sup(2).lower_bounds(false);
        let farmer = Farmer::new(params).with_engine(engine);
        let before = allocation_count();
        let r = farmer.mine(&d);
        let allocs = allocation_count() - before;
        assert!(
            r.stats.nodes_visited > 1_000,
            "workload too small to be meaningful: {} nodes",
            r.stats.nodes_visited
        );
        let emissions = r.len() as u64 + r.stats.rejected_not_interesting;
        let budget = 300 + 16 * emissions + r.stats.nodes_visited / 10;
        assert!(
            allocs < budget,
            "{engine:?}: {allocs} allocations for {} nodes and {emissions} emissions \
             (budget {budget}) — the hot path is allocating per node again",
            r.stats.nodes_visited
        );
    }
}

/// The tracing instrumentation is statically dispatched: mining through
/// `mine_session_traced` with the [`NoopTracer`] must monomorphize to
/// the exact uninstrumented search — same whole-run allocation budget,
/// no clock reads, no event buffers. (The enabled path is covered by
/// `trace_integration.rs`; its ring buffers are allocated up front, so
/// even there the warm path stays allocation-free.)
fn disabled_tracing_stays_allocation_free() {
    let d = workload();
    for engine in [Engine::Bitset, Engine::PointerList] {
        let params = MiningParams::new(1).min_sup(2).lower_bounds(false);
        let farmer = Farmer::new(params).with_engine(engine);
        let ctl = MineControl::new();
        let before = allocation_count();
        let r = farmer.mine_session_traced(&d, &ctl, &mut NoOpObserver, &NoopTracer);
        let allocs = allocation_count() - before;
        let emissions = r.len() as u64 + r.stats.rejected_not_interesting;
        let budget = 300 + 16 * emissions + r.stats.nodes_visited / 10;
        assert!(
            allocs < budget,
            "{engine:?} (NoopTracer): {allocs} allocations for {} nodes \
             (budget {budget}) — disabled tracing is no longer free",
            r.stats.nodes_visited
        );
    }
}

//! Node-budget semantics: truncation is flagged, results stay valid,
//! and everything returned is a subset of the unbudgeted answer.
//!
//! Deliberately exercises the deprecated `MiningParams::node_budget`
//! builder: it must keep working as the back-compat fallback for
//! `MineControl::node_budget` (see `tests/session.rs` for the
//! control-based path).
#![allow(deprecated)]

use farmer_core::{Farmer, MiningParams};
use farmer_dataset::discretize::Discretizer;
use farmer_dataset::synth::SynthConfig;
use std::collections::HashSet;

fn workload() -> farmer_dataset::Dataset {
    let m = SynthConfig {
        n_rows: 24,
        n_genes: 120,
        n_class1: 12,
        n_signature: 40,
        clusters_per_class: 2,
        cluster_spread: 1.8,
        cluster_noise: 0.35,
        ..Default::default()
    }
    .generate();
    Discretizer::EqualDepth { buckets: 6 }.discretize(&m)
}

#[test]
fn budget_flag_and_subset() {
    let d = workload();
    let params = MiningParams::new(1).min_sup(2).lower_bounds(false);
    let full = Farmer::new(params.clone()).mine(&d);
    assert!(!full.stats.budget_exhausted);
    assert!(
        full.len() > 5,
        "need a non-trivial workload: {}",
        full.len()
    );

    let tiny = Farmer::new(
        params
            .clone()
            .node_budget(Some(full.stats.nodes_visited / 4)),
    )
    .mine(&d);
    assert!(tiny.stats.budget_exhausted);
    assert!(tiny.stats.nodes_visited <= full.stats.nodes_visited / 4 + 1);

    // every truncated group is a genuine rule group meeting thresholds
    let full_uppers: HashSet<Vec<u32>> = full
        .groups
        .iter()
        .map(|g| g.upper.as_slice().to_vec())
        .collect();
    for g in &tiny.groups {
        assert!(
            full_uppers.contains(g.upper.as_slice()) || {
                // a truncated run may keep a group the full run later
                // rejected as dominated — but it must still be valid
                d.items_common_to(&d.rows_supporting(&g.upper)) == g.upper
            }
        );
        assert!(g.sup >= 2);
        assert_eq!(d.rows_supporting(&g.upper), g.support_set);
    }
}

#[test]
fn generous_budget_changes_nothing() {
    let d = workload();
    let params = MiningParams::new(1).min_sup(2).lower_bounds(false);
    let full = Farmer::new(params.clone()).mine(&d);
    let budgeted = Farmer::new(params.node_budget(Some(u64::MAX / 2))).mine(&d);
    assert!(!budgeted.stats.budget_exhausted);
    let canon = |r: &farmer_core::MineResult| -> Vec<Vec<u32>> {
        let mut v: Vec<Vec<u32>> = r
            .groups
            .iter()
            .map(|g| g.upper.as_slice().to_vec())
            .collect();
        v.sort();
        v
    };
    assert_eq!(canon(&full), canon(&budgeted));
}

#[test]
fn budget_of_one_returns_empty() {
    let d = workload();
    let r = Farmer::new(MiningParams::new(1).node_budget(Some(1))).mine(&d);
    assert!(r.stats.budget_exhausted);
    assert!(r.is_empty());
}

#[test]
fn stats_counters_populate() {
    let d = workload();
    let r = Farmer::new(MiningParams::new(1).min_sup(3).min_conf(0.9).min_chi(3.0)).mine(&d);
    let s = &r.stats;
    assert!(s.nodes_visited > 0);
    // with all three thresholds active, some bound must have fired
    assert!(
        s.pruned_loose + s.pruned_tight_support + s.pruned_tight_confidence + s.pruned_chi > 0,
        "{s:?}"
    );
    assert!(!s.budget_exhausted);
}

//! FARMER vs the brute-force oracle: on small datasets the miner must
//! reproduce the oracle's IRGs *exactly* — upper bounds, support sets,
//! counts, and lower bounds — for every engine and every pruning
//! configuration.

use farmer_core::naive::{mine_naive, naive_lower_bounds};
use farmer_core::{Engine, ExtraConstraint, Farmer, MiningParams, PruningConfig, RuleGroup};
use farmer_dataset::{paper_example, Dataset, DatasetBuilder};
use farmer_support::rng::{Rng, SeedableRng, StdRng};

/// Canonical, comparable form of one group:
/// (upper, support rows, sup, neg_sup, sorted lower bounds).
type CanonGroup = (Vec<u32>, Vec<usize>, usize, usize, Vec<Vec<u32>>);

/// Canonical, comparable form of a result set.
fn canon(groups: &[RuleGroup]) -> Vec<CanonGroup> {
    let mut v: Vec<_> = groups
        .iter()
        .map(|g| {
            let mut lows: Vec<Vec<u32>> = g.lower.iter().map(|l| l.as_slice().to_vec()).collect();
            lows.sort();
            (
                g.upper.as_slice().to_vec(),
                g.support_set.to_vec(),
                g.sup,
                g.neg_sup,
                lows,
            )
        })
        .collect();
    v.sort();
    v
}

fn engines() -> [Engine; 2] {
    [Engine::Bitset, Engine::PointerList]
}

fn pruning_configs() -> Vec<PruningConfig> {
    let b = [false, true];
    let mut v = Vec::new();
    for s1 in b {
        for s2 in b {
            for s3l in b {
                for s3t in b {
                    v.push(PruningConfig {
                        strategy1_compression: s1,
                        strategy2_duplicate: s2,
                        strategy3_loose: s3l,
                        strategy3_tight: s3t,
                    });
                }
            }
        }
    }
    v
}

fn check_all_configs(data: &Dataset, params: &MiningParams) {
    let expected = canon(&mine_naive(data, params));
    for engine in engines() {
        for pruning in pruning_configs() {
            let result = Farmer::new(params.clone())
                .with_engine(engine)
                .with_pruning(pruning)
                .mine(data);
            assert_eq!(
                canon(&result.groups),
                expected,
                "mismatch: engine={engine:?} pruning={pruning:?} params={params:?}"
            );
        }
    }
}

fn random_dataset(rng: &mut StdRng, n_rows: usize, n_items: usize, density: f64) -> Dataset {
    let mut b = DatasetBuilder::new(2);
    for _ in 0..n_rows {
        let items: Vec<u32> = (0..n_items as u32)
            .filter(|_| rng.gen_bool(density))
            .collect();
        let label = u32::from(rng.gen_bool(0.5));
        b.add_row(items, label);
    }
    b.build()
}

#[test]
fn paper_example_all_configs() {
    let d = paper_example();
    for class in [0u32, 1] {
        for (min_sup, min_conf, min_chi) in [
            (1, 0.0, 0.0),
            (2, 0.0, 0.0),
            (3, 0.0, 0.0),
            (1, 0.6, 0.0),
            (1, 0.9, 0.0),
            (2, 0.5, 0.0),
        ] {
            let params = MiningParams::new(class)
                .min_sup(min_sup)
                .min_conf(min_conf)
                .min_chi(min_chi);
            check_all_configs(&d, &params);
        }
    }
}

#[test]
fn paper_example_chi_thresholds() {
    let d = paper_example();
    for min_chi in [0.5, 1.0, 2.0, 5.0] {
        let params = MiningParams::new(0).min_sup(1).min_chi(min_chi);
        check_all_configs(&d, &params);
    }
}

#[test]
fn random_datasets_default_pruning() {
    let mut rng = StdRng::seed_from_u64(42);
    for trial in 0..30 {
        let n_rows = rng.gen_range(3..=10);
        let n_items = rng.gen_range(3..=14);
        let density = rng.gen_range(0.25..0.75);
        let d = random_dataset(&mut rng, n_rows, n_items, density);
        let params = MiningParams::new(rng.gen_range(0..2))
            .min_sup(rng.gen_range(1..=3))
            .min_conf([0.0, 0.5, 0.8][rng.gen_range(0..3usize)])
            .min_chi([0.0, 0.0, 1.0][rng.gen_range(0..3usize)]);
        let expected = canon(&mine_naive(&d, &params));
        for engine in engines() {
            let result = Farmer::new(params.clone()).with_engine(engine).mine(&d);
            assert_eq!(
                canon(&result.groups),
                expected,
                "trial={trial} engine={engine:?} params={params:?}"
            );
        }
    }
}

#[test]
fn random_datasets_all_pruning_configs() {
    let mut rng = StdRng::seed_from_u64(7);
    for trial in 0..6 {
        let d = random_dataset(&mut rng, 7, 9, 0.5);
        let params = MiningParams::new(0)
            .min_sup(1 + trial % 3)
            .min_conf([0.0, 0.6][trial % 2])
            .lower_bounds(false);
        check_all_configs(&d, &params);
    }
}

#[test]
fn degenerate_datasets() {
    // single row
    let mut b = DatasetBuilder::new(2);
    b.add_row([0, 1, 2], 0);
    let d = b.build();
    check_all_configs(&d, &MiningParams::new(0));
    check_all_configs(&d, &MiningParams::new(1));

    // all rows identical
    let mut b = DatasetBuilder::new(2);
    for i in 0..4 {
        b.add_row([0, 1], u32::from(i >= 2));
    }
    let d = b.build();
    check_all_configs(&d, &MiningParams::new(0).min_sup(2));

    // disjoint rows (no 2-row group exists)
    let mut b = DatasetBuilder::new(2);
    b.add_row([0], 0);
    b.add_row([1], 0);
    b.add_row([2], 1);
    let d = b.build();
    check_all_configs(&d, &MiningParams::new(0));

    // a row with no items at all
    let mut b = DatasetBuilder::new(2);
    b.add_row([0, 1], 0);
    b.add_row(std::iter::empty(), 0);
    b.add_row([1], 1);
    let d = b.build();
    check_all_configs(&d, &MiningParams::new(0));
}

#[test]
fn extra_constraints_match_oracle() {
    let d = paper_example();
    let extras: Vec<Vec<ExtraConstraint>> = vec![
        vec![ExtraConstraint::MinLift(1.2)],
        vec![ExtraConstraint::MinConviction(1.5)],
        vec![ExtraConstraint::MinEntropyGain(0.2)],
        vec![ExtraConstraint::MinGiniGain(0.1)],
        vec![ExtraConstraint::MinCorrelation(0.3)],
        vec![
            ExtraConstraint::MinLift(1.1),
            ExtraConstraint::MinEntropyGain(0.1),
        ],
    ];
    for extra in extras {
        for class in [0u32, 1] {
            let mut params = MiningParams::new(class).min_sup(1).lower_bounds(false);
            params.extra = extra.clone();
            check_all_configs(&d, &params);
        }
    }
}

#[test]
fn extra_constraints_on_random_data() {
    let mut rng = StdRng::seed_from_u64(55);
    for trial in 0..8 {
        let d = random_dataset(&mut rng, 7, 10, 0.5);
        let mut params = MiningParams::new(0).min_sup(1).lower_bounds(false);
        params.extra = vec![
            [
                ExtraConstraint::MinLift(1.3),
                ExtraConstraint::MinConviction(1.2),
                ExtraConstraint::MinEntropyGain(0.15),
                ExtraConstraint::MinGiniGain(0.08),
            ][trial % 4],
        ];
        let expected = canon(&mine_naive(&d, &params));
        for engine in engines() {
            let got = Farmer::new(params.clone()).with_engine(engine).mine(&d);
            assert_eq!(
                canon(&got.groups),
                expected,
                "trial={trial} engine={engine:?}"
            );
        }
    }
}

#[test]
fn replicated_rows() {
    let d = paper_example();
    let rep = farmer_dataset::replicate::replicate_rows(&d, 2);
    // 10 rows: still oracle-checkable
    let params = MiningParams::new(0).min_sup(2).lower_bounds(false);
    check_all_configs(&rep, &params);
}

#[test]
fn lower_bounds_match_naive_on_mined_groups() {
    let mut rng = StdRng::seed_from_u64(99);
    for _ in 0..10 {
        let d = random_dataset(&mut rng, 6, 8, 0.55);
        let params = MiningParams::new(0).min_sup(1);
        let result = Farmer::new(params).mine(&d);
        for g in &result.groups {
            let mut got: Vec<Vec<u32>> = g.lower.iter().map(|l| l.as_slice().to_vec()).collect();
            got.sort();
            let mut want: Vec<Vec<u32>> = naive_lower_bounds(&g.upper, &g.support_set, &d)
                .iter()
                .map(|l| l.as_slice().to_vec())
                .collect();
            want.sort();
            assert_eq!(got, want, "lower bounds differ for {:?}", g.upper);
        }
    }
}

#[test]
fn paper_example_known_irg() {
    // The running example: group {a,e,h} -> C covers rows r2,r3,r4 with
    // confidence 2/3, and is dominated by {a} -> C (conf 3/4): with
    // min_conf = 0 the {a} group must be an IRG and {a,e,h} must not.
    let d = paper_example();
    let result = Farmer::new(MiningParams::new(0)).mine(&d);
    let name = |g: &RuleGroup| -> String {
        g.upper
            .iter()
            .map(|i| d.item_name(i).to_string())
            .collect::<Vec<_>>()
            .join("")
    };
    let uppers: Vec<String> = result.groups.iter().map(&name).collect();
    assert!(uppers.iter().any(|u| u == "a"), "{uppers:?}");
    assert!(!uppers.iter().any(|u| u == "aeh"), "{uppers:?}");
    // the {a} group: support set = rows 0..3, sup 3, neg 1
    let a_group = result.groups.iter().find(|g| name(g) == "a").unwrap();
    assert_eq!(a_group.support_set.to_vec(), vec![0, 1, 2, 3]);
    assert_eq!(a_group.sup, 3);
    assert_eq!(a_group.neg_sup, 1);
}

#[test]
fn stats_reflect_pruning() {
    let d = paper_example();
    let full = Farmer::new(MiningParams::new(0)).mine(&d);
    let none = Farmer::new(MiningParams::new(0))
        .with_pruning(PruningConfig::none())
        .mine(&d);
    assert!(full.stats.nodes_visited <= none.stats.nodes_visited);
    assert_eq!(canon(&full.groups), canon(&none.groups));
    // thresholds engage the bound counters
    let tight = Farmer::new(MiningParams::new(0).min_sup(3).min_conf(0.9)).mine(&d);
    let s = &tight.stats;
    assert!(
        s.pruned_loose + s.pruned_tight_support + s.pruned_tight_confidence > 0,
        "{s:?}"
    );
}

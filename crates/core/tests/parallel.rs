//! Parallel mining must be exactly equivalent to the sequential run.

use farmer_core::{Engine, Farmer, MiningParams, RuleGroup};
use farmer_dataset::discretize::Discretizer;
use farmer_dataset::synth::SynthConfig;
use farmer_dataset::{paper_example, DatasetBuilder};
use farmer_support::rng::{Rng, SeedableRng, StdRng};

/// (upper, support rows, sup, neg_sup, sorted lower bounds).
type CanonGroup = (Vec<u32>, Vec<usize>, usize, usize, Vec<Vec<u32>>);

fn canon(groups: &[RuleGroup]) -> Vec<CanonGroup> {
    let mut v: Vec<_> = groups
        .iter()
        .map(|g| {
            let mut lows: Vec<Vec<u32>> = g.lower.iter().map(|l| l.as_slice().to_vec()).collect();
            lows.sort();
            (
                g.upper.as_slice().to_vec(),
                g.support_set.to_vec(),
                g.sup,
                g.neg_sup,
                lows,
            )
        })
        .collect();
    v.sort();
    v
}

#[test]
fn parallel_equals_sequential_on_paper_example() {
    let d = paper_example();
    for class in [0u32, 1] {
        for (min_sup, min_conf) in [(1, 0.0), (2, 0.0), (1, 0.7)] {
            let params = MiningParams::new(class).min_sup(min_sup).min_conf(min_conf);
            let seq = Farmer::new(params.clone()).mine(&d);
            for threads in [2usize, 3, 8] {
                let par = Farmer::new(params.clone())
                    .with_parallelism(threads)
                    .mine(&d);
                assert_eq!(
                    canon(&par.groups),
                    canon(&seq.groups),
                    "class={class} min_sup={min_sup} threads={threads}"
                );
            }
        }
    }
}

#[test]
fn parallel_equals_sequential_on_random_data() {
    let mut rng = StdRng::seed_from_u64(21);
    for trial in 0..10 {
        let mut b = DatasetBuilder::new(2);
        for _ in 0..rng.gen_range(4..=9) {
            let items: Vec<u32> = (0..12u32).filter(|_| rng.gen_bool(0.5)).collect();
            b.add_row(items, u32::from(rng.gen_bool(0.5)));
        }
        let d = b.build();
        let params = MiningParams::new(0)
            .min_sup(rng.gen_range(1..=2))
            .min_conf([0.0, 0.6][trial % 2])
            .min_chi([0.0, 0.5][trial % 2]);
        let seq = Farmer::new(params.clone()).mine(&d);
        let par = Farmer::new(params.clone()).with_parallelism(4).mine(&d);
        assert_eq!(canon(&par.groups), canon(&seq.groups), "trial={trial}");
    }
}

#[test]
fn parallel_equals_sequential_on_analog() {
    let m = SynthConfig {
        n_rows: 40,
        n_genes: 200,
        n_class1: 20,
        n_signature: 60,
        clusters_per_class: 2,
        cluster_spread: 1.8,
        cluster_noise: 0.35,
        ..Default::default()
    }
    .generate();
    let d = Discretizer::EqualDepth { buckets: 8 }.discretize(&m);
    let params = MiningParams::new(1)
        .min_sup(4)
        .min_conf(0.8)
        .lower_bounds(false);
    let seq = Farmer::new(params.clone()).mine(&d);
    for engine in [Engine::Bitset, Engine::PointerList] {
        let par = Farmer::new(params.clone())
            .with_engine(engine)
            .with_parallelism(4)
            .mine(&d);
        assert_eq!(canon(&par.groups), canon(&seq.groups), "engine {engine:?}");
        // both runs traverse the same subtrees (nodes differ only by the
        // per-thread root re-scan)
        assert!(par.stats.nodes_visited >= seq.stats.nodes_visited);
        assert!(par.stats.nodes_visited <= seq.stats.nodes_visited + 4);
    }
}

#[test]
fn parallelism_one_is_sequential() {
    let d = paper_example();
    let params = MiningParams::new(0);
    let a = Farmer::new(params.clone()).mine(&d);
    let b = Farmer::new(params).with_parallelism(1).mine(&d);
    assert_eq!(canon(&a.groups), canon(&b.groups));
    assert_eq!(a.stats, b.stats);
}

#[test]
fn parallel_mining_is_deterministic() {
    // Two runs with the same parallelism must yield byte-identical IRG
    // sets — and the same set as the sequential run — regardless of
    // thread scheduling.
    let m = SynthConfig {
        n_rows: 24,
        n_genes: 120,
        n_class1: 12,
        n_signature: 30,
        ..Default::default()
    }
    .generate();
    let d = Discretizer::EqualDepth { buckets: 6 }.discretize(&m);
    let params = MiningParams::new(1).min_sup(3).min_conf(0.7);
    let run = || Farmer::new(params.clone()).with_parallelism(4).mine(&d);
    let first = run();
    let second = run();
    assert_eq!(canon(&first.groups), canon(&second.groups));
    assert_eq!(first.stats, second.stats, "even the traversal stats repeat");
    let seq = Farmer::new(params.clone()).mine(&d);
    assert_eq!(canon(&first.groups), canon(&seq.groups));
    assert!(
        !first.groups.is_empty(),
        "test must exercise a non-trivial mine"
    );
}

#[test]
fn shared_budget_draws_one_global_pool() {
    // The node budget is a single shared pool: a budgeted run expands
    // `budget` nodes in total whatever the thread count (plus each
    // worker's share of the root re-count and its halting node), instead
    // of the old per-thread `budget / threads` split.
    use farmer_core::{MineControl, NoOpObserver, StopCause};
    let m = SynthConfig {
        n_rows: 24,
        n_genes: 120,
        n_class1: 12,
        n_signature: 30,
        ..Default::default()
    }
    .generate();
    let d = Discretizer::EqualDepth { buckets: 6 }.discretize(&m);
    let params = MiningParams::new(1).min_sup(2).lower_bounds(false);
    let full = Farmer::new(params.clone()).mine(&d);
    assert!(
        full.stats.nodes_visited > 100,
        "need a non-trivial workload: {}",
        full.stats.nodes_visited
    );
    let budget = full.stats.nodes_visited / 3;
    for threads in [1usize, 2, 4] {
        let ctl = MineControl::new().with_node_budget(Some(budget));
        let r = Farmer::new(params.clone())
            .with_parallelism(threads)
            .mine_session(&d, &ctl, &mut NoOpObserver);
        assert!(r.stats.budget_exhausted, "threads={threads}");
        assert_eq!(r.stats.stop, StopCause::Budget, "threads={threads}");
        // `budget` successful draws, plus per-worker root re-counts and
        // at most one halting node per worker
        assert!(
            r.stats.nodes_visited >= budget + 1,
            "threads={threads}: {} < {}",
            r.stats.nodes_visited,
            budget + 1
        );
        assert!(
            r.stats.nodes_visited <= budget + 2 * threads as u64,
            "threads={threads}: {} > {}",
            r.stats.nodes_visited,
            budget + 2 * threads as u64
        );
        // every truncated group is still a genuine rule group
        for g in &r.groups {
            assert_eq!(d.rows_supporting(&g.upper), g.support_set);
            assert!(g.sup >= 2);
        }
    }
}

#[test]
fn parallel_sched_stats_are_populated() {
    let d = paper_example();
    let par = Farmer::new(MiningParams::new(0))
        .with_parallelism(3)
        .mine(&d);
    assert_eq!(par.sched.worker_nodes.len(), 3);
    let subtree_nodes: u64 = par.sched.worker_nodes.iter().sum();
    assert_eq!(subtree_nodes, par.stats.nodes_visited);
    assert!(par.sched.peak_arena_depth >= 1);
    let seq = Farmer::new(MiningParams::new(0)).mine(&d);
    assert_eq!(seq.sched.steals, 0);
    assert_eq!(seq.sched.worker_nodes, vec![seq.stats.nodes_visited]);
}

#[test]
fn more_threads_than_candidates() {
    let mut b = DatasetBuilder::new(2);
    b.add_row([0, 1], 0);
    b.add_row([1, 2], 1);
    let d = b.build();
    let seq = Farmer::new(MiningParams::new(0)).mine(&d);
    let par = Farmer::new(MiningParams::new(0))
        .with_parallelism(16)
        .mine(&d);
    assert_eq!(canon(&par.groups), canon(&seq.groups));
}

//! Determinism regression matrix for the deque scheduler + shared memo
//! table: the canonical `dump_groups` output must be **byte-identical**
//! across every {threads} × {engine} × {memo} combination, pinned
//! against the 1-thread, memo-off, bitset run of the same workload.
//!
//! The workloads come from the bench crate (a dev-only dependency):
//! `skewed_synth` is the hub-skewed dataset whose depth-1 imbalance
//! drives both stealing and adaptive splitting, and the Leukemia analog
//! is the largest paper-shaped fixture that still mines in test time.

use farmer_bench::workloads::{efficiency_dataset, skewed_synth, SKEWED_SYNTH_PARAMS};
use farmer_core::{canonical_sort, dump_groups, Engine, Farmer, MiningParams};
use farmer_dataset::synth::PaperDataset;
use farmer_dataset::Dataset;

/// Mines and returns the canonical byte dump plus the deterministic
/// mining counters.
fn mine_dump(
    data: &Dataset,
    params: &MiningParams,
    engine: Engine,
    threads: usize,
    memo_capacity: usize,
) -> (String, farmer_core::MineStats) {
    let result = Farmer::new(params.clone())
        .with_engine(engine)
        .with_parallelism(threads)
        .with_memo_capacity(memo_capacity)
        .mine(data);
    let mut groups = result.groups;
    canonical_sort(&mut groups);
    (dump_groups(&groups), result.stats)
}

fn assert_matrix_pinned(data: &Dataset, params: &MiningParams, label: &str) {
    let (reference, ref_stats) = mine_dump(data, params, Engine::Bitset, 1, 0);
    assert!(!reference.is_empty(), "{label}: trivial reference run");
    for engine in [Engine::Bitset, Engine::PointerList] {
        for threads in [1usize, 2, 4, 8] {
            for memo_capacity in [0usize, 65_536] {
                let (dump, mut stats) = mine_dump(data, params, engine, threads, memo_capacity);
                assert_eq!(
                    dump, reference,
                    "{label}: dump diverged at {engine:?} t={threads} memo={memo_capacity}"
                );
                // every parallel worker tallies the shared root once
                // (long-standing convention, pinned by parallel.rs);
                // normalize it away, then every deterministic counter
                // must match — the memo substitutes for back scans
                // one-for-one
                stats.nodes_visited -= threads as u64 - 1;
                assert_eq!(
                    stats, ref_stats,
                    "{label}: stats diverged at {engine:?} t={threads} memo={memo_capacity}"
                );
            }
        }
    }
}

#[test]
fn skewed_synth_matrix_is_byte_identical() {
    let data = skewed_synth();
    let (class, min_sup) = SKEWED_SYNTH_PARAMS;
    let params = MiningParams::new(class)
        .min_sup(min_sup)
        .lower_bounds(false);
    assert_matrix_pinned(&data, &params, "skewed_synth");
}

#[test]
fn skewed_synth_matrix_with_thresholds() {
    // confidence + chi thresholds exercise the tight-bound prunes under
    // the memo (inserts happen even for bound-killed survivors)
    let data = skewed_synth();
    let (class, min_sup) = SKEWED_SYNTH_PARAMS;
    let params = MiningParams::new(class)
        .min_sup(min_sup + 1)
        .min_conf(0.7)
        .min_chi(1.0)
        .lower_bounds(false);
    assert_matrix_pinned(&data, &params, "skewed_synth+thresholds");
}

#[test]
fn leukemia_analog_matrix_is_byte_identical() {
    let data = efficiency_dataset(PaperDataset::Leukemia, 0.05);
    let params = MiningParams::new(1).min_sup(6).lower_bounds(false);
    assert_matrix_pinned(&data, &params, "leukemia_analog");
}

//! Property-based tests of the miners against their oracles, with
//! proptest shrinking finding minimal counterexamples if anything ever
//! regresses.

use farmer_core::carpenter::carpenter;
use farmer_core::cobbler::{cobbler, SwitchPolicy};
use farmer_core::minelb::mine_lower_bounds;
use farmer_core::naive::{enumerate_rule_groups, mine_naive, naive_lower_bounds};
use farmer_core::topk::mine_top_k;
use farmer_core::{Engine, Farmer, MiningParams};
use farmer_dataset::{Dataset, DatasetBuilder};
use farmer_support::check::prelude::*;
use rowset::RowSet;

fn arb_dataset() -> impl Strategy<Value = Dataset> {
    (3usize..8, 3usize..10).prop_flat_map(|(n_rows, n_items)| {
        collection::vec(
            (
                collection::btree_set(0..n_items as u32, 1..n_items),
                0u32..2,
            ),
            n_rows,
        )
        .prop_map(|rows| {
            let mut b = DatasetBuilder::new(2);
            for (items, label) in rows {
                b.add_row(items, label);
            }
            b.build()
        })
    })
}

fn canon(groups: &[farmer_core::RuleGroup]) -> Vec<(Vec<u32>, Vec<usize>, usize, usize)> {
    let mut v: Vec<_> = groups
        .iter()
        .map(|g| {
            (
                g.upper.as_slice().to_vec(),
                g.support_set.to_vec(),
                g.sup,
                g.neg_sup,
            )
        })
        .collect();
    v.sort();
    v
}

check! {
    #![config(cases = 64)]

    /// FARMER (both engines) equals the brute-force oracle.
    #[test]
    fn farmer_equals_oracle(
        d in arb_dataset(),
        class in 0u32..2,
        min_sup in 1usize..4,
        conf_pct in select(vec![0usize, 50, 80]),
    ) {
        let params = MiningParams::new(class)
            .min_sup(min_sup)
            .min_conf(conf_pct as f64 / 100.0)
            .lower_bounds(false);
        let expected = canon(&mine_naive(&d, &params));
        for engine in [Engine::Bitset, Engine::PointerList] {
            let got = Farmer::new(params.clone()).with_engine(engine).mine(&d);
            prop_assert_eq!(canon(&got.groups), expected.clone(), "engine {:?}", engine);
        }
    }

    /// CARPENTER and COBBLER (all policies) find exactly the closed sets
    /// derivable from row subsets.
    #[test]
    fn closed_miners_equal_oracle(d in arb_dataset(), min_sup in 1usize..4) {
        let mut expected: Vec<(Vec<u32>, usize)> = {
            let mut out = std::collections::HashSet::new();
            for mask in 1u32..(1 << d.n_rows()) {
                let rows = RowSet::from_ids(
                    d.n_rows(),
                    (0..d.n_rows()).filter(|&r| mask & (1 << r) != 0),
                );
                let items = d.items_common_to(&rows);
                if items.is_empty() {
                    continue;
                }
                let support = d.rows_supporting(&items);
                if support.len() >= min_sup {
                    let closed = d.items_common_to(&support);
                    out.insert((closed.as_slice().to_vec(), support.len()));
                }
            }
            out.into_iter().collect()
        };
        expected.sort();

        let mut got_carp: Vec<(Vec<u32>, usize)> = carpenter(&d, min_sup)
            .patterns
            .into_iter()
            .map(|p| {
                let sup = p.support();
                (p.items.as_slice().to_vec(), sup)
            })
            .collect();
        got_carp.sort();
        prop_assert_eq!(&got_carp, &expected);

        for policy in [SwitchPolicy::Auto, SwitchPolicy::ColumnsOnly, SwitchPolicy::RowThreshold(4)] {
            let mut got: Vec<(Vec<u32>, usize)> = cobbler(&d, min_sup, policy)
                .patterns
                .into_iter()
                .map(|p| (p.items.as_slice().to_vec(), p.support))
                .collect();
            got.sort();
            prop_assert_eq!(&got, &expected, "policy {:?}", policy);
        }
    }

    /// MineLB equals the brute-force minimal generators for every rule
    /// group of the dataset.
    #[test]
    fn minelb_equals_oracle(d in arb_dataset()) {
        for g in enumerate_rule_groups(&d, 0) {
            if g.upper.len() > 10 {
                continue; // keep the naive side cheap
            }
            let mut got: Vec<Vec<u32>> = mine_lower_bounds(&g.upper, &g.rows, &d)
                .into_iter()
                .map(|l| l.as_slice().to_vec())
                .collect();
            got.sort();
            let mut want: Vec<Vec<u32>> = naive_lower_bounds(&g.upper, &g.rows, &d)
                .into_iter()
                .map(|l| l.as_slice().to_vec())
                .collect();
            want.sort();
            prop_assert_eq!(got, want, "group {:?}", g.upper);
        }
    }

    /// Top-k per-row results equal the oracle's ranking prefix.
    #[test]
    fn topk_equals_oracle(d in arb_dataset(), k in 1usize..4, min_sup in 1usize..3) {
        let got = mine_top_k(&d, 0, k, min_sup);
        // oracle: rank all covering groups per row
        let groups = enumerate_rule_groups(&d, 0);
        for r in 0..d.n_rows() {
            let mut covering: Vec<(f64, usize, std::cmp::Reverse<usize>)> = groups
                .iter()
                .filter(|g| g.sup_p >= min_sup && g.rows.contains(r))
                .map(|g| (g.confidence(), g.sup_p, std::cmp::Reverse(g.upper.len())))
                .collect();
            covering.sort_by(|a, b| b.partial_cmp(a).unwrap());
            covering.truncate(k);
            let got_keys: Vec<(f64, usize, std::cmp::Reverse<usize>)> = got.per_row[r]
                .iter()
                .map(|g| (g.confidence(), g.sup, std::cmp::Reverse(g.upper.len())))
                .collect();
            prop_assert_eq!(got_keys, covering, "row {}", r);
        }
    }

    /// Both conditional-table engines traverse identical enumeration
    /// trees — every counter matches, not just the mined groups — so the
    /// fused/in-place scan kernels cannot have skewed either engine.
    #[test]
    fn engines_traverse_identical_trees(
        d in arb_dataset(),
        class in 0u32..2,
        min_sup in 1usize..3,
    ) {
        let params = MiningParams::new(class).min_sup(min_sup).lower_bounds(false);
        let bit = Farmer::new(params.clone()).with_engine(Engine::Bitset).mine(&d);
        let ptr = Farmer::new(params).with_engine(Engine::PointerList).mine(&d);
        prop_assert_eq!(canon(&bit.groups), canon(&ptr.groups));
        prop_assert_eq!(bit.stats, ptr.stats);
    }

    /// Scanning into a dirty recycled buffer equals a fresh allocating
    /// scan, for both engines, at the root and every depth-1 child.
    #[test]
    fn inspect_into_agrees_with_inspect(d in arb_dataset(), class in 0u32..2) {
        use farmer_core::cond::{BitsetNode, CondNode, Inspect, PointerNode};
        use farmer_dataset::TransposedTable;
        let (tt, reordered, _order) = TransposedTable::for_mining(&d, class);
        let n = reordered.n_rows();
        let m = tt.n_target();
        let e_p = RowSet::from_ids(n, 0..m);
        let e_n = RowSet::from_ids(n, m..n);

        fn check_node<N: CondNode>(
            node: &N,
            e_p: &RowSet,
            e_n: &RowSet,
            dirty: &mut Inspect,
        ) -> Inspect {
            let fresh = node.inspect(e_p, e_n);
            node.inspect_into(e_p, e_n, dirty);
            prop_assert_eq!(&fresh.z, &dirty.z);
            prop_assert_eq!(&fresh.u_p, &dirty.u_p);
            prop_assert_eq!(&fresh.u_n, &dirty.u_n);
            prop_assert_eq!(fresh.max_ep_tuple, dirty.max_ep_tuple);
            fresh
        }

        let broot = BitsetNode::root(&reordered);
        let proot = PointerNode::root(&tt);
        let mut dirty = Inspect::new(n);
        // soil the shared buffer with a swapped-role scan before each use
        broot.inspect_into(&e_n, &e_p, &mut dirty);
        let ins = check_node(&broot, &e_p, &e_n, &mut dirty);
        for r in ins.u_p.iter().chain(ins.u_n.iter()) {
            let mut child = broot.clone_shell();
            broot.child_into(r as u32, &mut child);
            proot.inspect_into(&e_n, &e_p, &mut dirty);
            check_node(&child, &e_p, &e_n, &mut dirty);
        }
        let pins = check_node(&proot, &e_p, &e_n, &mut dirty);
        for r in pins.u_p.iter().chain(pins.u_n.iter()) {
            let mut child = proot.clone_shell();
            proot.child_into(r as u32, &mut child);
            broot.inspect_into(&e_n, &e_p, &mut dirty);
            check_node(&child, &e_p, &e_n, &mut dirty);
        }
    }

    /// Group invariants: closure, support decomposition, lower bounds.
    #[test]
    fn mined_group_invariants(d in arb_dataset(), min_sup in 1usize..3) {
        let result = Farmer::new(MiningParams::new(1).min_sup(min_sup)).mine(&d);
        for g in &result.groups {
            let support = d.rows_supporting(&g.upper);
            prop_assert_eq!(&support, &g.support_set);
            prop_assert_eq!(d.items_common_to(&support), g.upper.clone());
            let sup_p = support.iter().filter(|&r| d.label(r as u32) == 1).count();
            prop_assert_eq!(sup_p, g.sup);
            prop_assert_eq!(support.len() - sup_p, g.neg_sup);
            for low in &g.lower {
                prop_assert!(low.is_subset(&g.upper));
                prop_assert_eq!(d.rows_supporting(low), g.support_set.clone());
            }
        }
    }
}

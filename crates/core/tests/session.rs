//! Session-layer integration: budget/deadline/cancellation semantics,
//! the partial-result prefix guarantee, and observer/stats agreement.

use farmer_core::naive::NaiveMiner;
use farmer_core::topk::TopKMiner;
use farmer_core::{
    CountingObserver, Farmer, MineControl, Miner, MiningParams, NoOpObserver, StopCause,
};
use farmer_dataset::discretize::Discretizer;
use farmer_dataset::paper_example;
use farmer_dataset::synth::SynthConfig;
use std::time::{Duration, Instant};

/// A workload the full search finishes quickly but not trivially.
fn workload() -> farmer_dataset::Dataset {
    let m = SynthConfig {
        n_rows: 24,
        n_genes: 120,
        n_class1: 12,
        n_signature: 40,
        clusters_per_class: 2,
        cluster_spread: 1.8,
        cluster_noise: 0.35,
        ..Default::default()
    }
    .generate();
    Discretizer::EqualDepth { buckets: 6 }.discretize(&m)
}

/// A workload whose full search at `min_sup = 1` would run for a very
/// long time — only ever mined under a deadline or a stop flag.
fn endless_workload() -> farmer_dataset::Dataset {
    let m = SynthConfig {
        n_rows: 30,
        n_genes: 300,
        n_class1: 15,
        n_signature: 100,
        clusters_per_class: 2,
        cluster_spread: 1.6,
        cluster_noise: 0.4,
        ..Default::default()
    }
    .generate();
    Discretizer::EqualDepth { buckets: 6 }.discretize(&m)
}

fn canon(groups: &[farmer_core::RuleGroup]) -> Vec<(Vec<u32>, usize, usize)> {
    groups
        .iter()
        .map(|g| (g.upper.as_slice().to_vec(), g.sup, g.neg_sup))
        .collect()
}

#[test]
fn budgeted_run_returns_exact_prefix_of_full_run() {
    let d = workload();
    let params = MiningParams::new(1).min_sup(2).lower_bounds(false);
    let full = Farmer::new(params.clone()).mine(&d);
    assert!(full.len() > 5, "workload too easy: {}", full.len());
    let full_canon = canon(&full.groups);

    for frac in [2, 4, 8] {
        let budget = full.stats.nodes_visited / frac;
        let ctl = MineControl::new().with_node_budget(Some(budget));
        let part = Farmer::new(params.clone()).mine_session(&d, &ctl, &mut NoOpObserver);
        assert!(part.stats.budget_exhausted, "frac={frac}");
        assert_eq!(part.stats.stop, StopCause::Budget, "frac={frac}");
        assert_eq!(part.stats.nodes_visited, budget + 1, "frac={frac}");
        assert_eq!(
            canon(&part.groups),
            full_canon[..part.len()],
            "frac={frac}: truncated groups must be a prefix of the \
             sequential discovery order"
        );
    }
}

#[test]
fn control_budget_overrides_params_field_and_falls_back_to_it() {
    let d = workload();
    let mut params = MiningParams::new(1).min_sup(2).lower_bounds(false);
    params.node_budget = Some(u64::MAX / 2);

    // the control's tighter budget wins over the params field
    let ctl = MineControl::new().with_node_budget(Some(50));
    let r = Farmer::new(params.clone()).mine_session(&d, &ctl, &mut NoOpObserver);
    assert_eq!(r.stats.stop, StopCause::Budget);
    assert_eq!(r.stats.nodes_visited, 51);

    // with no control budget the params field still applies
    params.node_budget = Some(50);
    let r = Farmer::new(params).mine_session(&d, &MineControl::new(), &mut NoOpObserver);
    assert_eq!(r.stats.stop, StopCause::Budget);
    assert_eq!(r.stats.nodes_visited, 51);
}

#[test]
#[allow(deprecated)]
fn deprecated_params_budget_matches_control_budget() {
    let d = workload();
    let base = MiningParams::new(1).min_sup(2).lower_bounds(false);
    let via_params = Farmer::new(base.clone().node_budget(Some(200))).mine(&d);
    let ctl = MineControl::new().with_node_budget(Some(200));
    let via_ctl = Farmer::new(base).mine_session(&d, &ctl, &mut NoOpObserver);
    assert_eq!(via_params.stats, via_ctl.stats);
    assert_eq!(canon(&via_params.groups), canon(&via_ctl.groups));
}

#[test]
fn deadline_yields_valid_partial_result_quickly() {
    let d = endless_workload();
    let params = MiningParams::new(1).min_sup(1).lower_bounds(false);
    let ctl = MineControl::new().with_timeout(Duration::from_millis(50));
    let t0 = Instant::now();
    let r = Farmer::new(params).mine_session(&d, &ctl, &mut NoOpObserver);
    let elapsed = t0.elapsed();

    assert_eq!(r.stats.stop, StopCause::Deadline);
    assert!(r.stats.budget_exhausted);
    assert!(
        elapsed < Duration::from_millis(200),
        "deadline overshoot: {elapsed:?}"
    );
    assert!(r.stats.nodes_visited > 100, "{}", r.stats.nodes_visited);
    // every returned group is a real, threshold-meeting rule group
    for g in &r.groups {
        assert!(g.sup >= 1);
        assert_eq!(d.rows_supporting(&g.upper), g.support_set);
        assert_eq!(d.items_common_to(&g.support_set), g.upper);
    }
}

#[test]
fn stop_handle_halts_all_parallel_workers() {
    let d = endless_workload();
    let params = MiningParams::new(1).min_sup(1).lower_bounds(false);
    let ctl = MineControl::new();
    let handle = ctl.stop_handle();
    let stopper = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(30));
        handle.stop();
    });
    let t0 = Instant::now();
    let r = Farmer::new(params)
        .with_parallelism(4)
        .mine_session(&d, &ctl, &mut NoOpObserver);
    let elapsed = t0.elapsed();
    stopper.join().unwrap();

    assert_eq!(r.stats.stop, StopCause::Cancelled);
    assert!(r.stats.budget_exhausted);
    assert!(
        elapsed < Duration::from_secs(2),
        "workers failed to stop: {elapsed:?}"
    );
}

#[test]
fn observer_counts_equal_stats_sequential() {
    let paper = paper_example();
    let synth = workload();
    for (d, class) in [(&paper, 0u32), (&paper, 1), (&synth, 1)] {
        for (min_sup, min_conf, min_chi) in [(1, 0.0, 0.0), (2, 0.6, 0.0), (2, 0.0, 2.0)] {
            let params = MiningParams::new(class)
                .min_sup(min_sup)
                .min_conf(min_conf)
                .min_chi(min_chi);
            let mut obs = CountingObserver::default();
            let r = Farmer::new(params).mine_session(d, &MineControl::new(), &mut obs);
            let s = &r.stats;
            let tag = format!("class={class} min_sup={min_sup} min_conf={min_conf}");
            assert_eq!(obs.nodes, s.nodes_visited, "{tag}");
            assert_eq!(obs.pruned_duplicate, s.pruned_duplicate, "{tag}");
            assert_eq!(obs.pruned_loose, s.pruned_loose, "{tag}");
            assert_eq!(obs.pruned_tight_support, s.pruned_tight_support, "{tag}");
            assert_eq!(
                obs.pruned_tight_confidence, s.pruned_tight_confidence,
                "{tag}"
            );
            assert_eq!(obs.pruned_chi, s.pruned_chi, "{tag}");
            assert_eq!(
                obs.rejected_not_interesting, s.rejected_not_interesting,
                "{tag}"
            );
            assert_eq!(obs.emitted as usize, r.len(), "{tag}");
            assert_eq!(obs.workers, 0, "{tag}");
        }
    }
}

#[test]
fn observer_counts_equal_stats_parallel() {
    let paper = paper_example();
    let synth = workload();
    for (d, class) in [(&paper, 0u32), (&synth, 1)] {
        let params = MiningParams::new(class).min_sup(1).lower_bounds(false);
        let mut obs = CountingObserver::default();
        let r =
            Farmer::new(params)
                .with_parallelism(3)
                .mine_session(d, &MineControl::new(), &mut obs);
        let s = &r.stats;
        assert_eq!(obs.workers, 3);
        assert_eq!(obs.nodes, s.nodes_visited);
        assert_eq!(obs.pruned_duplicate, s.pruned_duplicate);
        assert_eq!(obs.pruned_loose, s.pruned_loose);
        assert_eq!(obs.pruned_tight_support, s.pruned_tight_support);
        assert_eq!(obs.pruned_tight_confidence, s.pruned_tight_confidence);
        assert_eq!(obs.pruned_chi, s.pruned_chi);
        assert_eq!(obs.rejected_not_interesting, s.rejected_not_interesting);
        assert_eq!(obs.emitted as usize, r.len());
    }
}

#[test]
fn parallel_observer_events_are_deterministic() {
    let d = workload();
    let params = MiningParams::new(1).min_sup(2).lower_bounds(false);
    let run = || {
        let mut obs = CountingObserver::default();
        Farmer::new(params.clone())
            .with_parallelism(4)
            .mine_session(&d, &MineControl::new(), &mut obs);
        obs
    };
    assert_eq!(run(), run());
}

#[test]
fn heartbeats_fire_on_cadence() {
    let d = workload();
    let params = MiningParams::new(1).min_sup(2).lower_bounds(false);
    let ctl = MineControl::new().with_heartbeat_every(64);
    let mut obs = CountingObserver::default();
    let r = Farmer::new(params).mine_session(&d, &ctl, &mut obs);
    assert_eq!(obs.heartbeats, r.stats.nodes_visited / 64);
    assert!(obs.heartbeats > 0, "workload too small for heartbeats");
}

#[test]
fn dyn_miner_dispatch_covers_core_miners() {
    let d = paper_example();
    let params = MiningParams::new(0).min_sup(1).lower_bounds(false);
    let miners: Vec<Box<dyn Miner>> = vec![
        Box::new(Farmer::new(params.clone())),
        Box::new(TopKMiner {
            class: 0,
            k: 2,
            min_sup: 1,
        }),
        Box::new(NaiveMiner {
            params: params.clone(),
        }),
    ];
    for m in &miners {
        let r = m.mine_unobserved(&d);
        assert!(!r.groups.is_empty(), "{}", m.name());
        assert!(r.stats.stop.is_complete(), "{}", m.name());

        let cancelled = MineControl::new();
        cancelled.cancel();
        let r = m.mine_with(&d, &cancelled, &mut NoOpObserver);
        assert_eq!(r.stats.stop, StopCause::Cancelled, "{}", m.name());
        assert!(r.stats.budget_exhausted, "{}", m.name());
    }
    assert_eq!(
        miners.iter().map(|m| m.name()).collect::<Vec<_>>(),
        ["farmer", "topk", "naive"]
    );
}

//! Session-layer integration: budget/deadline/cancellation semantics,
//! the partial-result prefix guarantee, and observer/stats agreement.

use farmer_core::naive::NaiveMiner;
use farmer_core::topk::TopKMiner;
use farmer_core::{
    CountingObserver, Farmer, Heartbeat, MineControl, MineObserver, MineStats, Miner, MiningParams,
    NoOpObserver, PruneReason, StopCause,
};
use farmer_dataset::discretize::Discretizer;
use farmer_dataset::paper_example;
use farmer_dataset::synth::SynthConfig;
use std::time::{Duration, Instant};

/// A workload the full search finishes quickly but not trivially.
fn workload() -> farmer_dataset::Dataset {
    let m = SynthConfig {
        n_rows: 24,
        n_genes: 120,
        n_class1: 12,
        n_signature: 40,
        clusters_per_class: 2,
        cluster_spread: 1.8,
        cluster_noise: 0.35,
        ..Default::default()
    }
    .generate();
    Discretizer::EqualDepth { buckets: 6 }.discretize(&m)
}

/// A workload whose full search at `min_sup = 1` would run for a very
/// long time — only ever mined under a deadline or a stop flag.
fn endless_workload() -> farmer_dataset::Dataset {
    let m = SynthConfig {
        n_rows: 30,
        n_genes: 300,
        n_class1: 15,
        n_signature: 100,
        clusters_per_class: 2,
        cluster_spread: 1.6,
        cluster_noise: 0.4,
        ..Default::default()
    }
    .generate();
    Discretizer::EqualDepth { buckets: 6 }.discretize(&m)
}

fn canon(groups: &[farmer_core::RuleGroup]) -> Vec<(Vec<u32>, usize, usize)> {
    groups
        .iter()
        .map(|g| (g.upper.as_slice().to_vec(), g.sup, g.neg_sup))
        .collect()
}

#[test]
fn budgeted_run_returns_exact_prefix_of_full_run() {
    let d = workload();
    let params = MiningParams::new(1).min_sup(2).lower_bounds(false);
    let full = Farmer::new(params.clone()).mine(&d);
    assert!(full.len() > 5, "workload too easy: {}", full.len());
    let full_canon = canon(&full.groups);

    for frac in [2, 4, 8] {
        let budget = full.stats.nodes_visited / frac;
        let ctl = MineControl::new().with_node_budget(Some(budget));
        let part = Farmer::new(params.clone()).mine_session(&d, &ctl, &mut NoOpObserver);
        assert!(part.stats.budget_exhausted, "frac={frac}");
        assert_eq!(part.stats.stop, StopCause::Budget, "frac={frac}");
        assert_eq!(part.stats.nodes_visited, budget + 1, "frac={frac}");
        assert_eq!(
            canon(&part.groups),
            full_canon[..part.len()],
            "frac={frac}: truncated groups must be a prefix of the \
             sequential discovery order"
        );
    }
}

#[test]
fn control_budget_overrides_params_field_and_falls_back_to_it() {
    let d = workload();
    let mut params = MiningParams::new(1).min_sup(2).lower_bounds(false);
    params.node_budget = Some(u64::MAX / 2);

    // the control's tighter budget wins over the params field
    let ctl = MineControl::new().with_node_budget(Some(50));
    let r = Farmer::new(params.clone()).mine_session(&d, &ctl, &mut NoOpObserver);
    assert_eq!(r.stats.stop, StopCause::Budget);
    assert_eq!(r.stats.nodes_visited, 51);

    // with no control budget the params field still applies
    params.node_budget = Some(50);
    let r = Farmer::new(params).mine_session(&d, &MineControl::new(), &mut NoOpObserver);
    assert_eq!(r.stats.stop, StopCause::Budget);
    assert_eq!(r.stats.nodes_visited, 51);
}

#[test]
#[allow(deprecated)]
fn deprecated_params_budget_matches_control_budget() {
    let d = workload();
    let base = MiningParams::new(1).min_sup(2).lower_bounds(false);
    let via_params = Farmer::new(base.clone().node_budget(Some(200))).mine(&d);
    let ctl = MineControl::new().with_node_budget(Some(200));
    let via_ctl = Farmer::new(base).mine_session(&d, &ctl, &mut NoOpObserver);
    assert_eq!(via_params.stats, via_ctl.stats);
    assert_eq!(canon(&via_params.groups), canon(&via_ctl.groups));
}

#[test]
fn deadline_yields_valid_partial_result_quickly() {
    let d = endless_workload();
    let params = MiningParams::new(1).min_sup(1).lower_bounds(false);
    let ctl = MineControl::new().with_timeout(Duration::from_millis(50));
    let t0 = Instant::now();
    let r = Farmer::new(params).mine_session(&d, &ctl, &mut NoOpObserver);
    let elapsed = t0.elapsed();

    assert_eq!(r.stats.stop, StopCause::Deadline);
    assert!(r.stats.budget_exhausted);
    assert!(
        elapsed < Duration::from_millis(200),
        "deadline overshoot: {elapsed:?}"
    );
    assert!(r.stats.nodes_visited > 100, "{}", r.stats.nodes_visited);
    // every returned group is a real, threshold-meeting rule group
    for g in &r.groups {
        assert!(g.sup >= 1);
        assert_eq!(d.rows_supporting(&g.upper), g.support_set);
        assert_eq!(d.items_common_to(&g.support_set), g.upper);
    }
}

#[test]
fn stop_handle_halts_all_parallel_workers() {
    let d = endless_workload();
    let params = MiningParams::new(1).min_sup(1).lower_bounds(false);
    let ctl = MineControl::new();
    let handle = ctl.stop_handle();
    let stopper = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(30));
        handle.stop();
    });
    let t0 = Instant::now();
    let r = Farmer::new(params)
        .with_parallelism(4)
        .mine_session(&d, &ctl, &mut NoOpObserver);
    let elapsed = t0.elapsed();
    stopper.join().unwrap();

    assert_eq!(r.stats.stop, StopCause::Cancelled);
    assert!(r.stats.budget_exhausted);
    assert!(
        elapsed < Duration::from_secs(2),
        "workers failed to stop: {elapsed:?}"
    );
}

#[test]
fn observer_counts_equal_stats_sequential() {
    let paper = paper_example();
    let synth = workload();
    for (d, class) in [(&paper, 0u32), (&paper, 1), (&synth, 1)] {
        for (min_sup, min_conf, min_chi) in [(1, 0.0, 0.0), (2, 0.6, 0.0), (2, 0.0, 2.0)] {
            let params = MiningParams::new(class)
                .min_sup(min_sup)
                .min_conf(min_conf)
                .min_chi(min_chi);
            let mut obs = CountingObserver::default();
            let r = Farmer::new(params).mine_session(d, &MineControl::new(), &mut obs);
            let s = &r.stats;
            let tag = format!("class={class} min_sup={min_sup} min_conf={min_conf}");
            assert_eq!(obs.nodes, s.nodes_visited, "{tag}");
            assert_eq!(obs.pruned_duplicate, s.pruned_duplicate, "{tag}");
            assert_eq!(obs.pruned_loose, s.pruned_loose, "{tag}");
            assert_eq!(obs.pruned_tight_support, s.pruned_tight_support, "{tag}");
            assert_eq!(
                obs.pruned_tight_confidence, s.pruned_tight_confidence,
                "{tag}"
            );
            assert_eq!(obs.pruned_chi, s.pruned_chi, "{tag}");
            assert_eq!(
                obs.rejected_not_interesting, s.rejected_not_interesting,
                "{tag}"
            );
            assert_eq!(obs.emitted as usize, r.len(), "{tag}");
            assert_eq!(obs.workers, 0, "{tag}");
        }
    }
}

#[test]
fn observer_counts_equal_stats_parallel() {
    let paper = paper_example();
    let synth = workload();
    for (d, class) in [(&paper, 0u32), (&synth, 1)] {
        let params = MiningParams::new(class).min_sup(1).lower_bounds(false);
        let mut obs = CountingObserver::default();
        let r =
            Farmer::new(params)
                .with_parallelism(3)
                .mine_session(d, &MineControl::new(), &mut obs);
        let s = &r.stats;
        assert_eq!(obs.workers, 3);
        assert_eq!(obs.nodes, s.nodes_visited);
        assert_eq!(obs.pruned_duplicate, s.pruned_duplicate);
        assert_eq!(obs.pruned_loose, s.pruned_loose);
        assert_eq!(obs.pruned_tight_support, s.pruned_tight_support);
        assert_eq!(obs.pruned_tight_confidence, s.pruned_tight_confidence);
        assert_eq!(obs.pruned_chi, s.pruned_chi);
        assert_eq!(obs.rejected_not_interesting, s.rejected_not_interesting);
        assert_eq!(obs.emitted as usize, r.len());
    }
}

#[test]
fn parallel_observer_events_are_deterministic() {
    let d = workload();
    let params = MiningParams::new(1).min_sup(2).lower_bounds(false);
    let run = || {
        let mut obs = CountingObserver::default();
        Farmer::new(params.clone())
            .with_parallelism(4)
            .mine_session(&d, &MineControl::new(), &mut obs);
        obs
    };
    assert_eq!(run(), run());
}

#[test]
fn heartbeats_fire_on_cadence() {
    let d = workload();
    let params = MiningParams::new(1).min_sup(2).lower_bounds(false);
    let ctl = MineControl::new().with_heartbeat_every(64);
    let mut obs = CountingObserver::default();
    let r = Farmer::new(params).mine_session(&d, &ctl, &mut obs);
    assert_eq!(obs.heartbeats, r.stats.nodes_visited / 64);
    assert!(obs.heartbeats > 0, "workload too small for heartbeats");
}

/// Parity lint: every [`PruneReason`] variant must round-trip through
/// the exhaustive list, carry unique display/stats names, and map onto
/// exactly one [`CountingObserver`] field and one [`MineStats`] field.
/// Adding a variant without extending all of those is a compile error
/// (the `match`es are exhaustive) — this test pins the runtime wiring
/// the type system can't see.
#[test]
fn prune_reason_parity() {
    let all = PruneReason::ALL;

    // index() is the position in ALL, so the list is exhaustive and
    // duplicate-free
    for (i, r) in all.iter().enumerate() {
        assert_eq!(r.index(), i, "{r:?}");
        assert_eq!(all[r.index()], *r);
    }

    // display names and stats-json keys are non-empty and unique
    type Accessor = fn(&PruneReason) -> &'static str;
    for accessor in [
        PruneReason::as_str as Accessor,
        PruneReason::stats_key as Accessor,
    ] {
        let mut names: Vec<&str> = all.iter().map(accessor).collect();
        assert!(names.iter().all(|n| !n.is_empty()));
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), all.len(), "names collide");
    }

    // each pruned(r) event lands in exactly the CountingObserver field
    // pruned_count(r) reads, and in no other
    for &r in &all {
        let mut obs = CountingObserver::default();
        obs.pruned(r);
        for &other in &all {
            let expect = u64::from(other == r);
            assert_eq!(obs.pruned_count(other), expect, "{r:?} vs {other:?}");
        }
    }

    // MineStats::pruned_count reads one distinct field per variant
    let stats = MineStats {
        pruned_duplicate: 1,
        pruned_loose: 2,
        pruned_tight_support: 3,
        pruned_tight_confidence: 4,
        pruned_chi: 5,
        rejected_not_interesting: 6,
        pruned_floor: 7,
        ..MineStats::default()
    };
    let counts: Vec<u64> = all.iter().map(|&r| stats.pruned_count(r)).collect();
    assert_eq!(counts, [1, 2, 3, 4, 5, 6, 7]);
}

/// `with_heartbeat_every(0)` means *disabled*, not "a heartbeat every
/// node" — the regression this pins: `nodes % 0` would panic, and a
/// cadence check written as `nodes % every == 0` with `every = 0` did.
#[test]
fn heartbeat_every_zero_means_disabled() {
    assert!(!MineControl::heartbeat_due(0, 0));
    assert!(!MineControl::heartbeat_due(0, 1));
    assert!(!MineControl::heartbeat_due(0, u64::MAX));
    assert!(MineControl::heartbeat_due(64, 64));
    assert!(MineControl::heartbeat_due(64, 128));
    assert!(!MineControl::heartbeat_due(64, 65));

    let d = workload();
    let params = MiningParams::new(1).min_sup(2).lower_bounds(false);
    let ctl = MineControl::new().with_heartbeat_every(0);
    let mut obs = CountingObserver::default();
    let r = Farmer::new(params.clone()).mine_session(&d, &ctl, &mut obs);
    assert!(r.stats.nodes_visited > 0);
    assert_eq!(obs.heartbeats, 0, "cadence 0 must fire no heartbeats");

    // the other miners share the cadence rule
    let mut obs = CountingObserver::default();
    NaiveMiner {
        params: MiningParams::new(0).min_sup(1),
    }
    .mine_with(&paper_example(), &ctl, &mut obs);
    assert_eq!(obs.heartbeats, 0);
    let mut obs = CountingObserver::default();
    TopKMiner {
        class: 1,
        k: 2,
        min_sup: 2,
    }
    .mine_with(&d, &ctl, &mut obs);
    assert_eq!(obs.heartbeats, 0);
}

/// Heartbeat snapshots advance monotonically: both the node counter and
/// the elapsed clock never run backwards between consecutive beats.
#[test]
fn heartbeat_elapsed_is_monotonic() {
    #[derive(Default)]
    struct Beats {
        nodes: Vec<u64>,
        elapsed: Vec<Duration>,
    }
    impl MineObserver for Beats {
        fn heartbeat(&mut self, hb: &Heartbeat) {
            self.nodes.push(hb.nodes_visited);
            self.elapsed.push(hb.elapsed);
        }
    }
    let d = workload();
    let params = MiningParams::new(1).min_sup(2).lower_bounds(false);
    let ctl = MineControl::new().with_heartbeat_every(32);
    let mut obs = Beats::default();
    Farmer::new(params).mine_session(&d, &ctl, &mut obs);
    assert!(obs.nodes.len() > 1, "workload too small: {:?}", obs.nodes);
    for w in obs.nodes.windows(2) {
        assert!(w[0] < w[1], "node counter regressed: {:?}", obs.nodes);
    }
    for w in obs.elapsed.windows(2) {
        assert!(w[0] <= w[1], "elapsed regressed: {:?}", obs.elapsed);
    }
}

#[test]
fn dyn_miner_dispatch_covers_core_miners() {
    let d = paper_example();
    let params = MiningParams::new(0).min_sup(1).lower_bounds(false);
    let miners: Vec<Box<dyn Miner>> = vec![
        Box::new(Farmer::new(params.clone())),
        Box::new(TopKMiner {
            class: 0,
            k: 2,
            min_sup: 1,
        }),
        Box::new(NaiveMiner {
            params: params.clone(),
        }),
    ];
    for m in &miners {
        let r = m.mine_unobserved(&d);
        assert!(!r.groups.is_empty(), "{}", m.name());
        assert!(r.stats.stop.is_complete(), "{}", m.name());

        let cancelled = MineControl::new();
        cancelled.cancel();
        let r = m.mine_with(&d, &cancelled, &mut NoOpObserver);
        assert_eq!(r.stats.stop, StopCause::Cancelled, "{}", m.name());
        assert!(r.stats.budget_exhausted, "{}", m.name());
    }
    assert_eq!(
        miners.iter().map(|m| m.name()).collect::<Vec<_>>(),
        ["farmer", "topk", "naive"]
    );
}

//! Traced mining end-to-end: a [`RingTracer`]-instrumented run must
//! return the same result as the untraced run, its merged histograms
//! must equal the sum of the per-lane histograms, and every worker must
//! leave its own span track.

use farmer_core::trace::{self, EventKind, RingTracer, TraceSink};
use farmer_core::{CountingObserver, Farmer, MineControl, Miner, MiningParams, NoOpObserver};
use farmer_dataset::discretize::Discretizer;
use farmer_dataset::synth::SynthConfig;

fn workload() -> farmer_dataset::Dataset {
    let m = SynthConfig {
        n_rows: 24,
        n_genes: 120,
        n_class1: 12,
        n_signature: 40,
        clusters_per_class: 2,
        cluster_spread: 1.8,
        cluster_noise: 0.35,
        ..Default::default()
    }
    .generate();
    Discretizer::EqualDepth { buckets: 6 }.discretize(&m)
}

fn canon(groups: &[farmer_core::RuleGroup]) -> Vec<(Vec<u32>, usize, usize)> {
    groups
        .iter()
        .map(|g| (g.upper.as_slice().to_vec(), g.sup, g.neg_sup))
        .collect()
}

#[test]
fn traced_run_is_identical_to_untraced_run() {
    let d = workload();
    let params = MiningParams::new(1).min_sup(2);
    for threads in [1, 3] {
        let farmer = Farmer::new(params.clone()).with_parallelism(threads);
        let plain = farmer.mine_session(&d, &MineControl::new(), &mut NoOpObserver);
        let tracer = trace::mining_tracer(threads);
        let traced =
            farmer.mine_session_traced(&d, &MineControl::new(), &mut NoOpObserver, &tracer);
        assert_eq!(canon(&plain.groups), canon(&traced.groups), "t={threads}");
        assert_eq!(plain.stats, traced.stats, "t={threads}");
    }
}

/// The acceptance identity: after the drain, each merged histogram is
/// exactly the sum of the per-worker (per-lane) histograms — count,
/// sum, and every bucket.
#[test]
fn merged_histograms_equal_per_lane_sums() {
    let d = workload();
    let threads = 3;
    let tracer = trace::mining_tracer(threads);
    let r = Farmer::new(MiningParams::new(1).min_sup(2))
        .with_parallelism(threads)
        .mine_session_traced(&d, &MineControl::new(), &mut NoOpObserver, &tracer);
    let report = tracer.drain();

    assert_eq!(report.n_lanes(), threads + 1);
    for (h, name) in report.hists.iter().zip(report.hist_names.iter()) {
        let lane_count: u64 = report
            .lane_hists
            .iter()
            .map(|l| l[hist_index(&report, name)].count())
            .sum();
        let lane_sum: u64 = report
            .lane_hists
            .iter()
            .map(|l| l[hist_index(&report, name)].sum())
            .sum();
        assert_eq!(h.count(), lane_count, "{name}: merged count != lane sum");
        assert_eq!(h.sum(), lane_sum, "{name}: merged sum != lane sum");
        for k in 0..h.buckets().len() {
            let lane_bucket: u64 = report
                .lane_hists
                .iter()
                .map(|l| l[hist_index(&report, name)].buckets()[k])
                .sum();
            assert_eq!(h.buckets()[k], lane_bucket, "{name} bucket {k}");
        }
        // bucket counts are consistent with the recorded total
        assert_eq!(h.buckets().iter().sum::<u64>(), h.count(), "{name}");
    }

    // one node-visit duration per enumeration node, except the shared
    // root: every worker accounts it in its tally (that keeps the
    // parallel node count comparable across thread counts) but only
    // subtree nodes are actually visited — and therefore timed
    let visits = report.hists[trace::HIST_NODE_VISIT.0 as usize].count();
    assert_eq!(visits + threads as u64, r.stats.nodes_visited);

    // every worker lane opened (and closed) its own enumerate span
    for w in 0..threads {
        let lane = trace::worker_lane(w);
        let begins = report
            .events
            .iter()
            .filter(|e| {
                e.lane == lane
                    && e.span == trace::SPAN_ENUMERATE.0
                    && matches!(e.kind, EventKind::Begin)
            })
            .count();
        let ends = report
            .events
            .iter()
            .filter(|e| {
                e.lane == lane
                    && e.span == trace::SPAN_ENUMERATE.0
                    && matches!(e.kind, EventKind::End)
            })
            .count();
        assert_eq!(begins, 1, "worker {w} enumerate begins");
        assert_eq!(ends, 1, "worker {w} enumerate ends");
    }

    // phase structure on the main lane: transpose, merge, lower_bounds
    for span in [
        trace::SPAN_TRANSPOSE,
        trace::SPAN_MERGE,
        trace::SPAN_LOWER_BOUNDS,
    ] {
        assert!(
            report.events.iter().any(|e| e.lane == trace::LANE_MAIN
                && e.span == span.0
                && matches!(e.kind, EventKind::Begin)),
            "main-lane span {} missing",
            trace::SPAN_NAMES[span.0 as usize]
        );
    }
    assert_eq!(report.dropped_total(), 0);

    // the drained event stream is globally timestamp-ordered
    for w in report.events.windows(2) {
        assert!(w[0].t_ns <= w[1].t_ns, "events out of order");
    }
}

fn hist_index(report: &farmer_core::TraceReport, name: &str) -> usize {
    report.hist_names.iter().position(|n| n == name).unwrap()
}

/// `Miner::mine_traced` (the dyn-dispatched CLI path) wraps every miner
/// in a session span — including the default implementation baselines
/// inherit — and agrees with `mine_with`.
#[test]
fn dyn_mine_traced_emits_session_span() {
    let d = workload();
    let params = MiningParams::new(1).min_sup(2);
    let miners: Vec<Box<dyn Miner>> = vec![
        Box::new(Farmer::new(params.clone())),
        Box::new(farmer_core::topk::TopKMiner {
            class: 1,
            k: 2,
            min_sup: 2,
        }),
    ];
    for m in &miners {
        let tracer = trace::mining_tracer(1);
        let mut obs = CountingObserver::default();
        let r = m.mine_traced(&d, &MineControl::new(), &mut obs, &tracer);
        let report = tracer.drain();
        let totals = report.span_totals();
        let session = &totals[trace::SPAN_SESSION.0 as usize];
        assert_eq!(session.count, 1, "{}", m.name());
        assert!(session.total_ns > 0, "{}", m.name());
        // the session span covers the whole run, so no narrower phase
        // can exceed it
        for (i, t) in totals.iter().enumerate() {
            assert!(
                t.total_ns <= session.total_ns,
                "{}: span {} exceeds session",
                m.name(),
                trace::SPAN_NAMES[i]
            );
        }
        assert_eq!(obs.nodes, r.stats.nodes_visited, "{}", m.name());
    }
}

/// Disabled-path contract: the `NoopTracer` reports `enabled() ==
/// false`, so instrumentation sites skip clock reads entirely; and a
/// `RingTracer` clamped to a tiny ring drops newest events but keeps
/// counting them.
#[test]
fn noop_is_disabled_and_overflow_is_counted() {
    assert!(!<farmer_core::NoopTracer as TraceSink>::enabled(
        &farmer_core::NoopTracer
    ));

    let tiny = RingTracer::new(trace::SPAN_NAMES, trace::HIST_NAMES, 2, 4);
    let d = workload();
    Farmer::new(MiningParams::new(1).min_sup(2)).mine_session_traced(
        &d,
        &MineControl::new(),
        &mut NoOpObserver,
        &tiny,
    );
    let report = tiny.drain();
    assert!(report.dropped_total() > 0, "4-slot ring cannot hold a run");
    assert!(report.events.len() <= 8, "rings must stay within capacity");
}

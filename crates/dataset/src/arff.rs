//! ARFF (Attribute-Relation File Format) support.
//!
//! Public microarray benchmarks very often ship as WEKA ARFF files:
//! numeric gene attributes plus one nominal class attribute. This module
//! reads that shape into an [`ExpressionMatrix`] (missing values `?`
//! become NaN — impute with
//! [`ExpressionMatrix::impute_gene_means`]) and writes matrices back
//! out.
//!
//! Supported subset: `@RELATION`, `@ATTRIBUTE <name> NUMERIC|REAL` for
//! genes, exactly one `@ATTRIBUTE <name> {v1,v2,…}` nominal attribute
//! (anywhere in the list) as the class, `%` comments, and dense
//! comma-separated `@DATA` rows.

use crate::io::IoError;
use crate::{ClassLabel, ExpressionMatrix};
use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

fn parse_err(line: usize, message: impl Into<String>) -> IoError {
    IoError::Parse {
        line,
        message: message.into(),
    }
}

/// Reads an ARFF file with numeric gene attributes and one nominal
/// class attribute.
pub fn load_arff(path: &Path) -> Result<ExpressionMatrix, IoError> {
    let reader = BufReader::new(File::open(path)?);

    enum Attr {
        Gene(String),
        Class(Vec<String>),
    }
    let mut attrs: Vec<Attr> = Vec::new();
    let mut in_data = false;
    let mut rows: Vec<(Vec<f64>, ClassLabel)> = Vec::new();
    let mut class_idx: Option<usize> = None;

    for (i, line) in reader.lines().enumerate() {
        let lineno = i + 1;
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('%') {
            continue;
        }
        if !in_data {
            let lower = line.to_ascii_lowercase();
            if lower.starts_with("@relation") {
                continue;
            }
            if lower.starts_with("@attribute") {
                let rest = line["@attribute".len()..].trim();
                // attribute name may be quoted
                let (name, ty) =
                    split_attr(rest).ok_or_else(|| parse_err(lineno, "malformed @ATTRIBUTE"))?;
                let ty_l = ty.trim().to_ascii_lowercase();
                if ty_l == "numeric" || ty_l == "real" || ty_l == "integer" {
                    attrs.push(Attr::Gene(name));
                } else if ty.trim().starts_with('{') {
                    if class_idx.is_some() {
                        return Err(parse_err(
                            lineno,
                            "multiple nominal attributes; expected exactly one class",
                        ));
                    }
                    class_idx = Some(attrs.len());
                    let values: Vec<String> = ty
                        .trim()
                        .trim_start_matches('{')
                        .trim_end_matches('}')
                        .split(',')
                        .map(|v| v.trim().trim_matches('\'').trim_matches('"').to_string())
                        .collect();
                    if values.is_empty() {
                        return Err(parse_err(lineno, "empty nominal value list"));
                    }
                    attrs.push(Attr::Class(values));
                } else {
                    return Err(parse_err(
                        lineno,
                        format!("unsupported attribute type '{ty}'"),
                    ));
                }
                continue;
            }
            if lower.starts_with("@data") {
                if class_idx.is_none() {
                    return Err(parse_err(lineno, "no nominal class attribute before @DATA"));
                }
                in_data = true;
                continue;
            }
            return Err(parse_err(
                lineno,
                format!("unexpected header line '{line}'"),
            ));
        }

        // data row
        let fields: Vec<&str> = line.split(',').map(str::trim).collect();
        if fields.len() != attrs.len() {
            return Err(parse_err(
                lineno,
                format!("expected {} fields, got {}", attrs.len(), fields.len()),
            ));
        }
        let mut values = Vec::with_capacity(attrs.len() - 1);
        let mut label: ClassLabel = 0;
        for (field, attr) in fields.iter().zip(&attrs) {
            match attr {
                Attr::Gene(_) => {
                    let v = if *field == "?" {
                        f64::NAN
                    } else {
                        field
                            .parse()
                            .map_err(|e| parse_err(lineno, format!("bad value '{field}': {e}")))?
                    };
                    values.push(v);
                }
                Attr::Class(classes) => {
                    let cleaned = field.trim_matches('\'').trim_matches('"');
                    label = classes
                        .iter()
                        .position(|c| c == cleaned)
                        .ok_or_else(|| parse_err(lineno, format!("unknown class '{field}'")))?
                        as ClassLabel;
                }
            }
        }
        rows.push((values, label));
    }

    if !in_data {
        return Err(parse_err(0, "missing @DATA section"));
    }
    let gene_names: Vec<String> = attrs
        .iter()
        .filter_map(|a| match a {
            Attr::Gene(n) => Some(n.clone()),
            Attr::Class(_) => None,
        })
        .collect();
    let n_classes = attrs
        .iter()
        .find_map(|a| match a {
            Attr::Class(v) => Some(v.len() as u32),
            Attr::Gene(_) => None,
        })
        .expect("class attribute checked above");
    let n_rows = rows.len();
    let n_genes = gene_names.len();
    let mut values = Vec::with_capacity(n_rows * n_genes);
    let mut labels = Vec::with_capacity(n_rows);
    for (v, l) in rows {
        values.extend(v);
        labels.push(l);
    }
    Ok(
        ExpressionMatrix::new(n_rows, n_genes, values, labels, n_classes)
            .with_gene_names(gene_names),
    )
}

/// Splits an `@ATTRIBUTE` body into (name, type), handling quoted names.
fn split_attr(rest: &str) -> Option<(String, &str)> {
    let rest = rest.trim();
    if let Some(stripped) = rest.strip_prefix('\'') {
        let end = stripped.find('\'')?;
        Some((stripped[..end].to_string(), &stripped[end + 1..]))
    } else if let Some(stripped) = rest.strip_prefix('"') {
        let end = stripped.find('"')?;
        Some((stripped[..end].to_string(), &stripped[end + 1..]))
    } else {
        let mut parts = rest.splitn(2, char::is_whitespace);
        let name = parts.next()?.to_string();
        Some((name, parts.next()?))
    }
}

/// Writes an expression matrix as ARFF (class attribute last, named
/// `class`, with values `c0..c<k>`; NaN becomes `?`).
pub fn save_arff(matrix: &ExpressionMatrix, relation: &str, path: &Path) -> Result<(), IoError> {
    let mut w = BufWriter::new(File::create(path)?);
    writeln!(w, "@RELATION {relation}")?;
    for g in 0..matrix.n_genes() {
        writeln!(w, "@ATTRIBUTE {} NUMERIC", matrix.gene_name(g))?;
    }
    let classes: Vec<String> = (0..matrix.n_classes()).map(|c| format!("c{c}")).collect();
    writeln!(w, "@ATTRIBUTE class {{{}}}", classes.join(","))?;
    writeln!(w, "@DATA")?;
    for r in 0..matrix.n_rows() {
        for &v in matrix.row(r) {
            if v.is_nan() {
                write!(w, "?,")?;
            } else {
                write!(w, "{v},")?;
            }
        }
        writeln!(w, "c{}", matrix.label(r))?;
    }
    w.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::SynthConfig;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("farmer-arff-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn roundtrip() {
        let m = SynthConfig {
            n_rows: 5,
            n_genes: 3,
            n_class1: 2,
            n_signature: 1,
            ..Default::default()
        }
        .generate();
        let p = tmp("rt.arff");
        save_arff(&m, "cohort", &p).unwrap();
        let m2 = load_arff(&p).unwrap();
        assert_eq!(m2.n_rows(), 5);
        assert_eq!(m2.n_genes(), 3);
        assert_eq!(m2.labels(), m.labels());
        for r in 0..5 {
            for g in 0..3 {
                assert!((m.value(r, g) - m2.value(r, g)).abs() < 1e-9);
            }
        }
        assert_eq!(m2.gene_name(1), "g1");
    }

    #[test]
    fn parses_weka_style_file() {
        let p = tmp("weka.arff");
        std::fs::write(
            &p,
            "% a comment\n\
             @RELATION leukemia\n\
             @ATTRIBUTE 'AFFX-1' REAL\n\
             @ATTRIBUTE gene_2 NUMERIC\n\
             @ATTRIBUTE class {ALL, AML}\n\
             @DATA\n\
             1.5, -2.25, ALL\n\
             ?, 0.5, AML\n",
        )
        .unwrap();
        let m = load_arff(&p).unwrap();
        assert_eq!(m.n_rows(), 2);
        assert_eq!(m.n_genes(), 2);
        assert_eq!(m.gene_name(0), "AFFX-1");
        assert_eq!(m.labels(), &[0, 1]);
        assert!(m.value(1, 0).is_nan());
        assert_eq!(m.value(0, 1), -2.25);
    }

    #[test]
    fn class_attribute_mid_list() {
        let p = tmp("mid.arff");
        std::fs::write(
            &p,
            "@RELATION x\n\
             @ATTRIBUTE g0 NUMERIC\n\
             @ATTRIBUTE class {a,b}\n\
             @ATTRIBUTE g1 NUMERIC\n\
             @DATA\n\
             1.0, b, 2.0\n",
        )
        .unwrap();
        let m = load_arff(&p).unwrap();
        assert_eq!(m.n_genes(), 2);
        assert_eq!(m.label(0), 1);
        assert_eq!(m.value(0, 1), 2.0);
    }

    #[test]
    fn rejects_malformed_files() {
        let cases = [
            (
                "noclass.arff",
                "@RELATION x\n@ATTRIBUTE g NUMERIC\n@DATA\n1.0\n",
            ),
            (
                "twoclass.arff",
                "@RELATION x\n@ATTRIBUTE c1 {a}\n@ATTRIBUTE c2 {b}\n@DATA\n",
            ),
            (
                "badtype.arff",
                "@RELATION x\n@ATTRIBUTE g STRING\n@ATTRIBUTE c {a}\n@DATA\n",
            ),
            (
                "ragged.arff",
                "@RELATION x\n@ATTRIBUTE g NUMERIC\n@ATTRIBUTE c {a}\n@DATA\n1.0\n",
            ),
            (
                "nodata.arff",
                "@RELATION x\n@ATTRIBUTE g NUMERIC\n@ATTRIBUTE c {a}\n",
            ),
            (
                "badclass.arff",
                "@RELATION x\n@ATTRIBUTE g NUMERIC\n@ATTRIBUTE c {a}\n@DATA\n1.0,zz\n",
            ),
        ];
        for (name, contents) in cases {
            let p = tmp(name);
            std::fs::write(&p, contents).unwrap();
            assert!(load_arff(&p).is_err(), "{name} should fail");
        }
    }
}

//! The discretized, class-labeled transactional dataset.

use rowset::{IdList, RowSet};
use std::collections::HashMap;
use std::fmt;

/// Identifier of an item (a discretized gene-expression interval, or any
/// other binary attribute). Dense, starting at 0.
pub type ItemId = u32;

/// Identifier of a row (a sample). Dense, starting at 0.
pub type RowId = u32;

/// Identifier of a class label. Dense, starting at 0. The paper's datasets
/// are all two-class; the mining API targets one class `C` and treats the
/// rest as `¬C`, so any number of classes is supported.
pub type ClassLabel = u32;

/// A dataset `D`: rows over a common item universe, each row carrying a
/// class label.
///
/// Rows hold their items as sorted [`IdList`]s. The inverted view —
/// which rows contain a given item, as a [`RowSet`] — is precomputed at
/// build time because every miner consumes it.
///
/// Use [`DatasetBuilder`] to construct one; [`Dataset`] itself is
/// immutable.
#[derive(Clone)]
pub struct Dataset {
    rows: Vec<IdList>,
    labels: Vec<ClassLabel>,
    n_classes: u32,
    /// `item_rows[i]` = R({i}): the rows containing item `i`.
    item_rows: Vec<RowSet>,
    /// Optional display names, parallel to item ids.
    item_names: Vec<String>,
    /// Optional display names for classes.
    class_names: Vec<String>,
}

impl Dataset {
    /// Number of rows (samples).
    #[inline]
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Number of distinct items in the universe.
    #[inline]
    pub fn n_items(&self) -> usize {
        self.item_rows.len()
    }

    /// Number of class labels.
    #[inline]
    pub fn n_classes(&self) -> usize {
        self.n_classes as usize
    }

    /// The items of row `r`, sorted ascending.
    #[inline]
    pub fn row(&self, r: RowId) -> &IdList {
        &self.rows[r as usize]
    }

    /// The class label of row `r`.
    #[inline]
    pub fn label(&self, r: RowId) -> ClassLabel {
        self.labels[r as usize]
    }

    /// All labels, indexed by row id.
    #[inline]
    pub fn labels(&self) -> &[ClassLabel] {
        &self.labels
    }

    /// `R({item})`: the set of rows containing `item`.
    #[inline]
    pub fn item_rows(&self, item: ItemId) -> &RowSet {
        &self.item_rows[item as usize]
    }

    /// All per-item row sets, indexed by item id: `item_row_sets()[i]` is
    /// `R({i})`. The bitset mining engine borrows this slice directly as
    /// its tuple store, so enumeration shares the dataset's columns
    /// instead of copying them.
    #[inline]
    pub fn item_row_sets(&self) -> &[RowSet] {
        &self.item_rows
    }

    /// Support of a single item: `|R({item})|`.
    #[inline]
    pub fn item_support(&self, item: ItemId) -> usize {
        self.item_rows[item as usize].len()
    }

    /// Number of rows labeled `c`.
    pub fn class_count(&self, c: ClassLabel) -> usize {
        self.labels.iter().filter(|&&l| l == c).count()
    }

    /// The set of rows labeled `c`.
    pub fn class_rows(&self, c: ClassLabel) -> RowSet {
        RowSet::from_ids(
            self.n_rows(),
            self.labels
                .iter()
                .enumerate()
                .filter(|(_, &l)| l == c)
                .map(|(r, _)| r),
        )
    }

    /// The display name of an item (synthesized as `i<k>` if none was given).
    pub fn item_name(&self, item: ItemId) -> &str {
        &self.item_names[item as usize]
    }

    /// The display name of a class (synthesized as `c<k>` if none was given).
    pub fn class_name(&self, c: ClassLabel) -> &str {
        &self.class_names[c as usize]
    }

    /// Looks up an item id by display name.
    pub fn item_by_name(&self, name: &str) -> Option<ItemId> {
        self.item_names
            .iter()
            .position(|n| n == name)
            .map(|i| i as ItemId)
    }

    /// `R(I')`: the largest set of rows that contain every item of `items`.
    ///
    /// Computed by intersecting per-item row sets; `O(|items| · n/64)`.
    /// `R(∅)` is the full row set by convention.
    pub fn rows_supporting(&self, items: &IdList) -> RowSet {
        let mut out = RowSet::full(self.n_rows());
        for i in items.iter() {
            out.intersect_with(&self.item_rows[i as usize]);
        }
        out
    }

    /// `I(R')`: the largest set of items common to every row of `rows`.
    ///
    /// `I(∅)` is the empty itemset by convention (not the item universe):
    /// this matches what every caller in the miners wants at the
    /// enumeration root.
    pub fn items_common_to(&self, rows: &RowSet) -> IdList {
        let mut it = rows.iter();
        let Some(first) = it.next() else {
            return IdList::new();
        };
        let mut acc = self.rows[first].clone();
        for r in it {
            acc = acc.intersection(&self.rows[r]);
            if acc.is_empty() {
                break;
            }
        }
        acc
    }

    /// Support of an itemset together with a class: `|R(items ∪ {c})|`.
    pub fn support_with_class(&self, items: &IdList, c: ClassLabel) -> usize {
        self.rows_supporting(items)
            .iter()
            .filter(|&r| self.labels[r] == c)
            .count()
    }

    /// Returns a copy of this dataset with the rows permuted so that rows
    /// labeled `target` come first (FARMER's `ORD` order), preserving the
    /// original relative order within each group (stable partition).
    ///
    /// Returns `(reordered dataset, old_id_of)` where `old_id_of[new]`
    /// gives the original row id, so mined results can be mapped back.
    pub fn reordered_for_class(&self, target: ClassLabel) -> (Dataset, Vec<RowId>) {
        let mut order: Vec<RowId> = (0..self.n_rows() as RowId).collect();
        order.sort_by_key(|&r| (self.labels[r as usize] != target, r));
        let d = self.permuted(&order);
        (d, order)
    }

    /// Returns a copy with rows permuted by `order` (`order[new] = old`).
    pub fn permuted(&self, order: &[RowId]) -> Dataset {
        assert_eq!(order.len(), self.n_rows());
        let rows: Vec<IdList> = order
            .iter()
            .map(|&o| self.rows[o as usize].clone())
            .collect();
        let labels: Vec<ClassLabel> = order.iter().map(|&o| self.labels[o as usize]).collect();
        let item_rows = build_item_rows(&rows, self.n_items());
        Dataset {
            rows,
            labels,
            n_classes: self.n_classes,
            item_rows,
            item_names: self.item_names.clone(),
            class_names: self.class_names.clone(),
        }
    }

    /// Returns a copy of this dataset with `new_rows` appended at the
    /// end, keeping every existing row id stable. This is the merge step
    /// of streaming ingest: the item universe and class set are fixed by
    /// the base dataset, so each new row must reference known item ids
    /// and labels — anything else is rejected with a message rather
    /// than a panic, because journal rows are untrusted input.
    ///
    /// The inverted per-item row sets are extended in place
    /// ([`RowSet::grow`] + inserts) instead of rebuilt, so appending a
    /// small delta costs `O(n_items · n/64 + |delta|)` for the clone,
    /// not a full re-scan of every base row.
    pub fn appended(&self, new_rows: &[(IdList, ClassLabel)]) -> Result<Dataset, String> {
        let n_total = self.n_rows() + new_rows.len();
        for (k, (items, label)) in new_rows.iter().enumerate() {
            if *label >= self.n_classes {
                return Err(format!(
                    "appended row {k}: label {label} out of range (dataset has {} classes)",
                    self.n_classes
                ));
            }
            if let Some(&m) = items.as_slice().last() {
                if m as usize >= self.n_items() {
                    return Err(format!(
                        "appended row {k}: item id {m} out of range (dataset has {} items)",
                        self.n_items()
                    ));
                }
            }
        }
        let mut rows = self.rows.clone();
        let mut labels = self.labels.clone();
        let mut item_rows = self.item_rows.clone();
        for s in &mut item_rows {
            s.grow(n_total);
        }
        for (items, label) in new_rows {
            let r = rows.len();
            for i in items.iter() {
                item_rows[i as usize].insert(r);
            }
            rows.push(items.clone());
            labels.push(*label);
        }
        Ok(Dataset {
            rows,
            labels,
            n_classes: self.n_classes,
            item_rows,
            item_names: self.item_names.clone(),
            class_names: self.class_names.clone(),
        })
    }

    /// Total number of (row, item) incidences; a size measure used in
    /// reporting.
    pub fn n_incidences(&self) -> usize {
        self.rows.iter().map(|r| r.len()).sum()
    }

    /// Average row length.
    pub fn avg_row_len(&self) -> f64 {
        if self.rows.is_empty() {
            0.0
        } else {
            self.n_incidences() as f64 / self.n_rows() as f64
        }
    }

    /// Splits into `(train, test)` by row index: the first `n_train` rows
    /// go to train, the rest to test. Use after shuffling (see
    /// [`crate::replicate::shuffled`]) for random splits.
    pub fn split_at(&self, n_train: usize) -> (Dataset, Dataset) {
        assert!(n_train <= self.n_rows());
        let train_order: Vec<RowId> = (0..n_train as RowId).collect();
        let test_order: Vec<RowId> = (n_train as RowId..self.n_rows() as RowId).collect();
        (self.subset(&train_order), self.subset(&test_order))
    }

    /// Dataset restricted to the given rows (in the given order).
    pub fn subset(&self, rows: &[RowId]) -> Dataset {
        let sel_rows: Vec<IdList> = rows
            .iter()
            .map(|&o| self.rows[o as usize].clone())
            .collect();
        let labels: Vec<ClassLabel> = rows.iter().map(|&o| self.labels[o as usize]).collect();
        let item_rows = build_item_rows(&sel_rows, self.n_items());
        Dataset {
            rows: sel_rows,
            labels,
            n_classes: self.n_classes,
            item_rows,
            item_names: self.item_names.clone(),
            class_names: self.class_names.clone(),
        }
    }
}

impl fmt::Debug for Dataset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Dataset")
            .field("n_rows", &self.n_rows())
            .field("n_items", &self.n_items())
            .field("n_classes", &self.n_classes())
            .finish()
    }
}

fn build_item_rows(rows: &[IdList], n_items: usize) -> Vec<RowSet> {
    let mut item_rows = vec![RowSet::empty(rows.len()); n_items];
    for (r, items) in rows.iter().enumerate() {
        for i in items.iter() {
            item_rows[i as usize].insert(r);
        }
    }
    item_rows
}

/// Incremental builder for [`Dataset`].
///
/// Items may be added either by pre-assigned dense id
/// ([`add_row`](Self::add_row)) or by display name with automatic
/// interning ([`add_row_named`](Self::add_row_named)); the two styles must
/// not be mixed in one builder.
pub struct DatasetBuilder {
    rows: Vec<IdList>,
    labels: Vec<ClassLabel>,
    n_classes: u32,
    names: Vec<String>,
    by_name: HashMap<String, ItemId>,
    max_item: Option<ItemId>,
    named_mode: Option<bool>,
    class_names: Vec<String>,
}

impl DatasetBuilder {
    /// Creates a builder for a dataset with `n_classes` class labels.
    pub fn new(n_classes: u32) -> Self {
        assert!(n_classes >= 1, "need at least one class");
        DatasetBuilder {
            rows: Vec::new(),
            labels: Vec::new(),
            n_classes,
            names: Vec::new(),
            by_name: HashMap::new(),
            max_item: None,
            named_mode: None,
            class_names: (0..n_classes).map(|c| format!("c{c}")).collect(),
        }
    }

    /// Overrides the display names of the classes.
    pub fn class_names<S: Into<String>>(
        &mut self,
        names: impl IntoIterator<Item = S>,
    ) -> &mut Self {
        let names: Vec<String> = names.into_iter().map(Into::into).collect();
        assert_eq!(names.len(), self.n_classes as usize);
        self.class_names = names;
        self
    }

    /// Adds a row given dense item ids and a label. Returns the new row id.
    pub fn add_row<I: IntoIterator<Item = ItemId>>(
        &mut self,
        items: I,
        label: ClassLabel,
    ) -> RowId {
        assert_ne!(
            self.named_mode,
            Some(true),
            "builder already used named items"
        );
        self.named_mode = Some(false);
        assert!(label < self.n_classes, "label {label} out of range");
        let list = IdList::from_iter(items);
        if let Some(&m) = list.as_slice().last() {
            self.max_item = Some(self.max_item.map_or(m, |c| c.max(m)));
        }
        self.rows.push(list);
        self.labels.push(label);
        (self.rows.len() - 1) as RowId
    }

    /// Adds a row given item display names (interned on first use) and a
    /// label. Returns the new row id.
    pub fn add_row_named(&mut self, items: &[&str], label: ClassLabel) -> RowId {
        assert_ne!(
            self.named_mode,
            Some(false),
            "builder already used dense item ids"
        );
        self.named_mode = Some(true);
        assert!(label < self.n_classes, "label {label} out of range");
        let ids: Vec<ItemId> = items
            .iter()
            .map(|&n| match self.by_name.get(n) {
                Some(&id) => id,
                None => {
                    let id = self.names.len() as ItemId;
                    self.names.push(n.to_string());
                    self.by_name.insert(n.to_string(), id);
                    id
                }
            })
            .collect();
        self.rows.push(IdList::from_iter(ids));
        self.labels.push(label);
        (self.rows.len() - 1) as RowId
    }

    /// Pre-registers an item name without adding a row (useful to fix the
    /// item-id order).
    pub fn intern_item(&mut self, name: &str) -> ItemId {
        assert_ne!(
            self.named_mode,
            Some(false),
            "builder already used dense item ids"
        );
        self.named_mode = Some(true);
        match self.by_name.get(name) {
            Some(&id) => id,
            None => {
                let id = self.names.len() as ItemId;
                self.names.push(name.to_string());
                self.by_name.insert(name.to_string(), id);
                id
            }
        }
    }

    /// Finalizes the dataset.
    pub fn build(self) -> Dataset {
        let n_items = if self.named_mode == Some(true) {
            self.names.len()
        } else {
            self.max_item.map_or(0, |m| m as usize + 1)
        };
        let item_names = if self.named_mode == Some(true) {
            self.names
        } else {
            (0..n_items).map(|i| format!("i{i}")).collect()
        };
        let item_rows = build_item_rows(&self.rows, n_items);
        Dataset {
            rows: self.rows,
            labels: self.labels,
            n_classes: self.n_classes,
            item_rows,
            item_names,
            class_names: self.class_names,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Dataset {
        // rows: {0,1,2}/c0, {1,2,3}/c0, {2,3,4}/c1
        let mut b = DatasetBuilder::new(2);
        b.add_row([0, 1, 2], 0);
        b.add_row([1, 2, 3], 0);
        b.add_row([2, 3, 4], 1);
        b.build()
    }

    #[test]
    fn basic_accessors() {
        let d = tiny();
        assert_eq!(d.n_rows(), 3);
        assert_eq!(d.n_items(), 5);
        assert_eq!(d.row(0).as_slice(), &[0, 1, 2]);
        assert_eq!(d.label(2), 1);
        assert_eq!(d.item_support(2), 3);
        assert_eq!(d.item_rows(0).to_vec(), vec![0]);
        assert_eq!(d.class_count(0), 2);
        assert_eq!(d.class_rows(1).to_vec(), vec![2]);
        assert_eq!(d.n_incidences(), 9);
        assert!((d.avg_row_len() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn r_and_i_operators() {
        let d = tiny();
        let items = IdList::from_iter([1, 2]);
        assert_eq!(d.rows_supporting(&items).to_vec(), vec![0, 1]);
        let rows = RowSet::from_ids(3, [0, 1]);
        assert_eq!(d.items_common_to(&rows).as_slice(), &[1, 2]);
        // conventions at the empty set
        assert_eq!(d.rows_supporting(&IdList::new()).len(), 3);
        assert!(d.items_common_to(&RowSet::empty(3)).is_empty());
    }

    #[test]
    fn galois_connection() {
        // I(R(I(X))) == I(X) for any row set X: closure is idempotent.
        let d = crate::paper_example();
        for rows in [[0usize, 1].as_slice(), &[1, 2], &[1, 2, 3], &[0, 4], &[2]] {
            let x = RowSet::from_ids(d.n_rows(), rows.iter().copied());
            let i_x = d.items_common_to(&x);
            let r_i_x = d.rows_supporting(&i_x);
            assert!(x.is_subset(&r_i_x));
            assert_eq!(d.items_common_to(&r_i_x), i_x);
        }
    }

    #[test]
    fn paper_example_r_i() {
        // Example 1 of the paper: R({a,e,h}) = {r2,r3,r4} (0-based: 1,2,3),
        // I({r2,r3}) = {a,e,h}.
        let d = crate::paper_example();
        let aeh = IdList::from_iter(["a", "e", "h"].iter().map(|n| d.item_by_name(n).unwrap()));
        assert_eq!(d.rows_supporting(&aeh).to_vec(), vec![1, 2, 3]);
        let r23 = RowSet::from_ids(5, [1, 2]);
        let common = d.items_common_to(&r23);
        let names: Vec<&str> = common.iter().map(|i| d.item_name(i)).collect();
        assert_eq!(names, vec!["a", "e", "h"]);
    }

    #[test]
    fn reorder_for_class() {
        let mut b = DatasetBuilder::new(2);
        b.add_row([0], 1);
        b.add_row([1], 0);
        b.add_row([2], 1);
        b.add_row([3], 0);
        let d = b.build();
        let (r, order) = d.reordered_for_class(0);
        assert_eq!(r.labels(), &[0, 0, 1, 1]);
        assert_eq!(order, vec![1, 3, 0, 2]);
        // row content follows the permutation
        assert_eq!(r.row(0).as_slice(), &[1]);
        assert_eq!(r.row(2).as_slice(), &[0]);
        // item_rows rebuilt consistently
        assert_eq!(r.item_rows(0).to_vec(), vec![2]);
    }

    #[test]
    fn subset_and_split() {
        let d = tiny();
        let s = d.subset(&[2, 0]);
        assert_eq!(s.n_rows(), 2);
        assert_eq!(s.row(0).as_slice(), &[2, 3, 4]);
        assert_eq!(s.label(1), 0);
        let (tr, te) = d.split_at(2);
        assert_eq!(tr.n_rows(), 2);
        assert_eq!(te.n_rows(), 1);
        assert_eq!(te.label(0), 1);
    }

    #[test]
    fn appended_extends_rows_and_inverted_sets() {
        let d = tiny();
        let delta = vec![
            (IdList::from_iter([0, 2, 4]), 1),
            (IdList::from_iter([1]), 0),
        ];
        let m = d.appended(&delta).unwrap();
        assert_eq!(m.n_rows(), 5);
        assert_eq!(m.n_items(), 5);
        // base rows keep their ids and content
        assert_eq!(m.row(0).as_slice(), d.row(0).as_slice());
        assert_eq!(m.label(2), 1);
        // appended rows land at the end
        assert_eq!(m.row(3).as_slice(), &[0, 2, 4]);
        assert_eq!(m.label(3), 1);
        assert_eq!(m.row(4).as_slice(), &[1]);
        // inverted sets grew and match a from-scratch rebuild
        assert_eq!(m.item_rows(2).to_vec(), vec![0, 1, 2, 3]);
        assert_eq!(m.item_rows(4).to_vec(), vec![2, 3]);
        let mut b = DatasetBuilder::new(2);
        for r in 0..m.n_rows() {
            b.add_row(m.row(r as RowId).iter(), m.label(r as RowId));
        }
        let rebuilt = b.build();
        for i in 0..m.n_items() {
            assert_eq!(
                m.item_rows(i as ItemId).to_vec(),
                rebuilt.item_rows(i as ItemId).to_vec(),
                "item {i}"
            );
        }
    }

    #[test]
    fn appended_rejects_unknown_items_and_labels() {
        let d = tiny();
        let bad_item = vec![(IdList::from_iter([5]), 0)];
        assert!(d.appended(&bad_item).unwrap_err().contains("item id 5"));
        let bad_label = vec![(IdList::from_iter([0]), 2)];
        assert!(d.appended(&bad_label).unwrap_err().contains("label 2"));
        // an empty delta is a plain copy
        let same = d.appended(&[]).unwrap();
        assert_eq!(same.n_rows(), d.n_rows());
    }

    #[test]
    fn support_with_class() {
        let d = tiny();
        let items = IdList::from_iter([2]);
        assert_eq!(d.support_with_class(&items, 0), 2);
        assert_eq!(d.support_with_class(&items, 1), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_label_panics() {
        DatasetBuilder::new(2).add_row([0], 2);
    }

    #[test]
    #[should_panic(expected = "already used")]
    fn mixed_builder_modes_panic() {
        let mut b = DatasetBuilder::new(1);
        b.add_row([0], 0);
        b.add_row_named(&["x"], 0);
    }
}

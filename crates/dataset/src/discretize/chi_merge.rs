//! ChiMerge discretization (Kerber, AAAI 1992).
//!
//! Bottom-up, χ²-driven: every distinct value starts as its own
//! interval; the adjacent pair whose class distributions are most alike
//! (lowest pairwise χ²) is merged repeatedly, until every remaining
//! adjacent pair differs significantly (χ² above the threshold) or a
//! maximum interval count is reached. Complements the entropy/MDL
//! method with the same statistic FARMER prunes on.

use crate::ClassLabel;

/// Computes ChiMerge cut points for one gene.
///
/// `threshold` is the χ² significance cutoff (4.61 ≈ 90% for two
/// classes / one degree of freedom); `max_intervals` caps the result
/// (`usize::MAX` for unbounded). Returns strictly ascending cuts; a
/// value `v` falls into the bin counting cuts `<= v`, consistent with
/// [`crate::ExpressionMatrix::to_dataset`].
pub fn chi_merge_cuts(
    values: &[f64],
    labels: &[ClassLabel],
    threshold: f64,
    max_intervals: usize,
) -> Vec<f64> {
    assert_eq!(values.len(), labels.len(), "values/labels length mismatch");
    assert!(max_intervals >= 1, "need at least one interval");
    if values.is_empty() {
        return Vec::new();
    }
    let n_classes = labels.iter().map(|&l| l as usize + 1).max().unwrap_or(1);

    // one interval per distinct value, with class counts
    let mut idx: Vec<usize> = (0..values.len()).collect();
    idx.sort_by(|&a, &b| {
        values[a]
            .partial_cmp(&values[b])
            .expect("NaN in expression values")
    });
    let mut intervals: Vec<(f64, Vec<usize>)> = Vec::new(); // (lowest value, class counts)
    for &i in &idx {
        match intervals.last_mut() {
            Some((v, counts)) if *v == values[i] => counts[labels[i] as usize] += 1,
            _ => {
                let mut counts = vec![0usize; n_classes];
                counts[labels[i] as usize] += 1;
                intervals.push((values[i], counts));
            }
        }
    }

    // merge while the most-similar adjacent pair is below threshold or
    // the interval budget is exceeded
    while intervals.len() > 1 {
        let (best, chi) = (0..intervals.len() - 1)
            .map(|k| (k, pair_chi(&intervals[k].1, &intervals[k + 1].1)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
            .expect("at least one adjacent pair");
        if chi >= threshold && intervals.len() <= max_intervals {
            break;
        }
        let (_, right_counts) = intervals.remove(best + 1);
        for (a, b) in intervals[best].1.iter_mut().zip(right_counts) {
            *a += b;
        }
    }

    intervals.iter().skip(1).map(|&(v, _)| v).collect()
}

/// Pairwise χ² between two intervals' class-count vectors (0 when a
/// class is absent from both — the standard ChiMerge convention of
/// skipping empty expected cells).
fn pair_chi(a: &[usize], b: &[usize]) -> f64 {
    let ra: usize = a.iter().sum();
    let rb: usize = b.iter().sum();
    let n = (ra + rb) as f64;
    if n == 0.0 {
        return 0.0;
    }
    let mut chi = 0.0;
    for j in 0..a.len() {
        let cj = (a[j] + b[j]) as f64;
        if cj == 0.0 {
            continue;
        }
        let ea = ra as f64 * cj / n;
        let eb = rb as f64 * cj / n;
        if ea > 0.0 {
            chi += (a[j] as f64 - ea).powi(2) / ea;
        }
        if eb > 0.0 {
            chi += (b[j] as f64 - eb).powi(2) / eb;
        }
    }
    chi
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn separable_classes_keep_one_cut() {
        let values: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let labels: Vec<ClassLabel> = (0..20).map(|i| u32::from(i >= 10)).collect();
        let cuts = chi_merge_cuts(&values, &labels, 4.61, usize::MAX);
        assert_eq!(cuts, vec![10.0]);
    }

    #[test]
    fn pure_column_merges_to_one_interval() {
        let values: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let labels = vec![0; 10];
        assert!(chi_merge_cuts(&values, &labels, 4.61, usize::MAX).is_empty());
    }

    #[test]
    fn alternating_labels_merge_away() {
        // adjacent intervals with alternating classes have low pairwise
        // chi^2 once merged pairwise, so everything collapses
        let values: Vec<f64> = (0..16).map(|i| i as f64).collect();
        let labels: Vec<ClassLabel> = (0..16).map(|i| (i % 2) as u32).collect();
        let cuts = chi_merge_cuts(&values, &labels, 4.61, usize::MAX);
        assert!(cuts.len() <= 2, "noise should mostly merge: {cuts:?}");
    }

    #[test]
    fn max_intervals_enforced() {
        // three clear segments but a budget of two intervals
        let values: Vec<f64> = (0..30).map(|i| i as f64).collect();
        let labels: Vec<ClassLabel> = (0..30)
            .map(|i| {
                if i < 10 {
                    0
                } else if i < 20 {
                    1
                } else {
                    0
                }
            })
            .collect();
        let unbounded = chi_merge_cuts(&values, &labels, 4.61, usize::MAX);
        assert_eq!(unbounded.len(), 2);
        let capped = chi_merge_cuts(&values, &labels, 4.61, 2);
        assert_eq!(capped.len(), 1);
    }

    #[test]
    fn ties_grouped_before_merging() {
        let values = vec![1.0, 1.0, 2.0, 2.0];
        let labels = vec![0, 0, 1, 1];
        let cuts = chi_merge_cuts(&values, &labels, 0.1, usize::MAX);
        assert_eq!(cuts, vec![2.0]);
    }

    #[test]
    fn pair_chi_zero_for_identical_distributions() {
        assert!(pair_chi(&[5, 5], &[5, 5]) < 1e-12);
        assert!(pair_chi(&[10, 0], &[0, 10]) > 4.61);
        assert_eq!(pair_chi(&[0, 0], &[0, 0]), 0.0);
    }

    #[test]
    fn empty_input() {
        assert!(chi_merge_cuts(&[], &[], 4.61, usize::MAX).is_empty());
    }
}

//! Fayyad–Irani entropy-minimized discretization with the MDL stopping
//! criterion.
//!
//! This is the "entropy-minimized partition" the paper applies before
//! building its classifiers (it cites the MLC++ implementation). The
//! method recursively bisects a gene's sorted value range at the boundary
//! minimizing class-label entropy, accepting a split only when the
//! information gain clears the MDLP threshold
//!
//! ```text
//! gain(S; T) > ( log2(N-1) + log2(3^k - 2) - k·Ent(S)
//!                + k1·Ent(S1) + k2·Ent(S2) ) / N
//! ```
//!
//! where `k`, `k1`, `k2` are the numbers of distinct class labels in the
//! full segment and the two halves.

use crate::ClassLabel;

/// Computes MDL-accepted cut points for one gene.
///
/// `values[i]` is the expression of the gene in sample `i`, whose label is
/// `labels[i]`. Returns strictly ascending cut points; an empty result
/// means the gene never passed the MDL criterion (the caller should drop
/// it — see [`crate::ExpressionMatrix::to_dataset`]).
pub fn entropy_mdl_cuts(values: &[f64], labels: &[ClassLabel]) -> Vec<f64> {
    assert_eq!(values.len(), labels.len(), "values/labels length mismatch");
    if values.is_empty() {
        return Vec::new();
    }
    let mut idx: Vec<usize> = (0..values.len()).collect();
    idx.sort_by(|&a, &b| {
        values[a]
            .partial_cmp(&values[b])
            .expect("NaN in expression values")
    });
    let sorted: Vec<(f64, ClassLabel)> = idx.iter().map(|&i| (values[i], labels[i])).collect();

    let mut cuts = Vec::new();
    recurse(&sorted, &mut cuts);
    cuts.sort_by(|a, b| a.partial_cmp(b).unwrap());
    cuts.dedup();
    cuts
}

/// Class-entropy of a segment, in bits.
fn entropy(seg: &[(f64, ClassLabel)]) -> f64 {
    let mut counts = std::collections::HashMap::new();
    for &(_, l) in seg {
        *counts.entry(l).or_insert(0usize) += 1;
    }
    let n = seg.len() as f64;
    counts
        .values()
        .map(|&c| {
            let p = c as f64 / n;
            -p * p.log2()
        })
        .sum()
}

fn n_classes(seg: &[(f64, ClassLabel)]) -> usize {
    let mut set: Vec<ClassLabel> = seg.iter().map(|&(_, l)| l).collect();
    set.sort_unstable();
    set.dedup();
    set.len()
}

fn recurse(seg: &[(f64, ClassLabel)], cuts: &mut Vec<f64>) {
    let n = seg.len();
    if n < 2 {
        return;
    }
    let ent_s = entropy(seg);
    if ent_s == 0.0 {
        return; // pure segment, nothing to gain
    }

    // candidate boundaries: between adjacent distinct values; Fayyad's
    // theorem says optimal cuts lie between points of different classes,
    // but scanning all value boundaries is simpler and still correct.
    let mut best: Option<(usize, f64)> = None; // (split index, weighted entropy)
    let mut i = 1;
    while i < n {
        if seg[i].0 > seg[i - 1].0 {
            let (l, r) = seg.split_at(i);
            let w = (l.len() as f64 * entropy(l) + r.len() as f64 * entropy(r)) / n as f64;
            if best.is_none_or(|(_, bw)| w < bw) {
                best = Some((i, w));
            }
        }
        i += 1;
    }
    let Some((split, w_ent)) = best else {
        return; // constant segment
    };

    let gain = ent_s - w_ent;
    let (l, r) = seg.split_at(split);
    let (k, k1, k2) = (
        n_classes(seg) as f64,
        n_classes(l) as f64,
        n_classes(r) as f64,
    );
    let delta = (3f64.powf(k) - 2.0).log2() - (k * ent_s - k1 * entropy(l) - k2 * entropy(r));
    let threshold = ((n as f64 - 1.0).log2() + delta) / n as f64;

    if gain > threshold {
        // cut point: midpoint convention is common, but our binning rule is
        // "bin = #cuts <= v", so using the right half's first value puts
        // that value in the upper bin, exactly splitting at `split`.
        cuts.push(r[0].0);
        recurse(l, cuts);
        recurse(r, cuts);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfectly_separable_gets_one_cut() {
        let values = vec![0.0, 0.1, 0.2, 5.0, 5.1, 5.2];
        let labels = vec![0, 0, 0, 1, 1, 1];
        let cuts = entropy_mdl_cuts(&values, &labels);
        assert_eq!(cuts, vec![5.0]);
    }

    #[test]
    fn pure_column_no_cut() {
        let values = vec![0.0, 1.0, 2.0, 3.0];
        let labels = vec![0, 0, 0, 0];
        assert!(entropy_mdl_cuts(&values, &labels).is_empty());
    }

    #[test]
    fn random_labels_rejected_by_mdl() {
        // alternating labels on an ascending ramp: no cut gains enough
        let values: Vec<f64> = (0..16).map(|i| i as f64).collect();
        let labels: Vec<ClassLabel> = (0..16).map(|i| (i % 2) as ClassLabel).collect();
        assert!(entropy_mdl_cuts(&values, &labels).is_empty());
    }

    #[test]
    fn three_segments_two_cuts() {
        // 0..20 -> class 0, 20..40 -> class 1, 40..60 -> class 0.
        // (With only 10 points per segment the MDL threshold correctly
        // rejects the split; 20 per segment clears it.)
        let values: Vec<f64> = (0..60).map(|i| i as f64).collect();
        let labels: Vec<ClassLabel> = (0..60)
            .map(|i| if (20..40).contains(&i) { 1 } else { 0 })
            .collect();
        let cuts = entropy_mdl_cuts(&values, &labels);
        assert_eq!(cuts, vec![20.0, 40.0]);
    }

    #[test]
    fn small_three_segments_rejected() {
        // 10 per segment: gain 0.251 < MDLP threshold 0.261 — must reject.
        let values: Vec<f64> = (0..30).map(|i| i as f64).collect();
        let labels: Vec<ClassLabel> = (0..30)
            .map(|i| if (10..20).contains(&i) { 1 } else { 0 })
            .collect();
        assert!(entropy_mdl_cuts(&values, &labels).is_empty());
    }

    #[test]
    fn ties_respected() {
        // all values identical: no valid boundary
        let values = vec![1.0; 8];
        let labels = vec![0, 1, 0, 1, 0, 1, 0, 1];
        assert!(entropy_mdl_cuts(&values, &labels).is_empty());
    }

    #[test]
    fn entropy_helper() {
        let seg: Vec<(f64, ClassLabel)> = vec![(0.0, 0), (0.0, 0), (0.0, 1), (0.0, 1)];
        assert!((entropy(&seg) - 1.0).abs() < 1e-12);
        let pure: Vec<(f64, ClassLabel)> = vec![(0.0, 0); 4];
        assert_eq!(entropy(&pure), 0.0);
    }

    #[test]
    fn multiclass() {
        let values = vec![0.0, 0.1, 5.0, 5.1, 10.0, 10.1, 0.05, 5.05, 10.05];
        let labels = vec![0, 0, 1, 1, 2, 2, 0, 1, 2];
        let cuts = entropy_mdl_cuts(&values, &labels);
        assert_eq!(cuts.len(), 2);
        assert!(cuts[0] > 0.1 && cuts[0] <= 5.0);
        assert!(cuts[1] > 5.1 && cuts[1] <= 10.0);
    }
}

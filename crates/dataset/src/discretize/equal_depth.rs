//! Equal-depth (equal-frequency) partitioning.

/// Computes cut points that split `values` into up to `buckets` bins of
/// (as near as possible) equal population.
///
/// Cut points are placed at values taken from the sorted column so that
/// bin `k` receives roughly `n/buckets` entries; duplicate candidate cuts
/// are collapsed, so columns with heavy ties may yield fewer than
/// `buckets` bins. Returned cuts are strictly ascending. A value `v`
/// belongs to the bin counting cuts `<= v`, consistent with
/// [`crate::ExpressionMatrix::to_dataset`].
pub fn equal_depth_cuts(values: &[f64], buckets: usize) -> Vec<f64> {
    assert!(buckets >= 1, "need at least one bucket");
    if values.is_empty() || buckets == 1 {
        return Vec::new();
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in expression values"));
    let n = sorted.len();
    let mut cuts = Vec::with_capacity(buckets - 1);
    for k in 1..buckets {
        // first index of bucket k
        let idx = (k * n).div_ceil(buckets).min(n - 1);
        let c = sorted[idx];
        // drop degenerate cuts: equal to a previous cut or below the minimum
        if c > sorted[0] && cuts.last().is_none_or(|&p| c > p) {
            cuts.push(c);
        }
    }
    cuts
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bin_of(cuts: &[f64], v: f64) -> usize {
        cuts.partition_point(|&c| c <= v)
    }

    #[test]
    fn splits_evenly() {
        let vals: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let cuts = equal_depth_cuts(&vals, 2);
        assert_eq!(cuts, vec![5.0]);
        let lo = vals.iter().filter(|&&v| bin_of(&cuts, v) == 0).count();
        assert_eq!(lo, 5);
    }

    #[test]
    fn ten_buckets_on_100_values() {
        let vals: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let cuts = equal_depth_cuts(&vals, 10);
        assert_eq!(cuts.len(), 9);
        let mut counts = vec![0usize; 10];
        for &v in &vals {
            counts[bin_of(&cuts, v)] += 1;
        }
        assert!(counts.iter().all(|&c| c == 10), "{counts:?}");
    }

    #[test]
    fn ties_collapse_cuts() {
        let vals = vec![1.0; 50];
        let cuts = equal_depth_cuts(&vals, 10);
        assert!(cuts.is_empty());
        // every value in bin 0
        assert!(vals.iter().all(|&v| bin_of(&cuts, v) == 0));
    }

    #[test]
    fn mixed_ties() {
        let mut vals = vec![0.0; 30];
        vals.extend(vec![1.0; 30]);
        vals.extend(vec![2.0; 40]);
        let cuts = equal_depth_cuts(&vals, 4);
        // only boundaries between distinct values can survive
        assert!(cuts.windows(2).all(|w| w[0] < w[1]));
        assert!(!cuts.is_empty());
        assert!(bin_of(&cuts, 0.0) < bin_of(&cuts, 2.0));
    }

    #[test]
    fn empty_and_single_bucket() {
        assert!(equal_depth_cuts(&[], 10).is_empty());
        assert!(equal_depth_cuts(&[1.0, 2.0], 1).is_empty());
    }

    #[test]
    fn more_buckets_than_values() {
        let cuts = equal_depth_cuts(&[3.0, 1.0, 2.0], 10);
        assert!(cuts.len() <= 2);
        assert!(cuts.windows(2).all(|w| w[0] < w[1]));
    }
}

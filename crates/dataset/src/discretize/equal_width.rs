//! Equal-width partitioning.

/// Computes cut points splitting the range `[min, max]` of `values` into
/// `buckets` intervals of equal width.
///
/// A constant column (or an empty one) yields no cuts.
pub fn equal_width_cuts(values: &[f64], buckets: usize) -> Vec<f64> {
    assert!(buckets >= 1, "need at least one bucket");
    if values.is_empty() || buckets == 1 {
        return Vec::new();
    }
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &v in values {
        assert!(!v.is_nan(), "NaN in expression values");
        lo = lo.min(v);
        hi = hi.max(v);
    }
    if lo == hi {
        return Vec::new();
    }
    let width = (hi - lo) / buckets as f64;
    (1..buckets).map(|k| lo + width * k as f64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_range() {
        let vals = vec![0.0, 10.0];
        assert_eq!(equal_width_cuts(&vals, 2), vec![5.0]);
        assert_eq!(equal_width_cuts(&vals, 5), vec![2.0, 4.0, 6.0, 8.0]);
    }

    #[test]
    fn constant_column() {
        assert!(equal_width_cuts(&[3.0, 3.0, 3.0], 4).is_empty());
    }

    #[test]
    fn empty_or_single_bucket() {
        assert!(equal_width_cuts(&[], 3).is_empty());
        assert!(equal_width_cuts(&[1.0, 2.0], 1).is_empty());
    }

    #[test]
    fn cuts_strictly_ascending() {
        let vals = vec![-2.5, 7.5, 1.0];
        let cuts = equal_width_cuts(&vals, 7);
        assert_eq!(cuts.len(), 6);
        assert!(cuts.windows(2).all(|w| w[0] < w[1]));
        assert!(cuts[0] > -2.5 && *cuts.last().unwrap() < 7.5);
    }
}

//! Discretization of real-valued expression matrices.
//!
//! The paper uses two methods: *equal-depth* partitioning with 10 buckets
//! for the efficiency experiments (§4.1), and the *entropy-minimized*
//! (Fayyad–Irani MDL) partition for the classification experiments
//! (§4.2). Equal-width is included as a common third option.
//!
//! Every method produces, per gene, an ascending list of cut points; the
//! value `v` falls into the bin numbered by how many cut points are
//! `<= v`. [`crate::ExpressionMatrix::to_dataset`] consumes these cut
//! lists.

mod chi_merge;
mod entropy;
mod equal_depth;
mod equal_width;

pub use chi_merge::chi_merge_cuts;
pub use entropy::entropy_mdl_cuts;
pub use equal_depth::equal_depth_cuts;
pub use equal_width::equal_width_cuts;

use crate::{Dataset, ExpressionMatrix};

/// A discretization strategy, selecting cut points per gene.
///
/// ```
/// use farmer_dataset::discretize::Discretizer;
/// use farmer_dataset::synth::SynthConfig;
/// let matrix = SynthConfig {
///     n_rows: 20, n_genes: 50, n_class1: 10, n_signature: 10,
///     ..Default::default()
/// }
/// .generate();
/// let data = Discretizer::EqualDepth { buckets: 5 }.discretize(&matrix);
/// // unsupervised equal-depth keeps every gene: one item per gene per row
/// assert_eq!(data.avg_row_len(), 50.0);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub enum Discretizer {
    /// Equal-depth (equal-frequency) bins; the paper's efficiency setup
    /// uses 10 buckets.
    EqualDepth {
        /// Number of buckets.
        buckets: usize,
    },
    /// Equal-width bins over each gene's value range.
    EqualWidth {
        /// Number of buckets.
        buckets: usize,
    },
    /// Fayyad–Irani entropy minimization with the MDL stopping criterion;
    /// genes where no cut passes the criterion are dropped entirely (they
    /// carry no class information).
    EntropyMdl,
    /// ChiMerge (Kerber 1992): bottom-up merging of adjacent intervals
    /// whose class distributions do not differ significantly under χ².
    /// Like `EntropyMdl`, genes that collapse to a single interval are
    /// dropped.
    ChiMerge {
        /// χ² significance cutoff (4.61 ≈ 90% for two classes).
        threshold: f64,
        /// Maximum surviving intervals per gene.
        max_intervals: usize,
    },
}

impl Discretizer {
    /// Computes per-gene cut points for `matrix`.
    pub fn cuts(&self, matrix: &ExpressionMatrix) -> Vec<Vec<f64>> {
        (0..matrix.n_genes())
            .map(|g| {
                let col = matrix.gene_column(g);
                match *self {
                    Discretizer::EqualDepth { buckets } => equal_depth_cuts(&col, buckets),
                    Discretizer::EqualWidth { buckets } => equal_width_cuts(&col, buckets),
                    Discretizer::EntropyMdl => entropy_mdl_cuts(&col, matrix.labels()),
                    Discretizer::ChiMerge {
                        threshold,
                        max_intervals,
                    } => chi_merge_cuts(&col, matrix.labels(), threshold, max_intervals),
                }
            })
            .collect()
    }

    /// Discretizes `matrix` into a transactional [`Dataset`].
    ///
    /// With [`Discretizer::EntropyMdl`], genes that yield no cut are
    /// dropped (the paper's classifiers work on exactly this reduced
    /// item universe); the other strategies keep every gene.
    pub fn discretize(&self, matrix: &ExpressionMatrix) -> Dataset {
        let cuts = self.cuts(matrix);
        matrix.to_dataset(&cuts, self.drops_unsplit())
    }

    /// Whether genes without any cut are dropped by this strategy (the
    /// supervised methods treat an unsplit gene as class-uninformative).
    pub fn drops_unsplit(&self) -> bool {
        matches!(self, Discretizer::EntropyMdl | Discretizer::ChiMerge { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn discretizer_dispatch() {
        let m = ExpressionMatrix::new(4, 1, vec![0.0, 1.0, 10.0, 11.0], vec![0, 0, 1, 1], 2);
        let d = Discretizer::EqualDepth { buckets: 2 }.discretize(&m);
        assert_eq!(d.n_items(), 2);
        let d = Discretizer::EqualWidth { buckets: 2 }.discretize(&m);
        assert_eq!(d.n_items(), 2);
        let d = Discretizer::EntropyMdl.discretize(&m);
        // perfectly class-separating gene: one cut, two items
        assert_eq!(d.n_items(), 2);
        assert_eq!(d.item_rows(0).to_vec(), vec![0, 1]);
        let d = Discretizer::ChiMerge {
            threshold: 2.0,
            max_intervals: 8,
        }
        .discretize(&m);
        assert_eq!(d.n_items(), 2);
    }

    #[test]
    fn drops_unsplit_flags() {
        assert!(Discretizer::EntropyMdl.drops_unsplit());
        assert!(Discretizer::ChiMerge {
            threshold: 4.61,
            max_intervals: 6
        }
        .drops_unsplit());
        assert!(!Discretizer::EqualDepth { buckets: 10 }.drops_unsplit());
        assert!(!Discretizer::EqualWidth { buckets: 10 }.drops_unsplit());
    }
}

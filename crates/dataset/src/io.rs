//! Plain-text persistence for expression matrices and transactional
//! datasets.
//!
//! Two formats:
//!
//! * **Matrix CSV** — header `label,<gene>,<gene>,…`, then one line per
//!   sample: `label,v0,v1,…`. This is the shape public microarray data
//!   usually ships in, so real datasets can be dropped into the harness.
//! * **Transactions** — one line per row: `<label>: item item item …`
//!   with whitespace-separated item names. This is the discretized form.

use crate::{ClassLabel, Dataset, DatasetBuilder, ExpressionMatrix};
use std::fmt;
use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// Errors arising when reading the text formats.
#[derive(Debug)]
pub enum IoError {
    /// Underlying filesystem error.
    Io(std::io::Error),
    /// A line did not match the expected format.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "io error: {e}"),
            IoError::Parse { line, message } => write!(f, "parse error at line {line}: {message}"),
        }
    }
}

impl std::error::Error for IoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IoError::Io(e) => Some(e),
            IoError::Parse { .. } => None,
        }
    }
}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

fn parse_err(line: usize, message: impl Into<String>) -> IoError {
    IoError::Parse {
        line,
        message: message.into(),
    }
}

/// Writes an expression matrix as CSV (`label,<genes…>` header).
pub fn save_matrix_csv(matrix: &ExpressionMatrix, path: &Path) -> Result<(), IoError> {
    let mut w = BufWriter::new(File::create(path)?);
    write!(w, "label")?;
    for g in 0..matrix.n_genes() {
        write!(w, ",{}", matrix.gene_name(g))?;
    }
    writeln!(w)?;
    for r in 0..matrix.n_rows() {
        write!(w, "{}", matrix.label(r))?;
        for &v in matrix.row(r) {
            write!(w, ",{v}")?;
        }
        writeln!(w)?;
    }
    w.flush()?;
    Ok(())
}

/// Reads an expression matrix from CSV written by [`save_matrix_csv`] (or
/// any CSV with a `label` first column and numeric gene columns).
pub fn load_matrix_csv(path: &Path) -> Result<ExpressionMatrix, IoError> {
    let mut lines = BufReader::new(File::open(path)?).lines();
    let header = lines.next().ok_or_else(|| parse_err(1, "empty file"))??;
    let mut cols = header.split(',');
    if cols.next() != Some("label") {
        return Err(parse_err(1, "first header column must be 'label'"));
    }
    let gene_names: Vec<String> = cols.map(str::to_string).collect();
    let n_genes = gene_names.len();
    if n_genes == 0 {
        return Err(parse_err(1, "no gene columns"));
    }

    let mut values = Vec::new();
    let mut labels: Vec<ClassLabel> = Vec::new();
    for (i, line) in lines.enumerate() {
        let lineno = i + 2;
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let mut fields = line.split(',');
        let label: ClassLabel = fields
            .next()
            .ok_or_else(|| parse_err(lineno, "missing label"))?
            .trim()
            .parse()
            .map_err(|e| parse_err(lineno, format!("bad label: {e}")))?;
        labels.push(label);
        let mut n = 0usize;
        for f in fields {
            let t = f.trim();
            // empty cells and the usual NA spellings become missing
            // values; impute with ExpressionMatrix::impute_gene_means
            let v: f64 =
                if t.is_empty() || t.eq_ignore_ascii_case("na") || t.eq_ignore_ascii_case("nan") {
                    f64::NAN
                } else {
                    t.parse()
                        .map_err(|e| parse_err(lineno, format!("bad value '{f}': {e}")))?
                };
            values.push(v);
            n += 1;
        }
        if n != n_genes {
            return Err(parse_err(
                lineno,
                format!("expected {n_genes} values, got {n}"),
            ));
        }
    }
    let n_rows = labels.len();
    let n_classes = labels.iter().copied().max().map_or(1, |m| m + 1);
    Ok(
        ExpressionMatrix::new(n_rows, n_genes, values, labels, n_classes)
            .with_gene_names(gene_names),
    )
}

/// Writes a transactional dataset: one `label: item item …` line per row.
pub fn save_transactions(dataset: &Dataset, path: &Path) -> Result<(), IoError> {
    let mut w = BufWriter::new(File::create(path)?);
    for r in 0..dataset.n_rows() {
        write!(w, "{}:", dataset.label(r as u32))?;
        for i in dataset.row(r as u32).iter() {
            write!(w, " {}", dataset.item_name(i))?;
        }
        writeln!(w)?;
    }
    w.flush()?;
    Ok(())
}

/// Reads a transactional dataset written by [`save_transactions`].
pub fn load_transactions(path: &Path) -> Result<Dataset, IoError> {
    let reader = BufReader::new(File::open(path)?);
    let mut rows: Vec<(ClassLabel, Vec<String>)> = Vec::new();
    let mut max_label = 0;
    for (i, line) in reader.lines().enumerate() {
        let lineno = i + 1;
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let (label_s, items_s) = line
            .split_once(':')
            .ok_or_else(|| parse_err(lineno, "missing ':' separator"))?;
        let label: ClassLabel = label_s
            .trim()
            .parse()
            .map_err(|e| parse_err(lineno, format!("bad label: {e}")))?;
        max_label = max_label.max(label);
        let items: Vec<String> = items_s.split_whitespace().map(str::to_string).collect();
        rows.push((label, items));
    }
    let mut b = DatasetBuilder::new(max_label + 1);
    for (label, items) in &rows {
        let refs: Vec<&str> = items.iter().map(String::as_str).collect();
        b.add_row_named(&refs, *label);
    }
    Ok(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper_example;
    use crate::synth::SynthConfig;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("farmer-dataset-io-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn matrix_roundtrip() {
        let m = SynthConfig {
            n_rows: 6,
            n_genes: 4,
            n_class1: 3,
            n_signature: 2,
            ..Default::default()
        }
        .generate();
        let p = tmp("m.csv");
        save_matrix_csv(&m, &p).unwrap();
        let m2 = load_matrix_csv(&p).unwrap();
        assert_eq!(m2.n_rows(), 6);
        assert_eq!(m2.n_genes(), 4);
        assert_eq!(m2.labels(), m.labels());
        for r in 0..6 {
            for g in 0..4 {
                assert!((m.value(r, g) - m2.value(r, g)).abs() < 1e-9);
            }
        }
        assert_eq!(m2.gene_name(2), "g2");
    }

    #[test]
    fn transactions_roundtrip() {
        let d = paper_example();
        let p = tmp("t.txt");
        save_transactions(&d, &p).unwrap();
        let d2 = load_transactions(&p).unwrap();
        assert_eq!(d2.n_rows(), d.n_rows());
        assert_eq!(d2.n_items(), d.n_items());
        assert_eq!(d2.labels(), d.labels());
        for r in 0..d.n_rows() as u32 {
            let names: Vec<&str> = d.row(r).iter().map(|i| d.item_name(i)).collect();
            let names2: Vec<&str> = d2.row(r).iter().map(|i| d2.item_name(i)).collect();
            let mut a = names.clone();
            let mut b = names2.clone();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn load_matrix_accepts_missing_values() {
        let p = tmp("na.csv");
        std::fs::write(&p, "label,g0,g1\n0,1.5,NA\n1,,2.5\n0,nan,3.5\n").unwrap();
        let m = load_matrix_csv(&p).unwrap();
        assert_eq!(m.n_missing(), 3);
        assert!(m.value(0, 1).is_nan());
        assert!(m.value(1, 0).is_nan());
        assert_eq!(m.value(2, 1), 3.5);
        let imp = m.impute_gene_means();
        assert!(!imp.has_missing());
        assert!((imp.value(0, 1) - 3.0).abs() < 1e-12); // mean of 2.5, 3.5
    }

    #[test]
    fn load_matrix_rejects_bad_header() {
        let p = tmp("bad.csv");
        std::fs::write(&p, "foo,g0\n0,1.0\n").unwrap();
        let err = load_matrix_csv(&p).unwrap_err();
        assert!(matches!(err, IoError::Parse { line: 1, .. }), "{err}");
    }

    #[test]
    fn load_matrix_rejects_ragged_rows() {
        let p = tmp("ragged.csv");
        std::fs::write(&p, "label,g0,g1\n0,1.0\n").unwrap();
        let err = load_matrix_csv(&p).unwrap_err();
        assert!(matches!(err, IoError::Parse { line: 2, .. }), "{err}");
    }

    #[test]
    fn load_transactions_rejects_missing_colon() {
        let p = tmp("badt.txt");
        std::fs::write(&p, "0 a b c\n").unwrap();
        assert!(load_transactions(&p).is_err());
    }

    #[test]
    fn error_display() {
        let e = parse_err(3, "boom");
        assert_eq!(e.to_string(), "parse error at line 3: boom");
    }
}

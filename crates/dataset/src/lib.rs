//! Microarray-style dataset substrate for rule-group mining.
//!
//! This crate provides everything the miners need below the algorithm
//! level:
//!
//! * [`Dataset`] — a discretized, class-labeled transactional table with
//!   *few rows and many items*, the shape FARMER is designed for;
//! * [`TransposedTable`] — the item-major view (tuples = items, entries =
//!   row ids) that FARMER's row enumeration scans;
//! * [`ExpressionMatrix`] — the raw real-valued gene-expression view, plus
//!   [`discretize`] strategies (equal-depth, equal-width, and the
//!   Fayyad–Irani entropy/MDL method the paper uses for its classifiers)
//!   that turn it into a [`Dataset`];
//! * [`synth`] — synthetic microarray generation mirroring the shapes of
//!   the paper's five clinical datasets (Table 1), used here in place of
//!   the proprietary originals;
//! * [`io`] — plain-text loaders/savers so real expression data can be
//!   dropped in;
//! * [`replicate`] — the ×k row-replication used by the paper's
//!   scalability experiment.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arff;
mod dataset;
pub mod discretize;
pub mod io;
mod matrix;
pub mod replicate;
pub mod select;
pub mod synth;
mod transposed;

pub use dataset::{ClassLabel, Dataset, DatasetBuilder, ItemId, RowId};
pub use matrix::ExpressionMatrix;
pub use transposed::{TransposedTable, Tuple};

/// The running example of the paper (Figure 1(a)): five rows over items
/// `a..=t`, rows 1–3 labeled class `C` (label 0 here), rows 4–5 labeled
/// `¬C` (label 1).
///
/// Item names are single letters; e.g. item `a` appears in rows 1,2,3,4.
/// Row ids here are zero-based (`r1` in the paper is row 0 here).
pub fn paper_example() -> Dataset {
    let mut b = DatasetBuilder::new(2);
    b.add_row_named(&["a", "b", "c", "l", "o", "s"], 0);
    b.add_row_named(&["a", "d", "e", "h", "p", "l", "r"], 0);
    b.add_row_named(&["a", "c", "e", "h", "o", "q", "t"], 0);
    b.add_row_named(&["a", "e", "f", "h", "p", "r"], 1);
    b.add_row_named(&["b", "d", "f", "g", "l", "q", "s", "t"], 1);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_shape() {
        let d = paper_example();
        assert_eq!(d.n_rows(), 5);
        // distinct items: a,b,c,d,e,f,g,h,l,o,p,q,r,s,t
        assert_eq!(d.n_items(), 15);
        assert_eq!(d.n_classes(), 2);
        assert_eq!(d.class_count(0), 3);
        assert_eq!(d.class_count(1), 2);
    }
}

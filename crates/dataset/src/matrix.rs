//! Real-valued gene-expression matrices, the raw input before
//! discretization.

use crate::{ClassLabel, Dataset, DatasetBuilder};

/// A dense, row-major matrix of expression values: `n_rows` samples by
/// `n_genes` genes, each sample carrying a class label.
///
/// This is the form microarray data arrives in; [`crate::discretize`]
/// turns it into the transactional [`Dataset`] the miners consume.
#[derive(Clone, Debug)]
pub struct ExpressionMatrix {
    values: Vec<f64>,
    n_rows: usize,
    n_genes: usize,
    labels: Vec<ClassLabel>,
    n_classes: u32,
    gene_names: Vec<String>,
}

impl ExpressionMatrix {
    /// Creates a matrix from row-major values.
    ///
    /// Panics if `values.len() != n_rows * n_genes` or
    /// `labels.len() != n_rows`.
    pub fn new(
        n_rows: usize,
        n_genes: usize,
        values: Vec<f64>,
        labels: Vec<ClassLabel>,
        n_classes: u32,
    ) -> Self {
        assert_eq!(values.len(), n_rows * n_genes, "value count mismatch");
        assert_eq!(labels.len(), n_rows, "label count mismatch");
        assert!(labels.iter().all(|&l| l < n_classes), "label out of range");
        ExpressionMatrix {
            values,
            n_rows,
            n_genes,
            labels,
            n_classes,
            gene_names: (0..n_genes).map(|g| format!("g{g}")).collect(),
        }
    }

    /// Overrides the gene display names.
    pub fn with_gene_names(mut self, names: Vec<String>) -> Self {
        assert_eq!(names.len(), self.n_genes);
        self.gene_names = names;
        self
    }

    /// Number of samples.
    #[inline]
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of genes (columns).
    #[inline]
    pub fn n_genes(&self) -> usize {
        self.n_genes
    }

    /// Number of classes.
    #[inline]
    pub fn n_classes(&self) -> u32 {
        self.n_classes
    }

    /// Expression value of `gene` in sample `row`.
    #[inline]
    pub fn value(&self, row: usize, gene: usize) -> f64 {
        self.values[row * self.n_genes + gene]
    }

    /// The values of one sample (length `n_genes`).
    #[inline]
    pub fn row(&self, row: usize) -> &[f64] {
        &self.values[row * self.n_genes..(row + 1) * self.n_genes]
    }

    /// All values of one gene across samples (allocates; column access).
    pub fn gene_column(&self, gene: usize) -> Vec<f64> {
        (0..self.n_rows).map(|r| self.value(r, gene)).collect()
    }

    /// Class label of a sample.
    #[inline]
    pub fn label(&self, row: usize) -> ClassLabel {
        self.labels[row]
    }

    /// All labels.
    #[inline]
    pub fn labels(&self) -> &[ClassLabel] {
        &self.labels
    }

    /// Gene display name.
    pub fn gene_name(&self, gene: usize) -> &str {
        &self.gene_names[gene]
    }

    /// `true` iff any value is missing (NaN). Microarray exports
    /// routinely contain missing probes; impute before discretizing or
    /// training (the discretizers and SVM reject NaN inputs).
    pub fn has_missing(&self) -> bool {
        self.values.iter().any(|v| v.is_nan())
    }

    /// Number of missing (NaN) values.
    pub fn n_missing(&self) -> usize {
        self.values.iter().filter(|v| v.is_nan()).count()
    }

    /// A copy with every missing value replaced by its gene's mean over
    /// the present values (0 when a gene is entirely missing) — the
    /// standard baseline imputation for expression data.
    pub fn impute_gene_means(&self) -> ExpressionMatrix {
        let mut means = vec![0.0f64; self.n_genes];
        let mut counts = vec![0usize; self.n_genes];
        for r in 0..self.n_rows {
            for (g, (m, c)) in means.iter_mut().zip(&mut counts).enumerate() {
                let v = self.value(r, g);
                if !v.is_nan() {
                    *m += v;
                    *c += 1;
                }
            }
        }
        for (m, &c) in means.iter_mut().zip(&counts) {
            if c > 0 {
                *m /= c as f64;
            }
        }
        let mut out = self.clone();
        for (i, v) in out.values.iter_mut().enumerate() {
            if v.is_nan() {
                *v = means[i % self.n_genes];
            }
        }
        out
    }

    /// A copy with `offset` added to every expression value — a uniform
    /// "batch effect", as between cohorts measured on different
    /// scanners. Useful for stress-testing classifier robustness (the
    /// original breast-cancer benchmark's train and test cohorts differ
    /// exactly this way).
    pub fn shifted(&self, offset: f64) -> ExpressionMatrix {
        let mut out = self.clone();
        for v in &mut out.values {
            *v += offset;
        }
        out
    }

    /// A copy with a *per-gene* offset drawn from `N(0, sd²)` added to
    /// every value of that gene — the realistic form of a batch effect
    /// (each probe responds differently on a different scanner or in a
    /// different lab). Deterministic in `seed`.
    pub fn shifted_per_gene(&self, sd: f64, seed: u64) -> ExpressionMatrix {
        use farmer_support::rng::{Rng, SeedableRng, StdRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let offsets: Vec<f64> = (0..self.n_genes)
            .map(|_| {
                // Box–Muller, as in the synthesizer
                let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                let u2: f64 = rng.gen();
                sd * (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
            })
            .collect();
        let mut out = self.clone();
        for r in 0..self.n_rows {
            for (g, off) in offsets.iter().enumerate() {
                out.values[r * self.n_genes + g] += off;
            }
        }
        out
    }

    /// The matrix restricted to the given samples (in the given order).
    pub fn subset(&self, rows: &[usize]) -> ExpressionMatrix {
        let mut values = Vec::with_capacity(rows.len() * self.n_genes);
        let mut labels = Vec::with_capacity(rows.len());
        for &r in rows {
            values.extend_from_slice(self.row(r));
            labels.push(self.labels[r]);
        }
        ExpressionMatrix {
            values,
            n_rows: rows.len(),
            n_genes: self.n_genes,
            labels,
            n_classes: self.n_classes,
            gene_names: self.gene_names.clone(),
        }
    }

    /// Splits into `(train, test)`: the first `n_train` samples versus
    /// the rest.
    pub fn split_at(&self, n_train: usize) -> (ExpressionMatrix, ExpressionMatrix) {
        assert!(n_train <= self.n_rows);
        let train: Vec<usize> = (0..n_train).collect();
        let test: Vec<usize> = (n_train..self.n_rows).collect();
        (self.subset(&train), self.subset(&test))
    }

    /// Class-stratified random split `(train, test)` with `n_train`
    /// training samples, deterministic in `seed`.
    pub fn stratified_split(
        &self,
        n_train: usize,
        seed: u64,
    ) -> (ExpressionMatrix, ExpressionMatrix) {
        use farmer_support::rng::{SeedableRng, SliceRandom};
        assert!(n_train <= self.n_rows);
        let mut rng = farmer_support::rng::StdRng::seed_from_u64(seed);
        let mut train: Vec<usize> = Vec::with_capacity(n_train);
        let mut test: Vec<usize> = Vec::new();
        let frac = n_train as f64 / self.n_rows as f64;
        let mut got = 0usize;
        for c in 0..self.n_classes {
            let mut rows: Vec<usize> = (0..self.n_rows).filter(|&r| self.labels[r] == c).collect();
            rows.shuffle(&mut rng);
            let want = ((rows.len() as f64 * frac).round() as usize).min(rows.len());
            got += want;
            train.extend(&rows[..want]);
            test.extend(&rows[want..]);
        }
        while got > n_train {
            test.push(train.pop().expect("train nonempty"));
            got -= 1;
        }
        while got < n_train {
            train.push(test.pop().expect("test nonempty"));
            got += 1;
        }
        (self.subset(&train), self.subset(&test))
    }

    /// Converts to a transactional [`Dataset`] given per-gene bin edges.
    ///
    /// `bins[g]` holds the ascending cut points of gene `g`; a value `v`
    /// falls in bin `k` where `k` is the number of cut points `<= v`, and
    /// produces item name `"<gene>@<k>"`. A gene with an empty cut list
    /// contributes a single constant item per sample, which carries no
    /// information; pass `drop_unsplit = true` to omit such genes entirely
    /// (what the entropy discretizer wants).
    pub fn to_dataset(&self, bins: &[Vec<f64>], drop_unsplit: bool) -> Dataset {
        assert_eq!(bins.len(), self.n_genes, "need one cut list per gene");
        let mut b = DatasetBuilder::new(self.n_classes);
        // intern items gene-major so ids are stable and contiguous per gene
        let mut item_ids: Vec<Vec<crate::ItemId>> = Vec::with_capacity(self.n_genes);
        for (g, cuts) in bins.iter().enumerate() {
            if drop_unsplit && cuts.is_empty() {
                item_ids.push(Vec::new());
                continue;
            }
            let n_bins = cuts.len() + 1;
            item_ids.push(
                (0..n_bins)
                    .map(|k| b.intern_item(&format!("{}@{k}", self.gene_names[g])))
                    .collect(),
            );
        }
        for r in 0..self.n_rows {
            let mut row_names: Vec<String> = Vec::with_capacity(self.n_genes);
            for (g, cuts) in bins.iter().enumerate() {
                if item_ids[g].is_empty() {
                    continue;
                }
                let v = self.value(r, g);
                let k = cuts.partition_point(|&c| c <= v);
                row_names.push(format!("{}@{k}", self.gene_names[g]));
            }
            let refs: Vec<&str> = row_names.iter().map(String::as_str).collect();
            b.add_row_named(&refs, self.labels[r]);
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m() -> ExpressionMatrix {
        ExpressionMatrix::new(
            3,
            2,
            vec![
                0.1, 5.0, //
                0.9, 1.0, //
                2.0, 3.0,
            ],
            vec![0, 0, 1],
            2,
        )
    }

    #[test]
    fn accessors() {
        let m = m();
        assert_eq!(m.n_rows(), 3);
        assert_eq!(m.n_genes(), 2);
        assert_eq!(m.value(1, 0), 0.9);
        assert_eq!(m.row(2), &[2.0, 3.0]);
        assert_eq!(m.gene_column(1), vec![5.0, 1.0, 3.0]);
        assert_eq!(m.label(2), 1);
        assert_eq!(m.gene_name(0), "g0");
    }

    #[test]
    fn to_dataset_bins_values() {
        let m = m();
        // gene 0: cut at 1.0 -> bins (-inf,1),[1,inf); gene 1: cut at 2.0,4.0
        let bins = vec![vec![1.0], vec![2.0, 4.0]];
        let d = m.to_dataset(&bins, false);
        assert_eq!(d.n_rows(), 3);
        // items: g0@0,g0@1,g1@0,g1@1,g1@2 = 5
        assert_eq!(d.n_items(), 5);
        let g0_0 = d.item_by_name("g0@0").unwrap();
        let g1_2 = d.item_by_name("g1@2").unwrap();
        assert!(d.item_rows(g0_0).contains(0)); // 0.1 < 1.0
        assert!(d.item_rows(g1_2).contains(0)); // 5.0 >= 4.0
        let g1_0 = d.item_by_name("g1@0").unwrap();
        assert!(d.item_rows(g1_0).contains(1)); // 1.0 < 2.0
    }

    #[test]
    fn to_dataset_drops_unsplit() {
        let m = m();
        let bins = vec![vec![], vec![2.0]];
        let d = m.to_dataset(&bins, true);
        assert_eq!(d.n_items(), 2); // only g1@0, g1@1
        assert!(d.item_by_name("g0@0").is_none());
        let d2 = m.to_dataset(&bins, false);
        assert_eq!(d2.n_items(), 3); // g0@0 constant item kept
    }

    #[test]
    fn boundary_goes_to_upper_bin() {
        // value exactly equal to a cut belongs to the upper bin
        let m = ExpressionMatrix::new(1, 1, vec![1.0], vec![0], 1);
        let d = m.to_dataset(&[vec![1.0]], false);
        let hi = d.item_by_name("g0@1").unwrap();
        assert!(d.item_rows(hi).contains(0));
    }

    #[test]
    fn missing_value_handling() {
        let m = ExpressionMatrix::new(
            3,
            2,
            vec![1.0, f64::NAN, 3.0, 4.0, f64::NAN, f64::NAN],
            vec![0, 0, 1],
            2,
        );
        assert!(m.has_missing());
        assert_eq!(m.n_missing(), 3);
        let imp = m.impute_gene_means();
        assert!(!imp.has_missing());
        // gene 0: mean of 1.0 and 3.0 is 2.0 -> row 2's NaN becomes 2.0
        assert!((imp.value(2, 0) - 2.0).abs() < 1e-12);
        // gene 1: only 4.0 present -> both NaNs become 4.0
        assert!((imp.value(1, 1) - 4.0).abs() < 1e-12);
        assert!((imp.value(2, 1) - 4.0).abs() < 1e-12);
        // present values untouched
        assert_eq!(imp.value(0, 0), 1.0);
    }

    #[test]
    fn entirely_missing_gene_imputes_to_zero() {
        let m = ExpressionMatrix::new(2, 1, vec![f64::NAN, f64::NAN], vec![0, 1], 2);
        let imp = m.impute_gene_means();
        assert_eq!(imp.value(0, 0), 0.0);
        assert_eq!(imp.value(1, 0), 0.0);
    }

    #[test]
    fn shifted_per_gene_is_constant_within_gene() {
        let m = m();
        let s = m.shifted_per_gene(1.0, 42);
        // same offset for every row of one gene
        let d0 = s.value(0, 0) - m.value(0, 0);
        let d1 = s.value(1, 0) - m.value(1, 0);
        assert!((d0 - d1).abs() < 1e-12);
        // different genes get different offsets (w.h.p.)
        let e0 = s.value(0, 1) - m.value(0, 1);
        assert!((d0 - e0).abs() > 1e-9);
        // deterministic in seed
        let s2 = m.shifted_per_gene(1.0, 42);
        assert_eq!(s.row(2), s2.row(2));
    }

    #[test]
    fn shifted_adds_offset() {
        let m = m();
        let s = m.shifted(2.0);
        for r in 0..3 {
            for g in 0..2 {
                assert!((s.value(r, g) - m.value(r, g) - 2.0).abs() < 1e-12);
            }
        }
        assert_eq!(s.labels(), m.labels());
    }

    #[test]
    fn subset_and_splits() {
        let m = m();
        let s = m.subset(&[2, 0]);
        assert_eq!(s.n_rows(), 2);
        assert_eq!(s.row(0), &[2.0, 3.0]);
        assert_eq!(s.label(1), 0);
        let (tr, te) = m.split_at(1);
        assert_eq!(tr.n_rows(), 1);
        assert_eq!(te.n_rows(), 2);
        assert_eq!(te.label(1), 1);
        let (tr, te) = m.stratified_split(2, 7);
        assert_eq!(tr.n_rows(), 2);
        assert_eq!(te.n_rows(), 1);
        // strata kept: two c0 and one c1 in total
        assert_eq!(
            tr.labels().iter().filter(|&&l| l == 0).count()
                + te.labels().iter().filter(|&&l| l == 0).count(),
            2
        );
    }

    #[test]
    #[should_panic(expected = "value count mismatch")]
    fn bad_dims_panic() {
        ExpressionMatrix::new(2, 2, vec![0.0; 3], vec![0, 0], 1);
    }
}

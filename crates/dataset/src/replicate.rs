//! Row replication and shuffling utilities.
//!
//! The paper's scalability note (§4.1) grows the row dimension by
//! replicating each dataset 2–10×; [`replicate_rows`] reproduces that
//! transformation. [`shuffled`] supports random train/test splits.

use crate::{Dataset, RowId};
use farmer_support::rng::{SeedableRng, SliceRandom, StdRng};

/// Returns a dataset whose rows are `dataset`'s rows repeated `factor`
/// times (replica `k` of row `r` appears at index `k * n_rows + r`).
///
/// Item universe and labels are preserved. `factor = 1` returns a plain
/// copy.
pub fn replicate_rows(dataset: &Dataset, factor: usize) -> Dataset {
    assert!(factor >= 1, "factor must be >= 1");
    let n = dataset.n_rows();
    let order: Vec<RowId> = (0..factor).flat_map(|_| 0..n as RowId).collect();
    dataset.subset(&order)
}

/// Returns a dataset with the rows randomly permuted (deterministic in
/// `seed`).
pub fn shuffled(dataset: &Dataset, seed: u64) -> Dataset {
    let mut order: Vec<RowId> = (0..dataset.n_rows() as RowId).collect();
    order.shuffle(&mut StdRng::seed_from_u64(seed));
    dataset.subset(&order)
}

/// Returns a class-stratified random split `(train, test)` with `n_train`
/// training rows, keeping each class's proportion as close as possible.
pub fn stratified_split(dataset: &Dataset, n_train: usize, seed: u64) -> (Dataset, Dataset) {
    assert!(n_train <= dataset.n_rows());
    let mut rng = StdRng::seed_from_u64(seed);
    let mut train: Vec<RowId> = Vec::with_capacity(n_train);
    let mut test: Vec<RowId> = Vec::new();
    let frac = n_train as f64 / dataset.n_rows() as f64;
    let mut want_total = 0usize;
    for c in 0..dataset.n_classes() as u32 {
        let mut rows: Vec<RowId> = (0..dataset.n_rows() as RowId)
            .filter(|&r| dataset.label(r) == c)
            .collect();
        rows.shuffle(&mut rng);
        let want = ((rows.len() as f64 * frac).round() as usize).min(rows.len());
        want_total += want;
        train.extend(&rows[..want]);
        test.extend(&rows[want..]);
    }
    // fix rounding drift so train has exactly n_train rows
    while want_total > n_train {
        test.push(train.pop().expect("train nonempty"));
        want_total -= 1;
    }
    while want_total < n_train {
        train.push(test.pop().expect("test nonempty"));
        want_total += 1;
    }
    (dataset.subset(&train), dataset.subset(&test))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper_example;

    #[test]
    fn replicate_preserves_structure() {
        let d = paper_example();
        let r3 = replicate_rows(&d, 3);
        assert_eq!(r3.n_rows(), 15);
        assert_eq!(r3.n_items(), d.n_items());
        for k in 0..3 {
            for r in 0..5 {
                assert_eq!(r3.row((k * 5 + r) as RowId), d.row(r as RowId));
                assert_eq!(r3.label((k * 5 + r) as RowId), d.label(r as RowId));
            }
        }
    }

    #[test]
    fn replicate_identity() {
        let d = paper_example();
        let r1 = replicate_rows(&d, 1);
        assert_eq!(r1.n_rows(), d.n_rows());
        assert_eq!(r1.row(2), d.row(2));
    }

    #[test]
    fn shuffle_is_permutation() {
        let d = paper_example();
        let s = shuffled(&d, 7);
        assert_eq!(s.n_rows(), d.n_rows());
        let mut counts0 = vec![0; d.n_items()];
        let mut counts1 = vec![0; d.n_items()];
        for r in 0..5 {
            for i in d.row(r).iter() {
                counts0[i as usize] += 1;
            }
            for i in s.row(r).iter() {
                counts1[i as usize] += 1;
            }
        }
        assert_eq!(counts0, counts1);
        assert_eq!(s.class_count(0), d.class_count(0));
    }

    #[test]
    fn stratified_split_sizes_and_strata() {
        let d = replicate_rows(&paper_example(), 4); // 20 rows: 12 c0, 8 c1
        let (tr, te) = stratified_split(&d, 10, 3);
        assert_eq!(tr.n_rows(), 10);
        assert_eq!(te.n_rows(), 10);
        assert_eq!(tr.class_count(0), 6);
        assert_eq!(tr.class_count(1), 4);
    }

    #[test]
    fn stratified_split_extremes() {
        let d = paper_example();
        let (tr, te) = stratified_split(&d, 5, 0);
        assert_eq!(tr.n_rows(), 5);
        assert_eq!(te.n_rows(), 0);
        let (tr, te) = stratified_split(&d, 0, 0);
        assert_eq!(tr.n_rows(), 0);
        assert_eq!(te.n_rows(), 5);
    }
}

//! Supervised gene ranking and selection.
//!
//! Paper-scale matrices carry tens of thousands of genes of which only a
//! few hundred are class-informative; ranking genes and keeping the top
//! slice is the standard preprocessing step (and the practical way to
//! run the miners at full column counts). Three classic filter metrics
//! are provided; all are computed per gene against the class labels.

use crate::{ClassLabel, ExpressionMatrix};

/// The per-gene relevance metric used by [`rank_genes`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GeneMetric {
    /// Best single-threshold information gain (bits) over all candidate
    /// cuts — the univariate core of the entropy discretizer.
    InfoGain,
    /// χ² of the best single-threshold split.
    ChiSquare,
    /// Between-class to within-class variance ratio (the F-statistic's
    /// core; two-class version of the signal-to-noise ranking common in
    /// microarray studies).
    VarianceRatio,
}

/// Scores one gene column against the labels under the given metric.
pub fn gene_score(values: &[f64], labels: &[ClassLabel], metric: GeneMetric) -> f64 {
    assert_eq!(values.len(), labels.len(), "values/labels length mismatch");
    if values.is_empty() {
        return 0.0;
    }
    match metric {
        GeneMetric::InfoGain => best_split(values, labels).0,
        GeneMetric::ChiSquare => best_split(values, labels).1,
        GeneMetric::VarianceRatio => variance_ratio(values, labels),
    }
}

/// Ranks all genes of `matrix` by descending score; ties by ascending
/// gene index. Returns `(gene, score)` pairs.
pub fn rank_genes(matrix: &ExpressionMatrix, metric: GeneMetric) -> Vec<(usize, f64)> {
    let mut scored: Vec<(usize, f64)> = (0..matrix.n_genes())
        .map(|g| {
            (
                g,
                gene_score(&matrix.gene_column(g), matrix.labels(), metric),
            )
        })
        .collect();
    scored.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .expect("finite scores")
            .then(a.0.cmp(&b.0))
    });
    scored
}

/// Keeps the `n` best genes of `matrix` under `metric` (in rank order).
pub fn select_top_genes(
    matrix: &ExpressionMatrix,
    metric: GeneMetric,
    n: usize,
) -> ExpressionMatrix {
    let genes: Vec<usize> = rank_genes(matrix, metric)
        .into_iter()
        .take(n)
        .map(|(g, _)| g)
        .collect();
    matrix.select_genes(&genes)
}

/// Best single split: scans all boundaries between adjacent distinct
/// values, returning `(max information gain, max χ²)` over them.
fn best_split(values: &[f64], labels: &[ClassLabel]) -> (f64, f64) {
    let n = values.len();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| {
        values[a]
            .partial_cmp(&values[b])
            .expect("NaN in expression values")
    });
    let m = labels.iter().filter(|&&l| l == 1).count();
    let h = |p: f64| -> f64 {
        if p <= 0.0 || p >= 1.0 {
            0.0
        } else {
            -p * p.log2() - (1.0 - p) * (1.0 - p).log2()
        }
    };
    let base = h(m as f64 / n as f64);
    let (mut best_gain, mut best_chi) = (0.0f64, 0.0f64);
    let mut left_pos = 0usize; // class-1 rows left of the cut
    for k in 1..n {
        if labels[idx[k - 1]] == 1 {
            left_pos += 1;
        }
        if values[idx[k]] <= values[idx[k - 1]] {
            continue; // not a boundary
        }
        let (nl, nr) = (k, n - k);
        let (pl, pr) = (left_pos, m - left_pos);
        let cond = nl as f64 / n as f64 * h(pl as f64 / nl as f64)
            + nr as f64 / n as f64 * h(pr as f64 / nr as f64);
        best_gain = best_gain.max(base - cond);
        // chi^2 of the 2x2 (left/right x class) table
        let det = (pl * (nr - pr)) as f64 - ((nl - pl) * pr) as f64;
        let denom = (nl * nr * m * (n - m)) as f64;
        if denom > 0.0 {
            best_chi = best_chi.max(n as f64 * det * det / denom);
        }
    }
    (best_gain, best_chi)
}

/// Two-class between/within variance ratio; 0 when a class is absent or
/// the gene is constant within classes and between them.
fn variance_ratio(values: &[f64], labels: &[ClassLabel]) -> f64 {
    let (mut s1, mut n1, mut s0, mut n0) = (0.0f64, 0usize, 0.0f64, 0usize);
    for (&v, &l) in values.iter().zip(labels) {
        if l == 1 {
            s1 += v;
            n1 += 1;
        } else {
            s0 += v;
            n0 += 1;
        }
    }
    if n1 == 0 || n0 == 0 {
        return 0.0;
    }
    let (m1, m0) = (s1 / n1 as f64, s0 / n0 as f64);
    let mut within = 0.0;
    for (&v, &l) in values.iter().zip(labels) {
        let m = if l == 1 { m1 } else { m0 };
        within += (v - m) * (v - m);
    }
    let between = n1 as f64 * n0 as f64 / values.len() as f64 * (m1 - m0) * (m1 - m0);
    if within <= 1e-12 {
        if between > 0.0 {
            f64::INFINITY
        } else {
            0.0
        }
    } else {
        between / (within / values.len() as f64)
    }
}

impl ExpressionMatrix {
    /// The matrix restricted to the given genes (in the given order),
    /// keeping their names.
    pub fn select_genes(&self, genes: &[usize]) -> ExpressionMatrix {
        let mut values = Vec::with_capacity(self.n_rows() * genes.len());
        for r in 0..self.n_rows() {
            for &g in genes {
                values.push(self.value(r, g));
            }
        }
        let names: Vec<String> = genes
            .iter()
            .map(|&g| self.gene_name(g).to_string())
            .collect();
        ExpressionMatrix::new(
            self.n_rows(),
            genes.len(),
            values,
            self.labels().to_vec(),
            self.n_classes(),
        )
        .with_gene_names(names)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::SynthConfig;

    fn matrix() -> ExpressionMatrix {
        SynthConfig {
            n_rows: 60,
            n_genes: 40,
            n_class1: 30,
            n_signature: 10,
            shift: 2.5,
            ..Default::default()
        }
        .generate()
    }

    #[test]
    fn signature_genes_outrank_noise() {
        let m = matrix();
        for metric in [
            GeneMetric::InfoGain,
            GeneMetric::ChiSquare,
            GeneMetric::VarianceRatio,
        ] {
            let ranked = rank_genes(&m, metric);
            let top10: Vec<usize> = ranked.iter().take(10).map(|&(g, _)| g).collect();
            let hits = top10.iter().filter(|&&g| g < 10).count();
            assert!(
                hits >= 8,
                "{metric:?}: signature recovery too weak: {top10:?}"
            );
            // scores descend
            assert!(ranked.windows(2).all(|w| w[0].1 >= w[1].1));
        }
    }

    #[test]
    fn select_top_genes_keeps_names_and_labels() {
        let m = matrix();
        let sel = select_top_genes(&m, GeneMetric::InfoGain, 5);
        assert_eq!(sel.n_genes(), 5);
        assert_eq!(sel.n_rows(), m.n_rows());
        assert_eq!(sel.labels(), m.labels());
        // names map back to originals
        for g in 0..5 {
            assert!(sel.gene_name(g).starts_with('g'));
        }
    }

    #[test]
    fn select_genes_reorders() {
        let m = matrix();
        let sel = m.select_genes(&[3, 0]);
        assert_eq!(sel.value(2, 0), m.value(2, 3));
        assert_eq!(sel.value(2, 1), m.value(2, 0));
        assert_eq!(sel.gene_name(0), "g3");
    }

    #[test]
    fn gene_score_edge_cases() {
        // constant gene: no boundary -> zero gain/chi
        assert_eq!(
            gene_score(&[1.0; 6], &[0, 0, 0, 1, 1, 1], GeneMetric::InfoGain),
            0.0
        );
        assert_eq!(
            gene_score(&[1.0; 6], &[0, 0, 0, 1, 1, 1], GeneMetric::ChiSquare),
            0.0
        );
        // single-class labels
        assert_eq!(
            gene_score(&[1.0, 2.0], &[0, 0], GeneMetric::VarianceRatio),
            0.0
        );
        // empty
        assert_eq!(gene_score(&[], &[], GeneMetric::InfoGain), 0.0);
        // perfectly separating gene: gain = full entropy, chi = n
        let gain = gene_score(&[0.0, 0.0, 5.0, 5.0], &[0, 0, 1, 1], GeneMetric::InfoGain);
        assert!((gain - 1.0).abs() < 1e-12);
        let chi = gene_score(&[0.0, 0.0, 5.0, 5.0], &[0, 0, 1, 1], GeneMetric::ChiSquare);
        assert!((chi - 4.0).abs() < 1e-12);
        // separated classes with zero within variance -> infinite ratio
        let vr = gene_score(
            &[0.0, 0.0, 5.0, 5.0],
            &[0, 0, 1, 1],
            GeneMetric::VarianceRatio,
        );
        assert!(vr.is_infinite());
    }
}

//! Synthetic microarray generation.
//!
//! The paper evaluates on five clinical datasets (Table 1) that are not
//! redistributable; this module generates synthetic stand-ins with the
//! same *shape*: few rows, thousands of columns, two classes, and a
//! minority of "signature" genes whose expression correlates with the
//! class label. Signature genes are grouped into correlated blocks via a
//! shared per-sample latent factor, which is what produces the long
//! closed patterns / large rule groups that make row enumeration win —
//! the property FARMER exploits.

use crate::{ClassLabel, ExpressionMatrix};
use farmer_support::rng::{Rng, SeedableRng, StdRng};

/// Configuration for the synthetic generator.
///
/// ```
/// use farmer_dataset::synth::SynthConfig;
/// let matrix = SynthConfig {
///     n_rows: 30,
///     n_genes: 200,
///     n_class1: 12,
///     ..Default::default()
/// }
/// .generate();
/// assert_eq!(matrix.n_rows(), 30);
/// assert_eq!(matrix.labels().iter().filter(|&&l| l == 1).count(), 12);
/// ```
#[derive(Clone, Debug)]
pub struct SynthConfig {
    /// Number of samples.
    pub n_rows: usize,
    /// Number of genes (columns).
    pub n_genes: usize,
    /// Number of samples labeled class 1 (the paper's "class 1" column of
    /// Table 1); the rest are class 0.
    pub n_class1: usize,
    /// Number of leading genes that carry a class signature.
    pub n_signature: usize,
    /// Mean shift applied to signature genes for class-1 samples
    /// (alternating sign per block, so both up- and down-regulation occur).
    pub shift: f64,
    /// Signature genes are grouped into blocks of this size sharing a
    /// per-sample latent factor (correlation within a block ≈
    /// `block_coupling`).
    pub block_size: usize,
    /// Weight of the shared block factor relative to independent noise,
    /// in `[0, 1)`.
    pub block_coupling: f64,
    /// Number of sample clusters ("disease subtypes") within each class.
    /// Rows of a cluster share per-gene signature offsets, which is what
    /// gives real microarray data its long closed patterns; 1 disables
    /// the structure.
    pub clusters_per_class: usize,
    /// Standard deviation of the cluster-specific offsets on signature
    /// genes. 0 disables cluster structure regardless of
    /// `clusters_per_class`.
    pub cluster_spread: f64,
    /// Scale of the independent (within-cluster) noise on signature
    /// genes; values well below `cluster_spread` make cluster members
    /// agree on discretized bins, lengthening shared patterns.
    pub cluster_noise: f64,
    /// Fraction of samples whose *label* contradicts their expression
    /// profile (applied as pairwise swaps so the class counts stay
    /// exact). Real prognosis labels — breast-cancer relapse above all —
    /// carry substantial noise of this kind.
    pub label_noise: f64,
    /// RNG seed, for reproducibility.
    pub seed: u64,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig {
            n_rows: 60,
            n_genes: 1000,
            n_class1: 30,
            n_signature: 100,
            shift: 1.6,
            block_size: 10,
            block_coupling: 0.6,
            clusters_per_class: 1,
            cluster_spread: 0.0,
            cluster_noise: 1.0,
            label_noise: 0.0,
            seed: 0xFA12_3ED5,
        }
    }
}

impl SynthConfig {
    /// Generates the expression matrix.
    ///
    /// Class-1 rows come first, then class-0 rows (callers that need a
    /// random interleaving can shuffle with
    /// [`crate::replicate::shuffled`]).
    pub fn generate(&self) -> ExpressionMatrix {
        assert!(self.n_class1 <= self.n_rows, "n_class1 exceeds n_rows");
        assert!(
            self.n_signature <= self.n_genes,
            "n_signature exceeds n_genes"
        );
        assert!(self.block_size >= 1, "block_size must be >= 1");
        assert!(
            (0.0..1.0).contains(&self.block_coupling),
            "block_coupling in [0,1)"
        );
        assert!(
            self.clusters_per_class >= 1,
            "need at least one cluster per class"
        );
        let mut rng = StdRng::seed_from_u64(self.seed);
        let labels: Vec<ClassLabel> = (0..self.n_rows)
            .map(|r| if r < self.n_class1 { 1 } else { 0 })
            .collect();

        // cluster assignment: contiguous blocks within each class
        let n_clusters = 2 * self.clusters_per_class;
        let cluster_of: Vec<usize> = (0..self.n_rows)
            .map(|r| {
                let (idx, size, base) = if r < self.n_class1 {
                    (r, self.n_class1.max(1), 0)
                } else {
                    (
                        r - self.n_class1,
                        (self.n_rows - self.n_class1).max(1),
                        self.clusters_per_class,
                    )
                };
                base + (idx * self.clusters_per_class) / size
            })
            .collect();
        // per-(signature gene, cluster) offsets — the subtype fingerprints
        let offsets: Vec<Vec<f64>> = (0..self.n_signature)
            .map(|_| {
                (0..n_clusters)
                    .map(|_| self.cluster_spread * gauss(&mut rng))
                    .collect()
            })
            .collect();

        let n_blocks = self.n_signature.div_ceil(self.block_size.max(1)).max(1);
        // per-sample latent factor per block
        let latents: Vec<Vec<f64>> = (0..n_blocks)
            .map(|_| (0..self.n_rows).map(|_| gauss(&mut rng)).collect())
            .collect();

        let mut values = Vec::with_capacity(self.n_rows * self.n_genes);
        let indep = (1.0 - self.block_coupling * self.block_coupling).sqrt() * self.cluster_noise;
        for r in 0..self.n_rows {
            let is_c1 = labels[r] == 1;
            // `g` indexes both signature tables and plain background
            // genes, so a range loop reads better than enumerate here
            #[allow(clippy::needless_range_loop)]
            for g in 0..self.n_genes {
                let mut v = 0.0;
                if g < self.n_signature {
                    let block = g / self.block_size;
                    // alternate up/down regulation per block
                    let dir = if block.is_multiple_of(2) { 1.0 } else { -1.0 };
                    if is_c1 {
                        v += dir * self.shift;
                    }
                    v += offsets[g][cluster_of[r]];
                    v += self.block_coupling * self.cluster_noise * latents[block][r]
                        + indep * gauss(&mut rng);
                } else {
                    v += gauss(&mut rng);
                }
                values.push(v);
            }
        }

        // label noise: swap the labels of k class-1/class-0 pairs, so the
        // expression profile and the recorded label disagree while class
        // counts stay exact
        let mut labels = labels;
        let k = ((self.label_noise * self.n_rows as f64 / 2.0).round() as usize)
            .min(self.n_class1)
            .min(self.n_rows - self.n_class1);
        if k > 0 {
            use farmer_support::rng::SliceRandom;
            let mut ones: Vec<usize> = (0..self.n_class1).collect();
            let mut zeros: Vec<usize> = (self.n_class1..self.n_rows).collect();
            ones.shuffle(&mut rng);
            zeros.shuffle(&mut rng);
            for i in 0..k {
                labels.swap(ones[i], zeros[i]);
            }
        }
        ExpressionMatrix::new(self.n_rows, self.n_genes, values, labels, 2)
    }
}

/// Standard normal via Box–Muller (avoids depending on `rand_distr`).
fn gauss<R: Rng>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen();
        if u1 <= f64::MIN_POSITIVE {
            continue;
        }
        let u2: f64 = rng.gen();
        return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    }
}

/// The five clinical datasets of Table 1, reproduced as synthetic analogs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PaperDataset {
    /// Breast cancer: 97 rows × 24481 cols, 46 class-1 (relapse).
    BreastCancer,
    /// Lung cancer: 181 rows × 12533 cols, 31 class-1 (MPM).
    LungCancer,
    /// Colon tumor: 62 rows × 2000 cols, 40 class-1 (negative).
    ColonTumor,
    /// Prostate cancer: 136 rows × 12600 cols, 52 class-1 (tumor).
    ProstateCancer,
    /// ALL-AML leukemia: 72 rows × 7129 cols, 47 class-1 (ALL).
    Leukemia,
}

impl PaperDataset {
    /// All five datasets, in the order of Table 1.
    pub fn all() -> [PaperDataset; 5] {
        [
            PaperDataset::BreastCancer,
            PaperDataset::LungCancer,
            PaperDataset::ColonTumor,
            PaperDataset::ProstateCancer,
            PaperDataset::Leukemia,
        ]
    }

    /// Short code used in the paper ("BC", "LC", …).
    pub fn code(&self) -> &'static str {
        match self {
            PaperDataset::BreastCancer => "BC",
            PaperDataset::LungCancer => "LC",
            PaperDataset::ColonTumor => "CT",
            PaperDataset::ProstateCancer => "PC",
            PaperDataset::Leukemia => "ALL",
        }
    }

    /// `(n_rows, n_cols, n_class1)` exactly as reported in Table 1.
    pub fn table1_shape(&self) -> (usize, usize, usize) {
        match self {
            PaperDataset::BreastCancer => (97, 24481, 46),
            PaperDataset::LungCancer => (181, 12533, 31),
            PaperDataset::ColonTumor => (62, 2000, 40),
            PaperDataset::ProstateCancer => (136, 12600, 52),
            PaperDataset::Leukemia => (72, 7129, 47),
        }
    }

    /// Class names `(class 1, class 0)` from Table 1.
    pub fn class_names(&self) -> (&'static str, &'static str) {
        match self {
            PaperDataset::BreastCancer => ("relapse", "non-relapse"),
            PaperDataset::LungCancer => ("MPM", "ADCA"),
            PaperDataset::ColonTumor => ("negative", "positive"),
            PaperDataset::ProstateCancer => ("tumor", "normal"),
            PaperDataset::Leukemia => ("ALL", "AML"),
        }
    }

    /// Train/test split sizes used by Table 2 of the paper.
    pub fn table2_split(&self) -> (usize, usize) {
        match self {
            PaperDataset::BreastCancer => (78, 19),
            PaperDataset::LungCancer => (32, 149),
            PaperDataset::ColonTumor => (47, 15),
            PaperDataset::ProstateCancer => (102, 34),
            PaperDataset::Leukemia => (38, 34),
        }
    }

    /// Synthetic configuration whose *row* dimensions match Table 1 and
    /// whose column count is `n_cols × col_scale` (clamped to ≥ 64).
    ///
    /// `col_scale = 1.0` gives the paper-scale dataset; the benchmark
    /// harness defaults to a smaller scale so the full comparison grid
    /// (including the deliberately slow column-enumeration baselines)
    /// finishes on a laptop.
    pub fn synth_config(&self, col_scale: f64) -> SynthConfig {
        let (rows, cols, c1) = self.table1_shape();
        let n_genes = ((cols as f64 * col_scale) as usize).max(64);
        // per-dataset class-shift strength, mirroring how differently
        // hard the five clinical benchmarks are (breast cancer is
        // notoriously weak-signal; lung cancer and leukemia are nearly
        // linearly separable)
        let (shift, label_noise) = match self {
            PaperDataset::BreastCancer => (0.35, 0.20),
            PaperDataset::LungCancer => (1.8, 0.02),
            PaperDataset::ColonTumor => (1.0, 0.08),
            PaperDataset::ProstateCancer => (0.8, 0.12),
            PaperDataset::Leukemia => (1.8, 0.03),
        };
        SynthConfig {
            n_rows: rows,
            n_genes,
            n_class1: c1,
            // a third of the genes carry subtype/class structure — real
            // microarray rows of one phenotype agree on a large fraction
            // of discretized bins, which is what produces the long closed
            // patterns the paper's datasets exhibit
            n_signature: (n_genes / 3).max(16),
            shift,
            label_noise,
            clusters_per_class: 3,
            cluster_spread: 1.8,
            cluster_noise: 0.35,
            // per-dataset seeds so the analogs differ
            seed: 0x5EED_0000 + *self as u64,
            ..SynthConfig::default()
        }
    }

    /// Standard deviation of the per-gene batch effect applied to the
    /// *test* cohort in the Table 2 experiment, emulating the train/test
    /// cohort mismatch of the real clinical benchmarks (the original BC
    /// split mixes cohorts so badly that SVM scored below chance in the
    /// paper).
    pub fn table2_batch_shift(&self) -> f64 {
        match self {
            PaperDataset::BreastCancer => 1.6,
            PaperDataset::LungCancer => 0.3,
            PaperDataset::ColonTumor => 0.8,
            PaperDataset::ProstateCancer => 0.9,
            PaperDataset::Leukemia => 0.3,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::discretize::Discretizer;

    #[test]
    fn generates_requested_shape() {
        let cfg = SynthConfig {
            n_rows: 20,
            n_genes: 50,
            n_class1: 8,
            n_signature: 10,
            ..SynthConfig::default()
        };
        let m = cfg.generate();
        assert_eq!(m.n_rows(), 20);
        assert_eq!(m.n_genes(), 50);
        assert_eq!(m.labels().iter().filter(|&&l| l == 1).count(), 8);
        assert_eq!(m.labels()[..8], vec![1; 8][..]);
    }

    #[test]
    fn deterministic_by_seed() {
        let cfg = SynthConfig {
            n_rows: 5,
            n_genes: 7,
            n_class1: 2,
            n_signature: 3,
            ..Default::default()
        };
        let a = cfg.generate();
        let b = cfg.generate();
        assert_eq!(a.row(3), b.row(3));
        let c = SynthConfig { seed: 1, ..cfg }.generate();
        assert_ne!(a.row(3), c.row(3));
    }

    #[test]
    fn signature_genes_separate_classes() {
        let cfg = SynthConfig {
            n_rows: 60,
            n_genes: 40,
            n_class1: 30,
            n_signature: 20,
            shift: 2.0,
            ..Default::default()
        };
        let m = cfg.generate();
        // gene 0 is in an "up" block: class-1 mean should exceed class-0 mean
        let mean = |cls: ClassLabel| {
            let rows: Vec<usize> = (0..60).filter(|&r| m.label(r) == cls).collect();
            rows.iter().map(|&r| m.value(r, 0)).sum::<f64>() / rows.len() as f64
        };
        assert!(mean(1) - mean(0) > 1.0, "expected clear separation");
        // a background gene should not separate
        let mean_bg = |cls: ClassLabel| {
            let rows: Vec<usize> = (0..60).filter(|&r| m.label(r) == cls).collect();
            rows.iter().map(|&r| m.value(r, 39)).sum::<f64>() / rows.len() as f64
        };
        assert!((mean_bg(1) - mean_bg(0)).abs() < 1.0);
    }

    #[test]
    fn entropy_discretization_finds_signature() {
        let cfg = SynthConfig {
            n_rows: 40,
            n_genes: 30,
            n_class1: 20,
            n_signature: 10,
            shift: 3.0,
            ..Default::default()
        };
        let m = cfg.generate();
        let d = Discretizer::EntropyMdl.discretize(&m);
        // strong signatures should survive MDL; pure noise mostly dropped
        assert!(d.n_items() >= 2, "signature genes must yield items");
        assert!(d.n_items() < 2 * 30, "not every gene should split");
    }

    #[test]
    fn paper_presets() {
        for p in PaperDataset::all() {
            let (rows, _cols, c1) = p.table1_shape();
            let cfg = p.synth_config(0.01);
            assert_eq!(cfg.n_rows, rows);
            assert_eq!(cfg.n_class1, c1);
            assert!(cfg.n_genes >= 64);
            assert!(!p.code().is_empty());
            let (tr, te) = p.table2_split();
            assert!(tr + te <= rows);
        }
    }
}

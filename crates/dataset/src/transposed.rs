//! The transposed table `TT`: the item-major view FARMER scans.

use crate::{ClassLabel, Dataset, ItemId, RowId};

/// One tuple of the transposed table: an item together with the sorted
/// list of row ids that contain it.
///
/// Row ids are sorted by the dataset's row order, which for mining is the
/// `ORD` order (target-class rows first) — see
/// [`Dataset::reordered_for_class`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Tuple {
    /// The item this tuple belongs to.
    pub item: ItemId,
    /// Sorted row ids containing the item.
    pub rows: Vec<RowId>,
}

/// The transposed table `TT` of a dataset (Figure 1(b) of the paper):
/// one [`Tuple`] per item, listing the rows that contain it.
///
/// FARMER's conditional transposed tables `TT|X` are *not* materialized as
/// copies of this structure; the miner keeps per-tuple cursor positions
/// into these row lists (the "conditional pointer lists" of §3.3). This
/// type therefore only needs to be built once per mining run.
#[derive(Clone, Debug)]
pub struct TransposedTable {
    tuples: Vec<Tuple>,
    n_rows: usize,
    /// Number of leading rows whose label equals the mining target class
    /// (`R(C)`), when built via [`for_mining`](Self::for_mining). Rows
    /// `0..n_target` have the target class, rows `n_target..n_rows` do not.
    n_target: usize,
}

impl TransposedTable {
    /// Transposes `dataset` as-is (no reordering).
    ///
    /// `n_target` is computed as the length of the *leading run* of rows
    /// labeled `target`; use [`for_mining`](Self::for_mining) to guarantee
    /// all target rows lead.
    pub fn new(dataset: &Dataset, target: ClassLabel) -> Self {
        let tuples = (0..dataset.n_items() as ItemId)
            .map(|item| Tuple {
                item,
                rows: dataset.item_rows(item).iter().map(|r| r as RowId).collect(),
            })
            .collect();
        let n_target = dataset
            .labels()
            .iter()
            .take_while(|&&l| l == target)
            .count();
        TransposedTable {
            tuples,
            n_rows: dataset.n_rows(),
            n_target,
        }
    }

    /// Reorders `dataset` into `ORD` order (target-class rows first) and
    /// transposes it.
    ///
    /// Returns the table, the reordered dataset, and the permutation
    /// mapping new row ids back to original ones.
    pub fn for_mining(dataset: &Dataset, target: ClassLabel) -> (Self, Dataset, Vec<RowId>) {
        let (reordered, order) = dataset.reordered_for_class(target);
        let tt = TransposedTable::new(&reordered, target);
        (tt, reordered, order)
    }

    /// The tuples (one per item), in item-id order.
    #[inline]
    pub fn tuples(&self) -> &[Tuple] {
        &self.tuples
    }

    /// Number of rows in the underlying dataset.
    #[inline]
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of leading rows with the target class; rows `< n_target`
    /// are positive (class `C`), rows `>= n_target` are negative (`¬C`).
    #[inline]
    pub fn n_target(&self) -> usize {
        self.n_target
    }

    /// `true` iff row `r` carries the target class under the `ORD` layout.
    #[inline]
    pub fn is_positive(&self, r: RowId) -> bool {
        (r as usize) < self.n_target
    }

    /// Number of tuples (= items).
    #[inline]
    pub fn n_items(&self) -> usize {
        self.tuples.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper_example;

    #[test]
    fn transpose_matches_figure_1b() {
        let d = paper_example();
        let (tt, reordered, order) = TransposedTable::for_mining(&d, 0);
        // class-0 rows already lead in the example; permutation is identity
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
        assert_eq!(tt.n_rows(), 5);
        assert_eq!(tt.n_target(), 3);
        // tuple for 'a' lists rows 1,2,3,4 in the paper = 0,1,2,3 here
        let a = reordered.item_by_name("a").unwrap();
        assert_eq!(tt.tuples()[a as usize].rows, vec![0, 1, 2, 3]);
        let d_item = reordered.item_by_name("d").unwrap();
        assert_eq!(tt.tuples()[d_item as usize].rows, vec![1, 4]);
        assert!(tt.is_positive(2));
        assert!(!tt.is_positive(3));
    }

    #[test]
    fn for_mining_reorders_other_class() {
        let d = paper_example();
        let (tt, reordered, order) = TransposedTable::for_mining(&d, 1);
        assert_eq!(order, vec![3, 4, 0, 1, 2]);
        assert_eq!(tt.n_target(), 2);
        assert_eq!(reordered.labels(), &[1, 1, 0, 0, 0]);
        // item 'g' occurs only in old row 4 -> new row 1
        let g = reordered.item_by_name("g").unwrap();
        assert_eq!(tt.tuples()[g as usize].rows, vec![1]);
    }
}

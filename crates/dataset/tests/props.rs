//! Property-based tests for the dataset substrate: the Galois connection
//! between rows and items, discretizer invariants, and structural
//! transformations.

use farmer_dataset::discretize::{entropy_mdl_cuts, equal_depth_cuts, equal_width_cuts};
use farmer_dataset::replicate::{replicate_rows, shuffled, stratified_split};
use farmer_dataset::{Dataset, DatasetBuilder, ExpressionMatrix};
use farmer_support::check::prelude::*;
use rowset::{IdList, RowSet};

fn arb_dataset() -> impl Strategy<Value = Dataset> {
    (2usize..8, 2usize..10).prop_flat_map(|(n_rows, n_items)| {
        collection::vec(
            (
                collection::btree_set(0..n_items as u32, 0..n_items),
                0u32..2,
            ),
            n_rows,
        )
        .prop_map(move |rows| {
            let mut b = DatasetBuilder::new(2);
            for (items, label) in rows {
                b.add_row(items, label);
            }
            // ensure a stable item universe independent of which items
            // appear: add one row containing the max item then drop it?
            // simpler: the builder derives universe from max id; that is
            // fine for these properties.
            b.build()
        })
    })
}

check! {
    /// R and I form a Galois connection: both closure operators are
    /// extensive, monotone, and idempotent.
    #[test]
    fn galois_connection(d in arb_dataset(), seed_rows in collection::btree_set(0usize..8, 1..4)) {
        let rows = RowSet::from_ids(d.n_rows(), seed_rows.into_iter().filter(|&r| r < d.n_rows()));
        if rows.is_empty() {
            return Ok(());
        }
        let items = d.items_common_to(&rows);
        let closure_rows = d.rows_supporting(&items);
        // extensive
        prop_assert!(rows.is_subset(&closure_rows));
        // idempotent
        prop_assert_eq!(d.items_common_to(&closure_rows), items.clone());
        prop_assert_eq!(d.rows_supporting(&d.items_common_to(&closure_rows)), closure_rows.clone());
        // every item's support set contains the closure rows
        for i in items.iter() {
            prop_assert!(closure_rows.is_subset(d.item_rows(i)));
        }
    }

    /// Per-item row sets are consistent with row item lists.
    #[test]
    fn item_rows_match_rows(d in arb_dataset()) {
        for i in 0..d.n_items() as u32 {
            for r in 0..d.n_rows() as u32 {
                prop_assert_eq!(d.item_rows(i).contains(r as usize), d.row(r).contains(i));
            }
        }
        let total: usize = (0..d.n_items() as u32).map(|i| d.item_support(i)).sum();
        prop_assert_eq!(total, d.n_incidences());
    }

    /// Reordering for a class preserves content and leads with the class.
    #[test]
    fn reorder_partition_invariants(d in arb_dataset(), class in 0u32..2) {
        let (r, order) = d.reordered_for_class(class);
        let k = d.class_count(class);
        prop_assert!(r.labels()[..k].iter().all(|&l| l == class));
        prop_assert!(r.labels()[k..].iter().all(|&l| l != class));
        for (new, &old) in order.iter().enumerate() {
            prop_assert_eq!(r.row(new as u32), d.row(old));
        }
    }

    /// Replication scales supports exactly.
    #[test]
    fn replication_scales_support(d in arb_dataset(), k in 1usize..4) {
        let rep = replicate_rows(&d, k);
        prop_assert_eq!(rep.n_rows(), d.n_rows() * k);
        for i in 0..d.n_items() as u32 {
            prop_assert_eq!(rep.item_support(i), d.item_support(i) * k);
        }
    }

    /// Shuffling preserves the multiset of (row, label) pairs.
    #[test]
    fn shuffle_preserves_rows(d in arb_dataset(), seed in 0u64..50) {
        let s = shuffled(&d, seed);
        let canon = |d: &Dataset| {
            let mut v: Vec<(Vec<u32>, u32)> = (0..d.n_rows() as u32)
                .map(|r| (d.row(r).as_slice().to_vec(), d.label(r)))
                .collect();
            v.sort();
            v
        };
        prop_assert_eq!(canon(&s), canon(&d));
    }

    /// Stratified splits have exact sizes and preserve each row.
    #[test]
    fn stratified_split_sizes(d in arb_dataset(), frac in 0.2f64..0.8, seed in 0u64..10) {
        let n_train = (d.n_rows() as f64 * frac) as usize;
        let (tr, te) = stratified_split(&d, n_train, seed);
        prop_assert_eq!(tr.n_rows(), n_train);
        prop_assert_eq!(te.n_rows(), d.n_rows() - n_train);
        prop_assert_eq!(tr.class_count(0) + te.class_count(0), d.class_count(0));
    }

    /// Equal-depth cuts are strictly ascending, inside the value range,
    /// and no bucket exceeds twice the ideal size (for distinct values).
    #[test]
    fn equal_depth_invariants(mut values in collection::vec(-100.0f64..100.0, 4..40), buckets in 2usize..8) {
        values.sort_by(|a, b| a.partial_cmp(b).unwrap());
        values.dedup();
        if values.len() < 2 { return Ok(()); }
        let cuts = equal_depth_cuts(&values, buckets);
        prop_assert!(cuts.windows(2).all(|w| w[0] < w[1]));
        for &c in &cuts {
            prop_assert!(c > values[0] && c <= *values.last().unwrap());
        }
        prop_assert!(cuts.len() < buckets);
    }

    /// Equal-width cuts split the range evenly.
    #[test]
    fn equal_width_invariants(values in collection::vec(-50.0f64..50.0, 2..30), buckets in 2usize..8) {
        let cuts = equal_width_cuts(&values, buckets);
        let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        if lo == hi {
            prop_assert!(cuts.is_empty());
        } else {
            prop_assert_eq!(cuts.len(), buckets - 1);
            let width = (hi - lo) / buckets as f64;
            for (k, &c) in cuts.iter().enumerate() {
                prop_assert!((c - (lo + width * (k + 1) as f64)).abs() < 1e-9);
            }
        }
    }

    /// Entropy-MDL never cuts a label-pure column, and every cut lies
    /// strictly inside the value range.
    #[test]
    fn entropy_invariants(pairs in collection::vec((-50.0f64..50.0, 0u32..2), 4..40)) {
        let values: Vec<f64> = pairs.iter().map(|&(v, _)| v).collect();
        let labels: Vec<u32> = pairs.iter().map(|&(_, l)| l).collect();
        let cuts = entropy_mdl_cuts(&values, &labels);
        let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        for &c in &cuts {
            prop_assert!(c > lo && c <= hi);
        }
        prop_assert!(cuts.windows(2).all(|w| w[0] < w[1]));
        // pure labels -> no cut
        let pure = entropy_mdl_cuts(&values, &vec![0; values.len()]);
        prop_assert!(pure.is_empty());
    }

    /// Matrix discretization gives each row exactly one item per kept
    /// gene, and the item encodes the right bin.
    #[test]
    fn matrix_binning(values in collection::vec(-10.0f64..10.0, 12..48)) {
        let n_rows = 4;
        let n_genes = values.len() / n_rows;
        let values = &values[..n_rows * n_genes];
        let m = ExpressionMatrix::new(n_rows, n_genes, values.to_vec(), vec![0, 0, 1, 1], 2);
        let cuts: Vec<Vec<f64>> = (0..n_genes).map(|g| equal_depth_cuts(&m.gene_column(g), 3)).collect();
        let d = m.to_dataset(&cuts, false);
        for r in 0..n_rows as u32 {
            prop_assert_eq!(d.row(r).len(), n_genes, "one item per gene");
        }
        // reconstruct: each item name is <gene>@<bin>
        for r in 0..n_rows as u32 {
            for i in d.row(r).iter() {
                let name = d.item_name(i);
                let (g, k) = name.split_once('@').unwrap();
                let g: usize = g[1..].parse().unwrap();
                let k: usize = k.parse().unwrap();
                let v = m.value(r as usize, g);
                prop_assert_eq!(k, cuts[g].partition_point(|&c| c <= v));
            }
        }
    }

    /// Transactions written and re-read mine identically (name-level).
    #[test]
    fn io_preserves_structure(d in arb_dataset()) {
        let dir = std::env::temp_dir().join("farmer-dataset-props");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("t{}.txt", std::process::id()));
        farmer_dataset::io::save_transactions(&d, &path).unwrap();
        let d2 = farmer_dataset::io::load_transactions(&path).unwrap();
        prop_assert_eq!(d2.n_rows(), d.n_rows());
        for r in 0..d.n_rows() as u32 {
            let mut a: Vec<&str> = d.row(r).iter().map(|i| d.item_name(i)).collect();
            let mut b: Vec<&str> = d2.row(r).iter().map(|i| d2.item_name(i)).collect();
            a.sort_unstable();
            b.sort_unstable();
            prop_assert_eq!(a, b);
        }
    }
}

#[test]
fn support_with_class_decomposes() {
    let mut b = DatasetBuilder::new(2);
    b.add_row([0, 1], 0);
    b.add_row([0], 1);
    b.add_row([1], 0);
    let d = b.build();
    let items = IdList::from_iter([0]);
    assert_eq!(
        d.support_with_class(&items, 0) + d.support_with_class(&items, 1),
        d.rows_supporting(&items).len()
    );
}

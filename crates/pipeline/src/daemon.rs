//! The remine daemon: journal in, fresh artifacts out.
//!
//! One background thread owns the [`IncrementalMiner`] and runs the
//! ingest→remine→publish loop:
//!
//! 1. **Ingest** — rows arrive through [`PipelineHandle::ingest`]
//!    (wired to `POST /v1/admin/ingest` via the
//!    [`farmer_serve::IngestHook`] impl) or from another process
//!    appending to the same `.fgd` journal (`farmer ingest`). Either
//!    way the journal file is the single source of truth; the hook
//!    only validates and appends.
//! 2. **Remine** — the loop polls the journal. When it grows, the
//!    daemon waits for a quiet window of `debounce_ms` (so a burst of
//!    arrivals coalesces into one remine — single-flight by
//!    construction, there is only the one thread), then feeds every
//!    unapplied record to the miner's delta-restricted search.
//! 3. **Publish** — the refreshed groups are written with
//!    [`farmer_store::publish_artifact`] (temp file → fsync → atomic
//!    rename), the generation counter bumps, and the configured
//!    [`Notify`] target is told: an in-process
//!    [`ArtifactHandle::reload`] for `serve --watch`, or an
//!    authenticated `POST /v1/admin/reload` for a remote server.
//!
//! Failures never wedge the loop: a publish or notify error is
//! counted and surfaced in [`PipelineHandle::stats`] /
//! [`PipelineHandle::metrics_text`], a poison journal row is skipped
//! past (with the error recorded) rather than retried forever.

use crate::engine::IncrementalMiner;
use farmer_core::{Engine, MiningParams};
use farmer_dataset::Dataset;
use farmer_serve::{http_post, ArtifactHandle, IngestHook, IngestRow};
use farmer_store::{
    dataset_fingerprint, publish_artifact, read_journal, ArtifactMeta, JournalWriter, VERSION,
};
use farmer_support::json::{Json, ObjBuilder};
use farmer_support::thread::Mutex;
use rowset::IdList;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Who to tell after an artifact publish lands.
pub enum Notify {
    /// Nobody — consumers poll the artifact path themselves.
    None,
    /// Swap a server in this process (`serve --watch`).
    InProcess(Arc<ArtifactHandle>),
    /// `POST /v1/admin/reload` on a remote server (`mine --watch
    /// --notify-url`).
    Remote {
        /// The server's `host:port`.
        addr: String,
        /// Bearer token for the admin endpoint, if it requires one.
        token: Option<String>,
    },
}

/// How the daemon ingests, remines, and publishes.
pub struct PipelineConfig {
    /// The `.fgd` row journal (created if absent; its header must
    /// fingerprint-match the base dataset).
    pub journal: PathBuf,
    /// The `.fgi` artifact to (re)publish.
    pub artifact: PathBuf,
    /// Mining thresholds; `target_class` is ignored — the mined
    /// classes come from [`classes`](Self::classes).
    pub params: MiningParams,
    /// Which classes to mine into the artifact. `None` mines every
    /// class; `Some(vec![c])` matches a `mine --class c --save-irgs`
    /// artifact.
    pub classes: Option<Vec<u32>>,
    /// Enumeration engine for both the bootstrap and the deltas.
    pub engine: Engine,
    /// Worker threads per mine (0 = sequential).
    pub threads: usize,
    /// Quiet window after the last journal growth before a remine
    /// starts; coalesces arrival bursts.
    pub debounce_ms: u64,
    /// Journal poll cadence. 0 picks a default derived from the
    /// debounce window.
    pub poll_ms: u64,
    /// Publish notification target.
    pub notify: Notify,
}

impl PipelineConfig {
    /// A config with the given paths and everything else defaulted:
    /// `min_sup = 1` mining of every class, bitset engine, sequential,
    /// 200 ms debounce, no notification.
    pub fn new(journal: impl Into<PathBuf>, artifact: impl Into<PathBuf>) -> Self {
        PipelineConfig {
            journal: journal.into(),
            artifact: artifact.into(),
            params: MiningParams::new(0),
            classes: None,
            engine: Engine::Bitset,
            threads: 0,
            debounce_ms: 200,
            poll_ms: 0,
            notify: Notify::None,
        }
    }

    fn effective_poll(&self) -> Duration {
        let ms = if self.poll_ms > 0 {
            self.poll_ms
        } else {
            (self.debounce_ms / 4).clamp(10, 250)
        };
        Duration::from_millis(ms)
    }
}

/// The shared, thread-safe face of a running pipeline: the ingest
/// door, the counters, and the stats/metrics surfaces. This is what
/// plugs into [`farmer_serve::ServeConfig::ingest`].
pub struct PipelineHandle {
    writer: Mutex<JournalWriter>,
    n_items: usize,
    n_classes: u32,
    /// Monotonic liveness: rows journaled + publishes landed.
    activity: AtomicU64,
    ingested_rows: AtomicU64,
    applied_rows: AtomicU64,
    current_rows: AtomicU64,
    remines: AtomicU64,
    publishes: AtomicU64,
    publish_failures: AtomicU64,
    /// Successful publishes since start — the artifact generation.
    generation: AtomicU64,
    last_error: Mutex<Option<String>>,
    notify: Mutex<Notify>,
}

impl PipelineHandle {
    fn record_error(&self, e: String) {
        *self.last_error.lock() = Some(e);
    }

    /// Artifact generation: successful publishes since the daemon
    /// started.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Relaxed)
    }

    /// Rows folded into the currently published artifact (beyond the
    /// base dataset).
    pub fn applied_rows(&self) -> u64 {
        self.applied_rows.load(Ordering::Relaxed)
    }

    /// The most recent pipeline error, if any.
    pub fn last_error(&self) -> Option<String> {
        self.last_error.lock().clone()
    }

    /// Swaps the publish notification target. Lets `serve --watch`
    /// start the pipeline first (so the initial publish can create a
    /// missing artifact), load the server handle from it, and only
    /// then point notifications at that handle.
    pub fn set_notify(&self, notify: Notify) {
        *self.notify.lock() = notify;
    }
}

impl IngestHook for PipelineHandle {
    fn ingest(&self, rows: &[IngestRow]) -> Result<usize, String> {
        // Validate the whole batch before journaling anything, so the
        // append loop below can only fail on I/O.
        for (k, (items, label)) in rows.iter().enumerate() {
            if *label >= self.n_classes {
                return Err(format!(
                    "row {k}: label {label} out of range (dataset has {} classes)",
                    self.n_classes
                ));
            }
            for w in items.windows(2) {
                if w[1] <= w[0] {
                    return Err(format!("row {k}: item ids must be strictly ascending"));
                }
            }
            if let Some(&m) = items.last() {
                if m as usize >= self.n_items {
                    return Err(format!(
                        "row {k}: item id {m} out of range (dataset has {} items)",
                        self.n_items
                    ));
                }
            }
        }
        let mut w = self.writer.lock();
        for (items, label) in rows {
            let ids = IdList::from_sorted(items.clone());
            w.append(&ids, *label).map_err(|e| e.to_string())?;
        }
        w.sync().map_err(|e| e.to_string())?;
        drop(w);
        self.ingested_rows
            .fetch_add(rows.len() as u64, Ordering::Relaxed);
        self.activity.fetch_add(1, Ordering::Relaxed);
        Ok(rows.len())
    }

    fn activity(&self) -> u64 {
        self.activity.load(Ordering::Relaxed)
    }

    fn stats(&self) -> Json {
        let (last_error, base) = (
            match self.last_error.lock().clone() {
                Some(e) => Json::Str(e),
                None => Json::Null,
            },
            self.current_rows.load(Ordering::Relaxed) - self.applied_rows.load(Ordering::Relaxed),
        );
        ObjBuilder::new()
            .field("generation", self.generation.load(Ordering::Relaxed) as i64)
            .field(
                "ingested_rows",
                self.ingested_rows.load(Ordering::Relaxed) as i64,
            )
            .field(
                "applied_rows",
                self.applied_rows.load(Ordering::Relaxed) as i64,
            )
            .field("base_rows", base as i64)
            .field("remines", self.remines.load(Ordering::Relaxed) as i64)
            .field("publishes", self.publishes.load(Ordering::Relaxed) as i64)
            .field(
                "publish_failures",
                self.publish_failures.load(Ordering::Relaxed) as i64,
            )
            .field("last_error", last_error)
            .build()
    }

    fn metrics_text(&self) -> String {
        let counter = |name: &str, v: u64| {
            format!("# TYPE farmer_pipeline_{name} counter\nfarmer_pipeline_{name} {v}\n")
        };
        let mut out = String::new();
        out.push_str(&counter(
            "ingested_rows_total",
            self.ingested_rows.load(Ordering::Relaxed),
        ));
        out.push_str(&counter(
            "remines_total",
            self.remines.load(Ordering::Relaxed),
        ));
        out.push_str(&counter(
            "publishes_total",
            self.publishes.load(Ordering::Relaxed),
        ));
        out.push_str(&counter(
            "publish_failures_total",
            self.publish_failures.load(Ordering::Relaxed),
        ));
        out.push_str(&format!(
            "# TYPE farmer_pipeline_generation gauge\nfarmer_pipeline_generation {}\n",
            self.generation.load(Ordering::Relaxed)
        ));
        out
    }
}

/// A running ingest→remine→publish daemon. Dropping it (or calling
/// [`shutdown`](Self::shutdown)) stops the loop and joins the thread.
pub struct Pipeline {
    handle: Arc<PipelineHandle>,
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl Pipeline {
    /// Opens (or creates) the journal against `base`, replays any
    /// backlog through the miner, publishes the initial artifact when
    /// there was a backlog or none exists yet, and starts the loop.
    pub fn start(base: Dataset, mut config: PipelineConfig) -> Result<Pipeline, String> {
        let fingerprint = dataset_fingerprint(&base);
        let writer =
            JournalWriter::open_append(&config.journal, fingerprint).map_err(|e| e.to_string())?;
        let journal = read_journal(&config.journal).map_err(|e| e.to_string())?;
        let backlog: Vec<(IdList, u32)> = journal
            .records
            .into_iter()
            .map(|r| (r.items, r.label))
            .collect();

        let handle = Arc::new(PipelineHandle {
            writer: Mutex::new(writer),
            n_items: base.n_items(),
            n_classes: base.n_classes() as u32,
            activity: AtomicU64::new(0),
            ingested_rows: AtomicU64::new(0),
            applied_rows: AtomicU64::new(0),
            current_rows: AtomicU64::new(0),
            remines: AtomicU64::new(0),
            publishes: AtomicU64::new(0),
            publish_failures: AtomicU64::new(0),
            generation: AtomicU64::new(0),
            last_error: Mutex::new(None),
            notify: Mutex::new(std::mem::replace(&mut config.notify, Notify::None)),
        });

        let classes = config
            .classes
            .clone()
            .unwrap_or_else(|| (0..base.n_classes() as u32).collect());
        let mut miner = IncrementalMiner::for_classes(
            base,
            config.params.clone(),
            classes,
            config.engine,
            config.threads,
        );
        let mut applied = 0usize;
        if !backlog.is_empty() {
            miner.apply_rows(&backlog).map_err(|e| e.to_string())?;
            applied = backlog.len();
            handle.remines.fetch_add(1, Ordering::Relaxed);
        }
        handle.applied_rows.store(applied as u64, Ordering::Relaxed);
        handle
            .current_rows
            .store(miner.n_rows() as u64, Ordering::Relaxed);
        if applied > 0 || !config.artifact.exists() {
            publish(&mut miner, &config, &handle);
        }

        let stop = Arc::new(AtomicBool::new(false));
        let thread = {
            let handle = Arc::clone(&handle);
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("farmer-pipeline".into())
                .spawn(move || run_loop(miner, config, handle, stop, applied))
                .map_err(|e| format!("spawning pipeline thread: {e}"))?
        };
        Ok(Pipeline {
            handle,
            stop,
            thread: Some(thread),
        })
    }

    /// The shared handle, for wiring into
    /// [`farmer_serve::ServeConfig::ingest`] and for stats polling.
    pub fn handle(&self) -> Arc<PipelineHandle> {
        Arc::clone(&self.handle)
    }

    /// Stops the loop and joins the daemon thread. Idempotent.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for Pipeline {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn run_loop(
    mut miner: IncrementalMiner,
    config: PipelineConfig,
    handle: Arc<PipelineHandle>,
    stop: Arc<AtomicBool>,
    mut applied: usize,
) {
    let poll = config.effective_poll();
    let debounce = Duration::from_millis(config.debounce_ms);
    while !stop.load(Ordering::Relaxed) {
        std::thread::sleep(poll);
        let journal = match read_journal(&config.journal) {
            Ok(j) => j,
            Err(e) => {
                handle.record_error(format!("journal read: {e}"));
                continue;
            }
        };
        if journal.records.len() <= applied {
            continue;
        }
        // Debounce: wait for a quiet window so a burst coalesces into
        // one remine, then take *everything* queued by the time the
        // window closes (single-flight).
        let mut latest = journal;
        let mut quiet_since = Instant::now();
        while quiet_since.elapsed() < debounce && !stop.load(Ordering::Relaxed) {
            std::thread::sleep(poll.min(debounce));
            match read_journal(&config.journal) {
                Ok(j) if j.records.len() > latest.records.len() => {
                    latest = j;
                    quiet_since = Instant::now();
                }
                Ok(_) => {}
                Err(e) => handle.record_error(format!("journal read: {e}")),
            }
        }
        if stop.load(Ordering::Relaxed) {
            break;
        }
        let delta: Vec<(IdList, u32)> = latest.records[applied..]
            .iter()
            .map(|r| (r.items.clone(), r.label))
            .collect();
        let n_new = delta.len();
        if let Err(e) = miner.apply_rows(&delta) {
            // A poison row would otherwise hot-loop; skip past it and
            // surface the error instead.
            handle.record_error(format!("remine skipped {n_new} journal rows: {e}"));
            applied = latest.records.len();
            continue;
        }
        applied = latest.records.len();
        handle.remines.fetch_add(1, Ordering::Relaxed);
        handle.applied_rows.store(applied as u64, Ordering::Relaxed);
        handle
            .current_rows
            .store(miner.n_rows() as u64, Ordering::Relaxed);
        publish(&mut miner, &config, &handle);
    }
}

/// Writes the miner's current groups to the artifact path (atomic
/// rename), bumps the generation, and notifies the configured target.
/// Failures are counted and recorded, never propagated — the old
/// artifact keeps serving.
fn publish(miner: &mut IncrementalMiner, config: &PipelineConfig, handle: &PipelineHandle) {
    let groups = miner.groups();
    let meta = ArtifactMeta::from_dataset(miner.data());
    match publish_artifact(&config.artifact, &meta, &groups, VERSION) {
        Ok(_) => {
            handle.publishes.fetch_add(1, Ordering::Relaxed);
            handle.generation.fetch_add(1, Ordering::Relaxed);
            handle.activity.fetch_add(1, Ordering::Relaxed);
        }
        Err(e) => {
            handle.publish_failures.fetch_add(1, Ordering::Relaxed);
            handle.record_error(format!("publish: {e}"));
            return;
        }
    }
    let notify = handle.notify.lock();
    match &*notify {
        Notify::None => {}
        Notify::InProcess(h) => {
            if let Err(e) = h.reload() {
                handle.record_error(format!("in-process reload: {e}"));
            }
        }
        Notify::Remote { addr, token } => {
            match http_post(addr, "/v1/admin/reload", "{}", token.as_deref()) {
                Ok(resp) if resp.status == 200 => {}
                Ok(resp) => handle.record_error(format!(
                    "remote reload: {addr} answered HTTP {}",
                    resp.status
                )),
                Err(e) => handle.record_error(format!("remote reload: {e}")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use farmer_store::Artifact;

    fn base() -> Dataset {
        farmer_dataset::paper_example()
    }

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("fgd-daemon-{}-{name}", std::process::id()))
    }

    fn wait_for<F: Fn() -> bool>(what: &str, f: F) {
        let deadline = Instant::now() + Duration::from_secs(30);
        while !f() {
            assert!(Instant::now() < deadline, "timed out waiting for {what}");
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    #[test]
    fn ingest_remine_publish_round_trip() {
        let journal = tmp("rt.fgd");
        let artifact = tmp("rt.fgi");
        let _ = std::fs::remove_file(&journal);
        let _ = std::fs::remove_file(&artifact);
        let data = base();
        let mut cfg = PipelineConfig::new(&journal, &artifact);
        cfg.debounce_ms = 50;
        let mut pipeline = Pipeline::start(data.clone(), cfg).unwrap();
        let handle = pipeline.handle();
        // Initial publish (no artifact existed).
        wait_for("initial publish", || handle.generation() >= 1);
        let before = Artifact::load(&artifact).unwrap();
        assert_eq!(before.meta.n_rows, data.n_rows() as u64);

        let n = handle
            .ingest(&[(vec![0, 2, 4], 1), (vec![1, 3], 0)])
            .unwrap();
        assert_eq!(n, 2);
        wait_for("remine publish", || handle.generation() >= 2);
        wait_for("rows applied", || handle.applied_rows() == 2);
        let after = Artifact::load(&artifact).unwrap();
        assert_eq!(after.meta.n_rows, data.n_rows() as u64 + 2);
        assert!(handle.last_error().is_none(), "{:?}", handle.last_error());

        // Stats and metrics surfaces reflect the run.
        let stats = handle.stats().to_string();
        assert!(stats.contains("\"generation\""), "{stats}");
        let metrics = handle.metrics_text();
        assert!(
            metrics.contains("farmer_pipeline_publishes_total"),
            "{metrics}"
        );
        pipeline.shutdown();
        let _ = std::fs::remove_file(&journal);
        let _ = std::fs::remove_file(&artifact);
    }

    #[test]
    fn restart_replays_the_journal_backlog() {
        let journal = tmp("replay.fgd");
        let artifact = tmp("replay.fgi");
        let _ = std::fs::remove_file(&journal);
        let _ = std::fs::remove_file(&artifact);
        let data = base();
        {
            let mut cfg = PipelineConfig::new(&journal, &artifact);
            cfg.debounce_ms = 50;
            let mut p = Pipeline::start(data.clone(), cfg).unwrap();
            let h = p.handle();
            h.ingest(&[(vec![0, 1], 0)]).unwrap();
            wait_for("first run publish", || h.applied_rows() == 1);
            p.shutdown();
        }
        // A fresh daemon over the same journal folds the backlog in
        // before serving its first artifact.
        let mut cfg = PipelineConfig::new(&journal, &artifact);
        cfg.debounce_ms = 50;
        let mut p = Pipeline::start(data.clone(), cfg).unwrap();
        assert_eq!(p.handle().applied_rows(), 1);
        let art = Artifact::load(&artifact).unwrap();
        assert_eq!(art.meta.n_rows, data.n_rows() as u64 + 1);
        p.shutdown();
        let _ = std::fs::remove_file(&journal);
        let _ = std::fs::remove_file(&artifact);
    }

    #[test]
    fn ingest_rejects_bad_rows_without_journaling() {
        let journal = tmp("bad.fgd");
        let artifact = tmp("bad.fgi");
        let _ = std::fs::remove_file(&journal);
        let _ = std::fs::remove_file(&artifact);
        let data = base();
        let n_items = data.n_items() as u32;
        let n_classes = data.n_classes() as u32;
        let mut cfg = PipelineConfig::new(&journal, &artifact);
        cfg.debounce_ms = 50;
        let mut p = Pipeline::start(data, cfg).unwrap();
        let h = p.handle();
        assert!(h.ingest(&[(vec![0], n_classes)]).is_err());
        assert!(h.ingest(&[(vec![n_items], 0)]).is_err());
        assert!(h.ingest(&[(vec![2, 1], 0)]).is_err());
        // Mixed batch: one good, one bad — nothing lands.
        assert!(h.ingest(&[(vec![0], 0), (vec![1, 1], 0)]).is_err());
        assert_eq!(
            read_journal(&journal).unwrap().records.len(),
            0,
            "rejected batches must not reach the journal"
        );
        p.shutdown();
        let _ = std::fs::remove_file(&journal);
        let _ = std::fs::remove_file(&artifact);
    }

    #[test]
    fn in_process_notify_advances_the_server_epoch() {
        let journal = tmp("notify.fgd");
        let artifact = tmp("notify.fgi");
        let _ = std::fs::remove_file(&journal);
        let _ = std::fs::remove_file(&artifact);
        let data = base();
        // Seed the artifact so a handle can load it first.
        {
            let mut cfg = PipelineConfig::new(&journal, &artifact);
            cfg.debounce_ms = 50;
            let p = Pipeline::start(data.clone(), cfg).unwrap();
            wait_for("seed publish", || p.handle().generation() >= 1);
        }
        let server = Arc::new(ArtifactHandle::load(&artifact, 0.8, 1).unwrap());
        assert_eq!(server.epoch(), 0);
        let mut cfg = PipelineConfig::new(&journal, &artifact);
        cfg.debounce_ms = 50;
        cfg.notify = Notify::InProcess(Arc::clone(&server));
        let mut p = Pipeline::start(data, cfg).unwrap();
        let h = p.handle();
        let activity_before = h.activity();
        h.ingest(&[(vec![0, 3], 1)]).unwrap();
        wait_for("notify reload", || server.epoch() >= 1);
        assert!(
            h.activity() > activity_before,
            "ingest+publish must move the liveness counter"
        );
        assert!(h.last_error().is_none(), "{:?}", h.last_error());
        p.shutdown();
        let _ = std::fs::remove_file(&journal);
        let _ = std::fs::remove_file(&artifact);
    }
}

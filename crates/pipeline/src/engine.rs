//! [`IncrementalMiner`]: keep the full harvest of closed rule groups
//! warm and refresh only what a row delta can touch.
//!
//! # The cache invariant
//!
//! After every [`apply_rows`](IncrementalMiner::apply_rows), the
//! per-class cache holds **exactly** the closed groups of the current
//! dataset that pass `min_sup` and the *raw* `min_conf` — nothing
//! else, with their exact support sets and counts. Everything the user
//! actually asked for (χ², footnote-3 extras, the effective confidence
//! tightened by lift/conviction, lower bounds, the interestingness
//! filter) is re-derived from the cache by [`groups`]
//! (IncrementalMiner::groups), because those judgements depend on the
//! class margins `n`/`m`, which every appended row moves.
//!
//! # Why a delta-restricted harvest is exact
//!
//! Closed groups are in bijection with distinct support sets `R(A)`.
//! Appending rows never removes a row, so for any itemset `A` whose
//! (new) support contains no delta row, `R(A)` — and therefore its
//! closure and counts — is byte-identical to before the delta. Those
//! cache entries are kept as-is (their `RowSet`s merely grow capacity).
//! Every closed group that is new or changed has a delta row in its
//! support, which is exactly the set the frontier-restricted search
//! emits (`Farmer::with_frontier` prunes subtrees that cannot reach a
//! frontier row and reports only groups a frontier row supports). The
//! two halves partition the closed set, so replacing the touched
//! entries with the restricted harvest restores the invariant.

use farmer_core::measures::{self, chi_square, Contingency};
use farmer_core::minelb::mine_lower_bounds;
use farmer_core::{canonical_sort, Engine, ExtraConstraint, Farmer, MiningParams, RuleGroup};
use farmer_dataset::{ClassLabel, Dataset};
use rowset::{IdList, RowSet};

/// One cached closed group: the closure, its support set in original
/// row ids, and the class-split counts. Margins are *not* cached —
/// they move with every delta and are re-read at assembly time.
///
/// `lower` memoizes `mine_lower_bounds` for the group, filled the
/// first time the assembly pass needs it. A cached list stays exact
/// across a delta unless some delta row contains one of the minimal
/// generators: appending rows only *adds* blockers (projections
/// `row ∩ upper` of rows outside the support — a row covering the
/// whole closure would have made the entry "touched" and dropped), so
/// the generator set can only shrink, and the minimal generators are
/// unchanged as long as every one of them escapes every new blocker.
/// If any minimal generator is swallowed by a delta row the list is
/// invalidated and recomputed on next use.
struct CachedGroup {
    upper: IdList,
    rows: RowSet,
    sup: usize,
    neg_sup: usize,
    lower: Option<Vec<IdList>>,
}

fn cache_entry(g: RuleGroup) -> CachedGroup {
    CachedGroup {
        upper: g.upper,
        rows: g.support_set,
        sup: g.sup,
        neg_sup: g.neg_sup,
        lower: None,
    }
}

/// The harvest runs cache on `min_sup` + raw `min_conf` only: χ² and
/// the extras depend on the margins, and the effective confidence is
/// ≥ the raw one, so the raw-threshold harvest is a superset of
/// whatever the assembly pass will accept later.
fn harvest_params(template: &MiningParams, class: ClassLabel) -> MiningParams {
    let mut p = template.clone();
    p.target_class = class;
    p.min_chi = 0.0;
    p.extra.clear();
    p.lower_bounds = false;
    p.node_budget = None;
    p
}

/// An all-classes miner that absorbs appended rows without re-running
/// the full enumeration. [`new`](Self::new) pays one cold harvest per
/// class; each [`apply_rows`](Self::apply_rows) afterwards costs a
/// frontier-restricted search over the delta plus cache bookkeeping.
///
/// [`groups`](Self::groups) is pinned byte-identical (via
/// `dump_groups` after `canonical_sort`) to a cold
/// [`Farmer::mine`] over the merged dataset — the property tests in
/// `tests/incremental.rs` enforce this across engines, delta sizes,
/// and constraint mixes.
pub struct IncrementalMiner {
    data: Dataset,
    template: MiningParams,
    engine: Engine,
    threads: usize,
    classes: Vec<ClassLabel>,
    caches: Vec<Vec<CachedGroup>>,
}

impl IncrementalMiner {
    /// Bootstraps the cache with a cold harvest of every class of
    /// `data`. `template.target_class` is ignored — the miner targets
    /// each class in turn, like the artifact build step does.
    pub fn new(data: Dataset, template: MiningParams, engine: Engine, threads: usize) -> Self {
        let classes = (0..data.n_classes() as ClassLabel).collect();
        Self::for_classes(data, template, classes, engine, threads)
    }

    /// Like [`new`](Self::new) but mining only `classes` — the shape
    /// `farmer mine --class <c> --save-irgs` produces, so a watch
    /// daemon can republish artifacts with the same class coverage.
    pub fn for_classes(
        data: Dataset,
        template: MiningParams,
        classes: Vec<ClassLabel>,
        engine: Engine,
        threads: usize,
    ) -> Self {
        let caches = classes
            .iter()
            .map(|&class| {
                Farmer::new(harvest_params(&template, class))
                    .with_harvest(true)
                    .with_engine(engine)
                    .with_parallelism(threads)
                    .with_memo_capacity(0)
                    .mine(&data)
                    .groups
                    .into_iter()
                    .map(cache_entry)
                    .collect()
            })
            .collect();
        IncrementalMiner {
            data,
            template,
            engine,
            threads,
            classes,
            caches,
        }
    }

    /// The current (merged) dataset.
    pub fn data(&self) -> &Dataset {
        &self.data
    }

    /// Rows in the current dataset.
    pub fn n_rows(&self) -> usize {
        self.data.n_rows()
    }

    /// Absorbs `delta` (item ids and labels in the base dictionaries):
    /// merges the rows into the dataset, drops the cache entries a
    /// delta row supports, and re-discovers everything the delta can
    /// have changed with a frontier-restricted harvest. Rejects rows
    /// referencing unknown items or classes without touching any
    /// state.
    pub fn apply_rows(&mut self, delta: &[(IdList, ClassLabel)]) -> Result<(), String> {
        if delta.is_empty() {
            return Ok(());
        }
        let merged = self.data.appended(delta)?;
        let base = self.data.n_rows();
        let n_total = merged.n_rows();
        let frontier = RowSet::from_ids(n_total, base..n_total);
        for (ci, &class) in self.classes.iter().enumerate() {
            let cache = &mut self.caches[ci];
            // An entry is touched iff some delta row supports its
            // closure — only then can its support set (and closure)
            // differ on the merged dataset.
            cache.retain(|g| !delta.iter().any(|(items, _)| g.upper.is_subset(items)));
            for g in cache.iter_mut() {
                g.rows.grow(n_total);
                // A surviving entry keeps its memoized lower bounds
                // unless a delta row swallows one of its minimal
                // generators (see the `CachedGroup::lower` notes).
                let stale = g.lower.as_ref().is_some_and(|lows| {
                    delta
                        .iter()
                        .any(|(items, _)| lows.iter().any(|x| x.is_subset(items)))
                });
                if stale {
                    g.lower = None;
                }
            }
            let refreshed = Farmer::new(harvest_params(&self.template, class))
                .with_harvest(true)
                .with_frontier(frontier.clone())
                .with_engine(self.engine)
                .with_parallelism(self.threads)
                .with_memo_capacity(0)
                .mine(&merged);
            cache.extend(refreshed.groups.into_iter().map(cache_entry));
        }
        self.data = merged;
        Ok(())
    }

    /// Assembles the user-facing rule groups from the cache, applying
    /// exactly the emission pipeline a cold mine would: thresholds
    /// against the current margins, the generality-order
    /// interestingness filter, then lower bounds for the survivors.
    /// Returned canonically sorted across all classes, ready for
    /// `save_artifact`.
    pub fn groups(&mut self) -> Vec<RuleGroup> {
        let n = self.data.n_rows();
        let mut all = Vec::new();
        for (ci, &class) in self.classes.iter().enumerate() {
            let mut params = self.template.clone();
            params.target_class = class;
            let m = self.data.class_count(class);
            all.extend(assemble(&mut self.caches[ci], &params, &self.data, n, m));
        }
        canonical_sort(&mut all);
        all
    }

    /// Cached closed groups per class (diagnostics).
    pub fn cache_sizes(&self) -> Vec<usize> {
        self.caches.iter().map(Vec::len).collect()
    }
}

/// The miner's emission pipeline, replayed over the cache: thresholds
/// in the same order and with the same arithmetic (so `f64`
/// comparisons agree bit-for-bit), the same `(len, upper)` generality
/// sort, the same domination predicate, and `mine_lower_bounds` for
/// accepted groups only — memoized per entry, since the lower bounds
/// of an untouched, unblocked group cannot move under appends.
fn assemble(
    cache: &mut [CachedGroup],
    params: &MiningParams,
    data: &Dataset,
    n: usize,
    m: usize,
) -> Vec<RuleGroup> {
    let eff_min_conf = params.effective_min_conf(n, m);
    // Candidates are cache indices so the lower-bound memo can be
    // written back once a group is accepted.
    let mut cands: Vec<(usize, f64)> = Vec::new();
    for (i, g) in cache.iter().enumerate() {
        if g.sup < params.min_sup {
            continue;
        }
        let conf = g.sup as f64 / (g.sup + g.neg_sup) as f64;
        if conf < eff_min_conf {
            continue;
        }
        if params.min_chi > 0.0 {
            let chi = chi_square(Contingency::new(g.sup + g.neg_sup, g.sup, n, m));
            if chi < params.min_chi {
                continue;
            }
        }
        if !params.extra.is_empty() {
            let t = Contingency::new(g.sup + g.neg_sup, g.sup, n, m);
            let ok = params.extra.iter().all(|c| match *c {
                ExtraConstraint::MinLift(v) => measures::lift(t) >= v,
                ExtraConstraint::MinConviction(v) => measures::conviction(t) >= v,
                ExtraConstraint::MinEntropyGain(v) => measures::entropy_gain(t) >= v,
                ExtraConstraint::MinGiniGain(v) => measures::gini_gain(t) >= v,
                ExtraConstraint::MinCorrelation(v) => measures::correlation(t) >= v,
            });
            if !ok {
                continue;
            }
        }
        cands.push((i, conf));
    }
    cands.sort_by(|&(a, _), &(b, _)| {
        let (ga, gb) = (&cache[a], &cache[b]);
        ga.upper
            .len()
            .cmp(&gb.upper.len())
            .then_with(|| ga.upper.cmp(&gb.upper))
    });
    let mut accepted: Vec<(usize, f64)> = Vec::new();
    for (i, conf) in cands {
        let c = &cache[i];
        let dominated = accepted.iter().any(|&(ai, aconf)| {
            let a = &cache[ai];
            a.upper.len() < c.upper.len() && a.upper.is_subset(&c.upper) && aconf >= conf
        });
        if !dominated {
            accepted.push((i, conf));
        }
    }
    accepted
        .into_iter()
        .map(|(i, _)| {
            let g = &mut cache[i];
            // MineLB's blockers depend only on the *set* of row∩upper
            // projections, so running it in original row-id space
            // yields the same lower bounds the cold mine computes in
            // reordered space (canonical_sort normalizes list order).
            let lower = if params.lower_bounds {
                g.lower
                    .get_or_insert_with(|| mine_lower_bounds(&g.upper, &g.rows, data))
                    .clone()
            } else {
                Vec::new()
            };
            RuleGroup {
                upper: g.upper.clone(),
                lower,
                support_set: g.rows.clone(),
                sup: g.sup,
                neg_sup: g.neg_sup,
                class: params.target_class,
                n_rows: n,
                n_class: m,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use farmer_core::dump_groups;
    use farmer_dataset::paper_example;

    fn cold(data: &Dataset, template: &MiningParams, engine: Engine) -> Vec<RuleGroup> {
        let mut all = Vec::new();
        for class in 0..data.n_classes() as ClassLabel {
            let mut p = template.clone();
            p.target_class = class;
            all.extend(Farmer::new(p).with_engine(engine).mine(data).groups);
        }
        canonical_sort(&mut all);
        all
    }

    #[test]
    fn bootstrap_matches_a_cold_mine_with_no_delta() {
        let data = paper_example();
        let template = MiningParams::new(0).min_sup(2);
        let mut inc = IncrementalMiner::new(data.clone(), template.clone(), Engine::Bitset, 1);
        let cold = cold(&data, &template, Engine::Bitset);
        assert_eq!(dump_groups(&inc.groups()), dump_groups(&cold));
    }

    #[test]
    fn a_single_appended_row_matches_the_cold_remine() {
        let data = paper_example();
        let template = MiningParams::new(0).min_sup(1);
        let mut inc = IncrementalMiner::new(data.clone(), template.clone(), Engine::Bitset, 1);
        let delta = vec![(IdList::from_iter([0, 2, 4]), 1)];
        inc.apply_rows(&delta).unwrap();
        let merged = data.appended(&delta).unwrap();
        assert_eq!(inc.n_rows(), merged.n_rows());
        let cold = cold(&merged, &template, Engine::Bitset);
        assert_eq!(dump_groups(&inc.groups()), dump_groups(&cold));
    }

    #[test]
    fn bad_delta_rows_are_rejected_without_corrupting_state() {
        let data = paper_example();
        let template = MiningParams::new(0);
        let mut inc = IncrementalMiner::new(data.clone(), template.clone(), Engine::Bitset, 1);
        let before = dump_groups(&inc.groups());
        let bad_item = IdList::from_iter([data.n_items() as u32]);
        assert!(inc.apply_rows(&[(bad_item, 0)]).is_err());
        let bad_class = (IdList::from_iter([0]), data.n_classes() as u32);
        assert!(inc.apply_rows(&[bad_class]).is_err());
        assert_eq!(
            dump_groups(&inc.groups()),
            before,
            "failed delta must be a no-op"
        );
    }

    #[test]
    fn empty_delta_is_a_no_op() {
        let data = paper_example();
        let mut inc = IncrementalMiner::new(data, MiningParams::new(0), Engine::Bitset, 1);
        let before = dump_groups(&inc.groups());
        inc.apply_rows(&[]).unwrap();
        assert_eq!(dump_groups(&inc.groups()), before);
    }
}

//! Streaming ingest and incremental remining for FARMER artifacts.
//!
//! This crate is the glue between a live dataset and a live server:
//! rows arrive one batch at a time (a new tissue sample with its class
//! label), and the mined `.fgi` artifact a server answers from must
//! follow without re-running the full enumeration or restarting
//! anything. Three pieces:
//!
//! - [`IncrementalMiner`] — the remine engine. Bootstraps a full
//!   harvest of closed groups once, then absorbs row deltas with a
//!   *delta-restricted* frontier search ([`farmer_core::Farmer::
//!   with_frontier`]) that only revisits what a new row can have
//!   changed. Its output is property-tested byte-identical to a cold
//!   mine of the merged dataset.
//! - [`Pipeline`] / [`PipelineHandle`] — the daemon. Rows enter
//!   through the `.fgd` journal (crash-safe, checksummed, append-only
//!   — see `farmer_store::JournalWriter`), either in-process via the
//!   [`farmer_serve::IngestHook`] implementation behind
//!   `POST /v1/admin/ingest`, or from another process running
//!   `farmer ingest`. A background thread polls the journal,
//!   debounces bursts, remines, and atomically publishes.
//! - [`Notify`] — what happens after a publish: swap an in-process
//!   [`farmer_serve::ArtifactHandle`] (`serve --watch`), hit a remote
//!   server's `/v1/admin/reload`, or nothing.
//!
//! The flow, end to end:
//!
//! ```text
//! farmer ingest ──▶ rows.fgd ──▶ poll+debounce ──▶ IncrementalMiner
//! POST /v1/admin/ingest ┘                                │
//!                                                groups (exact)
//!                                                        │
//!        serve ◀── reload ◀── atomic rename ◀── .fgi tmp + fsync
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod daemon;
mod engine;

pub use daemon::{Notify, Pipeline, PipelineConfig, PipelineHandle};
pub use engine::IncrementalMiner;

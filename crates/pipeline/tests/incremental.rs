//! The pinning property of the whole subsystem: an [`IncrementalMiner`]
//! fed row deltas one batch at a time produces **byte-identical**
//! output (canonical order, `dump_groups` text) to a cold full mine of
//! the merged dataset — across both enumeration engines, multiple
//! delta sizes, sequential deltas, and every constraint family the
//! miner supports (support, raw and lift/conviction-tightened
//! confidence, χ², footnote-3 extras, lower bounds on and off).

use farmer_core::{canonical_sort, dump_groups, Engine, ExtraConstraint, Farmer, MiningParams};
use farmer_dataset::{ClassLabel, Dataset, DatasetBuilder};
use farmer_pipeline::IncrementalMiner;
use farmer_support::rng::{Rng, SeedableRng, StdRng};
use rowset::IdList;

const N_ITEMS: u32 = 10;

/// Random transactional rows over a fixed 10-item universe, ~40%
/// density, labels roughly balanced. The first generated row may be
/// empty — the journal and the miner must both cope.
fn random_rows(rng: &mut StdRng, n: usize) -> Vec<(Vec<u32>, ClassLabel)> {
    (0..n)
        .map(|_| {
            let items: Vec<u32> = (0..N_ITEMS).filter(|_| rng.gen_bool(0.4)).collect();
            (items, u32::from(rng.gen_bool(0.45)))
        })
        .collect()
}

fn build(rows: &[(Vec<u32>, ClassLabel)]) -> Dataset {
    let mut b = DatasetBuilder::new(2);
    // Pin the item universe and both classes so appended rows always
    // reference known dictionaries.
    b.add_row(0..N_ITEMS, 0);
    b.add_row([0], 1);
    for (items, label) in rows {
        b.add_row(items.iter().copied(), *label);
    }
    b.build()
}

fn as_delta(rows: &[(Vec<u32>, ClassLabel)]) -> Vec<(IdList, ClassLabel)> {
    rows.iter()
        .map(|(items, label)| (IdList::from_iter(items.iter().copied()), *label))
        .collect()
}

/// Cold reference: full mine of every class on the merged dataset.
fn cold_dump(data: &Dataset, template: &MiningParams, engine: Engine) -> String {
    let mut all = Vec::new();
    for class in 0..data.n_classes() as ClassLabel {
        let mut p = template.clone();
        p.target_class = class;
        all.extend(Farmer::new(p).with_engine(engine).mine(data).groups);
    }
    canonical_sort(&mut all);
    dump_groups(&all)
}

/// Drives one scenario: bootstrap on the base, then apply `deltas`
/// sequentially, comparing against a cold remine after every step.
fn check(seed: u64, template: &MiningParams, engine: Engine, delta_sizes: &[usize], label: &str) {
    let mut rng = StdRng::seed_from_u64(seed);
    let base_rows = random_rows(&mut rng, 14);
    let base = build(&base_rows);
    let mut inc = IncrementalMiner::new(base.clone(), template.clone(), engine, 1);
    let mut merged = base;
    for (step, &size) in delta_sizes.iter().enumerate() {
        let delta_rows = random_rows(&mut rng, size);
        let delta = as_delta(&delta_rows);
        inc.apply_rows(&delta).unwrap();
        merged = merged.appended(&delta).unwrap();
        let incremental = dump_groups(&inc.groups());
        let cold = cold_dump(&merged, template, engine);
        assert_eq!(
            incremental, cold,
            "divergence: seed={seed} engine={engine:?} params={label} step={step} (+{size} rows)"
        );
    }
}

const ENGINES: [Engine; 2] = [Engine::Bitset, Engine::PointerList];
// ≥ 2 delta sizes, applied sequentially: a single row, then a burst.
const DELTAS: [usize; 3] = [1, 4, 7];

#[test]
fn incremental_matches_cold_mine_plain_thresholds() {
    let template = MiningParams::new(0).min_sup(2).lower_bounds(false);
    for engine in ENGINES {
        for seed in 0..4 {
            check(seed, &template, engine, &DELTAS, "min_sup=2");
        }
    }
}

#[test]
fn incremental_matches_cold_mine_with_lower_bounds() {
    let template = MiningParams::new(0).min_sup(2).lower_bounds(true);
    for engine in ENGINES {
        for seed in 10..13 {
            check(seed, &template, engine, &DELTAS, "min_sup=2+lb");
        }
    }
}

#[test]
fn incremental_matches_cold_mine_with_confidence_and_chi() {
    let template = MiningParams::new(0)
        .min_sup(2)
        .min_conf(0.6)
        .min_chi(1.0)
        .lower_bounds(true);
    for engine in ENGINES {
        for seed in 20..23 {
            check(seed, &template, engine, &DELTAS, "conf=0.6,chi=1");
        }
    }
}

#[test]
fn incremental_matches_cold_mine_with_footnote3_extras() {
    // Lift tightens the effective confidence (margin-dependent), gini
    // exercises the convex-measure path.
    let template = MiningParams::new(0)
        .min_sup(2)
        .constrain(ExtraConstraint::MinLift(1.1))
        .constrain(ExtraConstraint::MinGiniGain(0.01))
        .lower_bounds(false);
    for engine in ENGINES {
        for seed in 30..33 {
            check(seed, &template, engine, &DELTAS, "lift=1.1,gini=0.01");
        }
    }
}

#[test]
fn incremental_matches_cold_mine_on_large_relative_deltas() {
    // Deltas comparable to the base size — the frontier restriction
    // must stay exact even when most rows are new.
    let template = MiningParams::new(0).min_sup(2).min_conf(0.5);
    for engine in ENGINES {
        for seed in 40..42 {
            check(seed, &template, engine, &[10, 14], "half-new");
        }
    }
}

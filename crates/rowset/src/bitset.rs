//! Fixed-capacity bitset over row identifiers.

use std::fmt;

const BITS: usize = u64::BITS as usize;

/// A fixed-capacity set of row identifiers `0..capacity`, stored as packed
/// 64-bit words.
///
/// All binary operations (`intersect_with`, `union_with`, …) require both
/// operands to have the same capacity and panic otherwise: mixing sets from
/// different datasets is always a logic error in the miners built on top.
///
/// The capacity is fixed at construction; inserting an id `>= capacity`
/// panics.
///
/// ```
/// use rowset::RowSet;
/// let a = RowSet::from_ids(100, [1, 5, 64]);
/// let b = RowSet::from_ids(100, [5, 64, 99]);
/// assert_eq!(a.intersection(&b).to_vec(), vec![5, 64]);
/// assert_eq!(a.intersection_len(&b), 2);
/// assert!(a.intersection(&b).is_subset(&a));
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct RowSet {
    /// Number of valid ids; bits at positions `>= capacity` are always zero.
    capacity: usize,
    words: Vec<u64>,
}

impl RowSet {
    /// Creates an empty set over the universe `0..capacity`. `O(n)`.
    pub fn empty(capacity: usize) -> Self {
        RowSet {
            capacity,
            words: vec![0; capacity.div_ceil(BITS)],
        }
    }

    /// Creates the full set `{0, …, capacity-1}`. `O(n)`.
    pub fn full(capacity: usize) -> Self {
        let mut s = Self::empty(capacity);
        s.make_full();
        s
    }

    /// Builds a set from an iterator of ids. `O(n + k)`.
    ///
    /// Panics if any id is `>= capacity`.
    pub fn from_ids<I: IntoIterator<Item = usize>>(capacity: usize, ids: I) -> Self {
        let mut s = Self::empty(capacity);
        for id in ids {
            s.insert(id);
        }
        s
    }

    /// The universe size this set was created with.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Widens the universe to `new_capacity`, keeping every current
    /// member. The appended ids `capacity..new_capacity` start absent.
    /// This is how streaming ingest extends base-dataset support sets
    /// when rows arrive: ids are append-only, so growth never remaps.
    /// `O(n/64)`.
    ///
    /// Panics if `new_capacity < capacity` — shrinking would silently
    /// drop members.
    pub fn grow(&mut self, new_capacity: usize) {
        assert!(
            new_capacity >= self.capacity,
            "cannot grow RowSet from capacity {} down to {new_capacity}",
            self.capacity
        );
        self.capacity = new_capacity;
        self.words.resize(new_capacity.div_ceil(BITS), 0);
    }

    /// Number of ids in the set (popcount). `O(n/64)`.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `true` iff the set contains no ids. `O(n/64)`.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Inserts `id`, returning `true` if it was newly added. `O(1)`.
    #[inline]
    pub fn insert(&mut self, id: usize) -> bool {
        assert!(
            id < self.capacity,
            "id {id} out of capacity {}",
            self.capacity
        );
        let (w, b) = (id / BITS, id % BITS);
        let fresh = self.words[w] & (1 << b) == 0;
        self.words[w] |= 1 << b;
        fresh
    }

    /// Removes `id`, returning `true` if it was present. `O(1)`.
    #[inline]
    pub fn remove(&mut self, id: usize) -> bool {
        assert!(
            id < self.capacity,
            "id {id} out of capacity {}",
            self.capacity
        );
        let (w, b) = (id / BITS, id % BITS);
        let present = self.words[w] & (1 << b) != 0;
        self.words[w] &= !(1 << b);
        present
    }

    /// Membership test. `O(1)`. Ids outside the capacity are never members.
    #[inline]
    pub fn contains(&self, id: usize) -> bool {
        if id >= self.capacity {
            return false;
        }
        self.words[id / BITS] & (1 << (id % BITS)) != 0
    }

    /// Removes all ids. `O(n/64)`.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Makes this set the full set `{0, …, capacity-1}` in place, without
    /// allocating. `O(n/64)`.
    pub fn make_full(&mut self) {
        let cap = self.capacity;
        for (i, w) in self.words.iter_mut().enumerate() {
            let lo = i * BITS;
            let hi = (lo + BITS).min(cap);
            *w = if hi - lo == BITS {
                u64::MAX
            } else {
                (1u64 << (hi - lo)) - 1
            };
        }
    }

    /// Overwrites this set with `other`'s contents, without allocating.
    /// `O(n/64)`.
    pub fn copy_from(&mut self, other: &RowSet) {
        self.check(other);
        self.words.copy_from_slice(&other.words);
    }

    /// Removes every id `<= id` in place — the word-parallel form of the
    /// "candidates strictly after `r`" masking the miner's schedulers
    /// need. Ids at or beyond the capacity are fine (the set just ends up
    /// empty). `O(n/64)`.
    pub fn clear_through(&mut self, id: usize) {
        let full_words = (id / BITS).min(self.words.len());
        for w in &mut self.words[..full_words] {
            *w = 0;
        }
        if let Some(w) = self.words.get_mut(full_words) {
            if id / BITS == full_words {
                // keep bits strictly above `id % BITS`
                let b = id % BITS;
                let mask = if b + 1 == BITS {
                    0
                } else {
                    !((1u64 << (b + 1)) - 1)
                };
                *w &= mask;
            }
        }
    }

    /// The fused per-tuple kernel of the miner's `inspect` scan: in one
    /// sweep over the words, folds `tuple` into the running intersection
    /// `z` (`z &= t`) and the running occurrence union `occur`
    /// (`occur |= t`), and returns `|tuple ∩ e_p|`. Equivalent to — and
    /// property-tested against — the three separate passes, at a third of
    /// the memory traffic. `O(n/64)`.
    pub fn fused_scan(z: &mut RowSet, occur: &mut RowSet, tuple: &RowSet, e_p: &RowSet) -> usize {
        z.check(tuple);
        occur.check(tuple);
        e_p.check(tuple);
        let mut ep_count = 0usize;
        for (((zw, ow), &tw), &ew) in z
            .words
            .iter_mut()
            .zip(occur.words.iter_mut())
            .zip(&tuple.words)
            .zip(&e_p.words)
        {
            *zw &= tw;
            *ow |= tw;
            ep_count += (tw & ew).count_ones() as usize;
        }
        ep_count
    }

    /// Writes `self ∩ other` into `out` without allocating. `O(n/64)`.
    pub fn intersection_into(&self, other: &RowSet, out: &mut RowSet) {
        self.check(other);
        self.check(out);
        for ((o, &a), &b) in out.words.iter_mut().zip(&self.words).zip(&other.words) {
            *o = a & b;
        }
    }

    /// Writes `self ∪ other` into `out` without allocating. `O(n/64)`.
    pub fn union_into(&self, other: &RowSet, out: &mut RowSet) {
        self.check(other);
        self.check(out);
        for ((o, &a), &b) in out.words.iter_mut().zip(&self.words).zip(&other.words) {
            *o = a | b;
        }
    }

    /// Writes `self \ other` into `out` without allocating. `O(n/64)`.
    pub fn difference_into(&self, other: &RowSet, out: &mut RowSet) {
        self.check(other);
        self.check(out);
        for ((o, &a), &b) in out.words.iter_mut().zip(&self.words).zip(&other.words) {
            *o = a & !b;
        }
    }

    /// In-place intersection with `other`. `O(n/64)`.
    pub fn intersect_with(&mut self, other: &RowSet) {
        self.check(other);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// In-place union with `other`. `O(n/64)`.
    pub fn union_with(&mut self, other: &RowSet) {
        self.check(other);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place difference: removes every id of `other`. `O(n/64)`.
    pub fn difference_with(&mut self, other: &RowSet) {
        self.check(other);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// Returns `self ∩ other` as a new set. `O(n/64)`.
    pub fn intersection(&self, other: &RowSet) -> RowSet {
        let mut out = self.clone();
        out.intersect_with(other);
        out
    }

    /// Returns `self ∪ other` as a new set. `O(n/64)`.
    pub fn union(&self, other: &RowSet) -> RowSet {
        let mut out = self.clone();
        out.union_with(other);
        out
    }

    /// Returns `self \ other` as a new set. `O(n/64)`.
    pub fn difference(&self, other: &RowSet) -> RowSet {
        let mut out = self.clone();
        out.difference_with(other);
        out
    }

    /// `|self ∩ other|` without allocating. `O(n/64)`.
    pub fn intersection_len(&self, other: &RowSet) -> usize {
        self.check(other);
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// `true` iff every id of `self` is in `other`. Exits at the first
    /// word that witnesses a non-member, so mismatches near the front of
    /// the universe cost `O(1)`. `O(n/64)` worst case.
    pub fn is_subset(&self, other: &RowSet) -> bool {
        self.check(other);
        for (a, b) in self.words.iter().zip(&other.words) {
            if a & !b != 0 {
                return false;
            }
        }
        true
    }

    /// `true` iff every id of `other` is in `self`. `O(n/64)`.
    pub fn is_superset(&self, other: &RowSet) -> bool {
        other.is_subset(self)
    }

    /// `true` iff the sets share no id. `O(n/64)`.
    pub fn is_disjoint(&self, other: &RowSet) -> bool {
        self.check(other);
        self.words.iter().zip(&other.words).all(|(a, b)| a & b == 0)
    }

    /// Smallest id in the set, if any. `O(n/64)`.
    pub fn first(&self) -> Option<usize> {
        for (i, &w) in self.words.iter().enumerate() {
            if w != 0 {
                return Some(i * BITS + w.trailing_zeros() as usize);
            }
        }
        None
    }

    /// Largest id in the set, if any. `O(n/64)`.
    pub fn last(&self) -> Option<usize> {
        for (i, &w) in self.words.iter().enumerate().rev() {
            if w != 0 {
                return Some(i * BITS + (BITS - 1 - w.leading_zeros() as usize));
            }
        }
        None
    }

    /// Iterates over the ids in ascending order.
    pub fn iter(&self) -> RowSetIter<'_> {
        RowSetIter {
            set: self,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// Collects the ids into a `Vec`, ascending. `O(n/64 + k)`.
    pub fn to_vec(&self) -> Vec<usize> {
        self.iter().collect()
    }

    /// The packed 64-bit words backing the set, little-end-first: bit
    /// `b` of `words()[w]` is row id `w * 64 + b`. This is the set's
    /// canonical serialized form — `from_words` round-trips it exactly,
    /// and the artifact store writes these words verbatim.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Rebuilds a set from its [`words`](Self::words) representation,
    /// validating the two invariants every other method relies on: the
    /// word count matches the capacity, and no bit at position
    /// `>= capacity` is set. Both failures are errors, not panics —
    /// this is the deserialization entry point for untrusted bytes.
    pub fn from_words(capacity: usize, words: Vec<u64>) -> Result<Self, FromWordsError> {
        if words.len() != capacity.div_ceil(BITS) {
            return Err(FromWordsError::WrongWordCount {
                capacity,
                expected: capacity.div_ceil(BITS),
                found: words.len(),
            });
        }
        if let Some(last) = words.last() {
            let used = capacity - (words.len() - 1) * BITS;
            if used < BITS && *last >> used != 0 {
                return Err(FromWordsError::TailBitsSet { capacity });
            }
        }
        Ok(RowSet { capacity, words })
    }

    /// Iterates over maximal runs of consecutive set ids, ascending,
    /// as `(start, len)` pairs with `len >= 1`.
    ///
    /// Support sets mined from sorted datasets are run-heavy — rows of
    /// one class cluster into contiguous id ranges — which is what the
    /// `.fgi` v2 run/verbatim hybrid rowset encoding exploits. The
    /// scan is word-level: each `next()` does two
    /// find-first-bit sweeps, not a per-bit walk.
    pub fn runs(&self) -> RowSetRuns<'_> {
        RowSetRuns { set: self, pos: 0 }
    }

    /// First bit at position `>= from` whose value matches
    /// `target_set`, confined to `0..capacity`.
    fn find_bit(&self, mut from: usize, target_set: bool) -> Option<usize> {
        while from < self.capacity {
            let w = from / BITS;
            let mut word = if target_set {
                self.words[w]
            } else {
                !self.words[w]
            };
            word &= !0u64 << (from % BITS);
            if word != 0 {
                let bit = w * BITS + word.trailing_zeros() as usize;
                return (bit < self.capacity).then_some(bit);
            }
            from = (w + 1) * BITS;
        }
        None
    }

    /// Serializes as a JSON array of ascending row ids, e.g. `[0,3,7]`.
    /// Kept dependency-free so any JSON layer can embed it verbatim.
    pub fn to_json(&self) -> String {
        let mut out = String::from("[");
        for (i, id) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&id.to_string());
        }
        out.push(']');
        out
    }

    #[inline]
    fn check(&self, other: &RowSet) {
        assert_eq!(
            self.capacity, other.capacity,
            "RowSet capacity mismatch: {} vs {}",
            self.capacity, other.capacity
        );
    }
}

/// Iterator over maximal set-bit runs; see [`RowSet::runs`].
pub struct RowSetRuns<'a> {
    set: &'a RowSet,
    pos: usize,
}

impl Iterator for RowSetRuns<'_> {
    /// `(first id in the run, number of consecutive ids)`.
    type Item = (usize, usize);

    fn next(&mut self) -> Option<(usize, usize)> {
        let start = self.set.find_bit(self.pos, true)?;
        let end = self.set.find_bit(start, false).unwrap_or(self.set.capacity);
        self.pos = end;
        Some((start, end - start))
    }
}

/// Why [`RowSet::from_words`] rejected a serialized set.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FromWordsError {
    /// The word vector's length does not match the declared capacity.
    WrongWordCount {
        /// The declared universe size.
        capacity: usize,
        /// `capacity.div_ceil(64)`.
        expected: usize,
        /// The length actually supplied.
        found: usize,
    },
    /// A bit at position `>= capacity` was set in the last word.
    TailBitsSet {
        /// The declared universe size.
        capacity: usize,
    },
}

impl fmt::Display for FromWordsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FromWordsError::WrongWordCount {
                capacity,
                expected,
                found,
            } => write!(f, "capacity {capacity} needs {expected} words, got {found}"),
            FromWordsError::TailBitsSet { capacity } => {
                write!(f, "bit set beyond capacity {capacity} in last word")
            }
        }
    }
}

impl std::error::Error for FromWordsError {}

impl fmt::Debug for RowSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl<'a> IntoIterator for &'a RowSet {
    type Item = usize;
    type IntoIter = RowSetIter<'a>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl Extend<usize> for RowSet {
    fn extend<I: IntoIterator<Item = usize>>(&mut self, iter: I) {
        for id in iter {
            self.insert(id);
        }
    }
}

/// Ascending iterator over the ids of a [`RowSet`].
pub struct RowSetIter<'a> {
    set: &'a RowSet,
    word_idx: usize,
    current: u64,
}

impl Iterator for RowSetIter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.word_idx * BITS + bit);
            }
            self.word_idx += 1;
            if self.word_idx >= self.set.words.len() {
                return None;
            }
            self.current = self.set.words[self.word_idx];
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining: usize = self
            .set
            .words
            .get(self.word_idx + 1..)
            .unwrap_or(&[])
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum::<usize>()
            + self.current.count_ones() as usize;
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for RowSetIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_full() {
        let e = RowSet::empty(70);
        assert_eq!(e.len(), 0);
        assert!(e.is_empty());
        assert_eq!(e.capacity(), 70);

        let f = RowSet::full(70);
        assert_eq!(f.len(), 70);
        assert!(f.contains(0));
        assert!(f.contains(69));
        assert!(!f.contains(70));
        assert_eq!(f.to_vec(), (0..70).collect::<Vec<_>>());
    }

    #[test]
    fn full_on_word_boundary() {
        for cap in [0, 1, 63, 64, 65, 128] {
            let f = RowSet::full(cap);
            assert_eq!(f.len(), cap, "cap={cap}");
            assert_eq!(f.to_vec(), (0..cap).collect::<Vec<_>>());
        }
    }

    #[test]
    fn runs_on_edge_shapes() {
        assert_eq!(RowSet::empty(100).runs().count(), 0);
        assert_eq!(RowSet::empty(0).runs().count(), 0);
        for cap in [1, 63, 64, 65, 128, 129] {
            let f = RowSet::full(cap);
            assert_eq!(f.runs().collect::<Vec<_>>(), vec![(0, cap)], "cap={cap}");
        }
        // isolated bits, including both sides of a word boundary
        let s = RowSet::from_ids(130, [0, 2, 63, 64, 65, 129]);
        assert_eq!(
            s.runs().collect::<Vec<_>>(),
            vec![(0, 1), (2, 1), (63, 3), (129, 1)]
        );
        // a run spanning three words
        let t = RowSet::from_ids(257, 60..200);
        assert_eq!(t.runs().collect::<Vec<_>>(), vec![(60, 140)]);
    }

    #[test]
    fn runs_reconstruct_the_set() {
        let s = RowSet::from_ids(257, (0..257).filter(|i| i % 7 < 3));
        let mut back = RowSet::empty(257);
        for (start, len) in s.runs() {
            assert!(len >= 1);
            for id in start..start + len {
                assert!(back.insert(id), "runs overlapped at {id}");
            }
        }
        assert_eq!(back, s);
    }

    #[test]
    fn insert_remove_contains() {
        let mut s = RowSet::empty(100);
        assert!(s.insert(5));
        assert!(!s.insert(5));
        assert!(s.insert(64));
        assert!(s.contains(5));
        assert!(s.contains(64));
        assert!(!s.contains(6));
        assert_eq!(s.len(), 2);
        assert!(s.remove(5));
        assert!(!s.remove(5));
        assert_eq!(s.len(), 1);
    }

    #[test]
    #[should_panic(expected = "out of capacity")]
    fn insert_out_of_range_panics() {
        RowSet::empty(10).insert(10);
    }

    #[test]
    fn set_algebra() {
        let a = RowSet::from_ids(130, [1, 2, 3, 64, 65, 129]);
        let b = RowSet::from_ids(130, [2, 3, 4, 65, 128]);
        assert_eq!(a.intersection(&b).to_vec(), vec![2, 3, 65]);
        assert_eq!(a.union(&b).to_vec(), vec![1, 2, 3, 4, 64, 65, 128, 129]);
        assert_eq!(a.difference(&b).to_vec(), vec![1, 64, 129]);
        assert_eq!(a.intersection_len(&b), 3);
        assert!(a.intersection(&b).is_subset(&a));
        assert!(a.union(&b).is_superset(&a));
        assert!(!a.is_disjoint(&b));
        assert!(a.difference(&b).is_disjoint(&b));
    }

    #[test]
    fn subset_reflexive_and_empty() {
        let a = RowSet::from_ids(40, [0, 39]);
        let e = RowSet::empty(40);
        assert!(a.is_subset(&a));
        assert!(e.is_subset(&a));
        assert!(!a.is_subset(&e));
    }

    #[test]
    #[should_panic(expected = "capacity mismatch")]
    fn mixed_capacity_panics() {
        let a = RowSet::empty(10);
        let b = RowSet::empty(11);
        a.is_subset(&b);
    }

    #[test]
    fn first_last_iter() {
        let s = RowSet::from_ids(200, [7, 63, 64, 199]);
        assert_eq!(s.first(), Some(7));
        assert_eq!(s.last(), Some(199));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![7, 63, 64, 199]);
        assert_eq!(s.iter().len(), 4);
        assert_eq!(RowSet::empty(5).first(), None);
        assert_eq!(RowSet::empty(5).last(), None);
    }

    #[test]
    fn extend_and_clear() {
        let mut s = RowSet::empty(10);
        s.extend([1, 3, 5]);
        assert_eq!(s.len(), 3);
        s.clear();
        assert!(s.is_empty());
    }

    #[test]
    fn debug_format() {
        let s = RowSet::from_ids(10, [1, 4]);
        assert_eq!(format!("{s:?}"), "{1, 4}");
    }

    #[test]
    fn words_round_trip() {
        for cap in [0, 1, 63, 64, 65, 130] {
            let s = RowSet::from_ids(cap, (0..cap).step_by(3));
            let back = RowSet::from_words(cap, s.words().to_vec()).unwrap();
            assert_eq!(back, s, "cap={cap}");
            assert_eq!(back.capacity(), cap);
        }
    }

    #[test]
    fn from_words_rejects_bad_shapes() {
        assert_eq!(
            RowSet::from_words(100, vec![0; 3]),
            Err(FromWordsError::WrongWordCount {
                capacity: 100,
                expected: 2,
                found: 3
            })
        );
        // capacity 65: the last word holds id 64 only
        assert!(RowSet::from_words(65, vec![0, 0b1]).is_ok());
        assert_eq!(
            RowSet::from_words(65, vec![0, 0b10]),
            Err(FromWordsError::TailBitsSet { capacity: 65 })
        );
        // exact multiple of 64: the whole last word is valid
        assert!(RowSet::from_words(128, vec![u64::MAX, u64::MAX]).is_ok());
        let e = RowSet::from_words(10, vec![1 << 10]).unwrap_err();
        assert!(e.to_string().contains("capacity 10"), "{e}");
    }

    #[test]
    fn grow_keeps_members_and_widens() {
        for (cap, new_cap) in [(0, 5), (10, 64), (63, 64), (64, 65), (65, 200), (70, 70)] {
            let mut s = RowSet::from_ids(cap, (0..cap).step_by(3));
            let before = s.to_vec();
            s.grow(new_cap);
            assert_eq!(s.capacity(), new_cap);
            assert_eq!(s.to_vec(), before, "{cap}->{new_cap}");
            assert!(!s.contains(new_cap));
            if new_cap > 0 {
                s.insert(new_cap - 1);
                assert!(s.contains(new_cap - 1));
            }
            // binary ops accept same-capacity peers after growth
            assert!(RowSet::empty(new_cap).is_subset(&s));
        }
    }

    #[test]
    #[should_panic(expected = "cannot grow")]
    fn grow_rejects_shrinking() {
        RowSet::empty(10).grow(9);
    }

    #[test]
    fn zero_capacity() {
        let s = RowSet::empty(0);
        assert!(s.is_empty());
        assert_eq!(s.iter().count(), 0);
        assert_eq!(RowSet::full(0).len(), 0);
    }
}

//! Sorted id lists with merge-based set operations.

use std::fmt;

/// A sorted, duplicate-free list of `u32` identifiers.
///
/// Used where the universe is wide but the sets are small relative to it —
/// itemsets and tidsets in column-enumeration miners. All binary
/// operations are linear merges over the two operands, so their cost is
/// `O(|a| + |b|)` regardless of the universe size, unlike [`crate::RowSet`]
/// whose cost scales with its capacity.
#[derive(Clone, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct IdList {
    ids: Vec<u32>,
}

impl IdList {
    /// The empty list.
    pub fn new() -> Self {
        IdList { ids: Vec::new() }
    }

    /// Builds a list from any iterator; sorts and deduplicates. `O(k log k)`.
    ///
    /// Also available through the `FromIterator` impl / `collect()`.
    #[allow(clippy::should_implement_trait)]
    pub fn from_iter<I: IntoIterator<Item = u32>>(iter: I) -> Self {
        let mut ids: Vec<u32> = iter.into_iter().collect();
        ids.sort_unstable();
        ids.dedup();
        IdList { ids }
    }

    /// Builds a list from a vector that is already sorted and deduplicated.
    ///
    /// Panics in debug builds if the invariant does not hold.
    pub fn from_sorted(ids: Vec<u32>) -> Self {
        debug_assert!(
            ids.windows(2).all(|w| w[0] < w[1]),
            "ids must be strictly ascending"
        );
        IdList { ids }
    }

    /// Number of ids. `O(1)`.
    #[inline]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// `true` iff the list is empty. `O(1)`.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The ids as a sorted slice.
    #[inline]
    pub fn as_slice(&self) -> &[u32] {
        &self.ids
    }

    /// Serializes as a JSON array of ascending ids, e.g. `[0,3,7]`.
    /// Kept dependency-free so any JSON layer can embed it verbatim.
    pub fn to_json(&self) -> String {
        let mut out = String::from("[");
        for (i, id) in self.ids.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&id.to_string());
        }
        out.push(']');
        out
    }

    /// Membership test by binary search. `O(log k)`.
    pub fn contains(&self, id: u32) -> bool {
        self.ids.binary_search(&id).is_ok()
    }

    /// Inserts an id, keeping the list sorted. `O(k)` worst case.
    pub fn insert(&mut self, id: u32) -> bool {
        match self.ids.binary_search(&id) {
            Ok(_) => false,
            Err(pos) => {
                self.ids.insert(pos, id);
                true
            }
        }
    }

    /// Merge-intersection. `O(|a| + |b|)`.
    pub fn intersection(&self, other: &IdList) -> IdList {
        let (mut i, mut j) = (0, 0);
        let mut out = Vec::with_capacity(self.len().min(other.len()));
        while i < self.ids.len() && j < other.ids.len() {
            match self.ids[i].cmp(&other.ids[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(self.ids[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        IdList { ids: out }
    }

    /// Merge-union. `O(|a| + |b|)`.
    pub fn union(&self, other: &IdList) -> IdList {
        let (mut i, mut j) = (0, 0);
        let mut out = Vec::with_capacity(self.len() + other.len());
        while i < self.ids.len() && j < other.ids.len() {
            match self.ids[i].cmp(&other.ids[j]) {
                std::cmp::Ordering::Less => {
                    out.push(self.ids[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(other.ids[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push(self.ids[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&self.ids[i..]);
        out.extend_from_slice(&other.ids[j..]);
        IdList { ids: out }
    }

    /// Merge-difference `self \ other`. `O(|a| + |b|)`.
    pub fn difference(&self, other: &IdList) -> IdList {
        let (mut i, mut j) = (0, 0);
        let mut out = Vec::with_capacity(self.len());
        while i < self.ids.len() && j < other.ids.len() {
            match self.ids[i].cmp(&other.ids[j]) {
                std::cmp::Ordering::Less => {
                    out.push(self.ids[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&self.ids[i..]);
        IdList { ids: out }
    }

    /// `|self ∩ other|` without allocating. `O(|a| + |b|)`.
    pub fn intersection_len(&self, other: &IdList) -> usize {
        let (mut i, mut j, mut n) = (0, 0, 0);
        while i < self.ids.len() && j < other.ids.len() {
            match self.ids[i].cmp(&other.ids[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    n += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        n
    }

    /// `true` iff every id of `self` is in `other`. `O(|a| + |b|)`.
    pub fn is_subset(&self, other: &IdList) -> bool {
        if self.len() > other.len() {
            return false;
        }
        let mut j = 0;
        'outer: for &a in &self.ids {
            while j < other.ids.len() {
                match other.ids[j].cmp(&a) {
                    std::cmp::Ordering::Less => j += 1,
                    std::cmp::Ordering::Equal => {
                        j += 1;
                        continue 'outer;
                    }
                    std::cmp::Ordering::Greater => return false,
                }
            }
            return false;
        }
        true
    }

    /// `true` iff the lists share no id. `O(|a| + |b|)`.
    pub fn is_disjoint(&self, other: &IdList) -> bool {
        self.intersection_len(other) == 0
    }

    /// Iterates over the ids in ascending order.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = u32> + '_ {
        self.ids.iter().copied()
    }

    /// Consumes the list, returning the sorted id vector.
    pub fn into_vec(self) -> Vec<u32> {
        self.ids
    }
}

impl FromIterator<u32> for IdList {
    fn from_iter<I: IntoIterator<Item = u32>>(iter: I) -> Self {
        IdList::from_iter(iter)
    }
}

impl fmt::Debug for IdList {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn il(v: &[u32]) -> IdList {
        IdList::from_iter(v.iter().copied())
    }

    #[test]
    fn from_iter_sorts_and_dedups() {
        assert_eq!(il(&[3, 1, 2, 3, 1]).as_slice(), &[1, 2, 3]);
    }

    #[test]
    fn intersection_union_difference() {
        let a = il(&[1, 3, 5, 7]);
        let b = il(&[3, 4, 5, 8]);
        assert_eq!(a.intersection(&b).as_slice(), &[3, 5]);
        assert_eq!(a.union(&b).as_slice(), &[1, 3, 4, 5, 7, 8]);
        assert_eq!(a.difference(&b).as_slice(), &[1, 7]);
        assert_eq!(b.difference(&a).as_slice(), &[4, 8]);
        assert_eq!(a.intersection_len(&b), 2);
    }

    #[test]
    fn subset_and_disjoint() {
        let a = il(&[2, 4]);
        let b = il(&[1, 2, 3, 4]);
        assert!(a.is_subset(&b));
        assert!(!b.is_subset(&a));
        assert!(a.is_subset(&a));
        assert!(IdList::new().is_subset(&a));
        assert!(il(&[5]).is_disjoint(&a));
        assert!(!a.is_disjoint(&b));
    }

    #[test]
    fn insert_and_contains() {
        let mut a = il(&[1, 5]);
        assert!(a.insert(3));
        assert!(!a.insert(3));
        assert_eq!(a.as_slice(), &[1, 3, 5]);
        assert!(a.contains(3));
        assert!(!a.contains(4));
    }

    #[test]
    fn empty_cases() {
        let e = IdList::new();
        let a = il(&[1]);
        assert!(e.is_empty());
        assert_eq!(e.intersection(&a).len(), 0);
        assert_eq!(e.union(&a), a);
        assert_eq!(a.difference(&e), a);
        assert!(e.is_disjoint(&a));
    }
}

//! Compact set representations over small integer identifiers.
//!
//! Row-enumeration miners such as FARMER and CARPENTER, and vertical
//! column-enumeration miners such as CHARM, spend almost all of their time
//! intersecting, unioning, and subset-testing sets of row identifiers.
//! Microarray datasets have at most a few thousand rows, so a fixed-capacity
//! bitset ([`RowSet`]) with word-parallel operations is the natural
//! representation for the row side, while sorted id lists ([`IdList`]) with
//! merge-based operations serve the (much wider) item side where sets are
//! sparse relative to their universe.
//!
//! Both types are deliberately simple value types: cloning is explicit,
//! there is no interior mutability, and every operation documents its
//! complexity in terms of the capacity `n` (for [`RowSet`]) or the lengths
//! of the operands (for [`IdList`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bitset;
mod idlist;

pub use bitset::{FromWordsError, RowSet, RowSetIter, RowSetRuns};
pub use idlist::IdList;

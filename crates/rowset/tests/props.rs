//! Property-based tests: RowSet and IdList must agree with a model based on
//! `std::collections::BTreeSet`.

use farmer_support::check::prelude::*;
use rowset::{IdList, RowSet};
use std::collections::BTreeSet;

const CAP: usize = 257; // deliberately not a multiple of 64

fn ids() -> impl Strategy<Value = Vec<usize>> {
    collection::vec(0..CAP, 0..64)
}

fn model(v: &[usize]) -> BTreeSet<usize> {
    v.iter().copied().collect()
}

/// A random capacity — deliberately covering the word boundaries 63/64/65
/// and 127/128/129 — plus four id sets drawn from it.
#[allow(clippy::type_complexity)]
fn caps_and_sets() -> impl Strategy<Value = (usize, Vec<usize>, Vec<usize>, Vec<usize>, Vec<usize>)>
{
    select(vec![1usize, 7, 63, 64, 65, 127, 128, 129, CAP]).prop_flat_map(|cap| {
        (
            just(cap),
            collection::vec(0..cap, 0..64),
            collection::vec(0..cap, 0..64),
            collection::vec(0..cap, 0..64),
            collection::vec(0..cap, 0..64),
        )
    })
}

check! {
    #[test]
    fn rowset_roundtrip(v in ids()) {
        let s = RowSet::from_ids(CAP, v.iter().copied());
        let m = model(&v);
        prop_assert_eq!(s.to_vec(), m.iter().copied().collect::<Vec<_>>());
        prop_assert_eq!(s.len(), m.len());
        prop_assert_eq!(s.first(), m.iter().next().copied());
        prop_assert_eq!(s.last(), m.iter().next_back().copied());
    }

    #[test]
    fn rowset_algebra_matches_model(a in ids(), b in ids()) {
        let (sa, sb) = (RowSet::from_ids(CAP, a.iter().copied()), RowSet::from_ids(CAP, b.iter().copied()));
        let (ma, mb) = (model(&a), model(&b));
        prop_assert_eq!(sa.intersection(&sb).to_vec(), ma.intersection(&mb).copied().collect::<Vec<_>>());
        prop_assert_eq!(sa.union(&sb).to_vec(), ma.union(&mb).copied().collect::<Vec<_>>());
        prop_assert_eq!(sa.difference(&sb).to_vec(), ma.difference(&mb).copied().collect::<Vec<_>>());
        prop_assert_eq!(sa.intersection_len(&sb), ma.intersection(&mb).count());
        prop_assert_eq!(sa.is_subset(&sb), ma.is_subset(&mb));
        prop_assert_eq!(sa.is_disjoint(&sb), ma.is_disjoint(&mb));
    }

    #[test]
    fn rowset_laws(a in ids(), b in ids(), c in ids()) {
        let sa = RowSet::from_ids(CAP, a.iter().copied());
        let sb = RowSet::from_ids(CAP, b.iter().copied());
        let sc = RowSet::from_ids(CAP, c.iter().copied());
        // commutativity
        prop_assert_eq!(sa.intersection(&sb), sb.intersection(&sa));
        prop_assert_eq!(sa.union(&sb), sb.union(&sa));
        // associativity
        prop_assert_eq!(sa.intersection(&sb).intersection(&sc), sa.intersection(&sb.intersection(&sc)));
        // distributivity
        prop_assert_eq!(
            sa.intersection(&sb.union(&sc)),
            sa.intersection(&sb).union(&sa.intersection(&sc))
        );
        // De Morgan via the full set
        let full = RowSet::full(CAP);
        let not = |s: &RowSet| full.difference(s);
        prop_assert_eq!(not(&sa.union(&sb)), not(&sa).intersection(&not(&sb)));
    }

    #[test]
    fn idlist_matches_model(a in ids(), b in ids()) {
        let la = IdList::from_iter(a.iter().map(|&x| x as u32));
        let lb = IdList::from_iter(b.iter().map(|&x| x as u32));
        let ma: BTreeSet<u32> = a.iter().map(|&x| x as u32).collect();
        let mb: BTreeSet<u32> = b.iter().map(|&x| x as u32).collect();
        prop_assert_eq!(la.intersection(&lb).into_vec(), ma.intersection(&mb).copied().collect::<Vec<_>>());
        prop_assert_eq!(la.union(&lb).into_vec(), ma.union(&mb).copied().collect::<Vec<_>>());
        prop_assert_eq!(la.difference(&lb).into_vec(), ma.difference(&mb).copied().collect::<Vec<_>>());
        prop_assert_eq!(la.is_subset(&lb), ma.is_subset(&mb));
        prop_assert_eq!(la.intersection_len(&lb), ma.intersection(&mb).count());
    }

    #[test]
    fn rowset_idlist_agree(a in ids(), b in ids()) {
        let sa = RowSet::from_ids(CAP, a.iter().copied());
        let sb = RowSet::from_ids(CAP, b.iter().copied());
        let la = IdList::from_iter(a.iter().map(|&x| x as u32));
        let lb = IdList::from_iter(b.iter().map(|&x| x as u32));
        let as_list = |s: &RowSet| IdList::from_iter(s.iter().map(|x| x as u32));
        prop_assert_eq!(as_list(&sa.intersection(&sb)), la.intersection(&lb));
        prop_assert_eq!(as_list(&sa.union(&sb)), la.union(&lb));
        prop_assert_eq!(as_list(&sa.difference(&sb)), la.difference(&lb));
    }

    #[test]
    fn fused_scan_matches_naive_ops(g in caps_and_sets()) {
        let (cap, a, b, c, d) = g;
        // z/occur accumulators, tuple, e_p — all over the same random capacity
        let mut z = RowSet::from_ids(cap, a.iter().copied());
        let mut occur = RowSet::from_ids(cap, b.iter().copied());
        let tuple = RowSet::from_ids(cap, c.iter().copied());
        let e_p = RowSet::from_ids(cap, d.iter().copied());
        let want_z = z.intersection(&tuple);
        let want_occur = occur.union(&tuple);
        let want_count = tuple.intersection_len(&e_p);
        let got = RowSet::fused_scan(&mut z, &mut occur, &tuple, &e_p);
        prop_assert_eq!(&z, &want_z);
        prop_assert_eq!(&occur, &want_occur);
        prop_assert_eq!(got, want_count);
    }

    #[test]
    fn into_variants_match_allocating_ops(g in caps_and_sets()) {
        let (cap, a, b, dirty, _) = g;
        let sa = RowSet::from_ids(cap, a.iter().copied());
        let sb = RowSet::from_ids(cap, b.iter().copied());
        // out starts dirty: the kernels must fully overwrite it
        let mut out = RowSet::from_ids(cap, dirty.iter().copied());
        sa.intersection_into(&sb, &mut out);
        prop_assert_eq!(&out, &sa.intersection(&sb));
        sa.union_into(&sb, &mut out);
        prop_assert_eq!(&out, &sa.union(&sb));
        sa.difference_into(&sb, &mut out);
        prop_assert_eq!(&out, &sa.difference(&sb));
        out.copy_from(&sa);
        prop_assert_eq!(&out, &sa);
        out.make_full();
        prop_assert_eq!(&out, &RowSet::full(cap));
    }

    #[test]
    fn clear_through_keeps_strictly_larger_ids(g in caps_and_sets(), cut in 0..2 * CAP) {
        let (cap, a, _, _, _) = g;
        let mut s = RowSet::from_ids(cap, a.iter().copied());
        s.clear_through(cut);
        let want: Vec<usize> = model(&a).into_iter().filter(|&x| x > cut).collect();
        prop_assert_eq!(s.to_vec(), want);
    }

    #[test]
    fn words_round_trip_any_capacity(g in caps_and_sets()) {
        let (cap, a, _, _, _) = g;
        let s = RowSet::from_ids(cap, a.iter().copied());
        let back = RowSet::from_words(cap, s.words().to_vec()).unwrap();
        prop_assert_eq!(&back, &s);
        // the serialized form is canonical: equal sets, equal words
        let t = RowSet::from_ids(cap, model(&a));
        prop_assert_eq!(t.words(), s.words());
        // and a word with a bit past the capacity never deserializes
        if cap % 64 != 0 {
            let mut bad = s.words().to_vec();
            let last = bad.len() - 1;
            bad[last] |= 1u64 << (cap % 64);
            prop_assert!(RowSet::from_words(cap, bad).is_err());
        }
    }

    #[test]
    fn insert_remove_consistent(v in ids(), x in 0..CAP) {
        let mut s = RowSet::from_ids(CAP, v.iter().copied());
        let before = s.contains(x);
        prop_assert_eq!(s.insert(x), !before);
        prop_assert!(s.contains(x));
        prop_assert!(s.remove(x));
        prop_assert!(!s.contains(x));
        prop_assert!(!s.remove(x));
    }

    /// `runs()` must partition the sorted id sequence into maximal
    /// consecutive blocks — same answer as the obvious per-id scan.
    #[test]
    fn runs_match_naive_grouping(caps in caps_and_sets()) {
        let (cap, v, _, _, _) = caps;
        let s = RowSet::from_ids(cap, v.iter().copied());
        let mut naive: Vec<(usize, usize)> = Vec::new();
        for id in s.iter() {
            match naive.last_mut() {
                Some((start, len)) if *start + *len == id => *len += 1,
                _ => naive.push((id, 1)),
            }
        }
        prop_assert_eq!(s.runs().collect::<Vec<_>>(), naive);
    }
}

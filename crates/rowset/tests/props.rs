//! Property-based tests: RowSet and IdList must agree with a model based on
//! `std::collections::BTreeSet`.

use farmer_support::check::prelude::*;
use rowset::{IdList, RowSet};
use std::collections::BTreeSet;

const CAP: usize = 257; // deliberately not a multiple of 64

fn ids() -> impl Strategy<Value = Vec<usize>> {
    collection::vec(0..CAP, 0..64)
}

fn model(v: &[usize]) -> BTreeSet<usize> {
    v.iter().copied().collect()
}

check! {
    #[test]
    fn rowset_roundtrip(v in ids()) {
        let s = RowSet::from_ids(CAP, v.iter().copied());
        let m = model(&v);
        prop_assert_eq!(s.to_vec(), m.iter().copied().collect::<Vec<_>>());
        prop_assert_eq!(s.len(), m.len());
        prop_assert_eq!(s.first(), m.iter().next().copied());
        prop_assert_eq!(s.last(), m.iter().next_back().copied());
    }

    #[test]
    fn rowset_algebra_matches_model(a in ids(), b in ids()) {
        let (sa, sb) = (RowSet::from_ids(CAP, a.iter().copied()), RowSet::from_ids(CAP, b.iter().copied()));
        let (ma, mb) = (model(&a), model(&b));
        prop_assert_eq!(sa.intersection(&sb).to_vec(), ma.intersection(&mb).copied().collect::<Vec<_>>());
        prop_assert_eq!(sa.union(&sb).to_vec(), ma.union(&mb).copied().collect::<Vec<_>>());
        prop_assert_eq!(sa.difference(&sb).to_vec(), ma.difference(&mb).copied().collect::<Vec<_>>());
        prop_assert_eq!(sa.intersection_len(&sb), ma.intersection(&mb).count());
        prop_assert_eq!(sa.is_subset(&sb), ma.is_subset(&mb));
        prop_assert_eq!(sa.is_disjoint(&sb), ma.is_disjoint(&mb));
    }

    #[test]
    fn rowset_laws(a in ids(), b in ids(), c in ids()) {
        let sa = RowSet::from_ids(CAP, a.iter().copied());
        let sb = RowSet::from_ids(CAP, b.iter().copied());
        let sc = RowSet::from_ids(CAP, c.iter().copied());
        // commutativity
        prop_assert_eq!(sa.intersection(&sb), sb.intersection(&sa));
        prop_assert_eq!(sa.union(&sb), sb.union(&sa));
        // associativity
        prop_assert_eq!(sa.intersection(&sb).intersection(&sc), sa.intersection(&sb.intersection(&sc)));
        // distributivity
        prop_assert_eq!(
            sa.intersection(&sb.union(&sc)),
            sa.intersection(&sb).union(&sa.intersection(&sc))
        );
        // De Morgan via the full set
        let full = RowSet::full(CAP);
        let not = |s: &RowSet| full.difference(s);
        prop_assert_eq!(not(&sa.union(&sb)), not(&sa).intersection(&not(&sb)));
    }

    #[test]
    fn idlist_matches_model(a in ids(), b in ids()) {
        let la = IdList::from_iter(a.iter().map(|&x| x as u32));
        let lb = IdList::from_iter(b.iter().map(|&x| x as u32));
        let ma: BTreeSet<u32> = a.iter().map(|&x| x as u32).collect();
        let mb: BTreeSet<u32> = b.iter().map(|&x| x as u32).collect();
        prop_assert_eq!(la.intersection(&lb).into_vec(), ma.intersection(&mb).copied().collect::<Vec<_>>());
        prop_assert_eq!(la.union(&lb).into_vec(), ma.union(&mb).copied().collect::<Vec<_>>());
        prop_assert_eq!(la.difference(&lb).into_vec(), ma.difference(&mb).copied().collect::<Vec<_>>());
        prop_assert_eq!(la.is_subset(&lb), ma.is_subset(&mb));
        prop_assert_eq!(la.intersection_len(&lb), ma.intersection(&mb).count());
    }

    #[test]
    fn rowset_idlist_agree(a in ids(), b in ids()) {
        let sa = RowSet::from_ids(CAP, a.iter().copied());
        let sb = RowSet::from_ids(CAP, b.iter().copied());
        let la = IdList::from_iter(a.iter().map(|&x| x as u32));
        let lb = IdList::from_iter(b.iter().map(|&x| x as u32));
        let as_list = |s: &RowSet| IdList::from_iter(s.iter().map(|x| x as u32));
        prop_assert_eq!(as_list(&sa.intersection(&sb)), la.intersection(&lb));
        prop_assert_eq!(as_list(&sa.union(&sb)), la.union(&lb));
        prop_assert_eq!(as_list(&sa.difference(&sb)), la.difference(&lb));
    }

    #[test]
    fn insert_remove_consistent(v in ids(), x in 0..CAP) {
        let mut s = RowSet::from_ids(CAP, v.iter().copied());
        let before = s.contains(x);
        prop_assert_eq!(s.insert(x), !before);
        prop_assert!(s.contains(x));
        prop_assert!(s.remove(x));
        prop_assert!(!s.contains(x));
        prop_assert!(!s.remove(x));
    }
}

//! `fgi-client` — one-shot HTTP request against a running
//! `farmer serve` instance, for scripts and smoke tests, plus the
//! `watch` live dashboard.
//!
//! ```text
//! fgi-client <host:port> <path> [--expect <status>]
//!            [--batch <s1;s2;…>] [--post] [--token <bearer>]
//!            [--print-header <name>]
//! fgi-client watch <host:port> [--interval-ms <n>] [--frames <n>]
//!            [--token <bearer>]
//! ```
//!
//! Default is a GET. `--batch` POSTs a batch-classify body built from
//! `;`-separated samples of `,`-separated items (e.g.
//! `--batch 'i0,i1;i2'` is two samples). `--post` issues a bare POST
//! (the admin endpoints), `--token` adds a bearer token, and
//! `--print-header` prints the named response header instead of the
//! body (scripts grep `X-Request-Id` this way).
//!
//! Prints the response body to stdout. Exits 0 when the status equals
//! `--expect` (default 200), 1 otherwise, 2 on usage or I/O errors.
//!
//! `watch` polls `/v1/metrics` (and `/v1/admin/stats` when `--token`
//! is given) every `--interval-ms` (default 1000), rendering req/s,
//! error rate, p50/p95/p99 latency, the in-flight gauge, and
//! shed/reload deltas per frame. `--frames` bounds the run (default:
//! until the server goes away).

use farmer_serve::watch::{run_watch, WatchOptions};
use farmer_serve::{http_get_auth, http_post};
use farmer_support::json::{Json, ObjBuilder};
use std::process::ExitCode;

const USAGE: &str = "usage: fgi-client <host:port> <path> [--expect <status>] \
                     [--batch <s1;s2>] [--post] [--token <bearer>] \
                     [--print-header <name>]\n\
                     \u{20}      fgi-client watch <host:port> [--interval-ms <n>] \
                     [--frames <n>] [--token <bearer>]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("watch") {
        return watch_main(&args[1..]);
    }
    let mut expect = 200u16;
    let mut batch: Option<String> = None;
    let mut token: Option<String> = None;
    let mut print_header: Option<String> = None;
    let mut post = false;
    let mut positional = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--expect" => match it.next().and_then(|v| v.parse().ok()) {
                Some(code) => expect = code,
                None => return usage("--expect needs a numeric status"),
            },
            "--batch" => match it.next() {
                Some(samples) => batch = Some(samples.clone()),
                None => return usage("--batch needs a sample list (items,…;items,…)"),
            },
            "--token" => match it.next() {
                Some(t) => token = Some(t.clone()),
                None => return usage("--token needs a value"),
            },
            "--print-header" => match it.next() {
                Some(name) => print_header = Some(name.clone()),
                None => return usage("--print-header needs a header name"),
            },
            "--post" => post = true,
            "--help" | "-h" => {
                eprintln!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            _ => positional.push(a.clone()),
        }
    }
    let [addr, path] = positional.as_slice() else {
        return usage("need exactly <host:port> and <path>");
    };
    let result = if let Some(samples) = &batch {
        http_post(addr, path, &batch_body(samples), token.as_deref())
    } else if post {
        http_post(addr, path, "", token.as_deref())
    } else {
        http_get_auth(addr, path, token.as_deref())
    };
    match result {
        Ok(resp) => {
            match &print_header {
                Some(name) => println!("{}", resp.header(name).unwrap_or("")),
                None => println!("{}", resp.body),
            }
            if resp.status == expect {
                ExitCode::SUCCESS
            } else {
                eprintln!("fgi-client: got status {}, expected {expect}", resp.status);
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("fgi-client: request failed: {e}");
            ExitCode::from(2)
        }
    }
}

/// `fgi-client watch <host:port> [--interval-ms n] [--frames n] [--token t]`.
fn watch_main(args: &[String]) -> ExitCode {
    let mut opts = WatchOptions {
        addr: String::new(),
        interval_ms: 1000,
        frames: None,
        token: None,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--interval-ms" => match it.next().and_then(|v| v.parse().ok()) {
                Some(ms) => opts.interval_ms = ms,
                None => return usage("--interval-ms needs a number"),
            },
            "--frames" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => opts.frames = Some(n),
                None => return usage("--frames needs a number"),
            },
            "--token" => match it.next() {
                Some(t) => opts.token = Some(t.clone()),
                None => return usage("--token needs a value"),
            },
            "--help" | "-h" => {
                eprintln!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            _ if opts.addr.is_empty() => opts.addr = a.clone(),
            _ => return usage("watch takes one <host:port>"),
        }
    }
    if opts.addr.is_empty() {
        return usage("watch needs <host:port>");
    }
    match run_watch(&opts, &mut std::io::stdout()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("fgi-client: watch stopped: {e}");
            ExitCode::from(2)
        }
    }
}

/// `i0,i1;i2` → `{"samples":[["i0","i1"],["i2"]]}`.
fn batch_body(samples: &str) -> String {
    let samples: Vec<Json> = samples
        .split(';')
        .map(|s| {
            Json::Arr(
                s.split(',')
                    .map(str::trim)
                    .filter(|t| !t.is_empty())
                    .map(|t| Json::Str(t.to_string()))
                    .collect(),
            )
        })
        .collect();
    ObjBuilder::new()
        .field("samples", Json::Arr(samples))
        .build()
        .to_string()
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("fgi-client: {msg}\n{USAGE}");
    ExitCode::from(2)
}

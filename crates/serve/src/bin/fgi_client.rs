//! `fgi-client` — one-shot HTTP request against a running
//! `farmer serve` instance, for scripts and smoke tests.
//!
//! ```text
//! fgi-client <host:port> <path> [--expect <status>]
//!            [--batch <s1;s2;…>] [--post] [--token <bearer>]
//! ```
//!
//! Default is a GET. `--batch` POSTs a batch-classify body built from
//! `;`-separated samples of `,`-separated items (e.g.
//! `--batch 'i0,i1;i2'` is two samples). `--post` issues a bare POST
//! (the admin endpoints), and `--token` adds a bearer token.
//!
//! Prints the response body to stdout. Exits 0 when the status equals
//! `--expect` (default 200), 1 otherwise, 2 on usage or I/O errors.

use farmer_serve::{http_get, http_post};
use farmer_support::json::{Json, ObjBuilder};
use std::process::ExitCode;

const USAGE: &str = "usage: fgi-client <host:port> <path> [--expect <status>] \
                     [--batch <s1;s2>] [--post] [--token <bearer>]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut expect = 200u16;
    let mut batch: Option<String> = None;
    let mut token: Option<String> = None;
    let mut post = false;
    let mut positional = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--expect" => match it.next().and_then(|v| v.parse().ok()) {
                Some(code) => expect = code,
                None => return usage("--expect needs a numeric status"),
            },
            "--batch" => match it.next() {
                Some(samples) => batch = Some(samples.clone()),
                None => return usage("--batch needs a sample list (items,…;items,…)"),
            },
            "--token" => match it.next() {
                Some(t) => token = Some(t.clone()),
                None => return usage("--token needs a value"),
            },
            "--post" => post = true,
            "--help" | "-h" => {
                eprintln!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            _ => positional.push(a.clone()),
        }
    }
    let [addr, path] = positional.as_slice() else {
        return usage("need exactly <host:port> and <path>");
    };
    let result = if let Some(samples) = &batch {
        http_post(addr, path, &batch_body(samples), token.as_deref())
    } else if post {
        http_post(addr, path, "", token.as_deref())
    } else {
        http_get(addr, path)
    };
    match result {
        Ok(resp) => {
            println!("{}", resp.body);
            if resp.status == expect {
                ExitCode::SUCCESS
            } else {
                eprintln!("fgi-client: got status {}, expected {expect}", resp.status);
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("fgi-client: request failed: {e}");
            ExitCode::from(2)
        }
    }
}

/// `i0,i1;i2` → `{"samples":[["i0","i1"],["i2"]]}`.
fn batch_body(samples: &str) -> String {
    let samples: Vec<Json> = samples
        .split(';')
        .map(|s| {
            Json::Arr(
                s.split(',')
                    .map(str::trim)
                    .filter(|t| !t.is_empty())
                    .map(|t| Json::Str(t.to_string()))
                    .collect(),
            )
        })
        .collect();
    ObjBuilder::new()
        .field("samples", Json::Arr(samples))
        .build()
        .to_string()
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("fgi-client: {msg}\n{USAGE}");
    ExitCode::from(2)
}

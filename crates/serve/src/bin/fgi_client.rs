//! `fgi-client` — one-shot HTTP GET against a running `farmer serve`
//! instance, for scripts and smoke tests.
//!
//! ```text
//! fgi-client <host:port> <path> [--expect <status>]
//! ```
//!
//! Prints the response body to stdout. Exits 0 when the status equals
//! `--expect` (default 200), 1 otherwise, 2 on usage or I/O errors.

use farmer_serve::http_get;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut expect = 200u16;
    let mut positional = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--expect" => match it.next().and_then(|v| v.parse().ok()) {
                Some(code) => expect = code,
                None => return usage("--expect needs a numeric status"),
            },
            "--help" | "-h" => {
                eprintln!("usage: fgi-client <host:port> <path> [--expect <status>]");
                return ExitCode::SUCCESS;
            }
            _ => positional.push(a.clone()),
        }
    }
    let [addr, path] = positional.as_slice() else {
        return usage("need exactly <host:port> and <path>");
    };
    match http_get(addr, path) {
        Ok(resp) => {
            println!("{}", resp.body);
            if resp.status == expect {
                ExitCode::SUCCESS
            } else {
                eprintln!("fgi-client: got status {}, expected {expect}", resp.status);
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("fgi-client: request failed: {e}");
            ExitCode::from(2)
        }
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("fgi-client: {msg}\nusage: fgi-client <host:port> <path> [--expect <status>]");
    ExitCode::from(2)
}

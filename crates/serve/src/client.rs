//! A minimal blocking HTTP/1.1 client — just enough for the
//! `fgi-client` smoke binary, `scripts/verify.sh`, and the server's
//! own integration tests, with no dependency beyond `std::net`.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// One fetched response.
#[derive(Clone, Debug)]
pub struct HttpResponse {
    /// The numeric status code from the status line.
    pub status: u16,
    /// Response headers as `(name, value)` pairs, in wire order.
    pub headers: Vec<(String, String)>,
    /// The response body (headers stripped).
    pub body: String,
}

impl HttpResponse {
    /// The first header with the given name, matched
    /// case-insensitively as HTTP requires.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// Issues `GET <path>` against `addr` (a `host:port` string) and reads
/// the response to EOF — the server closes each connection after one
/// response, so EOF delimits the body.
pub fn http_get(addr: &str, path: &str) -> std::io::Result<HttpResponse> {
    http_get_auth(addr, path, None)
}

/// [`http_get`], optionally carrying `Authorization: Bearer <token>`
/// (the admin stats endpoint needs it).
pub fn http_get_auth(
    addr: &str,
    path: &str,
    bearer: Option<&str>,
) -> std::io::Result<HttpResponse> {
    let mut stream = connect(addr)?;
    let auth = match bearer {
        Some(token) => format!("Authorization: Bearer {token}\r\n"),
        None => String::new(),
    };
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: {addr}\r\n{auth}Connection: close\r\n\r\n"
    )?;
    stream.flush()?;
    read_response(stream)
}

/// Issues `POST <path>` with a JSON `body`, optionally carrying
/// `Authorization: Bearer <token>`.
pub fn http_post(
    addr: &str,
    path: &str,
    body: &str,
    bearer: Option<&str>,
) -> std::io::Result<HttpResponse> {
    let mut stream = connect(addr)?;
    let auth = match bearer {
        Some(token) => format!("Authorization: Bearer {token}\r\n"),
        None => String::new(),
    };
    write!(
        stream,
        "POST {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\n{auth}Connection: close\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()?;
    read_response(stream)
}

fn connect(addr: &str) -> std::io::Result<TcpStream> {
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    stream.set_write_timeout(Some(Duration::from_secs(10)))?;
    Ok(stream)
}

fn read_response(mut stream: TcpStream) -> std::io::Result<HttpResponse> {
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    let text = String::from_utf8_lossy(&raw);
    let bad = |what: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, what.to_string());
    let (head, body) = text
        .split_once("\r\n\r\n")
        .ok_or_else(|| bad("response has no header/body separator"))?;
    let mut lines = head.split("\r\n");
    let status = lines
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| bad("response status line unparseable"))?;
    let headers = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(n, v)| (n.trim().to_string(), v.trim().to_string()))
        .collect();
    Ok(HttpResponse {
        status,
        headers,
        body: body.to_string(),
    })
}

//! [`ArtifactHandle`]: the hot-swappable pointer between the HTTP
//! layer and the index it serves.
//!
//! The server never holds a [`ShardedIndex`] directly — it holds a
//! handle, and every request snapshots [`ArtifactHandle::current`]
//! once (an `Arc` clone) and answers entirely from that snapshot. A
//! [`reload`](ArtifactHandle::reload) builds the *new* index off to
//! the side, then swaps the pointer atomically
//! ([`farmer_support::swap::Swap`], which also bumps a monotonically
//! increasing epoch): requests in flight keep the old `Arc` alive and
//! complete against the artifact they started on; requests accepted
//! after the swap see the new one. No request ever observes a
//! half-built index, and a reload that fails (missing file, corrupt
//! artifact) leaves the served index untouched.

use crate::shard::ShardedIndex;
use farmer_store::Artifact;
use farmer_support::swap::Swap;
use farmer_support::thread::Mutex;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

/// A serving slot: the path an artifact was loaded from plus the
/// atomically swappable index built from it.
pub struct ArtifactHandle {
    path: Option<PathBuf>,
    theta: f64,
    n_shards: usize,
    /// `.fgi` format version of the most recently loaded artifact
    /// (0 for in-memory handles), surfaced by `/v1/healthz`.
    artifact_version: AtomicU32,
    /// Reload attempts (successful or not) since the handle was built.
    /// The initial load is attempt 0; each [`reload`](Self::reload)
    /// claims the next number, which becomes the *generation* a
    /// publisher can correlate with.
    reload_attempts: AtomicU64,
    /// The most recent failed attempt `(generation, error)`, sticky
    /// across later successes so `/v1/admin/stats` can surface which
    /// generation never made it to serving.
    last_failure: Mutex<Option<(u64, String)>>,
    current: Swap<ShardedIndex>,
}

impl ArtifactHandle {
    /// Loads `path` and builds the initial index. `n_shards = 0` picks
    /// the [`ShardedIndex::from_artifact`] default.
    pub fn load(path: impl Into<PathBuf>, theta: f64, n_shards: usize) -> Result<Self, String> {
        let path = path.into();
        let index = build_index(&path, theta, n_shards)?;
        let version = farmer_store::peek_version(&path).unwrap_or(0);
        Ok(ArtifactHandle {
            path: Some(path),
            theta,
            n_shards,
            artifact_version: AtomicU32::new(version),
            reload_attempts: AtomicU64::new(0),
            last_failure: Mutex::new(None),
            current: Swap::new(Arc::new(index)),
        })
    }

    /// Wraps an index built elsewhere (tests, in-memory pipelines).
    /// [`reload`](Self::reload) fails until the handle has a path.
    pub fn from_index(index: ShardedIndex) -> Self {
        let theta = index.theta();
        let n_shards = index.n_shards();
        ArtifactHandle {
            path: None,
            theta,
            n_shards,
            artifact_version: AtomicU32::new(0),
            reload_attempts: AtomicU64::new(0),
            last_failure: Mutex::new(None),
            current: Swap::new(Arc::new(index)),
        }
    }

    /// The path reloads re-read, when the handle has one.
    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }

    /// Snapshots the currently served index. The returned `Arc` stays
    /// valid across any number of subsequent reloads.
    pub fn current(&self) -> Arc<ShardedIndex> {
        self.current.load()
    }

    /// How many times the served index has been swapped (starts at 0).
    pub fn epoch(&self) -> u64 {
        self.current.epoch()
    }

    /// The `.fgi` format version of the artifact currently serving
    /// (0 when the handle wraps an in-memory index).
    pub fn artifact_version(&self) -> u32 {
        self.artifact_version.load(Ordering::Relaxed)
    }

    /// Reload attempts so far, successful or not.
    pub fn reload_attempts(&self) -> u64 {
        self.reload_attempts.load(Ordering::Relaxed)
    }

    /// The most recent failed reload as `(generation, error)`, where
    /// the generation is the attempt number that failed. Sticky across
    /// later successful reloads; `None` when no reload ever failed.
    pub fn last_reload_failure(&self) -> Option<(u64, String)> {
        self.last_failure.lock().clone()
    }

    /// Re-reads the backing artifact, builds a fresh index, and swaps
    /// it in. Returns the new index on success; on any failure the old
    /// index keeps serving and the error says why.
    pub fn reload(&self) -> Result<Arc<ShardedIndex>, String> {
        let generation = self.reload_attempts.fetch_add(1, Ordering::Relaxed) + 1;
        let attempt = || -> Result<Arc<ShardedIndex>, String> {
            let Some(path) = &self.path else {
                return Err("reload unavailable: handle has no artifact path".to_string());
            };
            let index = Arc::new(build_index(path, self.theta, self.n_shards)?);
            if let Ok(v) = farmer_store::peek_version(path) {
                self.artifact_version.store(v, Ordering::Relaxed);
            }
            self.current.store(Arc::clone(&index));
            Ok(index)
        };
        let result = attempt();
        if let Err(e) = &result {
            *self.last_failure.lock() = Some((generation, e.clone()));
        }
        result
    }
}

fn build_index(path: &Path, theta: f64, n_shards: usize) -> Result<ShardedIndex, String> {
    let artifact = Artifact::load(path).map_err(|e| format!("{}: {e}", path.display()))?;
    Ok(if n_shards == 0 {
        ShardedIndex::from_artifact(artifact)
    } else {
        ShardedIndex::build(artifact, theta, n_shards)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use farmer_classify::IRG_FINGERPRINT_THETA;
    use farmer_core::{canonical_sort, Farmer, MiningParams};
    use farmer_dataset::{Dataset, DatasetBuilder};
    use farmer_store::{save_artifact, ArtifactMeta};

    fn dataset(extra_row: bool) -> Dataset {
        let mut b = DatasetBuilder::new(2);
        b.add_row([0, 1, 2], 0);
        b.add_row([0, 1], 0);
        b.add_row([1, 2, 3], 1);
        b.add_row([0, 3], 1);
        if extra_row {
            b.add_row([2, 3], 1);
        }
        b.build()
    }

    fn write_artifact(path: &Path, extra_row: bool) -> usize {
        let d = dataset(extra_row);
        let mut groups = Vec::new();
        for class in 0..2 {
            groups.extend(
                Farmer::new(MiningParams::new(class).min_sup(1))
                    .mine(&d)
                    .groups,
            );
        }
        canonical_sort(&mut groups);
        save_artifact(path, &ArtifactMeta::from_dataset(&d), &groups).unwrap();
        groups.len()
    }

    #[test]
    fn reload_swaps_while_old_snapshot_survives() {
        let path = std::env::temp_dir().join(format!("fgi-handle-{}.fgi", std::process::id()));
        let n_before = write_artifact(&path, false);
        let handle = ArtifactHandle::load(&path, IRG_FINGERPRINT_THETA, 2).unwrap();
        assert_eq!(handle.epoch(), 0);

        // A request in flight snapshots the index once…
        let old = handle.current();
        assert_eq!(old.groups().len(), n_before);

        // …the artifact changes on disk and is reloaded…
        let n_after = write_artifact(&path, true);
        assert_ne!(n_before, n_after, "reload must be observable");
        let fresh = handle.reload().unwrap();
        assert_eq!(handle.epoch(), 1);

        // …new snapshots see the new artifact, while the old snapshot
        // still answers from the artifact it started on.
        assert_eq!(fresh.groups().len(), n_after);
        assert_eq!(handle.current().groups().len(), n_after);
        assert_eq!(old.groups().len(), n_before);
        assert_eq!(old.meta().n_rows, 4);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn failed_reload_keeps_serving_the_old_index() {
        let path = std::env::temp_dir().join(format!("fgi-handle-bad-{}.fgi", std::process::id()));
        let n = write_artifact(&path, false);
        let handle = ArtifactHandle::load(&path, IRG_FINGERPRINT_THETA, 1).unwrap();

        std::fs::write(&path, b"garbage, not an artifact").unwrap();
        let err = handle.reload().unwrap_err();
        assert!(err.contains(".fgi"), "{err}");
        assert_eq!(handle.epoch(), 0, "failed reload must not swap");
        assert_eq!(handle.current().groups().len(), n);
        assert_eq!(handle.reload_attempts(), 1);
        let (generation, msg) = handle.last_reload_failure().unwrap();
        assert_eq!(generation, 1);
        assert!(msg.contains(".fgi"), "{msg}");

        // A later successful reload bumps the attempt counter but the
        // failed generation stays on record.
        write_artifact(&path, true);
        handle.reload().unwrap();
        assert_eq!(handle.epoch(), 1);
        assert_eq!(handle.reload_attempts(), 2);
        assert_eq!(handle.last_reload_failure().unwrap().0, 1);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn reload_at_a_missing_artifact_keeps_serving_and_records_the_failure() {
        let path = std::env::temp_dir().join(format!("fgi-handle-gone-{}.fgi", std::process::id()));
        let n = write_artifact(&path, false);
        let handle = ArtifactHandle::load(&path, IRG_FINGERPRINT_THETA, 1).unwrap();
        std::fs::remove_file(&path).unwrap();
        assert!(handle.reload().is_err());
        assert_eq!(handle.epoch(), 0);
        assert_eq!(handle.current().groups().len(), n);
        assert_eq!(handle.last_reload_failure().unwrap().0, 1);
    }

    #[test]
    fn pathless_handle_refuses_reload() {
        let d = dataset(false);
        let idx = ShardedIndex::build(
            Artifact {
                meta: ArtifactMeta::from_dataset(&d),
                groups: Vec::new(),
            },
            0.8,
            1,
        );
        let handle = ArtifactHandle::from_index(idx);
        assert!(handle.path().is_none());
        assert!(handle.reload().unwrap_err().contains("no artifact path"));
    }
}

//! A hermetic HTTP/1.1 server over an [`ArtifactHandle`].
//!
//! Plain `std::net::TcpListener`, a fixed worker pool fed over a
//! `farmer_support::thread` channel, one request per connection
//! (`Connection: close`), and graceful shutdown on a stop flag: the
//! acceptor stops taking new connections, drains its backlog to the
//! workers, and every connection already established gets a full
//! response before the pool exits.
//!
//! # The `/v1` API
//!
//! Every endpoint lives under `/v1/`; the unversioned paths from
//! before the API redesign still answer as deprecated aliases (they
//! return the same bytes plus a `Deprecation: true` header):
//!
//! | endpoint                | method | answer |
//! |-------------------------|--------|--------|
//! | `/v1/classify`          | GET    | classify `?items=a,b,c` |
//! | `/v1/classify`          | POST   | batch-classify `{"samples": [[…], …]}` |
//! | `/v1/query`             | GET    | matching groups for `?items=…` |
//! | `/v1/healthz`           | GET    | index shape, epoch, versions |
//! | `/v1/metrics`           | GET    | Prometheus text (histograms, counters, gauges) |
//! | `/v1/admin/reload`      | POST   | hot-swap the artifact (bearer auth) |
//! | `/v1/admin/stats`       | GET    | live server stats + slow ring (bearer auth) |
//!
//! Every error is the uniform envelope
//! `{"error":{"code":"…","message":"…","request_id":"…"}}`.
//!
//! # Observability
//!
//! Every request carries a request id — the inbound `X-Request-Id`
//! when sane, else 16 hex digits from `support::rng` seeded
//! per-connection — echoed as the `X-Request-Id` response header,
//! stamped into error envelopes, and keyed into the structured access
//! log (one JSON line per request when [`ServeConfig::log_out`] is
//! set). Handling is phase-timed (parse/snapshot/compute/write);
//! requests at or above [`ServeConfig::slow_ms`] land in a capture
//! ring served by `GET /v1/admin/stats`. RED metrics — per-endpoint
//! request/error counters, per-status-class counters, the in-flight
//! gauge, shed/reload counters — ride the same tracer as the latency
//! histograms and render at `/v1/metrics`.
//!
//! # Hot swap and admission control
//!
//! Requests snapshot [`ArtifactHandle::current`] once and answer from
//! that snapshot, so an authenticated `POST /v1/admin/reload` (or a
//! SIGHUP routed through the CLI) swaps artifacts with zero dropped
//! requests: in-flight traffic completes on the old index, later
//! traffic sees the new one.
//!
//! The acceptor bounds in-flight work: when `max_inflight` connections
//! are accepted-but-unanswered, further connections get an immediate
//! `503` with `Retry-After` instead of queueing without bound. Sheds
//! are visible in `/v1/metrics` as the `serve_shed` histogram family
//! and the `farmer_serve_shed_total` counter.

use crate::handle::ArtifactHandle;
use crate::ingest::{IngestHook, IngestRow};
use crate::obs::{
    self, endpoint_counters, status_class_counter, AccessEntry, AccessLog, Endpoint, ServerClock,
    SlowEntry, SlowRing,
};
use crate::shard::ShardedIndex;
use farmer_support::json::{Json, ObjBuilder};
use farmer_support::thread::{channel, Mutex, Receiver, Sender};
use farmer_support::trace::{prometheus_text, HistId, RingTracer, TraceSink};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Latency histograms exported at `/v1/metrics` (names feed PR 4's
/// Prometheus text exporter, which renders `farmer_<name>_ns`).
const HIST_NAMES: &[&str] = &[
    "serve_request",
    "serve_classify",
    "serve_query",
    "serve_healthz",
    "serve_metrics",
    "serve_reload",
    "serve_shed",
    "serve_admin_stats",
    "serve_ingest",
];
const H_REQUEST: HistId = HistId(0);
const H_CLASSIFY: HistId = HistId(1);
const H_QUERY: HistId = HistId(2);
const H_HEALTHZ: HistId = HistId(3);
const H_METRICS: HistId = HistId(4);
const H_RELOAD: HistId = HistId(5);
const H_SHED: HistId = HistId(6);
const H_STATS: HistId = HistId(7);
const H_INGEST: HistId = HistId(8);

/// The endpoint-specific latency histogram (none for unrouted traffic).
fn endpoint_hist(ep: Endpoint) -> Option<HistId> {
    match ep {
        Endpoint::Classify => Some(H_CLASSIFY),
        Endpoint::Query => Some(H_QUERY),
        Endpoint::Healthz => Some(H_HEALTHZ),
        Endpoint::Metrics => Some(H_METRICS),
        Endpoint::Reload => Some(H_RELOAD),
        Endpoint::AdminStats => Some(H_STATS),
        Endpoint::Ingest => Some(H_INGEST),
        Endpoint::Other => None,
    }
}

/// Largest request body the server will read.
const MAX_BODY: u64 = 1 << 20;

/// How the server binds, scales, protects itself, and reports.
#[derive(Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 asks the OS for an ephemeral port (the
    /// actual port is on [`ServerHandle::addr`]).
    pub addr: String,
    /// Fixed worker-pool size (clamped to ≥ 1).
    pub workers: usize,
    /// Accepted-but-unanswered connection bound (clamped to ≥ 1);
    /// connections beyond it are shed with `503` + `Retry-After`.
    pub max_inflight: usize,
    /// Bearer token required by `POST /v1/admin/reload` and
    /// `GET /v1/admin/stats`. `None` disables both
    /// (`403 admin_disabled`).
    pub admin_token: Option<String>,
    /// Structured access log target: `None` disables (the default —
    /// zero cost on the request path), `Some("-")` writes JSON lines
    /// to stderr, any other value is a file path created/truncated.
    pub log_out: Option<String>,
    /// Requests at or above this end-to-end latency are captured in
    /// the slow ring with their phase breakdown; 0 captures every
    /// request.
    pub slow_ms: u64,
    /// An attached streaming pipeline (`None` for a plain server):
    /// enables `POST /v1/admin/ingest`, pipeline stats/metrics, and
    /// pipeline-aware idle detection. See [`IngestHook`].
    pub ingest: Option<Arc<dyn IngestHook>>,
}

impl std::fmt::Debug for ServeConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeConfig")
            .field("addr", &self.addr)
            .field("workers", &self.workers)
            .field("max_inflight", &self.max_inflight)
            .field("admin_token", &self.admin_token.as_ref().map(|_| "…"))
            .field("log_out", &self.log_out)
            .field("slow_ms", &self.slow_ms)
            .field("ingest", &self.ingest.as_ref().map(|_| "<hook>"))
            .finish()
    }
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            max_inflight: 256,
            admin_token: None,
            log_out: None,
            slow_ms: 100,
            ingest: None,
        }
    }
}

/// Everything a worker needs to answer one connection; built once by
/// [`start`] and shared by the acceptor and the pool.
struct ServerCtx {
    handle: Arc<ArtifactHandle>,
    admin_token: Option<String>,
    ingest: Option<Arc<dyn IngestHook>>,
    tracer: RingTracer,
    log: AccessLog,
    slow: SlowRing,
    clock: ServerClock,
}

/// A running server: the bound address plus the shutdown control.
/// Dropping the handle shuts the server down gracefully.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    served: Arc<AtomicU64>,
    shed: Arc<AtomicU64>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the listener actually bound (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Connections fully handled so far (monotonic; useful for idle
    /// detection and smoke assertions). Shed connections don't count.
    pub fn requests_served(&self) -> u64 {
        self.served.load(Ordering::Relaxed)
    }

    /// Connections answered `503` by the admission controller.
    pub fn requests_shed(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// Stops accepting, drains every connection already established,
    /// and joins the pool. Idempotent via [`Drop`].
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the blocking accept() so the acceptor observes the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.acceptor.is_some() {
            self.shutdown_inner();
        }
    }
}

/// Binds and starts serving `handle`'s current artifact in background
/// threads; reloads of the handle take effect without a restart.
pub fn start(handle: Arc<ArtifactHandle>, config: &ServeConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let workers = config.workers.max(1);
    let max_inflight = config.max_inflight.max(1);
    let stop = Arc::new(AtomicBool::new(false));
    let served = Arc::new(AtomicU64::new(0));
    let shed = Arc::new(AtomicU64::new(0));
    let pending = Arc::new(AtomicUsize::new(0));
    // Lane 0 is the acceptor's (sheds land there); worker w records on
    // lane w+1.
    let ctx = Arc::new(ServerCtx {
        handle,
        admin_token: config.admin_token.clone(),
        ingest: config.ingest.clone(),
        tracer: RingTracer::with_metrics(
            &[],
            HIST_NAMES,
            obs::COUNTER_NAMES,
            obs::GAUGE_NAMES,
            workers + 1,
            1,
        ),
        log: AccessLog::from_target(config.log_out.as_deref())?,
        slow: SlowRing::new(config.slow_ms),
        clock: ServerClock::new(),
    });

    let (tx, rx): (Sender<TcpStream>, Receiver<TcpStream>) = channel();
    let rx = Arc::new(Mutex::new(rx));

    let mut pool = Vec::with_capacity(workers);
    for w in 0..workers {
        let rx = Arc::clone(&rx);
        let ctx = Arc::clone(&ctx);
        let served = Arc::clone(&served);
        let pending = Arc::clone(&pending);
        pool.push(std::thread::spawn(move || loop {
            // Hold the lock only for the receive itself; Err means the
            // acceptor dropped the sender and the queue is empty.
            let conn = { rx.lock().recv() };
            match conn {
                Ok(stream) => {
                    handle_connection(stream, &ctx, w + 1, &pending);
                    ctx.tracer.gauge_add(w + 1, obs::G_INFLIGHT, -1);
                    served.fetch_add(1, Ordering::Relaxed);
                }
                Err(_) => break,
            }
        }));
    }

    let acceptor = {
        let stop = Arc::clone(&stop);
        let shed = Arc::clone(&shed);
        let pending = Arc::clone(&pending);
        let ctx = Arc::clone(&ctx);
        std::thread::spawn(move || {
            let admit = |stream: TcpStream| -> bool {
                // Only this thread increments, so check-then-add is
                // exact: at most max_inflight connections are ever
                // queued or in a worker.
                if pending.load(Ordering::SeqCst) >= max_inflight {
                    let t0 = Instant::now();
                    let ts_ns = ctx.clock.now_ns();
                    let rid = obs::next_request_id();
                    // Count before writing: a client that reads the 503
                    // must already observe the shed in the counters.
                    shed.fetch_add(1, Ordering::SeqCst);
                    ctx.tracer.add(0, obs::C_SHED, 1);
                    let bytes = shed_connection(stream, &rid);
                    let ns = t0.elapsed().as_nanos() as u64;
                    ctx.tracer.duration_ns(0, H_SHED, ns);
                    if ctx.log.enabled() {
                        ctx.log.write(&AccessEntry {
                            ts_ns,
                            id: &rid,
                            method: "-",
                            path: "-",
                            status: 503,
                            bytes,
                            latency_ns: ns,
                            shed: true,
                            reload: false,
                        });
                    }
                    return true;
                }
                pending.fetch_add(1, Ordering::SeqCst);
                ctx.tracer.gauge_add(0, obs::G_INFLIGHT, 1);
                tx.send(stream).is_ok()
            };
            for conn in listener.incoming() {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                match conn {
                    Ok(stream) => {
                        if !admit(stream) {
                            break;
                        }
                    }
                    Err(_) => continue,
                }
            }
            // Graceful drain: connections that reached the listener's
            // backlog before the stop flag still get served.
            let _ = listener.set_nonblocking(true);
            while let Ok((stream, _)) = listener.accept() {
                let _ = stream.set_nonblocking(false);
                if !admit(stream) {
                    break;
                }
            }
            // Dropping the sender lets the workers finish the queue
            // and exit.
        })
    };

    Ok(ServerHandle {
        addr,
        stop,
        served,
        shed,
        acceptor: Some(acceptor),
        workers: pool,
    })
}

/// Answers an over-capacity connection with `503` + `Retry-After`
/// without reading the request (the acceptor must not block on a slow
/// peer's bytes). Returns the body bytes written, for the access log.
fn shed_connection(mut stream: TcpStream, rid: &str) -> usize {
    let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
    let body = error_body(
        "overloaded",
        "server is at its in-flight request limit",
        rid,
    );
    let _ = write_response(
        &mut stream,
        503,
        "application/json",
        &body,
        &[
            ("Retry-After", "1".to_string()),
            ("X-Request-Id", rid.to_string()),
        ],
    );
    let _ = stream.flush();
    body.len()
}

/// One parsed request: method, decoded path, decoded query pairs, the
/// headers the API needs, and the body (empty unless POSTed).
struct Request {
    method: String,
    path: String,
    query: Vec<(String, String)>,
    bearer: Option<String>,
    /// Inbound `X-Request-Id`, echoed when sane.
    request_id: Option<String>,
    body: String,
    /// The declared `Content-Length` exceeded [`MAX_BODY`]; the body
    /// was not read.
    oversized: bool,
}

impl Request {
    fn param(&self, key: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// A routed response, before the wire framing.
struct Response {
    status: u16,
    content_type: &'static str,
    body: String,
    endpoint: Endpoint,
}

impl Response {
    fn json(status: u16, body: String, endpoint: Endpoint) -> Response {
        Response {
            status,
            content_type: "application/json",
            body,
            endpoint,
        }
    }

    fn error(status: u16, code: &str, message: &str, endpoint: Endpoint, rid: &str) -> Response {
        Response {
            status,
            content_type: "application/json",
            body: error_body(code, message, rid),
            endpoint,
        }
    }
}

fn handle_connection(stream: TcpStream, ctx: &ServerCtx, lane: usize, pending: &AtomicUsize) {
    // Timeouts keep a stalled peer from wedging a worker forever.
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
    let started = Instant::now();
    let ts_ns = ctx.clock.now_ns();
    let mut reader = BufReader::new(stream);
    let Some(req) = parse_request(&mut reader) else {
        pending.fetch_sub(1, Ordering::SeqCst);
        return; // unreadable request line: nothing to answer
    };
    let parse_ns = started.elapsed().as_nanos() as u64;
    let rid = obs::request_id_from(req.request_id.as_deref());
    // Snapshot the served index once; a concurrent hot swap cannot
    // affect this request.
    let t_snapshot = Instant::now();
    let index = ctx.handle.current();
    let snapshot_ns = t_snapshot.elapsed().as_nanos() as u64;
    let t_compute = Instant::now();
    let (resp, legacy) = respond(&req, &rid, &index, ctx, lane);
    let compute_ns = t_compute.elapsed().as_nanos() as u64;
    let mut extra: Vec<(&'static str, String)> = vec![("X-Request-Id", rid.clone())];
    if legacy {
        extra.push(("Deprecation", "true".to_string()));
    }
    // RED counters go first: a client that reads this response (and
    // immediately scrapes or reconnects) must already see them.
    ctx.tracer.add(lane, obs::C_REQUESTS, 1);
    let (c_req, c_err) = endpoint_counters(resp.endpoint);
    ctx.tracer.add(lane, c_req, 1);
    if resp.status >= 400 {
        ctx.tracer.add(lane, obs::C_ERRORS, 1);
        ctx.tracer.add(lane, c_err, 1);
    }
    if let Some(c) = status_class_counter(resp.status) {
        ctx.tracer.add(lane, c, 1);
    }
    let t_write = Instant::now();
    let stream = reader.get_mut();
    let _ = write_response(stream, resp.status, resp.content_type, &resp.body, &extra);
    let _ = stream.flush();
    // The response is on the wire: free the admission slot before the
    // remaining bookkeeping, so a client that reads it and reconnects
    // immediately is never shed by its own just-answered slot.
    pending.fetch_sub(1, Ordering::SeqCst);
    let write_ns = t_write.elapsed().as_nanos() as u64;
    let ns = started.elapsed().as_nanos() as u64;
    ctx.tracer.duration_ns(lane, H_REQUEST, ns);
    if let Some(h) = endpoint_hist(resp.endpoint) {
        ctx.tracer.duration_ns(lane, h, ns);
    }
    if ctx.log.enabled() {
        ctx.log.write(&AccessEntry {
            ts_ns,
            id: &rid,
            method: &req.method,
            path: &req.path,
            status: resp.status,
            bytes: resp.body.len(),
            latency_ns: ns,
            shed: false,
            reload: resp.endpoint == Endpoint::Reload,
        });
    }
    if ns >= ctx.slow.threshold_ns() {
        ctx.slow.record(SlowEntry {
            ts_ns,
            id: rid,
            method: req.method,
            path: req.path,
            status: resp.status,
            total_ns: ns,
            parse_ns,
            snapshot_ns,
            compute_ns,
            write_ns,
        });
    }
}

/// Reads the request line, the headers the API layer consumes
/// (`Content-Length`, `Authorization`, `X-Request-Id`), and the body
/// when one is declared. `None` when the peer sent nothing parseable.
fn parse_request(reader: &mut BufReader<TcpStream>) -> Option<Request> {
    let mut line = String::new();
    reader.read_line(&mut line).ok()?;
    let mut parts = line.split_whitespace();
    let method = parts.next()?.to_string();
    let target = parts.next()?;
    let mut content_length: u64 = 0;
    let mut bearer = None;
    let mut request_id = None;
    loop {
        let mut header = String::new();
        match reader.read_line(&mut header) {
            Ok(0) => break,
            Ok(_) if header == "\r\n" || header == "\n" => break,
            Ok(_) => {
                if let Some((name, value)) = header.split_once(':') {
                    let value = value.trim();
                    if name.eq_ignore_ascii_case("content-length") {
                        content_length = value.parse().unwrap_or(0);
                    } else if name.eq_ignore_ascii_case("authorization") {
                        bearer = value.strip_prefix("Bearer ").map(|t| t.trim().to_string());
                    } else if name.eq_ignore_ascii_case("x-request-id") {
                        request_id = Some(value.to_string());
                    }
                }
            }
            Err(_) => return None,
        }
    }
    let oversized = content_length > MAX_BODY;
    let mut body = String::new();
    if content_length > 0 && !oversized {
        let mut raw = vec![0u8; content_length as usize];
        reader.read_exact(&mut raw).ok()?;
        body = String::from_utf8_lossy(&raw).into_owned();
    }
    let (path, query_str) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let query = query_str
        .split('&')
        .filter(|kv| !kv.is_empty())
        .map(|kv| match kv.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(kv), String::new()),
        })
        .collect();
    Some(Request {
        method,
        path: percent_decode(path),
        query,
        bearer,
        request_id,
        body,
        oversized,
    })
}

/// Minimal `%XX` + `+` decoding for query components.
fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => out.push(b' '),
            b'%' if i + 2 < bytes.len() => {
                let hex = std::str::from_utf8(&bytes[i + 1..i + 3]).ok();
                match hex.and_then(|h| u8::from_str_radix(h, 16).ok()) {
                    Some(b) => {
                        out.push(b);
                        i += 2;
                    }
                    None => out.push(b'%'),
                }
            }
            b => out.push(b),
        }
        i += 1;
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Routes one request. The bool is `true` when the request used a
/// deprecated unversioned path (the `/v1`-less aliases).
fn respond(
    req: &Request,
    rid: &str,
    index: &ShardedIndex,
    ctx: &ServerCtx,
    lane: usize,
) -> (Response, bool) {
    let (path, legacy) = match req.path.strip_prefix("/v1/") {
        Some(rest) => (format!("/{rest}"), false),
        None => (req.path.clone(), true),
    };
    if req.oversized {
        let resp = Response::error(
            413,
            "payload_too_large",
            &format!("request body exceeds {MAX_BODY} bytes"),
            Endpoint::Other,
            rid,
        );
        return (resp, legacy);
    }
    let resp = match (req.method.as_str(), path.as_str()) {
        ("GET", "/healthz") => {
            let body = ObjBuilder::new()
                .field("status", "ok")
                .field("groups", index.groups().len())
                .field("items", index.meta().n_items())
                .field("classes", index.meta().n_classes())
                .field("shards", index.n_shards())
                .field("epoch", ctx.handle.epoch())
                .field("version", env!("CARGO_PKG_VERSION"))
                .field("artifact_version", ctx.handle.artifact_version() as u64)
                .build()
                .to_string();
            Response::json(200, body, Endpoint::Healthz)
        }
        ("GET", "/metrics") => {
            let mut text = prometheus_text(&ctx.tracer.drain());
            if let Some(hook) = &ctx.ingest {
                text.push_str(&hook.metrics_text());
            }
            Response {
                status: 200,
                content_type: "text/plain; version=0.0.4",
                body: text,
                endpoint: Endpoint::Metrics,
            }
        }
        ("GET", "/classify") => match sample_of(req, index) {
            Ok((sample, unknown)) => {
                let body = prediction_json(index, &sample, &unknown).to_string();
                Response::json(200, body, Endpoint::Classify)
            }
            Err(msg) => Response::error(400, "bad_request", &msg, Endpoint::Classify, rid),
        },
        ("POST", "/classify") => match batch_samples(&req.body) {
            Ok(samples) => {
                let predictions: Vec<Json> = samples
                    .iter()
                    .map(|tokens| {
                        let (sample, unknown) =
                            index.parse_sample(tokens.iter().map(String::as_str));
                        prediction_json(index, &sample, &unknown)
                    })
                    .collect();
                let body = ObjBuilder::new()
                    .field("count", predictions.len())
                    .field("predictions", Json::Arr(predictions))
                    .build()
                    .to_string();
                Response::json(200, body, Endpoint::Classify)
            }
            Err(msg) => Response::error(400, "bad_request", &msg, Endpoint::Classify, rid),
        },
        ("GET", "/query") => match sample_of(req, index) {
            Ok((sample, unknown)) => {
                let class_filter = match req.param("class").map(str::parse::<u32>) {
                    None => None,
                    Some(Ok(c)) if (c as usize) < index.meta().n_classes() => Some(c),
                    Some(_) => {
                        let resp = Response::error(
                            400,
                            "bad_request",
                            "class must be a valid class label",
                            Endpoint::Query,
                            rid,
                        );
                        return (resp, legacy);
                    }
                };
                let limit = req
                    .param("limit")
                    .and_then(|l| l.parse::<usize>().ok())
                    .unwrap_or(20);
                let mut matched = index.matches(&sample);
                if let Some(c) = class_filter {
                    matched.retain(|&gi| index.groups()[gi as usize].class == c);
                }
                let total = matched.len();
                matched.truncate(limit);
                let groups: Vec<Json> = matched.iter().map(|&gi| group_json(index, gi)).collect();
                let body = ObjBuilder::new()
                    .field("total", total)
                    .field("returned", groups.len())
                    .field("groups", Json::Arr(groups))
                    .field("unknown_items", str_array(&unknown))
                    .build()
                    .to_string();
                Response::json(200, body, Endpoint::Query)
            }
            Err(msg) => Response::error(400, "bad_request", &msg, Endpoint::Query, rid),
        },
        ("POST", "/admin/reload") => admin_reload(req, rid, ctx, lane),
        ("GET", "/admin/stats") => admin_stats(req, rid, index, ctx),
        ("POST", "/admin/ingest") => admin_ingest(req, rid, ctx),
        (
            _,
            "/healthz" | "/metrics" | "/query" | "/admin/reload" | "/admin/stats" | "/admin/ingest",
        ) => Response::error(
            405,
            "method_not_allowed",
            &format!("{} does not accept {}", path, req.method),
            Endpoint::Other,
            rid,
        ),
        (_, "/classify") => Response::error(
            405,
            "method_not_allowed",
            "/classify accepts GET (single sample) and POST (batch)",
            Endpoint::Other,
            rid,
        ),
        _ => Response::error(404, "not_found", "no such endpoint", Endpoint::Other, rid),
    };
    (resp, legacy)
}

/// Checks the bearer token shared by the admin endpoints. `Some` is
/// the refusal to send back; `None` means authenticated.
fn admin_auth(req: &Request, rid: &str, ctx: &ServerCtx, endpoint: Endpoint) -> Option<Response> {
    let Some(expected) = ctx.admin_token.as_deref() else {
        return Some(Response::error(
            403,
            "admin_disabled",
            "server started without --admin-token; admin endpoints are disabled",
            endpoint,
            rid,
        ));
    };
    if req.bearer.as_deref() != Some(expected) {
        return Some(Response::error(
            401,
            "unauthorized",
            "missing or wrong bearer token",
            endpoint,
            rid,
        ));
    }
    None
}

/// `POST /v1/admin/reload`: bearer-authenticated artifact hot swap.
fn admin_reload(req: &Request, rid: &str, ctx: &ServerCtx, lane: usize) -> Response {
    if let Some(refusal) = admin_auth(req, rid, ctx, Endpoint::Reload) {
        return refusal;
    }
    match ctx.handle.reload() {
        Ok(fresh) => {
            ctx.tracer.add(lane, obs::C_RELOADS, 1);
            let body = ObjBuilder::new()
                .field("reloaded", true)
                .field("epoch", ctx.handle.epoch())
                .field("groups", fresh.groups().len())
                .build()
                .to_string();
            Response::json(200, body, Endpoint::Reload)
        }
        Err(e) => {
            ctx.tracer.add(lane, obs::C_RELOAD_FAILURES, 1);
            Response::error(500, "reload_failed", &e, Endpoint::Reload, rid)
        }
    }
}

/// `POST /v1/admin/ingest`: bearer-authenticated row submission for
/// an attached streaming pipeline. Body:
/// `{"rows":[{"items":[3,17,42],"label":1}, …]}` with item ids and
/// class labels indexing the *base dataset's* dictionaries. `503`
/// when no pipeline is attached, `400` on malformed or out-of-range
/// rows (all-or-nothing: a rejected batch journals no row).
fn admin_ingest(req: &Request, rid: &str, ctx: &ServerCtx) -> Response {
    if let Some(refusal) = admin_auth(req, rid, ctx, Endpoint::Ingest) {
        return refusal;
    }
    let Some(hook) = &ctx.ingest else {
        return Response::error(
            503,
            "ingest_unavailable",
            "server has no streaming pipeline attached (start with --watch)",
            Endpoint::Ingest,
            rid,
        );
    };
    let rows = match ingest_rows(&req.body) {
        Ok(rows) => rows,
        Err(msg) => return Response::error(400, "bad_request", &msg, Endpoint::Ingest, rid),
    };
    match hook.ingest(&rows) {
        Ok(accepted) => {
            let body = ObjBuilder::new()
                .field("accepted", accepted)
                .build()
                .to_string();
            Response::json(200, body, Endpoint::Ingest)
        }
        Err(msg) => Response::error(400, "bad_request", &msg, Endpoint::Ingest, rid),
    }
}

/// Parses an ingest body: `{"rows":[{"items":[id,…],"label":n}, …]}`.
fn ingest_rows(body: &str) -> Result<Vec<IngestRow>, String> {
    let doc = Json::parse(body).map_err(|e| format!("invalid JSON body: {e}"))?;
    let Some(Json::Arr(rows)) = doc.get("rows") else {
        return Err("body must be an object with a \"rows\" array".to_string());
    };
    rows.iter()
        .enumerate()
        .map(|(i, row)| {
            let Some(Json::Arr(items)) = row.get("items") else {
                return Err(format!("rows[{i}] must have an \"items\" array"));
            };
            let ids = items
                .iter()
                .map(|v| {
                    v.as_u64()
                        .filter(|&id| id <= u32::MAX as u64)
                        .map(|id| id as u32)
                        .ok_or_else(|| format!("rows[{i}] items must be item ids (u32)"))
                })
                .collect::<Result<Vec<u32>, String>>()?;
            let label = row
                .get("label")
                .and_then(Json::as_u64)
                .filter(|&l| l <= u32::MAX as u64)
                .ok_or_else(|| format!("rows[{i}] must have a numeric \"label\""))?;
            Ok((ids, label as u32))
        })
        .collect()
}

/// `GET /v1/admin/stats`: bearer-authenticated live server stats —
/// uptime, swap epoch, index shape and postings size, every counter
/// and gauge, drop totals, and the slow-request capture ring.
fn admin_stats(req: &Request, rid: &str, index: &ShardedIndex, ctx: &ServerCtx) -> Response {
    if let Some(refusal) = admin_auth(req, rid, ctx, Endpoint::AdminStats) {
        return refusal;
    }
    let r = ctx.tracer.drain();
    let mut counters = ObjBuilder::new();
    for (name, v) in r.counter_names.iter().zip(r.counters.iter()) {
        counters = counters.field(name.as_str(), *v);
    }
    let mut gauges = ObjBuilder::new();
    for (name, v) in r.gauge_names.iter().zip(r.gauges.iter()) {
        gauges = gauges.field(name.as_str(), *v);
    }
    let postings = index.postings_entries();
    let (failed_generation, last_reload_error) = match ctx.handle.last_reload_failure() {
        Some((attempt, err)) => (Json::Int(attempt as i64), Json::Str(err)),
        None => (Json::Null, Json::Null),
    };
    let mut body = ObjBuilder::new()
        .field("uptime_ns", ctx.clock.now_ns())
        .field("version", env!("CARGO_PKG_VERSION"))
        .field("artifact_version", ctx.handle.artifact_version() as u64)
        .field("epoch", ctx.handle.epoch())
        .field("reload_attempts", ctx.handle.reload_attempts())
        .field("failed_generation", failed_generation)
        .field("last_reload_error", last_reload_error)
        .field("shards", index.n_shards())
        .field("groups", index.groups().len())
        .field("items", index.meta().n_items())
        .field("classes", index.meta().n_classes())
        .field("postings_entries", postings)
        .field("postings_bytes", postings * std::mem::size_of::<u32>())
        .field("dropped_events", r.dropped_total())
        .field("counters", counters.build())
        .field("gauges", gauges.build())
        .field("slow_threshold_ns", ctx.slow.threshold_ns())
        .field("slow", ctx.slow.snapshot_json());
    if let Some(hook) = &ctx.ingest {
        body = body.field("pipeline", hook.stats());
    }
    Response::json(200, body.build().to_string(), Endpoint::AdminStats)
}

/// Parses a batch-classify body: `{"samples": [["tok", …], …]}`.
fn batch_samples(body: &str) -> Result<Vec<Vec<String>>, String> {
    let doc = Json::parse(body).map_err(|e| format!("invalid JSON body: {e}"))?;
    let Some(samples) = doc.get("samples") else {
        return Err("body must be an object with a \"samples\" array".to_string());
    };
    let Json::Arr(samples) = samples else {
        return Err("\"samples\" must be an array of token arrays".to_string());
    };
    samples
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let Json::Arr(tokens) = s else {
                return Err(format!("samples[{i}] must be an array of strings"));
            };
            tokens
                .iter()
                .map(|t| {
                    t.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| format!("samples[{i}] must contain only strings"))
                })
                .collect()
        })
        .collect()
}

/// The classification answer for one sample, shared by the single and
/// batch endpoints.
fn prediction_json(index: &ShardedIndex, sample: &rowset::IdList, unknown: &[String]) -> Json {
    let p = index.classify(sample);
    let mut obj = ObjBuilder::new()
        .field("class", p.class)
        .field(
            "class_name",
            index.meta().class_names[p.class as usize].as_str(),
        )
        .field("default", p.group.is_none());
    obj = match p.group {
        Some(gi) => {
            let g = &index.groups()[gi as usize];
            obj.field("group", gi)
                .field("conf", g.confidence())
                .field("sup", g.sup)
        }
        None => obj.field("group", Json::Null),
    };
    obj.field("unknown_items", str_array(unknown)).build()
}

/// Extracts the `items` parameter as a sample, or a 400 message.
fn sample_of(req: &Request, index: &ShardedIndex) -> Result<(rowset::IdList, Vec<String>), String> {
    let Some(items) = req.param("items") else {
        return Err("missing items parameter (items=a,b,c)".to_string());
    };
    let tokens = items.split(',').map(str::trim).filter(|t| !t.is_empty());
    Ok(index.parse_sample(tokens))
}

fn group_json(index: &ShardedIndex, gi: u32) -> Json {
    let g = &index.groups()[gi as usize];
    let upper: Vec<Json> = g
        .upper
        .iter()
        .map(|i| Json::Str(index.meta().item_names[i as usize].clone()))
        .collect();
    ObjBuilder::new()
        .field("group", gi)
        .field("class", g.class)
        .field(
            "class_name",
            index.meta().class_names[g.class as usize].as_str(),
        )
        .field("upper", Json::Arr(upper))
        .field("n_lower", g.lower.len())
        .field("sup", g.sup)
        .field("conf", g.confidence())
        .field("chi2", g.chi_square())
        .build()
}

fn str_array(items: &[String]) -> Json {
    Json::Arr(items.iter().map(|s| Json::Str(s.clone())).collect())
}

/// The uniform error envelope:
/// `{"error":{"code":…,"message":…,"request_id":…}}`.
fn error_body(code: &str, message: &str, rid: &str) -> String {
    ObjBuilder::new()
        .field(
            "error",
            ObjBuilder::new()
                .field("code", code)
                .field("message", message)
                .field("request_id", rid)
                .build(),
        )
        .build()
        .to_string()
}

fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
    extra_headers: &[(&'static str, String)],
) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        401 => "Unauthorized",
        403 => "Forbidden",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Error",
    };
    let mut head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n",
        body.len()
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    write!(stream, "{head}\r\n{body}")
}

//! A hermetic HTTP/1.1 server over an [`ArtifactHandle`].
//!
//! Plain `std::net::TcpListener`, a fixed worker pool fed over a
//! `farmer_support::thread` channel, one request per connection
//! (`Connection: close`), and graceful shutdown on a stop flag: the
//! acceptor stops taking new connections, drains its backlog to the
//! workers, and every connection already established gets a full
//! response before the pool exits.
//!
//! # The `/v1` API
//!
//! Every endpoint lives under `/v1/`; the unversioned paths from
//! before the API redesign still answer as deprecated aliases (they
//! return the same bytes plus a `Deprecation: true` header):
//!
//! | endpoint                | method | answer |
//! |-------------------------|--------|--------|
//! | `/v1/classify`          | GET    | classify `?items=a,b,c` |
//! | `/v1/classify`          | POST   | batch-classify `{"samples": [[…], …]}` |
//! | `/v1/query`             | GET    | matching groups for `?items=…` |
//! | `/v1/healthz`           | GET    | index shape, epoch, shard count |
//! | `/v1/metrics`           | GET    | Prometheus text (latency histograms) |
//! | `/v1/admin/reload`      | POST   | hot-swap the artifact (bearer auth) |
//!
//! Every error is the uniform envelope
//! `{"error":{"code":"…","message":"…"}}`.
//!
//! # Hot swap and admission control
//!
//! Requests snapshot [`ArtifactHandle::current`] once and answer from
//! that snapshot, so an authenticated `POST /v1/admin/reload` (or a
//! SIGHUP routed through the CLI) swaps artifacts with zero dropped
//! requests: in-flight traffic completes on the old index, later
//! traffic sees the new one.
//!
//! The acceptor bounds in-flight work: when `max_inflight` connections
//! are accepted-but-unanswered, further connections get an immediate
//! `503` with `Retry-After` instead of queueing without bound. Sheds
//! are visible in `/v1/metrics` as the `serve_shed` histogram family.

use crate::handle::ArtifactHandle;
use crate::shard::ShardedIndex;
use farmer_support::json::{Json, ObjBuilder};
use farmer_support::thread::{channel, Mutex, Receiver, Sender};
use farmer_support::trace::{prometheus_text, HistId, RingTracer, TraceSink};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Latency histograms exported at `/v1/metrics` (names feed PR 4's
/// Prometheus text exporter, which renders `farmer_<name>_ns`).
const HIST_NAMES: &[&str] = &[
    "serve_request",
    "serve_classify",
    "serve_query",
    "serve_healthz",
    "serve_metrics",
    "serve_reload",
    "serve_shed",
];
const H_REQUEST: HistId = HistId(0);
const H_CLASSIFY: HistId = HistId(1);
const H_QUERY: HistId = HistId(2);
const H_HEALTHZ: HistId = HistId(3);
const H_METRICS: HistId = HistId(4);
const H_RELOAD: HistId = HistId(5);
const H_SHED: HistId = HistId(6);

/// Largest request body the server will read.
const MAX_BODY: u64 = 1 << 20;

/// How the server binds, scales, and protects itself.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address; port 0 asks the OS for an ephemeral port (the
    /// actual port is on [`ServerHandle::addr`]).
    pub addr: String,
    /// Fixed worker-pool size (clamped to ≥ 1).
    pub workers: usize,
    /// Accepted-but-unanswered connection bound (clamped to ≥ 1);
    /// connections beyond it are shed with `503` + `Retry-After`.
    pub max_inflight: usize,
    /// Bearer token required by `POST /v1/admin/reload`. `None`
    /// disables the endpoint (`403 admin_disabled`).
    pub admin_token: Option<String>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            max_inflight: 256,
            admin_token: None,
        }
    }
}

/// A running server: the bound address plus the shutdown control.
/// Dropping the handle shuts the server down gracefully.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    served: Arc<AtomicU64>,
    shed: Arc<AtomicU64>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the listener actually bound (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Connections fully handled so far (monotonic; useful for idle
    /// detection and smoke assertions). Shed connections don't count.
    pub fn requests_served(&self) -> u64 {
        self.served.load(Ordering::Relaxed)
    }

    /// Connections answered `503` by the admission controller.
    pub fn requests_shed(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// Stops accepting, drains every connection already established,
    /// and joins the pool. Idempotent via [`Drop`].
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the blocking accept() so the acceptor observes the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.acceptor.is_some() {
            self.shutdown_inner();
        }
    }
}

/// Binds and starts serving `handle`'s current artifact in background
/// threads; reloads of the handle take effect without a restart.
pub fn start(handle: Arc<ArtifactHandle>, config: &ServeConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let workers = config.workers.max(1);
    let max_inflight = config.max_inflight.max(1);
    let admin_token: Arc<Option<String>> = Arc::new(config.admin_token.clone());
    let stop = Arc::new(AtomicBool::new(false));
    let served = Arc::new(AtomicU64::new(0));
    let shed = Arc::new(AtomicU64::new(0));
    let pending = Arc::new(AtomicUsize::new(0));
    // Lane 0 is the acceptor's (sheds land there); worker w records on
    // lane w+1.
    let tracer = Arc::new(RingTracer::new(&[], HIST_NAMES, workers + 1, 1));

    let (tx, rx): (Sender<TcpStream>, Receiver<TcpStream>) = channel();
    let rx = Arc::new(Mutex::new(rx));

    let mut pool = Vec::with_capacity(workers);
    for w in 0..workers {
        let rx = Arc::clone(&rx);
        let handle = Arc::clone(&handle);
        let admin_token = Arc::clone(&admin_token);
        let tracer = Arc::clone(&tracer);
        let served = Arc::clone(&served);
        let pending = Arc::clone(&pending);
        pool.push(std::thread::spawn(move || loop {
            // Hold the lock only for the receive itself; Err means the
            // acceptor dropped the sender and the queue is empty.
            let conn = { rx.lock().recv() };
            match conn {
                Ok(stream) => {
                    handle_connection(stream, &handle, admin_token.as_deref(), &tracer, w + 1);
                    pending.fetch_sub(1, Ordering::SeqCst);
                    served.fetch_add(1, Ordering::Relaxed);
                }
                Err(_) => break,
            }
        }));
    }

    let acceptor = {
        let stop = Arc::clone(&stop);
        let shed = Arc::clone(&shed);
        let pending = Arc::clone(&pending);
        let tracer = Arc::clone(&tracer);
        std::thread::spawn(move || {
            let admit = |stream: TcpStream| -> bool {
                // Only this thread increments, so check-then-add is
                // exact: at most max_inflight connections are ever
                // queued or in a worker.
                if pending.load(Ordering::SeqCst) >= max_inflight {
                    let t0 = Instant::now();
                    shed_connection(stream);
                    shed.fetch_add(1, Ordering::Relaxed);
                    tracer.duration_ns(0, H_SHED, t0.elapsed().as_nanos() as u64);
                    return true;
                }
                pending.fetch_add(1, Ordering::SeqCst);
                tx.send(stream).is_ok()
            };
            for conn in listener.incoming() {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                match conn {
                    Ok(stream) => {
                        if !admit(stream) {
                            break;
                        }
                    }
                    Err(_) => continue,
                }
            }
            // Graceful drain: connections that reached the listener's
            // backlog before the stop flag still get served.
            let _ = listener.set_nonblocking(true);
            while let Ok((stream, _)) = listener.accept() {
                let _ = stream.set_nonblocking(false);
                if !admit(stream) {
                    break;
                }
            }
            // Dropping the sender lets the workers finish the queue
            // and exit.
        })
    };

    Ok(ServerHandle {
        addr,
        stop,
        served,
        shed,
        acceptor: Some(acceptor),
        workers: pool,
    })
}

/// Answers an over-capacity connection with `503` + `Retry-After`
/// without reading the request (the acceptor must not block on a slow
/// peer's bytes).
fn shed_connection(mut stream: TcpStream) {
    let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
    let body = error_body("overloaded", "server is at its in-flight request limit");
    let _ = write_response(
        &mut stream,
        503,
        "application/json",
        &body,
        &[("Retry-After", "1".to_string())],
    );
    let _ = stream.flush();
}

/// One parsed request: method, decoded path, decoded query pairs, the
/// headers the API needs, and the body (empty unless POSTed).
struct Request {
    method: String,
    path: String,
    query: Vec<(String, String)>,
    bearer: Option<String>,
    body: String,
    /// The declared `Content-Length` exceeded [`MAX_BODY`]; the body
    /// was not read.
    oversized: bool,
}

impl Request {
    fn param(&self, key: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// A routed response, before the wire framing.
struct Response {
    status: u16,
    content_type: &'static str,
    body: String,
    hist: Option<HistId>,
}

impl Response {
    fn json(status: u16, body: String, hist: HistId) -> Response {
        Response {
            status,
            content_type: "application/json",
            body,
            hist: Some(hist),
        }
    }

    fn error(status: u16, code: &str, message: &str, hist: Option<HistId>) -> Response {
        Response {
            status,
            content_type: "application/json",
            body: error_body(code, message),
            hist,
        }
    }
}

fn handle_connection(
    stream: TcpStream,
    handle: &ArtifactHandle,
    admin_token: Option<&str>,
    tracer: &RingTracer,
    lane: usize,
) {
    // Timeouts keep a stalled peer from wedging a worker forever.
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
    let started = Instant::now();
    let mut reader = BufReader::new(stream);
    let Some(req) = parse_request(&mut reader) else {
        return; // unreadable request line: nothing to answer
    };
    // Snapshot the served index once; a concurrent hot swap cannot
    // affect this request.
    let index = handle.current();
    let (resp, legacy) = respond(&req, &index, handle, admin_token, tracer);
    let mut extra: Vec<(&'static str, String)> = Vec::new();
    if legacy {
        extra.push(("Deprecation", "true".to_string()));
    }
    let stream = reader.get_mut();
    let _ = write_response(stream, resp.status, resp.content_type, &resp.body, &extra);
    let _ = stream.flush();
    let ns = started.elapsed().as_nanos() as u64;
    tracer.duration_ns(lane, H_REQUEST, ns);
    if let Some(h) = resp.hist {
        tracer.duration_ns(lane, h, ns);
    }
}

/// Reads the request line, the headers the API layer consumes
/// (`Content-Length`, `Authorization`), and the body when one is
/// declared. `None` when the peer sent nothing parseable.
fn parse_request(reader: &mut BufReader<TcpStream>) -> Option<Request> {
    let mut line = String::new();
    reader.read_line(&mut line).ok()?;
    let mut parts = line.split_whitespace();
    let method = parts.next()?.to_string();
    let target = parts.next()?;
    let mut content_length: u64 = 0;
    let mut bearer = None;
    loop {
        let mut header = String::new();
        match reader.read_line(&mut header) {
            Ok(0) => break,
            Ok(_) if header == "\r\n" || header == "\n" => break,
            Ok(_) => {
                if let Some((name, value)) = header.split_once(':') {
                    let value = value.trim();
                    if name.eq_ignore_ascii_case("content-length") {
                        content_length = value.parse().unwrap_or(0);
                    } else if name.eq_ignore_ascii_case("authorization") {
                        bearer = value.strip_prefix("Bearer ").map(|t| t.trim().to_string());
                    }
                }
            }
            Err(_) => return None,
        }
    }
    let oversized = content_length > MAX_BODY;
    let mut body = String::new();
    if content_length > 0 && !oversized {
        let mut raw = vec![0u8; content_length as usize];
        reader.read_exact(&mut raw).ok()?;
        body = String::from_utf8_lossy(&raw).into_owned();
    }
    let (path, query_str) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let query = query_str
        .split('&')
        .filter(|kv| !kv.is_empty())
        .map(|kv| match kv.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(kv), String::new()),
        })
        .collect();
    Some(Request {
        method,
        path: percent_decode(path),
        query,
        bearer,
        body,
        oversized,
    })
}

/// Minimal `%XX` + `+` decoding for query components.
fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => out.push(b' '),
            b'%' if i + 2 < bytes.len() => {
                let hex = std::str::from_utf8(&bytes[i + 1..i + 3]).ok();
                match hex.and_then(|h| u8::from_str_radix(h, 16).ok()) {
                    Some(b) => {
                        out.push(b);
                        i += 2;
                    }
                    None => out.push(b'%'),
                }
            }
            b => out.push(b),
        }
        i += 1;
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Routes one request. The bool is `true` when the request used a
/// deprecated unversioned path (the `/v1`-less aliases).
fn respond(
    req: &Request,
    index: &ShardedIndex,
    handle: &ArtifactHandle,
    admin_token: Option<&str>,
    tracer: &RingTracer,
) -> (Response, bool) {
    let (path, legacy) = match req.path.strip_prefix("/v1/") {
        Some(rest) => (format!("/{rest}"), false),
        None => (req.path.clone(), true),
    };
    if req.oversized {
        let resp = Response::error(
            413,
            "payload_too_large",
            &format!("request body exceeds {MAX_BODY} bytes"),
            None,
        );
        return (resp, legacy);
    }
    let resp = match (req.method.as_str(), path.as_str()) {
        ("GET", "/healthz") => {
            let body = ObjBuilder::new()
                .field("status", "ok")
                .field("groups", index.groups().len())
                .field("items", index.meta().n_items())
                .field("classes", index.meta().n_classes())
                .field("shards", index.n_shards())
                .field("epoch", handle.epoch())
                .build()
                .to_string();
            Response::json(200, body, H_HEALTHZ)
        }
        ("GET", "/metrics") => {
            let text = prometheus_text(&tracer.drain());
            Response {
                status: 200,
                content_type: "text/plain; version=0.0.4",
                body: text,
                hist: Some(H_METRICS),
            }
        }
        ("GET", "/classify") => match sample_of(req, index) {
            Ok((sample, unknown)) => {
                let body = prediction_json(index, &sample, &unknown).to_string();
                Response::json(200, body, H_CLASSIFY)
            }
            Err(msg) => Response::error(400, "bad_request", &msg, Some(H_CLASSIFY)),
        },
        ("POST", "/classify") => match batch_samples(&req.body) {
            Ok(samples) => {
                let predictions: Vec<Json> = samples
                    .iter()
                    .map(|tokens| {
                        let (sample, unknown) =
                            index.parse_sample(tokens.iter().map(String::as_str));
                        prediction_json(index, &sample, &unknown)
                    })
                    .collect();
                let body = ObjBuilder::new()
                    .field("count", predictions.len())
                    .field("predictions", Json::Arr(predictions))
                    .build()
                    .to_string();
                Response::json(200, body, H_CLASSIFY)
            }
            Err(msg) => Response::error(400, "bad_request", &msg, Some(H_CLASSIFY)),
        },
        ("GET", "/query") => match sample_of(req, index) {
            Ok((sample, unknown)) => {
                let class_filter = match req.param("class").map(str::parse::<u32>) {
                    None => None,
                    Some(Ok(c)) if (c as usize) < index.meta().n_classes() => Some(c),
                    Some(_) => {
                        let resp = Response::error(
                            400,
                            "bad_request",
                            "class must be a valid class label",
                            Some(H_QUERY),
                        );
                        return (resp, legacy);
                    }
                };
                let limit = req
                    .param("limit")
                    .and_then(|l| l.parse::<usize>().ok())
                    .unwrap_or(20);
                let mut matched = index.matches(&sample);
                if let Some(c) = class_filter {
                    matched.retain(|&gi| index.groups()[gi as usize].class == c);
                }
                let total = matched.len();
                matched.truncate(limit);
                let groups: Vec<Json> = matched.iter().map(|&gi| group_json(index, gi)).collect();
                let body = ObjBuilder::new()
                    .field("total", total)
                    .field("returned", groups.len())
                    .field("groups", Json::Arr(groups))
                    .field("unknown_items", str_array(&unknown))
                    .build()
                    .to_string();
                Response::json(200, body, H_QUERY)
            }
            Err(msg) => Response::error(400, "bad_request", &msg, Some(H_QUERY)),
        },
        ("POST", "/admin/reload") => admin_reload(req, handle, admin_token),
        (_, "/healthz" | "/metrics" | "/query" | "/admin/reload") => Response::error(
            405,
            "method_not_allowed",
            &format!("{} does not accept {}", path, req.method),
            None,
        ),
        (_, "/classify") => Response::error(
            405,
            "method_not_allowed",
            "/classify accepts GET (single sample) and POST (batch)",
            None,
        ),
        _ => Response::error(404, "not_found", "no such endpoint", None),
    };
    (resp, legacy)
}

/// `POST /v1/admin/reload`: bearer-authenticated artifact hot swap.
fn admin_reload(req: &Request, handle: &ArtifactHandle, admin_token: Option<&str>) -> Response {
    let Some(expected) = admin_token else {
        return Response::error(
            403,
            "admin_disabled",
            "server started without --admin-token; reload is disabled",
            Some(H_RELOAD),
        );
    };
    if req.bearer.as_deref() != Some(expected) {
        return Response::error(
            401,
            "unauthorized",
            "missing or wrong bearer token",
            Some(H_RELOAD),
        );
    }
    match handle.reload() {
        Ok(fresh) => {
            let body = ObjBuilder::new()
                .field("reloaded", true)
                .field("epoch", handle.epoch())
                .field("groups", fresh.groups().len())
                .build()
                .to_string();
            Response::json(200, body, H_RELOAD)
        }
        Err(e) => Response::error(500, "reload_failed", &e, Some(H_RELOAD)),
    }
}

/// Parses a batch-classify body: `{"samples": [["tok", …], …]}`.
fn batch_samples(body: &str) -> Result<Vec<Vec<String>>, String> {
    let doc = Json::parse(body).map_err(|e| format!("invalid JSON body: {e}"))?;
    let Some(samples) = doc.get("samples") else {
        return Err("body must be an object with a \"samples\" array".to_string());
    };
    let Json::Arr(samples) = samples else {
        return Err("\"samples\" must be an array of token arrays".to_string());
    };
    samples
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let Json::Arr(tokens) = s else {
                return Err(format!("samples[{i}] must be an array of strings"));
            };
            tokens
                .iter()
                .map(|t| {
                    t.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| format!("samples[{i}] must contain only strings"))
                })
                .collect()
        })
        .collect()
}

/// The classification answer for one sample, shared by the single and
/// batch endpoints.
fn prediction_json(index: &ShardedIndex, sample: &rowset::IdList, unknown: &[String]) -> Json {
    let p = index.classify(sample);
    let mut obj = ObjBuilder::new()
        .field("class", p.class)
        .field(
            "class_name",
            index.meta().class_names[p.class as usize].as_str(),
        )
        .field("default", p.group.is_none());
    obj = match p.group {
        Some(gi) => {
            let g = &index.groups()[gi as usize];
            obj.field("group", gi)
                .field("conf", g.confidence())
                .field("sup", g.sup)
        }
        None => obj.field("group", Json::Null),
    };
    obj.field("unknown_items", str_array(unknown)).build()
}

/// Extracts the `items` parameter as a sample, or a 400 message.
fn sample_of(req: &Request, index: &ShardedIndex) -> Result<(rowset::IdList, Vec<String>), String> {
    let Some(items) = req.param("items") else {
        return Err("missing items parameter (items=a,b,c)".to_string());
    };
    let tokens = items.split(',').map(str::trim).filter(|t| !t.is_empty());
    Ok(index.parse_sample(tokens))
}

fn group_json(index: &ShardedIndex, gi: u32) -> Json {
    let g = &index.groups()[gi as usize];
    let upper: Vec<Json> = g
        .upper
        .iter()
        .map(|i| Json::Str(index.meta().item_names[i as usize].clone()))
        .collect();
    ObjBuilder::new()
        .field("group", gi)
        .field("class", g.class)
        .field(
            "class_name",
            index.meta().class_names[g.class as usize].as_str(),
        )
        .field("upper", Json::Arr(upper))
        .field("n_lower", g.lower.len())
        .field("sup", g.sup)
        .field("conf", g.confidence())
        .field("chi2", g.chi_square())
        .build()
}

fn str_array(items: &[String]) -> Json {
    Json::Arr(items.iter().map(|s| Json::Str(s.clone())).collect())
}

/// The uniform error envelope: `{"error":{"code":…,"message":…}}`.
fn error_body(code: &str, message: &str) -> String {
    ObjBuilder::new()
        .field(
            "error",
            ObjBuilder::new()
                .field("code", code)
                .field("message", message)
                .build(),
        )
        .build()
        .to_string()
}

fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
    extra_headers: &[(&'static str, String)],
) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        401 => "Unauthorized",
        403 => "Forbidden",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Error",
    };
    let mut head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n",
        body.len()
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    write!(stream, "{head}\r\n{body}")
}
